package heterodc_bench

import (
	"runtime"
	"sync"
	"testing"

	"heterodc/internal/core"
	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/link"
	"heterodc/internal/member"
	"heterodc/internal/topo"
)

// The flagship engine benchmark: the configuration every robustness study
// runs under — SWIM membership, a timer source and an oversubscribed
// fat-tree fabric all attached — with one bouncing compute job per node
// pair so the sharing partition has real parallelism to find. This is the
// config BENCH_engine.json tracks across GOMAXPROCS=1/2/4/8 (run with
// `go test -run=NONE -bench=BenchmarkEngineFlagship -benchmem -cpu 1,2,4,8 .`).

const flagshipBallastSrc = `
long chunk(long base) {
	long s = 0;
	for (long j = 0; j < 100; j++) {
		s += (base + j) % 7;
		s += (base * j) % 3;
	}
	return s;
}
long main(void) {
	long sum = 0;
	for (long i = 0; i < 1500; i++) { sum += chunk(i); }
	print_i64_ln(sum);
	return 0;
}`

var (
	flagshipOnce sync.Once
	flagshipImg  *link.Image
)

func buildFlagshipImage(b testing.TB) *link.Image {
	flagshipOnce.Do(func() {
		flagshipImg, _ = core.Build("flagship", core.Src("flagship.c", flagshipBallastSrc))
	})
	if flagshipImg == nil {
		b.Fatal("flagship ballast build failed")
	}
	return flagshipImg
}

// flagshipRun builds the flagship cluster, runs every job to completion and
// returns the executed quanta plus the final simulated clock.
func flagshipRun(b testing.TB, engine string) (uint64, float64) {
	img := buildFlagshipImage(b)
	const racks, perRack = 4, 4
	n := racks * perRack
	arches := make([]isa.Arch, n)
	for i := range arches {
		if i%2 == 0 {
			arches[i] = isa.X86
		} else {
			arches[i] = isa.ARM64
		}
	}
	cl, _, err := kernel.NewClusterTopo(arches, kernel.DefaultInterconnect(),
		topo.Spec{Kind: topo.KindFatTree, Racks: racks, Oversub: 4})
	if err != nil {
		b.Fatal(err)
	}
	if engine == "par" {
		cl.UseParallelEngine(0)
	}
	if _, err := member.Attach(cl, member.Config{HeartbeatPeriod: 20e-3, Seed: 7}); err != nil {
		b.Fatal(err)
	}
	// One job per node pair; a periodic timer tick bounces every live job to
	// the other node of its pair, so the cross-ISA migration machinery runs
	// while compute still dominates. Footprints stay pairwise, so the
	// partition holds racks*perRack/2 groups whenever no hazard is imminent.
	var procs []*kernel.Process
	base := map[int]int{}
	for nd := 0; nd < n; nd += 2 {
		p, err := cl.Spawn(img, nd)
		if err != nil {
			b.Fatal(err)
		}
		procs = append(procs, p)
		base[p.Pid] = nd
	}
	tick := &benchTicker{period: 2e-3, next: 2e-3, cl: cl, procs: procs, base: base}
	cl.SetTimerSource(tick)

	const horizon = 2.0
	drained := false
	for {
		done := true
		for _, p := range procs {
			if e, _ := p.Exited(); !e {
				done = false
				break
			}
		}
		if done || cl.Time() > horizon {
			break
		}
		if !cl.Step() {
			drained = true
			break
		}
	}
	for _, p := range procs {
		if e, _ := p.Exited(); !e {
			b.Fatalf("%s: job on node %d did not finish by %gs (t=%v drained=%v)",
				engine, base[p.Pid], horizon, cl.Time(), drained)
		}
	}
	return cl.Quanta(), cl.Time()
}

// benchTicker is the flagship's global-state timer source: every period it
// re-requests a pair-local migration for each live job (the open-loop
// rebalance-tick shape), which takes effect at the job's next migration
// point.
type benchTicker struct {
	period, next float64
	cl           *kernel.Cluster
	procs        []*kernel.Process
	base         map[int]int
}

func (t *benchTicker) NextDue() float64 { return t.next }
func (t *benchTicker) Fire(now float64) {
	for t.next <= now {
		t.next += t.period
	}
	bounce := int(now/t.period) % 2
	for _, p := range t.procs {
		if e, _ := p.Exited(); e {
			continue
		}
		_ = t.cl.RequestMigration(p, 0, t.base[p.Pid]+bounce)
	}
}

func BenchmarkEngineFlagship(b *testing.B) {
	for _, engine := range []string{"seq", "par"} {
		b.Run(engine, func(b *testing.B) {
			b.ReportAllocs()
			var quanta uint64
			var simSec float64
			for i := 0; i < b.N; i++ {
				q, s := flagshipRun(b, engine)
				quanta += q
				simSec += s
			}
			el := b.Elapsed().Seconds()
			if el > 0 {
				b.ReportMetric(float64(quanta)/el, "quanta/s")
				b.ReportMetric(simSec/el, "simsec/s")
			}
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}
