package ckpt

import (
	"fmt"

	"heterodc/internal/kernel"
	"heterodc/internal/link"
)

// Stats are the checkpoint service's cumulative counters.
type Stats struct {
	// ImagesWritten counts encoded checkpoint images.
	ImagesWritten int
	// BytesWritten sums their encoded sizes.
	BytesWritten int64
	// CaptureSeconds sums modelled stop-the-world capture latency.
	CaptureSeconds float64
	// Restores counts crash recoveries from an image.
	Restores int
	// WorkReplayedSeconds sums the simulated time between each restored
	// image's capture and the crash that forced the restore — the work a
	// shorter interval would have saved.
	WorkReplayedSeconds float64
	// StaleLossEvents counts loss notifications for incarnations the
	// manager had already superseded — a duplicate or late death verdict
	// must not double-restore a job (the split-brain backstop).
	StaleLossEvents int
}

// RestoreRecord is one executed restore, for placement-invariant audits
// (the partition experiment asserts no restore ever lands on a minority
// side).
type RestoreRecord struct {
	OldPid, NewPid int
	LostNode, Node int
	At             float64
}

// job tracks one logical job across its incarnations.
type job struct {
	img        *link.Image
	pol        kernel.CkptPolicy
	cur        *kernel.Process
	image      []byte // latest encoded checkpoint image
	capturedAt float64
	restores   int
}

// Manager runs checkpoint-based crash recovery on a cluster: it encodes
// every capture of a tracked process into the portable image format,
// retains the latest image per job, and — when a permanent node crash
// strands a tracked process — decodes that image and restores a fresh
// incarnation on a surviving node.
type Manager struct {
	cl *kernel.Cluster
	// jobs maps every incarnation's pid to its job.
	jobs     map[int]*job
	stats    Stats
	restores []RestoreRecord

	// Place picks the restore node given the lost node; nil uses
	// least-loaded placement over live nodes. Return -1 to give up.
	Place func(cl *kernel.Cluster, lostNode int) int
	// OnRestore observes each recovery (the scheduler re-homes its
	// bookkeeping here).
	OnRestore func(old, cur *kernel.Process, node int)
}

// NewManager installs a manager on the cluster, chaining with any
// previously installed checkpoint/loss observers.
func NewManager(cl *kernel.Cluster) *Manager {
	m := &Manager{cl: cl, jobs: make(map[int]*job)}
	prevCk := cl.OnCheckpoint
	cl.OnCheckpoint = func(ev kernel.CheckpointEvent) {
		m.onCheckpoint(ev)
		if prevCk != nil {
			prevCk(ev)
		}
	}
	prevLost := cl.OnProcessLost
	cl.OnProcessLost = func(p *kernel.Process, node int) {
		m.onLost(p, node)
		if prevLost != nil {
			prevLost(p, node)
		}
	}
	return m
}

// Track enrolls p: it is checkpointed under pol and restored from its
// latest image if a permanent crash strands it. img must be the image p was
// spawned from (the restore reuses its code and stackmaps).
func (m *Manager) Track(p *kernel.Process, img *link.Image, pol kernel.CkptPolicy) {
	m.cl.SetCheckpointPolicy(p, pol)
	m.jobs[p.Pid] = &job{img: img, pol: pol, cur: p}
}

// Current resolves a (possibly dead) incarnation to the job's live one.
func (m *Manager) Current(p *kernel.Process) *kernel.Process {
	if j := m.jobs[p.Pid]; j != nil {
		return j.cur
	}
	return p
}

// LatestImage returns the job's most recent encoded image (nil before the
// first capture).
func (m *Manager) LatestImage(p *kernel.Process) []byte {
	if j := m.jobs[p.Pid]; j != nil {
		return j.image
	}
	return nil
}

// Stats returns the cumulative counters.
func (m *Manager) Stats() Stats { return m.stats }

// Restores returns every executed restore in order.
func (m *Manager) Restores() []RestoreRecord { return m.restores }

func (m *Manager) onCheckpoint(ev kernel.CheckpointEvent) {
	j := m.jobs[ev.Proc.Pid]
	if j == nil {
		return
	}
	data := Encode(ev.Snap)
	j.image = data
	j.capturedAt = ev.Snap.When
	m.stats.ImagesWritten++
	m.stats.BytesWritten += int64(len(data))
	m.stats.CaptureSeconds += ev.Seconds
}

func (m *Manager) onLost(p *kernel.Process, node int) {
	j := m.jobs[p.Pid]
	if j == nil || j.image == nil {
		return
	}
	if j.cur != p {
		// A duplicate death verdict (or a verdict that outlived a restore)
		// names an incarnation this job already replaced: restoring again
		// would run the job twice.
		m.stats.StaleLossEvents++
		return
	}
	snap, err := Decode(j.image)
	if err != nil {
		return
	}
	place := m.Place
	if place == nil {
		place = LeastLoadedNode
	}
	dst := place(m.cl, node)
	if dst < 0 {
		return
	}
	np, err := m.cl.RestoreProcess(j.img, snap, dst)
	if err != nil {
		return
	}
	j.cur = np
	j.restores++
	m.jobs[np.Pid] = j
	m.stats.Restores++
	m.stats.WorkReplayedSeconds += m.cl.Time() - j.capturedAt
	m.restores = append(m.restores, RestoreRecord{
		OldPid: p.Pid, NewPid: np.Pid, LostNode: node, Node: dst, At: m.cl.Time(),
	})
	// Keep checkpointing the new incarnation.
	m.cl.SetCheckpointPolicy(np, j.pol)
	if m.OnRestore != nil {
		m.OnRestore(p, np, dst)
	}
}

// Wait steps the cluster until the job spawned as p exits, following
// restored incarnations, and returns the one that finished.
func (m *Manager) Wait(p *kernel.Process) (*kernel.Process, error) {
	for {
		cur := m.Current(p)
		if exited, _ := cur.Exited(); exited {
			// A crash during the same step may already have produced a
			// newer incarnation.
			if next := m.Current(p); next != cur {
				continue
			}
			return cur, cur.Err()
		}
		if !m.cl.Step() {
			return cur, fmt.Errorf("ckpt: cluster drained before pid %d exited", cur.Pid)
		}
	}
}

// LeastLoadedNode is the default restore placement: the available node with
// the fewest runnable threads, or -1 when no node qualifies. Availability is
// the failure detector's verdict when one is installed (a suspected node is
// skipped even if it is actually alive) and the oracle down-bit otherwise;
// the lost node fails both and skips itself.
func LeastLoadedNode(cl *kernel.Cluster, _ int) int {
	best, bestLoad := -1, int(^uint(0)>>1)
	for i, k := range cl.Kernels {
		if cl.NodeUnavailable(i) || cl.NodeDown(i) {
			continue
		}
		if load := k.RunnableLoad(); load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}
