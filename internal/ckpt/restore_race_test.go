package ckpt_test

// Duplicate and late death verdicts racing an executed restore: once the
// manager has replaced a lost incarnation, a second loss notification for
// the old pid must be swallowed (StaleLossEvents), a late detector verdict
// for the already-handled node must not strand the new incarnation, and a
// re-declared death is fenced to a full no-op. This is the split-brain
// backstop: no sequence of repeated verdicts may ever run a job twice.

import (
	"bytes"
	"testing"

	"heterodc/internal/ckpt"
	"heterodc/internal/core"
	"heterodc/internal/fault"
	"heterodc/internal/kernel"
	"heterodc/internal/trace"
)

func TestDuplicateDeathVerdictDoesNotDoubleRestore(t *testing.T) {
	img, err := core.Build("ckpt-dup", core.Src("torture.c", tortureSrc))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ref, err := core.Run(img, core.NodeARM)
	if err != nil {
		t.Fatalf("ref: %v", err)
	}

	cl := core.NewTestbed()
	log := trace.NewEventLog(4096)
	cl.SetTracer(log)
	crashAt := 0.3 * ref.Seconds
	cl.InjectFaults(fault.Plan{
		Crashes: []fault.Crash{{Node: 1, At: crashAt, RecoverAt: 0}}, // permanent
	})
	m := ckpt.NewManager(cl)
	// The job lives on node 1 so the crash strands it; every-point captures
	// guarantee an image exists before the crash lands.
	p, err := cl.Spawn(img, core.NodeARM)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	m.Track(p, img, kernel.CkptPolicy{EveryPoints: 1})

	// Step until the restore has executed, then fire the duplicate verdicts
	// while the new incarnation is still mid-run — the race the backstop
	// exists for.
	injected := false
	for {
		cur := m.Current(p)
		if exited, _ := cur.Exited(); exited && m.Current(p) == cur {
			break
		}
		if !injected && m.Stats().Restores == 1 {
			injected = true
			// A second observer's loss notification for the dead incarnation.
			cl.OnProcessLost(p, 1)
			// A late detector verdict for the node the oracle already
			// handled: the sweep runs against the restored incarnation's
			// state and must find nothing to strand.
			cl.DeclareNodeDead(1, cl.Time())
		}
		if !cl.Step() {
			t.Fatal("cluster drained before the job finished")
		}
	}
	if !injected {
		t.Fatal("restore never happened; the duplicate-verdict race was not exercised")
	}

	final := m.Current(p)
	if err := final.Err(); err != nil {
		t.Fatalf("final incarnation failed: %v", err)
	}
	if final == p {
		t.Fatal("job finished as the original incarnation despite the crash")
	}
	if !bytes.Equal(final.Output(), ref.Output) {
		t.Fatalf("recovered output diverged:\n got  %q\n want %q", final.Output(), ref.Output)
	}

	st := m.Stats()
	if st.Restores != 1 {
		t.Errorf("restores = %d, want exactly 1 (duplicate verdict double-restored)", st.Restores)
	}
	if st.StaleLossEvents != 1 {
		t.Errorf("StaleLossEvents = %d, want 1 (duplicate loss not counted as stale)", st.StaleLossEvents)
	}
	recs := m.Restores()
	if len(recs) != 1 || recs[0].OldPid != p.Pid || recs[0].NewPid != final.Pid ||
		recs[0].LostNode != 1 || recs[0].Node == 1 {
		t.Errorf("restore ledger = %+v, want one record %d->%d off node 1", recs, p.Pid, final.Pid)
	}
	if log.Count("proc-lost") != 1 || log.Count("restore") != 1 {
		t.Errorf("trace: proc-lost=%d restore=%d, want 1 each",
			log.Count("proc-lost"), log.Count("restore"))
	}

	// The late DeclareNodeDead fenced incarnation 1; re-declaring it is a
	// complete no-op — no trace, no sweep, no new loss events.
	declares := log.Count("declare-dead")
	cl.DeclareNodeDead(1, cl.Time())
	if log.Count("declare-dead") != declares {
		t.Error("re-declared death of a fenced incarnation was not a no-op")
	}
	if got := m.Stats(); got != st {
		t.Errorf("re-declaration moved manager stats: %+v -> %+v", st, got)
	}
}
