package ckpt_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"heterodc/internal/ckpt"
	"heterodc/internal/core"
	"heterodc/internal/fault"
	"heterodc/internal/kernel"
	"heterodc/internal/npb"
	"heterodc/internal/trace"
)

// tortureSrc exercises everything a checkpoint must preserve: pointers into
// the stack, heap data, globals, floats in callee-saved registers,
// recursion, byte arrays and the process RNG. Sized so the exhaustive
// every-point torture stays fast.
const tortureSrc = `
long gcounter = 0;
double gsum = 0.0;

long helper(long *p, long depth) {
	long local[4];
	local[0] = *p + depth;
	local[1] = local[0] * 3;
	if (depth > 0) {
		long r = helper(&local[1], depth - 1);
		return r + local[0];
	}
	return local[1];
}

double fwork(long n) {
	double acc = 1.0;
	for (long i = 1; i <= n; i++) {
		acc += sqrt((double)i) / (double)n;
		gsum += acc * 0.001;
	}
	return acc;
}

long main(void) {
	long seed = 7;
	long *heap = (long*)malloc(64 * 8);
	for (long i = 0; i < 64; i++) heap[i] = i * i + 1;
	char name[16];
	name[0] = 'c'; name[1] = 'k'; name[2] = 0;

	long total = 0;
	for (long round = 0; round < 3; round++) {
		total += helper(&seed, 4);
		double f = fwork(90);
		total += (long)(f * 100.0);
		total += heap[round * 7 % 64];
		total += xrand() % 1000;
		gcounter += round;
		seed = (seed * 31 + round) % 1000;
	}
	print_str(name);
	print_char(' ');
	print_i64_ln(total);
	print_i64_ln(gcounter);
	print_i64_ln((long)(gsum * 10.0));
	free((char*)heap);
	return 0;
}
`

// TestCheckpointRestoreTortureEveryPoint is the subsystem's core invariant:
// checkpoint at EVERY migration point, restore EVERY image onto BOTH ISAs,
// and each restored run's completed output is byte-identical to the
// uninterrupted native run.
func TestCheckpointRestoreTortureEveryPoint(t *testing.T) {
	img, err := core.Build("ckpt-torture", core.Src("torture.c", tortureSrc))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ref, err := core.Run(img, core.NodeX86)
	if err != nil {
		t.Fatalf("ref: %v", err)
	}
	refOut := string(ref.Output)
	if !strings.HasPrefix(refOut, "ck ") {
		t.Fatalf("unexpected reference output %q", refOut)
	}

	for _, start := range []int{core.NodeX86, core.NodeARM} {
		cl := core.NewTestbed()
		p, err := cl.Spawn(img, start)
		if err != nil {
			t.Fatalf("spawn: %v", err)
		}
		var images [][]byte
		cl.OnCheckpoint = func(ev kernel.CheckpointEvent) {
			images = append(images, ckpt.Encode(ev.Snap))
		}
		cl.SetCheckpointPolicy(p, kernel.CkptPolicy{EveryPoints: 1})
		if _, err := cl.RunProcess(p); err != nil {
			t.Fatalf("checkpointed run(start=%d): %v", start, err)
		}
		// Checkpointing must not perturb the run's own output.
		if string(p.Output()) != refOut {
			t.Fatalf("checkpointed run(start=%d) output diverged:\n got  %q\n want %q",
				start, p.Output(), refOut)
		}
		if len(images) < 20 {
			t.Fatalf("start=%d: only %d checkpoints for an every-point policy", start, len(images))
		}

		for i, data := range images {
			snap, err := ckpt.Decode(data)
			if err != nil {
				t.Fatalf("decode image %d: %v", i, err)
			}
			for _, node := range []int{core.NodeX86, core.NodeARM} {
				cl2 := core.NewTestbed()
				p2, err := cl2.RestoreProcess(img, snap, node)
				if err != nil {
					t.Fatalf("restore image %d on node %d: %v", i, node, err)
				}
				if _, err := cl2.RunProcess(p2); err != nil {
					t.Fatalf("restored run (image %d, node %d): %v", i, node, err)
				}
				if string(p2.Output()) != refOut {
					t.Fatalf("image %d restored on node %d diverged:\n got  %q\n want %q",
						i, node, p2.Output(), refOut)
				}
			}
		}
		t.Logf("start=%d: %d images, each restored to completion on both ISAs", start, len(images))
	}
}

// TestImageRoundTripAndCorruption: Encode/Decode is lossless and every
// section is checksummed — any corrupted byte is detected.
func TestImageRoundTripAndCorruption(t *testing.T) {
	img, err := core.Build("ckpt-rt", core.Src("torture.c", tortureSrc))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	cl := core.NewTestbed()
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	var snap *kernel.Snapshot
	cl.OnCheckpoint = func(ev kernel.CheckpointEvent) {
		if snap == nil {
			snap = ev.Snap
		}
	}
	if err := cl.RequestCheckpoint(p); err != nil {
		t.Fatalf("request: %v", err)
	}
	for snap == nil {
		if !cl.Step() {
			t.Fatal("cluster drained before the forced checkpoint fired")
		}
	}

	data := ckpt.Encode(snap)
	back, err := ckpt.Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatal("snapshot did not survive an encode/decode round trip")
	}

	h, err := ckpt.ReadHeader(data)
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	if h.Version != ckpt.Version || len(h.Sections) != 5 {
		t.Fatalf("header: version %d, %d sections", h.Version, len(h.Sections))
	}
	for _, s := range h.Sections {
		if !s.OK {
			t.Errorf("section %s checksum reported bad on a pristine image", s.Tag)
		}
	}

	for _, off := range []int{0, 5, 16, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if _, err := ckpt.Decode(bad); err == nil {
			t.Errorf("corruption at offset %d went undetected", off)
		}
	}
	if _, err := ckpt.Decode(data[:len(data)-3]); err == nil {
		t.Error("truncated image went undetected")
	}
}

// pompSrc: multithreaded worker pool with barriers and joins, so snapshots
// capture parked workers and a join-blocked main thread together.
const pompSrc = `
long nthreads = 2;
long partial[64];
double fpartial[64];

long worker(long tid) {
	long sense = 0;
	long sum = 0;
	double facc = 0.0;
	for (long round = 0; round < 2; round++) {
		for (long i = tid; i < 900; i += nthreads) {
			sum += i % 97;
			facc += sqrt((double)(i + 1));
		}
		sense = barrier_wait(sense);
	}
	partial[tid] = sum;
	fpartial[tid] = facc;
	return sum;
}

long main(void) {
	long total = pomp_run(worker, nthreads);
	long check = 0;
	double fcheck = 0.0;
	for (long i = 0; i < nthreads; i++) {
		check += partial[i];
		fcheck += fpartial[i];
	}
	print_i64_ln(total);
	print_i64_ln(check);
	print_i64_ln((long)fcheck);
	return 0;
}
`

// TestMultithreadedCheckpointRestore: periodic checkpoints of a threaded
// process quiesce all threads (parked or join-blocked); sampled images
// restore on both ISAs and finish with identical output.
func TestMultithreadedCheckpointRestore(t *testing.T) {
	img, err := core.Build("ckpt-pomp", core.Src("pomp.c", pompSrc))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ref, err := core.Run(img, core.NodeX86)
	if err != nil {
		t.Fatalf("ref: %v", err)
	}
	refOut := string(ref.Output)

	cl := core.NewTestbed()
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	var images [][]byte
	var multi int
	cl.OnCheckpoint = func(ev kernel.CheckpointEvent) {
		live := 0
		for i := range ev.Snap.Threads {
			if ev.Snap.Threads[i].Status != kernel.ThreadExited {
				live++
			}
		}
		if live > 1 {
			multi++
		}
		images = append(images, ckpt.Encode(ev.Snap))
	}
	cl.SetCheckpointPolicy(p, kernel.CkptPolicy{EveryPoints: 15})
	if _, err := cl.RunProcess(p); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if string(p.Output()) != refOut {
		t.Fatalf("checkpointed run output diverged:\n got  %q\n want %q", p.Output(), refOut)
	}
	if len(images) < 4 {
		t.Fatalf("only %d checkpoints", len(images))
	}
	if multi == 0 {
		t.Fatal("no snapshot ever captured more than one live thread")
	}

	stride := len(images)/6 + 1
	for i := 0; i < len(images); i += stride {
		snap, err := ckpt.Decode(images[i])
		if err != nil {
			t.Fatalf("decode image %d: %v", i, err)
		}
		for _, node := range []int{core.NodeX86, core.NodeARM} {
			cl2 := core.NewTestbed()
			p2, err := cl2.RestoreProcess(img, snap, node)
			if err != nil {
				t.Fatalf("restore image %d on node %d: %v", i, node, err)
			}
			if _, err := cl2.RunProcess(p2); err != nil {
				t.Fatalf("restored run (image %d, node %d): %v", i, node, err)
			}
			if string(p2.Output()) != refOut {
				t.Fatalf("image %d on node %d diverged:\n got  %q\n want %q",
					i, node, p2.Output(), refOut)
			}
		}
	}
}

// TestNPBCrossISARestoreTorture: for NPB CG and IS, checkpoint periodically
// across a mid-run container migration (so images capture ARM-resident
// state), then restore sampled images on both ISAs — completed output must
// be byte-identical to the uninterrupted native run.
func TestNPBCrossISARestoreTorture(t *testing.T) {
	for _, b := range []npb.Bench{npb.CG, npb.IS} {
		b := b
		t.Run(string(b), func(t *testing.T) {
			img, err := npb.Build(b, npb.ClassS, 1)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			ref, err := core.Run(img, core.NodeX86)
			if err != nil {
				t.Fatalf("ref: %v", err)
			}
			refOut := string(ref.Output)

			cl := core.NewTestbed()
			p, err := cl.Spawn(img, core.NodeX86)
			if err != nil {
				t.Fatalf("spawn: %v", err)
			}
			var images [][]byte
			cl.OnCheckpoint = func(ev kernel.CheckpointEvent) {
				images = append(images, ckpt.Encode(ev.Snap))
			}
			cl.SetCheckpointPolicy(p, kernel.CkptPolicy{EverySeconds: ref.Seconds / 10})
			migrated := false
			for {
				if exited, _ := p.Exited(); exited {
					break
				}
				if !migrated && cl.Time() >= 0.4*ref.Seconds {
					cl.RequestProcessMigration(p, core.NodeARM)
					migrated = true
				}
				if !cl.Step() {
					t.Fatal("cluster drained early")
				}
			}
			if err := p.Err(); err != nil {
				t.Fatalf("checkpointed run: %v", err)
			}
			if string(p.Output()) != refOut {
				t.Fatalf("checkpointed run output diverged")
			}
			if len(images) < 3 {
				t.Fatalf("only %d checkpoints", len(images))
			}

			stride := len(images)/4 + 1
			for i := 0; i < len(images); i += stride {
				snap, err := ckpt.Decode(images[i])
				if err != nil {
					t.Fatalf("decode image %d: %v", i, err)
				}
				for _, node := range []int{core.NodeX86, core.NodeARM} {
					cl2 := core.NewTestbed()
					p2, err := cl2.RestoreProcess(img, snap, node)
					if err != nil {
						t.Fatalf("restore image %d on node %d: %v", i, node, err)
					}
					if _, err := cl2.RunProcess(p2); err != nil {
						t.Fatalf("restored run (image %d, node %d): %v", i, node, err)
					}
					if !bytes.Equal(p2.Output(), ref.Output) {
						t.Fatalf("image %d on node %d diverged from native output", i, node)
					}
				}
			}
			t.Logf("%s: %d images, sampled restores identical on both ISAs", b, len(images))
		})
	}
}

// TestPermanentCrashRecovery: a permanent node-1 crash strands the job
// mid-run; the manager restores it from its latest image on node 0 and the
// completed output matches the fault-free baseline.
func TestPermanentCrashRecovery(t *testing.T) {
	img, err := npb.Build(npb.IS, npb.ClassS, 1)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ref, err := core.Run(img, core.NodeX86)
	if err != nil {
		t.Fatalf("ref: %v", err)
	}

	cl := core.NewTestbed()
	log := trace.NewEventLog(4096)
	cl.SetTracer(log)
	cl.InjectFaults(fault.Plan{
		Seed:    11,
		Crashes: []fault.Crash{{Node: 1, At: 0.55 * ref.Seconds, RecoverAt: 0}}, // never recovers
	})
	m := ckpt.NewManager(cl)
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	m.Track(p, img, kernel.CkptPolicy{EverySeconds: 0.08 * ref.Seconds})

	migrated := false
	for {
		cur := m.Current(p)
		if exited, _ := cur.Exited(); exited && m.Current(p) == cur {
			break
		}
		if !migrated && cl.Time() >= 0.25*ref.Seconds {
			cl.RequestProcessMigration(m.Current(p), core.NodeARM)
			migrated = true
		}
		if !cl.Step() {
			t.Fatal("cluster drained before the job finished")
		}
	}
	final := m.Current(p)
	if err := final.Err(); err != nil {
		t.Fatalf("final incarnation failed: %v", err)
	}
	if final == p {
		t.Fatal("job finished as the original incarnation; the crash never forced a restore")
	}
	if !bytes.Equal(final.Output(), ref.Output) {
		t.Fatalf("recovered output diverged:\n got  %q\n want %q", final.Output(), ref.Output)
	}
	st := m.Stats()
	if st.Restores != 1 {
		t.Errorf("restores = %d, want 1", st.Restores)
	}
	if st.ImagesWritten < 2 || st.BytesWritten == 0 {
		t.Errorf("images=%d bytes=%d; expected periodic captures before the crash",
			st.ImagesWritten, st.BytesWritten)
	}
	if st.WorkReplayedSeconds <= 0 {
		t.Errorf("work replayed %.6fs, want > 0", st.WorkReplayedSeconds)
	}
	if log.Count("ckpt") < 2 || log.Count("restore") != 1 || log.Count("proc-lost") != 1 {
		t.Errorf("trace: ckpt=%d restore=%d proc-lost=%d",
			log.Count("ckpt"), log.Count("restore"), log.Count("proc-lost"))
	}
	// The original incarnation carries the loss marker.
	if p.Err() == nil {
		t.Error("original incarnation has no error despite being stranded")
	}
}

// TestThreadFrames: the inspector's frame walk recovers a sensible call
// chain from the image's own pages.
func TestThreadFrames(t *testing.T) {
	img, err := core.Build("ckpt-frames", core.Src("torture.c", tortureSrc))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	cl := core.NewTestbed()
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	var snap *kernel.Snapshot
	cl.OnCheckpoint = func(ev kernel.CheckpointEvent) {
		if snap == nil {
			snap = ev.Snap
		}
	}
	cl.SetCheckpointPolicy(p, kernel.CkptPolicy{EveryPoints: 25})
	for snap == nil {
		if !cl.Step() {
			t.Fatal("drained before a checkpoint")
		}
	}
	rec := &snap.Threads[0]
	frames, err := ckpt.ThreadFrames(img, snap, rec)
	if err != nil {
		t.Fatalf("frames: %v", err)
	}
	if len(frames) < 2 {
		t.Fatalf("got %d frames, want at least the point function and a caller", len(frames))
	}
	foundMain := false
	for _, f := range frames {
		if f.Func == "main" || strings.Contains(f.Func, "__start") {
			foundMain = true
		}
	}
	if !foundMain {
		t.Errorf("frame walk never reached main/__start: %+v", frames)
	}
}
