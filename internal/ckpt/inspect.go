package ckpt

import (
	"fmt"

	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/link"
	"heterodc/internal/mem"
)

// Frame is one stack frame recovered from a snapshot by walking the frame-
// pointer chain through the image's page payloads.
type Frame struct {
	Func  string
	PC    uint64
	FP    uint64
	Depth int
}

// snapMem reads the snapshot's page payloads (read-only, no DSM).
type snapMem map[uint64][]byte

func newSnapMem(s *kernel.Snapshot) snapMem {
	m := make(snapMem, len(s.Pages))
	for i := range s.Pages {
		m[s.Pages[i].Index] = s.Pages[i].Data
	}
	return m
}

func (m snapMem) readU64(addr uint64) (uint64, bool) {
	pg, ok := m[mem.PageIndex(addr)]
	if !ok {
		return 0, false
	}
	off := addr & (mem.PageSize - 1)
	if off+8 > mem.PageSize {
		return 0, false
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(pg[off+uint64(i)])
	}
	return v, true
}

// ThreadFrames summarises one snapshot thread's stack by walking its frame
// pointer chain against the image's own pages (no cluster needed). The
// image the snapshot was captured from must be supplied for symbolisation.
func ThreadFrames(img *link.Image, s *kernel.Snapshot, rec *kernel.ThreadRecord) ([]Frame, error) {
	if rec.Status == kernel.ThreadExited {
		return nil, nil
	}
	prog := img.Prog(rec.Arch)
	if prog == nil {
		return nil, fmt.Errorf("ckpt: image %q has no %v program", img.Name, rec.Arch)
	}
	desc := isa.Describe(rec.Arch)
	sm := newSnapMem(s)

	var frames []Frame
	name := "?"
	if f := prog.FuncAt(rec.PC); f != nil {
		name = f.Name
	}
	frames = append(frames, Frame{Func: name, PC: rec.PC, FP: uint64(rec.Regs.I[desc.FP])})

	fp := uint64(rec.Regs.I[desc.FP])
	for depth := 1; fp != 0 && depth < 256; depth++ {
		retAddr, ok := sm.readU64(fp + 8)
		if !ok {
			break
		}
		if retAddr == 0 {
			// Entry shim sentinel: the chain ends here.
			break
		}
		callerFP, ok := sm.readU64(fp)
		if !ok {
			break
		}
		name := "?"
		if f := prog.FuncAt(retAddr); f != nil {
			name = f.Name
		}
		frames = append(frames, Frame{Func: name, PC: retAddr, FP: callerFP, Depth: depth})
		fp = callerFP
	}
	return frames, nil
}
