// Package ckpt is the cross-ISA checkpoint/restore subsystem: it serialises
// a quiesced process snapshot (kernel.Snapshot) into a portable, ISA-neutral
// image with a versioned header and per-section CRC32 checksums, and manages
// checkpoint-based crash recovery on a cluster.
//
// The image realises the paper's Tᵢ = ⟨Lᵢ, Sᵢ, Rᵢ⟩ / P state model: the P
// sections (pages, filesystem, kernel service state, console output) are
// ISA-neutral and restore verbatim on either machine; the per-thread section
// carries each Sᵢ/Rᵢ (stack half selector, register file, PC) tagged with the
// capture ISA, to be rewritten by xform.Transform at restore time when the
// destination ISA differs.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/mem"
)

// Magic identifies a checkpoint image ("HDCK").
const Magic uint32 = 0x4B434448

// Version is the current image format version.
const Version uint16 = 1

// Section tags, in encode order.
const (
	TagMeta    = "META" // process-wide kernel service state
	TagThreads = "THRD" // per-thread register files / PCs / status
	TagPages   = "PAGE" // DSM-owned pages (zero-tail-trimmed)
	TagFiles   = "FILE" // container filesystem + fd table
	TagOutput  = "OUTP" // cumulative console output
)

// SectionInfo describes one section of an image header.
type SectionInfo struct {
	Tag   string
	Bytes int
	CRC   uint32
	OK    bool // stored CRC matches the payload
}

// Header is the decoded image header.
type Header struct {
	Version  uint16
	Sections []SectionInfo
}

// TotalBytes sums the section payloads (excluding framing).
func (h *Header) TotalBytes() int {
	n := 0
	for _, s := range h.Sections {
		n += s.Bytes
	}
	return n
}

// --- little-endian buffer helpers ---

type writer struct{ b []byte }

func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.b = append(w.b, p...)
}
func (w *writer) str(s string) { w.bytes([]byte(s)) }

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("ckpt: truncated %s at offset %d", what, r.off)
	}
}
func (r *reader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.b) {
		r.fail("field")
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}
func (r *reader) u8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}
func (r *reader) u16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}
func (r *reader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}
func (r *reader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}
func (r *reader) i64() int64 { return int64(r.u64()) }
func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || r.off+n > len(r.b) {
		r.fail("byte string")
		return nil
	}
	return append([]byte(nil), r.take(n)...)
}
func (r *reader) str() string { return string(r.bytes()) }

// --- encode ---

const (
	flagSerialized = 1 << 0
	flagEagerPages = 1 << 1
)

// Encode serialises a snapshot into the portable image format.
func Encode(s *kernel.Snapshot) []byte {
	var meta writer
	meta.str(s.ImgName)
	meta.u64(uint64(s.Pid))
	meta.u64(floatBits(s.When))
	meta.u64(s.Brk)
	meta.u64(s.RNG)
	meta.i64(s.NextTid)
	meta.i64(s.NextFd)
	var flags uint8
	if s.SerializedMigration {
		flags |= flagSerialized
	}
	if s.EagerPageMigration {
		flags |= flagEagerPages
	}
	meta.u8(flags)

	var thrd writer
	thrd.u32(uint32(len(s.Threads)))
	for i := range s.Threads {
		t := &s.Threads[i]
		thrd.i64(t.Tid)
		thrd.u8(uint8(t.Status))
		thrd.u8(uint8(t.Arch))
		thrd.u8(uint8(t.CurHalf))
		thrd.i64(t.JoinTid)
		thrd.i64(t.ExitVal)
		thrd.u64(t.PC)
		thrd.u32(uint32(t.Migrations))
		for _, v := range t.Regs.I {
			thrd.i64(v)
		}
		for _, v := range t.Regs.F {
			thrd.u64(floatBits(v))
		}
	}

	var page writer
	page.u32(uint32(len(s.Pages)))
	for i := range s.Pages {
		p := &s.Pages[i]
		page.u64(p.Index)
		page.bytes(trimZeroTail(p.Data))
	}

	var file writer
	file.u32(uint32(len(s.Files)))
	for i := range s.Files {
		file.str(s.Files[i].Name)
		file.bytes(s.Files[i].Data)
	}
	file.u32(uint32(len(s.FDs)))
	for i := range s.FDs {
		file.i64(s.FDs[i].FD)
		file.str(s.FDs[i].Path)
		file.i64(s.FDs[i].Pos)
	}

	sections := []struct {
		tag     string
		payload []byte
	}{
		{TagMeta, meta.b},
		{TagThreads, thrd.b},
		{TagPages, page.b},
		{TagFiles, file.b},
		{TagOutput, s.Output},
	}
	var out writer
	out.u32(Magic)
	out.u16(Version)
	out.u16(uint16(len(sections)))
	for _, sec := range sections {
		out.b = append(out.b, sec.tag...)
		out.u32(uint32(len(sec.payload)))
		out.u32(crc32.ChecksumIEEE(sec.payload))
		out.b = append(out.b, sec.payload...)
	}
	return out.b
}

// ReadHeader parses and verifies the image framing without decoding
// payloads. Corrupted sections are reported with OK == false.
func ReadHeader(data []byte) (*Header, error) {
	r := &reader{b: data}
	if m := r.u32(); r.err == nil && m != Magic {
		return nil, fmt.Errorf("ckpt: bad magic %#x (want %#x)", m, Magic)
	}
	h := &Header{Version: r.u16()}
	if r.err == nil && h.Version != Version {
		return nil, fmt.Errorf("ckpt: unsupported image version %d (want %d)", h.Version, Version)
	}
	n := int(r.u16())
	for i := 0; i < n; i++ {
		tag := r.take(4)
		size := int(r.u32())
		crc := r.u32()
		payload := r.take(size)
		if r.err != nil {
			return nil, r.err
		}
		h.Sections = append(h.Sections, SectionInfo{
			Tag:   string(tag),
			Bytes: size,
			CRC:   crc,
			OK:    crc32.ChecksumIEEE(payload) == crc,
		})
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after last section", len(data)-r.off)
	}
	return h, nil
}

// Decode parses an image back into a snapshot, verifying every section's
// checksum.
func Decode(data []byte) (*kernel.Snapshot, error) {
	r := &reader{b: data}
	if m := r.u32(); r.err == nil && m != Magic {
		return nil, fmt.Errorf("ckpt: bad magic %#x (want %#x)", m, Magic)
	}
	if v := r.u16(); r.err == nil && v != Version {
		return nil, fmt.Errorf("ckpt: unsupported image version %d (want %d)", v, Version)
	}
	n := int(r.u16())
	s := &kernel.Snapshot{}
	for i := 0; i < n; i++ {
		tag := string(r.take(4))
		size := int(r.u32())
		crc := r.u32()
		payload := r.take(size)
		if r.err != nil {
			return nil, r.err
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("ckpt: section %s checksum mismatch (image corrupted)", tag)
		}
		sr := &reader{b: payload}
		switch tag {
		case TagMeta:
			s.ImgName = sr.str()
			s.Pid = int(sr.u64())
			s.When = bitsFloat(sr.u64())
			s.Brk = sr.u64()
			s.RNG = sr.u64()
			s.NextTid = sr.i64()
			s.NextFd = sr.i64()
			flags := sr.u8()
			s.SerializedMigration = flags&flagSerialized != 0
			s.EagerPageMigration = flags&flagEagerPages != 0
		case TagThreads:
			cnt := int(sr.u32())
			for j := 0; j < cnt && sr.err == nil; j++ {
				var t kernel.ThreadRecord
				t.Tid = sr.i64()
				t.Status = kernel.ThreadStatus(sr.u8())
				t.Arch = isa.Arch(sr.u8())
				t.CurHalf = int(sr.u8())
				t.JoinTid = sr.i64()
				t.ExitVal = sr.i64()
				t.PC = sr.u64()
				t.Migrations = int(sr.u32())
				for ri := range t.Regs.I {
					t.Regs.I[ri] = sr.i64()
				}
				for ri := range t.Regs.F {
					t.Regs.F[ri] = bitsFloat(sr.u64())
				}
				s.Threads = append(s.Threads, t)
			}
		case TagPages:
			cnt := int(sr.u32())
			for j := 0; j < cnt && sr.err == nil; j++ {
				idx := sr.u64()
				trimmed := sr.bytes()
				if len(trimmed) > mem.PageSize {
					return nil, fmt.Errorf("ckpt: page %#x payload exceeds page size", idx)
				}
				full := make([]byte, mem.PageSize)
				copy(full, trimmed)
				s.Pages = append(s.Pages, kernel.PageRecord{Index: idx, Data: full})
			}
		case TagFiles:
			cnt := int(sr.u32())
			for j := 0; j < cnt && sr.err == nil; j++ {
				name := sr.str()
				s.Files = append(s.Files, kernel.FileRecord{Name: name, Data: sr.bytes()})
			}
			cnt = int(sr.u32())
			for j := 0; j < cnt && sr.err == nil; j++ {
				var fd kernel.FDRecord
				fd.FD = sr.i64()
				fd.Path = sr.str()
				fd.Pos = sr.i64()
				s.FDs = append(s.FDs, fd)
			}
		case TagOutput:
			s.Output = append([]byte(nil), payload...)
		default:
			return nil, fmt.Errorf("ckpt: unknown section %q", tag)
		}
		if sr.err != nil {
			return nil, fmt.Errorf("ckpt: section %s: %w", tag, sr.err)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if s.ImgName == "" && len(s.Threads) == 0 {
		return nil, fmt.Errorf("ckpt: image has no META section")
	}
	return s, nil
}

// WriteFile encodes a snapshot to a file.
func WriteFile(path string, s *kernel.Snapshot) error {
	return os.WriteFile(path, Encode(s), 0o644)
}

// ReadFile loads and decodes an image file.
func ReadFile(path string) (*kernel.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

func trimZeroTail(p []byte) []byte {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
