// Package link lays out compiled per-ISA code and globals into a multi-ISA
// binary image. In aligned mode — the paper's contribution — every symbol
// (function entry, global datum) receives the identical virtual address on
// every ISA, with function regions padded to the largest per-ISA encoding,
// so that the OS can alias per-ISA .text at the same addresses and all
// pointers remain valid across migration. Unaligned mode lays each ISA out
// naturally and is the Table 1 baseline.
package link

import (
	"fmt"
	"sort"

	"heterodc/internal/compiler"
	"heterodc/internal/ir"
	"heterodc/internal/isa"
	"heterodc/internal/mem"
	"heterodc/internal/stackmap"
	"heterodc/internal/sys"
)

// Func is one function's code placed at its final address for one ISA.
type Func struct {
	Name string
	Arch isa.Arch
	Base uint64
	Size uint64
	Code []isa.Instr
	// Addr[i] is the virtual address of Code[i].
	Addr []uint64
	// Info is the per-ISA stackmap/unwind metadata with addresses resolved.
	Info *stackmap.FuncInfo
}

// IndexOf returns the instruction index at address pc (which must be an
// instruction boundary inside the function).
func (f *Func) IndexOf(pc uint64) (int, error) {
	i := sort.Search(len(f.Addr), func(i int) bool { return f.Addr[i] >= pc })
	if i < len(f.Addr) && f.Addr[i] == pc {
		return i, nil
	}
	return 0, fmt.Errorf("link: pc %#x is not an instruction boundary in %s", pc, f.Name)
}

// Program is one ISA's executable view of the image.
type Program struct {
	Arch   isa.Arch
	Funcs  []*Func
	ByName map[string]*Func
	SMap   *stackmap.Map

	bases  []uint64
	byBase map[uint64]*Func
}

// FuncAt returns the function containing pc, or nil.
func (p *Program) FuncAt(pc uint64) *Func {
	i := sort.Search(len(p.bases), func(i int) bool { return p.bases[i] > pc })
	if i == 0 {
		return nil
	}
	f := p.byBase[p.bases[i-1]]
	if pc >= f.Base+f.Size {
		return nil
	}
	return f
}

// FuncEntry returns the function whose entry address is addr, or nil (used
// by indirect calls, which may only target function entries).
func (p *Program) FuncEntry(addr uint64) *Func { return p.byBase[addr] }

func (p *Program) seal() {
	p.byBase = make(map[uint64]*Func, len(p.Funcs))
	for _, f := range p.Funcs {
		p.bases = append(p.bases, f.Base)
		p.byBase[f.Base] = f
	}
	sort.Slice(p.bases, func(i, j int) bool { return p.bases[i] < p.bases[j] })
	p.SMap.Seal()
}

// Segment is an initialised data range the loader must install.
type Segment struct {
	Addr  uint64
	Bytes []byte
	Size  int64 // total size including zero fill (>= len(Bytes))
}

// Image is the multi-ISA binary: per-ISA programs plus the (per-ISA or
// common) data layout.
type Image struct {
	Name    string
	Module  *ir.Module
	Aligned bool

	Progs [isa.NumArch]*Program

	// GlobalAddr[arch] maps symbol -> address. In aligned mode the maps are
	// identical for every arch.
	GlobalAddr [isa.NumArch]map[string]uint64
	// FuncAddr[arch] maps function name -> entry address.
	FuncAddr [isa.NumArch]map[string]uint64
	// Data[arch] lists initialised segments.
	Data [isa.NumArch][]Segment

	// TextEnd / DataEnd record the highest used addresses (max across ISAs).
	TextEnd uint64
	DataEnd uint64

	// DirectMigrate reports that the program can issue a migrate syscall
	// outside the scheduler's vDSO handshake: some function other than the
	// prelude wrapper and the __migrate_check shim traps SysMigrate, calls
	// the wrapper, or takes its address (so an indirect call or spawn could
	// reach it). The parallel engine gives such processes a whole-cluster
	// sharing footprint — a self-directed migrate may target any node at any
	// quantum, and refusing one mid-window would diverge from the sequential
	// order. Scheduler-driven workloads (RequestMigration + vDSO flag) never
	// set this and keep their sharing groups narrow.
	DirectMigrate bool
}

// Options configures linking.
type Options struct {
	// Aligned enables the common address-space layout (required for
	// migration). Unaligned is the Table 1 baseline.
	Aligned bool
}

// LinkError describes a linking failure.
type LinkError struct{ msg string }

func (e *LinkError) Error() string { return "link: " + e.msg }

// Link lays out art into an Image.
func Link(name string, art *compiler.Artifact, opts Options) (*Image, error) {
	img := &Image{Name: name, Module: art.Module, Aligned: opts.Aligned,
		DirectMigrate: scanDirectMigrate(art.Module)}

	nFuncs := len(art.Funcs[isa.X86])
	if nFuncs != len(art.Funcs[isa.ARM64]) {
		return nil, &LinkError{msg: "per-ISA function counts differ"}
	}

	// --- Text layout ---
	if opts.Aligned {
		// Common layout: function i occupies [base, base+maxSize) on every
		// ISA; the per-ISA encodings are padded to the max ("aligning
		// function symbols requires adding padding so that function sizes
		// are equivalent across binaries").
		cur := mem.TextBase
		for a := range img.FuncAddr {
			img.FuncAddr[a] = make(map[string]uint64, nFuncs)
		}
		for i := 0; i < nFuncs; i++ {
			cur = mem.AlignUp(cur, 16)
			var max int64
			for _, arch := range isa.Arches {
				if s := art.Funcs[arch][i].Size; s > max {
					max = s
				}
			}
			for _, arch := range isa.Arches {
				img.FuncAddr[arch][art.Funcs[arch][i].Name] = cur
			}
			cur += uint64(max)
		}
		img.TextEnd = cur
	} else {
		// Natural per-ISA layout: no padding, addresses differ across ISAs.
		for _, arch := range isa.Arches {
			cur := mem.TextBase
			img.FuncAddr[arch] = make(map[string]uint64, nFuncs)
			for i := 0; i < nFuncs; i++ {
				cur = mem.AlignUp(cur, 16)
				img.FuncAddr[arch][art.Funcs[arch][i].Name] = cur
				cur += uint64(art.Funcs[arch][i].Size)
			}
			if cur > img.TextEnd {
				img.TextEnd = cur
			}
		}
	}

	// --- Data layout ---
	for _, arch := range isa.Arches {
		cur := mem.DataBase
		img.GlobalAddr[arch] = make(map[string]uint64, len(art.Module.Globals))
		for _, g := range art.Module.Globals {
			align := uint64(g.Align)
			if align == 0 {
				align = 8
			}
			if opts.Aligned {
				// Common layout uses a conservative 16-byte alignment for
				// every symbol (the alignment tool's policy).
				if align < 16 {
					align = 16
				}
			}
			cur = mem.AlignUp(cur, align)
			img.GlobalAddr[arch][g.Name] = cur
			if len(g.Init) > 0 {
				img.Data[arch] = append(img.Data[arch], Segment{
					Addr: cur, Bytes: g.Init, Size: g.Size,
				})
			} else {
				img.Data[arch] = append(img.Data[arch], Segment{Addr: cur, Size: g.Size})
			}
			cur += uint64(g.Size)
		}
		if cur > img.DataEnd {
			img.DataEnd = cur
		}
	}
	if opts.Aligned {
		// Sanity: the maps must agree.
		for name, a := range img.GlobalAddr[isa.X86] {
			if b := img.GlobalAddr[isa.ARM64][name]; a != b {
				return nil, &LinkError{msg: fmt.Sprintf("aligned global %s differs: %#x vs %#x", name, a, b)}
			}
		}
	}

	// --- Resolve and build programs ---
	for _, arch := range isa.Arches {
		prog := &Program{
			Arch:   arch,
			ByName: make(map[string]*Func, nFuncs),
			SMap:   stackmap.NewMap(arch),
		}
		for i := 0; i < nFuncs; i++ {
			af := art.Funcs[arch][i]
			base := img.FuncAddr[arch][af.Name]
			lf := &Func{
				Name: af.Name,
				Arch: arch,
				Base: base,
				Size: uint64(af.Size),
				Code: make([]isa.Instr, len(af.Code)),
				Addr: make([]uint64, len(af.Code)),
				Info: af.Info,
			}
			copy(lf.Code, af.Code)
			for j := range lf.Code {
				lf.Addr[j] = base + uint64(af.Offsets[j])
				in := &lf.Code[j]
				if in.Op == isa.OpLea {
					addr, err := img.resolve(arch, in.Sym)
					if err != nil {
						return nil, err
					}
					in.Imm += int64(addr)
				}
			}
			// Fill metadata addresses.
			af.Info.Entry = base
			af.Info.Size = uint64(af.Size)
			for id, cs := range af.Info.CallSites {
				ci, ok := af.CallSiteInstr[id]
				if !ok {
					return nil, &LinkError{msg: fmt.Sprintf("%s: call site %d has no instruction", af.Name, id)}
				}
				cs.RetPC = lf.Addr[ci] + uint64(lf.Code[ci].Size)
			}
			prog.Funcs = append(prog.Funcs, lf)
			prog.ByName[lf.Name] = lf
			prog.SMap.Add(af.Info)
		}
		prog.seal()
		img.Progs[arch] = prog
	}

	// In aligned mode the metadata Entry/Size/CallSites were written twice
	// (once per arch) into the same FuncInfo... they must not be shared.
	// compiler.lowerFunc builds a fresh FuncInfo per arch, so this is safe.
	return img, nil
}

// scanDirectMigrate detects whether m can issue a migrate syscall outside
// the vDSO handshake. The runtime's __migrate_check shim traps SysMigrate
// inline (never through the prelude wrapper), so its occurrence there is the
// one sanctioned site; anywhere else — a user function that inlined the
// wrapper, a direct call to it, or its address escaping into an indirect
// call or spawn — means the program itself decides when and where to
// migrate. Syscall numbers are literal at the IR level (__syscall requires
// a constant), so the scan is exact, not a heuristic.
func scanDirectMigrate(m *ir.Module) bool {
	for _, f := range m.Funcs {
		self := f.Name == "migrate" || f.Name == "__migrate_check"
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Kind {
				case ir.KSyscall:
					if in.Imm == sys.SysMigrate && !self {
						return true
					}
				case ir.KCall:
					if in.Sym == "migrate" {
						return true
					}
				case ir.KGlobalAddr:
					if in.Sym == "migrate" {
						return true
					}
				}
			}
		}
	}
	return false
}

func (img *Image) resolve(arch isa.Arch, sym string) (uint64, error) {
	if a, ok := img.GlobalAddr[arch][sym]; ok {
		return a, nil
	}
	if a, ok := img.FuncAddr[arch][sym]; ok {
		return a, nil
	}
	return 0, &LinkError{msg: fmt.Sprintf("undefined symbol %q", sym)}
}

// Prog returns the program view for arch.
func (img *Image) Prog(arch isa.Arch) *Program { return img.Progs[arch] }

// EntryAddr returns the address of the process entry point on arch.
func (img *Image) EntryAddr(arch isa.Arch) uint64 {
	return img.FuncAddr[arch][compiler.StartFunc]
}
