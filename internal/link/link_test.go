package link

import (
	"testing"

	"heterodc/internal/compiler"
	"heterodc/internal/isa"
	"heterodc/internal/mem"
	"heterodc/internal/minic"
)

const src = `
long gvar = 7;
double garr[16];
char gname[12] = {'x', 0};

long work(long n) {
	double t = 0.0;
	for (long i = 0; i < n; i++) t += garr[i % 16];
	return gvar + (long)t;
}
long main(void) { return work(8); }
`

func buildImage(t *testing.T, aligned bool) *Image {
	t.Helper()
	m, err := minic.CompileToIR("t", minic.Source{Name: "t.c", Code: src})
	if err != nil {
		t.Fatal(err)
	}
	art, err := compiler.Compile(m, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	img, err := Link("t", art, Options{Aligned: aligned})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestAlignedLayoutIdenticalAcrossISAs(t *testing.T) {
	img := buildImage(t, true)
	for name, ax := range img.FuncAddr[isa.X86] {
		if aa := img.FuncAddr[isa.ARM64][name]; aa != ax {
			t.Errorf("func %s: %#x vs %#x", name, ax, aa)
		}
	}
	for name, ax := range img.GlobalAddr[isa.X86] {
		if aa := img.GlobalAddr[isa.ARM64][name]; aa != ax {
			t.Errorf("global %s: %#x vs %#x", name, ax, aa)
		}
	}
}

func TestAlignedPadsToLargestEncoding(t *testing.T) {
	img := buildImage(t, true)
	// Function regions must not overlap even though the two ISAs' encodings
	// differ in size: region length is the max of both.
	prog := img.Prog(isa.X86)
	for _, f := range prog.Funcs {
		fa := img.Prog(isa.ARM64).ByName[f.Name]
		end := f.Base + f.Size
		if e2 := fa.Base + fa.Size; e2 > end {
			end = e2
		}
		for _, g := range prog.Funcs {
			if g == f || g.Base < f.Base {
				continue
			}
			if g.Base < end {
				t.Fatalf("functions %s and %s overlap", f.Name, g.Name)
			}
		}
	}
}

func TestUnalignedLayoutsDiffer(t *testing.T) {
	img := buildImage(t, false)
	same := true
	for name, ax := range img.FuncAddr[isa.X86] {
		if img.FuncAddr[isa.ARM64][name] != ax {
			same = false
		}
	}
	if same {
		t.Error("unaligned layout produced identical function addresses (suspicious)")
	}
}

func TestGlobalsWithinDataSegment(t *testing.T) {
	img := buildImage(t, true)
	for name, a := range img.GlobalAddr[isa.X86] {
		if a < mem.DataBase || a >= img.DataEnd {
			t.Errorf("global %s at %#x outside data segment", name, a)
		}
	}
	if img.TextEnd >= mem.DataBase {
		t.Errorf("text end %#x overlaps data base", img.TextEnd)
	}
}

func TestDataSegmentsCarryInitBytes(t *testing.T) {
	img := buildImage(t, true)
	found := false
	addr := img.GlobalAddr[isa.X86]["gvar"]
	for _, seg := range img.Data[isa.X86] {
		if seg.Addr == addr && len(seg.Bytes) >= 8 && seg.Bytes[0] == 7 {
			found = true
		}
	}
	if !found {
		t.Error("gvar initializer bytes missing from data segments")
	}
}

func TestRetPCFallsInsideCaller(t *testing.T) {
	img := buildImage(t, true)
	for _, arch := range isa.Arches {
		prog := img.Prog(arch)
		for _, f := range prog.Funcs {
			for id, cs := range f.Info.CallSites {
				if cs.RetPC <= f.Base || cs.RetPC > f.Base+f.Size {
					t.Errorf("%s (%s) site %d: retPC %#x outside [%#x,%#x]",
						f.Name, arch, id, cs.RetPC, f.Base, f.Base+f.Size)
				}
				// The metadata lookup must resolve the retPC back to the site.
				fi, got, err := prog.SMap.SiteFor(cs.RetPC)
				if err != nil || fi.Name != f.Name || got.ID != id {
					t.Errorf("%s (%s): SiteFor(%#x) mismatch: %v", f.Name, arch, cs.RetPC, err)
				}
			}
		}
	}
}

func TestLeaResolved(t *testing.T) {
	img := buildImage(t, true)
	want := int64(img.GlobalAddr[isa.X86]["gvar"])
	for _, arch := range isa.Arches {
		f := img.Prog(arch).ByName["work"]
		found := false
		for i := range f.Code {
			if f.Code[i].Op == isa.OpLea && f.Code[i].Sym == "gvar" {
				if f.Code[i].Imm != want {
					t.Errorf("%s: lea gvar resolved to %#x want %#x", arch, f.Code[i].Imm, want)
				}
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no lea of gvar in work", arch)
		}
	}
}

func TestFuncAtAndIndexOf(t *testing.T) {
	img := buildImage(t, true)
	prog := img.Prog(isa.X86)
	f := prog.ByName["work"]
	if got := prog.FuncAt(f.Base); got != f {
		t.Error("FuncAt(base) wrong")
	}
	if got := prog.FuncAt(f.Addr[len(f.Addr)-1]); got != f {
		t.Error("FuncAt(last instr) wrong")
	}
	if prog.FuncAt(0x10) != nil {
		t.Error("FuncAt before text must be nil")
	}
	if _, err := f.IndexOf(f.Addr[2]); err != nil {
		t.Errorf("IndexOf valid addr: %v", err)
	}
	if _, err := f.IndexOf(f.Addr[2] + 1); err == nil {
		t.Error("IndexOf mid-instruction must fail")
	}
	if prog.FuncEntry(f.Base) != f {
		t.Error("FuncEntry(base) wrong")
	}
	if prog.FuncEntry(f.Base+1) != nil {
		t.Error("FuncEntry(non-entry) must be nil")
	}
}

func TestEntryAddr(t *testing.T) {
	img := buildImage(t, true)
	for _, arch := range isa.Arches {
		e := img.EntryAddr(arch)
		if img.Prog(arch).FuncEntry(e) == nil {
			t.Errorf("%s: entry %#x is not a function entry", arch, e)
		}
	}
}
