package exp

import (
	"testing"

	"heterodc/internal/core"
	"heterodc/internal/isa"
)

// TestCounterPollingFires verifies counter-based polling reaches migration
// points inside nested loops at the configured interval.
func TestCounterPollingFires(t *testing.T) {
	img, err := core.Build("poll", core.Src("poll.c", `
long sink = 0;
long main(void) {
	long s = 0;
	for (long r = 0; r < 2; r++) {              // depth 1: direct points
		for (long i = 0; i < 100; i++) {        // depth 2: counted polling
			for (long j = 0; j < 50; j++) {     // depth 3: innermost, free
				s += i * j;
			}
			sink += s;
		}
	}
	return s;
}`))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewSingle(isa.X86)
	points := 0
	byFn := map[string]int{}
	cl.Kernels[0].InstrumentCalls(nil, func(uint64) { points++ })
	cl.Kernels[0].InstrumentPointAttr(func(fn string) { byFn[fn]++ })
	p, _ := cl.Spawn(img, 0)
	if _, err := cl.RunProcess(p); err != nil {
		t.Fatal(err)
	}
	t.Logf("points=%d byFn=%v", points, byFn)
	// middle loop: 200 iterations total, interval 32 -> ~6 polls plus 2
	// direct points plus entry/exit.
	if byFn["main"] < 8 {
		t.Errorf("counter polling did not fire in main: %v", byFn)
	}
}
