package exp

import (
	"fmt"

	"heterodc/internal/compiler"
	"heterodc/internal/core"
	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/link"
	"heterodc/internal/npb"
	"heterodc/internal/trace"
)

// The ablation experiments quantify the design decisions DESIGN.md calls
// out, beyond the paper's own figures.

// PointPlacementRow is one migration-point-placement configuration.
type PointPlacementRow struct {
	Config string
	// OverheadPct is execution-time overhead over the uninstrumented build
	// (x86, serial).
	OverheadPct float64
	// MaxGapInstrs is the largest observed distance between points.
	MaxGapInstrs uint64
	// Points is the number of executed migration points.
	Points int
}

// AblationPointPlacement sweeps the insertion strategies: none, function
// boundaries only, the default (plus outer-loop back edges), and every back
// edge — the response-time vs overhead trade the paper tunes with its
// Valgrind analysis.
func AblationPointPlacement(cfg Config) ([]PointPlacementRow, error) {
	bench, class := npb.IS, npb.ClassA
	if cfg.Scale == Quick {
		class = npb.ClassS
	}
	base, err := buildNoMigration(bench, class, 1)
	if err != nil {
		return nil, err
	}
	tb, _, err := runNative(base, isa.X86)
	if err != nil {
		return nil, err
	}

	configs := []struct {
		name string
		opts compiler.MigrationOptions
	}{
		{"function boundaries", compiler.MigrationOptions{FunctionEntry: true, FunctionExit: true}},
		{"default (outer loops)", compiler.DefaultMigrationOptions()},
		{"every back edge", compiler.MigrationOptions{
			FunctionEntry: true, FunctionExit: true, LoopBackEdges: true,
			MaxLoopDepth: 99, MinLoopBody: 1, SkipSmallLeaf: 1,
		}},
	}
	var rows []PointPlacementRow
	for i, c := range configs {
		opts := core.BuildOptions{
			Compiler: compiler.Options{Migration: true, MigrationOpts: c.opts},
			Linker:   link.Options{Aligned: true},
		}
		img, err := npb.BuildWith(bench, class, 1, opts, fmt.Sprintf("abl-points-%d", i))
		if err != nil {
			return nil, err
		}
		cl := core.NewSingle(isa.X86)
		var h trace.DecadeHistogram
		var max uint64
		points := 0
		cl.Kernels[0].InstrumentCalls(nil, func(gap uint64) {
			h.Add(float64(gap))
			points++
			if gap > max {
				max = gap
			}
		})
		p, err := cl.Spawn(img, 0)
		if err != nil {
			return nil, err
		}
		if _, err := cl.RunProcess(p); err != nil {
			return nil, err
		}
		row := PointPlacementRow{
			Config:       c.name,
			OverheadPct:  (cl.Time()/tb - 1) * 100,
			MaxGapInstrs: max,
			Points:       points,
		}
		rows = append(rows, row)
		cfg.printf("ablation points %-22s overhead=%+6.2f%% points=%8d max-gap=%d\n",
			c.name, row.OverheadPct, row.Points, row.MaxGapInstrs)
	}
	return rows, nil
}

// DSMModeRow compares on-demand page migration against the stop-the-world
// eager copy.
type DSMModeRow struct {
	Mode string
	// TotalSeconds is end-to-end runtime with one mid-run container move.
	TotalSeconds float64
	// ResumeLagSeconds is the time between the migration request being
	// honoured and the thread running on the destination.
	ResumeLagSeconds float64
	// PagesMoved counts pages that crossed the interconnect.
	PagesMoved uint64
}

// AblationDSMMode runs the same migrating workload with the hDSM's
// on-demand pulls (the paper's design) and with eager whole-address-space
// copy, quantifying the no-stop-the-world benefit.
func AblationDSMMode(cfg Config) ([]DSMModeRow, error) {
	class := npb.ClassA
	if cfg.Scale == Quick {
		class = npb.ClassS
	}
	img, err := buildDefault(npb.CG, class, 1)
	if err != nil {
		return nil, err
	}
	ref, err := core.Run(img, core.NodeX86)
	if err != nil {
		return nil, err
	}
	moveAt := ref.Seconds * 0.4

	var rows []DSMModeRow
	for _, mode := range []string{"on-demand (hDSM)", "eager full copy"} {
		cl := core.NewTestbed()
		p, err := cl.Spawn(img, core.NodeX86)
		if err != nil {
			return nil, err
		}
		if mode != "on-demand (hDSM)" {
			p.SetEagerPageMigration(true)
		}
		var moveTime, resumeLag float64
		cl.OnMigration = func(ev kernel.MigrationEvent) {
			if moveTime == 0 {
				moveTime = ev.Time
				// Lag: transformation/copy latency plus transfer of the
				// shipped payload.
				resumeLag = ev.XformSeconds +
					cl.IC.RoundTripTime(ev.Time, ev.From, ev.To, ev.StateBytes+1024)
			}
		}
		requested := false
		for {
			if done, _ := p.Exited(); done {
				break
			}
			if !requested && cl.Time() >= moveAt {
				cl.RequestProcessMigration(p, core.NodeARM)
				requested = true
			}
			if !cl.Step() {
				return nil, fmt.Errorf("ablation dsm: drained")
			}
		}
		if err := p.Err(); err != nil {
			return nil, err
		}
		rows = append(rows, DSMModeRow{
			Mode:             mode,
			TotalSeconds:     cl.Time(),
			ResumeLagSeconds: resumeLag,
			PagesMoved:       cl.Kernels[core.NodeARM].PagesIn,
		})
		cfg.printf("ablation dsm %-18s total=%8.4fs resume-lag=%8.1fµs pages=%d\n",
			mode, cl.Time(), resumeLag*1e6, cl.Kernels[core.NodeARM].PagesIn)
	}
	return rows, nil
}

// RackScaleRow is one policy's result on the four-machine rack.
type RackScaleRow struct {
	Policy      string
	EnergyJ     float64
	MakespanSec float64
	Migrations  int
}

// RackScale is the extension the paper's conclusion predicts: the same
// mechanisms at rack scale. A four-machine rack (two x86, two projected
// ARM) runs the sustained mix under the static and dynamic policies.
func RackScale(cfg Config) ([]RackScaleRow, error) {
	return rackScaleImpl(cfg)
}
