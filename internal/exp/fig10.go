package exp

import (
	"fmt"

	"heterodc/internal/core"
	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/npb"
	"heterodc/internal/trace"
)

// Fig10Result holds the stack-transformation latency distribution for one
// benchmark in one direction (latency is measured on the SOURCE machine,
// which performs the transformation).
type Fig10Result struct {
	Bench   npb.Bench
	SrcArch isa.Arch
	// LatenciesUs are per-migration transformation latencies in µs.
	LatenciesUs []float64
	Summary     trace.Summary
}

// Fig10 reproduces Figure 10: stack-transformation latency at (up to
// maxPoints) migration points of CG, EP, FT and IS, in both directions.
// The thread bounces between machines at every migration point, so every
// reachable point in the binary is exercised.
func Fig10(cfg Config) ([]*Fig10Result, error) {
	class := npb.ClassA
	maxMigrations := 4000
	if cfg.Scale == Quick {
		class = npb.ClassS
		maxMigrations = 400
	}
	var out []*Fig10Result
	for _, b := range []npb.Bench{npb.CG, npb.EP, npb.FT, npb.IS} {
		img, err := buildDefault(b, class, 1)
		if err != nil {
			return nil, err
		}
		perArch := map[isa.Arch][]float64{}

		cl := core.NewTestbed()
		p, err := cl.Spawn(img, core.NodeX86)
		if err != nil {
			return nil, err
		}
		count := 0
		cl.OnMigration = func(ev kernel.MigrationEvent) {
			perArch[ev.FromArch] = append(perArch[ev.FromArch], ev.XformSeconds*1e6)
			count++
			if count < maxMigrations {
				_ = cl.RequestMigration(p, ev.Tid, 1-ev.To)
			}
		}
		if err := cl.RequestMigration(p, 0, core.NodeARM); err != nil {
			return nil, err
		}
		if _, err := cl.RunProcess(p); err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", b, err)
		}
		for _, arch := range isa.Arches {
			ls := perArch[arch]
			r := &Fig10Result{Bench: b, SrcArch: arch, LatenciesUs: ls, Summary: trace.Summarize(ls)}
			out = append(out, r)
			cfg.printf("fig10 %-4s from %-6s: %s (µs)\n", b, arch, r.Summary)
		}
	}
	return out, nil
}

// Fig10ShapeHolds checks the paper's claims: the x86 machine transforms
// stacks in under ~400 µs in the typical case, the ARM machine takes about
// twice as long, and latencies never threaten migration frequency (< ~2 ms).
func Fig10ShapeHolds(rs []*Fig10Result) error {
	med := map[isa.Arch][]float64{}
	for _, r := range rs {
		if r.Summary.N == 0 {
			continue
		}
		if r.Summary.Max > 2500 {
			return fmt.Errorf("fig10: %s from %s max %.0fµs too large", r.Bench, r.SrcArch, r.Summary.Max)
		}
		med[r.SrcArch] = append(med[r.SrcArch], r.Summary.Median)
	}
	mx := trace.Mean(med[isa.X86])
	ma := trace.Mean(med[isa.ARM64])
	if mx == 0 || ma == 0 {
		return fmt.Errorf("fig10: missing data")
	}
	if mx > 450 {
		return fmt.Errorf("fig10: x86 median latency %.0fµs exceeds ~400µs", mx)
	}
	if ratio := ma / mx; ratio < 1.4 || ratio > 3.2 {
		return fmt.Errorf("fig10: ARM/x86 latency ratio %.2f outside ~2x band", ratio)
	}
	return nil
}
