package exp

import "testing"

// TestTopologyShape runs the oversubscription sweep (which internally
// compares the seq and par engines byte for byte) and checks every claimed
// trend: cross-rack costs grow with oversubscription, in-rack costs don't.
func TestTopologyShape(t *testing.T) {
	rows, err := Topology(Config{Scale: Quick}, TopologyOptions{Seed: 1})
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	if len(rows) != 6 { // {1,4,8} x {seq,par}
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	if err := TopologyShapeHolds(rows); err != nil {
		t.Fatalf("shape: %v", err)
	}
}

// TestTopologyShapeHoldsRejects feeds the checker violated shapes.
func TestTopologyShapeHoldsRejects(t *testing.T) {
	good := func() []TopologyRow {
		var rows []TopologyRow
		for _, e := range []string{"seq", "par"} {
			for i, o := range []float64{1, 4} {
				rows = append(rows, TopologyRow{
					Engine: e, Oversub: o,
					InRackRTTSec: 1e-6, CrossRackRTTSec: 2e-6 + float64(i)*1e-6,
					GossipDetectSec:  4e-3 + float64(i)*1e-4,
					MigrateInRackSec: 1e-4, MigrateCrossRackSec: 2e-4 + float64(i)*1e-4,
					FaninInRackSec: 1e-4, FaninCrossRackSec: 2e-4 + float64(i)*1e-4,
				})
			}
		}
		return rows
	}
	if err := TopologyShapeHolds(good()); err != nil {
		t.Fatalf("valid shape rejected: %v", err)
	}
	bad := good()
	bad[1].GossipDetectSec = bad[0].GossipDetectSec // growth violated
	if err := TopologyShapeHolds(bad); err == nil {
		t.Error("flat gossip detection accepted")
	}
	bad = good()
	bad[1].MigrateInRackSec *= 2 // flatness violated
	if err := TopologyShapeHolds(bad); err == nil {
		t.Error("moving in-rack migration accepted")
	}
	bad = good()
	bad[0].FalseDeaths = 1
	if err := TopologyShapeHolds(bad); err == nil {
		t.Error("false death accepted")
	}
	bad = good()
	bad[0].InRackRTTSec = bad[0].CrossRackRTTSec // asymmetry violated
	if err := TopologyShapeHolds(bad); err == nil {
		t.Error("in-rack >= cross-rack RTT accepted")
	}
}
