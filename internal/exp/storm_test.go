package exp

import (
	"testing"

	"heterodc/internal/fault"
)

// TestStormQuick runs the full chaos-under-traffic study at quick scale:
// both engines, fingerprints compared, and every machine-checked
// invariant (accounting identity, no checkpointed-job loss, no
// split-brain restore, graceful degradation with post-heal recovery).
func TestStormQuick(t *testing.T) {
	res, err := Storm(Config{Scale: Quick}, StormOptions{})
	if err != nil {
		t.Fatalf("storm: %v", err)
	}
	if err := StormInvariantsHold(res); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if !res.EnginesAgree {
		t.Fatalf("engines diverged")
	}
	if res.CrashEvents == 0 && res.UplinkCuts == 0 && res.GrayCPUWindows == 0 {
		t.Fatalf("quick storm drew no chaos at all; the study tested nothing")
	}
	if res.Deaths == 0 && res.Lost == 0 && res.Shed == 0 && res.Restores == 0 && res.EvacRequests == 0 {
		t.Fatalf("storm produced no failure response (no deaths, losses, sheds, restores or evacuations)")
	}
}

// TestStormDeterministic: the same options give byte-identical chaos
// plans (the storm process is a pure function of its spec).
func TestStormDeterministic(t *testing.T) {
	spec := fault.StormSpec{
		Seed: 7, Nodes: 6, Start: 0.05, End: 0.25,
		NodeMTTF: 0.6, NodeMTTR: 0.02,
		GrayCPUMTTF: 0.4, GrayCPUMTTR: 0.06, GrayCPUFactor: 4,
	}
	a, err := fault.GenerateStorm(spec)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	b, err := fault.GenerateStorm(spec)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(a.Crashes) != len(b.Crashes) || len(a.Slowdowns) != len(b.Slowdowns) {
		t.Fatalf("storm draws diverged between identical specs")
	}
	for i := range a.Crashes {
		if a.Crashes[i] != b.Crashes[i] {
			t.Fatalf("crash %d diverged: %+v vs %+v", i, a.Crashes[i], b.Crashes[i])
		}
	}
	for i := range a.Slowdowns {
		if a.Slowdowns[i] != b.Slowdowns[i] {
			t.Fatalf("slowdown %d diverged", i)
		}
	}
}

// TestStormInvariantsReject exercises the checker's teeth.
func TestStormInvariantsReject(t *testing.T) {
	base := func() *StormResult {
		return &StormResult{
			Offered: 10, Completed: 8, Shed: 1, Lost: 1,
			EnginesAgree: true,
			Phases: []StormPhase{
				{Phase: "pre-storm", Offered: 3, Completed: 3},
				{Phase: "storm", Offered: 4, Completed: 2, Shed: 1, Lost: 1, Violations: 1, ViolationRate: 0.5},
				{Phase: "post-heal", Offered: 3, Completed: 3},
			},
		}
	}
	if err := StormInvariantsHold(base()); err != nil {
		t.Fatalf("healthy result rejected: %v", err)
	}
	r := base()
	r.EnginesAgree = false
	if StormInvariantsHold(r) == nil {
		t.Errorf("engine divergence accepted")
	}
	r = base()
	r.Lost = 2
	if StormInvariantsHold(r) == nil {
		t.Errorf("broken accounting identity accepted")
	}
	r = base()
	r.CheckpointedLost = 1
	if StormInvariantsHold(r) == nil {
		t.Errorf("checkpointed-job loss accepted")
	}
	r = base()
	r.Phases[1].Completed = 0
	r.Phases[1].Lost = 3
	r.Completed = 6
	r.Lost = 3
	if StormInvariantsHold(r) == nil {
		t.Errorf("storm-phase collapse accepted")
	}
	r = base()
	r.Phases[2].Violations = 3
	r.Phases[2].ViolationRate = 1
	if StormInvariantsHold(r) == nil {
		t.Errorf("post-heal regression accepted")
	}
}
