package exp

import (
	"fmt"
	"math/rand"

	"heterodc/internal/npb"
	"heterodc/internal/sched"
	"heterodc/internal/topo"
	"heterodc/internal/trace"
)

// TimeScale relates the paper's wall-clock parameters to the reproduction's
// reduced problem classes: simulated job durations and arrival spacings are
// ~1000x shorter than the testbed's, so the paper's 60-240 s wave spacing
// becomes 60-240 ms. All ratios (energy, makespan, EDP) are scale-free.
const TimeScale = 1e-3

// Fig12Set is one sustained-workload job set evaluated under every policy.
type Fig12Set struct {
	Set     int
	Results []*sched.Result
}

// fig12Policies are the sustained study's policies: the static two-x86
// baseline and the two dynamic heterogeneous policies.
func fig12Policies() []sched.Policy {
	return []sched.Policy{
		sched.StaticX86Pair(),
		sched.DynamicBalanced(),
		sched.DynamicUnbalanced(),
	}
}

func (c Config) fig12Params() (sets, jobs, conc int, classes []npb.Class) {
	switch c.Scale {
	case Quick:
		return 2, 6, 3, []npb.Class{npb.ClassS}
	case Default:
		return 4, 14, 5, []npb.Class{npb.ClassS, npb.ClassA}
	default:
		return 10, 40, 6, []npb.Class{npb.ClassS, npb.ClassA, npb.ClassA, npb.ClassB}
	}
}

// Fig12 reproduces Figure 12: sustained workloads (a fixed number of jobs
// in flight, each completion admitting the next) under static and dynamic
// policies, reporting per-machine energy and the makespan ratio to the
// static baseline. The ARM power model uses the paper's McPAT FinFET
// projection.
func Fig12(cfg Config) ([]*Fig12Set, error) {
	sets, jobs, conc, classes := cfg.fig12Params()
	var out []*Fig12Set
	for set := 0; set < sets; set++ {
		js := sched.GenerateJobs(int64(1000+set), jobs, classes, nil)
		fs := &Fig12Set{Set: set}
		for _, pol := range fig12Policies() {
			cl, models, err := sched.TestbedFor(pol, true, topo.FlatSpec())
			if err != nil {
				return nil, err
			}
			r := sched.NewRunner(cl, pol, models)
			res, err := r.Run(sched.Workload{Jobs: js, Concurrency: conc})
			if err != nil {
				return nil, fmt.Errorf("fig12 set %d %s: %w", set, pol.Name(), err)
			}
			fs.Results = append(fs.Results, res)
			cfg.printf("fig12 set-%d %-22s energy=%8.2fJ (", set, pol.Name(), res.EnergyTotal)
			for i, e := range res.EnergyCPU {
				if i > 0 {
					cfg.printf(" + ")
				}
				cfg.printf("%.2f", e)
			}
			cfg.printf(") makespan=%.3fs migrations=%d\n", res.Makespan, res.Migrations)
		}
		out = append(out, fs)
	}
	return out, nil
}

// Fig12Summary aggregates energy savings and makespan ratios of the dynamic
// policies relative to the static baseline.
type Fig12Summary struct {
	// AvgEnergySavingPct[policy] relative to static x86(2).
	AvgEnergySavingPct map[string]float64
	MaxEnergySavingPct map[string]float64
	AvgMakespanRatio   map[string]float64
}

// SummarizeFig12 computes the aggregate rows the paper reports.
func SummarizeFig12(sets []*Fig12Set) *Fig12Summary {
	s := &Fig12Summary{
		AvgEnergySavingPct: map[string]float64{},
		MaxEnergySavingPct: map[string]float64{},
		AvgMakespanRatio:   map[string]float64{},
	}
	counts := map[string]int{}
	for _, fs := range sets {
		var static *sched.Result
		for _, r := range fs.Results {
			if r.Policy == "static x86(2)" {
				static = r
			}
		}
		if static == nil {
			continue
		}
		for _, r := range fs.Results {
			if r == static {
				continue
			}
			saving := (1 - r.EnergyTotal/static.EnergyTotal) * 100
			s.AvgEnergySavingPct[r.Policy] += saving
			if saving > s.MaxEnergySavingPct[r.Policy] {
				s.MaxEnergySavingPct[r.Policy] = saving
			}
			s.AvgMakespanRatio[r.Policy] += r.Makespan / static.Makespan
			counts[r.Policy]++
		}
	}
	for k, n := range counts {
		s.AvgEnergySavingPct[k] /= float64(n)
		s.AvgMakespanRatio[k] /= float64(n)
	}
	return s
}

// Fig12ShapeHolds checks the paper's claims: the dynamic heterogeneous
// policies save energy on average versus two static x86 machines, at the
// cost of a longer makespan.
func Fig12ShapeHolds(sets []*Fig12Set) error {
	s := SummarizeFig12(sets)
	for _, pol := range []string{"dynamic balanced", "dynamic unbalanced"} {
		if s.AvgEnergySavingPct[pol] <= 0 {
			return fmt.Errorf("fig12: %s shows no average energy saving (%.1f%%)",
				pol, s.AvgEnergySavingPct[pol])
		}
		if s.AvgMakespanRatio[pol] < 1.0 {
			return fmt.Errorf("fig12: %s is faster than the static pair (%.2fx) — unexpected",
				pol, s.AvgMakespanRatio[pol])
		}
	}
	return nil
}

// Fig13Set is one periodic-arrival job set under both policies.
type Fig13Set struct {
	Set     int
	Static  *sched.Result
	Dynamic *sched.Result
}

func (c Config) fig13Params() (sets, waves, jobsPerWave int, classes []npb.Class) {
	switch c.Scale {
	case Quick:
		return 2, 2, 3, []npb.Class{npb.ClassS}
	case Default:
		return 4, 3, 5, []npb.Class{npb.ClassS, npb.ClassA}
	default:
		return 10, 5, 14, []npb.Class{npb.ClassS, npb.ClassA, npb.ClassA, npb.ClassB}
	}
}

// Fig13 reproduces Figure 13: periodic workloads — waves of job arrivals
// spaced 60-240 (scaled) seconds apart — comparing the static two-x86
// baseline with the dynamic balanced policy on energy and energy-delay
// product. Idle gaps between waves are where consolidation pays.
func Fig13(cfg Config) ([]*Fig13Set, error) {
	sets, waves, perWave, classes := cfg.fig13Params()
	var out []*Fig13Set
	for set := 0; set < sets; set++ {
		rng := rand.New(rand.NewSource(int64(2000 + set)))
		spacing := func(r *rand.Rand, i int) float64 {
			if i%perWave == 0 && i > 0 {
				return (60 + 180*r.Float64()) * TimeScale
			}
			return 0
		}
		js := sched.GenerateJobs(int64(3000+set), waves*perWave, classes, spacing)
		_ = rng

		fs := &Fig13Set{Set: set}
		for _, pol := range []sched.Policy{sched.StaticX86Pair(), sched.DynamicBalanced()} {
			cl, models, err := sched.TestbedFor(pol, true, topo.FlatSpec())
			if err != nil {
				return nil, err
			}
			r := sched.NewRunner(cl, pol, models)
			res, err := r.Run(sched.Workload{Jobs: js})
			if err != nil {
				return nil, fmt.Errorf("fig13 set %d %s: %w", set, pol.Name(), err)
			}
			if pol.Name() == "static x86(2)" {
				fs.Static = res
			} else {
				fs.Dynamic = res
			}
			cfg.printf("fig13 set-%d %-22s energy=%8.2fJ EDP=%10.4f makespan=%.3fs migrations=%d\n",
				set, pol.Name(), res.EnergyTotal, res.EDP, res.Makespan, res.Migrations)
		}
		out = append(out, fs)
	}
	return out, nil
}

// Fig13ShapeHolds checks the paper's claims: migration reduces energy for
// (almost) every set, substantially on average.
func Fig13ShapeHolds(sets []*Fig13Set) error {
	var savings, edps []float64
	for _, fs := range sets {
		if fs.Static == nil || fs.Dynamic == nil {
			return fmt.Errorf("fig13: incomplete set %d", fs.Set)
		}
		savings = append(savings, (1-fs.Dynamic.EnergyTotal/fs.Static.EnergyTotal)*100)
		edps = append(edps, (1-fs.Dynamic.EDP/fs.Static.EDP)*100)
	}
	if avg := trace.Mean(savings); avg <= 0 {
		return fmt.Errorf("fig13: no average energy saving (%.1f%%)", avg)
	}
	return nil
}
