package exp

import (
	"fmt"
	"testing"

	"heterodc/internal/fault"
	"heterodc/internal/kernel"
	"heterodc/internal/member"
	"heterodc/internal/sched"
	"heterodc/internal/topo"
)

// runComposedFaults drives a membership-attached fat-tree fleet through a
// composed fault plan — a rack power event, an uplink leg cut and a one-way
// bipartition, all overlapping — on one engine, and digests the detector's
// observables. The windows deliberately heal in a staircase so precedence
// (any active window severs) and heal ordering (a leg clears only at the
// last covering window's heal) are both on the critical path of every
// suspicion and refutation the digest counts.
func runComposedFaults(t *testing.T, engine string) (member.Stats, string) {
	t.Helper()
	cl, fab, err := kernel.NewClusterTopo(sched.RackArches(4), kernel.DefaultInterconnect(),
		topo.FatTree(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if engine == "par" {
		cl.UseParallelEngine(0)
	}
	plan := fault.Plan{
		Seed: 5,
		// Rack 1 power event: both members die together, power back at 24ms.
		Crashes: []fault.Crash{
			{Node: 2, At: 0.010, RecoverAt: 0.024},
			{Node: 3, At: 0.010, RecoverAt: 0.024},
		},
		Partitions: []fault.PartitionWindow{
			// Rack 0's uplink transmit path dies first and heals last...
			{Legs: fab.Legs(fab.UplinkUp(0)), Start: 0.006, HealAt: 0.034},
			// ...while node 1's NIC goes half-dead inside that window.
			{GroupA: []int{1}, OneWay: true, Start: 0.014, HealAt: 0.028},
		},
	}
	cl.InjectFaults(plan)
	svc, err := member.Attach(cl, member.Config{HeartbeatPeriod: 2e-3, Seed: plan.Seed})
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(0.060)
	return svc.Stats(), fmt.Sprintf("%+v|%+v", svc.Stats(), svc.Deaths())
}

// TestComposedFaultsBothEngines: overlapping rack-power, uplink-leg and
// one-way windows must produce byte-identical membership behaviour under
// the sequential and parallel engines — the composed cut/heal schedule is
// part of the deterministic contract, not just each window in isolation.
func TestComposedFaultsBothEngines(t *testing.T) {
	st, seq := runComposedFaults(t, "seq")
	_, par := runComposedFaults(t, "par")
	if seq != par {
		t.Fatalf("engines diverged under composed faults:\nseq: %s\npar: %s", seq, par)
	}
	// The composed windows must actually exercise the detector: outages
	// raise suspicions, and the staircase heals let refutation/readmission
	// run before any verdict lands.
	if st.Suspicions == 0 {
		t.Error("composed faults raised no suspicion; the scenario tested nothing")
	}
	if st.Readmissions == 0 && st.Refutations == 0 {
		t.Error("no readmission or refutation: the heal ordering never ran")
	}
}
