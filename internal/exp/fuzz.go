package exp

import (
	"fmt"
	"time"

	"heterodc/internal/fuzz"
)

// The fuzz experiment drives the differential fuzzer as a sweep: generate
// programs from sequential seeds, push each through the five-way oracle,
// and reduce + archive anything that diverges. It is the throughput-facing
// entry point (programs/sec) next to the go-test entry point
// (FuzzDifferential), and the 30-second CI smoke runs through it.

// FuzzOptions parameterises the sweep.
type FuzzOptions struct {
	// Seed is the first generator seed; programs use Seed, Seed+1, ...
	Seed int64
	// Budget bounds the sweep's wall-clock time. Zero selects a default by
	// scale: 5s quick, 30s default, 120s full.
	Budget time.Duration
	// MaxPrograms stops the sweep early after that many programs (0: none).
	MaxPrograms int
	// CorpusDir is where reduced repros are written; empty selects the
	// package corpus (internal/fuzz/testdata).
	CorpusDir string
}

// FuzzResult summarises one sweep.
type FuzzResult struct {
	Programs       int
	Divergences    int
	Unreduced      int // divergences the reducer failed to shrink/archive
	Repros         []string
	Skipped        int // ungradable programs (reference-run timeouts)
	Seconds        float64
	ProgramsPerSec float64
	// Points/Images total the migration points and checkpoint images the
	// sweep pushed through the oracle.
	Points uint64
	Images int
}

// Fuzz runs the sweep. A build failure is returned as an error — the
// generator promises valid programs, so that is a harness bug, not a
// finding. Divergences are findings: reduced, archived and counted.
func Fuzz(cfg Config, opts FuzzOptions) (*FuzzResult, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	budget := opts.Budget
	if budget == 0 {
		switch cfg.Scale {
		case Quick:
			budget = 5 * time.Second
		case Full:
			budget = 120 * time.Second
		default:
			budget = 30 * time.Second
		}
	}
	dir := opts.CorpusDir
	if dir == "" {
		dir = fuzz.CorpusDir()
	}

	res := &FuzzResult{}
	start := time.Now()
	for i := 0; ; i++ {
		if opts.MaxPrograms > 0 && res.Programs >= opts.MaxPrograms {
			break
		}
		if time.Since(start) > budget {
			break
		}
		s := seed + int64(i)
		p := fuzz.Generate(s)
		v, err := fuzz.RunProg(p, fuzz.OracleOptions{})
		if err != nil {
			if _, berr := buildProbe(p); berr != nil {
				return nil, fmt.Errorf("exp: fuzz seed %d: %w", s, err)
			}
			res.Skipped++
			continue
		}
		res.Programs++
		res.Points += v.Points
		res.Images += v.Images
		if !v.Ref().OK {
			return nil, fmt.Errorf("exp: fuzz seed %d: generated program failed on reference node", s)
		}
		if v.Diverged {
			res.Divergences++
			cfg.printf("seed %d DIVERGED: %s\n", s, v.Diffs[0])
			check := func(c *fuzz.Prog) bool {
				cv, cerr := fuzz.RunProg(c, fuzz.OracleOptions{})
				return cerr == nil && cv.Diverged
			}
			red, checks := fuzz.Reduce(p, check, 150)
			path, werr := fuzz.WriteRepro(dir, fuzz.Render(red))
			if werr != nil {
				res.Unreduced++
				cfg.printf("  reduction archived FAILED: %v\n", werr)
				continue
			}
			res.Repros = append(res.Repros, path)
			cfg.printf("  reduced in %d checks -> %s\n", checks, path)
		}
		if res.Programs%25 == 0 {
			el := time.Since(start).Seconds()
			cfg.printf("  %5d programs %6.1f/s  %d divergences  %d points\n",
				res.Programs, float64(res.Programs)/el, res.Divergences, res.Points)
		}
	}
	res.Seconds = time.Since(start).Seconds()
	if res.Seconds > 0 {
		res.ProgramsPerSec = float64(res.Programs) / res.Seconds
	}
	cfg.printf("fuzz: %d programs in %.1fs (%.1f/s), %d divergences (%d unreduced), %d skipped, %d points, %d ckpt images\n",
		res.Programs, res.Seconds, res.ProgramsPerSec,
		res.Divergences, res.Unreduced, res.Skipped, res.Points, res.Images)
	return res, nil
}

// buildProbe distinguishes "program does not build" (generator bug, fatal)
// from "oracle could not grade it" (timeout, skippable).
func buildProbe(p *fuzz.Prog) (bool, error) {
	_, err := fuzz.BuildProg(p)
	return err == nil, err
}
