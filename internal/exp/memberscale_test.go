package exp

import "testing"

// TestMemberScaleStudy is the scaling acceptance gate at CI size: SWIM's
// per-node traffic must be flat and its state sub-quadratic while the lease
// baseline stays dense, the injected crash must be detected by both
// protocols at every size (SWIM no slower than lease), and 1% loss must
// never produce a false death. The 8/64/256 acceptance grid runs through
// hdcbench -exp member-scaling; this covers the same invariants at {8, 16}.
func TestMemberScaleStudy(t *testing.T) {
	rows, err := MemberScale(Config{Scale: Quick}, MemberScaleOptions{Seed: 3})
	if err != nil {
		t.Fatalf("member-scale study: %v", err)
	}
	if len(rows) != 4 { // 2 sizes x 2 protocols
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	if err := MemberScaleShapeHolds(rows); err != nil {
		t.Error(err)
	}
	for _, r := range rows {
		if r.Protocol == "swim" && r.MsgsPerNodeRound > 6 {
			t.Errorf("swim n=%d: %.2f msgs/node/round, want O(1) (few per round)",
				r.Nodes, r.MsgsPerNodeRound)
		}
		if r.Protocol == "swim" && r.StateRecords > 4*r.Nodes {
			t.Errorf("swim n=%d: %d state records, want O(n) after one crash",
				r.Nodes, r.StateRecords)
		}
	}
}

// TestMemberScaleDeterministicAcrossEngines: the workload-free fleet study
// is pure membership traffic, so both cluster engines must produce the
// identical rows.
func TestMemberScaleDeterministicAcrossEngines(t *testing.T) {
	opts := MemberScaleOptions{Seed: 9, Sizes: []int{8}}
	seq, err := MemberScale(Config{Scale: Quick, Engine: "seq"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MemberScale(Config{Scale: Quick, Engine: "par"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts diverge: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("engines diverge at row %d:\nseq %+v\npar %+v", i, seq[i], par[i])
		}
	}
}
