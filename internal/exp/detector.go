package exp

import (
	"bytes"
	"fmt"

	"heterodc/internal/ckpt"
	"heterodc/internal/core"
	"heterodc/internal/fault"
	"heterodc/internal/kernel"
	"heterodc/internal/member"
	"heterodc/internal/npb"
	"heterodc/internal/trace"
)

// DetectorOptions parameterises the failure-detector study.
type DetectorOptions struct {
	// Seed selects the deterministic fault streams.
	Seed int64
	// PeriodFracs are the heartbeat periods to sweep, as fractions of the
	// fault-free runtime. Empty means {1/80, 1/40, 1/20}.
	PeriodFracs []float64
}

// DetectorRow reports one benchmark under one heartbeat period and one
// crash scenario, with the detector (not the oracle) driving recovery.
type DetectorRow struct {
	Bench string
	// Scenario is "perm" (node 1 never returns) or "transient" (node 1
	// returns after the detector has already declared it dead — a false
	// positive the rejoin must refute).
	Scenario string
	// HeartbeatPeriod and SuspectTimeout are the detector configuration.
	HeartbeatPeriod, SuspectTimeout float64
	// Base is the fault-free runtime; Seconds the runtime under the plan.
	Base, Seconds float64
	ExitOK        bool
	OutputMatch   bool
	// DetectionLatency is the gap between the physical crash and the first
	// death declaration — the window where stale placement decisions live.
	DetectionLatency float64
	// Detector counters for the run.
	HeartbeatsSent, HeartbeatsFenced uint64
	Suspicions, FalseSuspicions      uint64
	Deaths                           uint64
	// Checkpoint-recovery counters: work lost to the failure is what the
	// restore replays plus the detection latency spent waiting.
	Restores     int
	WorkReplayed float64
	// Fence counters: messages dropped for addressing the dead incarnation,
	// and stale-incarnation deliveries that escaped the fence (must be 0).
	MessagesFenced, StaleUnfenced uint64
	// Stranded counts tracked jobs that did not reach a clean exit (must
	// be 0: every job ends restored or refuted, never abandoned).
	Stranded int
	// TraceDropped counts trace events the run's bounded ring discarded —
	// non-zero means the event log above is incomplete.
	TraceDropped int
}

// runDetectorOnce executes a benchmark under plan with the lease detector
// installed and checkpoint-based recovery armed. The job is spawned ON the
// failing node, so the death verdict strands real state (origin authority,
// threads and pages) without a mid-run bulk migration congesting the fabric
// — at millisecond-scale benchmark runtimes a container transfer starves
// the heartbeat channel long enough to fake a death all by itself. The run
// ends when the job's final incarnation exits; detection latency is read
// from the detector's death records against the plan's crash time.
func runDetectorOnce(cfg Config, b npb.Bench, k npb.Class, plan fault.Plan,
	pol kernel.CkptPolicy, mcfg member.Config) (
	*core.Result, *member.Service, ckpt.Stats, *kernel.Cluster, *trace.EventLog, error) {
	img, err := npb.Build(b, k, 1)
	if err != nil {
		return nil, nil, ckpt.Stats{}, nil, nil, err
	}
	cl := core.NewTestbed()
	if cfg.Engine == "par" || cfg.Engine == "parallel" {
		// The SWIM detector is group-local while quiet, so the parallel
		// engine keeps sharing groups concurrent between protocol actions
		// and collapses only around the crash and its suspicion machinery;
		// results are byte-identical either way.
		cl.UseParallelEngine(0)
	}
	cl.InjectFaults(plan)
	log := trace.NewEventLog(4096)
	cl.SetTracer(log)
	mgr := ckpt.NewManager(cl)
	svc, err := member.Attach(cl, mcfg)
	if err != nil {
		return nil, nil, ckpt.Stats{}, nil, nil, err
	}
	p, err := cl.Spawn(img, core.NodeARM)
	if err != nil {
		return nil, nil, ckpt.Stats{}, nil, nil, err
	}
	mgr.Track(p, img, pol)
	for {
		cur := mgr.Current(p)
		if exited, _ := cur.Exited(); exited {
			if mgr.Current(p) != cur {
				continue
			}
			break
		}
		if !cl.Step() {
			return nil, nil, ckpt.Stats{}, nil, nil,
				fmt.Errorf("exp: detector: cluster drained before %s.%s exited", b, k)
		}
	}
	final := mgr.Current(p)
	if err := final.Err(); err != nil {
		return nil, svc, mgr.Stats(), cl, log,
			fmt.Errorf("exp: detector: %s.%s stranded despite detector + recovery: %w", b, k, err)
	}
	_, code := final.Exited()
	res := &core.Result{ExitCode: code, Output: final.Output(), Seconds: cl.Time()}
	for tid := int64(0); ; tid++ {
		t := final.Thread(tid)
		if t == nil {
			break
		}
		res.Migrations += t.Migrations
	}
	return res, svc, mgr.Stats(), cl, log, nil
}

// Detector sweeps the heartbeat period and reports how detection latency,
// false-positive handling and recovery cost move with it: shorter leases
// detect faster (less work lost waiting) but spend more heartbeat traffic
// and suspect more eagerly. Each period runs a permanent node-1 crash
// (detection must trigger a checkpoint restore) and a transient outage
// tuned to outlive the detector's patience (the declaration is a false
// positive the rejoining node must refute via its bumped incarnation).
// Every run must end with zero stranded jobs and zero un-fenced
// stale-incarnation messages.
func Detector(cfg Config, opts DetectorOptions) ([]DetectorRow, error) {
	fracs := opts.PeriodFracs
	if len(fracs) == 0 {
		fracs = []float64{1.0 / 80, 1.0 / 40, 1.0 / 20}
	}
	var rows []DetectorRow
	for _, bk := range cfg.chaosBenches() {
		img, err := npb.Build(bk.b, bk.k, 1)
		if err != nil {
			return nil, fmt.Errorf("exp: detector build %s.%s: %w", bk.b, bk.k, err)
		}
		ref, err := core.Run(img, core.NodeX86)
		if err != nil {
			return nil, fmt.Errorf("exp: detector baseline %s.%s: %w", bk.b, bk.k, err)
		}
		cfg.printf("%s.%s baseline: %.4fs\n", bk.b, bk.k, ref.Seconds)
		crashAt := 0.55 * ref.Seconds
		pol := kernel.CkptPolicy{EverySeconds: 0.08 * ref.Seconds}
		for i, frac := range fracs {
			mcfg := member.Config{HeartbeatPeriod: frac * ref.Seconds}
			// Detection needs ~10 periods of silence (suspicion timeout plus
			// the capped backoff re-checks); a 15-period outage is a
			// guaranteed false positive.
			outage := 15 * mcfg.HeartbeatPeriod
			scenarios := []struct {
				name string
				plan fault.Plan
			}{
				{"perm", fault.Plan{
					Seed:    opts.Seed + int64(i),
					Crashes: []fault.Crash{{Node: 1, At: crashAt, RecoverAt: 0}},
				}},
				{"transient", fault.Plan{
					Seed:    opts.Seed + int64(i) + 100,
					Crashes: []fault.Crash{{Node: 1, At: crashAt, RecoverAt: crashAt + outage}},
				}},
			}
			for _, sc := range scenarios {
				res, svc, cs, cl, log, err := runDetectorOnce(cfg, bk.b, bk.k, sc.plan, pol, mcfg)
				stranded := 0
				if err != nil {
					if res == nil && svc == nil {
						return nil, err
					}
					// The job did not reach a clean exit: count it stranded
					// rather than aborting the study, so the row (and the
					// caller's zero-stranded assertion) carries the failure.
					stranded = 1
					res = &core.Result{ExitCode: -1}
				}
				st := svc.Stats()
				fenced, stale := cl.FenceStats()
				row := DetectorRow{
					Bench:           fmt.Sprintf("%s.%s", bk.b, bk.k),
					Scenario:        sc.name,
					HeartbeatPeriod: svc.Config().HeartbeatPeriod,
					SuspectTimeout:  svc.Config().SuspectTimeout,
					Base:            ref.Seconds, Seconds: res.Seconds,
					ExitOK:           res.ExitCode == 0 && stranded == 0,
					OutputMatch:      bytes.Equal(res.Output, ref.Output),
					HeartbeatsSent:   st.HeartbeatsSent,
					HeartbeatsFenced: st.HeartbeatsFenced,
					Suspicions:       st.Suspicions,
					FalseSuspicions:  st.FalseSuspicions,
					Deaths:           st.Deaths,
					Restores:         cs.Restores,
					WorkReplayed:     cs.WorkReplayedSeconds,
					MessagesFenced:   fenced,
					StaleUnfenced:    stale,
					Stranded:         stranded,
				}
				if ds := svc.Deaths(); len(ds) > 0 {
					row.DetectionLatency = ds[0].At - crashAt
				}
				if log != nil {
					row.TraceDropped = log.Dropped()
				}
				rows = append(rows, row)
				cfg.printf("  hb=%.2gms %-9s detect=%.2gms deaths=%d falsepos=%d restores=%d replayed=%.4fs hbsent=%d fenced=%d/%d exit=%v match=%v\n",
					row.HeartbeatPeriod*1e3, sc.name, row.DetectionLatency*1e3,
					row.Deaths, row.FalseSuspicions, row.Restores, row.WorkReplayed,
					row.HeartbeatsSent, row.MessagesFenced, row.StaleUnfenced,
					row.ExitOK, row.OutputMatch)
			}
		}
	}
	return rows, nil
}
