package exp

import "testing"

func TestAblationPointPlacementQuick(t *testing.T) {
	rows, err := AblationPointPlacement(quick())
	if err != nil {
		t.Fatalf("ablation: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	// More aggressive placement => more points and smaller max gaps, but
	// also more overhead.
	if rows[2].Points <= rows[1].Points || rows[1].Points <= rows[0].Points {
		t.Errorf("point counts not monotone: %d %d %d", rows[0].Points, rows[1].Points, rows[2].Points)
	}
	if rows[2].MaxGapInstrs > rows[0].MaxGapInstrs {
		t.Errorf("every-back-edge max gap %d exceeds function-boundaries %d",
			rows[2].MaxGapInstrs, rows[0].MaxGapInstrs)
	}
	if rows[2].OverheadPct < rows[1].OverheadPct {
		t.Logf("note: every-back-edge overhead %.2f%% below default %.2f%% (small workload noise)",
			rows[2].OverheadPct, rows[1].OverheadPct)
	}
	for _, r := range rows {
		t.Logf("%-22s overhead=%+.2f%% points=%d max-gap=%d", r.Config, r.OverheadPct, r.Points, r.MaxGapInstrs)
	}
}

func TestAblationDSMModeQuick(t *testing.T) {
	rows, err := AblationDSMMode(quick())
	if err != nil {
		t.Fatalf("ablation: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	onDemand, eager := rows[0], rows[1]
	// The paper's point: on-demand migration resumes (nearly) immediately;
	// eager copy stalls the thread for the whole transfer.
	if onDemand.ResumeLagSeconds >= eager.ResumeLagSeconds {
		t.Errorf("on-demand resume lag %.1fµs not below eager %.1fµs",
			onDemand.ResumeLagSeconds*1e6, eager.ResumeLagSeconds*1e6)
	}
	if onDemand.PagesMoved == 0 || eager.PagesMoved == 0 {
		t.Error("no page traffic observed")
	}
	// Eager moves at least as many pages as demand paging needed.
	if eager.PagesMoved < onDemand.PagesMoved {
		t.Errorf("eager moved fewer pages (%d) than on-demand (%d)",
			eager.PagesMoved, onDemand.PagesMoved)
	}
	for _, r := range rows {
		t.Logf("%-18s total=%.4fs lag=%.1fµs pages=%d", r.Mode, r.TotalSeconds, r.ResumeLagSeconds*1e6, r.PagesMoved)
	}
}

func TestRackScaleQuick(t *testing.T) {
	rows, err := RackScale(quick())
	if err != nil {
		t.Fatalf("rack: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	baseline := rows[0]
	for _, r := range rows[1:] {
		t.Logf("%s: energy %.2fJ (baseline %.2fJ), makespan %.3fs (baseline %.3fs)",
			r.Policy, r.EnergyJ, baseline.EnergyJ, r.MakespanSec, baseline.MakespanSec)
		if r.EnergyJ <= 0 || r.MakespanSec <= 0 {
			t.Errorf("%s: degenerate result", r.Policy)
		}
	}
}
