package exp

import "testing"

// TestPartitionStudy is the split-brain acceptance gate: under every seeded
// bipartition, no process is ever live (or restored) on both sides of the
// cut, quorumless observers defer instead of executing verdicts, healing
// leaves exactly one incarnation per job with every view reconverged — and
// the whole run is byte-identical on the sequential and parallel engines
// (Partition itself fails on any engine divergence).
func TestPartitionStudy(t *testing.T) {
	rows, err := Partition(Config{Scale: Quick}, PartitionOptions{Seed: 17})
	if err != nil {
		t.Fatalf("partition study: %v", err)
	}
	if len(rows) != 8 { // 4 scenarios x 2 engines
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	if err := PartitionInvariantsHold(rows); err != nil {
		t.Error(err)
	}
	// The minority-isolated scenario must actually exercise healing
	// reconciliation: the wrongly-declared nodes rejoin under bumped
	// incarnations.
	for _, r := range rows {
		if r.Scenario == "minority-isolated" && r.Rejoins == 0 {
			t.Errorf("%s/%s: no node ever rejoined after the heal", r.Scenario, r.Engine)
		}
	}
}
