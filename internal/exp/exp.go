// Package exp implements the experiment harness: one entry point per table
// and figure of the paper's evaluation, each regenerating the corresponding
// rows/series on the simulated testbed. cmd/hdcbench and the repository's
// benchmark suite drive these.
package exp

import (
	"fmt"
	"io"

	"heterodc/internal/compiler"
	"heterodc/internal/core"
	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/link"
	"heterodc/internal/npb"
	"heterodc/internal/topo"
)

// Scale selects experiment size.
type Scale int

const (
	// Quick: smoke-test size (CI, unit tests).
	Quick Scale = iota
	// Default: minutes-scale, preserves every trend.
	Default
	// Full: the paper's full parameter grid (tens of minutes).
	Full
)

// Config parameterises a harness run.
type Config struct {
	Scale Scale
	W     io.Writer

	// RackNodes sizes the rack-scale experiment's machine ensemble; <= 0
	// selects the canonical 4-node rack.
	RackNodes int
	// Engine selects the cluster time engine for experiments that honour it
	// (rack scale): "seq" (default) or "par".
	Engine string

	// Topo selects the interconnect fabric for experiments that honour it:
	// "flat" (default, the legacy single pipe) or "fattree". Racks and
	// Oversub shape the fat tree; 0 selects the topo package defaults.
	Topo    string
	Racks   int
	Oversub float64
}

// topoSpec resolves the Config's fabric selection to a topo.Spec.
func (c Config) topoSpec() topo.Spec {
	switch c.Topo {
	case "", topo.KindFlat:
		return topo.FlatSpec()
	default:
		return topo.Spec{Kind: c.Topo, Racks: c.Racks, Oversub: c.Oversub}
	}
}

func (c Config) out() io.Writer {
	if c.W == nil {
		return io.Discard
	}
	return c.W
}

func (c Config) printf(format string, args ...interface{}) {
	fmt.Fprintf(c.out(), format, args...)
}

// classes returns the problem classes exercised at this scale.
func (c Config) classes() []npb.Class {
	switch c.Scale {
	case Quick:
		return []npb.Class{npb.ClassS}
	case Default:
		return []npb.Class{npb.ClassA, npb.ClassB}
	default:
		return []npb.Class{npb.ClassA, npb.ClassB, npb.ClassC}
	}
}

// threadCounts returns the thread sweep at this scale.
func (c Config) threadCounts() []int {
	switch c.Scale {
	case Quick:
		return []int{1, 2}
	case Default:
		return []int{1, 2, 4}
	default:
		return []int{1, 2, 4, 8}
	}
}

// runNative runs img on a fresh single-machine cluster of arch and returns
// (seconds, cluster) for stat extraction.
func runNative(img *link.Image, arch isa.Arch) (float64, *kernel.Cluster, error) {
	cl := core.NewSingle(arch)
	p, err := cl.Spawn(img, 0)
	if err != nil {
		return 0, nil, err
	}
	if _, err := cl.RunProcess(p); err != nil {
		return 0, nil, err
	}
	return cl.Time(), cl, nil
}

// buildVariants caches the non-default toolchain builds the experiments use.
var (
	noMigOpts = core.BuildOptions{
		Compiler: compiler.Options{Migration: false},
		Linker:   link.Options{Aligned: true},
	}
	unalignedOpts = core.BuildOptions{
		Compiler: compiler.DefaultOptions(),
		Linker:   link.Options{Aligned: false},
	}
	entryOnlyOpts = core.BuildOptions{
		Compiler: compiler.Options{
			Migration: true,
			MigrationOpts: compiler.MigrationOptions{
				FunctionEntry: true, FunctionExit: true, LoopBackEdges: false,
			},
		},
		Linker: link.Options{Aligned: true},
	}
)

// buildDefault builds the standard migratable image.
func buildDefault(b npb.Bench, c npb.Class, threads int) (*link.Image, error) {
	return npb.Build(b, c, threads)
}

// buildNoMigration builds the uninstrumented baseline (Figures 6-9).
func buildNoMigration(b npb.Bench, c npb.Class, threads int) (*link.Image, error) {
	return npb.BuildWith(b, c, threads, noMigOpts, "nomig")
}

// buildUnaligned builds the natural-layout baseline (Table 1).
func buildUnaligned(b npb.Bench, c npb.Class, threads int) (*link.Image, error) {
	return npb.BuildWith(b, c, threads, unalignedOpts, "unaligned")
}

// buildEntryOnly builds with migration points at function boundaries only
// (the Figures 3-5 "Pre"-like configuration and the frequency ablation).
func buildEntryOnly(b npb.Bench, c npb.Class, threads int) (*link.Image, error) {
	return npb.BuildWith(b, c, threads, entryOnlyOpts, "entryonly")
}
