package exp

import (
	"testing"

	"heterodc/internal/core"
	"heterodc/internal/npb"
)

// TestChaosCorrectUnderFaults is the acceptance gate for the fault
// machinery: NPB kernels under a lossy fabric, a degraded-link window, a
// mid-run node crash and a permanent node crash (recovered from checkpoint)
// must still exit cleanly with byte-identical output — faults cost time,
// never correctness — and the slowdown stays bounded.
func TestChaosCorrectUnderFaults(t *testing.T) {
	rows, err := Chaos(Config{Scale: Quick}, ChaosOptions{Seed: 7})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if len(rows) != 8 { // 2 benches x 4 plans
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if !r.ExitOK {
			t.Errorf("%s under %s: process did not exit cleanly", r.Bench, r.Plan)
		}
		if !r.OutputMatch {
			t.Errorf("%s under %s: output diverged from the fault-free run", r.Bench, r.Plan)
		}
		// Bounded slowdown: generous factor plus the scheduled downtime
		// (the crash plan freezes node 1 for 15% of the baseline).
		limit := r.Base*5 + 0.2*r.Base + 10e-3
		if r.Seconds > limit {
			t.Errorf("%s under %s: %.4fs exceeds bound %.4fs (base %.4fs)",
				r.Bench, r.Plan, r.Seconds, limit, r.Base)
		}
		if r.Plan == "node-crash" && (r.CrashEvents != 1 || r.RecoverEvents != 1) {
			t.Errorf("%s: crash plan recorded %d crash / %d recover events, want 1/1",
				r.Bench, r.CrashEvents, r.RecoverEvents)
		}
		if r.Plan == "node-crash-perm" {
			// The node never comes back: the run only finishes because the
			// manager restored the job from its last checkpoint.
			if r.CrashEvents != 1 || r.RecoverEvents != 0 {
				t.Errorf("%s: permanent-crash plan recorded %d crash / %d recover events, want 1/0",
					r.Bench, r.CrashEvents, r.RecoverEvents)
			}
			if r.Restores < 1 {
				t.Errorf("%s: permanent-crash plan finished without a checkpoint restore", r.Bench)
			}
			if r.Checkpoints < 2 || r.CkptBytes <= 0 {
				t.Errorf("%s: implausible checkpoint counters: images=%d bytes=%d",
					r.Bench, r.Checkpoints, r.CkptBytes)
			}
		}
	}
	// The lossy plans must actually have injected faults somewhere.
	var dropped uint64
	for _, r := range rows {
		dropped += r.Dropped
	}
	if dropped == 0 {
		t.Error("no message was ever dropped across all plans")
	}
}

// TestChaosReproducibleFromSeed: the same seed must produce the identical
// fault history, counter for counter.
func TestChaosReproducibleFromSeed(t *testing.T) {
	ref, err := coreRunIS(t)
	if err != nil {
		t.Fatal(err)
	}
	// IS moves real data through the DSM after the migration; a 20% loss
	// rate guarantees visible fault activity to compare across runs.
	plans := chaosPlans(ChaosOptions{Seed: 21, DropProb: 0.2}, ref)
	lossy := plans[0]
	run := func() ([5]uint64, float64) {
		res, stats, aborted, _, err := runChaosOnce(npb.IS, npb.ClassS, lossy.plan, 0.25*ref)
		if err != nil {
			t.Fatalf("chaos run: %v", err)
		}
		return [5]uint64{stats.Dropped, stats.Retries, stats.Duplicated, stats.Exhausted, aborted}, res.Seconds
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("two runs of the same plan diverged: %v/%g vs %v/%g", c1, s1, c2, s2)
	}
	if c1[0] == 0 {
		t.Error("lossy plan dropped nothing; the reproducibility check is vacuous")
	}
	// A different seed gives a different history.
	other := chaosPlans(ChaosOptions{Seed: 22, DropProb: 0.2}, ref)[0]
	_, stats3, _, _, err := runChaosOnce(npb.IS, npb.ClassS, other.plan, 0.25*ref)
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Dropped == c1[0] && stats3.Retries == c1[1] {
		t.Log("note: different seeds produced identical counters (possible but unlikely)")
	}
}

// coreRunIS returns the fault-free IS.S runtime on the testbed.
func coreRunIS(t *testing.T) (float64, error) {
	t.Helper()
	img, err := npb.Build(npb.IS, npb.ClassS, 1)
	if err != nil {
		return 0, err
	}
	res, err := core.Run(img, core.NodeX86)
	if err != nil {
		return 0, err
	}
	return res.Seconds, nil
}
