package exp

import (
	"fmt"

	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/npb"
	"heterodc/internal/power"
	"heterodc/internal/sched"
)

// rackScaleImpl runs the rack-scale extension: a four-machine ensemble.
// The baseline is four static x86 machines; the heterogeneous rack swaps
// two of them for (power-projected) ARM machines and migrates jobs
// dynamically — the setting in which the paper predicts "greater benefits
// ... at the rack or datacenter scale".
func rackScaleImpl(cfg Config) ([]RackScaleRow, error) {
	var jobsN, conc int
	var classes []npb.Class
	switch cfg.Scale {
	case Quick:
		jobsN, conc, classes = 10, 6, []npb.Class{npb.ClassS}
	case Default:
		jobsN, conc, classes = 20, 8, []npb.Class{npb.ClassS, npb.ClassA}
	default:
		jobsN, conc, classes = 60, 12, []npb.Class{npb.ClassS, npb.ClassA, npb.ClassA, npb.ClassB}
	}
	jobs := sched.GenerateJobs(4242, jobsN, classes, nil)

	type setup struct {
		policy sched.Policy
		arches []isa.Arch
	}
	setups := []setup{
		{sched.NewBalanced("static x86(4)", false),
			[]isa.Arch{isa.X86, isa.X86, isa.X86, isa.X86}},
		{sched.NewBalanced("rack dynamic balanced", true),
			[]isa.Arch{isa.X86, isa.X86, isa.ARM64, isa.ARM64}},
		{sched.NewArchWeighted("rack dynamic unbalanced", true, 2.2),
			[]isa.Arch{isa.X86, isa.X86, isa.ARM64, isa.ARM64}},
	}

	var rows []RackScaleRow
	for _, s := range setups {
		cl := kernel.NewCluster(s.arches, kernel.DefaultInterconnect())
		models := power.DefaultModels(cl, true)
		r := sched.NewRunner(cl, s.policy, models)
		res, err := r.Run(sched.Workload{Jobs: jobs, Concurrency: conc})
		if err != nil {
			return nil, fmt.Errorf("rack %s: %w", s.policy.Name(), err)
		}
		rows = append(rows, RackScaleRow{
			Policy: res.Policy, EnergyJ: res.EnergyTotal,
			MakespanSec: res.Makespan, Migrations: res.Migrations,
		})
		cfg.printf("rack %-24s energy=%8.2fJ makespan=%.3fs migrations=%d\n",
			res.Policy, res.EnergyTotal, res.Makespan, res.Migrations)
	}
	return rows, nil
}
