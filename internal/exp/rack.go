package exp

import (
	"fmt"

	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/npb"
	"heterodc/internal/power"
	"heterodc/internal/sched"
)

// rackScaleImpl runs the rack-scale extension on an N-machine ensemble
// (cfg.RackNodes, default 4). The baseline is N static x86 machines; the
// heterogeneous rack swaps the back half for (power-projected) ARM machines
// and migrates jobs dynamically — the setting in which the paper predicts
// "greater benefits ... at the rack or datacenter scale". cfg.Engine picks
// the cluster time engine ("seq" or "par"). Both are deterministic; the
// job runner observes the cluster between engine steps, which are epochs
// under "par", so its placement decisions (and thus exact joules) differ
// slightly from "seq" while every trend is preserved.
func rackScaleImpl(cfg Config) ([]RackScaleRow, error) {
	nodes := cfg.RackNodes
	if nodes <= 0 {
		nodes = 4
	}
	if nodes < 2 {
		return nil, fmt.Errorf("rack: need at least 2 nodes, got %d", nodes)
	}
	var jobsN, conc int
	var classes []npb.Class
	switch cfg.Scale {
	case Quick:
		jobsN, conc, classes = 10, 6, []npb.Class{npb.ClassS}
	case Default:
		jobsN, conc, classes = 20, 8, []npb.Class{npb.ClassS, npb.ClassA}
	default:
		jobsN, conc, classes = 60, 12, []npb.Class{npb.ClassS, npb.ClassA, npb.ClassA, npb.ClassB}
	}
	// The job counts above saturate the canonical 4-node rack; keep the
	// per-machine pressure comparable as the rack grows.
	jobsN = jobsN * nodes / 4
	if jobsN < 4 {
		jobsN = 4
	}
	conc = conc * nodes / 4
	if conc < 2 {
		conc = 2
	}
	jobs := sched.GenerateJobs(4242, jobsN, classes, nil)

	static := make([]isa.Arch, nodes)
	for i := range static {
		static[i] = isa.X86
	}
	mixed := sched.RackArches(nodes)

	type setup struct {
		policy sched.Policy
		arches []isa.Arch
	}
	setups := []setup{
		{sched.NewBalanced(fmt.Sprintf("static x86(%d)", nodes), false), static},
		{sched.NewBalanced("rack dynamic balanced", true), mixed},
		{sched.NewArchWeighted("rack dynamic unbalanced", true, 2.2), mixed},
	}

	var rows []RackScaleRow
	for _, s := range setups {
		cl, _, err := kernel.NewClusterTopo(s.arches, kernel.DefaultInterconnect(), cfg.topoSpec())
		if err != nil {
			return nil, fmt.Errorf("rack: %w", err)
		}
		if cfg.Engine == "par" || cfg.Engine == "parallel" {
			cl.UseParallelEngine(0)
		}
		models := power.DefaultModels(cl, true)
		r := sched.NewRunner(cl, s.policy, models)
		res, err := r.Run(sched.Workload{Jobs: jobs, Concurrency: conc})
		if err != nil {
			return nil, fmt.Errorf("rack %s: %w", s.policy.Name(), err)
		}
		rows = append(rows, RackScaleRow{
			Policy: res.Policy, EnergyJ: res.EnergyTotal,
			MakespanSec: res.Makespan, Migrations: res.Migrations,
		})
		cfg.printf("rack %-24s nodes=%d energy=%8.2fJ makespan=%.3fs migrations=%d\n",
			res.Policy, nodes, res.EnergyTotal, res.Makespan, res.Migrations)
	}
	return rows, nil
}
