package exp

import (
	"fmt"
	"math"
	"strings"

	"heterodc/internal/core"
	"heterodc/internal/fault"
	"heterodc/internal/kernel"
	"heterodc/internal/mem"
	"heterodc/internal/member"
	"heterodc/internal/npb"
	"heterodc/internal/sched"
	"heterodc/internal/topo"
)

// TopologyOptions parameterises the fabric-oversubscription study.
type TopologyOptions struct {
	// Seed selects the deterministic rotation/fault streams.
	Seed int64
	// Racks and PerRack shape the fat tree; 0 selects 4 racks of 3 nodes
	// (a shape where the 1:1/4:1/8:1 sweep has three distinct bottleneck
	// regimes — at 3 nodes per rack no swept ratio ties the uplink to the
	// access rate).
	Racks, PerRack int
	// Oversubs are the uplink oversubscription ratios to sweep; empty
	// selects the acceptance grid {1, 4, 8}.
	Oversubs []float64
}

// TopologyRow reports one (oversubscription, engine) cell: the costs that
// must grow with oversubscription (everything cross-rack) and the costs
// that must not (everything in-rack).
type TopologyRow struct {
	Engine  string  `json:"engine"`
	Racks   int     `json:"racks"`
	PerRack int     `json:"per_rack"`
	Nodes   int     `json:"nodes"`
	Oversub float64 `json:"oversub"`

	// Idle-fabric request/reply round trips.
	InRackRTTSec    float64 `json:"in_rack_rtt_sec"`
	CrossRackRTTSec float64 `json:"cross_rack_rtt_sec"`
	// GossipDetectSec is crash-to-first-verdict for one permanent crash
	// under SWIM gossip while cross-rack background flows load the
	// uplinks; FalseDeaths counts verdicts against healthy nodes (must
	// stay 0 — congestion may delay detection, never fake it).
	GossipDetectSec float64 `json:"gossip_detect_sec"`
	FalseDeaths     int     `json:"false_deaths"`
	// Migration transfer time (request to completed thread arrival) for an
	// in-rack and a cross-rack process migration racing a bulk transfer.
	MigrateInRackSec    float64 `json:"migrate_in_rack_sec"`
	MigrateCrossRackSec float64 `json:"migrate_cross_rack_sec"`
	// Checkpoint fan-in: page gathers into one node from peers in the same
	// rack vs one sender per remote rack.
	FaninInRackSec    float64 `json:"fanin_in_rack_sec"`
	FaninCrossRackSec float64 `json:"fanin_cross_rack_sec"`
	// MaxUplinkUtil is the busiest uplink's utilisation over the gossip
	// scenario's horizon.
	MaxUplinkUtil float64 `json:"max_uplink_util"`

	fingerprint string
}

// topologyDims resolves the study's fabric shape.
func topologyDims(opts TopologyOptions) (racks, perRack int, oversubs []float64) {
	racks, perRack = opts.Racks, opts.PerRack
	if racks <= 0 {
		racks = 4
	}
	if perRack <= 0 {
		perRack = 3
	}
	oversubs = opts.Oversubs
	if len(oversubs) == 0 {
		oversubs = []float64{1, 4, 8}
	}
	return racks, perRack, oversubs
}

// fp adds one labelled float to a fingerprint at full bit precision.
func fp(b *strings.Builder, label string, v float64) {
	fmt.Fprintf(b, "%s=%016x;", label, math.Float64bits(v))
}

// topoFlowEndpoints returns the background flow's (src, dst) for rack r:
// the last node of r sending to the last node of the next rack, chosen so
// the flows load every ToR uplink while leaving the measurement nodes'
// access links untouched.
func topoFlowEndpoints(r, racks, perRack int) (int, int) {
	return r*perRack + perRack - 1, ((r+1)%racks)*perRack + perRack - 1
}

// runTopologyOnce executes the full scenario set for one oversubscription
// ratio on one engine.
func runTopologyOnce(cfg Config, engine string, racks, perRack int, oversub float64, seed int64) (TopologyRow, error) {
	n := racks * perRack
	spec := topo.Spec{Kind: topo.KindFatTree, Racks: racks, Oversub: oversub}
	row := TopologyRow{Engine: engine, Racks: racks, PerRack: perRack, Nodes: n, Oversub: oversub}
	var print strings.Builder

	hdr := kernel.DefaultInterconnect().HeaderBytes
	pageWire := int64(mem.PageSize) + hdr

	// --- Idle-fabric round trips (node 0 to an in-rack and a cross-rack
	// peer), the raw two-hop vs four-hop asymmetry.
	{
		fab, err := topo.Build(spec, n)
		if err != nil {
			return row, err
		}
		probe := func(to int) float64 {
			arrive := fab.Estimate(0, 0, to, hdr)
			return fab.Estimate(arrive, to, 0, pageWire)
		}
		row.InRackRTTSec = probe(1)
		row.CrossRackRTTSec = probe(perRack)
		fp(&print, "rtt-in", row.InRackRTTSec)
		fp(&print, "rtt-cross", row.CrossRackRTTSec)
	}

	// --- Gossip detection under loaded uplinks: one permanent crash, SWIM
	// detection racing periodic cross-rack bursts. Burst size is tuned so
	// queueing delays stay under the probe timeout (no fake suspicions of
	// healthy nodes) while every verdict-poll ack still queues.
	{
		const period = 1e-3
		crashAt := 20 * period
		horizon := crashAt + 30*period
		crash := perRack // first node of rack 1
		cl, fab, err := kernel.NewClusterTopo(sched.RackArches(n), kernel.DefaultInterconnect(), spec)
		if err != nil {
			return row, err
		}
		if engine == "par" || engine == "parallel" {
			cl.UseParallelEngine(0)
		}
		cl.InjectFaults(fault.Plan{
			Seed:    seed,
			Crashes: []fault.Crash{{Node: crash, At: crashAt, RecoverAt: 0}},
		})
		svc, err := member.Attach(cl, member.Config{HeartbeatPeriod: period, Seed: seed})
		if err != nil {
			return row, err
		}
		// Background load: every burstGap, each rack pushes one burst to
		// the next rack, from the moment of the crash to the horizon. The
		// charges interleave with the run — occupancy must be consumed at
		// the simulated instant the flow exists, never ahead of it.
		const burstGap = 125e-6
		const burstBytes = 35_000
		for k := 0; ; k++ {
			at := crashAt + float64(k)*burstGap
			if at >= horizon {
				break
			}
			cl.Run(at)
			for r := 0; r < racks; r++ {
				src, dst := topoFlowEndpoints(r, racks, perRack)
				fab.Transmit(at, src, dst, burstBytes)
			}
		}
		cl.Run(horizon)
		for _, d := range svc.Deaths() {
			if d.Node == crash && row.GossipDetectSec == 0 {
				row.GossipDetectSec = d.At - crashAt
			}
			if d.Node != crash {
				row.FalseDeaths++
			}
		}
		st := svc.Stats()
		fmt.Fprintf(&print, "gossip-stats=%+v;deaths=%d;", st, len(svc.Deaths()))
		fp(&print, "gossip-detect", row.GossipDetectSec)
		maxUtil := 0.0
		for _, ls := range fab.UplinkStats() {
			fmt.Fprintf(&print, "link(%s)=%d/%d/%016x/%016x;", ls.Name, ls.Msgs, ls.Queued,
				math.Float64bits(ls.BusySec), math.Float64bits(ls.QueueSec))
			if u := ls.BusySec / horizon; u > maxUtil {
				maxUtil = u
			}
		}
		row.MaxUplinkUtil = maxUtil
	}

	// --- Migration under load: a running job's thread migrates while a
	// 1 MiB bulk transfer per rack occupies the uplinks; the metric is
	// request-to-exit, which absorbs exactly the queueing the migrate
	// payload suffers on the way over. The in-rack hop avoids every
	// uplink, so its cost must not move with oversubscription.
	img, err := npb.Build(npb.IS, npb.ClassS, 1)
	if err != nil {
		return row, err
	}
	ref, err := core.Run(img, core.NodeX86)
	if err != nil {
		return row, err
	}
	migrate := func(target int) (float64, error) {
		cl, fab, err := kernel.NewClusterTopo(sched.RackArches(n), kernel.DefaultInterconnect(), spec)
		if err != nil {
			return 0, err
		}
		if engine == "par" || engine == "parallel" {
			cl.UseParallelEngine(0)
		}
		p, err := cl.Spawn(img, 0)
		if err != nil {
			return 0, err
		}
		treq := 0.3 * ref.Seconds
		cl.Run(treq)
		for r := 0; r < racks; r++ {
			src, dst := topoFlowEndpoints(r, racks, perRack)
			fab.Transmit(treq, src, dst, 1<<20)
		}
		migrated := false
		cl.OnMigration = func(ev kernel.MigrationEvent) { migrated = true }
		cl.RequestProcessMigration(p, target)
		if _, err := cl.RunProcess(p); err != nil {
			return 0, err
		}
		if !migrated {
			return 0, fmt.Errorf("exp: topology: migration 0->%d never happened", target)
		}
		return cl.Time() - treq, nil
	}
	if row.MigrateInRackSec, err = migrate(1); err != nil {
		return row, err
	}
	if row.MigrateCrossRackSec, err = migrate(perRack); err != nil {
		return row, err
	}
	fp(&print, "mig-in", row.MigrateInRackSec)
	fp(&print, "mig-cross", row.MigrateCrossRackSec)

	// --- Checkpoint fan-in: page-sized gathers into node 0, either from
	// two in-rack peers or from one sender per remote rack (the restore
	// path pulling image pages across the fabric). Cross-rack fan-in is
	// bottlenecked by node 0's spine->ToR downlink once oversubscription
	// pushes it below the access rate.
	const pagesPerSender = 32
	{
		fab, err := topo.Build(spec, n)
		if err != nil {
			return row, err
		}
		end := 0.0
		for i := 0; i < pagesPerSender; i++ {
			for _, s := range []int{1, 2} {
				if d := fab.Transmit(0, s, 0, pageWire); d > end {
					end = d
				}
			}
		}
		row.FaninInRackSec = end
	}
	{
		fab, err := topo.Build(spec, n)
		if err != nil {
			return row, err
		}
		end := 0.0
		for i := 0; i < pagesPerSender; i++ {
			for r := 1; r < racks; r++ {
				if d := fab.Transmit(0, r*perRack, 0, pageWire); d > end {
					end = d
				}
			}
		}
		row.FaninCrossRackSec = end
	}
	fp(&print, "fanin-in", row.FaninInRackSec)
	fp(&print, "fanin-cross", row.FaninCrossRackSec)

	row.fingerprint = print.String()
	return row, nil
}

// Topology sweeps uplink oversubscription over a fat-tree rack fabric and
// measures what the flat pipe cannot express: gossip failure detection,
// thread migration and checkpoint fan-in each pay for crossing loaded
// uplinks, while in-rack traffic is immune. Every scenario runs on both
// engines and must be byte-identical (a fabric pins the parallel engine to
// one inline sharing group, so this is the membership guarantee extended
// to the fabric).
func Topology(cfg Config, opts TopologyOptions) ([]TopologyRow, error) {
	racks, perRack, oversubs := topologyDims(opts)
	if racks < 2 {
		return nil, fmt.Errorf("exp: topology: need at least 2 racks (got %d)", racks)
	}
	if perRack < 2 {
		return nil, fmt.Errorf("exp: topology: need at least 2 nodes per rack (got %d)", perRack)
	}
	var rows []TopologyRow
	for _, o := range oversubs {
		var per [2]TopologyRow
		for i, engine := range []string{"seq", "par"} {
			row, err := runTopologyOnce(cfg, engine, racks, perRack, o, opts.Seed)
			if err != nil {
				return nil, err
			}
			per[i] = row
			cfg.printf("topology %-3s oversub=%3g rtt %6.2f/%6.2fus detect=%7.3fms mig %7.3f/%7.3fms fanin %7.3f/%7.3fms util=%.3f\n",
				engine, o, row.InRackRTTSec*1e6, row.CrossRackRTTSec*1e6,
				row.GossipDetectSec*1e3, row.MigrateInRackSec*1e3, row.MigrateCrossRackSec*1e3,
				row.FaninInRackSec*1e3, row.FaninCrossRackSec*1e3, row.MaxUplinkUtil)
		}
		if per[0].fingerprint != per[1].fingerprint {
			return nil, fmt.Errorf("exp: topology: engines diverged at oversub %g:\nseq: %s\npar: %s",
				o, per[0].fingerprint, per[1].fingerprint)
		}
		rows = append(rows, per[0], per[1])
	}
	return rows, nil
}

// TopologyShapeHolds asserts the study's claims: every cross-rack cost
// grows strictly with oversubscription, every in-rack cost is flat, the
// in-rack cost never exceeds its cross-rack counterpart, the crash is
// always detected and congestion never fakes a death.
func TopologyShapeHolds(rows []TopologyRow) error {
	byEngine := map[string][]TopologyRow{}
	for _, r := range rows {
		if r.GossipDetectSec <= 0 {
			return fmt.Errorf("topology: %s at oversub %g never detected the crash", r.Engine, r.Oversub)
		}
		if r.FalseDeaths != 0 {
			return fmt.Errorf("topology: %s at oversub %g declared %d healthy nodes dead", r.Engine, r.Oversub, r.FalseDeaths)
		}
		if r.InRackRTTSec >= r.CrossRackRTTSec {
			return fmt.Errorf("topology: in-rack RTT %g not below cross-rack %g at oversub %g",
				r.InRackRTTSec, r.CrossRackRTTSec, r.Oversub)
		}
		if r.MigrateInRackSec > r.MigrateCrossRackSec {
			return fmt.Errorf("topology: in-rack migration %g above cross-rack %g at oversub %g",
				r.MigrateInRackSec, r.MigrateCrossRackSec, r.Oversub)
		}
		if r.FaninInRackSec > r.FaninCrossRackSec {
			return fmt.Errorf("topology: in-rack fan-in %g above cross-rack %g at oversub %g",
				r.FaninInRackSec, r.FaninCrossRackSec, r.Oversub)
		}
		byEngine[r.Engine] = append(byEngine[r.Engine], r)
	}
	flat := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
	}
	for engine, rs := range byEngine {
		if len(rs) < 2 {
			return fmt.Errorf("topology: engine %s swept only %d oversubscription ratios", engine, len(rs))
		}
		for i := 1; i < len(rs); i++ {
			lo, hi := rs[i-1], rs[i]
			if hi.Oversub <= lo.Oversub {
				return fmt.Errorf("topology: %s rows not in ascending oversub order", engine)
			}
			for _, c := range []struct {
				name   string
				lo, hi float64
			}{
				{"cross-rack RTT", lo.CrossRackRTTSec, hi.CrossRackRTTSec},
				{"gossip detection", lo.GossipDetectSec, hi.GossipDetectSec},
				{"cross-rack migration", lo.MigrateCrossRackSec, hi.MigrateCrossRackSec},
				{"cross-rack fan-in", lo.FaninCrossRackSec, hi.FaninCrossRackSec},
			} {
				if c.hi <= c.lo {
					return fmt.Errorf("topology: %s %s did not grow with oversubscription (%g at %g, %g at %g)",
						engine, c.name, c.lo, lo.Oversub, c.hi, hi.Oversub)
				}
			}
			for _, c := range []struct {
				name   string
				lo, hi float64
			}{
				{"in-rack RTT", lo.InRackRTTSec, hi.InRackRTTSec},
				{"in-rack migration", lo.MigrateInRackSec, hi.MigrateInRackSec},
				{"in-rack fan-in", lo.FaninInRackSec, hi.FaninInRackSec},
			} {
				if !flat(c.lo, c.hi) {
					return fmt.Errorf("topology: %s %s moved with oversubscription (%g at %g, %g at %g)",
						engine, c.name, c.lo, lo.Oversub, c.hi, hi.Oversub)
				}
			}
		}
	}
	return nil
}
