package exp

import (
	"fmt"

	"heterodc/internal/core"
	"heterodc/internal/isa"
	"heterodc/internal/link"
	"heterodc/internal/npb"
	"heterodc/internal/trace"
)

// Fig345Result reproduces Figures 3-5: histograms of the number of
// instructions between migration opportunities, before ("Pre": points only
// at function boundaries, the naturally occurring equivalence points) and
// after ("Post": with loop back-edge points inserted, the paper's final
// placement guided by its Valgrind analysis).
type Fig345Result struct {
	Bench npb.Bench
	Class npb.Class
	Pre   trace.DecadeHistogram
	Post  trace.DecadeHistogram
	// PreMax / PostMax are the largest observed inter-point gaps.
	PreMax, PostMax uint64
}

// Fig345 runs the instruction-distance analysis for CG, IS and FT.
func Fig345(cfg Config) ([]*Fig345Result, error) {
	class := npb.ClassA
	if cfg.Scale == Quick {
		class = npb.ClassS
	}
	var out []*Fig345Result
	for _, b := range []npb.Bench{npb.CG, npb.IS, npb.FT} {
		r := &Fig345Result{Bench: b, Class: class}

		imgPre, err := buildEntryOnly(b, class, 1)
		if err != nil {
			return nil, err
		}
		if err := measurePoints(imgPre, &r.Pre, &r.PreMax); err != nil {
			return nil, fmt.Errorf("fig345 pre %s: %w", b, err)
		}
		imgPost, err := buildDefault(b, class, 1)
		if err != nil {
			return nil, err
		}
		if err := measurePoints(imgPost, &r.Post, &r.PostMax); err != nil {
			return nil, fmt.Errorf("fig345 post %s: %w", b, err)
		}
		out = append(out, r)
		cfg.printf("fig3-5 %-4s pre: max gap %d instrs; post: max gap %d instrs\n",
			b, r.PreMax, r.PostMax)
	}
	return out, nil
}

// measurePoints runs img serially on the x86 machine with the
// migration-point hook attached, recording the distribution of retired
// instructions between consecutive migration points.
func measurePoints(img *link.Image, h *trace.DecadeHistogram, max *uint64) error {
	cl := core.NewSingle(isa.X86)
	cl.Kernels[0].InstrumentCalls(nil, func(gap uint64) {
		h.Add(float64(gap))
		if gap > *max {
			*max = gap
		}
	})
	p, err := cl.Spawn(img, 0)
	if err != nil {
		return err
	}
	_, err = cl.RunProcess(p)
	return err
}

// Print renders the histograms (one row per decade, as in the figures'
// log-scale x axis).
func (r *Fig345Result) Print(cfg Config) {
	cfg.printf("\nFigure 3-5 (%s class %s): instructions between migration points\n", r.Bench, r.Class)
	cfg.printf("Pre (function boundaries only), max gap %d:\n%s", r.PreMax, r.Pre.String())
	cfg.printf("Post (with loop back-edge points), max gap %d:\n%s", r.PostMax, r.Post.String())
}

// Fig6789Row is one migration-point-overhead measurement.
type Fig6789Row struct {
	Bench   npb.Bench
	Class   npb.Class
	Threads int
	Arch    isa.Arch
	// BaseSeconds: uninstrumented; InstrSeconds: with migration points.
	BaseSeconds  float64
	InstrSeconds float64
	// OverheadPct = (instr/base - 1) * 100.
	OverheadPct float64
}

// Fig6789 reproduces Figures 6-9: the execution-time overhead of inserted
// migration points for CG and IS on both machines across classes and
// thread counts.
func Fig6789(cfg Config) ([]Fig6789Row, error) {
	var rows []Fig6789Row
	for _, b := range []npb.Bench{npb.CG, npb.IS} {
		for _, c := range cfg.classes() {
			for _, th := range cfg.threadCounts() {
				base, err := buildNoMigration(b, c, th)
				if err != nil {
					return nil, err
				}
				instr, err := buildDefault(b, c, th)
				if err != nil {
					return nil, err
				}
				for _, arch := range isa.Arches {
					tb, _, err := runNative(base, arch)
					if err != nil {
						return nil, fmt.Errorf("fig6-9 base %s.%s: %w", b, c, err)
					}
					ti, _, err := runNative(instr, arch)
					if err != nil {
						return nil, fmt.Errorf("fig6-9 instr %s.%s: %w", b, c, err)
					}
					row := Fig6789Row{
						Bench: b, Class: c, Threads: th, Arch: arch,
						BaseSeconds: tb, InstrSeconds: ti,
						OverheadPct: (ti/tb - 1) * 100,
					}
					rows = append(rows, row)
					cfg.printf("fig6-9 %-4s %s t%d %-6s base=%8.4fs instrumented=%8.4fs overhead=%+.2f%%\n",
						b, c, th, arch, tb, ti, row.OverheadPct)
				}
			}
		}
	}
	return rows, nil
}

// Fig6789ShapeHolds checks the paper's claim: overheads are small (mostly
// below ~5%, always below ~10% here).
func Fig6789ShapeHolds(rows []Fig6789Row) error {
	over5 := 0
	for _, r := range rows {
		if r.OverheadPct > 10 {
			return fmt.Errorf("fig6-9: %s.%s t%d on %s overhead %.1f%% > 10%%",
				r.Bench, r.Class, r.Threads, r.Arch, r.OverheadPct)
		}
		if r.OverheadPct > 5 {
			over5++
		}
	}
	if over5*2 > len(rows) {
		return fmt.Errorf("fig6-9: more than half of configurations exceed 5%% overhead")
	}
	return nil
}
