package exp

import (
	"path/filepath"
	"testing"
)

// TestFuzzSweepQuick runs a tiny bounded sweep through the exp entry point:
// a handful of sequential seeds through the full five-way oracle. The
// current generator has no known divergences over this range, so any
// finding here is a fresh toolchain/kernel regression.
func TestFuzzSweepQuick(t *testing.T) {
	res, err := Fuzz(Config{Scale: Quick}, FuzzOptions{
		Seed:        1,
		MaxPrograms: 3,
		CorpusDir:   filepath.Join(t.TempDir(), "corpus"),
	})
	if err != nil {
		t.Fatalf("fuzz sweep: %v", err)
	}
	if res.Programs != 3 {
		t.Fatalf("swept %d programs, want 3", res.Programs)
	}
	if res.Divergences != 0 || res.Unreduced != 0 {
		t.Errorf("sweep found %d divergences (%d unreduced): %v",
			res.Divergences, res.Unreduced, res.Repros)
	}
	if res.Points == 0 || res.Images == 0 {
		t.Errorf("sweep exercised no migration points (%d) or checkpoint images (%d)",
			res.Points, res.Images)
	}
	if res.ProgramsPerSec <= 0 {
		t.Errorf("non-positive throughput %v", res.ProgramsPerSec)
	}
}
