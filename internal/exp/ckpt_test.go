package exp

import "testing"

// TestCkptExperimentShape is the acceptance gate for the checkpoint
// experiment: capture is invisible to the program (output always matches),
// shorter intervals write at least as many images as longer ones, and every
// permanent-crash recovery run restores exactly once and still reproduces
// the baseline output.
func TestCkptExperimentShape(t *testing.T) {
	res, err := Ckpt(Config{Scale: Quick}, CkptOptions{Seed: 9})
	if err != nil {
		t.Fatalf("ckpt experiment: %v", err)
	}
	if len(res.Overhead) != 8 || len(res.Recovery) != 8 { // 2 benches x 4 fracs
		t.Fatalf("got %d overhead / %d recovery rows, want 8/8",
			len(res.Overhead), len(res.Recovery))
	}
	byBench := map[string][]CkptOverheadRow{}
	for _, r := range res.Overhead {
		if !r.OutputMatch {
			t.Errorf("%s frac=%.2f: checkpointing changed the program output", r.Bench, r.IntervalFrac)
		}
		if r.Images < 1 {
			t.Errorf("%s frac=%.2f: no checkpoint was ever taken", r.Bench, r.IntervalFrac)
		}
		if r.Seconds < r.Base {
			t.Errorf("%s frac=%.2f: checkpointed run faster than baseline (%.6f < %.6f)",
				r.Bench, r.IntervalFrac, r.Seconds, r.Base)
		}
		byBench[r.Bench] = append(byBench[r.Bench], r)
	}
	for bench, rows := range byBench {
		// Fracs are swept in increasing order: image counts must not grow as
		// the interval lengthens.
		for i := 1; i < len(rows); i++ {
			if rows[i].Images > rows[i-1].Images {
				t.Errorf("%s: frac=%.2f wrote %d images but frac=%.2f wrote %d (shorter interval should write more)",
					bench, rows[i].IntervalFrac, rows[i].Images, rows[i-1].IntervalFrac, rows[i-1].Images)
			}
		}
	}
	for _, r := range res.Recovery {
		if r.Restores != 1 {
			t.Errorf("%s frac=%.2f: %d restores, want exactly 1", r.Bench, r.IntervalFrac, r.Restores)
		}
		if !r.OutputMatch {
			t.Errorf("%s frac=%.2f: recovered run diverged from the baseline output", r.Bench, r.IntervalFrac)
		}
		if r.WorkReplayed < 0 {
			t.Errorf("%s frac=%.2f: negative replay window %.6f", r.Bench, r.IntervalFrac, r.WorkReplayed)
		}
	}
}
