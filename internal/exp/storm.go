package exp

import (
	"fmt"

	"heterodc/internal/fault"
	"heterodc/internal/kernel"
	"heterodc/internal/member"
	"heterodc/internal/npb"
	"heterodc/internal/power"
	"heterodc/internal/sched"
	"heterodc/internal/topo"
	"heterodc/internal/traffic"
)

// StormOptions parameterises the chaos-under-traffic study.
type StormOptions struct {
	// Seed selects the storm's event stream and the workload's priority
	// stamps; <= 0 picks the default.
	Seed int64
	// Rate is the offered arrival rate in jobs/sec; <= 0 picks the scale
	// default.
	Rate float64
	// SLO is the per-job latency objective; the zero value picks the
	// scale default.
	SLO traffic.SLO
	// MTTF/MTTR override the node-churn means in seconds; <= 0 picks the
	// scale defaults. Both must be overridden together (see
	// cmd/hdcbench's stormOptions validator).
	MTTF, MTTR float64
}

// StormPhase is the SLO scorecard for one slice of the run, bucketed by
// job arrival time: before the storm, during it, and after the heal.
type StormPhase struct {
	Phase     string  `json:"phase"`
	Offered   int     `json:"offered"`
	Completed int     `json:"completed"`
	Shed      int     `json:"shed"`
	Lost      int     `json:"lost"`
	P50Sec    float64 `json:"p50_sec"`
	P99Sec    float64 `json:"p99_sec"`
	MaxSec    float64 `json:"max_sec"`
	// Violations/ViolationRate are over the phase's completed jobs.
	Violations    int     `json:"violations"`
	ViolationRate float64 `json:"violation_rate"`
}

// StormResult is the chaos-under-traffic study's scorecard.
type StormResult struct {
	Nodes int `json:"nodes"`
	Racks int `json:"racks"`
	Jobs  int `json:"jobs"`

	RateJobsPerSec float64 `json:"rate_jobs_per_sec"`
	SLOTargetSec   float64 `json:"slo_target_sec"`
	BudgetFrac     float64 `json:"budget_frac"`
	StormStartSec  float64 `json:"storm_start_sec"`
	StormEndSec    float64 `json:"storm_end_sec"`

	// Injected chaos, as drawn from the seeded process.
	CrashEvents    int `json:"crash_events"`
	UplinkCuts     int `json:"uplink_cuts"`
	GrayCPUWindows int `json:"gray_cpu_windows"`
	GrayNICWindows int `json:"gray_nic_windows"`

	// Accounting over the whole run (shed+completed+lost == offered).
	Offered          int `json:"offered"`
	Completed        int `json:"completed"`
	Shed             int `json:"shed"`
	Lost             int `json:"lost"`
	CheckpointedLost int `json:"checkpointed_lost"`
	EvacRequests     int `json:"evac_requests"`
	Migrations       int `json:"migrations"`
	Checkpoints      int `json:"checkpoints"`
	Restores         int `json:"restores"`
	StaleLossEvents  int `json:"stale_loss_events"`

	Deaths          uint64 `json:"deaths"`
	FalseSuspicions uint64 `json:"false_suspicions"`

	MakespanSec float64      `json:"makespan_sec"`
	Phases      []StormPhase `json:"phases"`

	// EnginesAgree records bit-identical sequential/parallel fingerprints
	// over every per-job observable, the SLO report, the membership
	// counters and the restore log.
	EnginesAgree bool `json:"engines_agree"`
}

// stormParams resolves the scale's fleet shape, traffic and chaos process.
func stormParams(cfg Config, opts StormOptions) (racks, perRack, jobsN int, rate float64, slo traffic.SLO, spec fault.StormSpec) {
	switch cfg.Scale {
	case Quick:
		racks, perRack, jobsN = 3, 2, 36
		rate, slo = 200, traffic.SLO{LatencyTargetSec: 0.25, BudgetFrac: 0.10}
		spec = fault.StormSpec{
			Start: 0.05, End: 0.25,
			NodeMTTF: 0.6, NodeMTTR: 0.02,
			GrayCPUMTTF: 0.4, GrayCPUMTTR: 0.06, GrayCPUFactor: 4,
			GrayNICMTTF: 0.5, GrayNICMTTR: 0.05, GrayNICDrop: 0.3, GrayNICJitter: 1.5e-3,
			RackMTTF: 1.5, RackMTTR: 0.03,
			UplinkMTTF: 1.0, UplinkMTTR: 0.04,
		}
	case Default:
		racks, perRack, jobsN = 3, 2, 72
		rate, slo = 150, traffic.SLO{LatencyTargetSec: 0.4, BudgetFrac: 0.10}
		spec = fault.StormSpec{
			Start: 0.08, End: 0.45,
			NodeMTTF: 0.8, NodeMTTR: 0.03,
			GrayCPUMTTF: 0.5, GrayCPUMTTR: 0.08, GrayCPUFactor: 4,
			GrayNICMTTF: 0.6, GrayNICMTTR: 0.06, GrayNICDrop: 0.3, GrayNICJitter: 1.5e-3,
			RackMTTF: 2.0, RackMTTR: 0.04,
			UplinkMTTF: 1.2, UplinkMTTR: 0.05,
		}
	default:
		racks, perRack, jobsN = 4, 2, 120
		rate, slo = 120, traffic.SLO{LatencyTargetSec: 0.6, BudgetFrac: 0.10}
		spec = fault.StormSpec{
			Start: 0.1, End: 0.8,
			NodeMTTF: 1.0, NodeMTTR: 0.04,
			GrayCPUMTTF: 0.6, GrayCPUMTTR: 0.1, GrayCPUFactor: 5,
			GrayNICMTTF: 0.8, GrayNICMTTR: 0.08, GrayNICDrop: 0.35, GrayNICJitter: 2e-3,
			RackMTTF: 2.5, RackMTTR: 0.05,
			UplinkMTTF: 1.5, UplinkMTTR: 0.06,
		}
	}
	if opts.Rate > 0 {
		rate = opts.Rate
	}
	if opts.SLO != (traffic.SLO{}) {
		slo = opts.SLO
	}
	if opts.MTTF > 0 {
		spec.NodeMTTF = opts.MTTF
	}
	if opts.MTTR > 0 {
		spec.NodeMTTR = opts.MTTR
	}
	return racks, perRack, jobsN, rate, slo, spec
}

// stormRun is one engine's complete run: the open-loop result plus the
// membership observables the fingerprint and invariants fold in.
type stormRun struct {
	res         *sched.OpenLoopResult
	st          member.Stats
	fingerprint string
}

// runStormOnce executes the storm scenario on one engine.
func runStormOnce(cfg Config, engine string, jobs []sched.Job, slo traffic.SLO, plan fault.Plan, racks, perRack int) (*stormRun, error) {
	nodes := racks * perRack
	cl, fab, err := kernel.NewClusterTopo(sched.RackArches(nodes), kernel.DefaultInterconnect(),
		topo.FatTree(racks, 4))
	if err != nil {
		return nil, err
	}
	if fab == nil {
		return nil, fmt.Errorf("storm: fat-tree fabric missing")
	}
	if engine == "par" {
		cl.UseParallelEngine(0)
	}
	cl.InjectFaults(plan)
	svc, err := member.Attach(cl, member.Config{HeartbeatPeriod: 2e-3, Seed: plan.Seed})
	if err != nil {
		return nil, err
	}
	mon := member.NewMonitor(cl, svc, member.HealthConfig{})

	models := power.DefaultModels(cl, true)
	r := sched.NewRunner(cl, sched.NewBalanced("storm dynamic balanced", true), models)
	r.Checkpoint = kernel.CkptPolicy{EverySeconds: 10e-3}
	res, err := r.RunOpenLoop(sched.OpenLoop{
		Jobs: jobs,
		SLO:  slo,
		Degrade: &sched.Degrade{
			Health:       mon,
			Levels:       3,
			TolerateLoss: true,
		},
	})
	if err != nil {
		return nil, err
	}
	// Membership counters are only comparable at a common absolute
	// instant: the open loop exits as soon as the last job is accounted,
	// but the parallel engine's final window may already have run a few
	// extra heartbeats past that retire. Makespan itself is engine-exact
	// (it is part of the per-job digest), so settle both runs to the same
	// absolute horizon before snapshotting, like the partition study does.
	settle := res.Makespan + 0.05
	if t := cl.Time(); t > settle {
		return nil, fmt.Errorf("storm (%s): run overshot the settle horizon (%.6f > %.6f); raise the margin", engine, t, settle)
	}
	cl.Run(settle)
	st := svc.Stats()
	// The engine-comparison fingerprint: the open-loop digest already
	// covers every per-job observable and the SLO report; fold in the
	// membership counters and the restore log so a divergent detection or
	// recovery path cannot hide behind identical job timings.
	fp := fmt.Sprintf("%s|st=%+v|restores=%+v|stale=%d",
		res.Fingerprint(), st, res.RestoreLog, res.Ckpt.StaleLossEvents)
	return &stormRun{res: res, st: st, fingerprint: fp}, nil
}

// stormPhases buckets the per-job records by arrival time against the
// storm window and scores each bucket's completed jobs against the SLO.
func stormPhases(res *sched.OpenLoopResult, slo traffic.SLO, start, end float64) []StormPhase {
	names := []string{"pre-storm", "storm", "post-heal"}
	phases := make([]StormPhase, len(names))
	recs := make([]*traffic.Recorder, len(names))
	for i, n := range names {
		phases[i].Phase = n
		recs[i] = &traffic.Recorder{}
	}
	bucket := func(arrival float64) int {
		switch {
		case arrival < start:
			return 0
		case arrival < end:
			return 1
		default:
			return 2
		}
	}
	for i := range res.Jobs {
		j := &res.Jobs[i]
		b := bucket(j.ArrivalSec)
		phases[b].Offered++
		switch j.Outcome {
		case sched.OutcomeShed:
			phases[b].Shed++
		case sched.OutcomeLost:
			phases[b].Lost++
		default:
			phases[b].Completed++
			recs[b].Observe(j.SojournSec)
			if j.SojournSec > slo.LatencyTargetSec {
				phases[b].Violations++
			}
		}
	}
	for i := range phases {
		s := recs[i].Summary()
		phases[i].P50Sec, phases[i].P99Sec, phases[i].MaxSec = s.P50Sec, s.P99Sec, s.MaxSec
		if phases[i].Completed > 0 {
			phases[i].ViolationRate = float64(phases[i].Violations) / float64(phases[i].Completed)
		}
	}
	return phases
}

// Storm runs the open-loop chaos-under-traffic study: a fat-tree fleet
// serving a Poisson stream while a seeded chaos process injects
// correlated rack failures (power events, uplink cuts), gray failures
// (CPU slowdowns, lossy NICs) and node churn. The health layer scores
// nodes from RTT inflation, refuted suspicions and retire-rate sag;
// the scheduler sheds low-priority arrivals when the SLO error budget
// burns, steers placement away from degraded nodes, evacuates running
// jobs off them, and ramps back after the heal. Both time engines run
// the identical scenario and must agree byte-for-byte.
func Storm(cfg Config, opts StormOptions) (*StormResult, error) {
	if opts.Seed <= 0 {
		opts.Seed = 77
	}
	racks, perRack, jobsN, rate, slo, spec := stormParams(cfg, opts)
	if err := slo.Validate(); err != nil {
		return nil, fmt.Errorf("storm: %w", err)
	}
	nodes := racks * perRack

	// Draw the storm against the fabric's rack geometry. The fabric used
	// for leg routing must match the one each run builds; FatTree is
	// deterministic in (racks, oversub), so building a throwaway copy here
	// gives identical legs.
	_, fab, err := kernel.NewClusterTopo(sched.RackArches(nodes), kernel.DefaultInterconnect(),
		topo.FatTree(racks, 4))
	if err != nil {
		return nil, err
	}
	spec.Seed = opts.Seed
	spec.Nodes = nodes
	spec.Racks = racks
	spec.RackOf = fab.Rack
	spec.UplinkLegs = func(rack int) [][2]int {
		return append(fab.Legs(fab.UplinkUp(rack)), fab.Legs(fab.UplinkDown(rack))...)
	}
	plan, err := fault.GenerateStorm(spec)
	if err != nil {
		return nil, fmt.Errorf("storm: %w", err)
	}
	plan.Seed = opts.Seed

	// One offered stream, replayed identically by both engines.
	src, err := traffic.NewSource(traffic.Spec{Kind: traffic.KindPoisson, Rate: rate, Seed: 9001}.WithDefaults())
	if err != nil {
		return nil, fmt.Errorf("storm: %w", err)
	}
	jobs := sched.GenerateJobs(8484, jobsN, []npb.Class{npb.ClassS}, traffic.Spacing(src))
	sched.StampPriorities(jobs, opts.Seed, 3)

	cfg.printf("storm nodes=%d racks=%d jobs=%d rate=%g/s slo=%gs window=[%g,%g)s\n",
		nodes, racks, jobsN, rate, slo.LatencyTargetSec, spec.Start, spec.End)
	cfg.printf("  chaos: %d crash events, %d uplink cuts, %d gray-cpu, %d gray-nic windows\n",
		len(plan.Crashes), len(plan.Partitions), len(plan.Slowdowns), len(plan.Windows)/2)

	seq, err := runStormOnce(cfg, "seq", jobs, slo, plan, racks, perRack)
	if err != nil {
		return nil, fmt.Errorf("storm (seq): %w", err)
	}
	par, err := runStormOnce(cfg, "par", jobs, slo, plan, racks, perRack)
	if err != nil {
		return nil, fmt.Errorf("storm (par): %w", err)
	}

	res := &StormResult{
		Nodes: nodes, Racks: racks, Jobs: jobsN,
		RateJobsPerSec: rate,
		SLOTargetSec:   slo.LatencyTargetSec, BudgetFrac: slo.BudgetFrac,
		StormStartSec: spec.Start, StormEndSec: spec.End,
		CrashEvents:    len(plan.Crashes),
		UplinkCuts:     len(plan.Partitions),
		GrayCPUWindows: len(plan.Slowdowns),
		GrayNICWindows: len(plan.Windows) / 2,

		Offered:          seq.res.Offered,
		Completed:        seq.res.Completed,
		Shed:             seq.res.Shed,
		Lost:             seq.res.Lost,
		CheckpointedLost: seq.res.CheckpointedLost,
		EvacRequests:     seq.res.EvacRequests,
		Migrations:       seq.res.Migrations,
		Checkpoints:      seq.res.Checkpoints,
		Restores:         seq.res.Restores,
		StaleLossEvents:  seq.res.Ckpt.StaleLossEvents,
		Deaths:           seq.st.Deaths,
		FalseSuspicions:  seq.st.FalseSuspicions,
		MakespanSec:      seq.res.Makespan,
		Phases:           stormPhases(seq.res, slo, spec.Start, spec.End),
		EnginesAgree:     seq.fingerprint == par.fingerprint,
	}
	for _, p := range res.Phases {
		cfg.printf("  %-9s offered=%3d done=%3d shed=%2d lost=%2d p50=%.4fs p99=%.4fs viol=%d (%.1f%%)\n",
			p.Phase, p.Offered, p.Completed, p.Shed, p.Lost, p.P50Sec, p.P99Sec, p.Violations, p.ViolationRate*100)
	}
	cfg.printf("  evac=%d mig=%d ckpt=%d restores=%d deaths=%d lost=%d engines=%v\n",
		res.EvacRequests, res.Migrations, res.Checkpoints, res.Restores, res.Deaths, res.Lost, res.EnginesAgree)
	if err := stormCheck(res, seq.res); err != nil {
		return res, err
	}
	return res, nil
}

// stormCheck verifies the run-level invariants that need the raw
// sequential result (the restore log); StormInvariantsHold covers
// everything reconstructible from the serialised StormResult.
func stormCheck(res *StormResult, seq *sched.OpenLoopResult) error {
	// No split-brain restore: each incarnation is restored at most once.
	seen := map[int]bool{}
	for _, rr := range seq.RestoreLog {
		if seen[rr.OldPid] {
			return fmt.Errorf("storm: pid %d restored twice (split-brain)", rr.OldPid)
		}
		seen[rr.OldPid] = true
	}
	return nil
}

// StormInvariantsHold machine-checks the storm study's scorecard: both
// engines agreed, the accounting identity holds, no checkpointed job was
// permanently lost, and the SLO degraded gracefully — bounded during the
// storm, recovering after the heal — rather than collapsing.
func StormInvariantsHold(res *StormResult) error {
	if !res.EnginesAgree {
		return fmt.Errorf("storm: sequential and parallel engines diverged")
	}
	if res.Completed+res.Shed+res.Lost != res.Offered {
		return fmt.Errorf("storm: completed %d + shed %d + lost %d != offered %d",
			res.Completed, res.Shed, res.Lost, res.Offered)
	}
	if res.CheckpointedLost != 0 {
		return fmt.Errorf("storm: %d checkpointed jobs permanently lost", res.CheckpointedLost)
	}
	if len(res.Phases) != 3 {
		return fmt.Errorf("storm: expected 3 phases, got %d", len(res.Phases))
	}
	var offered, completed, shed, lost int
	for _, p := range res.Phases {
		offered += p.Offered
		completed += p.Completed
		shed += p.Shed
		lost += p.Lost
		if p.Offered != p.Completed+p.Shed+p.Lost {
			return fmt.Errorf("storm %s: phase accounting broken", p.Phase)
		}
		if p.ViolationRate < 0 || p.ViolationRate > 1 {
			return fmt.Errorf("storm %s: violation rate %g outside [0,1]", p.Phase, p.ViolationRate)
		}
		if p.Completed > 0 && (p.P50Sec > p.P99Sec || p.P99Sec > p.MaxSec) {
			return fmt.Errorf("storm %s: quantiles out of order (p50=%g p99=%g max=%g)",
				p.Phase, p.P50Sec, p.P99Sec, p.MaxSec)
		}
	}
	if offered != res.Offered || completed != res.Completed || shed != res.Shed || lost != res.Lost {
		return fmt.Errorf("storm: phase totals disagree with run totals")
	}
	pre, storm, post := res.Phases[0], res.Phases[1], res.Phases[2]
	// Graceful, not collapsed: the fleet keeps completing work through the
	// storm, and the majority of all offered work completes.
	if storm.Offered > 0 && storm.Completed == 0 {
		return fmt.Errorf("storm: no job offered during the storm completed (collapse)")
	}
	if res.Completed*2 < res.Offered {
		return fmt.Errorf("storm: fewer than half the offered jobs completed (%d/%d)",
			res.Completed, res.Offered)
	}
	// Recovery after heal: the post-heal phase must not be worse than the
	// storm phase on the violation rate.
	if post.Completed > 0 && storm.Completed > 0 && post.ViolationRate > storm.ViolationRate {
		return fmt.Errorf("storm: violation rate worsened after the heal (%.3f > %.3f)",
			post.ViolationRate, storm.ViolationRate)
	}
	_ = pre
	return nil
}
