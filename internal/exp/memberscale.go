package exp

import (
	"fmt"
	"math"

	"heterodc/internal/fault"
	"heterodc/internal/kernel"
	"heterodc/internal/member"
	"heterodc/internal/sched"
)

// MemberScaleOptions parameterises the membership-scaling study.
type MemberScaleOptions struct {
	// Seed selects the deterministic fault and rotation streams.
	Seed int64
	// Sizes are the rack sizes to sweep. Empty selects the scale default
	// (Quick: {8, 16}; otherwise the acceptance grid {8, 64, 256}).
	Sizes []int
	// Rounds is how many protocol rounds the fleet runs. 0 selects 60.
	Rounds int
}

// MemberScaleRow reports one (protocol, rack size) cell: the per-node
// message rate that must stay flat as the rack grows, the detector state
// that must stay sub-quadratic, and the detection quality that must not
// regress against the PR-5 lease baseline.
type MemberScaleRow struct {
	Protocol string `json:"protocol"` // "swim" or "lease"
	Nodes    int    `json:"nodes"`
	Rounds   int    `json:"rounds"`
	// MsgsPerNodeRound is membership messages sent per node per protocol
	// round — O(1) for SWIM, O(N) for the all-pairs lease baseline.
	MsgsPerNodeRound float64 `json:"msgs_per_node_round"`
	// StateRecords is the fleet-wide detector state: materialized view
	// records summed over observers (the lease baseline is dense n*(n-1)).
	StateRecords int `json:"state_records"`
	// DetectionLatency is crash-to-first-verdict for the one injected
	// permanent crash; 0 means the crash went undetected.
	DetectionLatency float64 `json:"detection_latency_sec"`
	// FalseDeaths counts death verdicts against nodes that never crashed —
	// the detector's false-positive rate under 1% message loss.
	FalseDeaths int    `json:"false_deaths"`
	Suspicions  uint64 `json:"suspicions"`
	Deaths      uint64 `json:"deaths"`
	// DeferredVerdicts counts verdicts parked for lack of quorum (SWIM
	// only; always 0 here — the crash leaves an overwhelming majority).
	DeferredVerdicts uint64 `json:"deferred_verdicts"`
	GossipUpdates    uint64 `json:"gossip_updates"`
}

// memberScaleDetector abstracts over the two protocols under comparison.
type memberScaleDetector interface {
	Stats() member.Stats
	Deaths() []member.DeathRecord
	StateRecords() int
}

// MemberScale runs a workload-free fleet of each size under both detectors
// for a fixed number of rounds with 1% message loss and one permanent
// crash, and reports traffic, state and detection quality. The fleet is
// driven purely by the membership service (no processes), exactly the
// between-jobs regime the idle-gap fix keeps alive.
func MemberScale(cfg Config, opts MemberScaleOptions) ([]MemberScaleRow, error) {
	sizes := opts.Sizes
	if len(sizes) == 0 {
		if cfg.Scale == Quick {
			sizes = []int{8, 16}
		} else {
			sizes = []int{8, 64, 256}
		}
	}
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 60
	}
	const period = 1e-3
	crashAt := 20 * period
	horizon := float64(rounds) * period

	var rows []MemberScaleRow
	for _, n := range sizes {
		if n < 2 {
			return nil, fmt.Errorf("exp: member-scale: rack size %d too small", n)
		}
		for _, proto := range []string{"swim", "lease"} {
			cl, _, err := kernel.NewClusterTopo(sched.RackArches(n), kernel.DefaultInterconnect(), cfg.topoSpec())
			if err != nil {
				return nil, fmt.Errorf("exp: member-scale: %w", err)
			}
			if cfg.Engine == "par" || cfg.Engine == "parallel" {
				cl.UseParallelEngine(0)
			}
			cl.InjectFaults(fault.Plan{
				Seed:     opts.Seed,
				DropProb: 0.01,
				Crashes:  []fault.Crash{{Node: 1, At: crashAt, RecoverAt: 0}},
			})
			mcfg := member.Config{HeartbeatPeriod: period, Seed: opts.Seed}
			var det memberScaleDetector
			if proto == "swim" {
				det, err = member.Attach(cl, mcfg)
			} else {
				det, err = member.AttachLease(cl, mcfg)
			}
			if err != nil {
				return nil, fmt.Errorf("exp: member-scale: attach %s at n=%d: %w", proto, n, err)
			}
			cl.Run(horizon)

			st := det.Stats()
			row := MemberScaleRow{
				Protocol: proto, Nodes: n, Rounds: rounds,
				MsgsPerNodeRound: float64(st.HeartbeatsSent) / float64(n) / float64(rounds),
				StateRecords:     det.StateRecords(),
				Suspicions:       st.Suspicions,
				Deaths:           st.Deaths,
				DeferredVerdicts: st.DeferredVerdicts,
				GossipUpdates:    st.GossipUpdates,
			}
			for _, d := range det.Deaths() {
				if d.Node == 1 && row.DetectionLatency == 0 {
					row.DetectionLatency = d.At - crashAt
				}
				if d.Node != 1 {
					row.FalseDeaths++
				}
			}
			rows = append(rows, row)
			cfg.printf("member-scale %-5s n=%-4d msgs/node/round=%7.2f state=%8d detect=%6.2fms falsedeaths=%d deferred=%d\n",
				proto, n, row.MsgsPerNodeRound, row.StateRecords,
				row.DetectionLatency*1e3, row.FalseDeaths, row.DeferredVerdicts)
		}
	}
	return rows, nil
}

// MemberScaleShapeHolds asserts the scaling claims the study exists for:
// SWIM's per-node message rate stays flat and its state sub-quadratic as
// the rack grows, the lease baseline really is O(N) traffic / O(N²) state,
// the injected crash is always detected, and nothing is ever falsely
// declared dead.
func MemberScaleShapeHolds(rows []MemberScaleRow) error {
	byProto := map[string][]MemberScaleRow{}
	for _, r := range rows {
		if r.DetectionLatency <= 0 {
			return fmt.Errorf("member-scale: %s at n=%d never detected the crash", r.Protocol, r.Nodes)
		}
		if r.FalseDeaths != 0 {
			return fmt.Errorf("member-scale: %s at n=%d declared %d healthy nodes dead",
				r.Protocol, r.Nodes, r.FalseDeaths)
		}
		byProto[r.Protocol] = append(byProto[r.Protocol], r)
	}
	swim, lease := byProto["swim"], byProto["lease"]
	if len(swim) < 2 || len(lease) < 2 {
		return fmt.Errorf("member-scale: need both protocols at >= 2 sizes (got swim=%d lease=%d)",
			len(swim), len(lease))
	}
	minMsgs, maxMsgs := math.Inf(1), 0.0
	for _, r := range swim {
		if r.MsgsPerNodeRound < minMsgs {
			minMsgs = r.MsgsPerNodeRound
		}
		if r.MsgsPerNodeRound > maxMsgs {
			maxMsgs = r.MsgsPerNodeRound
		}
		// Sub-quadratic state: a dense detector would hold n*(n-1) records.
		if r.Nodes >= 16 && r.StateRecords >= r.Nodes*(r.Nodes-1)/2 {
			return fmt.Errorf("member-scale: swim state %d at n=%d is not sub-quadratic",
				r.StateRecords, r.Nodes)
		}
	}
	if maxMsgs > 3*minMsgs {
		return fmt.Errorf("member-scale: swim per-node traffic not flat across sizes (%.2f..%.2f msgs/node/round)",
			minMsgs, maxMsgs)
	}
	for _, r := range lease {
		if r.StateRecords != r.Nodes*(r.Nodes-1) {
			return fmt.Errorf("member-scale: lease state %d at n=%d, want dense %d",
				r.StateRecords, r.Nodes, r.Nodes*(r.Nodes-1))
		}
		// The baseline's traffic grows with the rack: per-node rate ~ n-1.
		if r.MsgsPerNodeRound < float64(r.Nodes-1)/2 {
			return fmt.Errorf("member-scale: lease per-node traffic %.2f at n=%d implausibly low",
				r.MsgsPerNodeRound, r.Nodes)
		}
	}
	// Detection quality at the smallest size: SWIM must not be worse than
	// the lease baseline (which waits out its capped-backoff re-checks).
	if swim[0].Nodes == lease[0].Nodes && swim[0].DetectionLatency > lease[0].DetectionLatency {
		return fmt.Errorf("member-scale: swim detection %.2fms slower than lease %.2fms at n=%d",
			swim[0].DetectionLatency*1e3, lease[0].DetectionLatency*1e3, swim[0].Nodes)
	}
	return nil
}
