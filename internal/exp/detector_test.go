package exp

import "testing"

// TestDetectorStudy is the acceptance gate for lease-based failure
// detection end to end: for every swept heartbeat period, a permanently
// crashed node must be detected (not oracle-reported) and the job restored
// from checkpoint, a transient outage that outlives the detector's patience
// must be refuted by the rejoining node's bumped incarnation, and no run
// may end with a stranded job or an un-fenced stale-incarnation message.
func TestDetectorStudy(t *testing.T) {
	rows, err := Detector(Config{Scale: Quick}, DetectorOptions{Seed: 11})
	if err != nil {
		t.Fatalf("detector study: %v", err)
	}
	if len(rows) != 12 { // 2 benches x 3 periods x 2 scenarios
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	periods := map[float64]bool{}
	for _, r := range rows {
		periods[r.HeartbeatPeriod] = true
		if r.Stranded != 0 {
			t.Errorf("%s %s hb=%g: %d stranded jobs", r.Bench, r.Scenario, r.HeartbeatPeriod, r.Stranded)
		}
		if r.StaleUnfenced != 0 {
			t.Errorf("%s %s hb=%g: %d stale-incarnation messages delivered unfenced",
				r.Bench, r.Scenario, r.HeartbeatPeriod, r.StaleUnfenced)
		}
		if !r.ExitOK || !r.OutputMatch {
			t.Errorf("%s %s hb=%g: exit=%v match=%v", r.Bench, r.Scenario, r.HeartbeatPeriod, r.ExitOK, r.OutputMatch)
		}
		if r.Deaths == 0 {
			t.Errorf("%s %s hb=%g: outage never declared dead", r.Bench, r.Scenario, r.HeartbeatPeriod)
		}
		// Detection is inferred from silence: it must lag the crash by at
		// least the suspicion timeout, and the job only finishes via restore.
		if r.DetectionLatency < r.SuspectTimeout {
			t.Errorf("%s %s hb=%g: detection latency %g below suspicion timeout %g",
				r.Bench, r.Scenario, r.HeartbeatPeriod, r.DetectionLatency, r.SuspectTimeout)
		}
		if r.Restores == 0 {
			t.Errorf("%s %s hb=%g: no checkpoint restore", r.Bench, r.Scenario, r.HeartbeatPeriod)
		}
		if r.Scenario == "transient" && r.FalseSuspicions == 0 {
			t.Errorf("%s hb=%g: transient outage's death never refuted", r.Bench, r.HeartbeatPeriod)
		}
	}
	if len(periods) < 3 {
		t.Errorf("study swept %d distinct heartbeat periods, want >= 3", len(periods))
	}
}
