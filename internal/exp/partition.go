package exp

import (
	"bytes"
	"fmt"

	"heterodc/internal/ckpt"
	"heterodc/internal/core"
	"heterodc/internal/fault"
	"heterodc/internal/kernel"
	"heterodc/internal/member"
	"heterodc/internal/npb"
	"heterodc/internal/sched"
	"heterodc/internal/topo"
)

// PartitionOptions parameterises the partition study.
type PartitionOptions struct {
	// Seed selects the deterministic fault and rotation streams.
	Seed int64
}

// partitionScenario is one seeded bipartition of the rack.
type partitionScenario struct {
	name   string
	nodes  int
	groupA []int // the isolated side
	oneWay bool
	// spec selects the interconnect fabric (zero Kind = the flat pipe).
	// With a fat tree the partition is expressed physically: cutRack names
	// the rack whose ToR uplink is severed, and the window's Legs are
	// composed from the routes over that uplink rather than from groupA.
	spec    topo.Spec
	cutRack int
	// jobNodes are where the tracked jobs start; jobs on the minority side
	// must be restored onto the majority, jobs on the majority side must
	// never be restored at all.
	jobNodes []int
	// expect: whether the majority reaches death verdicts (false for the
	// quorumless even split) and how many restores the run must execute.
	expectDeaths   bool
	expectRestores int
}

func partitionScenarios(cfg Config) []partitionScenario {
	s := []partitionScenario{
		// A 2-node minority is isolated with a job on it: the majority
		// declares both dead and restores the job on its side; the minority
		// suspects everyone but lacks quorum, so it defers — the classic
		// split-brain double-execution is structurally impossible.
		{name: "minority-isolated", nodes: 5, groupA: []int{3, 4},
			jobNodes: []int{3, 0}, expectDeaths: true, expectRestores: 1},
		// An even split leaves NO side with quorum: every verdict defers,
		// nothing is restored anywhere, and healing reconciles both sides
		// back to all-alive with the original incarnations intact.
		{name: "even-split", nodes: 4, groupA: []int{0, 1},
			jobNodes: []int{0, 2}, expectDeaths: false, expectRestores: 0},
		// An asymmetric cut: node 3 can hear the rack but not answer it. The
		// majority declares it dead and restores its job; node 3's own
		// suspicions of everyone defer (it is a minority of one).
		{name: "one-way", nodes: 5, groupA: []int{3}, oneWay: true,
			jobNodes: []int{3}, expectDeaths: true, expectRestores: 1},
		// A physical cut: on a 3-rack fat tree, rack 2's ToR uplink goes
		// dark in both directions. Its two nodes become the minority purely
		// by route reachability — no node list is handed to the injector —
		// and the 4-node majority holds quorum, declares them dead, and
		// restores the stranded job on its side.
		{name: "uplink-cut", nodes: 6, groupA: []int{4, 5},
			spec: topo.FatTree(3, 1), cutRack: 2,
			jobNodes: []int{4, 0}, expectDeaths: true, expectRestores: 1},
	}
	return s
}

// PartitionRow reports one scenario on one engine, with every split-brain
// invariant the experiment enforces.
type PartitionRow struct {
	Scenario string `json:"scenario"`
	Engine   string `json:"engine"`
	Nodes    int    `json:"nodes"`
	ExitOK   bool   `json:"exit_ok"`
	// OutputMatch: every job's final output equals its fault-free baseline.
	OutputMatch bool `json:"output_match"`
	Restores    int  `json:"restores"`
	// MinorityRestores counts restores placed on the isolated side — any
	// non-zero value is a split-brain double execution.
	MinorityRestores int `json:"minority_restores"`
	// MinorityVerdicts counts death verdicts EXECUTED by observers on the
	// quorumless side (must be 0; they may only defer).
	MinorityVerdicts int    `json:"minority_verdicts"`
	Deaths           uint64 `json:"deaths"`
	DeferredVerdicts uint64 `json:"deferred_verdicts"`
	Rejoins          uint64 `json:"rejoins"`
	StaleLossEvents  int    `json:"stale_loss_events"`
	// ViewsConverged: after healing plus a settle window, every observer
	// views every node alive again.
	ViewsConverged bool `json:"views_converged"`
	// OneIncarnationPerJob: each job ended with exactly one live (exited-
	// clean) incarnation; any stranded original or duplicate copy clears it.
	OneIncarnationPerJob bool    `json:"one_incarnation_per_job"`
	Seconds              float64 `json:"seconds"`

	fingerprint string
}

// runPartitionOnce executes one scenario on one engine and returns the row.
func runPartitionOnce(cfg Config, engine string, sc partitionScenario, seed int64) (PartitionRow, error) {
	row := PartitionRow{Scenario: sc.name, Engine: engine, Nodes: sc.nodes}
	img, err := npb.Build(npb.IS, npb.ClassS, 1)
	if err != nil {
		return row, err
	}
	ref, err := core.Run(img, core.NodeX86)
	if err != nil {
		return row, err
	}

	spec := sc.spec
	if spec.Kind == "" {
		spec = topo.FlatSpec()
	}
	cl, fab, err := kernel.NewClusterTopo(sched.RackArches(sc.nodes), kernel.DefaultInterconnect(), spec)
	if err != nil {
		return row, err
	}
	if engine == "par" || engine == "parallel" {
		cl.UseParallelEngine(0)
	}
	// The round period leaves generous slack over the interconnect's loaded
	// latencies: checkpoint and DSM traffic from the jobs must not delay a
	// probe ack past its timeout, or congestion fakes suspicions before the
	// cut even lands.
	period := ref.Seconds / 20
	start, heal := 0.3*ref.Seconds, 0.3*ref.Seconds+20*period
	win := fault.PartitionWindow{GroupA: sc.groupA, Start: start, HealAt: heal, OneWay: sc.oneWay}
	if fab != nil {
		// Express the cut as the routes over the dark uplink, not as a
		// node list: exactly the traffic that physically crosses it dies.
		win.Legs = append(fab.Legs(fab.UplinkUp(sc.cutRack)),
			fab.Legs(fab.UplinkDown(sc.cutRack))...)
	}
	cl.InjectFaults(fault.Plan{
		Seed:       seed,
		Partitions: []fault.PartitionWindow{win},
	})
	svc, err := member.Attach(cl, member.Config{HeartbeatPeriod: period, Seed: seed})
	if err != nil {
		return row, err
	}
	mgr := ckpt.NewManager(cl)

	minority := map[int]bool{}
	for _, n := range sc.groupA {
		minority[n] = true
	}

	var jobs []*kernel.Process
	for _, node := range sc.jobNodes {
		p, err := cl.Spawn(img, node)
		if err != nil {
			return row, err
		}
		mgr.Track(p, img, kernel.CkptPolicy{EverySeconds: 0.15 * ref.Seconds})
		jobs = append(jobs, p)
	}

	// Drive every job's current incarnation to completion.
	for {
		allDone := true
		for _, p := range jobs {
			cur := mgr.Current(p)
			if exited, _ := cur.Exited(); !exited || mgr.Current(p) != cur {
				allDone = false
			}
		}
		if allDone {
			break
		}
		if !cl.Step() {
			return row, fmt.Errorf("cluster drained with jobs outstanding")
		}
	}
	// Settle past the heal so divergent views reconcile (rejoins, refutals,
	// gossip convergence); the membership service keeps the idle fleet live.
	// The horizon is ABSOLUTE: both engines exit the job loop at slightly
	// different clocks (epoch granularity), so a completion-relative settle
	// would diverge. It must also exceed any possible completion time, or
	// the final clock is the engine-dependent completion clock.
	settle := heal + 30*period
	if h := 10 * ref.Seconds; h > settle {
		settle = h
	}
	if cl.Time() > settle {
		return row, fmt.Errorf("jobs outlived the settle horizon (%.6f > %.6f); raise it", cl.Time(), settle)
	}
	cl.Run(settle)

	st := svc.Stats()
	row.Seconds = cl.Time()
	row.Restores = mgr.Stats().Restores
	row.StaleLossEvents = mgr.Stats().StaleLossEvents
	row.Deaths = st.Deaths
	row.DeferredVerdicts = st.DeferredVerdicts
	row.Rejoins = st.Rejoins
	for _, rr := range mgr.Restores() {
		if minority[rr.Node] {
			row.MinorityRestores++
		}
	}
	for _, d := range svc.Deaths() {
		if minority[d.Observer] {
			row.MinorityVerdicts++
		}
	}

	row.ExitOK, row.OutputMatch, row.OneIncarnationPerJob = true, true, true
	for _, p := range jobs {
		final := mgr.Current(p)
		exited, code := final.Exited()
		if !exited || code != 0 || final.Err() != nil {
			row.ExitOK = false
		}
		if !bytes.Equal(final.Output(), ref.Output) {
			row.OutputMatch = false
		}
		// Exactly one live incarnation per job: either the job was never
		// restored (final == original) or the original was killed by the
		// verdict before its replacement started.
		if final != p {
			if origExited, _ := p.Exited(); !origExited || p.Err() == nil {
				row.OneIncarnationPerJob = false
			}
		}
	}
	row.ViewsConverged = true
	for i := 0; i < sc.nodes; i++ {
		for t := 0; t < sc.nodes; t++ {
			if svc.View(i, t) != member.Alive {
				row.ViewsConverged = false
			}
		}
	}

	// The engine-comparison fingerprint: every observable of the run.
	var fp bytes.Buffer
	fmt.Fprintf(&fp, "t=%.12f st=%+v deaths=%v restores=%+v stale=%d", cl.Time(), st,
		svc.Deaths(), mgr.Restores(), mgr.Stats().StaleLossEvents)
	for _, p := range jobs {
		fmt.Fprintf(&fp, " out=%q", mgr.Current(p).Output())
	}
	dump := svc.Dump()
	for i := range dump.Views {
		fmt.Fprintf(&fp, " v%d=%v inc%d=%d", i, dump.Views[i], i, dump.Incarnations[i])
	}
	row.fingerprint = fp.String()
	return row, nil
}

// Partition runs every seeded bipartition scenario on both engines and
// checks the split-brain invariants: no restore ever lands on a quorumless
// side, quorumless observers only defer, healing reconverges every view
// with exactly one incarnation per job, and both engines produce
// byte-identical runs.
func Partition(cfg Config, opts PartitionOptions) ([]PartitionRow, error) {
	var rows []PartitionRow
	for _, sc := range partitionScenarios(cfg) {
		var prints []string
		for _, engine := range []string{"seq", "par"} {
			row, err := runPartitionOnce(cfg, engine, sc, opts.Seed)
			if err != nil {
				return nil, fmt.Errorf("exp: partition %s/%s: %w", sc.name, engine, err)
			}
			rows = append(rows, row)
			prints = append(prints, row.fingerprint)
			cfg.printf("partition %-17s %-3s n=%d restores=%d (minority %d) deaths=%d deferred=%d rejoins=%d converged=%v exit=%v match=%v\n",
				sc.name, engine, sc.nodes, row.Restores, row.MinorityRestores,
				row.Deaths, row.DeferredVerdicts, row.Rejoins,
				row.ViewsConverged, row.ExitOK, row.OutputMatch)
		}
		if prints[0] != prints[1] {
			return nil, fmt.Errorf("exp: partition %s: engines diverge:\nseq %s\npar %s",
				sc.name, prints[0], prints[1])
		}
	}
	return rows, nil
}

// PartitionInvariantsHold asserts the split-brain acceptance criteria over
// the study's rows.
func PartitionInvariantsHold(rows []PartitionRow) error {
	if len(rows) == 0 {
		return fmt.Errorf("partition: no rows")
	}
	expected := map[string]partitionScenario{}
	for _, sc := range partitionScenarios(Config{}) {
		expected[sc.name] = sc
	}
	for _, r := range rows {
		sc := expected[r.Scenario]
		if !r.ExitOK || !r.OutputMatch {
			return fmt.Errorf("partition %s/%s: exit=%v match=%v", r.Scenario, r.Engine, r.ExitOK, r.OutputMatch)
		}
		if r.MinorityRestores != 0 {
			return fmt.Errorf("partition %s/%s: %d restores on the quorumless side (split brain)",
				r.Scenario, r.Engine, r.MinorityRestores)
		}
		if r.MinorityVerdicts != 0 {
			return fmt.Errorf("partition %s/%s: %d verdicts executed without quorum",
				r.Scenario, r.Engine, r.MinorityVerdicts)
		}
		if !r.OneIncarnationPerJob {
			return fmt.Errorf("partition %s/%s: a job ended with more than one live incarnation",
				r.Scenario, r.Engine)
		}
		if !r.ViewsConverged {
			return fmt.Errorf("partition %s/%s: views never reconverged after the heal", r.Scenario, r.Engine)
		}
		if r.Restores != sc.expectRestores {
			return fmt.Errorf("partition %s/%s: %d restores, want %d",
				r.Scenario, r.Engine, r.Restores, sc.expectRestores)
		}
		if sc.expectDeaths && r.Deaths == 0 {
			return fmt.Errorf("partition %s/%s: isolated side never declared dead", r.Scenario, r.Engine)
		}
		if !sc.expectDeaths && r.Deaths != 0 {
			return fmt.Errorf("partition %s/%s: %d deaths despite no side holding quorum",
				r.Scenario, r.Engine, r.Deaths)
		}
		if r.DeferredVerdicts == 0 {
			return fmt.Errorf("partition %s/%s: the quorumless side never deferred a verdict",
				r.Scenario, r.Engine)
		}
		if r.StaleLossEvents != 0 {
			return fmt.Errorf("partition %s/%s: %d duplicate loss verdicts reached the manager",
				r.Scenario, r.Engine, r.StaleLossEvents)
		}
	}
	return nil
}
