package exp

import (
	"fmt"

	"heterodc/internal/core"
	"heterodc/internal/kernel"
	"heterodc/internal/npb"
	"heterodc/internal/power"
	"heterodc/internal/serial"
)

// Fig11Result reproduces Figure 11: power and load traces of migrating the
// serial IS benchmark's full_verify phase from x86 to ARM, native multi-ISA
// migration (right panel) versus PadMig-style managed-runtime serialization
// (left panel).
type Fig11Result struct {
	// Native panel.
	NativeSeconds float64
	NativeTrace   []power.Sample
	NativeMoveAt  float64
	NativePages   uint64

	// Managed (PadMig) panel.
	ManagedSeconds float64
	ManagedTrace   []power.Sample
	ManagedMoveAt  float64
	ManagedBytes   int64
	// SerializeSeconds + DeserializeSeconds of the managed migration.
	SerializeSeconds float64
}

// Fig11 runs both variants.
func Fig11(cfg Config) (*Fig11Result, error) {
	class := npb.ClassB
	if cfg.Scale == Quick {
		class = npb.ClassS
	}
	img, err := buildDefault(npb.IS, class, 1)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}

	// --- Native multi-ISA migration ---
	{
		// Reference duration to position the migration in the full_verify
		// phase (the trailing serial verification pass).
		ref, err := core.Run(img, core.NodeX86)
		if err != nil {
			return nil, err
		}
		moveAt := ref.Seconds * 0.70

		cl := core.NewTestbed()
		meter := power.NewMeter(cl, power.DefaultModels(cl, false))
		meter.Record = true
		p, err := cl.Spawn(img, core.NodeX86)
		if err != nil {
			return nil, err
		}
		cl.OnMigration = func(ev kernel.MigrationEvent) {
			if res.NativeMoveAt == 0 {
				res.NativeMoveAt = ev.Time
			}
		}
		requested := false
		for {
			if done, _ := p.Exited(); done {
				break
			}
			if !requested && cl.Time() >= moveAt {
				cl.RequestProcessMigration(p, core.NodeARM)
				requested = true
			}
			if !cl.Step() {
				return nil, fmt.Errorf("fig11: native cluster drained")
			}
		}
		if err := p.Err(); err != nil {
			return nil, fmt.Errorf("fig11 native: %w", err)
		}
		res.NativeSeconds = cl.Time()
		res.NativeTrace = meter.Trace
		res.NativePages = cl.Kernels[core.NodeARM].PagesIn
	}

	// --- PadMig-style managed runtime with serialization migration ---
	{
		// Managed reference run (no migration) for phase positioning.
		refCl := serial.NewManagedTestbed()
		refP, err := serial.SpawnManaged(refCl, img, core.NodeX86)
		if err != nil {
			return nil, err
		}
		if _, err := refCl.RunProcess(refP); err != nil {
			return nil, fmt.Errorf("fig11 managed ref: %w", err)
		}
		moveAt := refCl.Time() * 0.70

		cl := serial.NewManagedTestbed()
		meter := power.NewMeter(cl, power.DefaultModels(cl, false))
		meter.Record = true
		p, err := serial.SpawnManaged(cl, img, core.NodeX86)
		if err != nil {
			return nil, err
		}
		cl.OnMigration = func(ev kernel.MigrationEvent) {
			if res.ManagedMoveAt == 0 {
				res.ManagedMoveAt = ev.Time
				res.ManagedBytes = ev.StateBytes
				res.SerializeSeconds = ev.XformSeconds
			}
		}
		requested := false
		for {
			if done, _ := p.Exited(); done {
				break
			}
			if !requested && cl.Time() >= moveAt {
				cl.RequestProcessMigration(p, core.NodeARM)
				requested = true
			}
			if !cl.Step() {
				return nil, fmt.Errorf("fig11: managed cluster drained")
			}
		}
		if err := p.Err(); err != nil {
			return nil, fmt.Errorf("fig11 managed: %w", err)
		}
		res.ManagedSeconds = cl.Time()
		res.ManagedTrace = meter.Trace
	}
	cfg.printf("fig11: native total=%.4fs (migration at %.4fs, %d pages pulled on demand)\n",
		res.NativeSeconds, res.NativeMoveAt, res.NativePages)
	cfg.printf("fig11: managed total=%.4fs (migration at %.4fs, %d bytes serialized over %.4fs)\n",
		res.ManagedSeconds, res.ManagedMoveAt, res.ManagedBytes, res.SerializeSeconds)
	return res, nil
}

// PrintTraces renders the two panels as time series (t, per-node CPU power,
// per-node load), downsampled to at most n rows each.
func (r *Fig11Result) PrintTraces(cfg Config, n int) {
	panel := func(name string, tr []power.Sample) {
		cfg.printf("\nFigure 11 (%s): t(s)\tx86 W\tarm W\tx86 load%%\tarm load%%\n", name)
		step := 1
		if len(tr) > n {
			step = len(tr) / n
		}
		for i := 0; i < len(tr); i += step {
			s := tr[i]
			if len(s.CPUWatts) < 2 {
				continue
			}
			cfg.printf("%.3f\t%.1f\t%.1f\t%.0f\t%.0f\n",
				s.T, s.CPUWatts[0], s.CPUWatts[1], s.LoadPct[0], s.LoadPct[1])
		}
	}
	panel("native multi-ISA", r.NativeTrace)
	panel("PadMig serialization", r.ManagedTrace)
}

// ShapeHolds checks the paper's claims: the managed run takes roughly twice
// as long end-to-end (23 s vs 11 s at full scale), and the native migration
// resumes immediately (no serialize/deserialize dead time).
func (r *Fig11Result) ShapeHolds() error {
	if r.NativeSeconds <= 0 || r.ManagedSeconds <= 0 {
		return fmt.Errorf("fig11: missing runs")
	}
	ratio := r.ManagedSeconds / r.NativeSeconds
	if ratio < 1.5 {
		return fmt.Errorf("fig11: managed/native ratio %.2f < 1.5 (paper: ~2.1)", ratio)
	}
	if r.NativePages == 0 {
		return fmt.Errorf("fig11: native migration moved no pages on demand")
	}
	if r.SerializeSeconds <= 0 {
		return fmt.Errorf("fig11: no serialization cost observed")
	}
	return nil
}
