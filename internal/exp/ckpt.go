package exp

import (
	"bytes"
	"fmt"

	"heterodc/internal/ckpt"
	"heterodc/internal/core"
	"heterodc/internal/fault"
	"heterodc/internal/kernel"
	"heterodc/internal/npb"
)

// The checkpoint experiment quantifies the cost/benefit trade of the
// checkpoint interval: short intervals buy a small replay window after a
// permanent crash at the price of more stop-the-world captures.

// CkptOptions parameterises the checkpoint experiment.
type CkptOptions struct {
	// Seed selects the crash plan's deterministic stream.
	Seed int64
	// Fracs are the checkpoint intervals swept, as fractions of the
	// fault-free runtime. Nil selects {0.02, 0.05, 0.1, 0.2}.
	Fracs []float64
}

// CkptOverheadRow reports one benchmark under one checkpoint interval with
// no faults: the pure cost of periodic capture.
type CkptOverheadRow struct {
	Bench string
	// IntervalFrac is the checkpoint interval as a fraction of Base.
	IntervalFrac float64
	// Base is the checkpoint-free runtime; Seconds the runtime with the
	// policy enabled; Overhead their ratio.
	Base, Seconds, Overhead float64
	// Images counts checkpoint images, AvgBytes their mean encoded size,
	// AvgCaptureSec the mean modelled stop-the-world latency.
	Images        int
	AvgBytes      int64
	AvgCaptureSec float64
	// OutputMatch: the checkpointed run's own output is byte-identical to
	// the checkpoint-free run (capture must be invisible to the program).
	OutputMatch bool
}

// CkptRecoveryRow reports one benchmark recovering from a permanent node-1
// crash under one checkpoint interval: the work-lost side of the trade.
type CkptRecoveryRow struct {
	Bench        string
	IntervalFrac float64
	// Base is the fault-free runtime; Seconds the end-to-end runtime
	// including the crash, restore and replay.
	Base, Seconds float64
	// WorkReplayed is the simulated time between the restored image's
	// capture and the crash — what a shorter interval would have saved.
	WorkReplayed float64
	Restores     int
	OutputMatch  bool
}

// CkptResult bundles both sweeps.
type CkptResult struct {
	Overhead []CkptOverheadRow
	Recovery []CkptRecoveryRow
}

// runCkptOverheadOnce runs a benchmark fault-free with periodic
// checkpointing and reports runtime, output and capture counters.
func runCkptOverheadOnce(b npb.Bench, k npb.Class, pol kernel.CkptPolicy) (
	float64, []byte, ckpt.Stats, error) {
	img, err := npb.Build(b, k, 1)
	if err != nil {
		return 0, nil, ckpt.Stats{}, err
	}
	cl := core.NewTestbed()
	mgr := ckpt.NewManager(cl)
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		return 0, nil, ckpt.Stats{}, err
	}
	mgr.Track(p, img, pol)
	if _, err := cl.RunProcess(p); err != nil {
		return 0, nil, ckpt.Stats{}, err
	}
	return cl.Time(), p.Output(), mgr.Stats(), nil
}

// Ckpt sweeps the checkpoint interval over the NPB kernels: the fault-free
// capture overhead per interval, and the end-to-end recovery cost of a
// permanent mid-run node-1 crash per interval. Every run must reproduce the
// baseline output exactly.
func Ckpt(cfg Config, opts CkptOptions) (*CkptResult, error) {
	fracs := opts.Fracs
	if len(fracs) == 0 {
		fracs = []float64{0.02, 0.05, 0.1, 0.2}
	}
	res := &CkptResult{}
	for _, bk := range cfg.chaosBenches() {
		img, err := npb.Build(bk.b, bk.k, 1)
		if err != nil {
			return nil, fmt.Errorf("exp: ckpt build %s.%s: %w", bk.b, bk.k, err)
		}
		ref, err := core.Run(img, core.NodeX86)
		if err != nil {
			return nil, fmt.Errorf("exp: ckpt baseline %s.%s: %w", bk.b, bk.k, err)
		}
		name := fmt.Sprintf("%s.%s", bk.b, bk.k)
		cfg.printf("%s baseline: %.4fs\n", name, ref.Seconds)

		for _, frac := range fracs {
			pol := kernel.CkptPolicy{EverySeconds: frac * ref.Seconds}
			secs, out, st, err := runCkptOverheadOnce(bk.b, bk.k, pol)
			if err != nil {
				return nil, fmt.Errorf("exp: ckpt overhead %s frac=%.2f: %w", name, frac, err)
			}
			row := CkptOverheadRow{
				Bench: name, IntervalFrac: frac,
				Base: ref.Seconds, Seconds: secs, Overhead: secs / ref.Seconds,
				Images:      st.ImagesWritten,
				OutputMatch: bytes.Equal(out, ref.Output),
			}
			if st.ImagesWritten > 0 {
				row.AvgBytes = st.BytesWritten / int64(st.ImagesWritten)
				row.AvgCaptureSec = st.CaptureSeconds / float64(st.ImagesWritten)
			}
			res.Overhead = append(res.Overhead, row)
			cfg.printf("  overhead frac=%.2f %8.4fs (%.3fx) images=%d avg=%dB capture=%.1fµs match=%v\n",
				frac, row.Seconds, row.Overhead, row.Images, row.AvgBytes,
				row.AvgCaptureSec*1e6, row.OutputMatch)
		}

		for _, frac := range fracs {
			pol := kernel.CkptPolicy{EverySeconds: frac * ref.Seconds}
			// The crash lands well after the migration request so the
			// transfer (delayed by intervening captures) completes and the
			// thread is actually stranded on the dying node.
			plan := fault.Plan{
				Seed:    opts.Seed,
				Crashes: []fault.Crash{{Node: 1, At: 0.7 * ref.Seconds, RecoverAt: 0}},
			}
			cres, st, _, err := runChaosCkptOnce(bk.b, bk.k, plan, 0.25*ref.Seconds, pol)
			if err != nil {
				return nil, fmt.Errorf("exp: ckpt recovery %s frac=%.2f: %w", name, frac, err)
			}
			row := CkptRecoveryRow{
				Bench: name, IntervalFrac: frac,
				Base: ref.Seconds, Seconds: cres.Seconds,
				WorkReplayed: st.WorkReplayedSeconds,
				Restores:     st.Restores,
				OutputMatch:  bytes.Equal(cres.Output, ref.Output),
			}
			res.Recovery = append(res.Recovery, row)
			cfg.printf("  recovery frac=%.2f %8.4fs replayed=%.1fµs restores=%d match=%v\n",
				frac, row.Seconds, row.WorkReplayed*1e6, row.Restores, row.OutputMatch)
		}
	}
	return res, nil
}
