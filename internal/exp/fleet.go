package exp

import (
	"fmt"

	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/npb"
	"heterodc/internal/power"
	"heterodc/internal/sched"
	"heterodc/internal/traffic"
)

// FleetOptions parameterises the staged-rollout study.
type FleetOptions struct {
	// Arrivals selects the offered traffic processes; empty runs all three.
	Arrivals []traffic.Kind
	// Rate is the offered arrival rate in jobs/sec; <= 0 picks the scale
	// default.
	Rate float64
	// SLO is the per-job latency objective; the zero value picks the scale
	// default.
	SLO traffic.SLO
}

// fleetWaveFracs is the staged x86→ARM rollout schedule: the fraction of the
// fleet swapped to (power-projected) ARM machines at each wave.
var fleetWaveFracs = []float64{0, 0.25, 0.50, 0.75, 1.00}

// FleetWave is one rollout wave's SLO scorecard.
type FleetWave struct {
	ArmFrac  float64 `json:"arm_frac"`
	ArmNodes int     `json:"arm_nodes"`
	Nodes    int     `json:"nodes"`

	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	P50Sec               float64 `json:"p50_sec"`
	P99Sec               float64 `json:"p99_sec"`
	MaxSec               float64 `json:"max_sec"`
	Violations           int     `json:"violations"`
	ViolationRate        float64 `json:"violation_rate"`
	Healthy              bool    `json:"healthy"`

	EnergyJ     float64 `json:"energy_j"`
	MakespanSec float64 `json:"makespan_sec"`
	Migrations  int     `json:"migrations"`

	// EnginesAgree records that the sequential and parallel engines produced
	// bit-identical per-job timings and SLO reports for this wave. (Energy is
	// reported from the sequential run; the meters integrate over different
	// interval boundaries, so joules agree only up to float association.)
	EnginesAgree bool `json:"engines_agree"`
}

// FleetSeries is one arrival process's staged rollout.
type FleetSeries struct {
	Arrivals       string      `json:"arrivals"`
	RateJobsPerSec float64     `json:"rate_jobs_per_sec"`
	Jobs           int         `json:"jobs"`
	SLOTargetSec   float64     `json:"slo_target_sec"`
	BudgetFrac     float64     `json:"budget_frac"`
	Waves          []FleetWave `json:"waves"`
	// RolledOut reports that every wave up to 100% ARM stayed within the
	// error budget; when false, Waves ends at the wave that tripped the gate.
	RolledOut bool `json:"rolled_out"`
}

// fleetArches mixes a fleet of n machines with the trailing armNodes swapped
// to ARM — the rollout replaces machines from the back, mirroring the rack
// study's mixed ensemble.
func fleetArches(n, armNodes int) []isa.Arch {
	arches := make([]isa.Arch, n)
	for i := range arches {
		if i >= n-armNodes {
			arches[i] = isa.ARM64
		} else {
			arches[i] = isa.X86
		}
	}
	return arches
}

// fleetParams resolves the scale's fleet size, offered load and SLO.
func fleetParams(cfg Config, opts FleetOptions) (nodes, jobsN int, classes []npb.Class, rate float64, slo traffic.SLO) {
	switch cfg.Scale {
	case Quick:
		nodes, jobsN, classes = 4, 12, []npb.Class{npb.ClassS}
		rate, slo = 250, traffic.SLO{LatencyTargetSec: 0.25, BudgetFrac: 0.10}
	case Default:
		nodes, jobsN, classes = 6, 30, []npb.Class{npb.ClassS, npb.ClassA}
		rate, slo = 120, traffic.SLO{LatencyTargetSec: 1.0, BudgetFrac: 0.10}
	default:
		nodes, jobsN, classes = 8, 80, []npb.Class{npb.ClassS, npb.ClassA, npb.ClassB}
		rate, slo = 80, traffic.SLO{LatencyTargetSec: 2.0, BudgetFrac: 0.10}
	}
	if opts.Rate > 0 {
		rate = opts.Rate
	}
	if opts.SLO != (traffic.SLO{}) {
		slo = opts.SLO
	}
	return nodes, jobsN, classes, rate, slo
}

// fleetWave runs one wave's offered stream on a fresh armNodes-mixed fleet
// under the given engine.
func fleetWave(cfg Config, jobs []sched.Job, slo traffic.SLO, nodes, armNodes int, engine string) (*sched.OpenLoopResult, error) {
	cl, _, err := kernel.NewClusterTopo(fleetArches(nodes, armNodes), kernel.DefaultInterconnect(), cfg.topoSpec())
	if err != nil {
		return nil, err
	}
	if engine == "par" {
		cl.UseParallelEngine(0)
	}
	models := power.DefaultModels(cl, true)
	r := sched.NewRunner(cl, sched.NewBalanced("fleet dynamic balanced", true), models)
	return r.RunOpenLoop(sched.OpenLoop{Jobs: jobs, SLO: slo})
}

// Fleet runs the open-loop fleet-traffic study: a staged x86→ARM rollout
// sweeping the ARM fraction in waves (0% → 25% → 50% → 75% → 100%) under
// each offered arrival process. Every wave replays the identical offered
// stream on a fresh mixed fleet and is scored against the latency SLO; the
// rollout only advances while the error budget holds, so an unhealthy wave
// ends its series. Each wave runs under both time engines and the results
// must be bit-identical (the open-loop driver injects work via engine
// control events).
func Fleet(cfg Config, opts FleetOptions) ([]FleetSeries, error) {
	kinds := opts.Arrivals
	if len(kinds) == 0 {
		kinds = traffic.Kinds()
	}
	nodes, jobsN, classes, rate, slo := fleetParams(cfg, opts)
	if err := slo.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}

	var out []FleetSeries
	for _, kind := range kinds {
		src, err := traffic.NewSource(traffic.Spec{Kind: kind, Rate: rate, Seed: 9001}.WithDefaults())
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		// One offered stream per process, replayed identically by every wave.
		jobs := sched.GenerateJobs(8484, jobsN, classes, traffic.Spacing(src))

		series := FleetSeries{
			Arrivals: string(kind), RateJobsPerSec: rate, Jobs: jobsN,
			SLOTargetSec: slo.LatencyTargetSec, BudgetFrac: slo.BudgetFrac,
		}
		cfg.printf("fleet %-8s rate=%g/s jobs=%d slo=%gs budget=%g%%\n",
			kind, rate, jobsN, slo.LatencyTargetSec, slo.BudgetFrac*100)

		healthy := true
		for _, frac := range fleetWaveFracs {
			if !healthy {
				break // the gate tripped: no wave advances while violating
			}
			armNodes := int(frac*float64(nodes) + 0.5)
			seq, err := fleetWave(cfg, jobs, slo, nodes, armNodes, "seq")
			if err != nil {
				return nil, fmt.Errorf("fleet %s wave %.0f%% (seq): %w", kind, frac*100, err)
			}
			par, err := fleetWave(cfg, jobs, slo, nodes, armNodes, "par")
			if err != nil {
				return nil, fmt.Errorf("fleet %s wave %.0f%% (par): %w", kind, frac*100, err)
			}

			w := FleetWave{
				ArmFrac: frac, ArmNodes: armNodes, Nodes: nodes,
				ThroughputJobsPerSec: seq.ThroughputJobsPerSec,
				P50Sec:               seq.SLO.Summary.P50Sec,
				P99Sec:               seq.SLO.Summary.P99Sec,
				MaxSec:               seq.SLO.Summary.MaxSec,
				Violations:           seq.SLO.Violations,
				ViolationRate:        seq.SLO.ViolationRate,
				Healthy:              seq.SLO.Healthy,
				EnergyJ:              seq.EnergyTotal,
				MakespanSec:          seq.Makespan,
				Migrations:           seq.Migrations,
				EnginesAgree:         seq.Fingerprint() == par.Fingerprint(),
			}
			series.Waves = append(series.Waves, w)
			healthy = w.Healthy
			cfg.printf("  wave arm=%3.0f%% (%d/%d ARM) thr=%7.1f/s p50=%.4fs p99=%.4fs viol=%d (%.1f%%) energy=%7.2fJ mig=%d engines=%v healthy=%v\n",
				frac*100, armNodes, nodes, w.ThroughputJobsPerSec, w.P50Sec, w.P99Sec,
				w.Violations, w.ViolationRate*100, w.EnergyJ, w.Migrations, w.EnginesAgree, w.Healthy)
		}
		series.RolledOut = healthy && len(series.Waves) == len(fleetWaveFracs)
		out = append(out, series)
	}
	return out, nil
}

// FleetInvariantsHold machine-checks the rollout protocol over emitted
// series: both engines agreed on every wave's SLO report, accounting is
// internally consistent, and no wave was entered after a tripped gate.
func FleetInvariantsHold(series []FleetSeries) error {
	if len(series) == 0 {
		return fmt.Errorf("fleet: no series emitted")
	}
	for _, s := range series {
		if len(s.Waves) == 0 {
			return fmt.Errorf("fleet %s: no waves emitted", s.Arrivals)
		}
		for i, w := range s.Waves {
			if !w.EnginesAgree {
				return fmt.Errorf("fleet %s wave %.0f%%: sequential and parallel engines diverged", s.Arrivals, w.ArmFrac*100)
			}
			if w.ViolationRate < 0 || w.ViolationRate > 1 {
				return fmt.Errorf("fleet %s wave %.0f%%: violation rate %g outside [0,1]", s.Arrivals, w.ArmFrac*100, w.ViolationRate)
			}
			if w.P50Sec > w.P99Sec || w.P99Sec > w.MaxSec {
				return fmt.Errorf("fleet %s wave %.0f%%: quantiles out of order (p50=%g p99=%g max=%g)", s.Arrivals, w.ArmFrac*100, w.P50Sec, w.P99Sec, w.MaxSec)
			}
			if w.Healthy != (w.ViolationRate <= s.BudgetFrac) {
				return fmt.Errorf("fleet %s wave %.0f%%: health verdict inconsistent with budget", s.Arrivals, w.ArmFrac*100)
			}
			// The gate: every wave but the last was healthy when the next
			// was entered.
			if i < len(s.Waves)-1 && !w.Healthy {
				return fmt.Errorf("fleet %s: wave %.0f%% advanced while violating its SLO", s.Arrivals, w.ArmFrac*100)
			}
		}
		last := s.Waves[len(s.Waves)-1]
		if s.RolledOut && (len(s.Waves) != len(fleetWaveFracs) || !last.Healthy) {
			return fmt.Errorf("fleet %s: marked rolled-out without a full healthy sweep", s.Arrivals)
		}
		if !s.RolledOut && len(s.Waves) == len(fleetWaveFracs) && last.Healthy {
			return fmt.Errorf("fleet %s: full healthy sweep not marked rolled-out", s.Arrivals)
		}
	}
	return nil
}
