package exp

import (
	"testing"

	"heterodc/internal/core"
	"heterodc/internal/isa"
	"heterodc/internal/npb"
)

// TestMigrationResponseGapBounded is the response-time regression test: the
// largest run of instructions without a migration opportunity must stay
// within about one scaled scheduling quantum (~50k instructions; the
// paper's 50M at its problem scale) even inside CG's solver phases.
func TestMigrationResponseGapBounded(t *testing.T) {
	img, err := buildDefault(npb.CG, npb.ClassS, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewSingle(isa.X86)
	var maxGap uint64
	cl.Kernels[0].InstrumentCalls(nil, func(gap uint64) {
		if gap > maxGap {
			maxGap = gap
		}
	})
	p, _ := cl.Spawn(img, 0)
	if _, err := cl.RunProcess(p); err != nil {
		t.Fatal(err)
	}
	if maxGap > 60_000 {
		t.Errorf("max migration-response gap %d instructions exceeds ~1 scaled quantum", maxGap)
	}
	t.Logf("max gap: %d instructions", maxGap)
}
