package exp

import (
	"fmt"

	"heterodc/internal/core"
	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/link"
	"heterodc/internal/npb"
)

// Table1Row is one aligned-vs-unaligned comparison.
type Table1Row struct {
	Bench npb.Bench
	Class npb.Class
	Arch  isa.Arch
	// ExecRatio is aligned/unaligned execution time (>1 = alignment slows).
	ExecRatio float64
	// L1IMissRatio is aligned/unaligned L1 instruction-cache miss ratio.
	L1IMissRatio float64
	// L1DMissDelta is the absolute difference in D-cache miss rates.
	L1DMissDelta float64
}

// Table1 reproduces Table 1: the cost of the unified (aligned) symbol
// layout versus natural per-ISA layout, measured as execution-time and
// L1 instruction-cache miss ratios for IS and CG.
func Table1(cfg Config) ([]Table1Row, error) {
	var rows []Table1Row
	for _, b := range []npb.Bench{npb.IS, npb.CG} {
		for _, c := range cfg.classes() {
			aligned, err := buildDefault(b, c, 1)
			if err != nil {
				return nil, err
			}
			unaligned, err := buildUnaligned(b, c, 1)
			if err != nil {
				return nil, err
			}
			for _, arch := range isa.Arches {
				ta, ia, err := runWithCacheStats(aligned, arch)
				if err != nil {
					return nil, fmt.Errorf("tab1 aligned %s.%s: %w", b, c, err)
				}
				tu, iu, err := runWithCacheStats(unaligned, arch)
				if err != nil {
					return nil, fmt.Errorf("tab1 unaligned %s.%s: %w", b, c, err)
				}
				missRatio := 1.0
				if iu.iMissRate > 0 {
					missRatio = ia.iMissRate / iu.iMissRate
				}
				row := Table1Row{
					Bench: b, Class: c, Arch: arch,
					ExecRatio:    ta / tu,
					L1IMissRatio: missRatio,
					L1DMissDelta: ia.dMissRate - iu.dMissRate,
				}
				rows = append(rows, row)
				cfg.printf("tab1 %-4s %s %-6s exec=%.4f l1i-miss-ratio=%.3f l1d-delta=%+.5f%%\n",
					b, c, arch, row.ExecRatio, row.L1IMissRatio, row.L1DMissDelta*100)
			}
		}
	}
	return rows, nil
}

type cacheRates struct {
	iMissRate float64
	dMissRate float64
}

func runWithCacheStats(img *link.Image, arch isa.Arch) (float64, cacheRates, error) {
	cl := core.NewSingle(arch)
	p, err := cl.Spawn(img, 0)
	if err != nil {
		return 0, cacheRates{}, err
	}
	if _, err := cl.RunProcess(p); err != nil {
		return 0, cacheRates{}, err
	}
	var k *kernel.Kernel = cl.Kernels[0]
	iAcc, iMiss, dAcc, dMiss := k.CacheStats()
	var cr cacheRates
	if iAcc > 0 {
		cr.iMissRate = float64(iMiss) / float64(iAcc)
	}
	if dAcc > 0 {
		cr.dMissRate = float64(dMiss) / float64(dAcc)
	}
	return cl.Time(), cr, nil
}

// Table1ShapeHolds checks the paper's claim: symbol alignment costs at most
// ~1-2% execution time in every configuration.
func Table1ShapeHolds(rows []Table1Row) error {
	for _, r := range rows {
		if r.ExecRatio > 1.03 || r.ExecRatio < 0.97 {
			return fmt.Errorf("tab1: %s.%s on %s exec ratio %.4f outside ±3%%",
				r.Bench, r.Class, r.Arch, r.ExecRatio)
		}
	}
	return nil
}
