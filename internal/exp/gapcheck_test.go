package exp

import (
	"testing"

	"heterodc/internal/core"
	"heterodc/internal/isa"
	"heterodc/internal/npb"
)

// TestResponseGapsClassA measures the worst migration-response gap of every
// NPB kernel at class A on x86 — the full-suite version of the bounded-gap
// regression (paper's goal: roughly one point per scheduling quantum; ours
// scales to ~50k instructions).
func TestResponseGapsClassA(t *testing.T) {
	if testing.Short() {
		t.Skip("class A sweep in -short mode")
	}
	for _, b := range []npb.Bench{npb.EP, npb.IS, npb.CG, npb.FT, npb.SP, npb.BT, npb.MG} {
		img, err := buildDefault(b, npb.ClassA, 1)
		if err != nil {
			t.Fatal(err)
		}
		cl := core.NewSingle(isa.X86)
		var maxGap uint64
		cl.Kernels[0].InstrumentCalls(nil, func(gap uint64) {
			if gap > maxGap {
				maxGap = gap
			}
		})
		p, _ := cl.Spawn(img, 0)
		if _, err := cl.RunProcess(p); err != nil {
			t.Fatal(err)
		}
		t.Logf("%-4s class A max gap: %8d instrs", b, maxGap)
		if maxGap > 300_000 {
			t.Errorf("%s: gap %d exceeds ~6 scaled quanta", b, maxGap)
		}
	}
}
