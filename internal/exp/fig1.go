package exp

import (
	"fmt"

	"heterodc/internal/dbt"
	"heterodc/internal/isa"
	"heterodc/internal/npb"
)

// Fig1Row is one emulation-slowdown measurement.
type Fig1Row struct {
	Bench   npb.Bench
	Class   npb.Class
	Threads int
	// Guest is the ISA the binary was compiled for; it runs natively on the
	// guest machine and emulated on the other machine.
	Guest isa.Arch
	// NativeSeconds / EmulatedSeconds are the two runtimes.
	NativeSeconds   float64
	EmulatedSeconds float64
	// Slowdown = emulated / native.
	Slowdown float64
}

// Fig1Result reproduces Figure 1: the slowdown of running applications
// under KVM/QEMU-style emulation versus natively — ARM binaries emulated on
// x86 (top graph) and x86 binaries emulated on ARM (bottom graph).
type Fig1Result struct {
	Rows []Fig1Row
}

// Fig1 runs the emulation-slowdown sweep.
func Fig1(cfg Config) (*Fig1Result, error) {
	benches := []npb.Bench{npb.SP, npb.IS, npb.FT, npb.BT, npb.CG}
	if cfg.Scale == Quick {
		benches = []npb.Bench{npb.IS, npb.CG}
	}
	res := &Fig1Result{}
	for _, guest := range []isa.Arch{isa.ARM64, isa.X86} {
		host := guest.Other()
		for _, b := range benches {
			for _, c := range cfg.classes() {
				for _, th := range cfg.threadCounts() {
					img, err := buildDefault(b, c, th)
					if err != nil {
						return nil, err
					}
					tn, _, err := runNative(img, guest)
					if err != nil {
						return nil, fmt.Errorf("fig1 native %s.%s: %w", b, c, err)
					}
					te, _, err := dbt.RunEmulated(img, guest, host)
					if err != nil {
						return nil, fmt.Errorf("fig1 emul %s.%s: %w", b, c, err)
					}
					res.Rows = append(res.Rows, Fig1Row{
						Bench: b, Class: c, Threads: th, Guest: guest,
						NativeSeconds: tn, EmulatedSeconds: te,
						Slowdown: te / tn,
					})
					cfg.printf("fig1 %-10s guest=%-6s %s%d  native=%8.4fs  emulated=%10.4fs  slowdown=%8.1fx\n",
						b, guest, c, th, tn, te, te/tn)
				}
			}
		}
	}
	return res, nil
}

// Print renders the two panels of Figure 1.
func (r *Fig1Result) Print(cfg Config) {
	for _, guest := range []isa.Arch{isa.ARM64, isa.X86} {
		host := guest.Other()
		cfg.printf("\nFigure 1 (%s): slowdown emulating %s binaries on %s vs native %s\n",
			map[isa.Arch]string{isa.ARM64: "top", isa.X86: "bottom"}[guest], guest, host, guest)
		cfg.printf("%-10s %-8s %-8s %12s\n", "bench", "class", "threads", "slowdown")
		for _, row := range r.Rows {
			if row.Guest != guest {
				continue
			}
			cfg.printf("%-10s %-8s %-8d %11.1fx\n", row.Bench, row.Class, row.Threads, row.Slowdown)
		}
	}
}

// ShapeHolds checks the paper's qualitative claims: emulation is at least
// several-fold slower everywhere, and x86-on-ARM is far worse than
// ARM-on-x86 on average.
func (r *Fig1Result) ShapeHolds() error {
	var sumA2X, sumX2A float64
	var nA2X, nX2A int
	for _, row := range r.Rows {
		if row.Slowdown < 2 {
			return fmt.Errorf("fig1: %s.%s guest %s slowdown %.2f < 2x", row.Bench, row.Class, row.Guest, row.Slowdown)
		}
		if row.Guest == isa.ARM64 {
			sumA2X += row.Slowdown
			nA2X++
		} else {
			sumX2A += row.Slowdown
			nX2A++
		}
	}
	if nA2X == 0 || nX2A == 0 {
		return fmt.Errorf("fig1: missing direction")
	}
	if sumX2A/float64(nX2A) < 3*sumA2X/float64(nA2X) {
		return fmt.Errorf("fig1: x86-on-ARM (%.1fx avg) not markedly worse than ARM-on-x86 (%.1fx avg)",
			sumX2A/float64(nX2A), sumA2X/float64(nA2X))
	}
	return nil
}
