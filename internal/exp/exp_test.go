package exp

import (
	"testing"
)

func quick() Config { return Config{Scale: Quick} }

func TestFig1Quick(t *testing.T) {
	r, err := Fig1(quick())
	if err != nil {
		t.Fatalf("fig1: %v", err)
	}
	if err := r.ShapeHolds(); err != nil {
		t.Errorf("fig1 shape: %v", err)
	}
	for _, row := range r.Rows {
		t.Logf("fig1 %s %s t%d guest=%s slowdown=%.1fx", row.Bench, row.Class, row.Threads, row.Guest, row.Slowdown)
	}
}

func TestFig345Quick(t *testing.T) {
	rs, err := Fig345(quick())
	if err != nil {
		t.Fatalf("fig345: %v", err)
	}
	for _, r := range rs {
		if r.Post.Total == 0 {
			t.Errorf("%s: no migration points executed", r.Bench)
		}
		// Loop points (direct + counted polling) must shrink the largest
		// gap substantially — the figures' whole story.
		if r.PostMax*2 > r.PreMax {
			t.Errorf("%s: post max gap %d not well below pre max gap %d", r.Bench, r.PostMax, r.PreMax)
		}
		t.Logf("%s: pre n=%d max=%d; post n=%d max=%d", r.Bench, r.Pre.Total, r.PreMax, r.Post.Total, r.PostMax)
	}
}

func TestFig6789Quick(t *testing.T) {
	rows, err := Fig6789(quick())
	if err != nil {
		t.Fatalf("fig6789: %v", err)
	}
	if err := Fig6789ShapeHolds(rows); err != nil {
		t.Errorf("fig6789 shape: %v", err)
	}
	for _, r := range rows {
		t.Logf("%s %s t%d %s: %+.2f%%", r.Bench, r.Class, r.Threads, r.Arch, r.OverheadPct)
	}
}

func TestTable1Quick(t *testing.T) {
	rows, err := Table1(quick())
	if err != nil {
		t.Fatalf("tab1: %v", err)
	}
	if err := Table1ShapeHolds(rows); err != nil {
		t.Errorf("tab1 shape: %v", err)
	}
	for _, r := range rows {
		t.Logf("%s %s %s exec=%.4f l1i=%.3f", r.Bench, r.Class, r.Arch, r.ExecRatio, r.L1IMissRatio)
	}
}

func TestFig10Quick(t *testing.T) {
	rs, err := Fig10(quick())
	if err != nil {
		t.Fatalf("fig10: %v", err)
	}
	if err := Fig10ShapeHolds(rs); err != nil {
		t.Errorf("fig10 shape: %v", err)
	}
	for _, r := range rs {
		t.Logf("%s from %s: %s", r.Bench, r.SrcArch, r.Summary)
	}
}

func TestFig11Quick(t *testing.T) {
	r, err := Fig11(quick())
	if err != nil {
		t.Fatalf("fig11: %v", err)
	}
	if err := r.ShapeHolds(); err != nil {
		t.Errorf("fig11 shape: %v", err)
	}
	t.Logf("native=%.4fs managed=%.4fs ratio=%.2f", r.NativeSeconds, r.ManagedSeconds, r.ManagedSeconds/r.NativeSeconds)
}

func TestFig12Quick(t *testing.T) {
	sets, err := Fig12(quick())
	if err != nil {
		t.Fatalf("fig12: %v", err)
	}
	s := SummarizeFig12(sets)
	t.Logf("savings: %v, makespan ratios: %v", s.AvgEnergySavingPct, s.AvgMakespanRatio)
}

func TestFig13Quick(t *testing.T) {
	sets, err := Fig13(quick())
	if err != nil {
		t.Fatalf("fig13: %v", err)
	}
	for _, fs := range sets {
		t.Logf("set %d: static E=%.2fJ EDP=%.4f; dynamic E=%.2fJ EDP=%.4f",
			fs.Set, fs.Static.EnergyTotal, fs.Static.EDP, fs.Dynamic.EnergyTotal, fs.Dynamic.EDP)
	}
}
