package exp

import (
	"bytes"
	"fmt"

	"heterodc/internal/ckpt"
	"heterodc/internal/core"
	"heterodc/internal/fault"
	"heterodc/internal/kernel"
	"heterodc/internal/msg"
	"heterodc/internal/npb"
	"heterodc/internal/trace"
)

// ChaosOptions parameterises the chaos harness.
type ChaosOptions struct {
	// Seed selects the deterministic fault streams.
	Seed int64
	// DropProb is the baseline loss probability of the lossy plan (the
	// degraded and crash plans derive theirs from it). Zero means 2%.
	DropProb float64
	// CrashFrac places the node-1 outage, as a fraction of the fault-free
	// runtime. Zero means 0.35 (recovery at CrashFrac + 0.15).
	CrashFrac float64
}

// ChaosRow reports one benchmark under one fault plan.
type ChaosRow struct {
	Bench string
	Plan  string
	// Base is the fault-free runtime; Seconds the runtime under the plan.
	Base, Seconds float64
	// ExitOK: exited with code 0 and no kill. OutputMatch: byte-identical
	// output to the fault-free run (the benchmarks self-verify, so this is
	// the correctness criterion).
	ExitOK      bool
	OutputMatch bool
	// Interconnect fault counters for the run.
	Dropped, Retries, Duplicated, Exhausted uint64
	// Aborted sums migrations rolled back; Migrations counts completed ones.
	Aborted    uint64
	Migrations int
	// CrashEvents/RecoverEvents from the trace log.
	CrashEvents, RecoverEvents int
	// Checkpoint-recovery counters (non-zero only for the permanent-crash
	// plan, which runs under a ckpt.Manager).
	Checkpoints  int
	Restores     int
	CkptBytes    int64
	WorkReplayed float64
}

// chaosBenches returns the benchmark set at this scale.
func (c Config) chaosBenches() []struct {
	b npb.Bench
	k npb.Class
} {
	k := npb.ClassS
	if c.Scale != Quick {
		k = npb.ClassA
	}
	return []struct {
		b npb.Bench
		k npb.Class
	}{{npb.EP, k}, {npb.IS, k}}
}

// chaosPlans derives the four stock fault plans from a fault-free runtime:
// a uniformly lossy fabric, a mid-run degraded-link window, a mid-run
// node-1 crash with recovery, and a permanent node-1 crash (RecoverAt <= At)
// that only checkpoint-based recovery can survive.
func chaosPlans(opts ChaosOptions, ref float64) []struct {
	name string
	plan fault.Plan
} {
	drop := opts.DropProb
	if drop == 0 {
		drop = 0.02
	}
	crashFrac := opts.CrashFrac
	if crashFrac == 0 {
		crashFrac = 0.35
	}
	return []struct {
		name string
		plan fault.Plan
	}{
		{"lossy", fault.Plan{
			Seed: opts.Seed, DropProb: drop, DupProb: 0.005, JitterSec: 3e-6,
		}},
		{"degraded-link", fault.Plan{
			Seed: opts.Seed + 1, DropProb: drop / 2, DupProb: 0.01, JitterSec: 2e-6,
			Windows: []fault.Window{{
				From: 0, To: 1, Start: 0.2 * ref, End: 0.5 * ref,
				DropProb: 0.25, JitterSec: 10e-6,
			}},
		}},
		{"node-crash", fault.Plan{
			Seed: opts.Seed + 2, DropProb: drop / 2, JitterSec: 2e-6,
			Crashes: []fault.Crash{{
				Node: 1, At: crashFrac * ref, RecoverAt: (crashFrac + 0.15) * ref,
			}},
		}},
		{"node-crash-perm", fault.Plan{
			Seed: opts.Seed + 3,
			Crashes: []fault.Crash{{
				Node: 1, At: (crashFrac + 0.2) * ref, RecoverAt: 0,
			}},
		}},
	}
}

// planPermanent reports whether a plan contains a permanent crash, i.e. a
// node that never comes back. Such a plan strands any process with state on
// the node unless checkpoint recovery is running.
func planPermanent(p fault.Plan) bool {
	for _, c := range p.Crashes {
		if c.RecoverAt <= c.At {
			return true
		}
	}
	return false
}

// runChaosOnce executes img on the testbed under plan, requesting a
// container migration to node 1 at migrateAt so the fault machinery is
// exercised with a thread actually on (or moving to) the faulty side.
func runChaosOnce(b npb.Bench, k npb.Class, plan fault.Plan, migrateAt float64) (
	*core.Result, msg.Stats, uint64, *trace.EventLog, error) {
	img, err := npb.Build(b, k, 1)
	if err != nil {
		return nil, msg.Stats{}, 0, nil, err
	}
	cl := core.NewTestbed()
	cl.InjectFaults(plan)
	log := trace.NewEventLog(4096)
	cl.SetTracer(log)
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		return nil, msg.Stats{}, 0, nil, err
	}
	requested := false
	for {
		if exited, _ := p.Exited(); exited {
			break
		}
		if !requested && cl.Time() >= migrateAt {
			cl.RequestProcessMigration(p, core.NodeARM)
			requested = true
		}
		if !cl.Step() {
			return nil, msg.Stats{}, 0, nil,
				fmt.Errorf("exp: chaos: cluster drained before %s.%s exited", b, k)
		}
	}
	res, err := core.Wait(cl, p)
	if err != nil {
		return nil, msg.Stats{}, 0, nil, err
	}
	var aborted uint64
	for _, kn := range cl.Kernels {
		aborted += kn.MigrationsAborted
	}
	return res, cl.IC.Stats(), aborted, log, nil
}

// runChaosCkptOnce executes a benchmark under a permanent-crash plan with
// checkpoint-based recovery: the process is checkpointed under pol and,
// once the crash strands it, restored from its latest image on the
// surviving node. Returns the finishing incarnation's result.
func runChaosCkptOnce(b npb.Bench, k npb.Class, plan fault.Plan, migrateAt float64, pol kernel.CkptPolicy) (
	*core.Result, ckpt.Stats, *trace.EventLog, error) {
	img, err := npb.Build(b, k, 1)
	if err != nil {
		return nil, ckpt.Stats{}, nil, err
	}
	cl := core.NewTestbed()
	cl.InjectFaults(plan)
	log := trace.NewEventLog(4096)
	cl.SetTracer(log)
	mgr := ckpt.NewManager(cl)
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		return nil, ckpt.Stats{}, nil, err
	}
	mgr.Track(p, img, pol)
	requested := false
	for {
		cur := mgr.Current(p)
		if exited, _ := cur.Exited(); exited {
			// A crash in the same step may already have restored a newer
			// incarnation; follow it.
			if mgr.Current(p) != cur {
				continue
			}
			break
		}
		if !requested && cl.Time() >= migrateAt {
			cl.RequestProcessMigration(cur, core.NodeARM)
			requested = true
		}
		if !cl.Step() {
			return nil, ckpt.Stats{}, nil,
				fmt.Errorf("exp: chaos: cluster drained before %s.%s exited", b, k)
		}
	}
	final := mgr.Current(p)
	if err := final.Err(); err != nil {
		return nil, mgr.Stats(), log, fmt.Errorf("exp: chaos: %s.%s failed despite recovery: %w", b, k, err)
	}
	_, code := final.Exited()
	res := &core.Result{ExitCode: code, Output: final.Output(), Seconds: cl.Time()}
	for tid := int64(0); ; tid++ {
		t := final.Thread(tid)
		if t == nil {
			break
		}
		res.Migrations += t.Migrations
	}
	return res, mgr.Stats(), log, nil
}

// Chaos runs the NPB kernels under the stock fault plans and reports
// correctness and overhead against the fault-free baseline. Processes must
// finish, verify and match the baseline output under every plan — faults
// degrade performance, never correctness.
func Chaos(cfg Config, opts ChaosOptions) ([]ChaosRow, error) {
	var rows []ChaosRow
	for _, bk := range cfg.chaosBenches() {
		img, err := npb.Build(bk.b, bk.k, 1)
		if err != nil {
			return nil, fmt.Errorf("exp: chaos build %s.%s: %w", bk.b, bk.k, err)
		}
		ref, err := core.Run(img, core.NodeX86)
		if err != nil {
			return nil, fmt.Errorf("exp: chaos baseline %s.%s: %w", bk.b, bk.k, err)
		}
		cfg.printf("%s.%s baseline: %.4fs\n", bk.b, bk.k, ref.Seconds)
		migrateAt := 0.25 * ref.Seconds
		for _, pl := range chaosPlans(opts, ref.Seconds) {
			if planPermanent(pl.plan) {
				pol := kernel.CkptPolicy{EverySeconds: 0.08 * ref.Seconds}
				res, cs, log, err := runChaosCkptOnce(bk.b, bk.k, pl.plan, migrateAt, pol)
				if err != nil {
					return nil, fmt.Errorf("exp: chaos %s under %s: %w", bk.b, pl.name, err)
				}
				row := ChaosRow{
					Bench: fmt.Sprintf("%s.%s", bk.b, bk.k), Plan: pl.name,
					Base: ref.Seconds, Seconds: res.Seconds,
					ExitOK:      res.ExitCode == 0,
					OutputMatch: bytes.Equal(res.Output, ref.Output),
					Migrations:  res.Migrations,
					CrashEvents: log.Count("crash"), RecoverEvents: log.Count("recover"),
					Checkpoints: cs.ImagesWritten, Restores: cs.Restores,
					CkptBytes: cs.BytesWritten, WorkReplayed: cs.WorkReplayedSeconds,
				}
				rows = append(rows, row)
				cfg.printf("  %-14s %.4fs (%.2fx) exit=%v match=%v ckpt=%d restores=%d replayed=%.4fs\n",
					pl.name, row.Seconds, row.Seconds/row.Base, row.ExitOK, row.OutputMatch,
					row.Checkpoints, row.Restores, row.WorkReplayed)
				continue
			}
			res, stats, aborted, log, err := runChaosOnce(bk.b, bk.k, pl.plan, migrateAt)
			if err != nil {
				return nil, fmt.Errorf("exp: chaos %s under %s: %w", bk.b, pl.name, err)
			}
			row := ChaosRow{
				Bench: fmt.Sprintf("%s.%s", bk.b, bk.k), Plan: pl.name,
				Base: ref.Seconds, Seconds: res.Seconds,
				ExitOK:      res.ExitCode == 0,
				OutputMatch: bytes.Equal(res.Output, ref.Output),
				Dropped:     stats.Dropped, Retries: stats.Retries,
				Duplicated: stats.Duplicated, Exhausted: stats.Exhausted,
				Aborted: aborted, Migrations: res.Migrations,
				CrashEvents: log.Count("crash"), RecoverEvents: log.Count("recover"),
			}
			rows = append(rows, row)
			cfg.printf("  %-14s %.4fs (%.2fx) exit=%v match=%v drop=%d retry=%d dup=%d mig=%d abort=%d\n",
				pl.name, row.Seconds, row.Seconds/row.Base, row.ExitOK, row.OutputMatch,
				row.Dropped, row.Retries, row.Duplicated, row.Migrations, row.Aborted)
		}
	}
	return rows, nil
}
