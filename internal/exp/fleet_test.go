package exp

import (
	"testing"

	"heterodc/internal/traffic"
)

func TestFleetRolloutQuick(t *testing.T) {
	series, err := Fleet(Config{Scale: Quick}, FleetOptions{})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if err := FleetInvariantsHold(series); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if len(series) != len(traffic.Kinds()) {
		t.Fatalf("got %d series, want one per arrival process (%d)", len(series), len(traffic.Kinds()))
	}
	for _, s := range series {
		if !s.RolledOut {
			t.Errorf("%s: rollout gated at wave %d/%d (violation rate %.2f); Quick calibration should stay healthy",
				s.Arrivals, len(s.Waves), 5, s.Waves[len(s.Waves)-1].ViolationRate)
		}
		for _, w := range s.Waves {
			if w.ThroughputJobsPerSec <= 0 {
				t.Errorf("%s wave %.0f%%: non-positive throughput", s.Arrivals, w.ArmFrac*100)
			}
			if w.EnergyJ <= 0 {
				t.Errorf("%s wave %.0f%%: non-positive energy", s.Arrivals, w.ArmFrac*100)
			}
		}
		first, last := s.Waves[0], s.Waves[len(s.Waves)-1]
		if first.ArmNodes != 0 || last.ArmNodes != last.Nodes {
			t.Errorf("%s: rollout should sweep 0%% to 100%% ARM, got %d..%d of %d nodes",
				s.Arrivals, first.ArmNodes, last.ArmNodes, last.Nodes)
		}
	}
}

func TestFleetInvariantsReject(t *testing.T) {
	healthyWave := func(frac float64, n int) FleetWave {
		return FleetWave{
			ArmFrac: frac, ArmNodes: int(frac*float64(n) + 0.5), Nodes: n,
			P50Sec: 0.1, P99Sec: 0.2, MaxSec: 0.3,
			Healthy: true, EnginesAgree: true,
		}
	}
	base := func() []FleetSeries {
		s := FleetSeries{Arrivals: "poisson", BudgetFrac: 0.1, RolledOut: true}
		for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
			s.Waves = append(s.Waves, healthyWave(f, 4))
		}
		return []FleetSeries{s}
	}

	if err := FleetInvariantsHold(base()); err != nil {
		t.Fatalf("healthy sweep rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func([]FleetSeries)
	}{
		{"engine divergence", func(s []FleetSeries) { s[0].Waves[2].EnginesAgree = false }},
		{"advance while violating", func(s []FleetSeries) {
			s[0].Waves[1].Healthy = false
			s[0].Waves[1].ViolationRate = 0.5
		}},
		{"quantiles out of order", func(s []FleetSeries) { s[0].Waves[3].P50Sec = 0.9 }},
		{"verdict inconsistent with budget", func(s []FleetSeries) { s[0].Waves[0].ViolationRate = 0.9 }},
		{"rolled-out without full sweep", func(s []FleetSeries) { s[0].Waves = s[0].Waves[:3] }},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		if err := FleetInvariantsHold(s); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
