package exp

import (
	"testing"

	"heterodc/internal/isa"
	"heterodc/internal/npb"
)

// TestOverheadClassA is the Figures 6-9 regression at realistic class size:
// migration-point overhead must stay in the paper's "mostly below 5%" band.
func TestOverheadClassA(t *testing.T) {
	if testing.Short() {
		t.Skip("class A in -short mode")
	}
	over5 := 0
	n := 0
	for _, b := range []npb.Bench{npb.CG, npb.IS, npb.FT, npb.EP} {
		base, err := buildNoMigration(b, npb.ClassA, 1)
		if err != nil {
			t.Fatal(err)
		}
		instr, err := buildDefault(b, npb.ClassA, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, arch := range isa.Arches {
			tb, _, err := runNative(base, arch)
			if err != nil {
				t.Fatal(err)
			}
			ti, _, err := runNative(instr, arch)
			if err != nil {
				t.Fatal(err)
			}
			ov := (ti/tb - 1) * 100
			t.Logf("%s A %s: %+.2f%%", b, arch, ov)
			n++
			if ov > 5 {
				over5++
			}
			if ov > 12 {
				t.Errorf("%s on %s: overhead %.1f%% far above the paper's band", b, arch, ov)
			}
		}
	}
	if over5*2 > n {
		t.Errorf("more than half of class A configs exceed 5%% overhead")
	}
}
