package msg

// Partition-window enforcement at the interconnect: unreliable sends are
// severed at the cut, reliable senders wait out a known heal (or burn their
// backoff budget against a permanent cut), asymmetric cuts lose only acks,
// and everything stays deterministic.

import (
	"testing"

	"heterodc/internal/fault"
)

// partInjector builds an injector whose only chaos is the given partition
// windows.
func partInjector(ws ...fault.PartitionWindow) *fault.Injector {
	return fault.NewInjector(fault.Plan{Partitions: ws})
}

func TestSendSeveredAcrossCut(t *testing.T) {
	ic := New(testCfg())
	ic.SetInjector(partInjector(fault.PartitionWindow{GroupA: []int{0}, Start: 0, HealAt: 1.0}))
	// Cross-cut legs die in both directions; same-side traffic is untouched.
	ic.Send(0.5, 0, 1, TRemoteWake, 64, nil)
	ic.Send(0.5, 1, 0, TRemoteWake, 64, nil)
	if ic.Pending(0) != 0 || ic.Pending(1) != 0 {
		t.Fatal("cross-cut send was enqueued")
	}
	s := ic.Stats()
	if s.PartitionDrops != 2 || s.Dropped != 2 {
		t.Fatalf("stats = %+v, want 2 partition drops", s)
	}
	ic.Send(0.5, 1, 2, TRemoteWake, 64, nil) // B-side internal traffic
	if ic.Pending(2) != 1 {
		t.Fatal("same-side send was severed")
	}
	// After the heal the link carries traffic again.
	ic.Send(1.5, 0, 1, TRemoteWake, 64, nil)
	if ic.Pending(1) != 1 {
		t.Fatal("post-heal send was severed")
	}
}

func TestSendCutAtDeliveryTimeNotSendTime(t *testing.T) {
	ic := New(testCfg())
	// The window opens 0.5us after the send: the leg is in flight when the
	// cut lands (delivery at ~1.1us), so it is lost.
	ic.SetInjector(partInjector(fault.PartitionWindow{GroupA: []int{0}, Start: 0.5e-6, HealAt: 1.0}))
	ic.Send(0, 0, 1, TRemoteWake, 64, nil)
	if ic.Pending(1) != 0 {
		t.Fatal("in-flight leg survived the cut")
	}
	if ic.Stats().PartitionDrops != 1 {
		t.Fatalf("PartitionDrops = %d, want 1", ic.Stats().PartitionDrops)
	}
}

func TestSendReliableStallsToKnownHeal(t *testing.T) {
	ic := New(testCfg())
	ic.SetInjector(partInjector(fault.PartitionWindow{GroupA: []int{0}, Start: 0, HealAt: 0.5}))
	d, ok := ic.SendReliable(0.1, 0, 1, TThreadMigrate, 100, nil)
	if !ok {
		t.Fatal("reliable send failed across a healing partition")
	}
	if d < 0.5 {
		t.Fatalf("delivered at %g, want after the heal at 0.5", d)
	}
	s := ic.Stats()
	if s.PartitionStalls == 0 {
		t.Fatal("no partition stall counted")
	}
	// A known-finite cut is waited out like a crash outage: the retry budget
	// is not consumed.
	if s.Retries != 0 || s.Exhausted != 0 {
		t.Fatalf("stall consumed the retry budget: %+v", s)
	}
	if ic.Pending(1) != 1 {
		t.Fatal("healed send not enqueued")
	}
}

func TestSendReliablePermanentCutBurnsBackoff(t *testing.T) {
	ic := New(testCfg())
	// HealAt <= Start: the cut never heals. The sender cannot distinguish it
	// from loss, so it must burn its retry budget at the doubling backoff
	// cadence — not spin — before giving up.
	ic.SetInjector(partInjector(fault.PartitionWindow{GroupA: []int{0}, Start: 0, HealAt: 0}))
	start := 0.1
	giveUp, ok := ic.SendReliable(start, 0, 1, TThreadMigrate, 100, nil)
	if ok {
		t.Fatal("reliable send succeeded across a permanent cut")
	}
	s := ic.Stats()
	if s.Exhausted != 1 {
		t.Fatalf("Exhausted = %d, want 1", s.Exhausted)
	}
	if s.Retries != uint64(DefaultMaxRetries)+1 {
		t.Fatalf("Retries = %d, want %d", s.Retries, DefaultMaxRetries+1)
	}
	if s.PartitionDrops != s.Retries {
		t.Fatalf("PartitionDrops = %d, want %d (every retry severed)", s.PartitionDrops, s.Retries)
	}
	// Doubling backoff: the give-up point must sit far past maxRetries
	// fixed-timeout spins (8 * 25us = 200us; the capped-doubling schedule
	// reaches ~3.2ms).
	if burned := giveUp - start; burned < 10*float64(DefaultMaxRetries)*DefaultRetxTimeout {
		t.Fatalf("gave up after %gs, want a backed-off schedule >> %gs",
			burned, float64(DefaultMaxRetries)*DefaultRetxTimeout)
	}
	if ic.Pending(1) != 0 {
		t.Fatal("failed reliable send left a queued message")
	}
}

func TestSendReliableInFlightCutRetriesThenStalls(t *testing.T) {
	ic := New(testCfg())
	// The window opens while the first leg is in flight: that leg is lost
	// (burning a retry), and once the sender's clock enters the window the
	// pre-attempt check stalls it to the heal.
	ic.SetInjector(partInjector(fault.PartitionWindow{GroupA: []int{0}, Start: 0.1 + 0.5e-6, HealAt: 0.2}))
	d, ok := ic.SendReliable(0.1, 0, 1, TThreadMigrate, 100, nil)
	if !ok {
		t.Fatal("reliable send failed across a healing partition")
	}
	if d < 0.2 {
		t.Fatalf("delivered at %g, want after the heal at 0.2", d)
	}
	s := ic.Stats()
	if s.Retries == 0 || s.PartitionDrops == 0 {
		t.Fatalf("in-flight cut burned no retry: %+v", s)
	}
	if s.PartitionStalls == 0 {
		t.Fatalf("sender inside the window did not stall to the heal: %+v", s)
	}
}

func TestOneWayCutLosesAcksAndDuplicates(t *testing.T) {
	ic := New(testCfg())
	// Asymmetric cut: only 1->0 legs are severed. A reliable 0->1 send gets
	// through, but its acknowledgement is lost, so the sender retransmits a
	// copy the receiver must tolerate.
	ic.SetInjector(partInjector(fault.PartitionWindow{GroupA: []int{1}, Start: 0, HealAt: 1.0, OneWay: true}))
	_, ok := ic.SendReliable(0.5, 0, 1, TThreadMigrate, 100, nil)
	if !ok {
		t.Fatal("forward leg failed under a reverse-only cut")
	}
	if ic.Pending(1) != 2 {
		t.Fatalf("pending %d, want 2 (original + lost-ack duplicate)", ic.Pending(1))
	}
	if ic.Stats().Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", ic.Stats().Duplicated)
	}
	// The severed direction still drops unreliable traffic...
	ic.Send(0.5, 1, 0, TRemoteWake, 64, nil)
	if ic.Pending(0) != 0 {
		t.Fatal("A->B leg of a one-way cut delivered")
	}
	// ...while the surviving direction delivers without duplication.
	before := ic.Pending(1)
	ic.Send(0.6, 0, 1, TRemoteWake, 64, nil)
	if ic.Pending(1) != before+1 {
		t.Fatal("B->A direction did not deliver cleanly")
	}
}

func TestReliableRTTStallsAcrossPartition(t *testing.T) {
	ic := New(testCfg())
	ic.SetInjector(partInjector(fault.PartitionWindow{GroupA: []int{0}, Start: 0, HealAt: 0.5}))
	lat, ok := ic.ReliableRTT(0.1, 0, 1, 4096)
	if !ok {
		t.Fatal("exchange failed despite a scheduled heal")
	}
	if lat < 0.4 {
		t.Fatalf("latency %g, want >= 0.4 (stalled until the heal at 0.5)", lat)
	}
	if ic.Stats().PartitionStalls == 0 {
		t.Fatal("no partition stall counted")
	}
	// Against a permanent cut the exchange fails after burning its budget.
	ic2 := New(testCfg())
	ic2.SetInjector(partInjector(fault.PartitionWindow{GroupA: []int{0}, Start: 0, HealAt: 0}))
	if _, ok := ic2.ReliableRTT(0.1, 0, 1, 4096); ok {
		t.Fatal("exchange succeeded across a permanent cut")
	}
	if s := ic2.Stats(); s.Exhausted != 1 || s.Retries == 0 {
		t.Fatalf("stats = %+v, want exhausted after burned retries", s)
	}
}

func TestSweepScopedUnderPartition(t *testing.T) {
	ic := New(testCfg())
	// Messages enqueued before the window opened are already past the cut
	// check; a partition does not retroactively reach into queues. Sweeping
	// the reaped process's messages works the same mid-partition.
	ic.Send(0, 0, 1, TThreadMigrate, 100, "dead")
	ic.Send(0, 0, 1, TRemoteWake, 64, "live")
	ic.Send(0, 2, 3, TThreadMigrate, 100, "dead")
	ic.SetInjector(partInjector(fault.PartitionWindow{GroupA: []int{0, 1}, Start: 1e-6, HealAt: 1.0}))
	// Scoped to the partition's A side: only node 1's queue is touched.
	n := ic.Sweep([]int{0, 1}, func(m *Message) bool { return m.Payload == "dead" })
	if n != 1 {
		t.Fatalf("swept %d, want 1 (scope excludes node 3)", n)
	}
	if ic.Pending(1) != 1 || ic.Pending(3) != 1 {
		t.Fatalf("pending after sweep: node1=%d node3=%d", ic.Pending(1), ic.Pending(3))
	}
	if m := ic.PopDue(1, 1.0); m == nil || m.Payload != "live" {
		t.Fatal("surviving message lost or reordered by scoped sweep")
	}
}

func TestPartitionDeterministic(t *testing.T) {
	run := func() (Stats, float64) {
		ic := New(testCfg())
		ic.SetInjector(fault.NewInjector(fault.Plan{
			Seed:     13,
			DropProb: 0.1,
			Partitions: []fault.PartitionWindow{
				{GroupA: []int{0, 1}, Start: 5e-3, HealAt: 12e-3},
				{GroupA: []int{0}, Start: 20e-3, HealAt: 25e-3, OneWay: true},
			},
		}))
		total := 0.0
		for i := 0; i < 200; i++ {
			at := float64(i) * 1.5e-4
			from, to := i%4, (i+1+i%3)%4
			if from == to {
				continue
			}
			if d, ok := ic.SendReliable(at, from, to, TThreadMigrate, 100, i); ok {
				total += d
			}
		}
		return ic.Stats(), total
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("two identical partitioned runs diverged: %+v/%g vs %+v/%g", s1, t1, s2, t2)
	}
	if s1.PartitionDrops == 0 && s1.PartitionStalls == 0 {
		t.Fatalf("partition windows never engaged: %+v", s1)
	}
}
