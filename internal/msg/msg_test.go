package msg

import (
	"testing"
	"testing/quick"
)

func testCfg() Config {
	return Config{LatencySec: 1e-6, BytesPerSec: 1e9, HeaderBytes: 0}
}

func TestDeliveryTiming(t *testing.T) {
	ic := New(testCfg())
	d := ic.Send(0, 0, 1, TPageReply, 1000, nil)
	// 1000 B at 1 GB/s = 1 µs serialisation + 1 µs latency.
	want := 2e-6
	if d < want*0.999 || d > want*1.001 {
		t.Fatalf("deliver %g, want %g", d, want)
	}
}

func TestLinkOccupancySerialises(t *testing.T) {
	ic := New(testCfg())
	d1 := ic.Send(0, 0, 1, TPageReply, 1000, nil)
	d2 := ic.Send(0, 0, 1, TPageReply, 1000, nil)
	if d2 <= d1 {
		t.Fatalf("second message not serialised after first: %g <= %g", d2, d1)
	}
	// Opposite direction is a separate link.
	d3 := ic.Send(0, 1, 0, TPageReply, 1000, nil)
	if d3 != d1 {
		t.Fatalf("reverse link shares occupancy: %g vs %g", d3, d1)
	}
}

func TestPopDueOrdering(t *testing.T) {
	ic := New(testCfg())
	ic.Send(0, 0, 1, TPageReply, 5000, "big")
	ic.Send(0, 1, 1, TRemoteWake, 10, "small") // different sender, tiny
	var got []string
	for {
		m := ic.PopDue(1, 1.0)
		if m == nil {
			break
		}
		got = append(got, m.Payload.(string))
	}
	if len(got) != 2 || got[0] != "small" || got[1] != "big" {
		t.Fatalf("delivery order %v", got)
	}
}

func TestPopDueRespectsNow(t *testing.T) {
	ic := New(testCfg())
	d := ic.Send(0, 0, 1, TFSOp, 100, nil)
	if m := ic.PopDue(1, d/2); m != nil {
		t.Fatal("message delivered before its time")
	}
	if m := ic.PopDue(1, d); m == nil {
		t.Fatal("message not delivered at its time")
	}
}

func TestNextDeliver(t *testing.T) {
	ic := New(testCfg())
	if _, ok := ic.NextDeliver(1); ok {
		t.Fatal("empty queue reports pending delivery")
	}
	d := ic.Send(0, 0, 1, TFSOp, 100, nil)
	got, ok := ic.NextDeliver(1)
	if !ok || got != d {
		t.Fatalf("NextDeliver %v %v, want %v", got, ok, d)
	}
	// Other node unaffected.
	if _, ok := ic.NextDeliver(0); ok {
		t.Fatal("wrong node sees the message")
	}
}

func TestStatsAccumulate(t *testing.T) {
	ic := New(Config{LatencySec: 1e-6, BytesPerSec: 1e9, HeaderBytes: 64})
	ic.Send(0, 0, 1, TPageReply, 1000, nil)
	ic.Send(0, 1, 0, TPageReply, 0, nil)
	s := ic.Stats()
	if s.Messages != 2 || s.Bytes != 1000+64+64 {
		t.Fatalf("stats %+v", s)
	}
}

func TestRoundTripTime(t *testing.T) {
	ic := New(testCfg())
	rtt := ic.RoundTripTime(0, 0, 1, 4096)
	want := 2e-6 + 4096/1e9
	if rtt < want*0.999 || rtt > want*1.001 {
		t.Fatalf("rtt %g want %g", rtt, want)
	}
}

func TestRoundTripTimeAccountsLinkOccupancy(t *testing.T) {
	ic := New(testCfg())
	idle := ic.RoundTripTime(0, 0, 1, 4096)
	// A large transfer occupies the 0->1 link for 1 ms; an exchange
	// starting now must wait for it.
	ic.Send(0, 0, 1, TPageReply, 1_000_000, nil)
	busy := ic.RoundTripTime(0, 0, 1, 4096)
	if busy < idle+0.9e-3 {
		t.Fatalf("busy-link rtt %g, want >= idle %g + ~1ms queueing", busy, idle)
	}
	// The reverse direction's occupancy delays the reply leg too.
	ic2 := New(testCfg())
	ic2.Send(0, 1, 0, TPageReply, 1_000_000, nil)
	busyReply := ic2.RoundTripTime(0, 0, 1, 4096)
	if busyReply < idle+0.9e-3 {
		t.Fatalf("busy-reply rtt %g, want >= idle %g + ~1ms queueing", busyReply, idle)
	}
	// Estimates do not consume occupancy: repeating gives the same answer.
	if again := ic.RoundTripTime(0, 0, 1, 4096); again != busy {
		t.Fatalf("estimate consumed occupancy: %g then %g", busy, again)
	}
}

func TestDolphinConfigSane(t *testing.T) {
	cfg := DolphinPXH810()
	if cfg.LatencySec <= 0 || cfg.LatencySec > 10e-6 {
		t.Errorf("latency %g not PCIe-class", cfg.LatencySec)
	}
	if cfg.BytesPerSec < 1e9 {
		t.Errorf("bandwidth %g below expectations", cfg.BytesPerSec)
	}
}

// Property: delivery times are non-decreasing per (from, to) pair and
// always after the send time.
func TestPropertyCausality(t *testing.T) {
	err := quick.Check(func(sizes []uint16) bool {
		ic := New(testCfg())
		now, last := 0.0, 0.0
		for _, s := range sizes {
			d := ic.Send(now, 0, 1, TPageReply, int64(s), nil)
			if d <= now || d < last {
				return false
			}
			last = d
			now += 1e-7
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
