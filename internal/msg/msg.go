// Package msg implements the inter-kernel messaging layer and the
// interconnect timing model. The evaluation testbed joined the two servers
// with a Dolphin ICS PXH810 PCIe link (up to 64 Gb/s); the model charges
// every message a per-hop latency plus serialisation time at the link
// bandwidth, with per-directed-link occupancy.
package msg

import (
	"container/heap"
)

// Type tags inter-kernel messages.
type Type int

// Message types used by the distributed kernel services.
const (
	// TPageReply carries a DSM page (or write-upgrade grant).
	TPageReply Type = iota
	// TThreadMigrate carries a migrating thread's transformed register
	// state and residual metadata.
	TThreadMigrate
	// TFSOp carries a remote filesystem operation or its reply.
	TFSOp
	// TRemoteWake wakes a joiner blocked on another node.
	TRemoteWake
	// TSerializedState carries whole-state serialization payloads (the
	// PadMig-style baseline).
	TSerializedState
)

// Message is one inter-kernel message.
type Message struct {
	Seq      uint64
	From, To int
	Type     Type
	Size     int64 // payload bytes, for the bandwidth model
	// Deliver is the simulated delivery time in seconds.
	Deliver float64
	// Payload is interpreted by the handler for Type.
	Payload interface{}
}

// Config describes the interconnect.
type Config struct {
	// LatencySec is the one-way message latency.
	LatencySec float64
	// BytesPerSec is the link bandwidth.
	BytesPerSec float64
	// HeaderBytes is added to every message's wire size.
	HeaderBytes int64
}

// DolphinPXH810 models the testbed's interconnect: sub-microsecond PCIe
// latency and 64 Gb/s of bandwidth.
func DolphinPXH810() Config {
	return Config{LatencySec: 0.9e-6, BytesPerSec: 8e9, HeaderBytes: 64}
}

// Stats aggregates traffic counters.
type Stats struct {
	Messages uint64
	Bytes    uint64
}

// Interconnect is the shared fabric between kernels. It is a deterministic
// discrete-event structure: Send computes a delivery time from latency,
// bandwidth and link occupancy; PopDue yields messages in delivery order.
type Interconnect struct {
	cfg   Config
	seq   uint64
	stats Stats

	// busyUntil[from][to] models per-directed-link serialisation.
	busyUntil map[int]map[int]float64

	queues map[int]*msgHeap
}

// New builds an interconnect with cfg.
func New(cfg Config) *Interconnect {
	return &Interconnect{
		cfg:       cfg,
		busyUntil: make(map[int]map[int]float64),
		queues:    make(map[int]*msgHeap),
	}
}

// Stats returns traffic counters.
func (ic *Interconnect) Stats() Stats { return ic.stats }

// Send enqueues a message at time now and returns its delivery time.
func (ic *Interconnect) Send(now float64, from, to int, t Type, size int64, payload interface{}) float64 {
	wire := size + ic.cfg.HeaderBytes
	bu := ic.busyUntil[from]
	if bu == nil {
		bu = make(map[int]float64)
		ic.busyUntil[from] = bu
	}
	start := now
	if bu[to] > start {
		start = bu[to]
	}
	txEnd := start + float64(wire)/ic.cfg.BytesPerSec
	bu[to] = txEnd
	deliver := txEnd + ic.cfg.LatencySec

	ic.seq++
	m := &Message{
		Seq: ic.seq, From: from, To: to, Type: t,
		Size: size, Deliver: deliver, Payload: payload,
	}
	q := ic.queues[to]
	if q == nil {
		q = &msgHeap{}
		ic.queues[to] = q
	}
	heap.Push(q, m)
	ic.stats.Messages++
	ic.stats.Bytes += uint64(wire)
	return deliver
}

// RoundTripTime estimates a small-request/sized-reply exchange, used to
// model request+reply pairs with a single enqueued message.
func (ic *Interconnect) RoundTripTime(replySize int64) float64 {
	wire := replySize + 2*ic.cfg.HeaderBytes
	return 2*ic.cfg.LatencySec + float64(wire)/ic.cfg.BytesPerSec
}

// PopDue removes and returns the next message for node due at or before
// now, or nil.
func (ic *Interconnect) PopDue(node int, now float64) *Message {
	q := ic.queues[node]
	if q == nil || q.Len() == 0 {
		return nil
	}
	if (*q)[0].Deliver > now {
		return nil
	}
	return heap.Pop(q).(*Message)
}

// NextDeliver returns the earliest pending delivery time for node, or
// (0, false) if nothing is queued.
func (ic *Interconnect) NextDeliver(node int) (float64, bool) {
	q := ic.queues[node]
	if q == nil || q.Len() == 0 {
		return 0, false
	}
	return (*q)[0].Deliver, true
}

// msgHeap orders messages by delivery time, then sequence for determinism.
type msgHeap []*Message

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].Deliver != h[j].Deliver {
		return h[i].Deliver < h[j].Deliver
	}
	return h[i].Seq < h[j].Seq
}
func (h msgHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x interface{}) { *h = append(*h, x.(*Message)) }
func (h *msgHeap) Pop() interface{} {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}
