// Package msg implements the inter-kernel messaging layer and the
// interconnect timing model. The evaluation testbed joined the two servers
// with a Dolphin ICS PXH810 PCIe link (up to 64 Gb/s); the model charges
// every message a per-hop latency plus serialisation time at the link
// bandwidth, with per-directed-link occupancy.
//
// The interconnect is optionally lossy: an installed Injector (see
// internal/fault) can drop, duplicate or jitter messages and take nodes
// offline. Reliable senders (SendReliable, ReliableRTT) model an
// acknowledged channel with timeout-driven, capped exponential-backoff
// retransmission on top of the lossy fabric, so the distributed kernel
// services survive message loss at the cost of latency.
package msg

import (
	"container/heap"
	"fmt"
)

// Type tags inter-kernel messages.
type Type int

// Message types used by the distributed kernel services.
const (
	// TPageReply carries a DSM page (or write-upgrade grant).
	TPageReply Type = iota
	// TThreadMigrate carries a migrating thread's transformed register
	// state and residual metadata.
	TThreadMigrate
	// TFSOp carries a remote filesystem operation or its reply.
	TFSOp
	// TRemoteWake wakes a joiner blocked on another node.
	TRemoteWake
	// TSerializedState carries whole-state serialization payloads (the
	// PadMig-style baseline).
	TSerializedState
)

// Message is one inter-kernel message.
type Message struct {
	Seq      uint64
	From, To int
	Type     Type
	Size     int64 // payload bytes, for the bandwidth model
	// Deliver is the simulated delivery time in seconds.
	Deliver float64
	// Payload is interpreted by the handler for Type.
	Payload interface{}
}

// Config describes the interconnect.
type Config struct {
	// LatencySec is the one-way message latency.
	LatencySec float64
	// BytesPerSec is the link bandwidth.
	BytesPerSec float64
	// HeaderBytes is added to every message's wire size.
	HeaderBytes int64
	// RetxTimeoutSec is the reliable senders' initial retransmission
	// timeout; 0 selects DefaultRetxTimeout.
	RetxTimeoutSec float64
	// MaxRetries caps loss-induced retransmissions per reliable exchange;
	// 0 selects DefaultMaxRetries.
	MaxRetries int
}

// Reliable-delivery defaults: the initial retransmission timeout is an
// order of magnitude above the healthy round trip, doubling per retry up
// to retxBackoffCap times the initial value.
const (
	DefaultRetxTimeout = 25e-6
	DefaultMaxRetries  = 8
	retxBackoffCap     = 32
)

// DolphinPXH810 models the testbed's interconnect: sub-microsecond PCIe
// latency and 64 Gb/s of bandwidth.
func DolphinPXH810() Config {
	return Config{LatencySec: 0.9e-6, BytesPerSec: 8e9, HeaderBytes: 64}
}

// Stats aggregates traffic counters.
type Stats struct {
	Messages uint64
	Bytes    uint64
	// Fault-injection and reliable-delivery counters; all stay zero on a
	// healthy interconnect. Two runs of the same workload under the same
	// fault plan produce identical counters.
	Dropped     uint64 // message legs lost to the injector or a dead node
	Duplicated  uint64 // duplicate deliveries enqueued (lost acks, dup faults)
	Retries     uint64 // retransmissions by reliable senders
	Exhausted   uint64 // reliable exchanges that gave up
	CrashStalls uint64 // reliable exchanges that waited out a node outage
}

// Injector decides message fates for fault injection; *fault.Injector
// implements it. Implementations must be deterministic functions of their
// arguments.
type Injector interface {
	// Fate decides whether the message leg identified by seq is dropped or
	// duplicated and how much extra latency it suffers.
	Fate(now float64, from, to int, seq uint64) (drop, dup bool, jitter float64)
	// NodeDown reports whether node is offline at time at.
	NodeDown(node int, at float64) bool
	// NodeRecoverAt returns when a down node rejoins (false: up already,
	// or never).
	NodeRecoverAt(node int, at float64) (float64, bool)
}

// EventSink receives fault/retry diagnostics; trace.EventLog implements
// it.
type EventSink interface {
	Record(t float64, kind, detail string)
}

// Interconnect is the shared fabric between kernels. It is a deterministic
// discrete-event structure: Send computes a delivery time from latency,
// bandwidth and link occupancy; PopDue yields messages in delivery order.
type Interconnect struct {
	cfg   Config
	seq   uint64
	stats Stats

	inj    Injector
	tracer EventSink

	// busyUntil[from][to] models per-directed-link serialisation.
	busyUntil map[int]map[int]float64

	queues map[int]*msgHeap
}

// New builds an interconnect with cfg.
func New(cfg Config) *Interconnect {
	return &Interconnect{
		cfg:       cfg,
		busyUntil: make(map[int]map[int]float64),
		queues:    make(map[int]*msgHeap),
	}
}

// Stats returns traffic counters.
func (ic *Interconnect) Stats() Stats { return ic.stats }

// SetInjector installs (or, with nil, removes) a fault injector.
func (ic *Interconnect) SetInjector(inj Injector) { ic.inj = inj }

// SetTracer installs an event sink for fault/retry diagnostics.
func (ic *Interconnect) SetTracer(s EventSink) { ic.tracer = s }

func (ic *Interconnect) tracef(t float64, kind, format string, args ...interface{}) {
	if ic.tracer != nil {
		ic.tracer.Record(t, kind, fmt.Sprintf(format, args...))
	}
}

func (ic *Interconnect) retxTimeout() float64 {
	if ic.cfg.RetxTimeoutSec > 0 {
		return ic.cfg.RetxTimeoutSec
	}
	return DefaultRetxTimeout
}

func (ic *Interconnect) maxRetries() int {
	if ic.cfg.MaxRetries > 0 {
		return ic.cfg.MaxRetries
	}
	return DefaultMaxRetries
}

// transmit charges the from->to link for one message and builds it with
// its fault-free delivery time; the caller decides whether it is enqueued.
func (ic *Interconnect) transmit(now float64, from, to int, t Type, size int64, payload interface{}) *Message {
	wire := size + ic.cfg.HeaderBytes
	bu := ic.busyUntil[from]
	if bu == nil {
		bu = make(map[int]float64)
		ic.busyUntil[from] = bu
	}
	start := now
	if bu[to] > start {
		start = bu[to]
	}
	txEnd := start + float64(wire)/ic.cfg.BytesPerSec
	bu[to] = txEnd

	ic.seq++
	ic.stats.Messages++
	ic.stats.Bytes += uint64(wire)
	return &Message{
		Seq: ic.seq, From: from, To: to, Type: t,
		Size: size, Deliver: txEnd + ic.cfg.LatencySec, Payload: payload,
	}
}

func (ic *Interconnect) push(m *Message) {
	q := ic.queues[m.To]
	if q == nil {
		q = &msgHeap{}
		ic.queues[m.To] = q
	}
	heap.Push(q, m)
}

// Send enqueues a message at time now and returns its (possibly jittered)
// delivery time. With an injector installed the message may be lost — a
// dropped message is never enqueued and the returned time is where it
// would have arrived — so callers needing delivery guarantees use
// SendReliable.
func (ic *Interconnect) Send(now float64, from, to int, t Type, size int64, payload interface{}) float64 {
	m := ic.transmit(now, from, to, t, size, payload)
	if ic.inj != nil {
		drop, dup, jit := ic.inj.Fate(now, from, to, m.Seq)
		m.Deliver += jit
		if drop || ic.inj.NodeDown(to, m.Deliver) {
			ic.stats.Dropped++
			ic.tracef(now, "drop", "type %d %d->%d seq %d", t, from, to, m.Seq)
			return m.Deliver
		}
		if dup {
			ic.stats.Duplicated++
			cp := *m
			ic.seq++
			cp.Seq = ic.seq
			cp.Deliver = m.Deliver + ic.cfg.LatencySec
			ic.push(&cp)
		}
	}
	ic.push(m)
	return m.Deliver
}

// SendReliable models an acknowledged send: every lost attempt costs the
// sender one retransmission timeout (doubling per retry, capped) before
// the next try, and a destination inside a known-finite outage is waited
// out without consuming the retry budget (the sender backs off to a
// keepalive cadence). A lost acknowledgement or a duplication fault
// enqueues a second copy the receiver must tolerate. It returns the
// delivery time of the surviving copy, or (t, false) if the message could
// not be delivered — retries exhausted or the destination never recovers
// — in which case nothing was enqueued and t is when the sender gave up.
func (ic *Interconnect) SendReliable(now float64, from, to int, t Type, size int64, payload interface{}) (float64, bool) {
	if ic.inj == nil {
		return ic.Send(now, from, to, t, size, payload), true
	}
	elapsed := 0.0
	rto := ic.retxTimeout()
	retries := 0
	for {
		at := now + elapsed
		if ic.inj.NodeDown(to, at) {
			rec, ok := ic.inj.NodeRecoverAt(to, at)
			if !ok {
				ic.stats.Exhausted++
				ic.tracef(at, "send-fail", "type %d %d->%d: node %d down permanently", t, from, to, to)
				return at, false
			}
			ic.stats.CrashStalls++
			elapsed = rec - now + rto
			continue
		}
		m := ic.transmit(at, from, to, t, size, payload)
		drop, dup, jit := ic.inj.Fate(at, from, to, m.Seq)
		if drop {
			ic.stats.Dropped++
			ic.stats.Retries++
			retries++
			ic.tracef(at, "retx", "type %d %d->%d seq %d retry %d", t, from, to, m.Seq, retries)
			if retries > ic.maxRetries() {
				ic.stats.Exhausted++
				ic.tracef(at, "send-fail", "type %d %d->%d: retries exhausted", t, from, to)
				return at, false
			}
			elapsed += rto
			if rto < ic.retxTimeout()*retxBackoffCap {
				rto *= 2
			}
			continue
		}
		m.Deliver += jit
		ic.push(m)
		// Decide the acknowledgement's fate: a lost ack makes the sender
		// retransmit a copy the receiver has already seen.
		ic.seq++
		ackDrop, _, _ := ic.inj.Fate(m.Deliver, to, from, ic.seq)
		if dup || ackDrop {
			ic.stats.Duplicated++
			cp := *m
			ic.seq++
			cp.Seq = ic.seq
			cp.Deliver = m.Deliver + rto
			ic.push(&cp)
		}
		return m.Deliver, true
	}
}

// RoundTripTime estimates a small-request/sized-reply exchange starting at
// time now, used to model request+reply service pairs without enqueuing
// messages. Each leg waits for its directed link's current occupancy, like
// Send does, but the estimate does not consume occupancy itself.
func (ic *Interconnect) RoundTripTime(now float64, from, to int, replySize int64) float64 {
	start := now
	if bu := ic.busyUntil[from]; bu != nil && bu[to] > start {
		start = bu[to]
	}
	arrive := start + float64(ic.cfg.HeaderBytes)/ic.cfg.BytesPerSec + ic.cfg.LatencySec
	replyStart := arrive
	if bu := ic.busyUntil[to]; bu != nil && bu[from] > replyStart {
		replyStart = bu[from]
	}
	done := replyStart + float64(replySize+ic.cfg.HeaderBytes)/ic.cfg.BytesPerSec + ic.cfg.LatencySec
	return done - now
}

// ReliableRTT models a synchronous request/reply exchange (a DSM page
// fetch, an invalidation) over the lossy fabric: a lost leg costs one
// retransmission timeout (capped exponential backoff), and a peer inside a
// known-finite outage is waited out without consuming the retry budget.
// It returns the total elapsed seconds at the requester and false if the
// exchange could not complete (retries exhausted or the peer never
// recovers).
func (ic *Interconnect) ReliableRTT(now float64, from, to int, replySize int64) (float64, bool) {
	if ic.inj == nil || from == to {
		return ic.RoundTripTime(now, from, to, replySize), true
	}
	elapsed := 0.0
	rto := ic.retxTimeout()
	retries := 0
	for {
		at := now + elapsed
		if ic.inj.NodeDown(to, at) {
			rec, ok := ic.inj.NodeRecoverAt(to, at)
			if !ok {
				ic.stats.Exhausted++
				ic.tracef(at, "rtt-fail", "%d->%d: node %d down permanently", from, to, to)
				return elapsed, false
			}
			ic.stats.CrashStalls++
			elapsed = rec - now + rto
			continue
		}
		ic.seq++
		reqDrop, _, reqJit := ic.inj.Fate(at, from, to, ic.seq)
		ic.seq++
		repDrop, _, repJit := ic.inj.Fate(at, to, from, ic.seq)
		if !reqDrop && !repDrop {
			return elapsed + ic.RoundTripTime(at, from, to, replySize) + reqJit + repJit, true
		}
		ic.stats.Dropped++
		ic.stats.Retries++
		retries++
		ic.tracef(at, "retx", "rtt %d->%d retry %d", from, to, retries)
		if retries > ic.maxRetries() {
			ic.stats.Exhausted++
			ic.tracef(at, "rtt-fail", "%d->%d: retries exhausted", from, to)
			return elapsed, false
		}
		elapsed += rto
		if rto < ic.retxTimeout()*retxBackoffCap {
			rto *= 2
		}
	}
}

// PopDue removes and returns the next message for node due at or before
// now, or nil.
func (ic *Interconnect) PopDue(node int, now float64) *Message {
	q := ic.queues[node]
	if q == nil || q.Len() == 0 {
		return nil
	}
	if (*q)[0].Deliver > now {
		return nil
	}
	return heap.Pop(q).(*Message)
}

// NextDeliver returns the earliest pending delivery time for node, or
// (0, false) if nothing is queued.
func (ic *Interconnect) NextDeliver(node int) (float64, bool) {
	q := ic.queues[node]
	if q == nil || q.Len() == 0 {
		return 0, false
	}
	return (*q)[0].Deliver, true
}

// Pending returns the number of queued messages for node.
func (ic *Interconnect) Pending(node int) int {
	q := ic.queues[node]
	if q == nil {
		return 0
	}
	return q.Len()
}

// Drain removes and returns every queued message for node in delivery
// order (a crashed node's queue sweep).
func (ic *Interconnect) Drain(node int) []*Message {
	q := ic.queues[node]
	if q == nil {
		return nil
	}
	var out []*Message
	for q.Len() > 0 {
		out = append(out, heap.Pop(q).(*Message))
	}
	return out
}

// Requeue re-enqueues a drained message with a new delivery time
// (redelivery after the destination recovers).
func (ic *Interconnect) Requeue(m *Message, deliver float64) {
	m.Deliver = deliver
	ic.push(m)
}

// Sweep removes every queued message (on all nodes) for which drop
// returns true, returning how many were reclaimed. Used to garbage-collect
// in-flight messages that reference a reaped process.
func (ic *Interconnect) Sweep(drop func(*Message) bool) int {
	n := 0
	for _, q := range ic.queues {
		kept := (*q)[:0]
		for _, m := range *q {
			if drop(m) {
				n++
				continue
			}
			kept = append(kept, m)
		}
		*q = kept
		heap.Init(q)
	}
	return n
}

// msgHeap orders messages by delivery time, then sequence for determinism.
type msgHeap []*Message

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].Deliver != h[j].Deliver {
		return h[i].Deliver < h[j].Deliver
	}
	return h[i].Seq < h[j].Seq
}
func (h msgHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x interface{}) { *h = append(*h, x.(*Message)) }
func (h *msgHeap) Pop() interface{} {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}
