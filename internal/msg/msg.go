// Package msg implements the inter-kernel messaging layer and the
// interconnect timing model. The evaluation testbed joined the two servers
// with a Dolphin ICS PXH810 PCIe link (up to 64 Gb/s); the model charges
// every message a per-hop latency plus serialisation time at the link
// bandwidth, with per-directed-link occupancy.
//
// The interconnect is optionally lossy: an installed Injector (see
// internal/fault) can drop, duplicate or jitter messages and take nodes
// offline. Reliable senders (SendReliable, ReliableRTT) model an
// acknowledged channel with timeout-driven, capped exponential-backoff
// retransmission on top of the lossy fabric, so the distributed kernel
// services survive message loss at the cost of latency.
//
// The interconnect is the parallel simulation backend's synchronisation
// boundary, so all mutable state is partitioned by directed link (sequence
// numbers, occupancy) or by node (delivery queues, stats shards): workers
// driving disjoint node groups never touch the same cell. Aggregation
// (Stats) and structural growth (Grow) happen only at barriers.
//
// The flat pipe is one of two cost models: SetPathModel plugs a
// hierarchical fabric (internal/topo's rack/spine fat tree) under the same
// message layer, replacing the delivery-time computation with multi-hop
// routing and shared-uplink contention. A fabric that shares links between
// node pairs reports Contended; when it also exposes SharingDomains (the
// fat tree does — one domain per rack), the cluster folds same-domain
// link-sharing into the union-find sharing partition instead of pinning
// the parallel engine, so racks that exchange no cross-rack traffic still
// run concurrently. Without a path model nothing changes — the flat pipe
// is the default and the regression baseline.
package msg

import (
	"container/heap"
	"fmt"
)

// Type tags inter-kernel messages.
type Type int

// Message types used by the distributed kernel services.
const (
	// TPageReply carries a DSM page (or write-upgrade grant).
	TPageReply Type = iota
	// TThreadMigrate carries a migrating thread's transformed register
	// state and residual metadata.
	TThreadMigrate
	// TFSOp carries a remote filesystem operation or its reply.
	TFSOp
	// TRemoteWake wakes a joiner blocked on another node.
	TRemoteWake
	// TSerializedState carries whole-state serialization payloads (the
	// PadMig-style baseline).
	TSerializedState
	// THeartbeat carries a membership lease heartbeat (node liveness plus
	// incarnation number); sent unreliably, loss is the signal.
	THeartbeat
)

// Message is one inter-kernel message.
type Message struct {
	// Seq numbers the message on its directed (From, To) link; the fault
	// injector keys fates off it.
	Seq      uint64
	From, To int
	Type     Type
	Size     int64 // payload bytes, for the bandwidth model
	// Deliver is the simulated delivery time in seconds.
	Deliver float64
	// Payload is interpreted by the handler for Type.
	Payload interface{}

	// arrival orders same-instant deliveries at one destination (assigned
	// at enqueue time, deterministic because each destination is fed by a
	// single scheduling goroutine between barriers).
	arrival uint64
}

// Config describes the interconnect.
type Config struct {
	// LatencySec is the one-way message latency.
	LatencySec float64
	// BytesPerSec is the link bandwidth.
	BytesPerSec float64
	// HeaderBytes is added to every message's wire size.
	HeaderBytes int64
	// RetxTimeoutSec is the reliable senders' initial retransmission
	// timeout; 0 selects DefaultRetxTimeout.
	RetxTimeoutSec float64
	// MaxRetries caps loss-induced retransmissions per reliable exchange;
	// 0 selects DefaultMaxRetries.
	MaxRetries int
}

// Reliable-delivery defaults: the initial retransmission timeout is an
// order of magnitude above the healthy round trip, doubling per retry up
// to retxBackoffCap times the initial value.
const (
	DefaultRetxTimeout = 25e-6
	DefaultMaxRetries  = 8
	retxBackoffCap     = 32
)

// DolphinPXH810 models the testbed's interconnect: sub-microsecond PCIe
// latency and 64 Gb/s of bandwidth.
func DolphinPXH810() Config {
	return Config{LatencySec: 0.9e-6, BytesPerSec: 8e9, HeaderBytes: 64}
}

// Stats aggregates traffic counters.
type Stats struct {
	Messages uint64
	Bytes    uint64
	// Fault-injection and reliable-delivery counters; all stay zero on a
	// healthy interconnect. Two runs of the same workload under the same
	// fault plan produce identical counters.
	Dropped     uint64 // message legs lost to the injector or a dead node
	Duplicated  uint64 // duplicate deliveries enqueued (lost acks, dup faults)
	Retries     uint64 // retransmissions by reliable senders
	Exhausted   uint64 // reliable exchanges that gave up
	CrashStalls uint64 // reliable exchanges that waited out a node outage

	PartitionDrops  uint64 // message legs severed by a partition cut
	PartitionStalls uint64 // reliable exchanges that waited out a known heal
}

func (s *Stats) add(o Stats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.Dropped += o.Dropped
	s.Duplicated += o.Duplicated
	s.Retries += o.Retries
	s.Exhausted += o.Exhausted
	s.CrashStalls += o.CrashStalls
	s.PartitionDrops += o.PartitionDrops
	s.PartitionStalls += o.PartitionStalls
}

// Injector decides message fates for fault injection; *fault.Injector
// implements it. Implementations must be deterministic functions of their
// arguments.
type Injector interface {
	// Fate decides whether the message leg identified by (from, to, seq) is
	// dropped or duplicated and how much extra latency it suffers. seq is
	// unique per decision on its directed link; implementations fold the
	// link into the stream so equal seqs on different links draw
	// independently.
	Fate(now float64, from, to int, seq uint64) (drop, dup bool, jitter float64)
	// NodeDown reports whether node is offline at time at.
	NodeDown(node int, at float64) bool
	// NodeRecoverAt returns when a down node rejoins (false: up already,
	// or never).
	NodeRecoverAt(node int, at float64) (float64, bool)
}

// Partitioner extends an Injector with network-partition windows: whole
// link classes severed between two sides of the rack. It is optional — the
// interconnect type-asserts the installed Injector — so injectors without
// partition support keep working unchanged. *fault.Injector implements it.
type Partitioner interface {
	// LinkCut reports whether the directed from->to leg is severed at time
	// at.
	LinkCut(at float64, from, to int) bool
	// LinkClearAt returns the earliest time >= at when the from->to leg is
	// no longer cut (ok=false: a never-healing cut blocks it forever).
	LinkClearAt(at float64, from, to int) (float64, bool)
}

// EventSink receives fault/retry diagnostics; trace.EventLog implements
// it.
type EventSink interface {
	Record(t float64, kind, detail string)
}

// NodeSink is an EventSink that can attribute a record to the node whose
// schedule produced it and keep a private per-node shard for it, merging
// the shards into one canonical order on read. A sink that implements it
// (trace.EventLog does) can run inside grouped parallel windows; a plain
// EventSink needs the global sequential order and collapses the parallel
// engine (see kernel.Cluster.Horizon).
type NodeSink interface {
	EventSink
	// RecordNode records an event produced by node's schedule. Each node's
	// records arrive in nondecreasing time order from a single goroutine
	// at a time (its sharing-group worker).
	RecordNode(node int, t float64, kind, detail string)
}

// GroupPeers is an optional message-payload interface: a payload whose
// semantics involve nodes beyond the message's (From, To) endpoints (a
// SWIM indirect-probe relay names its origin and target) yields them here
// so Cluster.Groups can fold every node an in-flight exchange might touch
// into one sharing group. Payloads without it contribute only their
// endpoints.
type GroupPeers interface {
	GroupPeers(add func(node int))
}

// PathModel is a pluggable fabric under the interconnect: when installed,
// it replaces the flat latency/bandwidth pipe's delivery-time computation
// with hierarchical routing (topo.Fabric implements it — racks behind ToR
// switches joined by a spine). Implementations must be deterministic; all
// occupancy and statistics live inside the model.
type PathModel interface {
	// Nodes is the number of nodes the model routes between; the
	// interconnect refuses to grow past it.
	Nodes() int
	// Transmit charges the fabric for a from->to message of wire bytes
	// (payload plus header) starting at now and returns its delivery time,
	// consuming link occupancy along the route.
	Transmit(now float64, from, to int, wire int64) float64
	// Estimate computes the same delivery time against current occupancy
	// without consuming any (the RoundTripTime contract).
	Estimate(now float64, from, to int, wire int64) float64
	// MinLatency is the minimum zero-byte one-way latency over all
	// routeable pairs — the conservative lookahead floor.
	MinLatency() float64
	// Contended reports whether distinct node pairs can share links. A
	// contended model breaks the interconnect's disjoint-shard invariant;
	// unless it also implements SharingDomains, the cluster collapses the
	// parallel engine to one inline sharing group.
	Contended() bool
}

// SharingDomains is an optional PathModel extension that exposes the
// model's link-sharing structure: two cross-domain routes can contend only
// when they touch a common domain (a rack's ToR uplink), while traffic
// within one domain touches only per-node private links. Cluster.Groups
// uses it to merge any two sharing groups that both span multiple domains
// and have a domain in common, instead of collapsing the whole partition.
// topo.Fabric implements it with one domain per rack.
type SharingDomains interface {
	// Domain returns the sharing domain of node.
	Domain(node int) int
	// NumDomains returns the domain count.
	NumDomains() int
}

// linkState is one directed link's private state.
type linkState struct {
	// seq numbers message legs (and fate draws) on this link.
	seq uint64
	// busyUntil models the link's serialisation occupancy.
	busyUntil float64
}

// nodeState is one destination node's private state.
type nodeState struct {
	q msgHeap
	// arrivals orders same-instant deliveries into this node's queue.
	arrivals uint64
}

// Interconnect is the shared fabric between kernels. It is a deterministic
// discrete-event structure: Send computes a delivery time from latency,
// bandwidth and link occupancy; PopDue yields messages in delivery order.
// State is sharded by directed link and by node so disjoint node groups can
// drive it concurrently (see package comment).
type Interconnect struct {
	cfg Config

	inj    Injector
	part   Partitioner // inj's partition view, when it has one
	tracer EventSink
	path   PathModel // nil: the flat pipe (the default and the baseline)

	n     int
	links []linkState // n*n, indexed from*n+to
	nodes []nodeState
	stats []Stats // per sending node
}

// New builds an interconnect with cfg. Node structures grow on first use
// (or all at once via Grow).
func New(cfg Config) *Interconnect {
	return &Interconnect{cfg: cfg}
}

// Grow presizes the interconnect for nodes 0..n-1. Growth re-shards the
// link state, so it must happen before concurrent use; cluster
// construction calls it with the final node count.
func (ic *Interconnect) Grow(n int) {
	if n <= ic.n {
		return
	}
	if ic.path != nil && n > ic.path.Nodes() {
		panic(fmt.Sprintf("msg: growing to %d nodes past the installed path model's %d", n, ic.path.Nodes()))
	}
	links := make([]linkState, n*n)
	for f := 0; f < ic.n; f++ {
		for t := 0; t < ic.n; t++ {
			links[f*n+t] = ic.links[f*ic.n+t]
		}
	}
	nodes := make([]nodeState, n)
	copy(nodes, ic.nodes)
	stats := make([]Stats, n)
	copy(stats, ic.stats)
	ic.n, ic.links, ic.nodes, ic.stats = n, links, nodes, stats
}

// ensure grows the structures to cover node (single-threaded paths only).
func (ic *Interconnect) ensure(node int) {
	if node >= ic.n {
		ic.Grow(node + 1)
	}
}

func (ic *Interconnect) link(from, to int) *linkState {
	if from >= ic.n || to >= ic.n {
		ic.ensure(from)
		ic.ensure(to)
	}
	return &ic.links[from*ic.n+to]
}

func (ic *Interconnect) node(n int) *nodeState {
	ic.ensure(n)
	return &ic.nodes[n]
}

// Stats returns traffic counters summed over all nodes' shards. Call it
// only from the scheduling goroutine (a barrier).
func (ic *Interconnect) Stats() Stats {
	var s Stats
	for i := range ic.stats {
		s.add(ic.stats[i])
	}
	return s
}

// MinLatency returns the minimum one-way link latency — the lookahead floor
// for conservative parallel co-simulation over this interconnect. With a
// path model installed it is the model's minimum over all routes.
func (ic *Interconnect) MinLatency() float64 {
	if ic.path != nil {
		return ic.path.MinLatency()
	}
	return ic.cfg.LatencySec
}

// SetPathModel installs (or, with nil, removes) a hierarchical fabric
// under the interconnect. Install before concurrent use and before the
// cluster chooses its engine: the parallel backend reads MinLatency at
// configuration time, and a contended model additionally pins it to one
// inline sharing group (see Contended).
func (ic *Interconnect) SetPathModel(pm PathModel) error {
	if pm != nil && pm.Nodes() < ic.n {
		return fmt.Errorf("msg: path model covers %d nodes, interconnect already has %d", pm.Nodes(), ic.n)
	}
	ic.path = pm
	return nil
}

// Path returns the installed path model, or nil for the flat pipe.
func (ic *Interconnect) Path() PathModel { return ic.path }

// Contended reports whether an installed path model shares links between
// node pairs, which invalidates the per-link state sharding the parallel
// engine's disjoint groups rely on.
func (ic *Interconnect) Contended() bool { return ic.path != nil && ic.path.Contended() }

// redeliverDelay is the extra delay charged to a duplicate copy.
func (ic *Interconnect) redeliverDelay() float64 {
	if ic.path != nil {
		return ic.path.MinLatency()
	}
	return ic.cfg.LatencySec
}

// SetInjector installs (or, with nil, removes) a fault injector. An
// injector that also implements Partitioner gets its partition windows
// enforced on every delivery and retransmission.
func (ic *Interconnect) SetInjector(inj Injector) {
	ic.inj = inj
	ic.part = nil
	if p, ok := inj.(Partitioner); ok {
		ic.part = p
	}
}

// cut reports whether a partition severs the from->to leg at time at.
func (ic *Interconnect) cut(at float64, from, to int) bool {
	return ic.part != nil && ic.part.LinkCut(at, from, to)
}

// SetTracer installs an event sink for fault/retry diagnostics.
func (ic *Interconnect) SetTracer(s EventSink) { ic.tracer = s }

// tracef records a diagnostic produced by node's schedule (the sender of
// the message in question): a NodeSink shards it per node so sends inside
// grouped parallel windows stay race-free; a plain sink takes the global
// record (such sinks collapse the engine, so the global order is serial).
func (ic *Interconnect) tracef(node int, t float64, kind, format string, args ...interface{}) {
	if ic.tracer == nil {
		return
	}
	if ns, ok := ic.tracer.(NodeSink); ok {
		ns.RecordNode(node, t, kind, fmt.Sprintf(format, args...))
		return
	}
	ic.tracer.Record(t, kind, fmt.Sprintf(format, args...))
}

func (ic *Interconnect) retxTimeout() float64 {
	if ic.cfg.RetxTimeoutSec > 0 {
		return ic.cfg.RetxTimeoutSec
	}
	return DefaultRetxTimeout
}

func (ic *Interconnect) maxRetries() int {
	if ic.cfg.MaxRetries > 0 {
		return ic.cfg.MaxRetries
	}
	return DefaultMaxRetries
}

// transmit charges the from->to link for one message and builds it with
// its fault-free delivery time; the caller decides whether it is enqueued.
// With a path model installed the delivery time comes from the fabric
// (which holds all occupancy); the per-link sequence numbers keying fault
// fates are unchanged either way, so an identical fault plan draws the
// identical fate stream on both models.
func (ic *Interconnect) transmit(now float64, from, to int, t Type, size int64, payload interface{}) *Message {
	wire := size + ic.cfg.HeaderBytes
	lk := ic.link(from, to)
	var deliver float64
	if ic.path != nil {
		deliver = ic.path.Transmit(now, from, to, wire)
	} else {
		start := now
		if lk.busyUntil > start {
			start = lk.busyUntil
		}
		txEnd := start + float64(wire)/ic.cfg.BytesPerSec
		lk.busyUntil = txEnd
		deliver = txEnd + ic.cfg.LatencySec
	}

	lk.seq++
	ic.stats[from].Messages++
	ic.stats[from].Bytes += uint64(wire)
	return &Message{
		Seq: lk.seq, From: from, To: to, Type: t,
		Size: size, Deliver: deliver, Payload: payload,
	}
}

func (ic *Interconnect) push(m *Message) {
	ns := ic.node(m.To)
	ns.arrivals++
	m.arrival = ns.arrivals
	heap.Push(&ns.q, m)
}

// Send enqueues a message at time now and returns its (possibly jittered)
// delivery time. With an injector installed the message may be lost — a
// dropped message is never enqueued and the returned time is where it
// would have arrived — so callers needing delivery guarantees use
// SendReliable.
func (ic *Interconnect) Send(now float64, from, to int, t Type, size int64, payload interface{}) float64 {
	m := ic.transmit(now, from, to, t, size, payload)
	if ic.inj != nil {
		drop, dup, jit := ic.inj.Fate(now, from, to, m.Seq)
		m.Deliver += jit
		if ic.cut(m.Deliver, from, to) {
			ic.stats[from].Dropped++
			ic.stats[from].PartitionDrops++
			ic.tracef(from, now, "cut", "type %d %d->%d seq %d", t, from, to, m.Seq)
			return m.Deliver
		}
		if drop || ic.inj.NodeDown(to, m.Deliver) {
			ic.stats[from].Dropped++
			ic.tracef(from, now, "drop", "type %d %d->%d seq %d", t, from, to, m.Seq)
			return m.Deliver
		}
		if dup {
			cp := *m
			lk := ic.link(from, to)
			lk.seq++
			cp.Seq = lk.seq
			cp.Deliver = m.Deliver + ic.redeliverDelay()
			if ic.cut(cp.Deliver, from, to) {
				ic.stats[from].PartitionDrops++
			} else {
				ic.stats[from].Duplicated++
				ic.push(&cp)
			}
		}
	}
	ic.push(m)
	return m.Deliver
}

// SendReliable models an acknowledged send: every lost attempt costs the
// sender one retransmission timeout (doubling per retry, capped) before
// the next try, and a destination inside a known-finite outage is waited
// out without consuming the retry budget (the sender backs off to a
// keepalive cadence). A lost acknowledgement or a duplication fault
// enqueues a second copy the receiver must tolerate. It returns the
// delivery time of the surviving copy, or (t, false) if the message could
// not be delivered — retries exhausted or the destination never recovers
// — in which case nothing was enqueued and t is when the sender gave up.
func (ic *Interconnect) SendReliable(now float64, from, to int, t Type, size int64, payload interface{}) (float64, bool) {
	if ic.inj == nil {
		return ic.Send(now, from, to, t, size, payload), true
	}
	ic.ensure(from)
	ic.ensure(to)
	st := &ic.stats[from]
	elapsed := 0.0
	rto := ic.retxTimeout()
	retries := 0
	for {
		at := now + elapsed
		if ic.inj.NodeDown(to, at) {
			rec, ok := ic.inj.NodeRecoverAt(to, at)
			if !ok {
				st.Exhausted++
				ic.tracef(from, at, "send-fail", "type %d %d->%d: node %d down permanently", t, from, to, to)
				return at, false
			}
			st.CrashStalls++
			elapsed = rec - now + rto
			continue
		}
		if ic.cut(at, from, to) {
			// A partition with a known heal is waited out like a crash; a
			// never-healing cut burns the retry budget at the backoff cadence
			// (the sender cannot distinguish it from loss).
			if heal, ok := ic.part.LinkClearAt(at, from, to); ok {
				st.PartitionStalls++
				ic.tracef(from, at, "cut-stall", "type %d %d->%d: partitioned until %.6g", t, from, to, heal)
				elapsed = heal - now + rto
				continue
			}
			st.PartitionDrops++
			st.Retries++
			retries++
			ic.tracef(from, at, "retx", "type %d %d->%d cut, retry %d", t, from, to, retries)
			if retries > ic.maxRetries() {
				st.Exhausted++
				ic.tracef(from, at, "send-fail", "type %d %d->%d: partitioned permanently", t, from, to)
				return at, false
			}
			elapsed += rto
			if rto < ic.retxTimeout()*retxBackoffCap {
				rto *= 2
			}
			continue
		}
		m := ic.transmit(at, from, to, t, size, payload)
		drop, dup, jit := ic.inj.Fate(at, from, to, m.Seq)
		if drop {
			st.Dropped++
			st.Retries++
			retries++
			ic.tracef(from, at, "retx", "type %d %d->%d seq %d retry %d", t, from, to, m.Seq, retries)
			if retries > ic.maxRetries() {
				st.Exhausted++
				ic.tracef(from, at, "send-fail", "type %d %d->%d: retries exhausted", t, from, to)
				return at, false
			}
			elapsed += rto
			if rto < ic.retxTimeout()*retxBackoffCap {
				rto *= 2
			}
			continue
		}
		m.Deliver += jit
		if ic.cut(m.Deliver, from, to) {
			// The cut landed while the leg was in flight: it is lost and the
			// sender retransmits after the timeout.
			st.Dropped++
			st.PartitionDrops++
			st.Retries++
			retries++
			ic.tracef(from, at, "retx", "type %d %d->%d seq %d cut in flight, retry %d", t, from, to, m.Seq, retries)
			if retries > ic.maxRetries() {
				st.Exhausted++
				ic.tracef(from, at, "send-fail", "type %d %d->%d: partitioned permanently", t, from, to)
				return at, false
			}
			elapsed += rto
			if rto < ic.retxTimeout()*retxBackoffCap {
				rto *= 2
			}
			continue
		}
		ic.push(m)
		// Decide the acknowledgement's fate on the reverse link: a lost ack
		// makes the sender retransmit a copy the receiver has already seen.
		// An asymmetric partition that severs only the reverse leg loses the
		// ack the same way.
		ack := ic.link(to, from)
		ack.seq++
		ackDrop, _, _ := ic.inj.Fate(m.Deliver, to, from, ack.seq)
		if ic.cut(m.Deliver, to, from) {
			ackDrop = true
		}
		if dup || ackDrop {
			cp := *m
			lk := ic.link(from, to)
			lk.seq++
			cp.Seq = lk.seq
			cp.Deliver = m.Deliver + rto
			if ic.cut(cp.Deliver, from, to) {
				st.PartitionDrops++
			} else {
				st.Duplicated++
				ic.push(&cp)
			}
		}
		return m.Deliver, true
	}
}

// RoundTripTime estimates a small-request/sized-reply exchange starting at
// time now, used to model request+reply service pairs without enqueuing
// messages. Each leg waits for its directed link's current occupancy, like
// Send does, but the estimate does not consume occupancy itself.
func (ic *Interconnect) RoundTripTime(now float64, from, to int, replySize int64) float64 {
	if ic.path != nil {
		arrive := ic.path.Estimate(now, from, to, ic.cfg.HeaderBytes)
		done := ic.path.Estimate(arrive, to, from, replySize+ic.cfg.HeaderBytes)
		return done - now
	}
	start := now
	if lk := ic.link(from, to); lk.busyUntil > start {
		start = lk.busyUntil
	}
	arrive := start + float64(ic.cfg.HeaderBytes)/ic.cfg.BytesPerSec + ic.cfg.LatencySec
	replyStart := arrive
	if lk := ic.link(to, from); lk.busyUntil > replyStart {
		replyStart = lk.busyUntil
	}
	done := replyStart + float64(replySize+ic.cfg.HeaderBytes)/ic.cfg.BytesPerSec + ic.cfg.LatencySec
	return done - now
}

// ReliableRTT models a synchronous request/reply exchange (a DSM page
// fetch, an invalidation) over the lossy fabric: a lost leg costs one
// retransmission timeout (capped exponential backoff), and a peer inside a
// known-finite outage is waited out without consuming the retry budget.
// It returns the total elapsed seconds at the requester and false if the
// exchange could not complete (retries exhausted or the peer never
// recovers).
func (ic *Interconnect) ReliableRTT(now float64, from, to int, replySize int64) (float64, bool) {
	if ic.inj == nil || from == to {
		return ic.RoundTripTime(now, from, to, replySize), true
	}
	ic.ensure(from)
	ic.ensure(to)
	st := &ic.stats[from]
	elapsed := 0.0
	rto := ic.retxTimeout()
	retries := 0
	for {
		at := now + elapsed
		if ic.inj.NodeDown(to, at) {
			rec, ok := ic.inj.NodeRecoverAt(to, at)
			if !ok {
				st.Exhausted++
				ic.tracef(from, at, "rtt-fail", "%d->%d: node %d down permanently", from, to, to)
				return elapsed, false
			}
			st.CrashStalls++
			elapsed = rec - now + rto
			continue
		}
		if ic.cut(at, from, to) || ic.cut(at, to, from) {
			// Either leg severed kills the exchange. Stall to the latest
			// known heal over both legs, or burn the retry budget when a cut
			// never heals.
			heal, ok := at, true
			for _, leg := range [2][2]int{{from, to}, {to, from}} {
				if !ic.cut(at, leg[0], leg[1]) {
					continue
				}
				h, o := ic.part.LinkClearAt(at, leg[0], leg[1])
				if !o {
					ok = false
					break
				}
				if h > heal {
					heal = h
				}
			}
			if ok {
				st.PartitionStalls++
				ic.tracef(from, at, "cut-stall", "rtt %d->%d: partitioned until %.6g", from, to, heal)
				elapsed = heal - now + rto
				continue
			}
			st.PartitionDrops++
			st.Retries++
			retries++
			ic.tracef(from, at, "retx", "rtt %d->%d cut, retry %d", from, to, retries)
			if retries > ic.maxRetries() {
				st.Exhausted++
				ic.tracef(from, at, "rtt-fail", "%d->%d: partitioned permanently", from, to)
				return elapsed, false
			}
			elapsed += rto
			if rto < ic.retxTimeout()*retxBackoffCap {
				rto *= 2
			}
			continue
		}
		req := ic.link(from, to)
		req.seq++
		reqDrop, _, reqJit := ic.inj.Fate(at, from, to, req.seq)
		rep := ic.link(to, from)
		rep.seq++
		repDrop, _, repJit := ic.inj.Fate(at, to, from, rep.seq)
		if !reqDrop && !repDrop {
			return elapsed + ic.RoundTripTime(at, from, to, replySize) + reqJit + repJit, true
		}
		st.Dropped++
		st.Retries++
		retries++
		ic.tracef(from, at, "retx", "rtt %d->%d retry %d", from, to, retries)
		if retries > ic.maxRetries() {
			st.Exhausted++
			ic.tracef(from, at, "rtt-fail", "%d->%d: retries exhausted", from, to)
			return elapsed, false
		}
		elapsed += rto
		if rto < ic.retxTimeout()*retxBackoffCap {
			rto *= 2
		}
	}
}

// PopDue removes and returns the next message for node due at or before
// now, or nil.
func (ic *Interconnect) PopDue(node int, now float64) *Message {
	ns := ic.node(node)
	if ns.q.Len() == 0 || ns.q[0].Deliver > now {
		return nil
	}
	return heap.Pop(&ns.q).(*Message)
}

// NextDeliver returns the earliest pending delivery time for node, or
// (0, false) if nothing is queued.
func (ic *Interconnect) NextDeliver(node int) (float64, bool) {
	ns := ic.node(node)
	if ns.q.Len() == 0 {
		return 0, false
	}
	return ns.q[0].Deliver, true
}

// Pending returns the number of queued messages for node.
func (ic *Interconnect) Pending(node int) int {
	return ic.node(node).q.Len()
}

// Drain removes and returns every queued message for node in delivery
// order (a crashed node's queue sweep).
func (ic *Interconnect) Drain(node int) []*Message {
	ns := ic.node(node)
	var out []*Message
	for ns.q.Len() > 0 {
		out = append(out, heap.Pop(&ns.q).(*Message))
	}
	return out
}

// Requeue re-enqueues a drained message with a new delivery time
// (redelivery after the destination recovers).
func (ic *Interconnect) Requeue(m *Message, deliver float64) {
	m.Deliver = deliver
	ic.push(m)
}

// ForEachPending calls fn for every queued message across all nodes, in
// node order then heap (not delivery) order. Barrier-only: it reads every
// node's queue, so it must never run concurrently with group workers.
// Cluster.Groups uses it to fold in-flight exchanges into the sharing
// partition.
func (ic *Interconnect) ForEachPending(fn func(*Message)) {
	for i := range ic.nodes {
		for _, m := range ic.nodes[i].q {
			fn(m)
		}
	}
}

// Sweep removes queued messages for which drop returns true, returning how
// many were reclaimed. nodes scopes the sweep to those destinations (nil
// sweeps every node); callers running inside a parallel epoch pass the
// affected process's sharing set so the sweep stays group-local. Used to
// garbage-collect in-flight messages that reference a reaped process.
func (ic *Interconnect) Sweep(nodes []int, drop func(*Message) bool) int {
	if nodes == nil {
		nodes = make([]int, ic.n)
		for i := range nodes {
			nodes[i] = i
		}
	}
	n := 0
	for _, nd := range nodes {
		if nd < 0 || nd >= ic.n {
			continue
		}
		q := &ic.nodes[nd].q
		kept := (*q)[:0]
		for _, m := range *q {
			if drop(m) {
				n++
				continue
			}
			kept = append(kept, m)
		}
		*q = kept
		heap.Init(q)
	}
	return n
}

// msgHeap orders messages by delivery time, then enqueue order at the
// destination for determinism.
type msgHeap []*Message

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].Deliver != h[j].Deliver {
		return h[i].Deliver < h[j].Deliver
	}
	return h[i].arrival < h[j].arrival
}
func (h msgHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x interface{}) { *h = append(*h, x.(*Message)) }
func (h *msgHeap) Pop() interface{} {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}
