package msg

import (
	"testing"

	"heterodc/internal/fault"
)

// alwaysDrop drops every message leg.
type alwaysDrop struct{}

func (alwaysDrop) Fate(now float64, from, to int, seq uint64) (bool, bool, float64) {
	return true, false, 0
}
func (alwaysDrop) NodeDown(node int, at float64) bool                 { return false }
func (alwaysDrop) NodeRecoverAt(node int, at float64) (float64, bool) { return 0, false }

func TestSendDropsWithInjector(t *testing.T) {
	ic := New(testCfg())
	ic.SetInjector(alwaysDrop{})
	ic.Send(0, 0, 1, TPageReply, 100, nil)
	if ic.Pending(1) != 0 {
		t.Fatal("dropped message was enqueued")
	}
	if s := ic.Stats(); s.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Dropped)
	}
}

func TestSendReliableExhaustsRetries(t *testing.T) {
	ic := New(testCfg())
	ic.SetInjector(alwaysDrop{})
	_, ok := ic.SendReliable(0, 0, 1, TThreadMigrate, 100, nil)
	if ok {
		t.Fatal("send succeeded under a 100% loss injector")
	}
	s := ic.Stats()
	if s.Exhausted != 1 {
		t.Fatalf("Exhausted = %d, want 1", s.Exhausted)
	}
	if s.Retries != uint64(DefaultMaxRetries)+1 {
		t.Fatalf("Retries = %d, want %d", s.Retries, DefaultMaxRetries+1)
	}
	if ic.Pending(1) != 0 {
		t.Fatal("failed reliable send left a queued message")
	}
}

func TestSendReliableSurvivesLoss(t *testing.T) {
	ic := New(testCfg())
	ic.SetInjector(fault.NewInjector(fault.Plan{Seed: 11, DropProb: 0.5}))
	delivered := 0
	for i := 0; i < 50; i++ {
		if _, ok := ic.SendReliable(float64(i)*1e-3, 0, 1, TThreadMigrate, 100, i); ok {
			delivered++
		}
	}
	if delivered != 50 {
		t.Fatalf("delivered %d/50 under 50%% loss; reliable channel should retry through", delivered)
	}
	if s := ic.Stats(); s.Retries == 0 {
		t.Fatal("no retries counted under 50% loss")
	}
}

func TestSendReliableRetryCostsTime(t *testing.T) {
	cfg := testCfg()
	ic := New(cfg)
	base := ic.Send(0, 0, 1, TPageReply, 100, nil) // healthy reference

	lossy := New(cfg)
	// Seed chosen arbitrarily; with p=0.9 the first attempt almost surely
	// drops, so delivery must land at least one retransmission timeout out.
	lossy.SetInjector(fault.NewInjector(fault.Plan{Seed: 1, DropProb: 0.9}))
	d, ok := lossy.SendReliable(0, 0, 1, TPageReply, 100, nil)
	if !ok {
		t.Skip("all retries dropped for this seed")
	}
	if lossy.Stats().Retries > 0 && d < base+DefaultRetxTimeout {
		t.Fatalf("retried delivery at %g, want >= %g (base %g + timeout)", d, base+DefaultRetxTimeout, base)
	}
}

func TestReliableRTTDeterministic(t *testing.T) {
	run := func() (Stats, float64) {
		ic := New(testCfg())
		ic.SetInjector(fault.NewInjector(fault.Plan{Seed: 9, DropProb: 0.3, JitterSec: 2e-6}))
		total := 0.0
		failed := 0
		for i := 0; i < 200; i++ {
			lat, ok := ic.ReliableRTT(float64(i)*1e-4, 0, 1, 4096)
			if !ok {
				// Exhausting the retry budget is legitimately possible
				// (~0.2% per exchange at this loss rate); it just must be
				// identical across runs.
				failed++
			}
			total += lat
		}
		if failed > 10 {
			t.Fatalf("%d/200 exchanges exhausted retries under 30%% loss", failed)
		}
		return ic.Stats(), total
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("two identical runs diverged: %+v/%g vs %+v/%g", s1, t1, s2, t2)
	}
	if s1.Retries == 0 || s1.Dropped == 0 {
		t.Fatalf("expected loss activity, got %+v", s1)
	}
}

func TestReliableRTTWaitsOutOutage(t *testing.T) {
	ic := New(testCfg())
	ic.SetInjector(fault.NewInjector(fault.Plan{
		Crashes: []fault.Crash{{Node: 1, At: 0, RecoverAt: 0.5}},
	}))
	lat, ok := ic.ReliableRTT(0.1, 0, 1, 4096)
	if !ok {
		t.Fatal("exchange failed despite a scheduled recovery")
	}
	if lat < 0.4 {
		t.Fatalf("latency %g, want >= 0.4 (stalled until the node recovers at 0.5)", lat)
	}
	if ic.Stats().CrashStalls == 0 {
		t.Fatal("no crash stall counted")
	}
}

func TestReliableRTTFailsOnPermanentOutage(t *testing.T) {
	ic := New(testCfg())
	ic.SetInjector(fault.NewInjector(fault.Plan{
		Crashes: []fault.Crash{{Node: 1, At: 0, RecoverAt: 0}},
	}))
	if _, ok := ic.ReliableRTT(0.1, 0, 1, 4096); ok {
		t.Fatal("exchange succeeded against a permanently dead node")
	}
	if ic.Stats().Exhausted != 1 {
		t.Fatalf("Exhausted = %d, want 1", ic.Stats().Exhausted)
	}
}

func TestDuplicateDeliveryOnDupFault(t *testing.T) {
	ic := New(testCfg())
	ic.SetInjector(fault.NewInjector(fault.Plan{Seed: 4, DupProb: 1.0}))
	ic.Send(0, 0, 1, TRemoteWake, 64, "x")
	if ic.Pending(1) != 2 {
		t.Fatalf("pending %d, want 2 (original + duplicate)", ic.Pending(1))
	}
	if ic.Stats().Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", ic.Stats().Duplicated)
	}
}

func TestDrainAndRequeue(t *testing.T) {
	ic := New(testCfg())
	ic.Send(0, 0, 1, TPageReply, 100, "a")
	ic.Send(0, 0, 1, TPageReply, 100, "b")
	ms := ic.Drain(1)
	if len(ms) != 2 || ic.Pending(1) != 0 {
		t.Fatalf("drained %d, pending %d", len(ms), ic.Pending(1))
	}
	if ms[0].Payload.(string) != "a" {
		t.Fatal("drain not in delivery order")
	}
	ic.Requeue(ms[0], 5.0)
	if d, ok := ic.NextDeliver(1); !ok || d != 5.0 {
		t.Fatalf("requeued deliver %g %v, want 5.0", d, ok)
	}
}

func TestSweepReclaimsMatching(t *testing.T) {
	ic := New(testCfg())
	ic.Send(0, 0, 1, TThreadMigrate, 100, "dead")
	ic.Send(0, 0, 1, TRemoteWake, 64, "live")
	ic.Send(0, 1, 0, TThreadMigrate, 100, "dead")
	n := ic.Sweep(nil, func(m *Message) bool { return m.Payload == "dead" })
	if n != 2 {
		t.Fatalf("swept %d, want 2", n)
	}
	if ic.Pending(1) != 1 || ic.Pending(0) != 0 {
		t.Fatalf("pending after sweep: node1=%d node0=%d", ic.Pending(1), ic.Pending(0))
	}
	if m := ic.PopDue(1, 1.0); m == nil || m.Payload != "live" {
		t.Fatal("surviving message lost or reordered by sweep")
	}
}

func TestSendToDownNodeIsLost(t *testing.T) {
	ic := New(testCfg())
	ic.SetInjector(fault.NewInjector(fault.Plan{
		Crashes: []fault.Crash{{Node: 1, At: 0, RecoverAt: 1.0}},
	}))
	ic.Send(0.5, 0, 1, TRemoteWake, 64, nil)
	if ic.Pending(1) != 0 {
		t.Fatal("unreliable send to a down node was enqueued")
	}
	if ic.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", ic.Stats().Dropped)
	}
}

func TestSendReliableWaitsOutOutage(t *testing.T) {
	ic := New(testCfg())
	ic.SetInjector(fault.NewInjector(fault.Plan{
		Crashes: []fault.Crash{{Node: 1, At: 0, RecoverAt: 1.0}},
	}))
	d, ok := ic.SendReliable(0.5, 0, 1, TThreadMigrate, 100, nil)
	if !ok {
		t.Fatal("reliable send failed despite scheduled recovery")
	}
	if d < 1.0 {
		t.Fatalf("delivered at %g, want after recovery at 1.0", d)
	}
}
