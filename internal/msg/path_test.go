package msg

// PathModel seam: an installed fabric replaces the flat pipe's
// delivery-time computation (Send, RoundTripTime, MinLatency, duplicate
// redelivery) while the flat path stays byte-for-byte untouched when no
// model is installed.

import (
	"math"
	"testing"
)

// stubPath is a minimal two-node PathModel with a fixed per-message cost
// and a call log, enough to prove the interconnect consults it.
type stubPath struct {
	n         int
	lat       float64
	bw        float64
	busyUntil float64
	transmits int
	estimates int
}

func (p *stubPath) Nodes() int          { return p.n }
func (p *stubPath) MinLatency() float64 { return p.lat }
func (p *stubPath) Contended() bool     { return true }
func (p *stubPath) Transmit(now float64, from, to int, wire int64) float64 {
	p.transmits++
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	p.busyUntil = start + float64(wire)/p.bw
	return p.busyUntil + p.lat
}
func (p *stubPath) Estimate(now float64, from, to int, wire int64) float64 {
	p.estimates++
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	return start + float64(wire)/p.bw + p.lat
}

func TestPathModelDrivesDelivery(t *testing.T) {
	ic := New(testCfg())
	ic.Grow(2)
	pm := &stubPath{n: 2, lat: 5e-6, bw: 1e8}
	if err := ic.SetPathModel(pm); err != nil {
		t.Fatalf("SetPathModel: %v", err)
	}
	if !ic.Contended() {
		t.Fatalf("contended fabric not reported")
	}
	if got := ic.MinLatency(); got != 5e-6 {
		t.Fatalf("MinLatency = %g, want the model's 5e-6", got)
	}
	d := ic.Send(0, 0, 1, TFSOp, 1000, nil)
	want := 1000/1e8 + 5e-6
	if math.Abs(d-want) > 1e-15 {
		t.Fatalf("fabric delivery = %g, want %g", d, want)
	}
	if pm.transmits != 1 {
		t.Fatalf("model saw %d transmits, want 1", pm.transmits)
	}
	// Occupancy lives in the model: a second send queues behind the first.
	d2 := ic.Send(0, 0, 1, TFSOp, 1000, nil)
	if d2 <= d {
		t.Fatalf("second send %g did not queue behind first %g", d2, d)
	}
	// RTT estimates both legs through the model without consuming occupancy.
	before := pm.busyUntil
	ic.RoundTripTime(d2, 0, 1, 4096)
	if pm.estimates != 2 {
		t.Fatalf("RTT made %d estimates, want 2", pm.estimates)
	}
	if pm.busyUntil != before {
		t.Fatalf("RTT consumed occupancy: busyUntil %g -> %g", before, pm.busyUntil)
	}
}

func TestPathModelValidation(t *testing.T) {
	ic := New(testCfg())
	ic.Grow(4)
	if err := ic.SetPathModel(&stubPath{n: 2, lat: 1e-6, bw: 1e9}); err == nil {
		t.Fatalf("model smaller than the interconnect accepted")
	}
	if err := ic.SetPathModel(&stubPath{n: 8, lat: 1e-6, bw: 1e9}); err != nil {
		t.Fatalf("covering model rejected: %v", err)
	}
	ic.Grow(8) // up to the model's size is fine
	defer func() {
		if recover() == nil {
			t.Fatalf("growing past the path model did not panic")
		}
	}()
	ic.Grow(9)
}

func TestFlatPathUnchangedWithoutModel(t *testing.T) {
	// The seam is cost-neutral when unused: an interconnect that never saw
	// SetPathModel computes the exact flat-pipe schedule.
	cfg := testCfg()
	a, b := New(cfg), New(cfg)
	b.Grow(2)
	if err := b.SetPathModel(nil); err != nil {
		t.Fatalf("SetPathModel(nil): %v", err)
	}
	for i := 0; i < 10; i++ {
		now := float64(i) * 1e-6
		da := a.Send(now, 0, 1, TPageReply, int64(100*i), nil)
		db := b.Send(now, 0, 1, TPageReply, int64(100*i), nil)
		if da != db {
			t.Fatalf("send %d: flat %g vs nil-model %g", i, da, db)
		}
	}
	if a.MinLatency() != b.MinLatency() || a.Contended() || b.Contended() {
		t.Fatalf("nil model perturbed MinLatency/Contended")
	}
	ra := a.RoundTripTime(1e-3, 1, 0, 4096)
	rb := b.RoundTripTime(1e-3, 1, 0, 4096)
	if ra != rb {
		t.Fatalf("RTT diverged: %g vs %g", ra, rb)
	}
}
