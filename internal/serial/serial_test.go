package serial_test

import (
	"testing"

	"heterodc/internal/core"
	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/serial"
)

func TestManagedCostFactor(t *testing.T) {
	fn := serial.ManagedCostFn(isa.X86)
	for _, op := range []isa.Op{isa.OpAdd, isa.OpFMul, isa.OpLd} {
		native := isa.CycleCost(isa.X86, op)
		managed := fn(op)
		if float64(managed) < float64(native)*1.5 {
			t.Errorf("%s: managed cost %d not ~%gx native %d", op, managed, serial.JavaFactor, native)
		}
	}
}

func TestManagedRunSlowerThanNative(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", `
long main(void){
	double acc = 0.0;
	for (long i = 0; i < 100000; i++) acc += sqrt((double)i);
	return (long)(acc * 0.0);
}`))
	if err != nil {
		t.Fatal(err)
	}
	nat := core.NewTestbed()
	p1, err := nat.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nat.RunProcess(p1); err != nil {
		t.Fatal(err)
	}

	man := serial.NewManagedTestbed()
	p2, err := serial.SpawnManaged(man, img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := man.RunProcess(p2); err != nil {
		t.Fatal(err)
	}
	if man.Time() < nat.Time()*1.5 {
		t.Errorf("managed %.4fs not ~2x native %.4fs", man.Time(), nat.Time())
	}
}

func TestSerializedMigrationMovesWholeState(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", `
long big[20000]; // ~160 KiB of state
long main(void){
	for (long i = 0; i < 20000; i++) big[i] = i;
	migrate(1);
	long s = 0;
	for (long i = 0; i < 20000; i += 1000) s += big[i];
	print_i64_ln(s);
	print_i64_ln(getnode());
	return 0;
}`))
	if err != nil {
		t.Fatal(err)
	}
	cl := serial.NewManagedTestbed()
	p, err := serial.SpawnManaged(cl, img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	var ev kernel.MigrationEvent
	cl.OnMigration = func(e kernel.MigrationEvent) { ev = e }
	if _, err := cl.RunProcess(p); err != nil {
		t.Fatal(err)
	}
	if !ev.Serialized {
		t.Fatal("migration not marked serialized")
	}
	if ev.StateBytes < 160*1024 {
		t.Errorf("serialized only %d bytes; whole state expected", ev.StateBytes)
	}
	// Eager move: after arrival the destination must hold the pages without
	// demand faults (beyond cold ones for new stack touches).
	want := "190000\n1\n"
	if got := string(p.Output()); got != want {
		t.Errorf("output %q, want %q", got, want)
	}
	if ev.XformSeconds < 1e-3 {
		t.Errorf("serialization of %d bytes modelled at only %.0fµs", ev.StateBytes, ev.XformSeconds*1e6)
	}
}
