// Package serial implements the PadMig-style migration baseline of the
// paper's Figure 11: a managed-runtime (Java) application that migrates by
// reflectively serializing its whole object state, shipping it, and
// deserializing on the destination — as opposed to the native multi-ISA
// binary, which transforms only its stacks and lets pages follow on demand.
//
// The managed runtime itself is modelled as a per-op interpretation /
// JIT-overhead factor on top of native costs (the paper's Java IS run takes
// ~2x the native time end to end), and migration costs are charged by the
// kernel's serialized-migration mode (see kernel.Process.SetSerializedMigration).
package serial

import (
	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/link"
	"heterodc/internal/msg"
)

// JavaFactor is the managed-runtime slowdown over native compiled code.
// Calibrated to Figure 11's 23 s (Java) vs 11 s (native) IS class B runs.
const JavaFactor = 2.1

// ManagedCostFn returns the per-op cost function of the managed runtime on
// arch: native cost scaled by JavaFactor (GC and JIT warmup folded in).
func ManagedCostFn(arch isa.Arch) func(op isa.Op) int64 {
	return func(op isa.Op) int64 {
		c := int64(float64(isa.CycleCost(arch, op)) * JavaFactor)
		if c < 1 {
			c = 1
		}
		return c
	}
}

// NewManagedTestbed builds the two-server testbed with both machines
// running the managed runtime.
func NewManagedTestbed() *kernel.Cluster {
	specs := []kernel.MachineSpec{
		{Arch: isa.X86, Desc: isa.Describe(isa.X86), CostFn: ManagedCostFn(isa.X86)},
		{Arch: isa.ARM64, Desc: isa.Describe(isa.ARM64), CostFn: ManagedCostFn(isa.ARM64)},
	}
	return kernel.NewClusterSpec(specs, msg.DolphinPXH810())
}

// SpawnManaged loads img as a managed-runtime process with serialization
// migration on node.
func SpawnManaged(cl *kernel.Cluster, img *link.Image, node int) (*kernel.Process, error) {
	p, err := cl.Spawn(img, node)
	if err != nil {
		return nil, err
	}
	p.SetSerializedMigration(true)
	return p, nil
}
