package cache

import (
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{SizeBytes: 1024, LineBytes: 64, Ways: 2, MissCycles: 10}
	// 16 lines, 8 sets, 2 ways
}

func TestColdMissThenHit(t *testing.T) {
	c := New(small())
	if p := c.Access(0x100); p != 10 {
		t.Fatalf("cold access penalty %d, want 10", p)
	}
	if p := c.Access(0x100); p != 0 {
		t.Fatalf("second access penalty %d, want 0", p)
	}
	if p := c.Access(0x13f); p != 0 {
		t.Fatalf("same-line access penalty %d, want 0", p)
	}
	if c.Accesses != 3 || c.Misses != 1 {
		t.Fatalf("stats %d/%d", c.Misses, c.Accesses)
	}
}

func TestAssociativityHoldsTwoWays(t *testing.T) {
	c := New(small()) // 8 sets: set = (addr>>6) & 7
	a := uint64(0x0000)
	b := uint64(0x2000) // same set (bits 6..8 zero), different tag
	c.Access(a)
	c.Access(b)
	if p := c.Access(a); p != 0 {
		t.Error("way 1 evicted prematurely")
	}
	if p := c.Access(b); p != 0 {
		t.Error("way 2 evicted prematurely")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(small())
	a, b, d := uint64(0x0000), uint64(0x2000), uint64(0x4000) // same set
	c.Access(a)
	c.Access(b)
	c.Access(a) // a most recent
	c.Access(d) // evicts b (LRU)
	if p := c.Access(a); p != 0 {
		t.Error("a evicted, want kept (MRU)")
	}
	if p := c.Access(b); p == 0 {
		t.Error("b kept, want evicted (LRU)")
	}
}

func TestAccessRangeStraddle(t *testing.T) {
	c := New(small())
	// 6 bytes ending across a line boundary: two lines, two cold misses.
	if p := c.AccessRange(0x3e, 6); p != 20 {
		t.Fatalf("straddle penalty %d, want 20", p)
	}
	if p := c.AccessRange(0x3e, 6); p != 0 {
		t.Fatalf("warm straddle penalty %d, want 0", p)
	}
}

func TestAccessRangeZeroSize(t *testing.T) {
	c := New(small())
	if p := c.AccessRange(0x80, 0); p != 10 {
		t.Fatalf("zero-size treated as 1 byte: %d", p)
	}
}

func TestFlushInvalidatesKeepsStats(t *testing.T) {
	c := New(small())
	c.Access(0x100)
	c.Access(0x100)
	c.Flush()
	if c.Accesses != 2 || c.Misses != 1 {
		t.Error("flush must keep statistics")
	}
	if p := c.Access(0x100); p != 10 {
		t.Error("flush must invalidate contents")
	}
}

func TestResetClearsEverything(t *testing.T) {
	c := New(small())
	c.Access(0x100)
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("reset must clear statistics")
	}
}

func TestMissRatio(t *testing.T) {
	c := New(small())
	if c.MissRatio() != 0 {
		t.Error("empty cache miss ratio")
	}
	c.Access(0x100)
	c.Access(0x100)
	c.Access(0x100)
	c.Access(0x100)
	if r := c.MissRatio(); r != 0.25 {
		t.Errorf("ratio %v, want 0.25", r)
	}
}

func TestDefaultL1Geometry(t *testing.T) {
	cfg := DefaultL1(12)
	if cfg.SizeBytes != 32*1024 || cfg.LineBytes != 64 || cfg.Ways != 8 {
		t.Errorf("unexpected default geometry %+v", cfg)
	}
	c := New(cfg)
	// Working set of exactly the cache size must fit (no conflict misses
	// with sequential fill).
	for i := 0; i < 512; i++ {
		c.Access(uint64(i * 64))
	}
	for i := 0; i < 512; i++ {
		if c.Access(uint64(i*64)) != 0 {
			t.Fatalf("line %d evicted from a fully fitting working set", i)
		}
	}
}

// Property: misses never exceed accesses, and a repeated single address is
// a hit after the first touch.
func TestPropertyStatsSane(t *testing.T) {
	err := quick.Check(func(addrs []uint32) bool {
		c := New(small())
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		return c.Misses <= c.Accesses && c.Accesses == uint64(len(addrs))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// Property: penalty is always 0 or a positive multiple of MissCycles.
func TestPropertyPenaltyQuantised(t *testing.T) {
	c := New(small())
	err := quick.Check(func(a uint32, sz uint8) bool {
		p := c.AccessRange(uint64(a), int64(sz%32))
		return p >= 0 && p%10 == 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
