// Package cache implements the set-associative L1 cache simulator used for
// the paper's Table 1 (alignment impact on L1 instruction-cache miss ratios)
// and for the machine cycle model.
package cache

// Config describes a cache geometry.
type Config struct {
	SizeBytes  int   // total capacity
	LineBytes  int   // line size
	Ways       int   // associativity
	MissCycles int64 // penalty added on a miss
}

// DefaultL1 is the 32 KiB, 8-way, 64 B-line geometry of both evaluation
// machines' L1 caches.
func DefaultL1(missCycles int64) Config {
	return Config{SizeBytes: 32 * 1024, LineBytes: 64, Ways: 8, MissCycles: missCycles}
}

// Cache is a set-associative cache with LRU replacement. It tracks only
// tags (contents live in simulated memory), which is all the cycle model
// needs.
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	setMask  uint64
	// tags[set*ways+way]; valid bit folded into tag via tag+1 (0 = invalid).
	tags []uint64
	// lru[set*ways+way] = recency counter; higher = more recent.
	lru     []uint64
	counter uint64

	Accesses uint64
	Misses   uint64
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	lb := uint(0)
	for 1<<lb < cfg.LineBytes {
		lb++
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		lineBits: lb,
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, sets*cfg.Ways),
		lru:      make([]uint64, sets*cfg.Ways),
	}
}

// Access simulates a cache access to addr and returns the added cycle
// penalty (0 on hit, MissCycles on miss).
func (c *Cache) Access(addr uint64) int64 {
	c.Accesses++
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	tag := line + 1 // +1 so tag 0 never collides with the invalid marker
	base := set * c.cfg.Ways

	c.counter++
	// Hit?
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == tag {
			c.lru[base+w] = c.counter
			return 0
		}
	}
	// Miss: evict LRU way.
	c.Misses++
	victim := base
	for w := 1; w < c.cfg.Ways; w++ {
		if c.lru[base+w] < c.lru[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = tag
	c.lru[victim] = c.counter
	return c.cfg.MissCycles
}

// AccessRange simulates an access spanning [addr, addr+size) — e.g. a
// variable-length instruction fetch that may straddle a line boundary —
// returning the total penalty.
func (c *Cache) AccessRange(addr uint64, size int64) int64 {
	if size <= 0 {
		size = 1
	}
	first := addr >> c.lineBits
	last := (addr + uint64(size) - 1) >> c.lineBits
	var penalty int64
	for l := first; l <= last; l++ {
		penalty += c.Access(l << c.lineBits)
	}
	return penalty
}

// MissRatio returns Misses/Accesses (0 if no accesses).
func (c *Cache) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.counter = 0
	c.Accesses = 0
	c.Misses = 0
}

// Flush invalidates contents but keeps statistics (e.g. after migration the
// destination core starts cold).
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
}
