package topo

import (
	"math"
	"testing"
)

func mustBuild(t *testing.T, s Spec, n int) *Fabric {
	t.Helper()
	f, err := Build(s, n)
	if err != nil {
		t.Fatalf("Build(%+v, %d): %v", s, n, err)
	}
	if f == nil {
		t.Fatalf("Build(%+v, %d): nil fabric", s, n)
	}
	return f
}

func TestFlatSpecBuildsNoFabric(t *testing.T) {
	f, err := Build(FlatSpec(), 8)
	if err != nil {
		t.Fatalf("flat build: %v", err)
	}
	if f != nil {
		t.Fatalf("flat spec built a fabric: %+v", f)
	}
	f, err = Build(Spec{}, 8) // the zero spec is flat too
	if err != nil || f != nil {
		t.Fatalf("zero spec: fabric=%v err=%v", f, err)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Kind: "torus"},
		{Kind: KindFatTree, Racks: -1},
		{Kind: KindFatTree, Oversub: -2},
		{Kind: KindFatTree, HopLatencySec: -1e-6},
		{Kind: KindFatTree, AccessBytesPerSec: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid spec", s)
		}
	}
	if err := FatTree(4, 8).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if _, err := Build(Spec{Kind: KindFatTree, Racks: 2, CutUplinks: []int{5}}, 4); err == nil {
		t.Errorf("Build accepted a cut for a nonexistent rack")
	}
}

func TestRouteShapes(t *testing.T) {
	f := mustBuild(t, FatTree(2, 4), 6) // racks {0,1,2} and {3,4,5}
	if f.PerRack() != 3 || f.Racks() != 2 {
		t.Fatalf("shape: perRack=%d racks=%d", f.PerRack(), f.Racks())
	}
	if r, ok := f.Route(1, 1); !ok || len(r) != 0 {
		t.Errorf("self route = %v, %v; want empty, true", r, ok)
	}
	in, ok := f.Route(0, 2)
	if !ok || len(in) != 2 {
		t.Fatalf("in-rack route = %v, %v; want 2 hops", in, ok)
	}
	if in[0] != f.AccessUp(0) || in[1] != f.AccessDown(2) {
		t.Errorf("in-rack route %v, want [%d %d]", in, f.AccessUp(0), f.AccessDown(2))
	}
	cross, ok := f.Route(0, 4)
	if !ok || len(cross) != 4 {
		t.Fatalf("cross-rack route = %v, %v; want 4 hops", cross, ok)
	}
	want := []int{f.AccessUp(0), f.UplinkUp(0), f.UplinkDown(1), f.AccessDown(4)}
	for i, id := range want {
		if cross[i] != id {
			t.Errorf("cross-rack hop %d = %d, want %d", i, cross[i], id)
		}
	}
	if _, ok := f.Route(0, 99); ok {
		t.Errorf("out-of-range destination routed")
	}
}

func TestBottleneckSerialization(t *testing.T) {
	// Oversub 4 on 3-node racks: uplink bandwidth = 3*access/4 < access, so
	// a cross-rack message serialises at the uplink rate.
	s := FatTree(2, 4)
	f := mustBuild(t, s, 6)
	spec := f.Spec()
	const wire = int64(1 << 20)
	uplinkBW := float64(f.PerRack()) * spec.AccessBytesPerSec / spec.Oversub
	if uplinkBW >= spec.AccessBytesPerSec {
		t.Fatalf("test premise broken: uplink %g not slower than access %g", uplinkBW, spec.AccessBytesPerSec)
	}
	got := f.Transmit(0, 0, 4, wire)
	want := 4*spec.HopLatencySec + float64(wire)/uplinkBW
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("cross-rack transmit = %.9g, want %.9g (bottleneck at uplink)", got, want)
	}
	// In-rack the access link is the bottleneck.
	got = f.Transmit(100, 0, 1, wire)
	want = 100 + 2*spec.HopLatencySec + float64(wire)/spec.AccessBytesPerSec
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("in-rack transmit = %.9g, want %.9g", got, want)
	}
}

func TestOversubscribedUplinkSharing(t *testing.T) {
	// Two senders in rack 0 target rack 1 at the same instant: distinct
	// access links, one shared uplink. The second transfer must queue for
	// the uplink's serialisation of the first.
	f := mustBuild(t, FatTree(2, 4), 6)
	spec := f.Spec()
	const wire = int64(1 << 20)
	uplinkBW := float64(f.PerRack()) * spec.AccessBytesPerSec / spec.Oversub
	first := f.Transmit(0, 0, 3, wire)
	second := f.Transmit(0, 1, 4, wire)
	if second <= first {
		t.Fatalf("shared uplink did not contend: first=%.9g second=%.9g", first, second)
	}
	// The uplink holds the second transfer until the first drains off it.
	if min := float64(wire) / uplinkBW; second-first < min/2 {
		t.Errorf("contention too weak: gap %.9g vs uplink serialisation %.9g", second-first, min)
	}
	up := f.UplinkStats()
	if len(up) == 0 || up[0].Queued == 0 {
		t.Errorf("uplink stats recorded no queueing: %+v", up)
	}
	// An idle-rack in-rack transfer is unaffected by the uplink jam.
	inRack := f.Transmit(0, 4, 5, wire)
	want := 2*spec.HopLatencySec + float64(wire)/spec.AccessBytesPerSec
	if math.Abs(inRack-want) > 1e-12 {
		t.Errorf("in-rack transfer disturbed by uplink contention: %.9g want %.9g", inRack, want)
	}
}

func TestEstimateConsumesNoOccupancy(t *testing.T) {
	f := mustBuild(t, FatTree(2, 4), 6)
	e1 := f.Estimate(0, 0, 4, 1<<20)
	e2 := f.Estimate(0, 0, 4, 1<<20)
	if e1 != e2 {
		t.Fatalf("estimate mutated occupancy: %.9g then %.9g", e1, e2)
	}
	tx := f.Transmit(0, 0, 4, 1<<20)
	if tx != e1 {
		t.Errorf("transmit %.9g disagrees with prior estimate %.9g on an idle fabric", tx, e1)
	}
	if e3 := f.Estimate(0, 0, 4, 1<<20); e3 <= e1 {
		t.Errorf("estimate ignores occupancy left by transmit: %.9g vs %.9g", e3, e1)
	}
}

func TestMinLatencyAsymmetricFabric(t *testing.T) {
	f := mustBuild(t, FatTree(2, 1), 4)
	spec := f.Spec()
	if got, want := f.MinLatency(), 2*spec.HopLatencySec; math.Abs(got-want) > 1e-18 {
		t.Fatalf("uniform min latency = %g, want %g", got, want)
	}
	// Slow down every link touching nodes 0 and 1 except the 2<->3 pair,
	// then verify MinLatency tracks the true minimum over all pairs.
	f.SetLinkLatency(f.AccessUp(0), 9e-6)
	f.SetLinkLatency(f.AccessDown(0), 9e-6)
	f.SetLinkLatency(f.AccessUp(1), 7e-6)
	f.SetLinkLatency(f.AccessDown(1), 7e-6)
	min := math.Inf(1)
	for from := 0; from < f.Nodes(); from++ {
		for to := 0; to < f.Nodes(); to++ {
			if from == to {
				continue
			}
			if lat := f.Estimate(0, from, to, 0); lat < min {
				min = lat
			}
		}
	}
	if got := f.MinLatency(); math.Abs(got-min) > 1e-18 {
		t.Errorf("asymmetric min latency = %g, brute force says %g", got, min)
	}
	// The surviving fast path is still 2<->3 at two default hops.
	if got, want := f.MinLatency(), 2*spec.HopLatencySec; math.Abs(got-want) > 1e-18 {
		t.Errorf("asymmetric min latency = %g, want untouched pair at %g", got, want)
	}
}

func TestCutUplinksUnrouteable(t *testing.T) {
	f := mustBuild(t, Spec{Kind: KindFatTree, Racks: 2, CutUplinks: []int{1}}, 4)
	if _, ok := f.Route(0, 2); ok {
		t.Errorf("route into a cut rack succeeded")
	}
	if _, ok := f.Route(2, 0); ok {
		t.Errorf("route out of a cut rack succeeded")
	}
	if _, ok := f.Route(2, 3); !ok {
		t.Errorf("in-rack route inside the cut rack should survive")
	}
	pairs := f.UnrouteablePairs()
	if len(pairs) != 8 { // 2x2 pairs in each direction
		t.Errorf("unrouteable pairs = %v, want 8 entries", pairs)
	}
	if !math.IsInf(f.MinLatency(), 0) == false && f.MinLatency() <= 0 {
		t.Errorf("min latency invalid on a cut fabric: %g", f.MinLatency())
	}
}

func TestLegsComposeWithRouting(t *testing.T) {
	f := mustBuild(t, FatTree(2, 1), 6)
	legs := f.Legs(f.UplinkUp(1))
	// Every rack-1 node to every rack-0 node, and nothing else.
	want := map[[2]int]bool{}
	for from := 3; from < 6; from++ {
		for to := 0; to < 3; to++ {
			want[[2]int{from, to}] = true
		}
	}
	if len(legs) != len(want) {
		t.Fatalf("Legs(uplinkUp(1)) = %v, want %d legs", legs, len(want))
	}
	for _, l := range legs {
		if !want[l] {
			t.Errorf("unexpected leg %v through rack 1's uplink", l)
		}
	}
	// And each leg's route really does traverse the link.
	for _, l := range legs {
		r, ok := f.Route(l[0], l[1])
		if !ok {
			t.Fatalf("leg %v unrouteable", l)
		}
		found := false
		for _, id := range r {
			if id == f.UplinkUp(1) {
				found = true
			}
		}
		if !found {
			t.Errorf("leg %v route %v misses the uplink", l, r)
		}
	}
}

// splitmix64, the repo's standard deterministic stream.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// TestInRackNeverSlowerThanCrossRack is the property test: for randomized
// fabric shapes and link parameters, an idle-fabric in-rack transfer never
// costs more than a cross-rack transfer of the same size.
func TestInRackNeverSlowerThanCrossRack(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		h := mix(seed)
		racks := 2 + int(h%6)
		h = mix(h)
		perRackWanted := 2 + int(h%6)
		n := racks * perRackWanted
		h = mix(h)
		oversub := 1 + float64(h%32)/2 // 1..16.5
		h = mix(h)
		hop := 0.1e-6 * (1 + float64(h%50))
		h = mix(h)
		access := 1e8 * (1 + float64(h%100))
		s := Spec{Kind: KindFatTree, Racks: racks, Oversub: oversub,
			HopLatencySec: hop, AccessBytesPerSec: access}
		f, err := Build(s, n)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h = mix(h)
		wire := int64(64 + h%(1<<20))
		for r := 0; r < f.Racks()-1; r++ {
			a := r * f.PerRack()
			in := f.Estimate(0, a, a+1, wire)
			cross := f.Estimate(0, a, a+f.PerRack(), wire)
			if in > cross {
				t.Fatalf("seed %d (racks=%d perRack=%d oversub=%.1f): in-rack %.9g > cross-rack %.9g",
					seed, racks, f.PerRack(), oversub, in, cross)
			}
		}
	}
}
