// Package topo models a hierarchical datacenter fabric: nodes grouped
// into racks behind top-of-rack (ToR) switches, ToRs joined through a
// spine tier. Every directed link has its own latency, bandwidth and
// occupancy, so in-rack traffic (two hops: node→ToR→node) is cheaper than
// cross-rack traffic (four hops: node→ToR→spine→ToR→node), and the shared
// ToR→spine uplinks — sized by the oversubscription ratio — are contended
// by every concurrent cross-rack transfer.
//
// A *Fabric plugs under msg.Interconnect as its PathModel: the message
// cost becomes the sum of hop latencies plus serialisation on the path's
// bottleneck link (cut-through forwarding), with per-link queueing when a
// link is busy. The flat single-pipe model remains the interconnect's
// default; a flat Spec builds no fabric at all, so the legacy cost model
// is untouched byte for byte.
//
// Everything is deterministic: routing is static shortest-path (fixed by
// the spec), link state is mutated only by Transmit, and there is no
// randomness anywhere in the package. A fabric shares links between node
// pairs (Contended reports true), which breaks the interconnect's
// disjoint-shard invariant — but the sharing is structured: in-rack routes
// touch only the two endpoints' private access links, and cross-rack
// routes touch only the two racks' ToR uplinks. The fabric exposes that
// structure as one sharing domain per rack (msg.SharingDomains), and the
// cluster folds it into the union-find sharing partition: two groups must
// merge only when both span multiple racks and have a rack in common, so
// rack-local traffic keeps the parallel engine fully parallel and both
// engines stay byte-identical.
package topo

import (
	"fmt"
	"math"
	"sort"
)

// Fabric kinds.
const (
	// KindFlat selects the interconnect's built-in single-pipe model; Build
	// returns no fabric for it.
	KindFlat = "flat"
	// KindFatTree selects the rack/spine fabric this package models.
	KindFatTree = "fattree"
)

// Default fabric parameters: 10 GbE access links with sub-microsecond
// per-hop switch latency.
const (
	DefaultHopLatencySec     = 0.5e-6
	DefaultAccessBytesPerSec = 1.25e9
	DefaultRacks             = 2
)

// Spec describes a fabric. The zero value is the flat single pipe.
type Spec struct {
	// Kind is KindFlat (default) or KindFatTree.
	Kind string
	// Racks is the number of racks nodes are grouped into (fat tree only);
	// 0 selects DefaultRacks. Nodes are assigned to racks in contiguous
	// blocks of ceil(n/Racks).
	Racks int
	// Oversub is the uplink oversubscription ratio: each ToR's uplink
	// bandwidth is (nodes-per-rack x access bandwidth) / Oversub, so 1 is a
	// non-blocking fabric and larger ratios starve cross-rack traffic.
	// 0 selects 1.
	Oversub float64
	// HopLatencySec is the per-hop (per-link) latency; 0 selects
	// DefaultHopLatencySec.
	HopLatencySec float64
	// AccessBytesPerSec is the node<->ToR link bandwidth; 0 selects
	// DefaultAccessBytesPerSec.
	AccessBytesPerSec float64
	// CutUplinks lists racks whose ToR<->spine uplinks are absent in both
	// directions, leaving their cross-rack pairs unrouteable. This is an
	// analysis aid (hdcinspect): clusters reject fabrics with unrouteable
	// pairs — time-bounded cuts belong to fault.PartitionWindow instead.
	CutUplinks []int
}

// FlatSpec returns the spec selecting the legacy flat pipe.
func FlatSpec() Spec { return Spec{Kind: KindFlat} }

// FatTree returns a fat-tree spec with the given rack count and
// oversubscription ratio and default link parameters.
func FatTree(racks int, oversub float64) Spec {
	return Spec{Kind: KindFatTree, Racks: racks, Oversub: oversub}
}

// withDefaults resolves zero fields.
func (s Spec) withDefaults() Spec {
	if s.Kind == "" {
		s.Kind = KindFlat
	}
	if s.Racks == 0 {
		s.Racks = DefaultRacks
	}
	if s.Oversub == 0 {
		s.Oversub = 1
	}
	if s.HopLatencySec == 0 {
		s.HopLatencySec = DefaultHopLatencySec
	}
	if s.AccessBytesPerSec == 0 {
		s.AccessBytesPerSec = DefaultAccessBytesPerSec
	}
	return s
}

// Validate rejects specs that cannot describe a fabric.
func (s Spec) Validate() error {
	s = s.withDefaults()
	switch s.Kind {
	case KindFlat, KindFatTree:
	default:
		return fmt.Errorf("topo: unknown fabric kind %q (want %q or %q)", s.Kind, KindFlat, KindFatTree)
	}
	if s.Racks < 1 {
		return fmt.Errorf("topo: rack count must be positive (got %d)", s.Racks)
	}
	if s.Oversub <= 0 {
		return fmt.Errorf("topo: oversubscription ratio must be positive (got %g)", s.Oversub)
	}
	if s.HopLatencySec <= 0 {
		return fmt.Errorf("topo: hop latency must be positive (got %g)", s.HopLatencySec)
	}
	if s.AccessBytesPerSec <= 0 {
		return fmt.Errorf("topo: access bandwidth must be positive (got %g)", s.AccessBytesPerSec)
	}
	return nil
}

// link is one directed fabric link with its own occupancy and counters.
type link struct {
	name        string
	latencySec  float64
	bytesPerSec float64

	busyUntil float64
	msgs      uint64
	bytes     uint64
	busySec   float64
	queued    uint64
	queueSec  float64
}

// LinkStat is one link's public snapshot.
type LinkStat struct {
	ID          int     `json:"id"`
	Name        string  `json:"name"`
	LatencySec  float64 `json:"latency_sec"`
	BytesPerSec float64 `json:"bytes_per_sec"`
	Msgs        uint64  `json:"msgs"`
	Bytes       uint64  `json:"bytes"`
	// BusySec is total serialisation occupancy; BusySec/horizon is the
	// link's utilisation.
	BusySec float64 `json:"busy_sec"`
	// Queued counts transmissions that found the link busy; QueueSec is
	// the time they spent waiting for it.
	Queued   uint64  `json:"queued"`
	QueueSec float64 `json:"queue_sec"`
}

// Fabric is a built fat-tree: racks of nodes behind ToRs, ToRs joined by
// a spine. It implements msg.PathModel.
type Fabric struct {
	spec    Spec
	n       int
	racks   int
	perRack int

	links      []link
	accessUp   []int // per node: node -> ToR
	accessDown []int // per node: ToR -> node
	uplinkUp   []int // per rack: ToR -> spine, -1 when cut
	uplinkDown []int // per rack: spine -> ToR, -1 when cut

	minLat      float64
	minLatValid bool
}

// Build constructs the fabric spec describes over n nodes. A flat spec
// builds nothing and returns (nil, nil): flat means "no path model", the
// interconnect's built-in pipe.
func Build(s Spec, n int) (*Fabric, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Kind == KindFlat {
		return nil, nil
	}
	if n < 1 {
		return nil, fmt.Errorf("topo: need at least 1 node (got %d)", n)
	}
	perRack := (n + s.Racks - 1) / s.Racks
	racks := (n + perRack - 1) / perRack // drop racks left empty by the division
	f := &Fabric{
		spec: s, n: n, racks: racks, perRack: perRack,
		accessUp:   make([]int, n),
		accessDown: make([]int, n),
		uplinkUp:   make([]int, racks),
		uplinkDown: make([]int, racks),
	}
	addLink := func(name string, bw float64) int {
		f.links = append(f.links, link{name: name, latencySec: s.HopLatencySec, bytesPerSec: bw})
		return len(f.links) - 1
	}
	for nd := 0; nd < n; nd++ {
		r := nd / perRack
		f.accessUp[nd] = addLink(fmt.Sprintf("n%d->tor%d", nd, r), s.AccessBytesPerSec)
		f.accessDown[nd] = addLink(fmt.Sprintf("tor%d->n%d", r, nd), s.AccessBytesPerSec)
	}
	cut := map[int]bool{}
	for _, r := range s.CutUplinks {
		if r < 0 || r >= racks {
			return nil, fmt.Errorf("topo: cut uplink names rack %d, fabric has racks 0..%d", r, racks-1)
		}
		cut[r] = true
	}
	uplinkBW := float64(perRack) * s.AccessBytesPerSec / s.Oversub
	for r := 0; r < racks; r++ {
		if cut[r] {
			f.uplinkUp[r], f.uplinkDown[r] = -1, -1
			continue
		}
		f.uplinkUp[r] = addLink(fmt.Sprintf("tor%d->spine", r), uplinkBW)
		f.uplinkDown[r] = addLink(fmt.Sprintf("spine->tor%d", r), uplinkBW)
	}
	return f, nil
}

// Spec returns the spec the fabric was built from (defaults resolved).
func (f *Fabric) Spec() Spec { return f.spec }

// Nodes returns the number of nodes the fabric joins.
func (f *Fabric) Nodes() int { return f.n }

// Racks returns the number of racks.
func (f *Fabric) Racks() int { return f.racks }

// PerRack returns the nodes-per-rack block size.
func (f *Fabric) PerRack() int { return f.perRack }

// Rack returns the rack node belongs to.
func (f *Fabric) Rack(node int) int { return node / f.perRack }

// AccessUp returns node's node->ToR link id.
func (f *Fabric) AccessUp(node int) int { return f.accessUp[node] }

// AccessDown returns node's ToR->node link id.
func (f *Fabric) AccessDown(node int) int { return f.accessDown[node] }

// UplinkUp returns rack's ToR->spine link id, or -1 when cut.
func (f *Fabric) UplinkUp(rack int) int { return f.uplinkUp[rack] }

// UplinkDown returns rack's spine->ToR link id, or -1 when cut.
func (f *Fabric) UplinkDown(rack int) int { return f.uplinkDown[rack] }

// route returns the directed link sequence from->to: empty for a self
// send, two hops in-rack, four hops cross-rack. ok is false when a cut
// uplink leaves the pair unrouteable.
func (f *Fabric) route(from, to int) (hops [4]int, nh int, ok bool) {
	if from < 0 || from >= f.n || to < 0 || to >= f.n {
		return hops, 0, false
	}
	if from == to {
		return hops, 0, true
	}
	rf, rt := f.Rack(from), f.Rack(to)
	if rf == rt {
		hops[0], hops[1] = f.accessUp[from], f.accessDown[to]
		return hops, 2, true
	}
	if f.uplinkUp[rf] < 0 || f.uplinkDown[rt] < 0 {
		return hops, 0, false
	}
	hops[0], hops[1] = f.accessUp[from], f.uplinkUp[rf]
	hops[2], hops[3] = f.uplinkDown[rt], f.accessDown[to]
	return hops, 4, true
}

// Route returns the link ids a from->to message traverses, and whether
// the pair is routeable at all (an empty routeable path is a self send).
func (f *Fabric) Route(from, to int) ([]int, bool) {
	hops, nh, ok := f.route(from, to)
	if !ok {
		return nil, false
	}
	out := make([]int, nh)
	copy(out, hops[:nh])
	return out, true
}

// Transmit charges the fabric for one from->to message of wire bytes
// starting at now and returns its delivery time: per-link queueing while a
// hop is busy, the sum of hop latencies for the cut-through header, plus
// serialisation of the full message on the path's bottleneck link. Each
// traversed link is held busy for its own serialisation time, so
// concurrent transfers sharing an (oversubscribed) uplink contend.
func (f *Fabric) Transmit(now float64, from, to int, wire int64) float64 {
	hops, nh, ok := f.route(from, to)
	if !ok {
		panic(fmt.Sprintf("topo: transmit over unrouteable pair %d->%d", from, to))
	}
	if nh == 0 {
		return now
	}
	t := now
	bottleneck := math.Inf(1)
	for _, id := range hops[:nh] {
		l := &f.links[id]
		if l.busyUntil > t {
			l.queued++
			l.queueSec += l.busyUntil - t
			t = l.busyUntil
		}
		tx := float64(wire) / l.bytesPerSec
		l.busyUntil = t + tx
		l.msgs++
		l.bytes += uint64(wire)
		l.busySec += tx
		if l.bytesPerSec < bottleneck {
			bottleneck = l.bytesPerSec
		}
		t += l.latencySec
	}
	return t + float64(wire)/bottleneck
}

// Estimate computes the same delivery time as Transmit against current
// occupancy without consuming any (the interconnect's RoundTripTime
// contract).
func (f *Fabric) Estimate(now float64, from, to int, wire int64) float64 {
	hops, nh, ok := f.route(from, to)
	if !ok {
		panic(fmt.Sprintf("topo: estimate over unrouteable pair %d->%d", from, to))
	}
	if nh == 0 {
		return now
	}
	t := now
	bottleneck := math.Inf(1)
	for _, id := range hops[:nh] {
		l := &f.links[id]
		if l.busyUntil > t {
			t = l.busyUntil
		}
		if l.bytesPerSec < bottleneck {
			bottleneck = l.bytesPerSec
		}
		t += l.latencySec
	}
	return t + float64(wire)/bottleneck
}

// MinLatency returns the minimum zero-byte one-way latency over all
// routeable distinct pairs — the lookahead floor for conservative parallel
// co-simulation over this fabric.
func (f *Fabric) MinLatency() float64 {
	if f.minLatValid {
		return f.minLat
	}
	min := math.Inf(1)
	for from := 0; from < f.n; from++ {
		for to := 0; to < f.n; to++ {
			if from == to {
				continue
			}
			hops, nh, ok := f.route(from, to)
			if !ok {
				continue
			}
			lat := 0.0
			for _, id := range hops[:nh] {
				lat += f.links[id].latencySec
			}
			if lat < min {
				min = lat
			}
		}
	}
	if math.IsInf(min, 1) {
		min = f.spec.HopLatencySec
	}
	f.minLat, f.minLatValid = min, true
	return min
}

// Contended reports that the fabric shares links between node pairs:
// disjoint node groups could race on a common ToR uplink. The fabric also
// implements msg.SharingDomains, so the cluster resolves the contention
// structurally (merging multi-rack groups that share a rack) instead of
// collapsing the partition.
func (f *Fabric) Contended() bool { return true }

// Domain returns node's sharing domain: its rack. All link sharing in the
// fat tree is either node-private (access links) or rack-scoped (the ToR
// uplink pair used by every cross-rack route in or out of the rack), so
// racks are exactly the granularity at which groups can contend.
func (f *Fabric) Domain(node int) int { return f.Rack(node) }

// NumDomains returns the rack count.
func (f *Fabric) NumDomains() int { return f.Racks() }

// SetLinkLatency overrides one link's latency (asymmetric-fabric tests)
// and invalidates the cached MinLatency.
func (f *Fabric) SetLinkLatency(id int, sec float64) {
	f.links[id].latencySec = sec
	f.minLatValid = false
}

// Legs returns the directed node pairs whose route traverses link id, in
// deterministic (from, to) order — the composition surface for per-link
// fault windows: cutting a fabric link means severing exactly these legs.
func (f *Fabric) Legs(id int) [][2]int {
	var legs [][2]int
	for from := 0; from < f.n; from++ {
		for to := 0; to < f.n; to++ {
			hops, nh, ok := f.route(from, to)
			if !ok {
				continue
			}
			for _, h := range hops[:nh] {
				if h == id {
					legs = append(legs, [2]int{from, to})
					break
				}
			}
		}
	}
	return legs
}

// UnrouteablePairs returns every ordered distinct pair a cut uplink
// disconnects, in deterministic order.
func (f *Fabric) UnrouteablePairs() [][2]int {
	var pairs [][2]int
	for from := 0; from < f.n; from++ {
		for to := 0; to < f.n; to++ {
			if from == to {
				continue
			}
			if _, _, ok := f.route(from, to); !ok {
				pairs = append(pairs, [2]int{from, to})
			}
		}
	}
	return pairs
}

// LinkStats snapshots every link's counters in link-id order.
func (f *Fabric) LinkStats() []LinkStat {
	out := make([]LinkStat, len(f.links))
	for i := range f.links {
		l := &f.links[i]
		out[i] = LinkStat{
			ID: i, Name: l.name,
			LatencySec: l.latencySec, BytesPerSec: l.bytesPerSec,
			Msgs: l.msgs, Bytes: l.bytes, BusySec: l.busySec,
			Queued: l.queued, QueueSec: l.queueSec,
		}
	}
	return out
}

// UplinkStats snapshots only the ToR<->spine uplinks, sorted by busy time
// descending (the contention hot list).
func (f *Fabric) UplinkStats() []LinkStat {
	all := f.LinkStats()
	var out []LinkStat
	for r := 0; r < f.racks; r++ {
		if f.uplinkUp[r] >= 0 {
			out = append(out, all[f.uplinkUp[r]])
		}
		if f.uplinkDown[r] >= 0 {
			out = append(out, all[f.uplinkDown[r]])
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].BusySec > out[j].BusySec })
	return out
}
