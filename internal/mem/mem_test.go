package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteU64RoundTrip(t *testing.T) {
	m := NewMemory()
	m.EnsurePage(0x1000)
	if err := m.WriteU64(0x1008, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadU64(0x1008)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeefcafef00d {
		t.Fatalf("got %#x", v)
	}
}

func TestPageStraddlingAccess(t *testing.T) {
	m := NewMemory()
	addr := uint64(2*PageSize - 4) // straddles a boundary
	m.EnsurePage(addr)
	m.EnsurePage(addr + 7)
	if err := m.WriteU64(addr, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadU64(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1122334455667788 {
		t.Fatalf("straddle got %#x", v)
	}
	// Byte view must be little-endian across the boundary.
	b, err := m.ReadU8(addr)
	if err != nil || b != 0x88 {
		t.Fatalf("first byte %#x err %v", b, err)
	}
}

func TestFaultOnAbsentPage(t *testing.T) {
	m := NewMemory()
	_, err := m.ReadU64(0x5000)
	fe, ok := err.(*FaultError)
	if !ok {
		t.Fatalf("expected FaultError, got %v", err)
	}
	if fe.Write {
		t.Error("read fault marked as write")
	}
	if err := m.WriteU8(0x5000, 1); err == nil {
		t.Error("write to absent page must fault")
	}
}

func TestWriteProtection(t *testing.T) {
	m := NewMemory()
	m.EnsurePage(0x3000)
	m.Protect(0x3000)
	if m.Writable(0x3000) {
		t.Error("protected page reported writable")
	}
	if _, err := m.ReadU64(0x3000); err != nil {
		t.Errorf("read of protected page must succeed: %v", err)
	}
	err := m.WriteU64(0x3000, 1)
	fe, ok := err.(*FaultError)
	if !ok || !fe.Write {
		t.Fatalf("expected write FaultError, got %v", err)
	}
	m.Unprotect(0x3000)
	if err := m.WriteU64(0x3000, 1); err != nil {
		t.Errorf("write after unprotect: %v", err)
	}
}

func TestDropPageClearsProtection(t *testing.T) {
	m := NewMemory()
	m.EnsurePage(0x3000)
	m.Protect(0x3000)
	m.DropPage(0x3000)
	if m.Present(0x3000) {
		t.Error("dropped page still present")
	}
	m.EnsurePage(0x3000)
	if !m.Writable(0x3000) {
		t.Error("re-created page inherited stale protection")
	}
}

func TestInstallPageCopies(t *testing.T) {
	m1 := NewMemory()
	p := m1.EnsurePage(0x4000)
	p[5] = 99
	m2 := NewMemory()
	m2.InstallPage(0x4000, p)
	p[5] = 1 // mutate source afterwards
	b, err := m2.ReadU8(0x4005)
	if err != nil || b != 99 {
		t.Fatalf("install did not copy: %d %v", b, err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	m := NewMemory()
	data := []byte("heterogeneous-ISA datacenters")
	m.WriteBytes(PageSize-10, data) // straddles
	got, err := m.ReadBytes(PageSize-10, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("got %q", got)
	}
}

func TestCStringRead(t *testing.T) {
	m := NewMemory()
	m.WriteBytes(0x100, append([]byte("hello"), 0))
	s, err := m.ReadCString(0x100, 64)
	if err != nil || s != "hello" {
		t.Fatalf("got %q err %v", s, err)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	m := NewMemory()
	m.EnsurePage(0)
	if err := m.WriteF64(16, 3.14159); err != nil {
		t.Fatal(err)
	}
	f, err := m.ReadF64(16)
	if err != nil || f != 3.14159 {
		t.Fatalf("got %v err %v", f, err)
	}
}

func TestAlignUp(t *testing.T) {
	cases := []struct{ v, a, want uint64 }{
		{0, 8, 0}, {1, 8, 8}, {8, 8, 8}, {9, 16, 16}, {4097, 4096, 8192},
	}
	for _, c := range cases {
		if got := AlignUp(c.v, c.a); got != c.want {
			t.Errorf("AlignUp(%d,%d)=%d want %d", c.v, c.a, got, c.want)
		}
	}
}

func TestThreadStackWindowsDisjoint(t *testing.T) {
	seen := map[uint64]int{}
	for tid := 0; tid < 16; tid++ {
		lo, hi := ThreadStackWindow(tid)
		if hi-lo != StackWindow {
			t.Fatalf("tid %d window size %d", tid, hi-lo)
		}
		for a := lo; a < hi; a += StackHalf {
			if prev, dup := seen[a]; dup {
				t.Fatalf("tid %d overlaps tid %d at %#x", tid, prev, a)
			}
			seen[a] = tid
		}
	}
}

func TestThreadStackWindowPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ThreadStackWindow(MaxThreads)
}

// Property: any u64 written at any (possibly straddling) offset reads back.
func TestPropertyU64RoundTrip(t *testing.T) {
	m := NewMemory()
	err := quick.Check(func(off uint16, v uint64) bool {
		addr := 0x10000 + uint64(off)
		m.EnsurePage(addr)
		m.EnsurePage(addr + 7)
		if err := m.WriteU64(addr, v); err != nil {
			return false
		}
		got, err := m.ReadU64(addr)
		return err == nil && got == v
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// Property: byte-wise reads compose to the little-endian word.
func TestPropertyLittleEndianComposition(t *testing.T) {
	m := NewMemory()
	err := quick.Check(func(off uint8, v uint64) bool {
		addr := 0x20000 + uint64(off)
		m.EnsurePage(addr)
		m.EnsurePage(addr + 7)
		if err := m.WriteU64(addr, v); err != nil {
			return false
		}
		var got uint64
		for i := uint64(0); i < 8; i++ {
			b, err := m.ReadU8(addr + i)
			if err != nil {
				return false
			}
			got |= uint64(b) << (8 * i)
		}
		return got == v
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
