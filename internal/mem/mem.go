// Package mem provides the sparse, paged, byte-addressable memory used by
// the machine simulator, plus the canonical address-space layout that the
// linker enforces identically on every ISA (the paper's "common address
// space layout").
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// PageSize is the virtual-memory page size in bytes. The DSM service
// migrates memory at this granularity.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Canonical address-space layout. The linker places symbols at identical
// addresses on all ISAs within these windows, which is what lets the
// identity function map process state between ISA-specific binaries.
const (
	// TextBase is where aliased per-ISA machine code begins.
	TextBase uint64 = 0x0000_0000_0040_0000
	// DataBase is where aligned globals (data, rodata, bss) begin.
	DataBase uint64 = 0x0000_0000_1000_0000
	// HeapBase is the initial program break; sbrk grows upward from here.
	HeapBase uint64 = 0x0000_0000_2000_0000
	// VDSOBase is the shared user/kernel page holding the migration-request
	// flags the scheduler raises and migration points poll.
	VDSOBase uint64 = 0x0000_0000_7000_0000
	// StackRegion is the base of the per-thread stack area. Each thread gets
	// a window of StackWindow bytes split into two halves, enabling the
	// two-halves stack-transformation scheme.
	StackRegion uint64 = 0x0000_0000_7800_0000
	// StackWindow is the size of one thread's stack window (both halves).
	StackWindow uint64 = 2 * StackHalf
	// StackHalf is the size of one half of a thread stack.
	StackHalf uint64 = 256 * 1024
	// MaxThreads bounds thread IDs so stack windows never collide.
	MaxThreads = 512
)

// PageIndex returns the page number containing addr.
func PageIndex(addr uint64) uint64 { return addr >> PageShift }

// PageBase returns the first address of the page containing addr.
func PageBase(addr uint64) uint64 { return addr &^ (PageSize - 1) }

// AlignUp rounds v up to the next multiple of align (a power of two).
func AlignUp(v, align uint64) uint64 { return (v + align - 1) &^ (align - 1) }

// ThreadStackWindow returns [lo, hi) of the stack window for thread tid.
func ThreadStackWindow(tid int) (lo, hi uint64) {
	if tid < 0 || tid >= MaxThreads {
		panic(fmt.Sprintf("mem: thread id %d out of range", tid))
	}
	lo = StackRegion + uint64(tid)*StackWindow
	return lo, lo + StackWindow
}

// Page is one 4 KiB page of simulated physical memory.
type Page [PageSize]byte

// FaultError is returned when an access touches a page that is not present
// in the local memory; the kernel's DSM service resolves it.
type FaultError struct {
	Addr  uint64
	Write bool
}

func (e *FaultError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("page fault: %s at %#x", kind, e.Addr)
}

// Memory is one kernel's view of an address space: a sparse set of present
// pages, some write-protected. Accesses to absent pages — and writes to
// protected pages — return *FaultError so the caller (the machine simulator)
// can trap into the kernel's DSM service, exactly as a hardware page fault
// would. A write-protected page is the local copy of a DSM page in the
// Shared state.
type Memory struct {
	pages map[uint64]*Page
	ro    map[uint64]bool
}

// NewMemory returns an empty memory with no pages present.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*Page), ro: make(map[uint64]bool)}
}

// Protect marks the page containing addr read-only.
func (m *Memory) Protect(addr uint64) { m.ro[PageIndex(addr)] = true }

// Unprotect clears the read-only bit on the page containing addr.
func (m *Memory) Unprotect(addr uint64) { delete(m.ro, PageIndex(addr)) }

// Writable reports whether the page containing addr is present and writable.
func (m *Memory) Writable(addr uint64) bool {
	idx := PageIndex(addr)
	_, ok := m.pages[idx]
	return ok && !m.ro[idx]
}

// Present reports whether the page containing addr is present.
func (m *Memory) Present(addr uint64) bool {
	_, ok := m.pages[PageIndex(addr)]
	return ok
}

// EnsurePage makes the page containing addr present (zero-filled if new)
// and returns it.
func (m *Memory) EnsurePage(addr uint64) *Page {
	idx := PageIndex(addr)
	p, ok := m.pages[idx]
	if !ok {
		p = new(Page)
		m.pages[idx] = p
	}
	return p
}

// Page returns the present page containing addr, or nil.
func (m *Memory) Page(addr uint64) *Page {
	return m.pages[PageIndex(addr)]
}

// DropPage removes the page containing addr (used when DSM invalidates or
// transfers ownership away).
func (m *Memory) DropPage(addr uint64) {
	delete(m.pages, PageIndex(addr))
	delete(m.ro, PageIndex(addr))
}

// InstallPage copies the given page content in at the page containing addr.
func (m *Memory) InstallPage(addr uint64, data *Page) {
	p := m.EnsurePage(addr)
	*p = *data
}

// PageCount returns the number of present pages.
func (m *Memory) PageCount() int { return len(m.pages) }

// PageIndices returns the indices of all present pages (unordered).
func (m *Memory) PageIndices() []uint64 {
	out := make([]uint64, 0, len(m.pages))
	for idx := range m.pages {
		out = append(out, idx)
	}
	return out
}

func (m *Memory) page(addr uint64, write bool) (*Page, error) {
	idx := PageIndex(addr)
	p, ok := m.pages[idx]
	if !ok {
		return nil, &FaultError{Addr: addr, Write: write}
	}
	if write && m.ro[idx] {
		return nil, &FaultError{Addr: addr, Write: true}
	}
	return p, nil
}

// ReadU64 reads the 8-byte little-endian value at addr. Unaligned accesses
// that straddle a page boundary are handled byte-wise.
func (m *Memory) ReadU64(addr uint64) (uint64, error) {
	off := addr & (PageSize - 1)
	if off <= PageSize-8 {
		p, err := m.page(addr, false)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(p[off : off+8 : off+8]), nil
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		b, err := m.ReadU8(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint64(b) << (8 * i)
	}
	return v, nil
}

// WriteU64 writes the 8-byte little-endian value at addr.
func (m *Memory) WriteU64(addr uint64, v uint64) error {
	off := addr & (PageSize - 1)
	if off <= PageSize-8 {
		p, err := m.page(addr, true)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(p[off:off+8:off+8], v)
		return nil
	}
	for i := uint64(0); i < 8; i++ {
		if err := m.WriteU8(addr+i, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// ReadU8 reads one byte at addr.
func (m *Memory) ReadU8(addr uint64) (byte, error) {
	p, err := m.page(addr, false)
	if err != nil {
		return 0, err
	}
	return p[addr&(PageSize-1)], nil
}

// WriteU8 writes one byte at addr.
func (m *Memory) WriteU8(addr uint64, v byte) error {
	p, err := m.page(addr, true)
	if err != nil {
		return err
	}
	p[addr&(PageSize-1)] = v
	return nil
}

// ReadF64 reads a float64 at addr.
func (m *Memory) ReadF64(addr uint64) (float64, error) {
	v, err := m.ReadU64(addr)
	return math.Float64frombits(v), err
}

// WriteF64 writes a float64 at addr.
func (m *Memory) WriteF64(addr uint64, f float64) error {
	return m.WriteU64(addr, math.Float64bits(f))
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := 0; i < n; {
		p, err := m.page(addr+uint64(i), false)
		if err != nil {
			return nil, err
		}
		off := (addr + uint64(i)) & (PageSize - 1)
		c := copy(out[i:], p[off:])
		i += c
	}
	return out, nil
}

// WriteBytes copies data into memory starting at addr, faulting in pages as
// needed via EnsurePage (used by loaders, not by simulated code).
func (m *Memory) WriteBytes(addr uint64, data []byte) {
	for i := 0; i < len(data); {
		p := m.EnsurePage(addr + uint64(i))
		off := (addr + uint64(i)) & (PageSize - 1)
		c := copy(p[off:], data[i:])
		i += c
	}
}

// ReadCString reads a NUL-terminated string of at most max bytes at addr.
func (m *Memory) ReadCString(addr uint64, max int) (string, error) {
	var buf []byte
	for i := 0; i < max; i++ {
		b, err := m.ReadU8(addr + uint64(i))
		if err != nil {
			return "", err
		}
		if b == 0 {
			break
		}
		buf = append(buf, b)
	}
	return string(buf), nil
}
