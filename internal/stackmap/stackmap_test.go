package stackmap

import (
	"strings"
	"testing"

	"heterodc/internal/ir"
	"heterodc/internal/isa"
)

func buildMap() *Map {
	m := NewMap(isa.X86)
	m.Add(&FuncInfo{
		Name: "alpha", Entry: 0x1000, Size: 0x100, FrameSize: 48,
		Saves: []SavedReg{
			{Reg: isa.RBX, Off: -8},
			{Reg: isa.R12, Off: -16},
			{Reg: 8, IsFloat: true, Off: -24},
		},
		CallSites: map[int]*CallSite{
			1: {ID: 1, RetPC: 0x1040, Live: []LiveValue{
				{VReg: 3, Type: ir.I64, Loc: Loc{Kind: InReg, Reg: isa.RBX}},
				{VReg: 5, Type: ir.Ptr, Loc: Loc{Kind: InFrame, Off: -32}},
			}},
			2: {ID: 2, RetPC: 0x10f0},
		},
	})
	m.Add(&FuncInfo{
		Name: "beta", Entry: 0x1100, Size: 0x40,
		CallSites: map[int]*CallSite{},
	})
	m.Seal()
	return m
}

func TestFuncAt(t *testing.T) {
	m := buildMap()
	if f := m.FuncAt(0x1000); f == nil || f.Name != "alpha" {
		t.Fatal("FuncAt entry")
	}
	if f := m.FuncAt(0x10ff); f == nil || f.Name != "alpha" {
		t.Fatal("FuncAt last byte")
	}
	if f := m.FuncAt(0x1100); f == nil || f.Name != "beta" {
		t.Fatal("FuncAt next function")
	}
	if m.FuncAt(0x0fff) != nil {
		t.Fatal("FuncAt before text")
	}
	if m.FuncAt(0x1140) != nil {
		t.Fatal("FuncAt past end")
	}
}

func TestSiteFor(t *testing.T) {
	m := buildMap()
	fi, cs, err := m.SiteFor(0x1040)
	if err != nil || fi.Name != "alpha" || cs.ID != 1 {
		t.Fatalf("SiteFor: %v %v %v", fi, cs, err)
	}
	if _, _, err := m.SiteFor(0x1041); err == nil {
		t.Fatal("SiteFor must reject a non-site pc")
	}
	if _, _, err := m.SiteFor(0x9000); err == nil || !strings.Contains(err.Error(), "no function") {
		t.Fatalf("SiteFor unmapped: %v", err)
	}
}

func TestSiteByRetPC(t *testing.T) {
	m := buildMap()
	fi := m.Funcs["alpha"]
	if cs := fi.SiteByRetPC(0x10f0); cs == nil || cs.ID != 2 {
		t.Fatal("SiteByRetPC")
	}
	if fi.SiteByRetPC(0x1) != nil {
		t.Fatal("SiteByRetPC bogus")
	}
}

func TestSaveOffset(t *testing.T) {
	fi := buildMap().Funcs["alpha"]
	if off, ok := fi.SaveOffset(isa.RBX, false); !ok || off != -8 {
		t.Fatalf("rbx save %d %v", off, ok)
	}
	if off, ok := fi.SaveOffset(8, true); !ok || off != -24 {
		t.Fatalf("float save %d %v", off, ok)
	}
	// Same number, wrong file.
	if _, ok := fi.SaveOffset(8, false); ok {
		t.Fatal("int/float save confusion")
	}
	if _, ok := fi.SaveOffset(isa.R15, false); ok {
		t.Fatal("unsaved register reported saved")
	}
}

func TestLocString(t *testing.T) {
	if s := (Loc{Kind: InReg, Reg: 3}).String(); s != "ireg:3" {
		t.Errorf("loc string %q", s)
	}
	if s := (Loc{Kind: InReg, Reg: 3, IsFloat: true}).String(); s != "freg:3" {
		t.Errorf("loc string %q", s)
	}
	if s := (Loc{Kind: InFrame, Off: -16}).String(); s != "fp-16" {
		t.Errorf("loc string %q", s)
	}
}
