// Package stackmap defines the compiler-generated metadata that the
// stack-transformation runtime consumes: per-call-site live-value locations
// and per-function frame-unwinding descriptions. It corresponds to the
// paper's LLVM stackmap records plus DWARF frame-unwinding information.
//
// The cross-ISA correlation key is the IR: call sites are identified by the
// IR call-site ID (identical in every backend) and live values by their IR
// virtual-register number (the live sets are computed once, on the IR,
// before per-ISA lowering diverges).
package stackmap

import (
	"fmt"
	"sort"

	"heterodc/internal/ir"
	"heterodc/internal/isa"
)

// LocKind says where a live value resides at a call site.
type LocKind int

const (
	// InReg: the value is in a callee-saved register. The runtime must find
	// where (or whether) that register was saved by walking down the call
	// chain, exactly as the paper describes.
	InReg LocKind = iota
	// InFrame: the value is in a frame slot at Off bytes from the frame
	// pointer (Off is negative; slots sit below the FP).
	InFrame
)

// Loc is one location.
type Loc struct {
	Kind    LocKind
	Reg     isa.Reg // valid when Kind == InReg
	IsFloat bool    // float register file / float slot
	Off     int64   // FP-relative offset when Kind == InFrame
}

// String renders the location for hdcinspect listings.
func (l Loc) String() string {
	if l.Kind == InReg {
		file := "i"
		if l.IsFloat {
			file = "f"
		}
		return fmt.Sprintf("%sreg:%d", file, int(l.Reg))
	}
	return fmt.Sprintf("fp%+d", l.Off)
}

// LiveValue is one live IR value at a call site with its per-ISA location.
type LiveValue struct {
	VReg int     // IR virtual register (cross-ISA key)
	Type ir.Type // Ptr values get stack-pointer fixup during migration
	Loc  Loc
}

// CallSite describes one call-like instruction.
type CallSite struct {
	// ID is the IR call-site ID, identical across ISAs.
	ID int
	// RetPC is the address of the instruction that executes when the callee
	// returns (the resume point after migration).
	RetPC uint64
	// Live lists the values live across this call, sorted by VReg.
	Live []LiveValue
}

// SavedReg records where the prologue saved one callee-saved register.
type SavedReg struct {
	Reg     isa.Reg
	IsFloat bool
	Off     int64 // FP-relative, negative
}

// FuncInfo is the per-function, per-ISA frame description (the DWARF-like
// unwind metadata). Both simulated ABIs maintain a frame-pointer chain with
// the invariant [FP] = caller's FP and [FP+8] = return address, so walking
// is uniform; everything else (frame size, save slots, alloca offsets,
// stack-argument positions) is per-ISA.
type FuncInfo struct {
	Name string
	// Entry and Size delimit the function's code on this ISA.
	Entry uint64
	Size  uint64
	// FrameSize is the byte distance from FP down to SP in the function's
	// steady state (after the prologue).
	FrameSize int64
	// Saves lists callee-saved register save slots, in prologue order.
	Saves []SavedReg
	// AllocaOffsets[i] is the FP-relative offset of IR alloca slot i.
	AllocaOffsets []int64
	// AllocaSizes[i] is the byte size of slot i (same on all ISAs).
	AllocaSizes []int64
	// AllocaPtr[i] marks slots that may hold pointer values; only these
	// get content pointer fixup during stack transformation.
	AllocaPtr []bool
	// StackParams maps IR parameter index -> FP-relative offset for
	// parameters passed on the stack (absent when passed in registers).
	StackParams map[int]int64
	// NumStackArgBytes is the outgoing stack-argument area size.
	NumStackArgBytes int64
	// CallSites, keyed by call-site ID.
	CallSites map[int]*CallSite
	// IsEntry marks functions that begin a thread (the unwinder stops when
	// it reaches one, signalled by a zero return address).
	IsEntry bool
	// NoMigrate marks runtime/library functions inside which migration is
	// not permitted (the paper's "cannot migrate during library code").
	NoMigrate bool
}

// SiteByRetPC finds the call site whose RetPC equals pc, or nil.
func (fi *FuncInfo) SiteByRetPC(pc uint64) *CallSite {
	for _, cs := range fi.CallSites {
		if cs.RetPC == pc {
			return cs
		}
	}
	return nil
}

// SaveOffset returns the FP-relative save slot of callee-saved register reg,
// or (0, false) if this function does not save it.
func (fi *FuncInfo) SaveOffset(reg isa.Reg, isFloat bool) (int64, bool) {
	for _, s := range fi.Saves {
		if s.Reg == reg && s.IsFloat == isFloat {
			return s.Off, true
		}
	}
	return 0, false
}

// Map is the full per-ISA metadata for one linked image.
type Map struct {
	Arch  isa.Arch
	Funcs map[string]*FuncInfo

	sortedEntries []uint64
	entryToFunc   map[uint64]*FuncInfo
}

// NewMap builds an empty metadata map for arch.
func NewMap(arch isa.Arch) *Map {
	return &Map{Arch: arch, Funcs: make(map[string]*FuncInfo)}
}

// Add registers fi.
func (m *Map) Add(fi *FuncInfo) { m.Funcs[fi.Name] = fi }

// Seal builds the PC lookup structures; call after all Add calls.
func (m *Map) Seal() {
	m.entryToFunc = make(map[uint64]*FuncInfo, len(m.Funcs))
	m.sortedEntries = m.sortedEntries[:0]
	for _, fi := range m.Funcs {
		m.entryToFunc[fi.Entry] = fi
		m.sortedEntries = append(m.sortedEntries, fi.Entry)
	}
	sort.Slice(m.sortedEntries, func(i, j int) bool {
		return m.sortedEntries[i] < m.sortedEntries[j]
	})
}

// FuncAt returns the function containing pc, or nil.
func (m *Map) FuncAt(pc uint64) *FuncInfo {
	i := sort.Search(len(m.sortedEntries), func(i int) bool {
		return m.sortedEntries[i] > pc
	})
	if i == 0 {
		return nil
	}
	fi := m.entryToFunc[m.sortedEntries[i-1]]
	if pc >= fi.Entry+fi.Size {
		return nil
	}
	return fi
}

// SiteFor returns the function and call site for a return address, or an
// error naming what was missing (the runtime treats this as a fatal
// metadata defect, as the paper's runtime would).
func (m *Map) SiteFor(retPC uint64) (*FuncInfo, *CallSite, error) {
	fi := m.FuncAt(retPC)
	if fi == nil {
		return nil, nil, fmt.Errorf("stackmap: no function contains pc %#x", retPC)
	}
	cs := fi.SiteByRetPC(retPC)
	if cs == nil {
		return nil, nil, fmt.Errorf("stackmap: %s has no call site returning to %#x", fi.Name, retPC)
	}
	return fi, cs, nil
}
