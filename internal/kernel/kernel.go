// Package kernel implements the replicated-kernel OS: one kernel per
// machine, each natively compiled for its ISA, sharing no data structures
// and interacting only via messages — the Popcorn Linux model the paper
// extends. Distributed services (hDSM, thread migration, the heterogeneous
// binary loader, a distributed filesystem view) present a single operating
// environment, the heterogeneous OS-container, to migrating applications.
package kernel

import (
	"container/heap"
	"fmt"

	"heterodc/internal/dsm"
	"heterodc/internal/isa"
	"heterodc/internal/machine"
	"heterodc/internal/mem"
	"heterodc/internal/sys"
)

// Quantum is the co-simulation time slice: each kernel advances in slices
// of this length, which bounds cross-machine clock skew.
const Quantum = 2e-6 // 2 µs

// DebugDSM enables fault tracing (tests only).
var DebugDSM = false

// Timeslice is the scheduler's preemption interval.
const Timeslice = 5e-3 // 5 ms

// coldFaultSeconds is the cost of a first-touch (zero-fill) fault.
const coldFaultSeconds = 0.8e-6

// dsmServiceCPUSeconds is the kernel CPU time charged per page transfer at
// each endpoint (the multithreaded hDSM service work visible in Figure 11's
// load spike).
const dsmServiceCPUSeconds = 3e-6

// Kernel is one machine's OS instance.
type Kernel struct {
	Node int
	Arch isa.Arch
	Desc *isa.Desc

	// costFn, when non-nil, overrides per-op cycle costs on every core
	// (DBT emulation / managed-runtime baselines).
	costFn func(isa.Op) int64

	cluster *Cluster

	cores []*coreSlot
	runq  []*Thread

	now      float64
	sleepers sleepHeap

	// Quanta counts executed scheduling quanta on this kernel. Each kernel
	// bumps only its own counter (single writer even under the parallel
	// engine); Cluster.Quanta sums them at a barrier.
	Quanta uint64

	// Accounting for the power model and load traces.
	BusySeconds    float64 // core-seconds spent executing threads
	ServiceSeconds float64 // core-seconds spent in kernel services (DSM)
	InstrsRetired  uint64
	CyclesRetired  int64

	// DSM traffic counters.
	PagesIn  uint64
	PagesOut uint64

	// MigrationsIn/Out count thread arrivals/departures.
	MigrationsIn  uint64
	MigrationsOut uint64
	// MigrationsAborted counts migrations aborted and rolled back onto this
	// (source) node: destination down at the migration point, transfer
	// retries exhausted, or destination crashed under an in-flight thread.
	MigrationsAborted uint64

	// down marks the node fail-stopped: it executes nothing and falls off
	// the interconnect until RecoverNode. Memory is preserved.
	down bool

	// slow is the gray-failure CPU slowdown factor for the current quantum
	// (1 when healthy). It is sampled from the fault injector at the top of
	// each quantum — a pure function of (node, time), so it adds no
	// engine hazard — and scales the effective clock: cycles retire slow
	// times slower, and accounting charges the inflated wall time.
	slow float64
}

// Down reports whether the node is currently crashed.
func (k *Kernel) Down() bool { return k.down }

type coreSlot struct {
	id   int
	core *machine.Core
	thr  *Thread
}

// newKernel builds a kernel with the ISA's reference core count.
func newKernel(cl *Cluster, node int, arch isa.Arch) *Kernel {
	return newKernelSpec(cl, node, MachineSpec{Arch: arch, Desc: isa.Describe(arch)})
}

// newKernelSpec builds a kernel from an explicit machine specification.
func newKernelSpec(cl *Cluster, node int, spec MachineSpec) *Kernel {
	d := spec.Desc
	if d == nil {
		d = isa.Describe(spec.Arch)
	}
	k := &Kernel{Node: node, Arch: spec.Arch, Desc: d, costFn: spec.CostFn, cluster: cl, slow: 1}
	for i := 0; i < d.Cores; i++ {
		c := machine.NewCore(d)
		c.CostFn = spec.CostFn
		slot := &coreSlot{id: i, core: c}
		// Kernel-owned migration-point hook: drives the checkpoint policy.
		// Experiments overwrite the instrumentation hooks, never this one.
		c.OnPointKernel = func() { k.pointTick(slot) }
		k.cores = append(k.cores, slot)
	}
	return k
}

// Now returns the kernel's local simulated time.
func (k *Kernel) Now() float64 { return k.now }

// Cores returns the number of cores.
func (k *Kernel) Cores() int { return len(k.cores) }

// BusyCores returns how many cores currently run a thread.
func (k *Kernel) BusyCores() int {
	n := 0
	for _, cs := range k.cores {
		if cs.thr != nil {
			n++
		}
	}
	return n
}

// RunnableLoad returns running plus queued threads (the scheduler policies'
// CPU-load signal).
func (k *Kernel) RunnableLoad() int { return k.BusyCores() + len(k.runq) }

func (k *Kernel) enqueue(t *Thread) {
	t.State = Ready
	k.runq = append(k.runq, t)
}

// sleep blocks t until wakeAt.
func (k *Kernel) sleep(t *Thread, wakeAt float64) {
	t.State = Sleeping
	t.wakeAt = wakeAt
	heap.Push(&k.sleepers, t)
}

// nextEventTime returns the earliest future event (sleeper wake or message
// delivery), or +inf.
func (k *Kernel) nextEventTime() float64 {
	t := inf
	if k.sleepers.Len() > 0 {
		t = k.sleepers[0].wakeAt
	}
	if d, ok := k.cluster.IC.NextDeliver(k.Node); ok && d < t {
		t = d
	}
	return t
}

const inf = 1e30

// step advances the kernel by one quantum: deliver due messages, wake due
// sleepers, dispatch, and run every busy core for the quantum.
func (k *Kernel) step() {
	k.Quanta++
	end := k.now + Quantum
	k.slow = k.cluster.slowAt(k.Node, k.now)

	// Deliver due messages.
	for {
		m := k.cluster.IC.PopDue(k.Node, end)
		if m == nil {
			break
		}
		k.handleMessage(m)
	}
	// Wake due sleepers.
	for k.sleepers.Len() > 0 && k.sleepers[0].wakeAt <= end {
		t := heap.Pop(&k.sleepers).(*Thread)
		if t.State == Sleeping {
			k.enqueue(t)
		}
	}
	// Dispatch ready threads onto idle cores.
	k.dispatch()

	// Run each busy core up to the end of the quantum.
	for _, cs := range k.cores {
		if cs.thr == nil {
			continue
		}
		k.runCore(cs, end)
	}
	k.now = end
}

// skipTo advances an idle kernel's clock without work.
func (k *Kernel) skipTo(t float64) {
	if t > k.now {
		k.now = t
	}
}

func (k *Kernel) dispatch() {
	for _, cs := range k.cores {
		if cs.thr != nil || len(k.runq) == 0 {
			continue
		}
		t := k.runq[0]
		k.runq = k.runq[1:]
		k.attach(cs, t)
	}
}

// attach loads thread state onto a core.
func (k *Kernel) attach(cs *coreSlot, t *Thread) {
	cs.thr = t
	t.State = Running
	t.sliceStart = k.now
	c := cs.core
	c.Prog = t.Proc.Img.Prog(k.Arch)
	c.Mem = t.Proc.Mems[k.Node]
	c.RegsI = t.Regs.I
	c.RegsF = t.Regs.F
	c.CurTID = t.Tid
	c.CurNode = int64(k.Node)
	if mc, ok := t.Proc.Img.FuncAddr[k.Arch]["__migrate_check"]; ok {
		c.MigrateCheckEntry = mc
	}
	if err := c.SetPC(t.PC); err != nil {
		// A thread with a wild PC is killed with its process.
		k.killProcess(t.Proc, fmt.Errorf("dispatch: %w", err))
		cs.thr = nil
		return
	}
	c.ResetPointCounters()
}

// detach saves core state back into the thread.
func (k *Kernel) detach(cs *coreSlot) {
	t := cs.thr
	c := cs.core
	t.Regs.I = c.RegsI
	t.Regs.F = c.RegsF
	t.PC = c.PC
	cs.thr = nil
}

// runCore executes cs.thr until the quantum ends or the thread leaves the
// core (block, exit, migrate, preempt).
func (k *Kernel) runCore(cs *coreSlot, end float64) {
	c := cs.core
	t := cs.thr
	// Effective clock under a gray CPU failure. Division by exactly 1.0 is
	// an IEEE identity, so the healthy path is bit-identical to the
	// pre-slowdown model.
	clock := k.Desc.ClockHz / k.slow
	start := k.now
	budget := int64((end - start) * clock) // cycles available this quantum
	c.Cycles = 0

	for budget > 0 {
		if c.Cycles >= budget {
			break
		}
		ev := c.Step()
		switch ev {
		case machine.EvNone:
			continue
		case machine.EvSyscall:
			budget -= c.Cycles
			k.accountCore(c)
			num, args := c.SyscallArgs()
			if k.syscall(cs, num, args) {
				// Thread left the core (blocked, exited, migrated).
				return
			}
		case machine.EvFault:
			budget -= c.Cycles
			k.accountCore(c)
			now := end - float64(budget)/clock
			stallUntil, err := k.handleFault(t, c.FaultAddr, c.FaultWrite, now)
			if err != nil {
				k.detach(cs)
				k.killProcess(t.Proc, err)
				return
			}
			if stallUntil > 0 {
				// Block until the page arrives; the instruction will
				// re-execute on wake.
				k.detach(cs)
				k.sleep(t, stallUntil)
				return
			}
			// Cold fault: resolved in place; charge its cost as cycles.
			c.Cycles += int64(coldFaultSeconds * clock)
		case machine.EvError:
			k.accountCore(c)
			k.detach(cs)
			k.killProcess(t.Proc, c.Err)
			return
		}
	}
	// Quantum exhausted. Timeslice check.
	k.accountCore(c)
	if end-t.sliceStart >= Timeslice && len(k.runq) > 0 {
		k.detach(cs)
		k.enqueue(t)
	}
}

// accountCore accrues busy time and retirement counters and resets the
// core's slice counter.
func (k *Kernel) accountCore(c *machine.Core) {
	// Wall time per cycle inflates with the slowdown factor (multiplying
	// by exactly 1.0 keeps the healthy path bit-identical). The cycle and
	// instruction counters stay nominal: a degraded node retires the same
	// work, just slower — which is precisely the retire-rate signature the
	// health monitor scores.
	seconds := float64(c.Cycles) * k.slow / k.Desc.ClockHz
	k.BusySeconds += seconds
	k.CyclesRetired += c.Cycles
	k.InstrsRetired = c.Instrs
	c.Cycles = 0
}

// stackGuardPage reports whether addr falls in the guard page at the
// bottom of a stack half: touching it means the thread overflowed its
// stack (or, before the guard, would have corrupted a neighbouring
// thread's window).
func stackGuardPage(addr uint64) bool {
	if addr < mem.StackRegion || addr >= mem.StackRegion+mem.MaxThreads*mem.StackWindow {
		return false
	}
	offInHalf := (addr - mem.StackRegion) % mem.StackHalf
	return offInHalf < mem.PageSize
}

// handleFault resolves a DSM fault. Returns a wake time (>0) if the thread
// must sleep for a page transfer, or 0 for an in-place (cold/upgrade)
// resolution.
func (k *Kernel) handleFault(t *Thread, addr uint64, write bool, now float64) (float64, error) {
	if stackGuardPage(addr) {
		return 0, fmt.Errorf("kernel: stack overflow: tid %d touched guard page at %#x", t.Tid, addr)
	}
	p := t.Proc
	page := mem.PageIndex(addr)
	act, err := p.Space.Fault(k.Node, page, write)
	if err != nil {
		return 0, fmt.Errorf("kernel: node %d tid %d addr %#x: %w", k.Node, t.Tid, addr, err)
	}
	base := page << mem.PageShift

	if act.Cold {
		p.Mems[k.Node].EnsurePage(base)
		if DebugDSM {
			fmt.Printf("dsm: node%d COLD %#x write=%v\n", k.Node, base, write)
		}
		return 0, nil
	}

	// Copy the page content BEFORE applying Drop directives — the owner's
	// copy is the content source and Drop destroys it.
	var snapshot *mem.Page
	if act.TransferFrom >= 0 {
		if src := p.Mems[act.TransferFrom].Page(base); src != nil {
			cp := *src
			snapshot = &cp
		}
	}
	// Apply protection changes at the other copies now (content freezes).
	k.applyDSM(p, act, base)

	if act.TransferFrom >= 0 {
		if DebugDSM {
			fmt.Printf("dsm: node%d XFER %#x from node%d write=%v grant=%d\n", k.Node, base, act.TransferFrom, write, act.Grant)
		}
		// Install the copied content and charge a request/reply round trip.
		dst := p.Mems[k.Node].EnsurePage(base)
		if snapshot != nil {
			*dst = *snapshot
		}
		if act.Grant == dsm.Shared {
			p.Mems[k.Node].Protect(base)
		} else {
			p.Mems[k.Node].Unprotect(base)
		}
		k.PagesIn++
		k.cluster.Kernels[act.TransferFrom].PagesOut++
		// hDSM service CPU work at both endpoints.
		k.ServiceSeconds += dsmServiceCPUSeconds
		k.cluster.Kernels[act.TransferFrom].ServiceSeconds += dsmServiceCPUSeconds
		rtt, ok := k.cluster.IC.ReliableRTT(now, k.Node, act.TransferFrom, mem.PageSize)
		if !ok {
			return 0, fmt.Errorf("kernel: node %d: page %#x unreachable: owner node %d unresponsive", k.Node, base, act.TransferFrom)
		}
		return now + rtt, nil
	}

	// Upgrade in place (Shared -> Exclusive): invalidation round trip with
	// the nearest copy holder (or the origin's directory), no data transfer.
	p.Mems[k.Node].Unprotect(base)
	rtt, ok := k.cluster.IC.ReliableRTT(now, k.Node, dsmPeer(act, p, k.Node), 0)
	if !ok {
		return 0, fmt.Errorf("kernel: node %d: invalidation for page %#x lost: peer unresponsive", k.Node, base)
	}
	return now + rtt, nil
}

// dsmPeer picks the remote endpoint an invalidation round trip talks to:
// a node losing its copy if any, else the origin's directory authority.
// With no remote party involved the exchange is local and free of faults.
func dsmPeer(act dsm.Action, p *Process, self int) int {
	for _, n := range act.Drop {
		if n != self {
			return n
		}
	}
	for _, n := range act.Protect {
		if n != self {
			return n
		}
	}
	if p.Origin != self {
		return p.Origin
	}
	return self
}

// applyDSM applies Drop/Protect directives to other nodes' copies.
func (k *Kernel) applyDSM(p *Process, act dsm.Action, base uint64) {
	for _, n := range act.Drop {
		p.Mems[n].DropPage(base)
	}
	for _, n := range act.Protect {
		p.Mems[n].Protect(base)
	}
}

// killProcess terminates every thread of p on every kernel.
func (k *Kernel) killProcess(p *Process, err error) {
	if p.exited {
		return
	}
	p.exited = true
	p.exitCode = -1
	p.exitTime = k.now
	p.failErr = err
	k.cluster.reapProcess(p)
}

// --- sleep heap ---

type sleepHeap []*Thread

func (h sleepHeap) Len() int            { return len(h) }
func (h sleepHeap) Less(i, j int) bool  { return h[i].wakeAt < h[j].wakeAt }
func (h sleepHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *sleepHeap) Push(x interface{}) { *h = append(*h, x.(*Thread)) }
func (h *sleepHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

// --- kernel-side synchronous memory (loader, transformer) ---

// kmem is the kernel's synchronous view of a process address space: reads
// and writes resolve DSM faults inline, accumulating the transfer latency
// in Lat (charged to the calling thread by the service that uses it).
type kmem struct {
	k   *Kernel
	p   *Process
	Lat float64
}

func (m *kmem) resolve(addr uint64, write bool) error {
	page := mem.PageIndex(addr)
	act, err := m.p.Space.Fault(m.k.Node, page, write)
	if err != nil {
		return err
	}
	base := page << mem.PageShift
	if act.Cold {
		m.p.Mems[m.k.Node].EnsurePage(base)
		m.Lat += coldFaultSeconds
		return nil
	}
	var snapshot *mem.Page
	if act.TransferFrom >= 0 {
		if src := m.p.Mems[act.TransferFrom].Page(base); src != nil {
			cp := *src
			snapshot = &cp
		}
	}
	m.k.applyDSM(m.p, act, base)
	now := m.k.now + m.Lat
	if act.TransferFrom >= 0 {
		dst := m.p.Mems[m.k.Node].EnsurePage(base)
		if snapshot != nil {
			*dst = *snapshot
		}
		m.k.PagesIn++
		m.k.cluster.Kernels[act.TransferFrom].PagesOut++
		rtt, ok := m.k.cluster.IC.ReliableRTT(now, m.k.Node, act.TransferFrom, mem.PageSize)
		if !ok {
			return fmt.Errorf("kernel: page %#x unreachable: owner node %d unresponsive", base, act.TransferFrom)
		}
		m.Lat += rtt
	} else {
		rtt, ok := m.k.cluster.IC.ReliableRTT(now, m.k.Node, dsmPeer(act, m.p, m.k.Node), 0)
		if !ok {
			return fmt.Errorf("kernel: invalidation for page %#x lost: peer unresponsive", base)
		}
		m.Lat += rtt
	}
	if act.Grant == dsm.Shared {
		m.p.Mems[m.k.Node].Protect(base)
	} else {
		m.p.Mems[m.k.Node].Unprotect(base)
	}
	return nil
}

// ReadU64 implements xform.MemIO.
func (m *kmem) ReadU64(addr uint64) (uint64, error) {
	for {
		v, err := m.p.Mems[m.k.Node].ReadU64(addr)
		if err == nil {
			return v, nil
		}
		fe, ok := err.(*mem.FaultError)
		if !ok {
			return 0, err
		}
		if rerr := m.resolve(fe.Addr, fe.Write); rerr != nil {
			return 0, rerr
		}
	}
}

// WriteU64 implements xform.MemIO.
func (m *kmem) WriteU64(addr uint64, v uint64) error {
	for {
		err := m.p.Mems[m.k.Node].WriteU64(addr, v)
		if err == nil {
			return nil
		}
		fe, ok := err.(*mem.FaultError)
		if !ok {
			return err
		}
		if rerr := m.resolve(fe.Addr, fe.Write); rerr != nil {
			return rerr
		}
	}
}

// ReadBytes reads n bytes, resolving faults.
func (m *kmem) ReadBytes(addr uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		for {
			b, err := m.p.Mems[m.k.Node].ReadU8(addr + uint64(i))
			if err == nil {
				out[i] = b
				break
			}
			fe := err.(*mem.FaultError)
			if rerr := m.resolve(fe.Addr, fe.Write); rerr != nil {
				return nil, rerr
			}
		}
	}
	return out, nil
}

// WriteBytes writes data, resolving faults.
func (m *kmem) WriteBytes(addr uint64, data []byte) error {
	for i := range data {
		for {
			err := m.p.Mems[m.k.Node].WriteU8(addr+uint64(i), data[i])
			if err == nil {
				break
			}
			fe := err.(*mem.FaultError)
			if rerr := m.resolve(fe.Addr, fe.Write); rerr != nil {
				return rerr
			}
		}
	}
	return nil
}

// vdsoSetFlag writes thread tid's migration-request word on this kernel's
// local vDSO copy.
func (k *Kernel) vdsoSetFlag(p *Process, tid int64, val int64) {
	addr := sys.MigrationFlagAddr(tid)
	// The vDSO page is always present locally.
	if err := p.Mems[k.Node].WriteU64(addr, uint64(val)); err != nil {
		panic(fmt.Sprintf("kernel: vdso write failed: %v", err))
	}
}

// InstrumentCalls installs the Valgrind-style analysis hooks on every core:
// onAnyCall fires at each function call with the instruction count since
// the previous call; onMigratePoint fires at each executed migration point
// with the count since the previous point (Figures 3-5).
func (k *Kernel) InstrumentCalls(onAnyCall, onMigratePoint func(uint64)) {
	for _, cs := range k.cores {
		cs.core.OnAnyCall = onAnyCall
		cs.core.OnMigratePoint = onMigratePoint
	}
}

// CacheStats sums instruction- and data-cache accesses/misses over cores.
func (k *Kernel) CacheStats() (iAcc, iMiss, dAcc, dMiss uint64) {
	for _, cs := range k.cores {
		iAcc += cs.core.ICache.Accesses
		iMiss += cs.core.ICache.Misses
		dAcc += cs.core.DCache.Accesses
		dMiss += cs.core.DCache.Misses
	}
	return
}

// InstrumentPointAttr installs a per-migration-point attribution hook on
// every core (experiment diagnostics).
func (k *Kernel) InstrumentPointAttr(fn func(string)) {
	for _, cs := range k.cores {
		cs.core.OnMigratePointAt = fn
	}
}

// InstrumentProfile attaches a per-function instruction profile map to all
// cores (diagnostics).
func (k *Kernel) InstrumentProfile(m map[string]uint64) {
	for _, cs := range k.cores {
		cs.core.InstrProfile = m
	}
}
