// External test package so the tests can drive the kernel through the core
// facade without an import cycle.
package kernel_test

import (
	"strings"
	"testing"

	"heterodc/internal/core"
	"heterodc/internal/isa"
	"heterodc/internal/kernel"
)

func runSrc(t *testing.T, src string, node int) *core.Result {
	t.Helper()
	img, err := core.Build("t", core.Src("t.c", src))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := core.Run(img, node)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestFilesystemSyscalls(t *testing.T) {
	src := `
long main(void) {
	long fd = open("out.txt", 2); // O_CREATE
	write(fd, "hello fs", 8);
	close(fd);

	long rfd = open("out.txt", 0);
	char buf[16];
	long n = read(rfd, buf, 16);
	buf[n] = 0;
	close(rfd);
	print_str(buf);
	println();
	print_i64_ln(n);
	// Missing file without O_CREATE fails.
	print_i64_ln(open("missing", 0));
	return 0;
}`
	res := runSrc(t, src, core.NodeX86)
	want := "hello fs\n8\n-1\n"
	if string(res.Output) != want {
		t.Fatalf("fs output %q, want %q", res.Output, want)
	}
}

func TestFilesystemPrepopulated(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", `
long main(void) {
	long fd = open("input.dat", 0);
	char buf[32];
	long n = read(fd, buf, 32);
	buf[n] = 0;
	print_str(buf);
	return 0;
}`))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	fs := kernel.NewFS()
	fs.AddFile("input.dat", []byte("prefilled"))
	p, err := cl.SpawnWithFS(img, core.NodeX86, fs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Wait(cl, p)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "prefilled" {
		t.Fatalf("got %q", res.Output)
	}
}

func TestRemoteFilesystemAfterMigration(t *testing.T) {
	// The container sees the same files after moving to the other kernel
	// (the FS authority stays at the origin; remote ops are charged a round
	// trip).
	src := `
long main(void) {
	long fd = open("shared.txt", 2);
	write(fd, "before", 6);
	close(fd);
	migrate(1);
	long rfd = open("shared.txt", 0);
	char buf[16];
	long n = read(rfd, buf, 16);
	buf[n] = 0;
	print_str(buf);
	print_i64_ln(getnode());
	return 0;
}`
	res := runSrc(t, src, core.NodeX86)
	if string(res.Output) != "before1\n" {
		t.Fatalf("got %q", res.Output)
	}
}

func TestSbrkGrowsHeap(t *testing.T) {
	src := `
long main(void) {
	long a = __syscall(3, 4096);
	long b = __syscall(3, 4096);
	print_i64_ln(b - a);
	long *p = (long*)a;
	p[0] = 11;
	p[511] = 22;
	print_i64_ln(p[0] + p[511]);
	return 0;
}`
	res := runSrc(t, src, core.NodeARM)
	if string(res.Output) != "4096\n33\n" {
		t.Fatalf("got %q", res.Output)
	}
}

func TestSpawnJoinReturnsValue(t *testing.T) {
	src := `
long worker(long arg) { return arg * arg; }
long main(void) {
	long t1 = spawn(worker, 9);
	long t2 = spawn(worker, 4);
	print_i64_ln(join(t1) + join(t2));
	return 0;
}`
	res := runSrc(t, src, core.NodeX86)
	if string(res.Output) != "97\n" {
		t.Fatalf("got %q", res.Output)
	}
}

func TestJoinBogusTid(t *testing.T) {
	src := `long main(void){ print_i64_ln(join(99)); print_i64_ln(join(gettid())); return 0; }`
	res := runSrc(t, src, core.NodeX86)
	if string(res.Output) != "-1\n-1\n" {
		t.Fatalf("got %q", res.Output)
	}
}

func TestTimeslicePreemption(t *testing.T) {
	// More threads than ARM cores (8): all must make progress.
	src := `
long done[16];
long worker(long tid) {
	double acc = 0.0;
	for (long i = 0; i < 30000; i++) acc += sqrt((double)(i + tid));
	done[tid] = 1 + (long)(acc * 0.0);
	return 0;
}
long main(void) {
	long tids[12];
	for (long i = 0; i < 12; i++) tids[i] = spawn(worker, i);
	for (long i = 0; i < 12; i++) join(tids[i]);
	long total = 0;
	for (long i = 0; i < 16; i++) total += done[i];
	print_i64_ln(total);
	return 0;
}`
	res := runSrc(t, src, core.NodeARM)
	if string(res.Output) != "12\n" {
		t.Fatalf("got %q", res.Output)
	}
}

func TestExitCodePropagates(t *testing.T) {
	res := runSrc(t, `long main(void){ return 42; }`, core.NodeX86)
	if res.ExitCode != 42 {
		t.Fatalf("exit %d", res.ExitCode)
	}
}

func TestDivByZeroKillsProcess(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", `
long zero = 0;
long main(void){ return 1 / zero; }`))
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Run(img, core.NodeX86)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("expected division error, got %v", err)
	}
}

func TestGettimeMonotonic(t *testing.T) {
	src := `
long main(void) {
	long t1 = gettime_ns();
	double acc = 0.0;
	for (long i = 0; i < 10000; i++) acc += sqrt((double)i);
	long t2 = gettime_ns();
	print_i64_ln(t2 > t1);
	return (long)(acc * 0.0);
}`
	res := runSrc(t, src, core.NodeX86)
	if string(res.Output) != "1\n" {
		t.Fatalf("got %q", res.Output)
	}
}

func TestXrandDeterministic(t *testing.T) {
	src := `long main(void){ print_i64_ln(xrand() ^ xrand() ^ xrand()); return 0; }`
	a := runSrc(t, src, core.NodeX86)
	b := runSrc(t, src, core.NodeX86)
	if string(a.Output) != string(b.Output) {
		t.Fatal("xrand not deterministic across runs")
	}
	c := runSrc(t, src, core.NodeARM)
	if string(a.Output) != string(c.Output) {
		t.Fatal("xrand not deterministic across ISAs")
	}
}

func TestNcoresPerMachine(t *testing.T) {
	src := `long main(void){ print_i64_ln(ncores()); return 0; }`
	if got := string(runSrc(t, src, core.NodeX86).Output); got != "6\n" {
		t.Fatalf("x86 ncores %q", got)
	}
	if got := string(runSrc(t, src, core.NodeARM).Output); got != "8\n" {
		t.Fatalf("arm ncores %q", got)
	}
}

func TestMachineSpecClusterRuns(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", `long main(void){ print_i64_ln(getnode()); return 0; }`))
	if err != nil {
		t.Fatal(err)
	}
	cl := kernel.NewClusterSpec([]kernel.MachineSpec{
		{Arch: isa.ARM64},
		{Arch: isa.ARM64},
	}, kernel.DefaultInterconnect())
	p, err := cl.Spawn(img, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RunProcess(p); err != nil {
		t.Fatal(err)
	}
	if string(p.Output()) != "1\n" {
		t.Fatalf("got %q", p.Output())
	}
}

func TestDSMStatsExposed(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", `
long g = 1;
long main(void){
	migrate(1);
	g = g + 1;      // pulls the data page to node 1
	print_i64_ln(g);
	return 0;
}`))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RunProcess(p); err != nil {
		t.Fatal(err)
	}
	if cl.Kernels[1].PagesIn == 0 {
		t.Error("no pages pulled to node 1 after migration")
	}
	if cl.Kernels[1].MigrationsIn != 1 {
		t.Errorf("migrations in = %d", cl.Kernels[1].MigrationsIn)
	}
}

func TestRunnableLoadAndBusyCores(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", `
long worker(long arg) {
	double acc = 0.0;
	for (long i = 0; i < 200000; i++) acc += sqrt((double)i);
	return (long)acc;
}
long main(void) {
	long t1 = spawn(worker, 1);
	long t2 = spawn(worker, 2);
	join(t1); join(t2);
	return 0;
}`))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	peak := 0
	for {
		if done, _ := p.Exited(); done {
			break
		}
		if l := cl.Kernels[0].RunnableLoad(); l > peak {
			peak = l
		}
		if !cl.Step() {
			t.Fatal("drained")
		}
	}
	if peak < 2 {
		t.Errorf("peak runnable load %d, want >= 2", peak)
	}
	if cl.Kernels[0].BusySeconds <= 0 {
		t.Error("no busy time accounted")
	}
}

func TestStackOverflowKillsProcess(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", `
long blow(long n) {
	long pad[64]; // 512 B per frame
	pad[0] = n;
	return blow(n + 1) + pad[0];
}
long main(void){ return blow(0); }`))
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Run(img, core.NodeX86)
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("expected stack-overflow kill, got %v", err)
	}
}
