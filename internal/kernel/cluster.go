package kernel

import (
	"fmt"

	"heterodc/internal/isa"
	"heterodc/internal/link"
	"heterodc/internal/msg"
)

// Cluster is the whole testbed: one kernel per machine plus the
// interconnect. It co-simulates the kernels in time order with bounded
// skew, which is how the replicated-kernel OS's distributed services stay
// causally consistent.
type Cluster struct {
	Kernels []*Kernel
	IC      *msg.Interconnect

	nextPid int
	procs   []*Process

	// OnMigration observes completed thread migrations.
	OnMigration func(MigrationEvent)
	// OnAdvance observes the advancing safe time frontier (min kernel
	// clock); the power tracer samples on it.
	OnAdvance func(frontier float64)

	lastFrontier float64
}

// NewCluster builds a cluster with one kernel per listed architecture,
// joined by the given interconnect configuration.
func NewCluster(arches []isa.Arch, cfg msg.Config) *Cluster {
	cl := &Cluster{IC: msg.New(cfg)}
	for i, a := range arches {
		cl.Kernels = append(cl.Kernels, newKernel(cl, i, a))
	}
	return cl
}

// MachineSpec describes one machine of a custom cluster: the ISA it
// executes, a timing description (which may hybridise guest semantics with
// host timing, as the DBT-emulation baseline does) and an optional per-op
// cost override.
type MachineSpec struct {
	Arch   isa.Arch
	Desc   *isa.Desc
	CostFn func(isa.Op) int64
}

// NewClusterSpec builds a cluster from explicit machine specifications.
func NewClusterSpec(specs []MachineSpec, cfg msg.Config) *Cluster {
	cl := &Cluster{IC: msg.New(cfg)}
	for i, s := range specs {
		cl.Kernels = append(cl.Kernels, newKernelSpec(cl, i, s))
	}
	return cl
}

// NewTestbed builds the paper's evaluation pair: node 0 is the x86 server
// (Xeon E5-1650 v2 flavour), node 1 the ARM server (X-Gene 1 flavour),
// joined by the Dolphin PCIe interconnect model.
func NewTestbed() *Cluster {
	return NewCluster([]isa.Arch{isa.X86, isa.ARM64}, msg.DolphinPXH810())
}

// Time returns the cluster's safe time frontier (min kernel clock).
func (cl *Cluster) Time() float64 {
	t := inf
	for _, k := range cl.Kernels {
		if k.now < t {
			t = k.now
		}
	}
	if t >= inf {
		return 0
	}
	return t
}

// Spawn loads img as a new process whose main thread starts on node.
// The returned process runs as the cluster is stepped.
func (cl *Cluster) Spawn(img *link.Image, node int) (*Process, error) {
	return cl.SpawnWithFS(img, node, nil)
}

// SpawnWithFS is Spawn with a pre-populated container filesystem.
func (cl *Cluster) SpawnWithFS(img *link.Image, node int, fs *FS) (*Process, error) {
	if node < 0 || node >= len(cl.Kernels) {
		return nil, fmt.Errorf("kernel: no node %d", node)
	}
	p, err := cl.newProcess(img, node, fs)
	if err != nil {
		return nil, err
	}
	if _, err := p.newThread(cl, node, "__start"); err != nil {
		return nil, err
	}
	cl.procs = append(cl.procs, p)
	return p, nil
}

// readyTime returns when k can next make progress, or inf.
func (k *Kernel) readyTime() float64 {
	for _, cs := range k.cores {
		if cs.thr != nil {
			return k.now
		}
	}
	if len(k.runq) > 0 {
		return k.now
	}
	e := k.nextEventTime()
	if e < inf {
		if e < k.now {
			return k.now
		}
		return e
	}
	return inf
}

// Step advances the cluster by one kernel quantum. It returns false when no
// kernel can ever make progress again (all work drained).
func (cl *Cluster) Step() bool {
	var best *Kernel
	bestT := inf
	for _, k := range cl.Kernels {
		if t := k.readyTime(); t < bestT {
			bestT = t
			best = k
		}
	}
	if best == nil || bestT >= inf {
		return false
	}
	best.skipTo(bestT)
	best.step()
	// Drag fully idle kernels forward so the time frontier advances (their
	// idle power is still integrated over the skipped span).
	for _, k := range cl.Kernels {
		if k != best && k.readyTime() >= inf && k.now < best.now {
			k.skipTo(best.now)
		}
	}
	if f := cl.Time(); f > cl.lastFrontier {
		cl.lastFrontier = f
		if cl.OnAdvance != nil {
			cl.OnAdvance(f)
		}
	}
	return true
}

// Run steps the cluster until the frontier passes `until` seconds or work
// drains. It returns the frontier time.
func (cl *Cluster) Run(until float64) float64 {
	for cl.Time() < until {
		if !cl.Step() {
			break
		}
	}
	return cl.Time()
}

// RunProcess steps the cluster until p exits and returns its exit code.
func (cl *Cluster) RunProcess(p *Process) (int64, error) {
	for {
		exited, code := p.Exited()
		if exited {
			if p.failErr != nil {
				return code, p.failErr
			}
			return code, nil
		}
		if !cl.Step() {
			return -1, fmt.Errorf("kernel: cluster drained before process %d exited (deadlock?)", p.Pid)
		}
	}
}

// reapProcess tears down all of p's threads on every kernel.
func (cl *Cluster) reapProcess(p *Process) {
	for _, t := range p.threads {
		t.State = Exited
	}
	p.liveThreads = 0
	for _, k := range cl.Kernels {
		// Clear run queues.
		var rq []*Thread
		for _, t := range k.runq {
			if t.Proc != p {
				rq = append(rq, t)
			}
		}
		k.runq = rq
		// Free cores.
		for _, cs := range k.cores {
			if cs.thr != nil && cs.thr.Proc == p {
				cs.thr = nil
			}
		}
		// Sleepers are reaped lazily: their State is Exited, so the wake
		// path drops them.
	}
}

// DefaultInterconnect exposes the testbed interconnect configuration for
// single-machine clusters (where it is unused but required).
func DefaultInterconnect() msg.Config { return msg.DolphinPXH810() }

// AdvanceTo skips every kernel's clock forward to t (bounded by the
// earliest pending event, which must still be processed by stepping) and
// fires the frontier hook. Used by workload drivers to model idle gaps
// between job arrivals; idle power integrates over the skipped span.
func (cl *Cluster) AdvanceTo(t float64) {
	bound := t
	for _, k := range cl.Kernels {
		if e := k.nextEventTime(); e < bound {
			bound = e
		}
	}
	for _, k := range cl.Kernels {
		k.skipTo(bound)
	}
	if f := cl.Time(); f > cl.lastFrontier {
		cl.lastFrontier = f
		if cl.OnAdvance != nil {
			cl.OnAdvance(f)
		}
	}
}
