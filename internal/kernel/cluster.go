package kernel

import (
	"fmt"
	"sort"
	"sync"

	"heterodc/internal/fault"
	"heterodc/internal/isa"
	"heterodc/internal/link"
	"heterodc/internal/msg"
	"heterodc/internal/sim"
)

// Cluster is the whole testbed: one kernel per machine plus the
// interconnect. It co-simulates the kernels in time order with bounded
// skew, which is how the replicated-kernel OS's distributed services stay
// causally consistent.
type Cluster struct {
	Kernels []*Kernel
	IC      *msg.Interconnect

	nextPid int
	procs   []*Process

	// OnMigration observes completed thread migrations.
	OnMigration func(MigrationEvent)
	// OnCheckpoint observes completed process checkpoints (the ckpt service
	// encodes and retains the snapshot).
	OnCheckpoint func(CheckpointEvent)
	// OnProcessLost fires when a permanent node crash (no scheduled
	// recovery) strands a live process: threads, exclusive pages or its
	// origin authority on the dead node. The process has already been
	// killed with ErrNodeLost; a handler may restore a fresh incarnation
	// from its latest checkpoint. With no handler installed, stranded
	// processes keep PR 1's freeze semantics (work is simply lost).
	OnProcessLost func(p *Process, node int)
	// OnAdvance observes the advancing safe time frontier (min kernel
	// clock); the power tracer samples on it.
	OnAdvance func(frontier float64)

	// Tracer, when set, receives fault/retry/recovery events. Install it
	// with SetTracer so the interconnect shares it.
	Tracer msg.EventSink

	faults *fault.Injector
	// events[node] is node's time-sorted crash/recovery schedule;
	// eventIdx[node] the next unapplied entry. Per-node lists keep control
	// events group-local under the parallel engine.
	events   [][]nodeEvent
	eventIdx []int

	// member is the installed membership service (nil: failure is read from
	// the NodeDown oracle as before). incarnation[node] is the node's
	// current incarnation (starts at 1, bumped when it rejoins after a
	// declared death); deadInc[node] the highest incarnation declared dead
	// by a detector (0: never). messagesFenced[node] counts deliveries to
	// node dropped by the incarnation fence; staleUnfenced[node] counts
	// stale-incarnation messages delivered anyway (structurally zero,
	// asserted by chaos experiments). The counters are sharded by receiving
	// node so the fence stays group-local under the parallel engine;
	// FenceStats sums them at a barrier.
	member         Membership
	incarnation    []uint64
	deadInc        []uint64
	messagesFenced []uint64
	staleUnfenced  []uint64

	// timer is the installed TimerSource (nil: none), the open-loop traffic
	// driver's hookup into the engine's control-event stream; see timer.go.
	timer TimerSource

	lastFrontier float64

	// eng is the attached time engine; nil lazily selects the sequential
	// reference engine, preserving the original Step/Run semantics.
	eng sim.Engine
	// cbMu serialises user observer callbacks (OnMigration, OnCheckpoint)
	// that may fire concurrently from different sharing groups.
	cbMu sync.Mutex
	// parGroups is true while the parallel engine runs more than one
	// sharing group; groupOf[node] is the node's group id for the current
	// epoch. The migration service uses them to refuse (deterministically)
	// a direct cross-group migrate() syscall — impossible for the vDSO
	// request path, whose pending targets join the sharing set first.
	parGroups bool
	groupOf   []int

	// Groups() scratch, reused across barriers so the per-epoch partition
	// allocates nothing in steady state (barriers run every epoch; the
	// garbage otherwise dominates the parallel engine's allocation profile).
	ufParent   []int
	ufMark     []bool
	ufIdx      []int
	ufFirstDom []int
	ufMulti    []bool
	domAnchor  []int
	groupArena []int
	groupList  [][]int
	// Union state threaded through ufUnion as fields rather than closure
	// captures: per-window closures are the one allocation the partition
	// would otherwise make. pendingVisit/gpVisit are built once and reused;
	// ufOnMerge is non-nil only during a GroupReport.
	ufLayer      string
	ufOnMerge    func(layer string, a, b int)
	pendingVisit func(*msg.Message)
	gpVisit      func(int)
	gpTo         int
}

// nodeEvent is a scheduled crash or recovery transition from a fault plan.
type nodeEvent struct {
	time float64
	node int
	down bool
}

// NewCluster builds a cluster with one kernel per listed architecture,
// joined by the given interconnect configuration.
func NewCluster(arches []isa.Arch, cfg msg.Config) *Cluster {
	cl := &Cluster{IC: msg.New(cfg)}
	for i, a := range arches {
		cl.Kernels = append(cl.Kernels, newKernel(cl, i, a))
	}
	cl.IC.Grow(len(cl.Kernels))
	cl.initMembership()
	return cl
}

// MachineSpec describes one machine of a custom cluster: the ISA it
// executes, a timing description (which may hybridise guest semantics with
// host timing, as the DBT-emulation baseline does) and an optional per-op
// cost override.
type MachineSpec struct {
	Arch   isa.Arch
	Desc   *isa.Desc
	CostFn func(isa.Op) int64
}

// NewClusterSpec builds a cluster from explicit machine specifications.
func NewClusterSpec(specs []MachineSpec, cfg msg.Config) *Cluster {
	cl := &Cluster{IC: msg.New(cfg)}
	for i, s := range specs {
		cl.Kernels = append(cl.Kernels, newKernelSpec(cl, i, s))
	}
	cl.IC.Grow(len(cl.Kernels))
	cl.initMembership()
	return cl
}

// NewTestbed builds the paper's evaluation pair: node 0 is the x86 server
// (Xeon E5-1650 v2 flavour), node 1 the ARM server (X-Gene 1 flavour),
// joined by the Dolphin PCIe interconnect model.
func NewTestbed() *Cluster {
	return NewCluster([]isa.Arch{isa.X86, isa.ARM64}, msg.DolphinPXH810())
}

// Time returns the cluster's safe time frontier (min kernel clock).
func (cl *Cluster) Time() float64 {
	t := inf
	for _, k := range cl.Kernels {
		if k.now < t {
			t = k.now
		}
	}
	if t >= inf {
		return 0
	}
	return t
}

// Spawn loads img as a new process whose main thread starts on node.
// The returned process runs as the cluster is stepped.
func (cl *Cluster) Spawn(img *link.Image, node int) (*Process, error) {
	return cl.SpawnWithFS(img, node, nil)
}

// SpawnWithFS is Spawn with a pre-populated container filesystem.
func (cl *Cluster) SpawnWithFS(img *link.Image, node int, fs *FS) (*Process, error) {
	if node < 0 || node >= len(cl.Kernels) {
		return nil, fmt.Errorf("kernel: no node %d", node)
	}
	p, err := cl.newProcess(img, node, fs)
	if err != nil {
		return nil, err
	}
	if _, err := p.newThread(cl, node, "__start"); err != nil {
		return nil, err
	}
	cl.procs = append(cl.procs, p)
	return p, nil
}

// InjectFaults installs a fault plan for the run: the interconnect applies
// per-message fates (drop, duplication, jitter) and the cluster executes
// the plan's crash schedule as it steps past each event time.
func (cl *Cluster) InjectFaults(plan fault.Plan) {
	in := fault.NewInjector(plan)
	cl.faults = in
	cl.IC.SetInjector(in)
	cl.events = make([][]nodeEvent, len(cl.Kernels))
	cl.eventIdx = make([]int, len(cl.Kernels))
	for _, c := range in.Plan().Crashes {
		if c.Node < 0 || c.Node >= len(cl.Kernels) {
			continue
		}
		cl.events[c.Node] = append(cl.events[c.Node], nodeEvent{time: c.At, node: c.Node, down: true})
		if c.RecoverAt > c.At {
			cl.events[c.Node] = append(cl.events[c.Node], nodeEvent{time: c.RecoverAt, node: c.Node, down: false})
		}
	}
	for n := range cl.events {
		evs := cl.events[n]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].time < evs[j].time })
	}
}

// SetTracer installs an event sink on the cluster and its interconnect.
func (cl *Cluster) SetTracer(s msg.EventSink) {
	cl.Tracer = s
	cl.IC.SetTracer(s)
}

// tracef records an event that has no single owning node (experiment-level
// annotations); it lands in the sink's global stream.
func (cl *Cluster) tracef(t float64, kind, format string, args ...interface{}) {
	if cl.Tracer != nil {
		cl.Tracer.Record(t, kind, fmt.Sprintf(format, args...))
	}
}

// tracefNode records an event produced by node's own schedule. When the
// sink keeps per-node streams (msg.NodeSink) the event lands in node's
// shard, which is what keeps tracing sound inside grouped parallel
// windows: each node's stream is engine-invariant, and the sink merges
// shards canonically on read. A sink without per-node streams instead
// collapses the engine (see Horizon), so Record here is always serial.
func (cl *Cluster) tracefNode(node int, t float64, kind, format string, args ...interface{}) {
	if cl.Tracer == nil {
		return
	}
	if ns, ok := cl.Tracer.(msg.NodeSink); ok {
		ns.RecordNode(node, t, kind, fmt.Sprintf(format, args...))
		return
	}
	cl.Tracer.Record(t, kind, fmt.Sprintf(format, args...))
}

// Quanta returns the total scheduling quanta executed across all kernels.
// Call it only between engine steps (each kernel's counter has a single
// writer — its sharing-group worker — inside a parallel window).
func (cl *Cluster) Quanta() uint64 {
	var q uint64
	for _, k := range cl.Kernels {
		q += k.Quanta
	}
	return q
}

// NodeDown reports whether node is currently crashed.
func (cl *Cluster) NodeDown(node int) bool {
	return node >= 0 && node < len(cl.Kernels) && cl.Kernels[node].down
}

// slowAt returns the gray-failure CPU slowdown factor for node at time t
// (exactly 1 when unfaulted). Pure in (node, t): safe to sample inside
// grouped parallel windows without a hazard.
func (cl *Cluster) slowAt(node int, t float64) float64 {
	if cl.faults == nil {
		return 1
	}
	return cl.faults.Slow(node, t)
}

// CrashNode fail-stops a node: threads on its cores freeze (state saved
// back, runnable again only at recovery), the node falls off the
// interconnect, and messages already in flight to it never arrive —
// migrating threads are rolled back to their source, other messages are
// redelivered after a known recovery or lost for good. Memory is
// preserved, matching the fail-stop-with-intact-RAM model in fault.Crash.
func (cl *Cluster) CrashNode(node int) {
	k := cl.Kernels[node]
	if k.down {
		return
	}
	k.down = true
	cl.tracefNode(node, k.now, "crash", "node %d down", node)
	if cl.member != nil {
		cl.member.NodeCrashed(node, k.now)
	}
	for _, cs := range k.cores {
		if cs.thr != nil {
			t := cs.thr
			k.detach(cs)
			k.enqueue(t)
		}
	}
	var recoverAt float64
	hasRecover := false
	if cl.faults != nil {
		recoverAt, hasRecover = cl.faults.NodeRecoverAt(node, k.now)
	}
	for _, m := range cl.IC.Drain(node) {
		if m.Type == msg.THeartbeat {
			// A lease in flight to a crashed observer is void; heartbeats are
			// never requeued past an outage (the next round re-leases).
			continue
		}
		// A delivery already scheduled past a known recovery was sent by a
		// reliable channel that waited the outage out; it stands.
		if hasRecover && m.Deliver >= recoverAt {
			cl.IC.Requeue(m, m.Deliver)
			continue
		}
		if mp, ok := m.Payload.(*migratePayload); ok {
			cl.rehome(mp, k.now)
			continue
		}
		if hasRecover {
			cl.IC.Requeue(m, recoverAt+Quantum)
			continue
		}
		cl.tracefNode(node, k.now, "msg-lost", "type %d for dead node %d", m.Type, node)
	}
	// A capture in progress cannot complete across the disruption (parked
	// threads would wait on threads frozen here); release it and retry a
	// full interval later. Only processes touching this node are affected —
	// a capture confined to an unrelated sharing group proceeds untouched.
	cl.abortCheckpoints(k.now, node)
	// A permanent crash strands every process depending on this node. With
	// a checkpoint service installed, kill them now so it can requeue each
	// from its latest image; otherwise preserve the freeze semantics. With a
	// membership service installed, nothing happens here: the crash must be
	// *inferred* from missed heartbeats, and the teardown runs (with real
	// detection latency) from DeclareNodeDead.
	if !hasRecover && cl.OnProcessLost != nil && cl.member == nil {
		var lost []*Process
		for _, p := range cl.procs {
			if !p.exited && cl.processStranded(p, node) {
				lost = append(lost, p)
			}
		}
		for _, p := range lost {
			cl.tracefNode(node, k.now, "proc-lost", "pid %d stranded by permanent crash of node %d", p.Pid, node)
			k.killProcess(p, fmt.Errorf("pid %d: %w (node %d)", p.Pid, ErrNodeLost, node))
			cl.OnProcessLost(p, node)
		}
	}
}

// processStranded reports whether p cannot make progress (or has lost
// state) with node permanently gone: a live thread frozen there, a page
// whose only authoritative copy is there, or its origin kernel (the
// filesystem and break authority) was there.
func (cl *Cluster) processStranded(p *Process, node int) bool {
	if p.Origin == node {
		return true
	}
	for _, t := range p.threads {
		if t.State != Exited && t.Node == node {
			return true
		}
	}
	for _, pg := range p.Space.OwnedPages() {
		if p.Space.Owner(pg) == node {
			return true
		}
	}
	return false
}

// RecoverNode brings a crashed node back: its clock was dragged forward by
// the co-simulation while it was down, its memory is intact, and threads
// frozen at the crash become runnable again from its run queue. A capture
// pending across the transition is aborted (its quiesce set was computed
// against the pre-recovery cluster) and retried a full interval later. If a
// failure detector declared this node dead during the outage, it rejoins
// under a bumped incarnation: new heartbeats refute the death, while
// messages addressed to the declared-dead incarnation stay fenced.
func (cl *Cluster) RecoverNode(node int) {
	k := cl.Kernels[node]
	if !k.down {
		return
	}
	k.down = false
	cl.abortCheckpoints(k.now, node)
	if cl.deadInc != nil && cl.deadInc[node] >= cl.incarnation[node] {
		cl.incarnation[node]++
		cl.tracefNode(node, k.now, "rejoin", "node %d rejoins as incarnation %d (declared dead as %d)",
			node, cl.incarnation[node], cl.deadInc[node])
	}
	if cl.member != nil {
		cl.member.NodeRecovered(node, cl.incarnation[node], k.now)
	}
	cl.tracefNode(node, k.now, "recover", "node %d up (%d threads thawed)", node, len(k.runq))
}

// applyNodeEvent executes one scheduled crash/recovery transition.
func (cl *Cluster) applyNodeEvent(ev nodeEvent) {
	k := cl.Kernels[ev.node]
	k.skipTo(ev.time)
	if ev.down {
		cl.CrashNode(ev.node)
	} else {
		cl.RecoverNode(ev.node)
	}
}

// engine returns the attached time engine, defaulting to the sequential
// reference backend on first use. Every driver entry (Step, Run, AdvanceTo)
// funnels through here, which makes it the one place to drop a stale
// grouped-execution flag: an observer calling Groups() between steps — a
// test assertion, an inspector dump — must not leave the next sequential
// quantum believing it runs inside a parallel window. The parallel backend
// re-derives the flag for every window it fans out.
func (cl *Cluster) engine() sim.Engine {
	cl.parGroups = false
	if cl.eng == nil {
		cl.eng = sim.NewSequential(cl)
	}
	return cl.eng
}

// SetEngine attaches a time engine built over this cluster (as a sim.Model).
// Pass nil to fall back to the sequential reference backend.
func (cl *Cluster) SetEngine(e sim.Engine) { cl.eng = e }

// UseParallelEngine attaches the conservative parallel backend. The
// interconnect's minimum link latency is its lookahead floor; epochSec <= 0
// selects the default epoch. Results are byte-identical to the sequential
// backend for barrier-driven workloads (see internal/sim and DESIGN.md §11).
func (cl *Cluster) UseParallelEngine(epochSec float64) {
	cl.eng = sim.NewParallel(cl, sim.Options{
		EpochSec:     epochSec,
		LookaheadSec: cl.IC.MinLatency(),
	})
}

// readyTime returns when k can next make progress, or inf.
func (k *Kernel) readyTime() float64 {
	if k.down {
		// A crashed kernel executes nothing until its recovery event; the
		// co-simulation drags its clock forward in the meantime.
		return inf
	}
	for _, cs := range k.cores {
		if cs.thr != nil {
			return k.now
		}
	}
	if len(k.runq) > 0 {
		return k.now
	}
	e := k.nextEventTime()
	if e < inf {
		if e < k.now {
			return k.now
		}
		return e
	}
	return inf
}

// Step advances the cluster through the attached engine: one kernel quantum
// on the sequential reference backend, one epoch window on the parallel
// backend. It returns false when no kernel can ever make progress again
// (all work drained).
func (cl *Cluster) Step() bool { return cl.engine().Step() }

// Run steps the cluster until the frontier passes `until` seconds or work
// drains. It returns the frontier time.
func (cl *Cluster) Run(until float64) float64 { return cl.engine().Run(until) }

// RunProcess steps the cluster until p exits and returns its exit code.
func (cl *Cluster) RunProcess(p *Process) (int64, error) {
	for {
		exited, code := p.Exited()
		if exited {
			if p.failErr != nil {
				return code, p.failErr
			}
			return code, nil
		}
		if !cl.Step() {
			return -1, fmt.Errorf("kernel: cluster drained before process %d exited (deadlock?)", p.Pid)
		}
	}
}

// reapProcess tears down all of p's threads, scoped to the nodes in p's
// sharing set — a thread, queue entry or in-flight message of p can only
// exist on (or between) footprint nodes, so unrelated nodes are untouched
// and the teardown stays group-local under the parallel engine.
func (cl *Cluster) reapProcess(p *Process) {
	nodes, fs := cl.footprint(p)
	defer fs.release()
	for _, t := range p.threads {
		t.State = Exited
	}
	p.liveThreads = 0
	for _, n := range nodes {
		k := cl.Kernels[n]
		// Clear run queues.
		var rq []*Thread
		for _, t := range k.runq {
			if t.Proc != p {
				rq = append(rq, t)
			}
		}
		k.runq = rq
		// Free cores.
		for _, cs := range k.cores {
			if cs.thr != nil && cs.thr.Proc == p {
				cs.thr = nil
			}
		}
		// Sleepers are reaped lazily: their State is Exited, so the wake
		// path drops them.
	}
	// Reclaim in-flight messages that pin the dead process's threads
	// (migrations under way, cross-kernel join wake-ups): delivering them
	// later would resurrect an Exited thread.
	cl.IC.Sweep(nodes, func(m *msg.Message) bool {
		switch pl := m.Payload.(type) {
		case *migratePayload:
			return pl.t.Proc == p
		case *wakePayload:
			return pl.t.Proc == p
		}
		return false
	})
}

// DefaultInterconnect exposes the testbed interconnect configuration for
// single-machine clusters (where it is unused but required).
func DefaultInterconnect() msg.Config { return msg.DolphinPXH810() }

// AdvanceTo skips every kernel's clock forward to t (bounded by the
// earliest pending event, which must still be processed by stepping) and
// fires the frontier hook. Used by workload drivers to model idle gaps
// between job arrivals; idle power integrates over the skipped span.
func (cl *Cluster) AdvanceTo(t float64) { cl.engine().AdvanceTo(t) }
