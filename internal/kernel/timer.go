package kernel

// The open-loop traffic hookup: a TimerSource turns driver actions (job
// arrivals, rebalance ticks) into cluster control events, fired at their
// exact simulated instants from engine context — the same mechanism that
// delivers crash schedules and membership rounds. Drivers that instead poll
// between Step calls see quantum-grained state under the sequential engine
// and epoch-grained state under the parallel one, which is why the legacy
// sched.Runner loop produces slightly different placements per engine; a
// timer-driven driver acts only at engine-defined points and is therefore
// byte-identical on both.

// TimerSource schedules simulated-instant callbacks on the cluster.
type TimerSource interface {
	// NextDue returns the next due instant, or >= 1e30 when idle. It must
	// be pure: the engine polls it while choosing the next action.
	NextDue() float64
	// Fire runs the action due at now. It executes in engine context (on
	// node 0's event stream) and may spawn processes, request migrations or
	// inspect cluster state; now is at least the due instant (a node whose
	// clock already passed it runs the action at the clock, never in the
	// past).
	Fire(now float64)
}

// SetTimerSource installs (or with nil removes) the cluster's timer source.
// The timer is anchored to node 0's event stream but its actions read
// global state (an arrival placement weighs every node's load), so each
// firing bounds the cluster's Horizon: the parallel engine clamps grouped
// windows to the next due instant and consumes the firing in the exact
// sequential order, then fans back out. Between firings NextDue is pure
// and the timer holds no other engine-visible state, so groups still run
// concurrently and results stay byte-identical to the sequential
// reference.
func (cl *Cluster) SetTimerSource(ts TimerSource) { cl.timer = ts }

// timerDueTime returns node's next timer instant, or inf. Only node 0
// carries timer events, which gives every firing one deterministic owner.
func (cl *Cluster) timerDueTime(node int) float64 {
	if cl.timer == nil || node != 0 {
		return inf
	}
	return cl.timer.NextDue()
}

// fireTimer runs the due timer action at node 0's clock.
func (cl *Cluster) fireTimer(due float64) {
	k := cl.Kernels[0]
	k.skipTo(due)
	now := due
	if k.now > now {
		now = k.now
	}
	cl.timer.Fire(now)
}
