// Failure-aware behaviour of the kernel: migration abort and fallback,
// crash rehoming, message reclamation and graceful degradation, driven
// through the core facade under seeded fault plans.
package kernel_test

import (
	"strings"
	"testing"

	"heterodc/internal/core"
	"heterodc/internal/fault"
	"heterodc/internal/kernel"
	"heterodc/internal/trace"
)

// migrateAndReport migrates to node 1 and prints where it landed.
const migrateAndReportSrc = `
long main(void) {
	migrate(1);
	print_i64_ln(getnode());
	return 0;
}`

func TestMigrationAbortsWhenDestinationDown(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", migrateAndReportSrc))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	// Node 1 is dead from the start and never recovers.
	cl.InjectFaults(fault.Plan{Crashes: []fault.Crash{{Node: 1, At: 0, RecoverAt: 0}}})
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Wait(cl, p)
	if err != nil {
		t.Fatalf("process died instead of degrading: %v", err)
	}
	if res.ExitCode != 0 || string(res.Output) != "0\n" {
		t.Fatalf("exit %d output %q, want to stay on node 0", res.ExitCode, res.Output)
	}
	if cl.Kernels[0].MigrationsAborted == 0 {
		t.Error("no aborted migration counted")
	}
	if res.Migrations != 0 {
		t.Errorf("counted %d completed migrations for an aborted one", res.Migrations)
	}
}

func TestMigrationFallsBackWhenRetriesExhausted(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", migrateAndReportSrc))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	log := trace.NewEventLog(256)
	cl.SetTracer(log)
	// The 0->1 link drops everything, forever: the reliable channel burns
	// its whole retry budget and the thread must resume on the source.
	cl.InjectFaults(fault.Plan{Seed: 2, Windows: []fault.Window{
		{From: 0, To: 1, Start: 0, End: 1e30, DropProb: 1.0},
	}})
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Wait(cl, p)
	if err != nil {
		t.Fatalf("process died instead of falling back: %v", err)
	}
	if res.ExitCode != 0 || string(res.Output) != "0\n" {
		t.Fatalf("exit %d output %q, want fallback to node 0", res.ExitCode, res.Output)
	}
	if cl.Kernels[0].MigrationsAborted == 0 {
		t.Error("no aborted migration counted")
	}
	s := cl.IC.Stats()
	if s.Exhausted == 0 || s.Retries == 0 {
		t.Errorf("interconnect stats show no retry exhaustion: %+v", s)
	}
	if log.Count("migrate-abort") == 0 {
		t.Errorf("trace has no migrate-abort event:\n%s", log)
	}
}

func TestMigrationSurvivesDuplicateDelivery(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", migrateAndReportSrc))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	// Every message is duplicated; the destination must ignore the copy.
	cl.InjectFaults(fault.Plan{Seed: 6, DupProb: 1.0})
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Wait(cl, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 || string(res.Output) != "1\n" {
		t.Fatalf("exit %d output %q, want migration to node 1", res.ExitCode, res.Output)
	}
	if res.Migrations != 1 {
		t.Errorf("migrations = %d, want 1 (duplicate must not double-count)", res.Migrations)
	}
	if cl.IC.Stats().Duplicated == 0 {
		t.Error("no duplication recorded")
	}
}

func TestInFlightThreadRehomedOnDestinationCrash(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", migrateAndReportSrc))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	// Step until the thread is in flight (transformed state queued on the
	// interconnect), then crash the destination under it.
	for p.Thread(0).State != kernel.InFlight {
		if !cl.Step() {
			t.Fatal("cluster drained before the migration launched")
		}
	}
	if cl.IC.Pending(core.NodeARM) == 0 {
		t.Fatal("no migrate message in flight")
	}
	cl.CrashNode(core.NodeARM)
	if cl.IC.Pending(core.NodeARM) != 0 {
		t.Fatal("crash left messages queued for the dead node")
	}
	res, err := core.Wait(cl, p)
	if err != nil {
		t.Fatalf("process died instead of rehoming: %v", err)
	}
	if res.ExitCode != 0 || string(res.Output) != "0\n" {
		t.Fatalf("exit %d output %q, want thread back on node 0", res.ExitCode, res.Output)
	}
	if cl.Kernels[0].MigrationsAborted == 0 {
		t.Error("rehome not counted as an aborted migration")
	}
}

func TestMigrationWaitsOutFiniteOutage(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", migrateAndReportSrc))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	// Node 1 is down across the migration launch but recovers; the
	// reliable channel waits the outage out and the thread lands there.
	cl.InjectFaults(fault.Plan{Crashes: []fault.Crash{{Node: 1, At: 10e-6, RecoverAt: 5e-3}}})
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Wait(cl, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 || string(res.Output) != "1\n" {
		t.Fatalf("exit %d output %q, want migration to complete after recovery", res.ExitCode, res.Output)
	}
	if res.Seconds < 5e-3 {
		t.Errorf("finished at %gs, before the destination even recovered", res.Seconds)
	}
}

func TestReapReclaimsInFlightMigration(t *testing.T) {
	// The worker launches a migration; main exits the whole process while
	// the thread is still in flight. The queued migrate message must be
	// reclaimed, not delivered to resurrect an Exited thread.
	src := `
long worker(long arg) {
	migrate(1);
	return getnode();
}
long main(void) {
	spawn(worker, 0);
	long spin = 0;
	for (long i = 0; i < 3000; i++) { spin += i; }
	exit(7);
	return spin;
}`
	img, err := core.Build("t", core.Src("t.c", src))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	sawInFlight := false
	for {
		if exited, _ := p.Exited(); exited {
			break
		}
		if w := p.Thread(1); w != nil && w.State == kernel.InFlight {
			sawInFlight = true
		}
		if !cl.Step() {
			t.Fatal("cluster drained before exit")
		}
	}
	if !sawInFlight {
		t.Skip("main exited before the worker's migration launched (timing drift)")
	}
	if n := cl.IC.Pending(core.NodeARM); n != 0 {
		t.Fatalf("%d messages for the dead process still queued after reap", n)
	}
	if cl.Kernels[core.NodeARM].MigrationsIn != 0 {
		t.Fatal("stale migrate payload was delivered after the process exited")
	}
	// The cluster is fully drained: nothing of the process lingers.
	for n, k := range cl.Kernels {
		if k.RunnableLoad() != 0 {
			t.Errorf("node %d still has runnable load %d after reap", n, k.RunnableLoad())
		}
	}
	if cl.Step() {
		t.Error("cluster still steppable after the only process exited")
	}
}

func TestReapClearsQueuesAndCores(t *testing.T) {
	// exit() from main kills spinning workers on both nodes; every run
	// queue and core must come back empty.
	src := `
long worker(long arg) {
	long x = 0;
	for (;;) { x += 1; }
	return x;
}
long main(void) {
	for (long i = 0; i < 8; i++) { spawn(worker, i); }
	long spin = 0;
	for (long i = 0; i < 50000; i++) { spin += i; }
	exit(3);
	return spin;
}`
	img, err := core.Build("t", core.Src("t.c", src))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Wait(cl, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 3 {
		t.Fatalf("exit %d, want 3", res.ExitCode)
	}
	for n, k := range cl.Kernels {
		if k.BusyCores() != 0 || k.RunnableLoad() != 0 {
			t.Errorf("node %d: %d busy cores, load %d after reap", n, k.BusyCores(), k.RunnableLoad())
		}
	}
	if cl.Step() {
		t.Error("cluster still steppable after reap")
	}
}

func TestRunProcessReportsDrainDeadlock(t *testing.T) {
	// Mutual join: main waits on the worker, the worker waits on main.
	// Nothing can ever run again; RunProcess must say so instead of
	// spinning forever.
	src := `
long worker(long arg) {
	join(0);
	return 0;
}
long main(void) {
	long w = spawn(worker, 0);
	join(w);
	return 0;
}`
	img, err := core.Build("t", core.Src("t.c", src))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Wait(cl, p)
	if err == nil {
		t.Fatal("mutual join finished instead of deadlocking")
	}
	if !strings.Contains(err.Error(), "drained") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRequestMigrationValidatesTarget(t *testing.T) {
	src := `long main(void){ for (long i = 0; i < 100000; i++) {} return 0; }`
	img, err := core.Build("t", core.Src("t.c", src))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.RequestMigration(p, 0, 99); err == nil {
		t.Error("out-of-range node 99 accepted")
	}
	if err := cl.RequestMigration(p, 0, -2); err == nil {
		t.Error("negative node accepted")
	}
	if err := cl.RequestMigration(p, 0, core.NodeARM); err != nil {
		t.Errorf("valid target rejected: %v", err)
	}
	if _, err := core.Wait(cl, p); err != nil {
		t.Fatal(err)
	}
}

func TestNodeCrashFreezesAndRecoveryThaws(t *testing.T) {
	// A thread migrates to node 1 and works there; node 1 crashes mid-run
	// and recovers. The thread must freeze across the outage (memory
	// intact) and finish with the right answer afterwards.
	src := `
long main(void) {
	migrate(1);
	long sum = 0;
	for (long i = 0; i < 2000000; i++) { sum += i % 7; }
	print_i64_ln(sum);
	print_i64_ln(getnode());
	return 0;
}`
	img, err := core.Build("t", core.Src("t.c", src))
	if err != nil {
		t.Fatal(err)
	}
	// Baseline without faults for the expected output.
	ref, err := core.Run(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}

	cl := core.NewTestbed()
	log := trace.NewEventLog(64)
	cl.SetTracer(log)
	crashAt := ref.Seconds * 0.5
	cl.InjectFaults(fault.Plan{Crashes: []fault.Crash{
		{Node: 1, At: crashAt, RecoverAt: crashAt + 0.2},
	}})
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Wait(cl, p)
	if err != nil {
		t.Fatalf("crash+recovery killed the process: %v", err)
	}
	if string(res.Output) != string(ref.Output) {
		t.Fatalf("output diverged across the outage: %q vs %q", res.Output, ref.Output)
	}
	if res.Seconds < crashAt+0.2 {
		t.Errorf("finished at %gs, inside the outage ending at %gs", res.Seconds, crashAt+0.2)
	}
	if log.Count("crash") != 1 || log.Count("recover") != 1 {
		t.Errorf("trace events: %d crash, %d recover, want 1 each\n%s",
			log.Count("crash"), log.Count("recover"), log)
	}
}
