package kernel

// This file is the cluster's side of the lease-based membership service
// (internal/member): the Membership hook it drives, the per-node incarnation
// registry, the incarnation fence applied at message delivery, and the
// declared-death teardown that replaces the omniscient NodeDown oracle for
// detector-equipped clusters.

import (
	"fmt"

	"heterodc/internal/mem"
	"heterodc/internal/msg"
)

// Membership is the failure-detector hook a cluster drives. A service
// (internal/member's SWIM or lease detector) assesses each node's liveness
// via probes or heartbeats charged through the interconnect and maintains
// per-observer suspicion state. Protocol actions (RunDue, Deliver on a
// non-quiet service, crash/recovery observations) always execute in the
// global sequential order — the cluster's Horizon clamps parallel windows
// to the next due action — so implementations need no locking for those.
// Only services that additionally implement GroupLocal ever see Deliver
// called from concurrent sharing-group workers, and then only while Quiet.
type Membership interface {
	// NextDue returns the simulated time of node's next membership action
	// (heartbeat emission or suspicion-deadline check), or >= sim.Inf.
	NextDue(node int) float64
	// RunDue performs node's membership actions due at now.
	RunDue(node int, now float64)
	// Deliver hands node an arrived THeartbeat message.
	Deliver(to int, m *msg.Message)
	// Suspected reports observer's current view of target: true when the
	// lease has expired (Suspect) or death was declared (Dead).
	Suspected(observer, target int) bool
	// SuspectedAny reports whether any live observer currently suspects
	// target.
	SuspectedAny(target int) bool
	// NodeCrashed observes a physical crash: node stops emitting and
	// checking until recovery. Its peers learn only through silence.
	NodeCrashed(node int, now float64)
	// NodeRecovered observes a physical recovery under the (possibly
	// bumped) incarnation inc; node resumes emitting immediately and its
	// own stale views are reset.
	NodeRecovered(node int, inc uint64, now float64)
}

// GroupLocal is the optional Membership extension that lets the parallel
// engine keep running sharing groups concurrently with the service
// installed. A group-local service keeps all per-node state indexed by the
// acting node (single writer inside a window) and answers Quiet: whether
// the protocol currently holds no global-order machinery — no outstanding
// probes, every view and every gossip entry Alive, no deferred verdicts.
// While quiet, the only cross-node activity is payload traffic whose
// endpoints Groups() folds together (via the in-flight scan and
// msg.GroupPeers), and the service's next protocol action bounds the
// cluster's Horizon, so grouped windows provably preserve quietness. A
// service that is not quiet — or does not implement GroupLocal at all,
// like the legacy lease detector — collapses the engine to one inline
// group, exactly the pre-refactor behaviour.
type GroupLocal interface {
	Quiet() bool
}

// initMembership sizes the incarnation registry; every node starts life as
// incarnation 1 and deadInc 0 ("never declared dead"), so the fence admits
// everything until a detector actually declares a death.
func (cl *Cluster) initMembership() {
	n := len(cl.Kernels)
	cl.incarnation = make([]uint64, n)
	for i := range cl.incarnation {
		cl.incarnation[i] = 1
	}
	cl.deadInc = make([]uint64, n)
	cl.messagesFenced = make([]uint64, n)
	cl.staleUnfenced = make([]uint64, n)
}

// SetMembership installs a membership service. Pass nil to detach and fall
// back to the NodeDown oracle.
func (cl *Cluster) SetMembership(m Membership) { cl.member = m }

// Membership returns the installed membership service, or nil.
func (cl *Cluster) Membership() Membership { return cl.member }

// Incarnation returns node's current incarnation number. Incarnations start
// at 1 and increase only when a node rejoins after being declared dead, so
// "inc <= deadInc" exactly characterises messages addressed to a retired
// incarnation.
func (cl *Cluster) Incarnation(node int) uint64 { return cl.incarnation[node] }

// DeadIncarnation returns the highest incarnation of node declared dead
// (0: never).
func (cl *Cluster) DeadIncarnation(node int) uint64 { return cl.deadInc[node] }

// RejoinNode bumps node's incarnation after the node itself learns — from
// membership gossip, not a physical recovery — that its current incarnation
// was declared dead while it kept running: the partitioned-but-alive false
// positive. The bump mirrors RecoverNode's rejoin logic; everything
// addressed to the retired incarnation stays fenced while the new
// incarnation's traffic readmits the node everywhere. Returns the current
// incarnation (bumped or not).
func (cl *Cluster) RejoinNode(node int, at float64) uint64 {
	if cl.incarnation == nil || node < 0 || node >= len(cl.incarnation) {
		return 0
	}
	if cl.deadInc[node] >= cl.incarnation[node] {
		cl.incarnation[node]++
		cl.tracefNode(node, at, "rejoin", "node %d outlived its declared death, rejoins as incarnation %d", node, cl.incarnation[node])
	}
	return cl.incarnation[node]
}

// HasLiveProcs reports whether any spawned process has not exited.
func (cl *Cluster) HasLiveProcs() bool {
	for _, p := range cl.procs {
		if !p.exited {
			return true
		}
	}
	return false
}

// NodeUnavailable reports whether node should be avoided for placement and
// migration targets. With a membership service installed this is the
// detector's verdict — any live observer suspecting the node — which lags
// reality by the detection latency and may be wrong; without one it falls
// back to the NodeDown oracle, preserving pre-detector behaviour.
func (cl *Cluster) NodeUnavailable(node int) bool {
	if cl.member != nil {
		return cl.member.SuspectedAny(node)
	}
	return cl.NodeDown(node)
}

// FenceStats returns the incarnation-fence counters: messages dropped for
// addressing a declared-dead incarnation, and stale-incarnation messages
// that were delivered anyway (structurally impossible — the counter exists
// so chaos experiments can assert it stayed zero). The counters are
// sharded by receiving node (single writer inside a parallel window); the
// sums here are exact between engine steps.
func (cl *Cluster) FenceStats() (fenced, staleUnfenced uint64) {
	for _, v := range cl.messagesFenced {
		fenced += v
	}
	for _, v := range cl.staleUnfenced {
		staleUnfenced += v
	}
	return fenced, staleUnfenced
}

// admitIncarnation applies the incarnation fence to a delivered payload
// stamped for incarnation inc of k's node. Messages addressed to an
// incarnation that has since been declared dead are dropped: the sender was
// talking to a retired life of this node, and acting on its payload would
// resurrect state (threads, wakes) the cluster already reaped and restored
// elsewhere.
func (cl *Cluster) admitIncarnation(k *Kernel, mt msg.Type, inc uint64) bool {
	if inc <= cl.deadInc[k.Node] {
		cl.messagesFenced[k.Node]++
		cl.tracefNode(k.Node, k.now, "fenced", "type %d message for dead incarnation %d of node %d (now %d)",
			mt, inc, k.Node, cl.incarnation[k.Node])
		return false
	}
	if inc < cl.incarnation[k.Node] {
		// A stale incarnation that was never declared dead cannot exist
		// (incarnations only advance by declared-death rejoins), but count
		// defensively: the chaos acceptance check asserts this stays zero.
		cl.staleUnfenced[k.Node]++
	}
	return true
}

// DeclareNodeDead executes a failure detector's death verdict for node's
// current incarnation at simulated time `at`: the incarnation is fenced
// (messages stamped for it will never be delivered again), every live
// process's DSM directory is swept — the dead node's page copies dropped,
// pages it held exclusively reported lost — and processes stranded by the
// loss (origin authority, live threads, or exclusive pages on the node) are
// killed with ErrNodeLost so an installed checkpoint service can restore
// them elsewhere. Idempotent per incarnation: a second observer reaching the
// same verdict is a no-op.
//
// The verdict may be wrong. A false positive kills a process the "dead"
// node was still running (the orphan reap); when the node resumes it rejoins
// under a bumped incarnation (see RecoverNode), its heartbeats refute the
// suspicion, and anything addressed to the declared-dead incarnation is
// dropped at the fence.
func (cl *Cluster) DeclareNodeDead(node int, at float64) {
	if node < 0 || node >= len(cl.Kernels) || cl.deadInc == nil {
		return
	}
	if cl.deadInc[node] >= cl.incarnation[node] {
		return
	}
	cl.deadInc[node] = cl.incarnation[node]
	cl.tracefNode(node, at, "declare-dead", "node %d incarnation %d declared dead", node, cl.incarnation[node])

	k := cl.Kernels[node]
	var lost []*Process
	for _, p := range cl.procs {
		if p.exited {
			continue
		}
		dropped, lostPages := p.Space.SweepNode(node)
		for _, pg := range dropped {
			// The directory says Invalid now; drop the local frame too, or a
			// resurrected node would read the stale copy without faulting.
			p.Mems[node].DropPage(pg << mem.PageShift)
		}
		if len(dropped) > 0 || len(lostPages) > 0 {
			cl.tracefNode(node, at, "dsm-sweep", "pid %d: node %d swept (%d copies dropped, %d exclusive pages lost)",
				p.Pid, node, len(dropped), len(lostPages))
		}
		if p.Origin == node || len(lostPages) > 0 || cl.hasThreadOn(p, node) {
			lost = append(lost, p)
		}
	}
	for _, p := range lost {
		cl.tracefNode(node, at, "proc-lost", "pid %d stranded by declared death of node %d", p.Pid, node)
		k.killProcess(p, fmt.Errorf("pid %d: %w (node %d declared dead)", p.Pid, ErrNodeLost, node))
		if cl.OnProcessLost != nil {
			cl.OnProcessLost(p, node)
		}
	}
}

// hasThreadOn reports whether p has a non-exited thread hosted on (or in
// flight to) node.
func (cl *Cluster) hasThreadOn(p *Process, node int) bool {
	for _, t := range p.threads {
		if t.State != Exited && t.Node == node {
			return true
		}
	}
	return false
}
