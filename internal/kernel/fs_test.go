package kernel

import (
	"testing"

	"heterodc/internal/sys"
	"heterodc/internal/xform"
)

type xformStats = xform.Stats

func newProc() *Process {
	return &Process{FS: NewFS()}
}

func TestFSOpenCreateReadWrite(t *testing.T) {
	p := newProc()
	if fd := p.fdOpen("missing", sys.ORdonly); fd != -1 {
		t.Fatalf("open(missing) = %d", fd)
	}
	fd := p.fdOpen("f", sys.OCreate)
	if fd < 3 {
		t.Fatalf("fd %d", fd)
	}
	if n := p.fdWrite(fd, []byte("hello")); n != 5 {
		t.Fatalf("write %d", n)
	}
	// Reading from the same descriptor continues at its position (end).
	if _, n := p.fdRead(fd, 10); n != 0 {
		t.Fatalf("read at EOF returned %d", n)
	}
	fd2 := p.fdOpen("f", sys.ORdonly)
	data, n := p.fdRead(fd2, 3)
	if n != 3 || string(data) != "hel" {
		t.Fatalf("read %q %d", data, n)
	}
	data, n = p.fdRead(fd2, 10)
	if n != 2 || string(data) != "lo" {
		t.Fatalf("second read %q %d", data, n)
	}
}

func TestFSTruncate(t *testing.T) {
	p := newProc()
	fd := p.fdOpen("f", sys.OCreate)
	p.fdWrite(fd, []byte("long content"))
	p.fdClose(fd)
	fd = p.fdOpen("f", sys.OCreate|sys.OTrunc)
	p.fdWrite(fd, []byte("x"))
	p.fdClose(fd)
	if got := p.FS.ReadFile("f"); string(got) != "x" {
		t.Fatalf("after truncate: %q", got)
	}
}

func TestFSCloseAndBadFDs(t *testing.T) {
	p := newProc()
	fd := p.fdOpen("f", sys.OCreate)
	if p.fdClose(fd) != 0 {
		t.Fatal("close failed")
	}
	if p.fdClose(fd) != -1 {
		t.Fatal("double close succeeded")
	}
	if p.fdWrite(fd, []byte("x")) != -1 {
		t.Fatal("write to closed fd succeeded")
	}
	if _, n := p.fdRead(fd, 1); n != -1 {
		t.Fatal("read from closed fd succeeded")
	}
	if _, n := p.fdRead(999, 1); n != -1 {
		t.Fatal("read from bogus fd succeeded")
	}
}

func TestFSDistinctDescriptors(t *testing.T) {
	p := newProc()
	a := p.fdOpen("f", sys.OCreate)
	b := p.fdOpen("f", sys.ORdonly)
	if a == b {
		t.Fatal("descriptors reused")
	}
	p.fdWrite(a, []byte("abc"))
	// b has its own position.
	data, n := p.fdRead(b, 2)
	if n != 2 || string(data) != "ab" {
		t.Fatalf("independent position broken: %q", data)
	}
}

func TestFSNamesSorted(t *testing.T) {
	fs := NewFS()
	fs.AddFile("zebra", nil)
	fs.AddFile("alpha", []byte("a"))
	names := fs.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zebra" {
		t.Fatalf("names %v", names)
	}
	if fs.ReadFile("nope") != nil {
		t.Fatal("missing file returned data")
	}
}

func TestFSOverwriteMiddle(t *testing.T) {
	p := newProc()
	fd := p.fdOpen("f", sys.OCreate)
	p.fdWrite(fd, []byte("0123456789"))
	p.fdClose(fd)
	// A fresh descriptor writes from position 0 over existing bytes.
	fd = p.fdOpen("f", 0)
	p.fdWrite(fd, []byte("AB"))
	if got := p.FS.ReadFile("f"); string(got) != "AB23456789" {
		t.Fatalf("overwrite got %q", got)
	}
}

func TestXformLatencyModelOrdering(t *testing.T) {
	shallow := XformLatency(isaX86, xstatsLite(2, 4, 0, 0))
	deep := XformLatency(isaX86, xstatsLite(8, 40, 2048, 5))
	if deep <= shallow {
		t.Fatalf("latency model not monotone: %g <= %g", deep, shallow)
	}
}

// xstatsLite builds an xform.Stats without importing it at each call site.
func xstatsLite(frames, values int, allocaBytes int64, walks int) (s xformStats) {
	s.Frames = frames
	s.LiveValues = values
	s.AllocaBytes = allocaBytes
	s.RegWalks = walks
	return s
}

// Local alias to keep the latency test terse.
const isaX86 = 0
