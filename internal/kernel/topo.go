package kernel

// Topology wiring: building a cluster whose interconnect routes through a
// rack/spine fabric (internal/topo) instead of the flat pipe.

import (
	"fmt"

	"heterodc/internal/isa"
	"heterodc/internal/msg"
	"heterodc/internal/topo"
)

// A fat-tree fabric is the interconnect's pluggable path model.
var _ msg.PathModel = (*topo.Fabric)(nil)

// ApplyTopology builds the fabric spec describes over the cluster's nodes
// and installs it under the interconnect. A flat spec installs nothing and
// returns (nil, nil): the flat pipe stays byte-for-byte the legacy cost
// model. Call it before UseParallelEngine (the engine reads the lookahead
// floor at configuration time) and before any traffic flows; a fabric with
// unrouteable pairs is rejected — time-bounded uplink cuts belong in a
// fault plan (fault.PartitionWindow.Legs), not the structural topology.
func ApplyTopology(cl *Cluster, spec topo.Spec) (*topo.Fabric, error) {
	fab, err := topo.Build(spec, len(cl.Kernels))
	if err != nil {
		return nil, err
	}
	if fab == nil {
		return nil, nil
	}
	if pairs := fab.UnrouteablePairs(); len(pairs) > 0 {
		return nil, fmt.Errorf("kernel: fabric leaves %d node pairs unrouteable (first %d->%d); use a fault plan for time-bounded cuts",
			len(pairs), pairs[0][0], pairs[0][1])
	}
	if err := cl.IC.SetPathModel(fab); err != nil {
		return nil, err
	}
	return fab, nil
}

// NewClusterTopo builds a cluster of arches joined by the fabric spec
// describes; the returned fabric is nil for a flat spec (the classic
// single-pipe cluster, unchanged).
func NewClusterTopo(arches []isa.Arch, cfg msg.Config, spec topo.Spec) (*Cluster, *topo.Fabric, error) {
	cl := NewCluster(arches, cfg)
	fab, err := ApplyTopology(cl, spec)
	if err != nil {
		return nil, nil, err
	}
	return cl, fab, nil
}
