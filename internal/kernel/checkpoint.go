package kernel

import (
	"errors"
	"fmt"
	"sort"

	"heterodc/internal/dsm"
	"heterodc/internal/isa"
	"heterodc/internal/link"
	"heterodc/internal/mem"
	"heterodc/internal/sys"
	"heterodc/internal/xform"
)

// The checkpoint service quiesces a process at migration points: it is only
// there that the compiler's stackmaps fully describe every thread's frames,
// which is what makes the captured image ISA-neutral (the paper's
// Tᵢ = ⟨Lᵢ, Sᵢ, Rᵢ⟩ state model — everything in the common layout P is
// identity-mapped; only stacks and registers need per-ISA rewriting, and
// that rewriting is deferred to restore time via xform.Transform).
//
// The quiesce protocol reuses the migration-request plumbing:
// __migrate_check computes target = flag - 1, so raising the vDSO flag to
// ckptFlagRequest makes the next executed migration point trap into
// SysMigrate with target CkptMigrateTarget, where the kernel parks the
// thread instead of moving it. When every live thread is parked (or blocked
// in join — a state equally described by the stackmaps, as the join syscall
// is itself a recorded call site), the image is captured.

// CkptMigrateTarget is the reserved migrate() target the checkpoint service
// claims. It is recognised only by the kernel's syscall dispatch; user-level
// APIs (RequestMigration) still reject it.
const CkptMigrateTarget = -2

// ckptFlagRequest is the vDSO flag value that traps into CkptMigrateTarget.
const ckptFlagRequest = int64(CkptMigrateTarget) + 1

// ErrNodeLost marks a process killed by a permanent node crash that
// stranded its threads or exclusive pages. The checkpoint service
// distinguishes it from application failures when deciding to restore.
var ErrNodeLost = errors.New("kernel: node permanently lost")

// Checkpoint capture/restore cost model: a fixed service setup plus a
// memory-bandwidth term over the image payload, in the spirit of the DSM
// service costs (the gather is local copying; pages were pulled consistent
// by ownership, not transferred).
const (
	ckptBaseSeconds       = 120e-6
	ckptBytesPerSecond    = 2.5e9
	ckptPerThreadSeconds  = 8e-6
	restoreBaseSeconds    = 150e-6
	restoreBytesPerSecond = 2.0e9
)

// CkptPolicy is a per-process periodic checkpoint policy: checkpoint every
// N executed migration points, every T simulated seconds, or both
// (whichever fires first). A zero policy never fires on its own;
// RequestCheckpoint still forces one-shot captures.
type CkptPolicy struct {
	EveryPoints  uint64
	EverySeconds float64
}

func (pol CkptPolicy) enabled() bool { return pol.EveryPoints > 0 || pol.EverySeconds > 0 }

// ckptState is the kernel-side policy state of a checkpointed process.
type ckptState struct {
	pol CkptPolicy
	// points counts executed migration points across all threads.
	points     uint64
	lastPoints uint64
	lastAt     float64
	// pending marks an in-progress quiesce: threads park as they reach
	// their next migration point.
	pending bool
}

// SetCheckpointPolicy enables (or, with a zero policy, merely arms) the
// checkpoint service for p. The interval clock starts now.
func (cl *Cluster) SetCheckpointPolicy(p *Process, pol CkptPolicy) {
	if p.ckpt == nil {
		p.ckpt = &ckptState{lastAt: cl.Time()}
	}
	p.ckpt.pol = pol
}

// RequestCheckpoint forces a one-shot capture of p at its next quiesce
// point, independent of the periodic policy.
func (cl *Cluster) RequestCheckpoint(p *Process) error {
	if p.exited {
		return fmt.Errorf("kernel: pid %d already exited", p.Pid)
	}
	if p.ckpt == nil {
		p.ckpt = &ckptState{lastAt: cl.Time()}
	}
	if p.ckpt.pending {
		return nil
	}
	p.ckpt.pending = true
	cl.raiseCkptFlags(p)
	return nil
}

// CheckpointEvent reports one completed capture to the cluster's observer
// (the ckpt.Manager encodes and retains the snapshot).
type CheckpointEvent struct {
	Time float64
	Proc *Process
	Snap *Snapshot
	// Seconds is the modelled capture latency (the stop-the-world window
	// the parked threads sat out).
	Seconds float64
}

// ThreadStatus classifies a thread inside a snapshot.
type ThreadStatus uint8

const (
	// ThreadAtPoint: parked at a migration point (resumes past it).
	ThreadAtPoint ThreadStatus = iota
	// ThreadBlockedJoin: suspended in join(JoinTid).
	ThreadBlockedJoin
	// ThreadExited: finished; only ExitVal survives (joiners may still
	// collect it after restore).
	ThreadExited
)

// Snapshot is a whole-process checkpoint in memory form: the ISA-neutral
// portion (pages, kernel service state) verbatim, plus per-thread register
// files and PCs tagged with the ISA they were captured on. ckpt.Encode
// serialises it into the portable on-disk image.
type Snapshot struct {
	ImgName string
	Pid     int
	When    float64

	Brk                 uint64
	RNG                 uint64
	NextTid             int64
	NextFd              int64
	SerializedMigration bool
	EagerPageMigration  bool

	// Output is everything the process wrote to fd 1/2 so far; restoring it
	// keeps the restored run's cumulative output byte-identical.
	Output []byte

	Pages   []PageRecord
	Threads []ThreadRecord
	Files   []FileRecord
	FDs     []FDRecord
}

// PageRecord is one DSM-owned page, gathered from its owner's copy.
type PageRecord struct {
	Index uint64
	Data  []byte // PageSize bytes
}

// ThreadRecord is one thread's captured state. Regs/PC are meaningful for
// non-exited threads and are expressed in Arch's register file; restore on
// a different ISA rewrites them (and the thread's stack) via
// xform.Transform.
type ThreadRecord struct {
	Tid        int64
	Status     ThreadStatus
	Arch       isa.Arch
	CurHalf    int
	JoinTid    int64
	ExitVal    int64
	PC         uint64
	Regs       xform.RegState
	Migrations int
}

// FileRecord is one container-filesystem file.
type FileRecord struct {
	Name string
	Data []byte
}

// FDRecord is one open descriptor (position into a filesystem file).
type FDRecord struct {
	FD   int64
	Path string
	Pos  int64
}

// ApproxBytes estimates the encoded image size (the latency model's input).
func (s *Snapshot) ApproxBytes() int64 {
	n := int64(128)
	for _, pg := range s.Pages {
		n += 16 + int64(len(pg.Data))
	}
	n += int64(len(s.Threads)) * (64 + 32*8 + 32*8)
	n += int64(len(s.Output))
	for _, f := range s.Files {
		n += 32 + int64(len(f.Name)) + int64(len(f.Data))
	}
	n += int64(len(s.FDs)) * 48
	return n
}

// CheckpointLatency models the capture's stop-the-world wall time.
func CheckpointLatency(s *Snapshot) float64 {
	return ckptBaseSeconds +
		float64(s.ApproxBytes())/ckptBytesPerSecond +
		ckptPerThreadSeconds*float64(len(s.Threads))
}

// RestoreLatency models the restore's wall time before threads run
// (excluding per-thread stack transformation, charged separately).
func RestoreLatency(s *Snapshot) float64 {
	return restoreBaseSeconds + float64(s.ApproxBytes())/restoreBytesPerSecond
}

// pointTick is the kernel-owned migration-point hook: it advances the
// checkpointed process's policy clock and starts or sustains a quiesce.
// It runs on entry to __migrate_check, so a flag raised here is observed by
// this very point's flag load.
func (k *Kernel) pointTick(cs *coreSlot) {
	t := cs.thr
	if t == nil {
		return
	}
	st := t.Proc.ckpt
	if st == nil {
		return
	}
	st.points++
	if st.pending {
		// Re-arm on this thread's current node: threads that migrated or
		// spawned after the broadcast still have to park.
		k.cluster.ensureCkptFlag(t.Proc, t)
		return
	}
	if !st.pol.enabled() {
		return
	}
	due := (st.pol.EveryPoints > 0 && st.points-st.lastPoints >= st.pol.EveryPoints) ||
		(st.pol.EverySeconds > 0 && k.now-st.lastAt >= st.pol.EverySeconds)
	if !due {
		return
	}
	st.pending = true
	k.cluster.raiseCkptFlags(t.Proc)
}

// raiseCkptFlags raises the checkpoint request for every live thread.
func (cl *Cluster) raiseCkptFlags(p *Process) {
	for _, t := range p.threads {
		if t.State == Exited || t.State == CkptParked {
			continue
		}
		cl.ensureCkptFlag(p, t)
	}
}

// ensureCkptFlag raises the checkpoint request on t's hosting node unless
// another request (a real migration) is already posted there — the
// migration wins and the thread re-arms at its next point on the
// destination.
func (cl *Cluster) ensureCkptFlag(p *Process, t *Thread) {
	k := cl.Kernels[t.Node]
	cur, err := p.Mems[k.Node].ReadU64(sys.MigrationFlagAddr(t.Tid))
	if err == nil && cur == 0 {
		k.vdsoSetFlag(p, t.Tid, ckptFlagRequest)
	}
}

// checkpointPark handles the SysMigrate trap with the checkpoint sentinel
// target: the thread is quiesced at its migration point. Returns true when
// the thread left the core.
func (k *Kernel) checkpointPark(cs *coreSlot) bool {
	t := cs.thr
	p := t.Proc
	k.vdsoSetFlag(p, t.Tid, 0)
	// The migrate() result must be saved before detach: the parked thread's
	// register file is what the snapshot captures, and a restored (or
	// released) thread resumes as if migrate() returned 0.
	cs.core.SetSyscallResult(0)
	st := p.ckpt
	if st == nil || !st.pending {
		// Stale request (capture aborted by a crash); keep running.
		return false
	}
	k.detach(cs)
	t.State = CkptParked
	k.ckptMaybeCapture(p)
	return true
}

// ckptMaybeCapture captures the image once every live thread is quiesced:
// parked at a migration point or blocked in join. Any thread still Ready,
// Running, Sleeping or InFlight will reach a parkable state on its own
// (migration points pepper all loops, and in-flight threads land and run).
func (k *Kernel) ckptMaybeCapture(p *Process) {
	st := p.ckpt
	if st == nil || !st.pending || p.exited {
		return
	}
	parked := 0
	for _, t := range p.threads {
		switch t.State {
		case Exited, BlockedJoin:
		case CkptParked:
			parked++
		default:
			return
		}
	}
	if parked == 0 {
		return
	}
	st.pending = false
	st.lastPoints = st.points
	st.lastAt = k.now
	snap, err := k.cluster.snapshotProcess(p, k.now)
	if err != nil {
		k.cluster.tracefNode(k.Node, k.now, "ckpt-skip", "pid %d: %v", p.Pid, err)
		k.releaseParked(p, 0)
		return
	}
	lat := CheckpointLatency(snap)
	// The interval clock restarts at the END of the stop-the-world window:
	// a capture latency above the interval must not re-trigger immediately.
	st.lastAt = k.now + lat
	k.ServiceSeconds += lat
	k.cluster.tracefNode(k.Node, k.now, "ckpt", "pid %d: %d pages, %d threads, ~%d bytes, %.0fµs stop-the-world",
		p.Pid, len(snap.Pages), len(snap.Threads), snap.ApproxBytes(), lat*1e6)
	k.releaseParked(p, lat)
	if k.cluster.OnCheckpoint != nil {
		// Serialised across sharing groups: observers see one event at a time.
		k.cluster.cbMu.Lock()
		k.cluster.OnCheckpoint(CheckpointEvent{Time: k.now, Proc: p, Snap: snap, Seconds: lat})
		k.cluster.cbMu.Unlock()
	}
}

// parkedThreads returns p's CkptParked threads sorted by tid, so releases
// enqueue in a map-order-independent, reproducible order.
func parkedThreads(p *Process) []*Thread {
	var ts []*Thread
	for _, t := range p.threads {
		if t.State == CkptParked {
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Tid < ts[j].Tid })
	return ts
}

// releaseParked resumes every parked thread, after lat seconds of capture
// stop-the-world (0 releases immediately).
func (k *Kernel) releaseParked(p *Process, lat float64) {
	for _, t := range parkedThreads(p) {
		kh := k.cluster.Kernels[t.Node]
		if lat > 0 {
			kh.sleep(t, kh.now+lat)
		} else {
			kh.enqueue(t)
		}
	}
}

// abortCheckpoints cancels any pending quiesce touched by a node transition:
// parked threads resume, and the policy clock restarts (the service retries
// a full interval later rather than capturing across the disruption). Only
// processes whose sharing set contains node are affected, so the abort stays
// group-local under the parallel engine.
func (cl *Cluster) abortCheckpoints(now float64, node int) {
	for _, p := range cl.procs {
		st := p.ckpt
		if p.exited || st == nil || !st.pending {
			continue
		}
		inSet := false
		fp, fs := cl.footprint(p)
		for _, n := range fp {
			if n == node {
				inSet = true
				break
			}
		}
		fs.release()
		if !inSet {
			continue
		}
		st.pending = false
		st.lastPoints = st.points
		st.lastAt = now
		released := 0
		for _, t := range parkedThreads(p) {
			cl.Kernels[t.Node].enqueue(t)
			released++
		}
		cl.tracefNode(node, now, "ckpt-skip", "pid %d: capture aborted by node transition (%d threads released)", p.Pid, released)
	}
}

// snapshotProcess gathers p's whole state DSM-consistently. All threads are
// quiesced, so no coherence traffic is in flight: each owned page's owner
// copy is the authoritative content and is read without faulting.
func (cl *Cluster) snapshotProcess(p *Process, at float64) (*Snapshot, error) {
	s := &Snapshot{
		ImgName:             p.Img.Name,
		Pid:                 p.Pid,
		When:                at,
		Brk:                 p.brk,
		RNG:                 p.rng,
		NextTid:             p.nextTid,
		NextFd:              p.nextFd,
		SerializedMigration: p.serializedMigration,
		EagerPageMigration:  p.eagerPageMigration,
		Output:              append([]byte(nil), p.Out.Bytes()...),
	}

	pages := p.Space.OwnedPages()
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, pg := range pages {
		owner := p.Space.Owner(pg)
		if owner < 0 || owner >= len(cl.Kernels) {
			return nil, fmt.Errorf("page %#x has no owner", pg<<mem.PageShift)
		}
		if cl.Kernels[owner].down {
			return nil, fmt.Errorf("page %#x owner node %d is down", pg<<mem.PageShift, owner)
		}
		rec := PageRecord{Index: pg, Data: make([]byte, mem.PageSize)}
		if src := p.Mems[owner].Page(pg << mem.PageShift); src != nil {
			copy(rec.Data, src[:])
		}
		s.Pages = append(s.Pages, rec)
	}

	tids := make([]int64, 0, len(p.threads))
	for tid := range p.threads {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		t := p.threads[tid]
		rec := ThreadRecord{Tid: t.Tid, CurHalf: t.CurHalf, Migrations: t.Migrations}
		switch t.State {
		case Exited:
			rec.Status = ThreadExited
			rec.ExitVal = t.exitVal
		case CkptParked:
			rec.Status = ThreadAtPoint
			rec.Arch = cl.Kernels[t.Node].Arch
			rec.Regs = t.Regs
			rec.PC = t.PC
		case BlockedJoin:
			rec.Status = ThreadBlockedJoin
			rec.JoinTid = t.joinTid
			rec.Arch = cl.Kernels[t.Node].Arch
			rec.Regs = t.Regs
			rec.PC = t.PC
		default:
			return nil, fmt.Errorf("thread %d not quiesced (state %d)", t.Tid, t.State)
		}
		s.Threads = append(s.Threads, rec)
	}

	for _, name := range p.FS.Names() {
		data := p.FS.ReadFile(name)
		s.Files = append(s.Files, FileRecord{Name: name, Data: append([]byte(nil), data...)})
	}
	fdNums := make([]int64, 0, len(p.fds))
	for fd := range p.fds {
		fdNums = append(fdNums, fd)
	}
	sort.Slice(fdNums, func(i, j int) bool { return fdNums[i] < fdNums[j] })
	for _, fd := range fdNums {
		e := p.fds[fd]
		s.FDs = append(s.FDs, FDRecord{FD: fd, Path: e.file.name, Pos: e.pos})
	}
	return s, nil
}

// RestoreProcess instantiates a snapshot as a new process incarnation on
// node, which may run either ISA: pages, filesystem and kernel service
// state install verbatim (they live in the common layout P), while each
// live thread's stack and registers are rewritten to the destination ABI by
// xform.Transform unless the ISA matches (the identity fast path). The
// restored run's subsequent output is byte-identical to the original's.
func (cl *Cluster) RestoreProcess(img *link.Image, s *Snapshot, node int) (*Process, error) {
	if node < 0 || node >= len(cl.Kernels) {
		return nil, fmt.Errorf("kernel: no node %d", node)
	}
	kd := cl.Kernels[node]
	if kd.down {
		return nil, fmt.Errorf("kernel: restore target node %d is down", node)
	}
	if img.Name != s.ImgName {
		return nil, fmt.Errorf("kernel: image %q does not match snapshot of %q", img.Name, s.ImgName)
	}

	cl.nextPid++
	p := &Process{
		Pid:                 cl.nextPid,
		Img:                 img,
		Origin:              node,
		Space:               dsm.NewSpace(len(cl.Kernels)),
		Mems:                make([]*mem.Memory, len(cl.Kernels)),
		brk:                 s.Brk,
		threads:             make(map[int64]*Thread),
		nextTid:             s.NextTid,
		FS:                  NewFS(),
		rng:                 s.RNG,
		fds:                 make(map[int64]*fdEntry),
		nextFd:              s.NextFd,
		serializedMigration: s.SerializedMigration,
		eagerPageMigration:  s.EagerPageMigration,
		pendingMig:          make(map[int64]int),
	}
	p.Out.Write(s.Output)
	for i := range p.Mems {
		p.Mems[i] = mem.NewMemory()
		p.Mems[i].EnsurePage(mem.VDSOBase)
	}
	for _, f := range s.Files {
		p.FS.AddFile(f.Name, f.Data)
	}
	for _, fd := range s.FDs {
		f := p.FS.files[fd.Path]
		if f == nil {
			f = &fsFile{name: fd.Path}
			p.FS.files[fd.Path] = f
		}
		p.fds[fd.FD] = &fdEntry{file: f, pos: fd.Pos}
	}
	// Every page lands Exclusive on the restore node, exactly like the
	// loader seeding a fresh image; other nodes pull on demand.
	for _, pr := range s.Pages {
		base := pr.Index << mem.PageShift
		dst := p.Mems[node].EnsurePage(base)
		copy(dst[:], pr.Data)
		p.Space.Seed(node, pr.Index)
	}

	// Pass 1: rebuild threads. Cross-ISA threads are transformed into the
	// opposite stack half (the two-halves scheme, as in live migration).
	var xlat float64
	for i := range s.Threads {
		rec := &s.Threads[i]
		lo, _ := mem.ThreadStackWindow(int(rec.Tid))
		t := &Thread{
			Tid:        rec.Tid,
			Proc:       p,
			Node:       node,
			StackLo:    lo,
			CurHalf:    rec.CurHalf,
			Migrations: rec.Migrations,
		}
		p.threads[rec.Tid] = t
		if rec.Status == ThreadExited {
			t.State = Exited
			t.exitVal = rec.ExitVal
			continue
		}
		p.liveThreads++
		if rec.Arch == kd.Arch {
			t.Regs = rec.Regs
			t.PC = rec.PC
			continue
		}
		if !img.Aligned {
			return nil, fmt.Errorf("kernel: cross-ISA restore of unaligned image %q", img.Name)
		}
		srcLo := lo + uint64(rec.CurHalf)*mem.StackHalf
		dstLo := lo + uint64(1-rec.CurHalf)*mem.StackHalf
		km := &kmem{k: kd, p: p}
		out, err := xform.Transform(&xform.Input{
			SrcProg:    img.Prog(rec.Arch),
			DstProg:    img.Prog(kd.Arch),
			Mem:        km,
			Regs:       rec.Regs,
			PC:         rec.PC,
			SrcStackLo: srcLo,
			SrcStackHi: srcLo + mem.StackHalf,
			DstStackLo: dstLo,
			DstStackHi: dstLo + mem.StackHalf,
		})
		if err != nil {
			return nil, fmt.Errorf("kernel: restore transform tid %d: %w", rec.Tid, err)
		}
		t.Regs = out.Regs
		t.PC = out.PC
		t.CurHalf = 1 - rec.CurHalf
		xlat += XformLatency(kd.Arch, out.Stats) + km.Lat
	}

	// Pass 2: re-link joins and schedule. A join whose target already
	// exited at capture time (its wake was in flight) completes now.
	lat := RestoreLatency(s) + xlat
	wakeAt := kd.now + lat
	restored := 0
	for i := range s.Threads {
		rec := &s.Threads[i]
		if rec.Status == ThreadExited {
			continue
		}
		t := p.threads[rec.Tid]
		if rec.Status == ThreadBlockedJoin {
			target := p.threads[rec.JoinTid]
			if target != nil && target.State != Exited {
				t.State = BlockedJoin
				t.joinTid = rec.JoinTid
				target.joiners = append(target.joiners, t)
				continue
			}
			val := int64(-1)
			if target != nil {
				val = target.exitVal
			}
			t.Regs.I[kd.Desc.IntRet] = val
		}
		kd.sleep(t, wakeAt)
		restored++
	}
	kd.ServiceSeconds += lat
	cl.procs = append(cl.procs, p)
	cl.tracefNode(kd.Node, kd.now, "restore", "pid %d from pid %d image (t=%.6fs): %d pages, %d/%d threads live on node %d (%s), %.0fµs",
		p.Pid, s.Pid, s.When, len(s.Pages), restored, len(s.Threads), node, kd.Arch, lat*1e6)
	return p, nil
}

// CheckpointPoints returns the number of migration points the checkpointed
// process has executed (diagnostics).
func (p *Process) CheckpointPoints() uint64 {
	if p.ckpt == nil {
		return 0
	}
	return p.ckpt.points
}
