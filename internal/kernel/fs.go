package kernel

import (
	"sort"

	"heterodc/internal/sys"
)

// FS is the in-memory filesystem a heterogeneous OS-container sees. Its
// authority lives on the process's origin kernel; remote kernels' syscalls
// are charged a message round trip (see syscall.go), giving migrating
// applications the same filesystem view on every node.
type FS struct {
	files map[string]*fsFile
}

type fsFile struct {
	name string
	data []byte
}

// NewFS returns an empty filesystem.
func NewFS() *FS {
	return &FS{files: make(map[string]*fsFile)}
}

// AddFile installs a file (workload inputs).
func (fs *FS) AddFile(name string, data []byte) {
	fs.files[name] = &fsFile{name: name, data: append([]byte(nil), data...)}
}

// ReadFile returns a file's contents, or nil.
func (fs *FS) ReadFile(name string) []byte {
	f := fs.files[name]
	if f == nil {
		return nil
	}
	return f.data
}

// Names lists files, sorted.
func (fs *FS) Names() []string {
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// fdEntry is one open descriptor.
type fdEntry struct {
	file *fsFile
	pos  int64
}

// fdOpen implements open(2) on the container FS.
func (p *Process) fdOpen(path string, flags int64) int64 {
	f := p.FS.files[path]
	if f == nil {
		if flags&sys.OCreate == 0 {
			return -1
		}
		f = &fsFile{name: path}
		p.FS.files[path] = f
	}
	if flags&sys.OTrunc != 0 {
		f.data = f.data[:0]
	}
	if p.fds == nil {
		p.fds = make(map[int64]*fdEntry)
	}
	fd := p.nextFd
	if fd < 3 {
		fd = 3
	}
	p.nextFd = fd + 1
	p.fds[fd] = &fdEntry{file: f}
	return fd
}

// fdRead implements read(2); returns data and count.
func (p *Process) fdRead(fd, n int64) ([]byte, int64) {
	e := p.fds[fd]
	if e == nil || n < 0 {
		return nil, -1
	}
	remain := int64(len(e.file.data)) - e.pos
	if remain <= 0 {
		return nil, 0
	}
	if n > remain {
		n = remain
	}
	data := e.file.data[e.pos : e.pos+n]
	e.pos += n
	return data, n
}

// fdWrite implements write(2) for fd >= 3.
func (p *Process) fdWrite(fd int64, data []byte) int64 {
	e := p.fds[fd]
	if e == nil {
		return -1
	}
	// Writes extend at pos (append-style for pos at end).
	end := e.pos + int64(len(data))
	if end > int64(len(e.file.data)) {
		grown := make([]byte, end)
		copy(grown, e.file.data)
		e.file.data = grown
	}
	copy(e.file.data[e.pos:end], data)
	e.pos = end
	return int64(len(data))
}

// fdClose implements close(2).
func (p *Process) fdClose(fd int64) int64 {
	if p.fds[fd] == nil {
		return -1
	}
	delete(p.fds, fd)
	return 0
}
