package kernel

import (
	"bytes"
	"fmt"

	"heterodc/internal/dsm"
	"heterodc/internal/link"
	"heterodc/internal/mem"
	"heterodc/internal/sys"
	"heterodc/internal/xform"
)

// ThreadState is a thread's scheduling state.
type ThreadState int

const (
	// Ready: runnable, waiting for a core.
	Ready ThreadState = iota
	// Running: on a core.
	Running
	// Sleeping: blocked until Thread.wakeAt.
	Sleeping
	// BlockedJoin: waiting for another thread to exit.
	BlockedJoin
	// InFlight: migrating between kernels.
	InFlight
	// Exited: done.
	Exited
	// CkptParked: quiesced at a migration point for a process checkpoint;
	// released when the capture completes.
	CkptParked
)

// Thread is one kernel-visible thread of a process. Its user-space state
// (registers, PC) lives here while the thread is not on a core.
type Thread struct {
	Tid  int64
	Proc *Process
	// Node is the kernel currently hosting the thread.
	Node int

	State ThreadState

	Regs xform.RegState
	PC   uint64

	// StackLo is the base of the thread's stack window; CurHalf selects the
	// active half (the two-halves transformation scheme).
	StackLo uint64
	CurHalf int

	// wakeAt is the sleep deadline when State == Sleeping.
	wakeAt float64
	// inflightFrom is the source kernel of the migration in progress when
	// State == InFlight. The sharing-set computation needs it: an eager
	// migration can leave no pages behind, yet a crash of the destination
	// rehomes the thread by writing the source kernel's run queue.
	inflightFrom int
	// joiners are woken when this thread exits.
	joiners []*Thread
	// joinTid is the thread being joined when State == BlockedJoin (the
	// checkpoint service re-links the dependency at restore).
	joinTid int64
	exitVal int64
	// sliceStart marks when the thread was dispatched, for timeslicing.
	sliceStart float64

	// Migrations counts completed cross-kernel migrations.
	Migrations int
}

// StackHalfBounds returns [lo, hi) of the currently active stack half.
func (t *Thread) StackHalfBounds() (uint64, uint64) {
	lo := t.StackLo + uint64(t.CurHalf)*mem.StackHalf
	return lo, lo + mem.StackHalf
}

// OtherHalfBounds returns [lo, hi) of the inactive half.
func (t *Thread) OtherHalfBounds() (uint64, uint64) {
	lo := t.StackLo + uint64(1-t.CurHalf)*mem.StackHalf
	return lo, lo + mem.StackHalf
}

// Process is one heterogeneous OS-container's application: a multi-ISA
// binary plus an address space replicated across kernels by the hDSM
// service, plus the per-process state of each distributed kernel service.
type Process struct {
	Pid int
	Img *link.Image
	// Origin is the kernel the process was created on (the authority for
	// its filesystem namespace and break).
	Origin int

	// Space is the hDSM coherence directory; Mems[node] is each kernel's
	// local view of the address space.
	Space *dsm.Space
	Mems  []*mem.Memory

	brk uint64

	threads map[int64]*Thread
	nextTid int64

	// Out collects fd-1 output (the container's console).
	Out bytes.Buffer

	FS *FS

	rng uint64

	fds    map[int64]*fdEntry
	nextFd int64

	exited   bool
	exitCode int64
	exitTime float64
	failErr  error

	// serializedMigration selects the whole-state serialization baseline.
	serializedMigration bool
	// eagerPageMigration moves every page with the thread (stop-the-world
	// copy) instead of letting the DSM pull on demand — the ablation for
	// the paper's no-stop-the-world design choice.
	eagerPageMigration bool

	// liveThreads counts non-exited threads.
	liveThreads int

	// pendingMig maps tid -> requested migration target for vDSO-flagged
	// migrations that have not yet been consumed at a migration point. The
	// sharing-set computation includes these targets so a requested
	// destination joins the process's group before the thread can move.
	pendingMig map[int64]int

	// ckpt is the per-process checkpoint policy state, nil when the process
	// is not checkpointed.
	ckpt *ckptState
}

// Err returns the fatal error that killed the process, if any.
func (p *Process) Err() error { return p.failErr }

// Exited reports whether the process has terminated, and its exit code.
func (p *Process) Exited() (bool, int64) { return p.exited, p.exitCode }

// ExitTime returns the simulated instant the process terminated (0 while
// live). Open-loop SLO accounting uses it so a job's sojourn time is the
// kernel's exit instant, not whenever a polling driver noticed — the
// engines notice at different granularities, the kernel exits at the same
// one.
func (p *Process) ExitTime() float64 { return p.exitTime }

// Output returns everything written to fd 1.
func (p *Process) Output() []byte { return p.Out.Bytes() }

// Thread returns the thread with the given tid, or nil.
func (p *Process) Thread(tid int64) *Thread { return p.threads[tid] }

// Threads returns the number of live threads.
func (p *Process) Threads() int { return p.liveThreads }

// newProcess loads img as a new process with its main thread on node.
// Unaligned images are permitted (the Table 1 baseline runs natively); the
// migration service rejects them at migration time.
func (cl *Cluster) newProcess(img *link.Image, node int, fs *FS) (*Process, error) {
	cl.nextPid++
	p := &Process{
		Pid:     cl.nextPid,
		Img:     img,
		Origin:  node,
		Space:   dsm.NewSpace(len(cl.Kernels)),
		Mems:    make([]*mem.Memory, len(cl.Kernels)),
		brk:     mem.HeapBase,
		threads: make(map[int64]*Thread),
		FS:      fs,
		rng:     0x9e3779b97f4a7c15,

		pendingMig: make(map[int64]int),
	}
	if p.FS == nil {
		p.FS = NewFS()
	}
	for i := range p.Mems {
		p.Mems[i] = mem.NewMemory()
	}

	// Install the data segments on the origin node and seed DSM ownership
	// (the heterogeneous binary loader; text is aliased per ISA and needs no
	// pages, as instruction fetch never reaches the DSM).
	arch := cl.Kernels[node].Arch
	for _, seg := range img.Data[arch] {
		end := seg.Addr + uint64(seg.Size)
		for a := mem.PageBase(seg.Addr); a < end; a += mem.PageSize {
			p.Mems[node].EnsurePage(a)
			p.Space.Seed(node, mem.PageIndex(a))
		}
		if len(seg.Bytes) > 0 {
			p.Mems[node].WriteBytes(seg.Addr, seg.Bytes)
		}
	}

	// vDSO page: present and writable on every node, excluded from DSM (it
	// is the explicit user/kernel communication channel).
	for i := range p.Mems {
		p.Mems[i].EnsurePage(mem.VDSOBase)
	}
	return p, nil
}

// newThread creates a thread at entry with up to two integer arguments,
// ready on node. The caller must hold a consistent tid supply.
func (p *Process) newThread(cl *Cluster, node int, entry string, args ...int64) (*Thread, error) {
	tid := p.nextTid
	p.nextTid++
	if tid >= sys.MaxVDSOThreads || tid >= mem.MaxThreads {
		return nil, fmt.Errorf("kernel: too many threads (%d)", tid)
	}
	lo, _ := mem.ThreadStackWindow(int(tid))
	t := &Thread{
		Tid:     tid,
		Proc:    p,
		Node:    node,
		State:   Ready,
		StackLo: lo,
		CurHalf: 0,
	}

	k := cl.Kernels[node]
	desc := k.Desc
	img := p.Img
	entryAddr, ok := img.FuncAddr[k.Arch][entry]
	if !ok {
		return nil, fmt.Errorf("kernel: no entry symbol %q", entry)
	}

	// Initial stack: top of half 0, with the zero return-address sentinel
	// installed per the ISA's discipline.
	hl, hh := t.StackHalfBounds()
	_ = hl
	sp := (hh - 64) &^ 15
	km := &kmem{k: k, p: p}
	if desc.RetAddrOnStack {
		sp -= 8
		if err := km.WriteU64(sp, 0); err != nil {
			return nil, err
		}
	} else {
		t.Regs.I[desc.LR] = 0
	}
	t.Regs.I[desc.SP] = int64(sp)
	t.Regs.I[desc.FP] = 0
	for i, a := range args {
		if i >= len(desc.IntArgRegs) {
			return nil, fmt.Errorf("kernel: too many thread args")
		}
		t.Regs.I[desc.IntArgRegs[i]] = a
	}
	t.PC = entryAddr

	p.threads[tid] = t
	p.liveThreads++
	k.enqueue(t)
	return t, nil
}

// SetSerializedMigration switches the process to the PadMig-style baseline:
// migrations serialize and eagerly transfer the whole application state
// instead of transforming the stack and pulling pages on demand.
func (p *Process) SetSerializedMigration(on bool) { p.serializedMigration = on }

// SetEagerPageMigration makes migrations copy every resident page along
// with the thread (no serialization cost, but the thread waits for the full
// transfer) — the stop-the-world ablation of the hDSM's on-demand design.
func (p *Process) SetEagerPageMigration(on bool) { p.eagerPageMigration = on }
