package kernel

import (
	"testing"

	"heterodc/internal/msg"
)

// The incarnation fence is the backstop for in-flight messages addressed to
// a declared-dead incarnation; exercise it directly since the reap usually
// sweeps such messages first.
func TestAdmitIncarnationFence(t *testing.T) {
	cl := NewTestbed()
	k1 := cl.Kernels[1]

	// Nothing declared dead: everything admits, including the initial
	// incarnation (legacy requeued-wake semantics).
	if !cl.admitIncarnation(k1, msg.TRemoteWake, 1) {
		t.Fatal("incarnation 1 rejected before any death declaration")
	}
	if f, s := cl.FenceStats(); f != 0 || s != 0 {
		t.Fatalf("fence counters moved on admitted message: fenced=%d stale=%d", f, s)
	}

	cl.DeclareNodeDead(1, 0)
	if cl.DeadIncarnation(1) != 1 {
		t.Fatalf("deadInc = %d after declaration, want 1", cl.DeadIncarnation(1))
	}
	// Idempotent per incarnation.
	cl.DeclareNodeDead(1, 0)
	if cl.DeadIncarnation(1) != 1 {
		t.Fatal("second declaration moved deadInc")
	}

	if cl.admitIncarnation(k1, msg.TRemoteWake, 1) {
		t.Error("message for the declared-dead incarnation admitted")
	}
	if f, _ := cl.FenceStats(); f != 1 {
		t.Errorf("messagesFenced = %d, want 1", f)
	}

	// Recovery after a declared death bumps the incarnation; messages stamped
	// for the new life pass, the old life stays fenced.
	cl.CrashNode(1)
	cl.RecoverNode(1)
	if cl.Incarnation(1) != 2 {
		t.Fatalf("incarnation = %d after rejoin, want 2", cl.Incarnation(1))
	}
	if cl.admitIncarnation(k1, msg.TThreadMigrate, 1) {
		t.Error("old-incarnation message admitted after rejoin")
	}
	if !cl.admitIncarnation(k1, msg.TThreadMigrate, 2) {
		t.Error("current-incarnation message fenced")
	}
	if _, s := cl.FenceStats(); s != 0 {
		t.Errorf("staleUnfenced = %d, want 0 (structurally impossible)", s)
	}
}
