package kernel

import (
	"fmt"

	"heterodc/internal/msg"
	"heterodc/internal/sys"
)

// syscallServiceSeconds is the base in-kernel service time beyond the trap
// cost already charged by the machine.
const syscallServiceSeconds = 0.3e-6

// syscall dispatches a trapped system call. It returns true when the thread
// has left the core (blocked, exited, migrated); in that case the handler
// has already saved state via detach where appropriate.
func (k *Kernel) syscall(cs *coreSlot, num int64, args [5]int64) bool {
	c := cs.core
	t := cs.thr
	p := t.Proc
	clock := k.Desc.ClockHz
	charge := func(seconds float64) { c.Cycles += int64(seconds * clock) }
	charge(syscallServiceSeconds)

	// remoteCharge adds a round trip to the origin kernel for services whose
	// per-process authority lives there (distributed-service consistency).
	remoteCharge := func(bytes int64) {
		if k.Node != p.Origin {
			charge(k.cluster.IC.RoundTripTime(k.now, k.Node, p.Origin, bytes))
		}
	}

	switch num {
	case sys.SysExit:
		k.detach(cs)
		p.exited = true
		p.exitCode = args[0]
		p.exitTime = k.now
		k.cluster.reapProcess(p)
		return true

	case sys.SysWrite:
		fd, buf, n := args[0], args[1], args[2]
		if n < 0 || n > 1<<24 {
			c.SetSyscallResult(-1)
			return false
		}
		km := &kmem{k: k, p: p}
		data, err := km.ReadBytes(uint64(buf), int(n))
		if err != nil {
			k.detach(cs)
			k.killProcess(p, fmt.Errorf("write: %w", err))
			return true
		}
		charge(km.Lat)
		switch fd {
		case 1, 2:
			remoteCharge(n)
			p.Out.Write(data)
			c.SetSyscallResult(n)
		default:
			remoteCharge(n)
			c.SetSyscallResult(p.fdWrite(fd, data))
		}
		return false

	case sys.SysRead:
		fd, buf, n := args[0], args[1], args[2]
		remoteCharge(n)
		data, rn := p.fdRead(fd, n)
		if rn > 0 {
			km := &kmem{k: k, p: p}
			if err := km.WriteBytes(uint64(buf), data); err != nil {
				k.detach(cs)
				k.killProcess(p, fmt.Errorf("read: %w", err))
				return true
			}
			charge(km.Lat)
		}
		c.SetSyscallResult(rn)
		return false

	case sys.SysOpen:
		km := &kmem{k: k, p: p}
		path, err := km.ReadCString(uint64(args[0]))
		if err != nil {
			c.SetSyscallResult(-1)
			return false
		}
		charge(km.Lat)
		remoteCharge(int64(len(path)) + 64)
		c.SetSyscallResult(p.fdOpen(path, args[1]))
		return false

	case sys.SysClose:
		remoteCharge(64)
		c.SetSyscallResult(p.fdClose(args[0]))
		return false

	case sys.SysSbrk:
		remoteCharge(64)
		old := p.brk
		if args[0] > 0 {
			p.brk += uint64(args[0])
		}
		c.SetSyscallResult(int64(old))
		return false

	case sys.SysGettime:
		c.SetSyscallResult(int64(k.now * 1e9))
		return false

	case sys.SysSpawn:
		nt, err := p.newThread(k.cluster, k.Node, "__thread_start", args[0], args[1])
		if err != nil {
			k.detach(cs)
			k.killProcess(p, fmt.Errorf("spawn: %w", err))
			return true
		}
		charge(2e-6) // thread-creation service cost
		c.SetSyscallResult(nt.Tid)
		return false

	case sys.SysJoin:
		target := p.threads[args[0]]
		if target == nil || target == t {
			c.SetSyscallResult(-1)
			return false
		}
		if target.State == Exited {
			c.SetSyscallResult(target.exitVal)
			return false
		}
		k.detach(cs)
		t.State = BlockedJoin
		t.joinTid = target.Tid
		target.joiners = append(target.joiners, t)
		// A blocked thread is quiescent; it may complete a pending
		// checkpoint barrier.
		if p.ckpt != nil && p.ckpt.pending {
			k.ckptMaybeCapture(p)
		}
		return true

	case sys.SysYield:
		k.detach(cs)
		k.enqueue(t)
		return true

	case sys.SysMigrate:
		if int(args[0]) == CkptMigrateTarget {
			return k.checkpointPark(cs)
		}
		return k.migrateThread(cs, int(args[0]))

	case sys.SysGetnode:
		c.SetSyscallResult(int64(k.Node))
		return false

	case sys.SysGettid:
		c.SetSyscallResult(t.Tid)
		return false

	case sys.SysExitThr:
		k.detach(cs)
		k.threadExit(t, args[0])
		return true

	case sys.SysNcores:
		c.SetSyscallResult(int64(len(k.cores)))
		return false

	case sys.SysRand:
		// xorshift64*, shared per process for cross-node determinism.
		x := p.rng
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		p.rng = x
		c.SetSyscallResult(int64(x * 0x2545F4914F6CDD1D >> 1)) // non-negative
		return false

	case sys.SysMigHint:
		return false

	default:
		k.detach(cs)
		k.killProcess(p, fmt.Errorf("kernel: unknown syscall %d", num))
		return true
	}
}

// threadExit finalises a thread and wakes joiners (cross-kernel joiners via
// a message).
func (k *Kernel) threadExit(t *Thread, val int64) {
	t.State = Exited
	t.exitVal = val
	t.Proc.liveThreads--
	for _, j := range t.joiners {
		k.wakeJoiner(j, val)
	}
	t.joiners = nil
	// The exiting thread leaves the checkpoint barrier's quorum; it may
	// have been the last one running.
	if t.Proc.ckpt != nil && t.Proc.ckpt.pending {
		k.ckptMaybeCapture(t.Proc)
	}
}

// wakePayload carries a join wake-up across kernels. inc stamps the
// destination incarnation the sender addressed; the delivery fence drops the
// wake if that incarnation has since been declared dead.
type wakePayload struct {
	t      *Thread
	result int64
	inc    uint64
}

func (k *Kernel) wakeJoiner(j *Thread, result int64) {
	if j.State != BlockedJoin {
		return
	}
	if j.Node == k.Node {
		j.Regs.I[k.Desc.IntRet] = result
		k.enqueue(j)
		return
	}
	if _, ok := k.cluster.IC.SendReliable(k.now, k.Node, j.Node, msg.TRemoteWake, 64,
		&wakePayload{t: j, result: result, inc: k.cluster.incarnation[j.Node]}); !ok {
		// The joiner's node never comes back; the joiner stays blocked and
		// the cluster drains, surfacing the deadlock to the caller.
		k.cluster.tracefNode(k.Node, k.now, "wake-lost", "join wake for tid %d to node %d undeliverable", j.Tid, j.Node)
	}
}

// handleMessage processes one delivered inter-kernel message.
func (k *Kernel) handleMessage(m *msg.Message) {
	switch m.Type {
	case msg.THeartbeat:
		if k.cluster.member != nil {
			k.cluster.member.Deliver(k.Node, m)
		}
	case msg.TRemoteWake:
		w := m.Payload.(*wakePayload)
		if !k.cluster.admitIncarnation(k, m.Type, w.inc) {
			return
		}
		if w.t.State == BlockedJoin {
			w.t.Regs.I[k.Desc.IntRet] = w.result
			k.enqueue(w.t)
		}
	case msg.TThreadMigrate:
		mp := m.Payload.(*migratePayload)
		if !k.cluster.admitIncarnation(k, m.Type, mp.inc) {
			// The thread addressed a declared-dead incarnation; its process
			// was stranded by the declaration and already reaped, so there is
			// nothing to roll back.
			return
		}
		t := mp.t
		if t.Proc.exited || t.State == Exited {
			// The process died while the thread was in flight: the payload
			// is stale and must not resurrect an Exited thread.
			return
		}
		if t.State != InFlight || t.Node != k.Node {
			// Duplicate delivery (the reliable channel double-delivers when
			// an acknowledgement is lost): the first copy already landed.
			return
		}
		k.MigrationsIn++
		if mp.deserializeSeconds > 0 {
			// Deserialization burns destination CPU before the thread runs.
			k.BusySeconds += mp.deserializeSeconds
			k.CyclesRetired += int64(mp.deserializeSeconds * k.Desc.ClockHz)
			k.sleep(t, k.now+mp.deserializeSeconds)
			return
		}
		k.enqueue(t)
	default:
		// Other message types are modelled synchronously.
	}
}

// ReadCString reads a NUL-terminated string (max 4096) via the fault-
// resolving kernel memory view.
func (m *kmem) ReadCString(addr uint64) (string, error) {
	var out []byte
	for i := 0; i < 4096; i++ {
		b, err := m.ReadBytes(addr+uint64(i), 1)
		if err != nil {
			return "", err
		}
		if b[0] == 0 {
			break
		}
		out = append(out, b[0])
	}
	return string(out), nil
}
