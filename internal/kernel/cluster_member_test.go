// Lease-based failure detection end to end: the membership service infers a
// crash from heartbeat silence, the declared death strands and restores the
// process, incarnation bumps refute false positives, and the RecoverNode
// path aborts captures pending across the transition.
package kernel_test

import (
	"errors"
	"testing"

	"heterodc/internal/ckpt"
	"heterodc/internal/core"
	"heterodc/internal/fault"
	"heterodc/internal/kernel"
	"heterodc/internal/member"
	"heterodc/internal/trace"
)

// workOnNode1Src migrates to node 1 and grinds there, printing a verifiable
// sum; node 1 is where the failures land. The call-bearing loop keeps the
// thread crossing migration points so periodic checkpoints can park it.
const workOnNode1Src = `
long chunk(long base) {
	long s = 0;
	for (long j = 0; j < 100; j++) {
		s += (base + j) % 7;
		s += (base * j) % 3;
	}
	return s;
}
long main(void) {
	migrate(1);
	long sum = 0;
	for (long i = 0; i < 12000; i++) { sum += chunk(i); }
	print_i64_ln(sum);
	return 0;
}`

// detectorRun is one detector-plus-checkpoint execution under a crash plan.
type detectorRun struct {
	cl   *kernel.Cluster
	svc  *member.Service
	mgr  *ckpt.Manager
	p    *kernel.Process // the original incarnation
	log  *trace.EventLog
	cfg  member.Config
	tRef float64
}

func startDetectorRun(t *testing.T, plan fault.Plan, ref float64) *detectorRun {
	t.Helper()
	img, err := core.Build("t", core.Src("t.c", workOnNode1Src))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	cl.InjectFaults(plan)
	log := trace.NewEventLog(4096)
	cl.SetTracer(log)
	mgr := ckpt.NewManager(cl)
	cfg := member.Config{HeartbeatPeriod: ref / 40}
	svc, err := member.Attach(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Track(p, img, kernel.CkptPolicy{EverySeconds: ref / 8})
	return &detectorRun{cl: cl, svc: svc, mgr: mgr, p: p, log: log, cfg: cfg, tRef: ref}
}

func refSeconds(t *testing.T) float64 {
	t.Helper()
	img, err := core.Build("t", core.Src("t.c", workOnNode1Src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	return res.Seconds
}

func TestDetectorDeclaresPermanentCrashAndRestores(t *testing.T) {
	ref := refSeconds(t)
	crashAt := 0.4 * ref
	r := startDetectorRun(t, fault.Plan{
		Crashes: []fault.Crash{{Node: 1, At: crashAt, RecoverAt: 0}},
	}, ref)

	final, err := r.mgr.Wait(r.p)
	if err != nil {
		t.Fatalf("job never finished despite detector + restore: %v", err)
	}
	if _, code := final.Exited(); code != 0 {
		t.Fatalf("final incarnation exited %d", code)
	}
	// The original incarnation was killed by the declared death, not an
	// application failure.
	if !errors.Is(r.p.Err(), kernel.ErrNodeLost) {
		t.Errorf("original incarnation error = %v, want ErrNodeLost", r.p.Err())
	}
	st := r.svc.Stats()
	if st.Deaths != 1 || st.Suspicions == 0 {
		t.Fatalf("detector stats %+v, want exactly one death", st)
	}
	// Failure was inferred, not read from the oracle: the verdict comes
	// after the crash by at least the suspicion timeout.
	d := r.svc.Deaths()[0]
	if d.Node != 1 || d.At < crashAt+r.cfg.HeartbeatPeriod {
		t.Errorf("death record %+v: detection latency missing (crash at %g)", d, crashAt)
	}
	if r.mgr.Stats().Restores == 0 {
		t.Error("no checkpoint restore followed the death verdict")
	}
	if fenced, stale := r.cl.FenceStats(); stale != 0 {
		t.Errorf("%d stale-incarnation messages delivered unfenced (%d fenced)", stale, fenced)
	}
	if r.log.Count("declare-dead") == 0 || r.log.Count("proc-lost") == 0 {
		t.Errorf("trace missing declare-dead/proc-lost events:\n%s", r.log)
	}
}

func TestFalsePositiveRejoinsUnderBumpedIncarnation(t *testing.T) {
	ref := refSeconds(t)
	crashAt := 0.4 * ref
	// The outage outlives the detector's patience (~10 heartbeat periods =
	// 0.25*ref), so node 1 is declared dead mid-outage — wrongly: it
	// recovers later with its memory intact.
	r := startDetectorRun(t, fault.Plan{
		Crashes: []fault.Crash{{Node: 1, At: crashAt, RecoverAt: crashAt + 0.35*ref}},
	}, ref)

	final, err := r.mgr.Wait(r.p)
	if err != nil {
		t.Fatalf("job never finished: %v", err)
	}
	if _, code := final.Exited(); code != 0 {
		t.Fatalf("final incarnation exited %d", code)
	}
	st := r.svc.Stats()
	if st.Deaths != 1 {
		t.Fatalf("detector stats %+v, want exactly one (false) death", st)
	}
	// The orphan was reaped: the first incarnation is dead even though its
	// node came back.
	if exited, _ := r.p.Exited(); !exited {
		t.Fatal("orphan process still live after the false declaration")
	}
	if !errors.Is(r.p.Err(), kernel.ErrNodeLost) {
		t.Errorf("orphan error = %v, want ErrNodeLost", r.p.Err())
	}
	if r.mgr.Stats().Restores == 0 {
		t.Error("no restore followed the (false) death verdict")
	}
	// The node rejoined under a bumped incarnation and refuted the death.
	if inc := r.cl.Incarnation(1); inc != 2 {
		t.Errorf("node 1 incarnation = %d after rejoin, want 2", inc)
	}
	if st.FalseSuspicions == 0 || st.Readmissions == 0 {
		t.Errorf("death never refuted after recovery: %+v", st)
	}
	if r.svc.View(0, 1) != member.Alive {
		t.Errorf("node 0 still views rejoined node 1 as %v", r.svc.View(0, 1))
	}
	if _, stale := r.cl.FenceStats(); stale != 0 {
		t.Errorf("%d stale-incarnation messages delivered unfenced", stale)
	}
}

// joinAcrossCrashSrc splits work between the nodes: main grinds on node 1,
// a worker on node 0, then main joins it.
const joinAcrossCrashSrc = `
long chunk(long base) {
	long s = 0;
	for (long j = 0; j < 100; j++) {
		s += (base + j) % 7;
		s += (base * j) % 3;
	}
	return s;
}
long worker(long arg) {
	long sum = 0;
	for (long i = 0; i < 20000; i++) { sum += chunk(i); }
	return sum;
}
long main(void) {
	long w = spawn(worker, 0);
	migrate(1);
	long sum = 0;
	for (long i = 0; i < 12000; i++) { sum += chunk(i + 1); }
	print_i64_ln(sum + join(w));
	return 0;
}`

// runRecoverDuringCapture drives the RecoverNode-during-capture scenario on
// one engine: node 1 crashes with main frozen there, a one-shot checkpoint
// is requested mid-outage (the worker parks, main cannot), and the recovery
// must abort-and-release the capture rather than let it complete against a
// quiesce set computed across the transition.
func runRecoverDuringCapture(t *testing.T, engine string, ref float64) (*core.Result, int, int) {
	t.Helper()
	img, err := core.Build("t", core.Src("t.c", joinAcrossCrashSrc))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	if engine == "par" {
		cl.UseParallelEngine(0)
	}
	log := trace.NewEventLog(1024)
	cl.SetTracer(log)
	// The worker grinds on node 0 well past the recovery, so the cluster
	// stays busy and Run stops at the request point instead of skipping
	// ahead to the next control event.
	crashAt, recoverAt := 0.3*ref, 0.5*ref
	cl.InjectFaults(fault.Plan{Crashes: []fault.Crash{{Node: 1, At: crashAt, RecoverAt: recoverAt}}})
	images := 0
	cl.OnCheckpoint = func(kernel.CheckpointEvent) { images++ }
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(0.4 * ref)
	if !cl.NodeDown(1) {
		t.Fatalf("%s: node 1 not down at the request point", engine)
	}
	if err := cl.RequestCheckpoint(p); err != nil {
		t.Fatal(err)
	}
	res, err := core.Wait(cl, p)
	if err != nil {
		t.Fatalf("%s: %v", engine, err)
	}
	return res, images, log.Count("ckpt-skip")
}

func TestRecoverNodeAbortsPendingCaptureBothEngines(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", joinAcrossCrashSrc))
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.Run(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	ref := base.Seconds

	seqRes, seqImages, seqSkips := runRecoverDuringCapture(t, "seq", ref)
	parRes, parImages, parSkips := runRecoverDuringCapture(t, "par", ref)

	if seqImages != 0 {
		t.Errorf("a capture completed across the outage (%d images); recovery must abort it", seqImages)
	}
	if seqSkips == 0 {
		t.Error("no ckpt-skip trace event: the abort-and-release path never ran")
	}
	if seqRes.ExitCode != 0 || string(seqRes.Output) != string(base.Output) {
		t.Errorf("run diverged from fault-free baseline: exit %d output %q want %q",
			seqRes.ExitCode, seqRes.Output, base.Output)
	}
	if string(seqRes.Output) != string(parRes.Output) || seqRes.ExitCode != parRes.ExitCode ||
		seqRes.Seconds != parRes.Seconds || seqImages != parImages || seqSkips != parSkips {
		t.Errorf("engines diverge: seq exit=%d %q %.9fs images=%d skips=%d; par exit=%d %q %.9fs images=%d skips=%d",
			seqRes.ExitCode, seqRes.Output, seqRes.Seconds, seqImages, seqSkips,
			parRes.ExitCode, parRes.Output, parRes.Seconds, parImages, parSkips)
	}
}
