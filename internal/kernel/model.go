package kernel

// This file adapts Cluster to sim.Model, the interface the extracted time
// engines (internal/sim) schedule against. The sequential backend reproduces
// the loop Cluster.Step used to own; the parallel backend additionally needs
// the sharing-group partition and the soundness horizon computed here.

import (
	"sync"

	"heterodc/internal/msg"
	"heterodc/internal/sim"
)

// NumNodes returns the cluster's node count.
func (cl *Cluster) NumNodes() int { return len(cl.Kernels) }

// ReadyTime returns when node can next make progress, or >= sim.Inf.
func (cl *Cluster) ReadyTime(node int) float64 { return cl.Kernels[node].readyTime() }

// StepNode advances node by one kernel quantum.
func (cl *Cluster) StepNode(node int) { cl.Kernels[node].step() }

// SkipTo drags node's clock forward to t without executing work.
func (cl *Cluster) SkipTo(node int, t float64) { cl.Kernels[node].skipTo(t) }

// Now returns node's local clock.
func (cl *Cluster) Now(node int) float64 { return cl.Kernels[node].now }

// NextWake returns node's earliest pending wake or message delivery.
func (cl *Cluster) NextWake(node int) float64 { return cl.Kernels[node].nextEventTime() }

// crashEventTime returns the time of node's next scheduled crash/recovery
// transition, or inf.
func (cl *Cluster) crashEventTime(node int) float64 {
	if cl.eventIdx == nil || cl.eventIdx[node] >= len(cl.events[node]) {
		return inf
	}
	return cl.events[node][cl.eventIdx[node]].time
}

// memberDueTime returns the time of node's next membership action (probe
// round, heartbeat emission or suspicion check), or inf. The gate is
// per-node service attachment, not cluster-wide liveness: membership runs
// whenever a service is installed, even on an idle fleet. (An earlier
// cluster-wide HasLiveProcs gate silenced every node's emission the moment
// the last process exited, so a between-jobs fleet fell silent in lockstep
// and mass-suspected itself when the next job arrived.)
func (cl *Cluster) memberDueTime(node int) float64 {
	if cl.member == nil {
		return inf
	}
	return cl.member.NextDue(node)
}

// NextEvent returns the time of node's next control event — a scheduled
// crash/recovery transition, a membership action or a timer firing — or inf.
func (cl *Cluster) NextEvent(node int) float64 {
	t := cl.crashEventTime(node)
	if m := cl.memberDueTime(node); m < t {
		t = m
	}
	if d := cl.timerDueTime(node); d < t {
		t = d
	}
	return t
}

// ApplyEvent executes node's next due control event. Ties at the same
// instant resolve crash/recovery first (the detector must observe the
// transition — a recovered node emits immediately, a crashed one falls
// silent — before acting on it), then membership, then timer firings (an
// arrival admitted at the instant of a crash must see the node already
// down so placement skips it).
func (cl *Cluster) ApplyEvent(node int) {
	evT := cl.crashEventTime(node)
	memT := cl.memberDueTime(node)
	timT := cl.timerDueTime(node)
	if evT <= memT && evT <= timT {
		ev := cl.events[node][cl.eventIdx[node]]
		cl.eventIdx[node]++
		cl.applyNodeEvent(ev)
		return
	}
	if memT <= timT {
		k := cl.Kernels[node]
		k.skipTo(memT)
		now := memT
		if k.now > now {
			// The node's clock already passed the due time (an idle gap was
			// skipped); run the membership action at the clock, not in the past.
			now = k.now
		}
		cl.member.RunDue(node, now)
		return
	}
	cl.fireTimer(timT)
}

// Frontier returns the safe time frontier (min kernel clock).
func (cl *Cluster) Frontier() float64 { return cl.Time() }

// NoteFrontier publishes the frontier to the OnAdvance observer. The engine
// calls it only sequentially or at an epoch barrier, so observers (the power
// meter) see a monotone frontier without locking. A barrier also ends any
// grouped window, so the grouped-execution flag drops here: inline work the
// engine runs after the barrier (the parallel Run overrun tail) follows the
// global sequential rule and must not see a stale window partition.
func (cl *Cluster) NoteFrontier() {
	cl.parGroups = false
	if f := cl.Time(); f > cl.lastFrontier {
		cl.lastFrontier = f
		if cl.OnAdvance != nil {
			cl.OnAdvance(f)
		}
	}
}

// Horizon reports when group-parallel execution stops being sound for a
// window starting at start (sim.Model). Earlier revisions answered a
// cruder question — ParallelOK, a global bool that any of five observers
// (tracer, process-lost handler, membership service, contended fabric,
// timer source) pinned false, degrading the parallel engine to one inline
// group whenever any of them was installed. Each observer is now handled
// at its own layer, and what remains global is a *time*, not a verdict:
//
//   - Tracer: sound inside grouped windows when the sink keeps per-node
//     streams (msg.NodeSink — each node's stream is engine-invariant and
//     the sink merges canonically on read). A plain EventSink still
//     collapses: its single transcript is a total order.
//   - Membership: sound between protocol actions when the service is
//     group-local (GroupLocal) and quiet — every view Alive, no pending
//     suspicion machinery — because then grouped windows only move
//     heartbeats whose endpoints Groups() already folded together, and
//     quietness is preserved until the next protocol action. The actions
//     themselves (probe rounds, deadline checks) read global order, so the
//     next due instant bounds the horizon. A non-quiet or non-group-local
//     service collapses.
//   - Timer: firings read and steer global state (an arrival placement
//     weighs every node's load), so each firing bounds the horizon; between
//     firings NextDue is pure and the timer holds no other state.
//   - Crash/recovery events: group-local on their own (PR 4/5 semantics),
//     but with a membership service or process-lost handler installed the
//     transition feeds global observers, so each scheduled event bounds
//     the horizon.
//   - A contended fabric constrains Groups() (rack-sharing partitions fold)
//     rather than the horizon — unless it cannot name its sharing domains
//     (msg.SharingDomains), in which case it collapses.
//
// OnAdvance needs nothing: the engine samples the frontier only at
// barriers, and the power meter integrates energy from counter deltas.
func (cl *Cluster) Horizon(start float64) float64 {
	// Until Groups() runs for the next window, migration sees one group.
	cl.parGroups = false
	if cl.Tracer != nil {
		if _, ok := cl.Tracer.(msg.NodeSink); !ok {
			return sim.NegInf
		}
	}
	if cl.member != nil {
		gl, ok := cl.member.(GroupLocal)
		if !ok || !gl.Quiet() {
			return sim.NegInf
		}
	}
	if cl.IC.Contended() {
		if _, ok := cl.IC.Path().(msg.SharingDomains); !ok {
			return sim.NegInf
		}
	}
	hz := inf
	if cl.member != nil {
		for n := range cl.Kernels {
			if d := cl.member.NextDue(n); d < hz {
				hz = d
			}
		}
	}
	if cl.timer != nil {
		if d := cl.timer.NextDue(); d < hz {
			hz = d
		}
	}
	if cl.member != nil || cl.OnProcessLost != nil {
		for n := range cl.Kernels {
			if d := cl.crashEventTime(n); d < hz {
				hz = d
			}
		}
	}
	return hz
}

// markFootprint marks every node in p's sharing set: nodes the kernel could
// read or write on p's behalf before the next barrier. That is its origin
// (filesystem and break authority), every live thread's host, the source of
// any migration in flight (a destination crash rehomes the thread there),
// every node holding resident DSM pages (transfer/invalidation endpoints),
// and the target of any requested-but-unconsumed migration. A program that
// can issue direct migrate syscalls (link.Image.DirectMigrate) claims the
// whole cluster: any quantum may name any node as a destination, and the
// sequential order lets it go there.
func (cl *Cluster) markFootprint(p *Process, mark []bool) {
	if p.Img != nil && p.Img.DirectMigrate {
		for n := range mark {
			mark[n] = true
		}
		return
	}
	mark[p.Origin] = true
	for _, t := range p.threads {
		if t.State == Exited {
			continue
		}
		mark[t.Node] = true
		if t.State == InFlight {
			mark[t.inflightFrom] = true
		}
	}
	for n := range cl.Kernels {
		if p.Space.HasResident(n) {
			mark[n] = true
		}
	}
	for _, tgt := range p.pendingMig {
		if tgt >= 0 && tgt < len(cl.Kernels) {
			mark[tgt] = true
		}
	}
}

// footprintScratch recycles the mark/node buffers footprint burns through.
// It is a sync.Pool, not cluster-owned scratch, because footprint's main
// caller is reapProcess, which group workers run concurrently — each caller
// needs its own buffers, but a process exit per epoch must not cost two
// heap allocations forever.
var footprintScratch = sync.Pool{New: func() interface{} { return &fpScratch{} }}

type fpScratch struct {
	mark  []bool
	nodes []int
}

// release recycles the scratch; the node list footprint returned with it is
// dead afterwards.
func (fs *fpScratch) release() { footprintScratch.Put(fs) }

// footprint returns p's sharing set as a sorted node list valid until the
// returned scratch is released.
func (cl *Cluster) footprint(p *Process) ([]int, *fpScratch) {
	fs := footprintScratch.Get().(*fpScratch)
	n := len(cl.Kernels)
	if cap(fs.mark) < n {
		fs.mark = make([]bool, n)
		fs.nodes = make([]int, 0, n)
	}
	mark := fs.mark[:n]
	for i := range mark {
		mark[i] = false
	}
	cl.markFootprint(p, mark)
	out := fs.nodes[:0]
	for i, m := range mark {
		if m {
			out = append(out, i)
		}
	}
	fs.nodes = out
	return out, fs
}

// Groups partitions the nodes into sharing groups: the connected components
// of the union of three per-layer sharing contributions —
//
//  1. every live process's footprint (threads, DSM residents, migrations);
//  2. every in-flight message's endpoints, plus any extra nodes its payload
//     names (msg.GroupPeers — a SWIM indirect probe in flight binds its
//     relay to both the origin and the target). This folds membership
//     traffic: within a window a node only ever sends to peers it already
//     shares a pending message with, by induction from the barrier state;
//  3. when the fabric is contended, its sharing domains (racks): two
//     multi-rack groups that touch the same rack share that rack's ToR
//     uplinks, so they fold into one. Single-rack groups ride only their
//     own access links and never fold — which is exactly why a rack-local
//     workload scales with the rack count even on an oversubscribed
//     fat-tree.
//
// Disjoint groups then share no mutable state — kernels, run queues, DSM
// directories, per-link and per-node interconnect shards, per-node trace
// and fence shards — so the parallel engine may run them concurrently.
// Both the list and each group are sorted ascending. All scratch is
// cluster-owned and reused: barriers run every epoch and this must not
// allocate in steady state.
func (cl *Cluster) Groups() [][]int { return cl.groups(nil) }

// GroupMerge records one union the partition performed: the two nodes whose
// components were joined and the layer that forced it ("footprint",
// "in-flight" or "fabric"). The merge list is a spanning forest of the
// sharing graph — every group of size k appears as exactly k-1 merges — so
// it explains why the partition is as coarse as it is: remove a layer's
// merges and the groups it folded fall apart.
type GroupMerge struct {
	A     int    `json:"a"`
	B     int    `json:"b"`
	Layer string `json:"layer"`
}

// GroupDump is the serialisable form of one GroupReport sample: the
// partition at a simulated instant plus the merges that explain it. hdcrun
// -groups-out writes the coarsest sample a run produced; hdcinspect -groups
// renders it.
type GroupDump struct {
	Time   float64      `json:"time"`
	Nodes  int          `json:"nodes"`
	Groups [][]int      `json:"groups"`
	Merges []GroupMerge `json:"merges"`
}

// GroupReport is the explained form of Groups(): the partition plus the
// per-layer merges that produced it. Unlike Groups, the returned slices are
// freshly allocated and safe to retain.
func (cl *Cluster) GroupReport() ([][]int, []GroupMerge) {
	var merges []GroupMerge
	gs := cl.groups(func(layer string, a, b int) {
		merges = append(merges, GroupMerge{A: a, B: b, Layer: layer})
	})
	out := make([][]int, len(gs))
	for i, g := range gs {
		out[i] = append([]int(nil), g...)
	}
	return out, merges
}

// groups computes the partition; onMerge (nil on the hot path) observes
// every effective union with the layer that asked for it.
func (cl *Cluster) groups(onMerge func(layer string, a, b int)) [][]int {
	n := len(cl.Kernels)
	if len(cl.groupOf) != n {
		cl.groupOf = make([]int, n)
		cl.ufParent = make([]int, n)
		cl.ufMark = make([]bool, n)
		cl.ufIdx = make([]int, n)
		cl.ufFirstDom = make([]int, n)
		cl.ufMulti = make([]bool, n)
		cl.groupArena = make([]int, n)
	}
	parent := cl.ufParent
	for i := range parent {
		parent[i] = i
	}
	cl.ufOnMerge = onMerge
	cl.ufLayer = "footprint"

	// 1. Process footprints.
	mark := cl.ufMark
	for _, p := range cl.procs {
		if p.exited {
			continue
		}
		for i := range mark {
			mark[i] = false
		}
		cl.markFootprint(p, mark)
		first := -1
		for i, m := range mark {
			if !m {
				continue
			}
			if first < 0 {
				first = i
				continue
			}
			cl.ufUnion(first, i)
		}
	}

	// 2. In-flight messages. Heartbeats and probes between barrier and
	// delivery bind their endpoints (and payload-named peers) into one
	// group, which is what lets a quiet membership service ride inside
	// grouped windows instead of completing the sharing graph.
	cl.ufLayer = "in-flight"
	if cl.pendingVisit == nil {
		cl.gpVisit = func(peer int) {
			if nn := len(cl.Kernels); peer >= 0 && peer < nn && cl.gpTo >= 0 && cl.gpTo < nn {
				cl.ufUnion(cl.gpTo, peer)
			}
		}
		cl.pendingVisit = func(m *msg.Message) {
			nn := len(cl.Kernels)
			if m.From >= 0 && m.From < nn && m.To >= 0 && m.To < nn {
				cl.ufUnion(m.From, m.To)
			}
			if gp, ok := m.Payload.(msg.GroupPeers); ok {
				cl.gpTo = m.To
				gp.GroupPeers(cl.gpVisit)
			}
		}
	}
	cl.IC.ForEachPending(cl.pendingVisit)

	// 3. Fabric sharing domains: fold multi-rack groups that share a rack.
	cl.ufLayer = "fabric"
	if cl.IC.Contended() {
		if dom, ok := cl.IC.Path().(msg.SharingDomains); ok {
			cl.foldDomains(dom)
		}
	}
	cl.ufOnMerge = nil

	// Ascending scan with min-root union keeps every group sorted and the
	// group list ordered by smallest member. The groups share one arena and
	// the list header is reused, so a stable partition costs zero heap.
	idx := cl.ufIdx
	for i := range idx {
		idx[i] = -1
	}
	groups := cl.groupList[:0]
	for i := 0; i < n; i++ {
		if r := ufFind(parent, i); idx[r] < 0 {
			idx[r] = len(groups)
			groups = append(groups, nil)
		}
	}
	if cap(cl.groupArena) < n {
		cl.groupArena = make([]int, n)
	}
	arena := cl.groupArena[:n]
	// Two passes over the arena: group sizes first (borrowing the arena as
	// the counters), then offsets and fill, so each group is a contiguous
	// ascending sub-slice and a stable partition costs zero heap.
	counts := arena[:len(groups)]
	for g := range counts {
		counts[g] = 0
	}
	for i := 0; i < n; i++ {
		g := idx[ufFind(parent, i)]
		cl.groupOf[i] = g
		counts[g]++
	}
	off := 0
	for g, c := range counts {
		groups[g] = arena[off : off : off+c]
		off += c
	}
	for i := 0; i < n; i++ {
		g := cl.groupOf[i]
		groups[g] = append(groups[g], i)
	}
	cl.groupArena = arena
	cl.groupList = groups
	cl.parGroups = len(groups) > 1
	return groups
}

// ufFind is the union-find root lookup with path halving.
// ufUnion joins a's and b's components (min root wins, keeping groups
// sorted), reporting an effective merge to ufOnMerge with the layer that
// asked for it. A method over cluster fields, not a closure, so the hot
// path stays allocation-free.
func (cl *Cluster) ufUnion(a, b int) {
	parent := cl.ufParent
	ra, rb := ufFind(parent, a), ufFind(parent, b)
	if ra != rb {
		if rb < ra {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		if cl.ufOnMerge != nil {
			cl.ufOnMerge(cl.ufLayer, a, b)
		}
	}
}

func ufFind(parent []int, x int) int {
	for parent[x] != x {
		parent[x] = parent[parent[x]]
		x = parent[x]
	}
	return x
}

// foldDomains merges groups whose routes could contend on a shared fabric
// link. A group confined to one rack uses only its members' private access
// links; a group spanning racks also uses the ToR uplinks of every rack it
// touches. So two groups must fold exactly when both span multiple racks
// and touch a common rack — transitively, via one anchor root per domain.
func (cl *Cluster) foldDomains(dom msg.SharingDomains) {
	n := len(cl.Kernels)
	parent := cl.ufParent
	firstDom := cl.ufFirstDom
	multi := cl.ufMulti
	for i := 0; i < n; i++ {
		firstDom[i] = -1
		multi[i] = false
	}
	for i := 0; i < n; i++ {
		r := ufFind(parent, i)
		d := dom.Domain(i)
		if firstDom[r] < 0 {
			firstDom[r] = d
		} else if firstDom[r] != d {
			multi[r] = true
		}
	}
	nd := dom.NumDomains()
	if cap(cl.domAnchor) < nd {
		cl.domAnchor = make([]int, nd)
	}
	anchor := cl.domAnchor[:nd]
	for d := range anchor {
		anchor[d] = -1
	}
	for i := 0; i < n; i++ {
		if !multi[ufFind(parent, i)] {
			continue
		}
		d := dom.Domain(i)
		if d < 0 || d >= nd {
			continue
		}
		if anchor[d] < 0 {
			anchor[d] = i
		} else {
			cl.ufUnion(anchor[d], i)
		}
	}
}
