package kernel

// This file adapts Cluster to sim.Model, the interface the extracted time
// engines (internal/sim) schedule against. The sequential backend reproduces
// the loop Cluster.Step used to own; the parallel backend additionally needs
// the sharing-group partition computed here.

// NumNodes returns the cluster's node count.
func (cl *Cluster) NumNodes() int { return len(cl.Kernels) }

// ReadyTime returns when node can next make progress, or >= sim.Inf.
func (cl *Cluster) ReadyTime(node int) float64 { return cl.Kernels[node].readyTime() }

// StepNode advances node by one kernel quantum.
func (cl *Cluster) StepNode(node int) { cl.Kernels[node].step() }

// SkipTo drags node's clock forward to t without executing work.
func (cl *Cluster) SkipTo(node int, t float64) { cl.Kernels[node].skipTo(t) }

// Now returns node's local clock.
func (cl *Cluster) Now(node int) float64 { return cl.Kernels[node].now }

// NextWake returns node's earliest pending wake or message delivery.
func (cl *Cluster) NextWake(node int) float64 { return cl.Kernels[node].nextEventTime() }

// crashEventTime returns the time of node's next scheduled crash/recovery
// transition, or inf.
func (cl *Cluster) crashEventTime(node int) float64 {
	if cl.eventIdx == nil || cl.eventIdx[node] >= len(cl.events[node]) {
		return inf
	}
	return cl.events[node][cl.eventIdx[node]].time
}

// memberDueTime returns the time of node's next membership action (probe
// round, heartbeat emission or suspicion check), or inf. The gate is
// per-node service attachment, not cluster-wide liveness: membership runs
// whenever a service is installed, even on an idle fleet. (An earlier
// cluster-wide HasLiveProcs gate silenced every node's emission the moment
// the last process exited, so a between-jobs fleet fell silent in lockstep
// and mass-suspected itself when the next job arrived.)
func (cl *Cluster) memberDueTime(node int) float64 {
	if cl.member == nil {
		return inf
	}
	return cl.member.NextDue(node)
}

// NextEvent returns the time of node's next control event — a scheduled
// crash/recovery transition, a membership action or a timer firing — or inf.
func (cl *Cluster) NextEvent(node int) float64 {
	t := cl.crashEventTime(node)
	if m := cl.memberDueTime(node); m < t {
		t = m
	}
	if d := cl.timerDueTime(node); d < t {
		t = d
	}
	return t
}

// ApplyEvent executes node's next due control event. Ties at the same
// instant resolve crash/recovery first (the detector must observe the
// transition — a recovered node emits immediately, a crashed one falls
// silent — before acting on it), then membership, then timer firings (an
// arrival admitted at the instant of a crash must see the node already
// down so placement skips it).
func (cl *Cluster) ApplyEvent(node int) {
	evT := cl.crashEventTime(node)
	memT := cl.memberDueTime(node)
	timT := cl.timerDueTime(node)
	if evT <= memT && evT <= timT {
		ev := cl.events[node][cl.eventIdx[node]]
		cl.eventIdx[node]++
		cl.applyNodeEvent(ev)
		return
	}
	if memT <= timT {
		k := cl.Kernels[node]
		k.skipTo(memT)
		now := memT
		if k.now > now {
			// The node's clock already passed the due time (an idle gap was
			// skipped); run the membership action at the clock, not in the past.
			now = k.now
		}
		cl.member.RunDue(node, now)
		return
	}
	cl.fireTimer(timT)
}

// Frontier returns the safe time frontier (min kernel clock).
func (cl *Cluster) Frontier() float64 { return cl.Time() }

// NoteFrontier publishes the frontier to the OnAdvance observer. The engine
// calls it only sequentially or at an epoch barrier, so observers (the power
// meter) see a monotone frontier without locking.
func (cl *Cluster) NoteFrontier() {
	if f := cl.Time(); f > cl.lastFrontier {
		cl.lastFrontier = f
		if cl.OnAdvance != nil {
			cl.OnAdvance(f)
		}
	}
}

// ParallelOK reports whether group-parallel execution is sound right now.
// Five observers force the global sequential order: a tracer (its event log
// is a totally ordered transcript), the process-lost handler (a permanent
// crash scans and may kill processes in every group), a membership
// service (its all-to-all heartbeat fabric makes every node pair "might
// interact" — the sharing relation is the complete graph, so the only sound
// partition is one group), a contended interconnect fabric (a rack/
// spine topology shares ToR uplinks between node pairs, so disjoint groups
// would race on link occupancy), and a timer source (its firings read and
// steer global state — an open-loop arrival placement weighs every node's
// load). OnAdvance is fine — the engine samples the
// frontier only at barriers, and the power meter integrates energy from
// counter deltas, so totals are unchanged.
func (cl *Cluster) ParallelOK() bool {
	ok := cl.OnProcessLost == nil && cl.Tracer == nil && cl.member == nil &&
		cl.timer == nil && !cl.IC.Contended()
	if !ok {
		cl.parGroups = false
	}
	return ok
}

// markFootprint marks every node in p's sharing set: nodes the kernel could
// read or write on p's behalf before the next barrier. That is its origin
// (filesystem and break authority), every live thread's host, the source of
// any migration in flight (a destination crash rehomes the thread there),
// every node holding resident DSM pages (transfer/invalidation endpoints),
// and the target of any requested-but-unconsumed migration.
func (cl *Cluster) markFootprint(p *Process, mark []bool) {
	mark[p.Origin] = true
	for _, t := range p.threads {
		if t.State == Exited {
			continue
		}
		mark[t.Node] = true
		if t.State == InFlight {
			mark[t.inflightFrom] = true
		}
	}
	for n := range cl.Kernels {
		if p.Space.HasResident(n) {
			mark[n] = true
		}
	}
	for _, tgt := range p.pendingMig {
		if tgt >= 0 && tgt < len(cl.Kernels) {
			mark[tgt] = true
		}
	}
}

// footprint returns p's sharing set as a sorted node list.
func (cl *Cluster) footprint(p *Process) []int {
	mark := make([]bool, len(cl.Kernels))
	cl.markFootprint(p, mark)
	nodes := make([]int, 0, len(mark))
	for n, m := range mark {
		if m {
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// Groups partitions the nodes into sharing groups: the connected components
// of the union of all live processes' footprints. Disjoint groups share no
// mutable state — kernels, run queues, DSM directories, per-link and
// per-node interconnect shards — so the parallel engine may run them
// concurrently. Both the list and each group are sorted ascending.
func (cl *Cluster) Groups() [][]int {
	n := len(cl.Kernels)
	if len(cl.groupOf) != n {
		cl.groupOf = make([]int, n)
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	mark := make([]bool, n)
	for _, p := range cl.procs {
		if p.exited {
			continue
		}
		for i := range mark {
			mark[i] = false
		}
		cl.markFootprint(p, mark)
		first := -1
		for i, m := range mark {
			if !m {
				continue
			}
			if first < 0 {
				first = i
				continue
			}
			ra, rb := find(first), find(i)
			if ra != rb {
				if rb < ra {
					ra, rb = rb, ra
				}
				parent[rb] = ra
			}
		}
	}
	groups := make([][]int, 0, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = -1
	}
	// Ascending scan with min-root union keeps every group sorted and the
	// group list ordered by smallest member.
	for i := 0; i < n; i++ {
		r := find(i)
		if idx[r] < 0 {
			idx[r] = len(groups)
			groups = append(groups, nil)
		}
		cl.groupOf[i] = idx[r]
		groups[idx[r]] = append(groups[idx[r]], i)
	}
	cl.parGroups = len(groups) > 1
	return groups
}
