package kernel

import (
	"fmt"

	"heterodc/internal/isa"
	"heterodc/internal/mem"
	"heterodc/internal/msg"
	"heterodc/internal/xform"
)

// MigrationEvent reports one completed stack transformation + thread
// migration, for the Figure 10/11 experiments.
type MigrationEvent struct {
	Time     float64
	Pid      int
	Tid      int64
	From, To int
	FromArch isa.Arch
	Stats    xform.Stats
	// XformSeconds is the modelled user-space transformation latency.
	XformSeconds float64
	// FuncName is the function containing the migration point.
	FuncName string
	// Serialized marks a whole-state (PadMig-style) migration; StateBytes is
	// the serialized payload size.
	Serialized bool
	StateBytes int64
}

// migratePayloadBytes sizes the thread-migration message: register file,
// continuation metadata and service bookkeeping.
const migratePayloadBytes = 1024

// Serialization-baseline rates: reflection-driven serialization and
// deserialization throughput (PadMig's Java object walk), calibrated so the
// end-to-end shape matches the paper's Figure 11 (seconds of dead time
// around the transfer at full application scale).
const (
	serializeBytesPerSec   = 45e6
	deserializeBytesPerSec = 60e6
	serializeBaseSeconds   = 200e-6
)

// migratePayload crosses kernels with a migrating thread.
type migratePayload struct {
	t *Thread
	// deserializeSeconds is charged at the destination before the thread
	// becomes runnable (zero for native multi-ISA migration).
	deserializeSeconds float64
	// undo restores the thread on its source if the migration aborts.
	undo threadUndo
	// inc stamps the destination incarnation the sender addressed; the
	// delivery fence drops the payload if it has been declared dead since.
	inc uint64
}

// threadUndo snapshots the source-side state a migration rolls back to when
// it aborts: the pre-transformation registers and PC, the stack half they
// ran on, and the node. Restoring these resumes the thread at the migration
// point as if the syscall had returned 0 (stay).
type threadUndo struct {
	regs xform.RegState
	pc   uint64
	half int
	node int
}

// abortMigration rolls an InFlight thread back onto its source node and
// returns the source kernel.
func (cl *Cluster) abortMigration(t *Thread, undo threadUndo) *Kernel {
	src := cl.Kernels[undo.node]
	t.Regs = undo.regs
	t.PC = undo.pc
	t.CurHalf = undo.half
	t.Node = undo.node
	// The migrate syscall reads as 0 ("stayed put") when the thread resumes.
	t.Regs.I[src.Desc.IntRet] = 0
	src.MigrationsAborted++
	return src
}

// rehome returns an in-flight migrating thread to its source after the
// destination crashed under it (called from CrashNode's queue drain).
func (cl *Cluster) rehome(mp *migratePayload, now float64) {
	t := mp.t
	if t.State != InFlight || t.Proc.exited {
		return
	}
	src := cl.abortMigration(t, mp.undo)
	cl.tracefNode(mp.undo.node, now, "migrate-rehome", "tid %d of pid %d back to node %d", t.Tid, t.Proc.Pid, mp.undo.node)
	src.enqueue(t)
}

// XformLatency models the stack transformation's wall time from the work it
// performed, calibrated to the paper's Figure 10: the x86 machine rewrites
// typical stacks in under ~400 µs, the ARM machine in roughly twice that,
// and latency grows with the number of frames and live values (metadata
// parsing plus value copying).
func XformLatency(arch isa.Arch, st xform.Stats) float64 {
	lat := 55e-6 +
		28e-6*float64(st.Frames) +
		3.2e-6*float64(st.LiveValues) +
		0.012e-6*float64(st.AllocaBytes/8) +
		2.5e-6*float64(st.RegWalks)
	if arch == isa.ARM64 {
		lat *= 2.05
	}
	return lat
}

// migrateThread implements the thread-migration service: it runs the
// user-space stack transformation, then ships the thread's transformed
// register state to the target kernel. Memory stays behind and follows on
// demand through the hDSM service (no stop-the-world).
func (k *Kernel) migrateThread(cs *coreSlot, target int) bool {
	c := cs.core
	t := cs.thr
	p := t.Proc
	cl := k.cluster

	delete(p.pendingMig, t.Tid)
	if target == k.Node || target < 0 || target >= len(cl.Kernels) {
		k.vdsoSetFlag(p, t.Tid, 0)
		c.SetSyscallResult(0)
		return false
	}
	if cl.parGroups && cl.groupOf[target] != cl.groupOf[k.Node] {
		// A direct migrate(n) syscall to a node outside the sharing group
		// while groups run in parallel: refuse it deterministically (the
		// thread stays put, the syscall reads 0). The vDSO request path never
		// gets here — its pending target joins the group at the barrier
		// before the flag can be consumed.
		k.vdsoSetFlag(p, t.Tid, 0)
		c.SetSyscallResult(0)
		k.MigrationsAborted++
		return false
	}
	if cl.member != nil {
		// With a failure detector installed, the migration service consults
		// this node's lease view, not the oracle: an expired lease aborts at
		// the migration point before any state moves. A crashed-but-not-yet-
		// suspected target is allowed through — the reliable transfer below
		// then waits the outage out or exhausts its retries and rolls back,
		// which is exactly what lease expiry mid-handshake looks like.
		if cl.member.Suspected(k.Node, target) {
			k.vdsoSetFlag(p, t.Tid, 0)
			c.SetSyscallResult(0)
			k.MigrationsAborted++
			cl.tracefNode(k.Node, k.now, "migrate-abort", "tid %d of pid %d: node %d lease expired", t.Tid, p.Pid, target)
			return false
		}
	} else if cl.NodeDown(target) {
		// Destination is crashed: abort at the migration point before any
		// state moves; the thread keeps running where it is.
		k.vdsoSetFlag(p, t.Tid, 0)
		c.SetSyscallResult(0)
		k.MigrationsAborted++
		cl.tracefNode(k.Node, k.now, "migrate-abort", "tid %d of pid %d: node %d is down", t.Tid, p.Pid, target)
		return false
	}
	if !p.Img.Aligned {
		k.detach(cs)
		k.killProcess(p, fmt.Errorf("kernel: cannot migrate unaligned binary %q", p.Img.Name))
		return true
	}
	dstK := cl.Kernels[target]

	// The serialization baseline walks and ships the whole application state
	// up front; the thread resumes only after deserialization completes.
	var serializeLat, deserializeLat float64
	var stateBytes int64
	if p.serializedMigration {
		pages := p.Space.OwnedPages()
		stateBytes = int64(len(pages)) * 4096
		serializeLat = serializeBaseSeconds + float64(stateBytes)/serializeBytesPerSec
		deserializeLat = float64(stateBytes) / deserializeBytesPerSec
	} else if p.eagerPageMigration {
		stateBytes = int64(len(p.Space.OwnedPages())) * 4096
	}

	srcLo, srcHi := t.StackHalfBounds()
	dstLo, dstHi := t.OtherHalfBounds()
	km := &kmem{k: k, p: p}
	in := &xform.Input{
		SrcProg:    p.Img.Prog(k.Arch),
		DstProg:    p.Img.Prog(dstK.Arch),
		Mem:        km,
		Regs:       xform.RegState{I: c.RegsI, F: c.RegsF},
		PC:         c.PC,
		SrcStackLo: srcLo, SrcStackHi: srcHi,
		DstStackLo: dstLo, DstStackHi: dstHi,
	}
	out, err := xform.Transform(in)
	if err != nil {
		k.detach(cs)
		k.killProcess(p, fmt.Errorf("kernel: stack transformation failed: %w", err))
		return true
	}

	// Attribute the event to the application function that hit the point
	// (the innermost transformed frame), not the check itself.
	funcName := ""
	if fi := p.Img.Prog(dstK.Arch).SMap.FuncAt(out.PC); fi != nil {
		funcName = fi.Name
	}

	xlat := XformLatency(k.Arch, out.Stats) + km.Lat
	if p.serializedMigration {
		// The state walk dominates; the (free) bytecode-level remapping
		// replaces the stack transformation.
		xlat = serializeLat
	}
	// The transformation/serialization runs in user space on the source
	// core: busy time.
	k.BusySeconds += xlat
	k.CyclesRetired += int64(xlat * k.Desc.ClockHz)

	k.vdsoSetFlag(p, t.Tid, 0)
	k.detach(cs)
	undo := threadUndo{regs: t.Regs, pc: t.PC, half: t.CurHalf, node: k.Node}
	t.State = InFlight
	t.Node = target
	t.inflightFrom = k.Node
	t.CurHalf = 1 - t.CurHalf
	t.Regs = out.Regs
	t.PC = out.PC

	payloadSize := int64(migratePayloadBytes)
	if p.serializedMigration || p.eagerPageMigration {
		// Move every page eagerly with the serialized state.
		for _, pg := range p.Space.OwnedPages() {
			prev, moved := p.Space.ForceOwn(target, pg)
			if !moved {
				p.Mems[target].Unprotect(pg << mem.PageShift)
				continue
			}
			base := pg << mem.PageShift
			var snap *mem.Page
			if src := p.Mems[prev].Page(base); src != nil {
				cp := *src
				snap = &cp
			}
			for n := range p.Mems {
				if n != target {
					p.Mems[n].DropPage(base)
				}
			}
			dst := p.Mems[target].EnsurePage(base)
			if snap != nil {
				*dst = *snap
			}
			p.Mems[target].Unprotect(base)
			k.PagesOut++
			cl.Kernels[target].PagesIn++
		}
		payloadSize = stateBytes + migratePayloadBytes
	}
	sentAt, ok := cl.IC.SendReliable(k.now+xlat, k.Node, target, msg.TThreadMigrate, payloadSize,
		&migratePayload{t: t, deserializeSeconds: deserializeLat, undo: undo, inc: cl.incarnation[target]})
	if !ok {
		// Transfer retries exhausted or the destination died for good
		// mid-handshake: roll the thread back onto this node. The time the
		// reliable channel burned trying is real — the thread sleeps it off
		// before resuming at the migration point.
		cl.abortMigration(t, undo)
		cl.tracefNode(k.Node, k.now, "migrate-abort", "tid %d of pid %d: transfer to node %d failed", t.Tid, p.Pid, target)
		if sentAt > k.now {
			k.sleep(t, sentAt)
		} else {
			k.enqueue(t)
		}
		return true
	}
	t.Migrations++
	k.MigrationsOut++

	if cl.OnMigration != nil {
		// Serialised across sharing groups: observers see one event at a time.
		cl.cbMu.Lock()
		cl.OnMigration(MigrationEvent{
			Time: k.now, Pid: p.Pid, Tid: t.Tid,
			From: k.Node, To: target, FromArch: k.Arch,
			Stats: out.Stats, XformSeconds: xlat, FuncName: funcName,
			Serialized: p.serializedMigration, StateBytes: stateBytes,
		})
		cl.cbMu.Unlock()
	}
	return true
}

// RequestMigration asks thread tid of p to migrate to target at its next
// migration point (the scheduler raising the vDSO flag).
func (cl *Cluster) RequestMigration(p *Process, tid int64, target int) error {
	if target < 0 || target >= len(cl.Kernels) {
		return fmt.Errorf("kernel: no node %d", target)
	}
	t := p.threads[tid]
	if t == nil {
		return fmt.Errorf("kernel: no thread %d", tid)
	}
	if t.State == Exited {
		return fmt.Errorf("kernel: thread %d exited", tid)
	}
	k := cl.Kernels[t.Node]
	k.vdsoSetFlag(p, tid, int64(target)+1)
	p.pendingMig[tid] = target
	return nil
}

// RequestProcessMigration raises the migration flag for every live thread
// of p (heterogeneous OS-container migration).
func (cl *Cluster) RequestProcessMigration(p *Process, target int) {
	for _, t := range p.threads {
		if t.State != Exited {
			cl.Kernels[t.Node].vdsoSetFlag(p, t.Tid, int64(target)+1)
			p.pendingMig[t.Tid] = target
		}
	}
}
