package compiler

import (
	"fmt"

	"heterodc/internal/ir"
	"heterodc/internal/mem"
	"heterodc/internal/sys"
)

// Runtime-library function names.
const (
	// MigrateCheckFunc is the migration-point call-out: it reads the
	// per-thread migration-request word on the vDSO page and, when set,
	// performs the state transformation and migration syscall.
	MigrateCheckFunc = "__migrate_check"
	// StartFunc is the process entry shim: calls main and exits.
	StartFunc = "__start"
	// ThreadStartFunc is the thread entry shim used by spawn.
	ThreadStartFunc = "__thread_start"
)

// AddRuntime installs the IR runtime shims into m (idempotent). Every
// migratable program needs them; the mini-C driver calls this automatically.
func AddRuntime(m *ir.Module) error {
	if m.Func(MigrateCheckFunc) != nil {
		return nil
	}

	// __migrate_check: the paper's migration point body — "a function call
	// and a memory read". Reads the current tid (a per-CPU value the core
	// materialises, standing in for the thread-pointer register), then the
	// per-thread request word; traps into the kernel only when requested.
	{
		b := ir.NewFunc(MigrateCheckFunc, ir.Void)
		b.F.NoMigrate = true
		tidAddr := b.Const(int64(sys.VDSOTidAddr))
		tid := b.Load(ir.I64, tidAddr, 0)
		off := b.BinImm(ir.Shl, tid, 3)
		base := b.Const(int64(mem.VDSOBase + sys.VDSOFlagsOff))
		flagAddr := b.Bin(ir.Add, base, off)
		req := b.Load(ir.I64, flagAddr, 0)
		doBlk := b.NewBlock("do")
		retBlk := b.NewBlock("ret")
		b.SetBlock(0)
		b.CondBr(req, doBlk, retBlk)
		b.SetBlock(doBlk)
		target := b.BinImm(ir.Sub, req, 1)
		b.Syscall(sys.SysMigrate, target)
		b.Br(retBlk)
		b.SetBlock(retBlk)
		b.Ret(ir.NoV)
		if err := m.AddFunc(b.Done()); err != nil {
			return err
		}
	}

	// __start: process entry. Calls main() and exits with its result.
	{
		b := ir.NewFunc(StartFunc, ir.Void)
		b.F.NoMigrate = true
		b.F.IsEntry = true
		ret := b.Call(ir.I64, "main")
		b.Syscall(sys.SysExit, ret)
		b.Ret(ir.NoV)
		if err := m.AddFunc(b.Done()); err != nil {
			return err
		}
	}

	// __thread_start(fn, arg): thread entry. Calls fn(arg) indirectly and
	// exits the thread with its result.
	{
		b := ir.NewFunc(ThreadStartFunc, ir.Void,
			ir.Param{Name: "fn", Type: ir.Ptr},
			ir.Param{Name: "arg", Type: ir.I64})
		b.F.NoMigrate = true
		b.F.IsEntry = true
		ret := b.CallInd(ir.I64, b.Param(0), b.Param(1))
		b.Syscall(sys.SysExitThr, ret)
		b.Ret(ir.NoV)
		if err := m.AddFunc(b.Done()); err != nil {
			return err
		}
	}
	return nil
}

// MigrationOptions controls the migration-point insertion pass. The paper
// inserts points at function boundaries and then — guided by a
// Valgrind-based instruction-distance analysis — at additional locations
// until the application can migrate roughly once per scheduling quantum,
// while keeping check overhead negligible. The static equivalents here:
// direct points at outer-loop back edges; down-counting polls (two
// instructions per iteration, one point per CounterInterval iterations) in
// nested phase loops, call-containing loops and large-bodied innermost
// loops; nothing in small hot leaves and tight inner loops, whose gaps the
// enclosing polls bound.
type MigrationOptions struct {
	// FunctionEntry inserts a point at every function entry.
	FunctionEntry bool
	// FunctionExit inserts a point before every return.
	FunctionExit bool
	// LoopBackEdges inserts points on loop back edges.
	LoopBackEdges bool
	// MaxLoopDepth limits back-edge points to loops nested at most this
	// deep (1 = outermost loops only). 0 means 1.
	MaxLoopDepth int
	// SkipSmallLeaf skips insertion entirely in leaf functions with at most
	// this many IR instructions (0 means 16). Such functions execute a
	// bounded handful of instructions between their caller's points.
	SkipSmallLeaf int
	// MinLoopBody is the smallest static loop body (IR instructions) that
	// receives a back-edge point (0 means 24); smaller loops amortise their
	// caller-side points instead, keeping check overhead negligible.
	MinLoopBody int
	// CounterLoops adds counter-based polling to the remaining substantial
	// loops (nested phases etc.): a register counter incremented per
	// iteration, reaching a migration point every CounterInterval
	// iterations. This bounds the migration response gap inside long
	// phases at ~3 extra instructions per iteration.
	CounterLoops bool
	// CounterInterval is the polling period in iterations (0 means 32).
	CounterInterval int64
	// CounterMinBody is the smallest call-free innermost loop body (IR
	// instructions) that still receives a polling counter (0 means 20): at
	// that size the two-instruction poll stays under ~10% of the body, and
	// without it a long trip count leaves a multi-quantum response gap.
	CounterMinBody int
}

// DefaultMigrationOptions mirrors the paper's final configuration.
func DefaultMigrationOptions() MigrationOptions {
	return MigrationOptions{
		FunctionEntry: true, FunctionExit: true, LoopBackEdges: true,
		MaxLoopDepth: 1, SkipSmallLeaf: 16, MinLoopBody: 24,
		CounterLoops: true, CounterInterval: 32, CounterMinBody: 20,
	}
}

// InsertMigrationPoints runs the migration-point pass over every migratable
// function in m and re-finalises call-site IDs. It requires AddRuntime to
// have run.
func InsertMigrationPoints(m *ir.Module, opt MigrationOptions) error {
	if m.Func(MigrateCheckFunc) == nil {
		return fmt.Errorf("compiler: runtime not installed (call AddRuntime first)")
	}
	maxDepth := opt.MaxLoopDepth
	if maxDepth <= 0 {
		maxDepth = 1
	}
	smallLeaf := opt.SkipSmallLeaf
	if smallLeaf <= 0 {
		smallLeaf = 16
	}
	minBody := opt.MinLoopBody
	if minBody <= 0 {
		minBody = 24
	}
	call := func() ir.Instr {
		return ir.Instr{Kind: ir.KCall, Dst: ir.NoV, A: ir.NoV, B: ir.NoV, C: ir.NoV, Sym: MigrateCheckFunc}
	}
	interval := opt.CounterInterval
	if interval <= 0 {
		interval = 32
	}
	counterMinBody := opt.CounterMinBody
	if counterMinBody <= 0 {
		counterMinBody = 20
	}
	for _, f := range m.Funcs {
		if f.NoMigrate {
			continue
		}
		if isSmallLeaf(f, smallLeaf) {
			continue
		}
		depth := blockLoopDepths(f)
		// One polling counter per function, shared by all counted loops.
		counter := ir.NoV
		var countedEdges []countedEdge
		nBlocks := len(f.Blocks) // counted-loop expansion appends blocks
		for bi := 0; bi < nBlocks; bi++ {
			blk := f.Blocks[bi]
			var out []ir.Instr
			if opt.FunctionEntry && bi == 0 {
				out = append(out, call())
			}
			for ii := range blk.Instrs {
				in := blk.Instrs[ii]
				if in.Kind == ir.KRet && opt.FunctionExit {
					out = append(out, call())
				}
				if opt.LoopBackEdges && isBackEdge(&in, bi) {
					body := loopBodySize(f, &in, bi)
					direct := depth[bi] <= maxDepth && body >= minBody
					// Counter polling covers the loops direct points skip:
					// nested phase loops, call-containing loops (their
					// callees may be point-free leaves), and large-bodied
					// innermost loops whose trip counts would otherwise
					// leave multi-quantum response gaps.
					counted := !direct && opt.CounterLoops &&
						((body >= minBody/2 && (loopContainsLoop(&in, bi, depth) || loopContainsCall(f, &in, bi))) ||
							body >= counterMinBody)
					if direct {
						out = append(out, call())
					} else if counted {
						// Defer: the terminator moves into an expansion.
						if counter == ir.NoV {
							counter = f.NewVReg(ir.I64)
						}
						countedEdges = append(countedEdges, countedEdge{block: bi})
					}
				}
				out = append(out, in)
			}
			blk.Instrs = out
		}
		if counter != ir.NoV {
			// Initialise the down-counter at function entry (after the entry
			// point call, order irrelevant).
			entry := f.Blocks[0]
			init := ir.Instr{Kind: ir.KConst, Dst: counter, Imm: interval, A: ir.NoV, B: ir.NoV, C: ir.NoV}
			entry.Instrs = append([]ir.Instr{init}, entry.Instrs...)
			// Descending block order keeps earlier indices valid while the
			// expansions insert blocks.
			for i := len(countedEdges) - 1; i >= 0; i-- {
				expandCountedEdge(f, countedEdges[i].block, counter, interval)
			}
		}
	}
	// Re-assign call-site IDs deterministically across the whole module so
	// both backends agree.
	for _, f := range m.Funcs {
		f.Finish()
	}
	return nil
}

// countedEdge marks a block whose back-edge terminator gets counter-based
// polling.
type countedEdge struct {
	block int
}

// expandCountedEdge rewrites block bi's terminator T into a down-counting
// poll:
//
//	bi:        ... ; cnt = cnt - 1 ; condbr cnt -> contBlk, checkBlk
//	checkBlk:  cnt = interval ; call __migrate_check ; br contBlk
//	contBlk:   T
//
// The two new blocks are inserted immediately after bi (renumbering later
// branch targets) so the block-index loop heuristics — and therefore
// register-allocation weights — see the same loop structure as before.
// Two extra instructions per iteration; one point per interval iterations.
func expandCountedEdge(f *ir.Func, bi int, counter ir.VReg, interval int64) {
	blk := f.Blocks[bi]
	n := len(blk.Instrs)
	term := blk.Instrs[n-1]

	checkIdx := bi + 1
	contIdx := bi + 2

	// Renumber existing branch targets for the two inserted blocks.
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			switch in.Kind {
			case ir.KBr:
				if in.TargetA > bi {
					in.TargetA += 2
				}
			case ir.KCondBr:
				if in.TargetA > bi {
					in.TargetA += 2
				}
				if in.TargetB > bi {
					in.TargetB += 2
				}
			}
		}
	}
	// The moved terminator's own targets may also need shifting (it sat in
	// block bi; backward targets <= bi are unaffected, forward ones shift).
	switch term.Kind {
	case ir.KBr:
		if term.TargetA > bi {
			term.TargetA += 2
		}
	case ir.KCondBr:
		if term.TargetA > bi {
			term.TargetA += 2
		}
		if term.TargetB > bi {
			term.TargetB += 2
		}
	}

	dec := ir.Instr{Kind: ir.KBinImm, Bin: ir.Sub, Dst: counter, A: counter, Imm: 1, B: ir.NoV, C: ir.NoV}
	br := ir.Instr{Kind: ir.KCondBr, A: counter, TargetA: contIdx, TargetB: checkIdx, Dst: ir.NoV, B: ir.NoV, C: ir.NoV}
	blk.Instrs = append(blk.Instrs[:n-1], dec, br)

	reset := ir.Instr{Kind: ir.KConst, Dst: counter, Imm: interval, A: ir.NoV, B: ir.NoV, C: ir.NoV}
	chk := ir.Instr{Kind: ir.KCall, Dst: ir.NoV, A: ir.NoV, B: ir.NoV, C: ir.NoV, Sym: MigrateCheckFunc}
	toCont := ir.Instr{Kind: ir.KBr, TargetA: contIdx, Dst: ir.NoV, A: ir.NoV, B: ir.NoV, C: ir.NoV}
	checkBlk := &ir.Block{Name: "poll.check", Instrs: []ir.Instr{reset, chk, toCont}}
	contBlk := &ir.Block{Name: "poll.cont", Instrs: []ir.Instr{term}}

	rest := append([]*ir.Block{checkBlk, contBlk}, f.Blocks[bi+1:]...)
	f.Blocks = append(f.Blocks[:bi+1], rest...)
}

// loopContainsLoop reports whether the loop closed by the back edge at
// (block bi) contains a deeper nested loop. Counters go only on such
// loops: the innermost loops' gaps are bounded by the enclosing counter,
// and keeping them polling-free keeps the per-iteration overhead of hot
// kernels negligible.
func loopContainsLoop(in *ir.Instr, bi int, depth []int) bool {
	tgt := bi
	switch in.Kind {
	case ir.KBr:
		tgt = in.TargetA
	case ir.KCondBr:
		tgt = in.TargetA
		if in.TargetB < tgt {
			tgt = in.TargetB
		}
	}
	if tgt > bi {
		tgt = bi
	}
	for b := tgt; b <= bi; b++ {
		if depth[b] > depth[bi] {
			return true
		}
	}
	return false
}

// loopContainsCall reports whether the loop closed by the back edge at
// block bi contains a call-like instruction. Such loops pay call overhead
// per iteration already, so a polling counter is negligible; and their
// callees may be point-free leaves, leaving the loop otherwise uncovered.
func loopContainsCall(f *ir.Func, in *ir.Instr, bi int) bool {
	tgt := bi
	switch in.Kind {
	case ir.KBr:
		tgt = in.TargetA
	case ir.KCondBr:
		tgt = in.TargetA
		if in.TargetB < tgt {
			tgt = in.TargetB
		}
	}
	if tgt > bi {
		tgt = bi
	}
	for b := tgt; b <= bi; b++ {
		for ii := range f.Blocks[b].Instrs {
			if f.Blocks[b].Instrs[ii].IsCallLike() {
				return true
			}
		}
	}
	return false
}

// isSmallLeaf reports whether f is a call-free function small enough that
// points inside it are unnecessary. Functions containing syscalls are never
// leaves: spin-wait helpers (yield) must stay migration-responsive.
func isSmallLeaf(f *ir.Func, limit int) bool {
	n := 0
	for _, blk := range f.Blocks {
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			if in.IsCallLike() {
				return false
			}
			n++
		}
	}
	return n <= limit
}

// loopBodySize returns the static instruction count of the loop body the
// back edge at (block bi, terminator in) closes: blocks [target, bi].
func loopBodySize(f *ir.Func, in *ir.Instr, bi int) int {
	tgt := bi
	switch in.Kind {
	case ir.KBr:
		tgt = in.TargetA
	case ir.KCondBr:
		tgt = in.TargetA
		if in.TargetB < tgt {
			tgt = in.TargetB
		}
	}
	if tgt > bi {
		tgt = bi
	}
	n := 0
	for b := tgt; b <= bi; b++ {
		n += len(f.Blocks[b].Instrs)
	}
	return n
}

// blockLoopDepths estimates per-block loop nesting: each back edge j->k
// (k <= j) deepens blocks k..j by one.
func blockLoopDepths(f *ir.Func) []int {
	depth := make([]int, len(f.Blocks))
	for bi, blk := range f.Blocks {
		in := &blk.Instrs[len(blk.Instrs)-1]
		var targets []int
		switch in.Kind {
		case ir.KBr:
			targets = []int{in.TargetA}
		case ir.KCondBr:
			targets = []int{in.TargetA, in.TargetB}
		}
		for _, tgt := range targets {
			if tgt <= bi {
				for b := tgt; b <= bi; b++ {
					depth[b]++
				}
			}
		}
	}
	return depth
}

// isBackEdge reports whether the terminator branches backward (to a block
// index <= the current block), the loop heuristic used for point placement.
func isBackEdge(in *ir.Instr, bi int) bool {
	switch in.Kind {
	case ir.KBr:
		return in.TargetA <= bi
	case ir.KCondBr:
		return in.TargetA <= bi || in.TargetB <= bi
	}
	return false
}
