package compiler

import (
	"sort"

	"heterodc/internal/ir"
	"heterodc/internal/isa"
)

// home is the per-ISA storage assignment of one virtual register: either a
// callee-saved register or a frame slot. Keeping vreg homes in callee-saved
// registers (only) means values survive calls without caller-save traffic,
// and gives the stack-transformation runtime both location flavours the
// paper handles: register-resident values (found via the callee-save chain)
// and frame-slot values.
type home struct {
	inReg   bool
	reg     isa.Reg
	off     int64 // FP-relative slot offset when !inReg
	isFloat bool
	used    bool // vreg appears in the function at all
}

// frame is the per-ISA frame layout of one function.
type frame struct {
	homes []home
	// usedCSInt / usedCSFloat: callee-saved registers the prologue must save,
	// in save order, with their FP-relative save-slot offsets.
	saveRegs []savedReg
	// allocaOff[i] is the FP-relative offset of alloca slot i.
	allocaOff []int64
	// localSize is the FP-to-lowest-local distance (before out-args).
	localSize int64
	// outArgBytes is the outgoing stack-argument area (at SP).
	outArgBytes int64
	// frameSize = FP - SP in steady state.
	frameSize int64
}

type savedReg struct {
	reg     isa.Reg
	isFloat bool
	off     int64
}

// maxStackArgBytes scans the function's call sites and returns the size of
// the largest outgoing stack-argument area required under desc's ABI.
func maxStackArgBytes(m *ir.Module, f *ir.Func, desc *isa.Desc) int64 {
	var max int64
	for _, blk := range f.Blocks {
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			var types []ir.Type
			switch in.Kind {
			case ir.KCall:
				callee := m.Func(in.Sym)
				for _, p := range callee.Params {
					types = append(types, p.Type)
				}
			case ir.KCallInd:
				for _, a := range in.Args {
					types = append(types, f.TypeOf(a))
				}
			default:
				continue
			}
			n := stackArgCount(types, desc)
			if b := int64(n) * 8; b > max {
				max = b
			}
		}
	}
	return max
}

// stackArgCount returns how many of the given params overflow to the stack.
func stackArgCount(types []ir.Type, desc *isa.Desc) int {
	ints, floats, stack := 0, 0, 0
	for _, t := range types {
		if t.IsFloat() {
			if floats < len(desc.FloatArgRegs) {
				floats++
			} else {
				stack++
			}
		} else {
			if ints < len(desc.IntArgRegs) {
				ints++
			} else {
				stack++
			}
		}
	}
	return stack
}

// argLocs assigns each parameter either a register or a stack index under
// desc's ABI. Returned slices are parallel to types: reg[i] is the arg
// register (or isa.NoReg) and stackIdx[i] the 0-based stack slot (or -1).
func argLocs(types []ir.Type, desc *isa.Desc) (reg []isa.Reg, stackIdx []int) {
	reg = make([]isa.Reg, len(types))
	stackIdx = make([]int, len(types))
	ints, floats, stack := 0, 0, 0
	for i, t := range types {
		reg[i] = isa.NoReg
		stackIdx[i] = -1
		if t.IsFloat() {
			if floats < len(desc.FloatArgRegs) {
				reg[i] = desc.FloatArgRegs[floats]
				floats++
			} else {
				stackIdx[i] = stack
				stack++
			}
		} else {
			if ints < len(desc.IntArgRegs) {
				reg[i] = desc.IntArgRegs[ints]
				ints++
			} else {
				stackIdx[i] = stack
				stack++
			}
		}
	}
	return reg, stackIdx
}

// buildFrame assigns vreg homes and computes the frame layout for f on desc.
func buildFrame(m *ir.Module, f *ir.Func, lv *liveness, desc *isa.Desc) *frame {
	nv := f.NumVRegs()
	fr := &frame{homes: make([]home, nv)}

	// Mark used vregs (params are always "used": they must be homed).
	used := make([]bool, nv)
	for i := range f.Params {
		used[i] = true
	}
	var ubuf []ir.VReg
	for _, blk := range f.Blocks {
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			ubuf = uses(in, ubuf)
			for _, v := range ubuf {
				used[v] = true
			}
			if dv := def(in); dv != ir.NoV {
				used[dv] = true
			}
		}
	}

	// Priority order: weight descending, vreg ascending for determinism.
	order := make([]int, 0, nv)
	for v := 0; v < nv; v++ {
		if used[v] {
			order = append(order, v)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		ci, cj := f.IsCold(ir.VReg(order[i])), f.IsCold(ir.VReg(order[j]))
		if ci != cj {
			return !ci // cold vregs allocate last
		}
		wi, wj := lv.weight[order[i]], lv.weight[order[j]]
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})

	intPool := desc.CalleeSavedInt
	floatPool := desc.CalleeSavedFloat
	nextInt, nextFloat := 0, 0
	usedInt := map[isa.Reg]bool{}
	usedFloat := map[isa.Reg]bool{}

	for _, v := range order {
		isF := f.TypeOf(ir.VReg(v)).IsFloat()
		h := home{isFloat: isF, used: true}
		if isF {
			if nextFloat < len(floatPool) {
				h.inReg, h.reg = true, floatPool[nextFloat]
				usedFloat[h.reg] = true
				nextFloat++
			}
		} else {
			if nextInt < len(intPool) {
				h.inReg, h.reg = true, intPool[nextInt]
				usedInt[h.reg] = true
				nextInt++
			}
		}
		fr.homes[v] = h
	}

	// Frame layout below FP: callee-saved save slots, then allocas, then
	// spill slots. Offsets are negative.
	off := int64(0)
	// Save slots, in the ISA's canonical callee-saved order (deterministic).
	for _, r := range intPool {
		if usedInt[r] {
			off -= 8
			fr.saveRegs = append(fr.saveRegs, savedReg{reg: r, off: off})
		}
	}
	for _, r := range floatPool {
		if usedFloat[r] {
			off -= 8
			fr.saveRegs = append(fr.saveRegs, savedReg{reg: r, isFloat: true, off: off})
		}
	}
	// Alloca slots.
	fr.allocaOff = make([]int64, len(f.AllocaSizes))
	for i, sz := range f.AllocaSizes {
		off -= sz
		fr.allocaOff[i] = off
	}
	// Spill slots for vregs without registers.
	for _, v := range order {
		h := &fr.homes[v]
		if !h.inReg {
			off -= 8
			h.off = off
		}
	}
	fr.localSize = -off
	fr.outArgBytes = maxStackArgBytes(m, f, desc)
	total := fr.localSize + fr.outArgBytes
	// Round the frame so SP stays ISA-aligned (both ISAs use 16 here; the
	// arm64 prologue additionally accounts for its 16-byte FP/LR pair).
	total = (total + 15) &^ 15
	fr.frameSize = total
	return fr
}
