package compiler

import (
	"heterodc/internal/ir"
)

// InlineTinyFunctions performs bottom-up inlining of trivial callees:
// single-block, alloca-free, call-free functions of at most maxInstrs IR
// instructions. Production compilers inline these at -O3; without it, a
// three-line helper called in a hot loop pays call/return and (worse)
// migration-point overhead on every iteration. Returns the number of call
// sites inlined.
func InlineTinyFunctions(m *ir.Module, maxInstrs, rounds int) int {
	if maxInstrs <= 0 {
		maxInstrs = 24
	}
	if rounds <= 0 {
		rounds = 3
	}
	total := 0
	for r := 0; r < rounds; r++ {
		n := inlineRound(m, maxInstrs)
		total += n
		if n == 0 {
			break
		}
	}
	return total
}

// inlinable reports whether f can be spliced into callers: its entry block
// must be straight-line (no branches, no calls) and end in a return, which
// makes every other block unreachable (the frontend emits a dead implicit-
// return block after explicit returns).
func inlinable(f *ir.Func, maxInstrs int) bool {
	if f.NoMigrate || f.IsEntry {
		return false
	}
	if len(f.AllocaSizes) != 0 {
		return false
	}
	blk := f.Blocks[0]
	if len(blk.Instrs) == 0 || len(blk.Instrs) > maxInstrs {
		return false
	}
	for i := range blk.Instrs {
		in := &blk.Instrs[i]
		if in.IsCallLike() || in.Kind == ir.KBr || in.Kind == ir.KCondBr {
			return false
		}
	}
	return blk.Instrs[len(blk.Instrs)-1].Kind == ir.KRet
}

func inlineRound(m *ir.Module, maxInstrs int) int {
	candidates := map[string]*ir.Func{}
	for _, f := range m.Funcs {
		if inlinable(f, maxInstrs) {
			candidates[f.Name] = f
		}
	}
	if len(candidates) == 0 {
		return 0
	}
	count := 0
	for _, f := range m.Funcs {
		for _, blk := range f.Blocks {
			var out []ir.Instr
			changed := false
			for ii := range blk.Instrs {
				in := blk.Instrs[ii]
				callee := (*ir.Func)(nil)
				if in.Kind == ir.KCall {
					if g, ok := candidates[in.Sym]; ok && g.Name != f.Name {
						callee = g
					}
				}
				if callee == nil {
					out = append(out, in)
					continue
				}
				out = append(out, splice(f, callee, &in)...)
				changed = true
				count++
			}
			if changed {
				blk.Instrs = out
			}
		}
	}
	return count
}

// splice produces the inlined body of callee for the call instruction in,
// allocating fresh vregs in caller and binding parameters to arguments.
func splice(caller, callee *ir.Func, call *ir.Instr) []ir.Instr {
	vmap := make([]ir.VReg, callee.NumVRegs())
	for v := 0; v < callee.NumVRegs(); v++ {
		vmap[v] = caller.NewVReg(callee.TypeOf(ir.VReg(v)))
	}
	var out []ir.Instr
	// Bind parameters.
	for i := range callee.Params {
		out = append(out, ir.Instr{
			Kind: ir.KMov, Dst: vmap[i], A: call.Args[i], B: ir.NoV, C: ir.NoV,
		})
	}
	remap := func(v ir.VReg) ir.VReg {
		if v == ir.NoV {
			return ir.NoV
		}
		return vmap[v]
	}
	body := callee.Blocks[0].Instrs
	for i := range body {
		src := body[i]
		if src.Kind == ir.KRet {
			if call.Dst != ir.NoV && src.A != ir.NoV {
				out = append(out, ir.Instr{
					Kind: ir.KMov, Dst: call.Dst, A: remap(src.A), B: ir.NoV, C: ir.NoV,
				})
			}
			break // single return terminates the body
		}
		dup := src
		dup.Dst = remap(src.Dst)
		dup.A = remap(src.A)
		dup.B = remap(src.B)
		dup.C = remap(src.C)
		if len(src.Args) > 0 {
			dup.Args = make([]ir.VReg, len(src.Args))
			for j, a := range src.Args {
				dup.Args[j] = remap(a)
			}
		}
		out = append(out, dup)
	}
	return out
}
