package compiler

import (
	"heterodc/internal/ir"
)

// liveness computes, for every instruction of f, the set of virtual
// registers live *after* it. It runs once on the IR, so the live set at
// each call site — the set the stackmaps describe — is identical for every
// ISA backend, which is the property that lets the runtime correlate live
// values across architectures.
type liveness struct {
	f *ir.Func
	// liveOut[block][instr] is a bitset over vregs.
	liveOut [][]bitset
	// blockIn[b] is the live-in set of block b.
	blockIn []bitset
	// weight[v] is the allocation priority of vreg v (loop-weighted use count).
	weight []int64
}

// bitset is a simple word-packed vreg set.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i ir.VReg)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i ir.VReg)    { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) has(i ir.VReg) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// orInto ors src into b and reports whether b changed.
func (b bitset) orInto(src bitset) bool {
	changed := false
	for i, w := range src {
		if b[i]|w != b[i] {
			b[i] |= w
			changed = true
		}
	}
	return changed
}

func (b bitset) members(n int) []ir.VReg {
	var out []ir.VReg
	for v := 0; v < n; v++ {
		if b.has(ir.VReg(v)) {
			out = append(out, ir.VReg(v))
		}
	}
	return out
}

// uses returns the vregs read by in (into buf, returned).
func uses(in *ir.Instr, buf []ir.VReg) []ir.VReg {
	buf = buf[:0]
	add := func(v ir.VReg) {
		if v != ir.NoV {
			buf = append(buf, v)
		}
	}
	switch in.Kind {
	case ir.KConst, ir.KFConst, ir.KAllocaAddr, ir.KGlobalAddr:
	case ir.KMov, ir.KFNeg, ir.KFSqrt, ir.KI2F, ir.KF2I, ir.KBinImm,
		ir.KLoad, ir.KLoadB:
		add(in.A)
	case ir.KBin, ir.KFBin, ir.KCmp, ir.KFCmp, ir.KStore, ir.KStoreB:
		add(in.A)
		add(in.B)
	case ir.KAtomicAdd:
		add(in.A)
		add(in.B)
	case ir.KAtomicCAS:
		add(in.A)
		add(in.B)
		add(in.C)
	case ir.KCall:
		for _, a := range in.Args {
			add(a)
		}
	case ir.KCallInd:
		add(in.A)
		for _, a := range in.Args {
			add(a)
		}
	case ir.KSyscall:
		for _, a := range in.Args {
			add(a)
		}
	case ir.KRet:
		add(in.A)
	case ir.KBr:
	case ir.KCondBr:
		add(in.A)
	}
	return buf
}

// def returns the vreg written by in, or NoV.
func def(in *ir.Instr) ir.VReg {
	switch in.Kind {
	case ir.KStore, ir.KStoreB, ir.KRet, ir.KBr, ir.KCondBr:
		return ir.NoV
	}
	return in.Dst
}

// successors returns the block successors of the terminator in.
func successors(in *ir.Instr) []int {
	switch in.Kind {
	case ir.KBr:
		return []int{in.TargetA}
	case ir.KCondBr:
		return []int{in.TargetA, in.TargetB}
	}
	return nil
}

// computeLiveness runs the standard backward dataflow to a fixed point.
func computeLiveness(f *ir.Func) *liveness {
	nv := f.NumVRegs()
	nb := len(f.Blocks)
	lv := &liveness{
		f:       f,
		liveOut: make([][]bitset, nb),
		blockIn: make([]bitset, nb),
		weight:  make([]int64, nv),
	}
	for b := range f.Blocks {
		lv.blockIn[b] = newBitset(nv)
		lv.liveOut[b] = make([]bitset, len(f.Blocks[b].Instrs))
	}

	// Block-level use/def.
	blockUse := make([]bitset, nb)
	blockDef := make([]bitset, nb)
	var ubuf []ir.VReg
	for bi, blk := range f.Blocks {
		u := newBitset(nv)
		d := newBitset(nv)
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			ubuf = uses(in, ubuf)
			for _, v := range ubuf {
				if !d.has(v) {
					u.set(v)
				}
			}
			if dv := def(in); dv != ir.NoV {
				d.set(dv)
			}
		}
		blockUse[bi] = u
		blockDef[bi] = d
	}

	// Fixed point on block live-in: in[b] = use[b] ∪ (out[b] − def[b]),
	// out[b] = ∪ in[succ].
	blockOut := make([]bitset, nb)
	for b := range blockOut {
		blockOut[b] = newBitset(nv)
	}
	for changed := true; changed; {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			blk := f.Blocks[bi]
			term := &blk.Instrs[len(blk.Instrs)-1]
			out := blockOut[bi]
			for _, s := range successors(term) {
				if out.orInto(lv.blockIn[s]) {
					changed = true
				}
			}
			in := out.clone()
			for i := range in {
				in[i] &^= blockDef[bi][i]
				in[i] |= blockUse[bi][i]
			}
			if lv.blockIn[bi].orInto(in) {
				changed = true
			}
		}
	}

	// Per-instruction live-out within each block (backward sweep).
	for bi, blk := range f.Blocks {
		live := blockOut[bi].clone()
		for ii := len(blk.Instrs) - 1; ii >= 0; ii-- {
			lv.liveOut[bi][ii] = live.clone()
			in := &blk.Instrs[ii]
			if dv := def(in); dv != ir.NoV {
				live.clear(dv)
			}
			ubuf = uses(in, ubuf)
			for _, v := range ubuf {
				live.set(v)
			}
		}
	}

	lv.computeWeights()
	return lv
}

// computeWeights assigns each vreg a loop-depth-weighted use count, the
// priority key for callee-saved register assignment.
func (lv *liveness) computeWeights() {
	f := lv.f
	nb := len(f.Blocks)
	depth := make([]int, nb)
	// A back edge j->k (k <= j) makes blocks k..j one loop level deeper.
	for bi, blk := range f.Blocks {
		term := &blk.Instrs[len(blk.Instrs)-1]
		for _, s := range successors(term) {
			if s <= bi {
				for b := s; b <= bi; b++ {
					depth[b]++
				}
			}
		}
	}
	var ubuf []ir.VReg
	for bi, blk := range f.Blocks {
		w := int64(1)
		for d := 0; d < depth[bi] && d < 6; d++ {
			w *= 8
		}
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			ubuf = uses(in, ubuf)
			for _, v := range ubuf {
				lv.weight[v] += w
			}
			if dv := def(in); dv != ir.NoV {
				lv.weight[dv] += w
			}
		}
	}
}

// liveAcrossCall returns the vregs live after the call instruction at
// (block, idx), excluding the call's own destination — the stackmap set.
func (lv *liveness) liveAcrossCall(block, idx int) []ir.VReg {
	in := &lv.f.Blocks[block].Instrs[idx]
	out := lv.liveOut[block][idx].clone()
	if dv := def(in); dv != ir.NoV {
		out.clear(dv)
	}
	return out.members(lv.f.NumVRegs())
}
