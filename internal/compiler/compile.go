// Package compiler lowers IR modules to per-ISA machine code, producing the
// multi-ISA artefacts the paper's toolchain produces: one code stream per
// architecture plus per-call-site live-value stackmaps and per-function
// frame-unwinding metadata. Symbol placement (the common address-space
// layout) is the linker's job; see internal/link.
package compiler

import (
	"fmt"

	"heterodc/internal/ir"
	"heterodc/internal/isa"
)

// Options configures a compilation.
type Options struct {
	// Migration inserts migration points (and the runtime shims). Disable to
	// build the uninstrumented baseline used by the overhead experiments
	// (Figures 6-9).
	Migration bool
	// MigrationOpts tunes point placement when Migration is set.
	MigrationOpts MigrationOptions
	// NoInline disables tiny-function inlining (on by default; applies to
	// instrumented and baseline builds alike so comparisons stay fair).
	NoInline bool
}

// DefaultOptions compiles a migratable binary with the paper's point
// placement.
func DefaultOptions() Options {
	return Options{Migration: true, MigrationOpts: DefaultMigrationOptions()}
}

// Artifact is the result of compiling one module for every ISA.
type Artifact struct {
	Module *ir.Module
	// Funcs[arch] lists lowered functions in module order.
	Funcs [isa.NumArch][]*AsmFunc
}

// FuncFor returns the lowered form of fn on arch, or nil.
func (a *Artifact) FuncFor(arch isa.Arch, fn string) *AsmFunc {
	for _, af := range a.Funcs[arch] {
		if af.Name == fn {
			return af
		}
	}
	return nil
}

// Compile runs the full middle- and back-end pipeline on m: runtime
// installation, migration-point insertion, verification, liveness, and
// per-ISA lowering. The module is mutated (runtime shims, inserted points).
func Compile(m *ir.Module, opts Options) (*Artifact, error) {
	if err := AddRuntime(m); err != nil {
		return nil, err
	}
	if !opts.NoInline {
		InlineTinyFunctions(m, 0, 0)
	}
	if opts.Migration {
		if err := InsertMigrationPoints(m, opts.MigrationOpts); err != nil {
			return nil, err
		}
	} else {
		// Still renumber call sites for determinism.
		for _, f := range m.Funcs {
			f.Finish()
		}
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("compiler: verify: %w", err)
	}
	art := &Artifact{Module: m}
	for _, f := range m.Funcs {
		lv := computeLiveness(f)
		for _, arch := range isa.Arches {
			af, err := lowerFunc(m, f, lv, isa.Describe(arch))
			if err != nil {
				return nil, fmt.Errorf("compiler: %s for %s: %w", f.Name, arch, err)
			}
			art.Funcs[arch] = append(art.Funcs[arch], af)
		}
	}
	return art, nil
}
