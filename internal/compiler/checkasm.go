package compiler

import (
	"heterodc/internal/ir"
	"heterodc/internal/isa"
	"heterodc/internal/mem"
	"heterodc/internal/stackmap"
	"heterodc/internal/sys"
)

// lowerMigrateCheck emits the hand-scheduled migration-point body. Hot
// path (no migration requested): load the current tid from the vDSO per-CPU
// word, load the per-thread request word, return if zero — all in scratch
// registers, no frame. Cold path: build a normal unwindable frame (the
// stack transformation starts from here) and trap into the thread-migration
// service.
//
// The IR body of __migrate_check is semantically identical (the reference
// interpreter executes it); this is the backend's tuned implementation.
func lowerMigrateCheck(f *ir.Func, d *isa.Desc) *AsmFunc {
	s0 := d.ScratchInt[0]
	s1 := d.ScratchInt[1]
	flagsBase := int64(mem.VDSOBase + sys.VDSOFlagsOff)

	var code []isa.Instr
	e := func(in isa.Instr) { code = append(code, in) }

	// Hot path.
	e(isa.Instr{Op: isa.OpLdi, Rd: s0, Imm: int64(sys.VDSOTidAddr)})
	e(isa.Instr{Op: isa.OpLd, Rd: s0, Rs1: s0}) // tid (per-CPU read)
	e(isa.Instr{Op: isa.OpShlI, Rd: s0, Rs1: s0, Imm: 3})
	e(isa.Instr{Op: isa.OpLdi, Rd: s1, Imm: flagsBase})
	e(isa.Instr{Op: isa.OpAdd, Rd: s1, Rs1: s1, Rs2: s0})
	e(isa.Instr{Op: isa.OpLd, Rd: s1, Rs1: s1}) // request word
	slowIdx := len(code)
	e(isa.Instr{Op: isa.OpBnez, Rs1: s1, Target: 0 /* patched */})
	e(isa.Instr{Op: isa.OpRet})

	// Cold path: frame, then the migration syscall.
	slow := len(code)
	code[slowIdx].Target = slow
	if d.Arch == isa.X86 {
		e(isa.Instr{Op: isa.OpPush, Rs1: d.FP})
		e(isa.Instr{Op: isa.OpMov, Rd: d.FP, Rs1: d.SP})
	} else {
		e(isa.Instr{Op: isa.OpAddI, Rd: d.SP, Rs1: d.SP, Imm: -16})
		e(isa.Instr{Op: isa.OpSt, Rs1: d.SP, Imm: 0, Rs2: d.FP})
		e(isa.Instr{Op: isa.OpSt, Rs1: d.SP, Imm: 8, Rs2: d.LR})
		e(isa.Instr{Op: isa.OpAddI, Rd: d.FP, Rs1: d.SP, Imm: 0})
	}
	e(isa.Instr{Op: isa.OpLdi, Rd: d.IntArgRegs[0], Imm: sys.SysMigrate})
	e(isa.Instr{Op: isa.OpAddI, Rd: d.IntArgRegs[1], Rs1: s1, Imm: -1})
	syscallIdx := len(code)
	e(isa.Instr{Op: isa.OpSyscall, CallSiteID: 1})
	if d.Arch == isa.X86 {
		e(isa.Instr{Op: isa.OpMov, Rd: d.SP, Rs1: d.FP})
		e(isa.Instr{Op: isa.OpPop, Rd: d.FP})
		e(isa.Instr{Op: isa.OpRet})
	} else {
		e(isa.Instr{Op: isa.OpLd, Rd: d.LR, Rs1: d.FP, Imm: 8})
		e(isa.Instr{Op: isa.OpAddI, Rd: d.SP, Rs1: d.FP, Imm: 16})
		e(isa.Instr{Op: isa.OpLd, Rd: d.FP, Rs1: d.FP, Imm: 0})
		e(isa.Instr{Op: isa.OpRet})
	}

	af := &AsmFunc{
		Name:          f.Name,
		Arch:          d.Arch,
		Code:          code,
		Offsets:       make([]int64, len(code)),
		CallSiteInstr: map[int]int{1: syscallIdx},
	}
	var off int64
	for i := range af.Code {
		af.Code[i].Size = isa.EncodedSize(d.Arch, &af.Code[i])
		af.Offsets[i] = off
		off += af.Code[i].Size
	}
	af.Size = off
	af.Info = &stackmap.FuncInfo{
		Name:        f.Name,
		FrameSize:   0,
		CallSites:   map[int]*stackmap.CallSite{1: {ID: 1}},
		StackParams: map[int]int64{},
		NoMigrate:   true,
	}
	return af
}
