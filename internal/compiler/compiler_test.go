package compiler

import (
	"testing"

	"heterodc/internal/ir"
	"heterodc/internal/isa"
	"heterodc/internal/minic"
)

// compileSrc builds a module from mini-C and compiles it with opts.
func compileSrc(t *testing.T, src string, opts Options) *Artifact {
	t.Helper()
	m, err := minic.CompileToIR("t", minic.Source{Name: "t.c", Code: src})
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	art, err := Compile(m, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return art
}

const simpleSrc = `
long helper(long a, long b, double f) {
	long arr[4];
	arr[0] = a;
	arr[1] = b;
	double acc = f;
	for (long i = 0; i < 4; i++) acc += (double)arr[i % 2];
	return a + b + (long)acc;
}
long main(void) { return helper(1, 2, 3.5); }
`

func TestCompileProducesBothISAs(t *testing.T) {
	art := compileSrc(t, simpleSrc, DefaultOptions())
	for _, arch := range isa.Arches {
		if len(art.Funcs[arch]) == 0 {
			t.Fatalf("%s: no functions", arch)
		}
		af := art.FuncFor(arch, "helper")
		if af == nil {
			t.Fatalf("%s: helper missing", arch)
		}
		if af.Size <= 0 || len(af.Code) == 0 {
			t.Fatalf("%s: empty code", arch)
		}
	}
}

func TestPerISAFunctionOrderMatches(t *testing.T) {
	art := compileSrc(t, simpleSrc, DefaultOptions())
	for i := range art.Funcs[isa.X86] {
		if art.Funcs[isa.X86][i].Name != art.Funcs[isa.ARM64][i].Name {
			t.Fatalf("function order diverges at %d: %s vs %s",
				i, art.Funcs[isa.X86][i].Name, art.Funcs[isa.ARM64][i].Name)
		}
	}
}

// TestStackmapLiveSetsAgreeAcrossISAs is the cross-ISA correlation
// invariant the transformation depends on: for every call site, both
// backends record exactly the same live vreg set with the same types.
func TestStackmapLiveSetsAgreeAcrossISAs(t *testing.T) {
	art := compileSrc(t, simpleSrc, DefaultOptions())
	for i, fx := range art.Funcs[isa.X86] {
		fa := art.Funcs[isa.ARM64][i]
		if len(fx.Info.CallSites) != len(fa.Info.CallSites) {
			t.Fatalf("%s: call-site counts differ (%d vs %d)",
				fx.Name, len(fx.Info.CallSites), len(fa.Info.CallSites))
		}
		for id, csx := range fx.Info.CallSites {
			csa := fa.Info.CallSites[id]
			if csa == nil {
				t.Fatalf("%s: site %d missing on arm", fx.Name, id)
			}
			if len(csx.Live) != len(csa.Live) {
				t.Fatalf("%s site %d: live counts differ (%d vs %d)",
					fx.Name, id, len(csx.Live), len(csa.Live))
			}
			for j := range csx.Live {
				if csx.Live[j].VReg != csa.Live[j].VReg || csx.Live[j].Type != csa.Live[j].Type {
					t.Fatalf("%s site %d: live value %d differs", fx.Name, id, j)
				}
			}
		}
	}
}

func TestAllocaMetadataConsistent(t *testing.T) {
	art := compileSrc(t, simpleSrc, DefaultOptions())
	for i, fx := range art.Funcs[isa.X86] {
		fa := art.Funcs[isa.ARM64][i]
		if len(fx.Info.AllocaOffsets) != len(fa.Info.AllocaOffsets) {
			t.Fatalf("%s: alloca counts differ", fx.Name)
		}
		for j := range fx.Info.AllocaSizes {
			if fx.Info.AllocaSizes[j] != fa.Info.AllocaSizes[j] {
				t.Fatalf("%s: alloca %d sizes differ", fx.Name, j)
			}
			// Offsets are per-ISA but must lie inside the frame.
			for _, info := range []*AsmFunc{fx, fa} {
				off := info.Info.AllocaOffsets[j]
				if off >= 0 || -off > info.Info.FrameSize {
					t.Fatalf("%s (%s): alloca %d offset %d outside frame %d",
						info.Name, info.Arch, j, off, info.Info.FrameSize)
				}
			}
		}
	}
}

func TestSaveSlotsInsideFrameAndDistinct(t *testing.T) {
	art := compileSrc(t, simpleSrc, DefaultOptions())
	for _, arch := range isa.Arches {
		for _, af := range art.Funcs[arch] {
			seen := map[int64]bool{}
			for _, s := range af.Info.Saves {
				if s.Off >= 0 || -s.Off > af.Info.FrameSize {
					t.Fatalf("%s (%s): save slot %d outside frame %d",
						af.Name, arch, s.Off, af.Info.FrameSize)
				}
				if seen[s.Off] {
					t.Fatalf("%s (%s): duplicate save slot %d", af.Name, arch, s.Off)
				}
				seen[s.Off] = true
			}
		}
	}
}

func TestFrameSizesAligned(t *testing.T) {
	art := compileSrc(t, simpleSrc, DefaultOptions())
	for _, arch := range isa.Arches {
		for _, af := range art.Funcs[arch] {
			if af.Name == MigrateCheckFunc {
				continue // hand-written, frameless
			}
			if af.Info.FrameSize%16 != 0 {
				t.Errorf("%s (%s): frame size %d not 16-aligned", af.Name, arch, af.Info.FrameSize)
			}
		}
	}
}

func TestMigrationPointsInserted(t *testing.T) {
	m, err := minic.CompileToIR("t", minic.Source{Name: "t.c", Code: simpleSrc})
	if err != nil {
		t.Fatal(err)
	}
	if err := AddRuntime(m); err != nil {
		t.Fatal(err)
	}
	countCalls := func(f *ir.Func) int {
		n := 0
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				if blk.Instrs[i].Kind == ir.KCall && blk.Instrs[i].Sym == MigrateCheckFunc {
					n++
				}
			}
		}
		return n
	}
	before := countCalls(m.Func("main"))
	if err := InsertMigrationPoints(m, DefaultMigrationOptions()); err != nil {
		t.Fatal(err)
	}
	after := countCalls(m.Func("main"))
	if after <= before {
		t.Errorf("no migration points inserted in main (%d -> %d)", before, after)
	}
	// NoMigrate functions stay clean.
	if n := countCalls(m.Func(MigrateCheckFunc)); n != 0 {
		t.Errorf("migration points inside __migrate_check: %d", n)
	}
}

func TestSmallLeafSkipsPoints(t *testing.T) {
	src := `
long tiny(long a) { return a * 2 + 1; }
long main(void){ long s = 0; for (long i = 0; i < 4; i++) s += tiny(i); return s; }
`
	m, err := minic.CompileToIR("t", minic.Source{Name: "t.c", Code: src})
	if err != nil {
		t.Fatal(err)
	}
	if err := AddRuntime(m); err != nil {
		t.Fatal(err)
	}
	if err := InsertMigrationPoints(m, DefaultMigrationOptions()); err != nil {
		t.Fatal(err)
	}
	for _, blk := range m.Func("tiny").Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Kind == ir.KCall && blk.Instrs[i].Sym == MigrateCheckFunc {
				t.Fatal("tiny leaf function received a migration point")
			}
		}
	}
}

func TestNoMigrationOptionOmitsRuntimeCalls(t *testing.T) {
	art := compileSrc(t, simpleSrc, Options{Migration: false})
	for _, af := range art.Funcs[isa.X86] {
		if af.Name == MigrateCheckFunc {
			continue
		}
		for i := range af.Code {
			if af.Code[i].Op == isa.OpCall && af.Code[i].Sym == MigrateCheckFunc {
				t.Fatalf("%s: migration call emitted despite Migration=false", af.Name)
			}
		}
	}
}

func TestRetAddrDisciplineInEmittedCode(t *testing.T) {
	art := compileSrc(t, simpleSrc, DefaultOptions())
	// x86 prologues push the frame pointer; arm prologues store the pair.
	hx := art.FuncFor(isa.X86, "helper")
	if hx.Code[0].Op != isa.OpPush {
		t.Errorf("x86 prologue starts with %s, want push", hx.Code[0].Op)
	}
	ha := art.FuncFor(isa.ARM64, "helper")
	if ha.Code[0].Op != isa.OpAddI || ha.Code[0].Rd != isa.Describe(isa.ARM64).SP {
		t.Errorf("arm prologue starts with %s", ha.Code[0].String())
	}
	for _, in := range ha.Code {
		if in.Op == isa.OpPush || in.Op == isa.OpPop {
			t.Error("arm code must not use push/pop")
		}
	}
}

func TestLivenessWeightsFavourLoopVars(t *testing.T) {
	src := `
long main(void) {
	long hot = 0;
	long cold = 3;
	for (long i = 0; i < 100; i++) {
		for (long j = 0; j < 100; j++) {
			hot += i * j;
		}
	}
	return hot + cold;
}
`
	m, err := minic.CompileToIR("t", minic.Source{Name: "t.c", Code: src})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Funcs {
		f.Finish()
	}
	f := m.Func("main")
	lv := computeLiveness(f)
	// The inner accumulator must outweigh straight-line temporaries: the
	// maximum weight must exceed the minimum used weight by the loop factor.
	var max, min int64 = 0, 1 << 62
	for _, w := range lv.weight {
		if w > max {
			max = w
		}
		if w > 0 && w < min {
			min = w
		}
	}
	if max < min*8 {
		t.Errorf("loop weighting too flat: max %d min %d", max, min)
	}
}

func TestCompileRejectsBrokenIR(t *testing.T) {
	m := ir.NewModule("bad")
	f := &ir.Func{Name: "main", Ret: ir.I64}
	f.Blocks = []*ir.Block{{Name: "entry"}} // empty block
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(m, DefaultOptions()); err == nil {
		t.Fatal("expected verify error")
	}
}
