package compiler

import (
	"strings"
	"testing"

	"heterodc/internal/minic"
)

func TestInlinerFires(t *testing.T) {
	m, err := minic.CompileToIR("t", minic.Source{Name: "t.c", Code: `
long rand_from(long *state) {
	*state = (*state * 1220703125 + 11) & 70368744177663;
	return *state;
}
double rand01_from(long *state) {
	return (double)rand_from(state) * 0.5;
}
long main(void) {
	long s = 3;
	double acc = 0.0;
	for (long i = 0; i < 10; i++) acc += rand01_from(&s);
	return (long)acc;
}`})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		n := inlineRound(m, 24)
		t.Logf("round %d: %d sites; rand01 inlinable=%v", r, n, inlinable(m.Func("rand01_from"), 24))
		if n == 0 {
			break
		}
	}
	dump := m.Func("main").String()
	if strings.Contains(dump, "call rand01_from") {
		t.Errorf("rand01_from not inlined into main:\n%s", dump)
	}
}
