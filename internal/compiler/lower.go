package compiler

import (
	"fmt"

	"heterodc/internal/ir"
	"heterodc/internal/isa"
	"heterodc/internal/stackmap"
)

// AsmFunc is one function lowered to one ISA's machine code, before layout:
// addresses are assigned by the linker.
type AsmFunc struct {
	Name string
	Arch isa.Arch
	Code []isa.Instr
	// Offsets[i] is the byte offset of Code[i] from the function entry.
	Offsets []int64
	// Size is the total encoded size in bytes.
	Size int64
	// Info is the stackmap/unwind metadata (Entry filled at link time).
	Info *stackmap.FuncInfo
	// callSiteInstr maps call-site ID -> index of the call instruction.
	CallSiteInstr map[int]int
}

// lowerer holds the state of lowering one function for one ISA.
type lowerer struct {
	m    *ir.Module
	f    *ir.Func
	lv   *liveness
	fr   *frame
	desc *isa.Desc

	out        []isa.Instr
	blockStart []int
	// branchFixups lists indices of emitted branch instructions whose Target
	// currently holds an IR block index to be patched to an instruction index.
	branchFixups []int

	sites map[int]*stackmap.CallSite
	csIdx map[int]int
}

// lowerFunc compiles f for desc's architecture.
func lowerFunc(m *ir.Module, f *ir.Func, lv *liveness, desc *isa.Desc) (*AsmFunc, error) {
	if f.Name == MigrateCheckFunc {
		// The migration-point body is hand-scheduled per ISA (as the real
		// runtime's check is): the hot no-request path runs frameless in
		// scratch registers — a call, two loads and a branch — and only the
		// cold migrate path builds an unwindable frame.
		return lowerMigrateCheck(f, desc), nil
	}
	lo := &lowerer{
		m: m, f: f, lv: lv,
		fr:         buildFrame(m, f, lv, desc),
		desc:       desc,
		blockStart: make([]int, len(f.Blocks)),
		sites:      make(map[int]*stackmap.CallSite),
		csIdx:      make(map[int]int),
	}
	lo.prologue()
	lo.moveParamsIn()
	for bi, blk := range f.Blocks {
		lo.blockStart[bi] = len(lo.out)
		// The entry block's code begins after the prologue; blockStart[0]
		// points at the first post-prologue instruction, which is correct
		// because nothing branches to the entry block's prologue.
		for ii := range blk.Instrs {
			if err := lo.instr(bi, ii, &blk.Instrs[ii]); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", f.Name, blk.Name, err)
			}
		}
	}
	// Patch intra-function branch targets from block indices to instruction
	// indices.
	for _, idx := range lo.branchFixups {
		lo.out[idx].Target = lo.blockStart[lo.out[idx].Target]
	}
	return lo.finish()
}

func (lo *lowerer) finish() (*AsmFunc, error) {
	af := &AsmFunc{
		Name:          lo.f.Name,
		Arch:          lo.desc.Arch,
		Code:          lo.out,
		Offsets:       make([]int64, len(lo.out)),
		CallSiteInstr: lo.csIdx,
	}
	var off int64
	for i := range af.Code {
		af.Code[i].Size = isa.EncodedSize(lo.desc.Arch, &af.Code[i])
		af.Offsets[i] = off
		off += af.Code[i].Size
	}
	af.Size = off

	info := &stackmap.FuncInfo{
		Name:        lo.f.Name,
		FrameSize:   lo.fr.frameSize,
		AllocaSizes: append([]int64(nil), lo.f.AllocaSizes...),
		AllocaPtr:   append([]bool(nil), lo.f.AllocaPtr...),
		CallSites:   lo.sites,
		StackParams: map[int]int64{},
		IsEntry:     lo.f.IsEntry,
		NoMigrate:   lo.f.NoMigrate,
	}
	info.AllocaOffsets = append([]int64(nil), lo.fr.allocaOff...)
	for _, s := range lo.fr.saveRegs {
		info.Saves = append(info.Saves, stackmap.SavedReg{Reg: s.reg, IsFloat: s.isFloat, Off: s.off})
	}
	info.NumStackArgBytes = lo.fr.outArgBytes
	// Record stack-passed parameter offsets.
	ptypes := make([]ir.Type, len(lo.f.Params))
	for i, p := range lo.f.Params {
		ptypes[i] = p.Type
	}
	_, stackIdx := argLocs(ptypes, lo.desc)
	for i, si := range stackIdx {
		if si >= 0 {
			info.StackParams[i] = 16 + int64(si)*8
		}
	}
	af.Info = info
	return af, nil
}

// e appends an instruction and returns its index.
func (lo *lowerer) e(in isa.Instr) int {
	lo.out = append(lo.out, in)
	return len(lo.out) - 1
}

// --- Prologue / epilogue ---------------------------------------------------

func (lo *lowerer) prologue() {
	d := lo.desc
	if d.Arch == isa.X86 {
		// CALL already pushed the return address.
		lo.e(isa.Instr{Op: isa.OpPush, Rs1: d.FP})
		lo.e(isa.Instr{Op: isa.OpMov, Rd: d.FP, Rs1: d.SP})
		if lo.fr.frameSize != 0 {
			lo.e(isa.Instr{Op: isa.OpAddI, Rd: d.SP, Rs1: d.SP, Imm: -lo.fr.frameSize})
		}
	} else {
		total := lo.fr.frameSize + 16
		lo.e(isa.Instr{Op: isa.OpAddI, Rd: d.SP, Rs1: d.SP, Imm: -total})
		lo.e(isa.Instr{Op: isa.OpSt, Rs1: d.SP, Imm: lo.fr.frameSize, Rs2: d.FP})
		lo.e(isa.Instr{Op: isa.OpSt, Rs1: d.SP, Imm: lo.fr.frameSize + 8, Rs2: d.LR})
		lo.e(isa.Instr{Op: isa.OpAddI, Rd: d.FP, Rs1: d.SP, Imm: lo.fr.frameSize})
	}
	// Save used callee-saved registers at their FP-relative slots.
	for _, s := range lo.fr.saveRegs {
		if s.isFloat {
			lo.e(isa.Instr{Op: isa.OpFSt, Rs1: lo.desc.FP, Imm: s.off, Rs2: s.reg})
		} else {
			lo.e(isa.Instr{Op: isa.OpSt, Rs1: lo.desc.FP, Imm: s.off, Rs2: s.reg})
		}
	}
}

func (lo *lowerer) epilogue() {
	d := lo.desc
	for _, s := range lo.fr.saveRegs {
		if s.isFloat {
			lo.e(isa.Instr{Op: isa.OpFLd, Rd: s.reg, Rs1: d.FP, Imm: s.off})
		} else {
			lo.e(isa.Instr{Op: isa.OpLd, Rd: s.reg, Rs1: d.FP, Imm: s.off})
		}
	}
	if d.Arch == isa.X86 {
		lo.e(isa.Instr{Op: isa.OpMov, Rd: d.SP, Rs1: d.FP})
		lo.e(isa.Instr{Op: isa.OpPop, Rd: d.FP})
		lo.e(isa.Instr{Op: isa.OpRet})
	} else {
		lo.e(isa.Instr{Op: isa.OpLd, Rd: d.LR, Rs1: d.FP, Imm: 8})
		lo.e(isa.Instr{Op: isa.OpAddI, Rd: d.SP, Rs1: d.FP, Imm: 16})
		lo.e(isa.Instr{Op: isa.OpLd, Rd: d.FP, Rs1: d.FP, Imm: 0})
		lo.e(isa.Instr{Op: isa.OpRet})
	}
}

// moveParamsIn copies incoming arguments (registers or stack) to their homes.
func (lo *lowerer) moveParamsIn() {
	d := lo.desc
	ptypes := make([]ir.Type, len(lo.f.Params))
	for i, p := range lo.f.Params {
		ptypes[i] = p.Type
	}
	regs, stackIdx := argLocs(ptypes, d)
	for i := range lo.f.Params {
		h := lo.fr.homes[i]
		if !h.used {
			continue
		}
		isF := ptypes[i].IsFloat()
		switch {
		case regs[i] != isa.NoReg && h.inReg:
			if isF {
				lo.e(isa.Instr{Op: isa.OpFMov, Rd: h.reg, Rs1: regs[i]})
			} else {
				lo.e(isa.Instr{Op: isa.OpMov, Rd: h.reg, Rs1: regs[i]})
			}
		case regs[i] != isa.NoReg:
			if isF {
				lo.e(isa.Instr{Op: isa.OpFSt, Rs1: d.FP, Imm: h.off, Rs2: regs[i]})
			} else {
				lo.e(isa.Instr{Op: isa.OpSt, Rs1: d.FP, Imm: h.off, Rs2: regs[i]})
			}
		default:
			inOff := 16 + int64(stackIdx[i])*8
			if h.inReg {
				op := isa.OpLd
				if isF {
					op = isa.OpFLd
				}
				lo.e(isa.Instr{Op: op, Rd: h.reg, Rs1: d.FP, Imm: inOff})
			} else {
				// Stack -> stack through a scratch register.
				if isF {
					s := d.ScratchFloat[0]
					lo.e(isa.Instr{Op: isa.OpFLd, Rd: s, Rs1: d.FP, Imm: inOff})
					lo.e(isa.Instr{Op: isa.OpFSt, Rs1: d.FP, Imm: h.off, Rs2: s})
				} else {
					s := d.ScratchInt[0]
					lo.e(isa.Instr{Op: isa.OpLd, Rd: s, Rs1: d.FP, Imm: inOff})
					lo.e(isa.Instr{Op: isa.OpSt, Rs1: d.FP, Imm: h.off, Rs2: s})
				}
			}
		}
	}
}

// --- Operand staging --------------------------------------------------------

// useI returns a register holding integer vreg v, loading it into integer
// scratch `which` if the home is a frame slot.
func (lo *lowerer) useI(v ir.VReg, which int) isa.Reg {
	h := lo.fr.homes[v]
	if h.inReg {
		return h.reg
	}
	s := lo.desc.ScratchInt[which]
	lo.e(isa.Instr{Op: isa.OpLd, Rd: s, Rs1: lo.desc.FP, Imm: h.off})
	return s
}

// useF is the float counterpart of useI.
func (lo *lowerer) useF(v ir.VReg, which int) isa.Reg {
	h := lo.fr.homes[v]
	if h.inReg {
		return h.reg
	}
	s := lo.desc.ScratchFloat[which]
	lo.e(isa.Instr{Op: isa.OpFLd, Rd: s, Rs1: lo.desc.FP, Imm: h.off})
	return s
}

// defI returns the register an integer result should be computed into; call
// the returned commit after emitting the computation to store spilled homes.
func (lo *lowerer) defI(v ir.VReg) (isa.Reg, func()) {
	h := lo.fr.homes[v]
	if h.inReg {
		return h.reg, func() {}
	}
	s := lo.desc.ScratchInt[0]
	return s, func() {
		lo.e(isa.Instr{Op: isa.OpSt, Rs1: lo.desc.FP, Imm: h.off, Rs2: s})
	}
}

// defF is the float counterpart of defI.
func (lo *lowerer) defF(v ir.VReg) (isa.Reg, func()) {
	h := lo.fr.homes[v]
	if h.inReg {
		return h.reg, func() {}
	}
	s := lo.desc.ScratchFloat[0]
	return s, func() {
		lo.e(isa.Instr{Op: isa.OpFSt, Rs1: lo.desc.FP, Imm: h.off, Rs2: s})
	}
}

// --- Instruction selection ---------------------------------------------------

var binToOp = map[ir.BinOp]isa.Op{
	ir.Add: isa.OpAdd, ir.Sub: isa.OpSub, ir.Mul: isa.OpMul,
	ir.Div: isa.OpDiv, ir.Rem: isa.OpRem, ir.And: isa.OpAnd,
	ir.Or: isa.OpOr, ir.Xor: isa.OpXor, ir.Shl: isa.OpShl, ir.Shr: isa.OpShr,
}

var binToImmOp = map[ir.BinOp]isa.Op{
	ir.Add: isa.OpAddI, ir.Mul: isa.OpMulI, ir.And: isa.OpAndI,
	ir.Or: isa.OpOrI, ir.Xor: isa.OpXorI, ir.Shl: isa.OpShlI, ir.Shr: isa.OpShrI,
}

var fbinToOp = map[ir.FBinOp]isa.Op{
	ir.FAdd: isa.OpFAdd, ir.FSub: isa.OpFSub, ir.FMul: isa.OpFMul, ir.FDiv: isa.OpFDiv,
}

var cmpToOp = map[ir.CmpOp]isa.Op{
	ir.Eq: isa.OpCmpEq, ir.Ne: isa.OpCmpNe, ir.Lt: isa.OpCmpLt,
	ir.Le: isa.OpCmpLe, ir.Gt: isa.OpCmpGt, ir.Ge: isa.OpCmpGe,
}

var fcmpToOp = map[ir.CmpOp]isa.Op{
	ir.Eq: isa.OpFCmpEq, ir.Ne: isa.OpFCmpNe, ir.Lt: isa.OpFCmpLt,
	ir.Le: isa.OpFCmpLe, ir.Gt: isa.OpFCmpGt, ir.Ge: isa.OpFCmpGe,
}

func (lo *lowerer) instr(bi, ii int, in *ir.Instr) error {
	d := lo.desc
	switch in.Kind {
	case ir.KConst:
		rd, commit := lo.defI(in.Dst)
		lo.e(isa.Instr{Op: isa.OpLdi, Rd: rd, Imm: in.Imm})
		commit()
	case ir.KFConst:
		rd, commit := lo.defF(in.Dst)
		lo.e(isa.Instr{Op: isa.OpFLdi, Rd: rd, FImm: in.FImm})
		commit()
	case ir.KMov:
		if lo.f.TypeOf(in.Dst).IsFloat() {
			a := lo.useF(in.A, 1)
			rd, commit := lo.defF(in.Dst)
			if rd != a {
				lo.e(isa.Instr{Op: isa.OpFMov, Rd: rd, Rs1: a})
			}
			commit()
		} else {
			a := lo.useI(in.A, 1)
			rd, commit := lo.defI(in.Dst)
			if rd != a {
				lo.e(isa.Instr{Op: isa.OpMov, Rd: rd, Rs1: a})
			}
			commit()
		}
	case ir.KBin:
		a := lo.useI(in.A, 0)
		b := lo.useI(in.B, 1)
		rd, commit := lo.defI(in.Dst)
		lo.e(isa.Instr{Op: binToOp[in.Bin], Rd: rd, Rs1: a, Rs2: b})
		commit()
	case ir.KBinImm:
		a := lo.useI(in.A, 0)
		rd, commit := lo.defI(in.Dst)
		if op, ok := binToImmOp[in.Bin]; ok {
			lo.e(isa.Instr{Op: op, Rd: rd, Rs1: a, Imm: in.Imm})
		} else if in.Bin == ir.Sub {
			lo.e(isa.Instr{Op: isa.OpAddI, Rd: rd, Rs1: a, Imm: -in.Imm})
		} else {
			// Div/Rem by immediate: materialise in scratch 1.
			s := d.ScratchInt[1]
			lo.e(isa.Instr{Op: isa.OpLdi, Rd: s, Imm: in.Imm})
			lo.e(isa.Instr{Op: binToOp[in.Bin], Rd: rd, Rs1: a, Rs2: s})
		}
		commit()
	case ir.KFBin:
		a := lo.useF(in.A, 0)
		b := lo.useF(in.B, 1)
		rd, commit := lo.defF(in.Dst)
		lo.e(isa.Instr{Op: fbinToOp[in.FBin], Rd: rd, Rs1: a, Rs2: b})
		commit()
	case ir.KFNeg:
		a := lo.useF(in.A, 0)
		rd, commit := lo.defF(in.Dst)
		lo.e(isa.Instr{Op: isa.OpFNeg, Rd: rd, Rs1: a})
		commit()
	case ir.KFSqrt:
		a := lo.useF(in.A, 0)
		rd, commit := lo.defF(in.Dst)
		lo.e(isa.Instr{Op: isa.OpFSqrt, Rd: rd, Rs1: a})
		commit()
	case ir.KCmp:
		a := lo.useI(in.A, 0)
		b := lo.useI(in.B, 1)
		rd, commit := lo.defI(in.Dst)
		lo.e(isa.Instr{Op: cmpToOp[in.Cmp], Rd: rd, Rs1: a, Rs2: b})
		commit()
	case ir.KFCmp:
		a := lo.useF(in.A, 0)
		b := lo.useF(in.B, 1)
		rd, commit := lo.defI(in.Dst)
		lo.e(isa.Instr{Op: fcmpToOp[in.Cmp], Rd: rd, Rs1: a, Rs2: b})
		commit()
	case ir.KI2F:
		a := lo.useI(in.A, 0)
		rd, commit := lo.defF(in.Dst)
		lo.e(isa.Instr{Op: isa.OpI2F, Rd: rd, Rs1: a})
		commit()
	case ir.KF2I:
		a := lo.useF(in.A, 0)
		rd, commit := lo.defI(in.Dst)
		lo.e(isa.Instr{Op: isa.OpF2I, Rd: rd, Rs1: a})
		commit()
	case ir.KLoad:
		a := lo.useI(in.A, 0)
		if lo.f.TypeOf(in.Dst).IsFloat() {
			rd, commit := lo.defF(in.Dst)
			lo.e(isa.Instr{Op: isa.OpFLd, Rd: rd, Rs1: a, Imm: in.Imm})
			commit()
		} else {
			rd, commit := lo.defI(in.Dst)
			lo.e(isa.Instr{Op: isa.OpLd, Rd: rd, Rs1: a, Imm: in.Imm})
			commit()
		}
	case ir.KStore:
		a := lo.useI(in.A, 0)
		if lo.f.TypeOf(in.B).IsFloat() {
			v := lo.useF(in.B, 1)
			lo.e(isa.Instr{Op: isa.OpFSt, Rs1: a, Imm: in.Imm, Rs2: v})
		} else {
			v := lo.useI(in.B, 1)
			lo.e(isa.Instr{Op: isa.OpSt, Rs1: a, Imm: in.Imm, Rs2: v})
		}
	case ir.KLoadB:
		a := lo.useI(in.A, 0)
		rd, commit := lo.defI(in.Dst)
		lo.e(isa.Instr{Op: isa.OpLdB, Rd: rd, Rs1: a, Imm: in.Imm})
		commit()
	case ir.KStoreB:
		a := lo.useI(in.A, 0)
		v := lo.useI(in.B, 1)
		lo.e(isa.Instr{Op: isa.OpStB, Rs1: a, Imm: in.Imm, Rs2: v})
	case ir.KAllocaAddr:
		rd, commit := lo.defI(in.Dst)
		lo.e(isa.Instr{Op: isa.OpAddI, Rd: rd, Rs1: d.FP, Imm: lo.fr.allocaOff[in.Alloca]})
		commit()
	case ir.KGlobalAddr:
		rd, commit := lo.defI(in.Dst)
		lo.e(isa.Instr{Op: isa.OpLea, Rd: rd, Sym: in.Sym, Imm: in.Imm})
		commit()
	case ir.KCall:
		callee := lo.m.Func(in.Sym)
		types := make([]ir.Type, len(in.Args))
		for i, a := range in.Args {
			types[i] = lo.f.TypeOf(a)
		}
		lo.marshalArgs(in.Args, types, isa.NoReg)
		ci := lo.e(isa.Instr{Op: isa.OpCall, Sym: in.Sym, CallSiteID: in.CallSiteID})
		lo.recordSite(bi, ii, in, ci)
		lo.moveResult(in.Dst, callee.Ret)
	case ir.KCallInd:
		types := make([]ir.Type, len(in.Args))
		for i, a := range in.Args {
			types[i] = lo.f.TypeOf(a)
		}
		fp := lo.useI(in.A, 1) // scratch 1: scratch 0 stages stack args
		lo.marshalArgs(in.Args, types, fp)
		ci := lo.e(isa.Instr{Op: isa.OpCallR, Rs1: fp, CallSiteID: in.CallSiteID})
		lo.recordSite(bi, ii, in, ci)
		retType := ir.I64
		if in.Dst == ir.NoV {
			retType = ir.Void
		} else if lo.f.TypeOf(in.Dst).IsFloat() {
			retType = ir.F64
		}
		lo.moveResult(in.Dst, retType)
	case ir.KSyscall:
		lo.e(isa.Instr{Op: isa.OpLdi, Rd: d.IntArgRegs[0], Imm: in.Imm})
		for i, a := range in.Args {
			target := d.IntArgRegs[i+1]
			h := lo.fr.homes[a]
			if h.inReg {
				lo.e(isa.Instr{Op: isa.OpMov, Rd: target, Rs1: h.reg})
			} else {
				lo.e(isa.Instr{Op: isa.OpLd, Rd: target, Rs1: d.FP, Imm: h.off})
			}
		}
		ci := lo.e(isa.Instr{Op: isa.OpSyscall, CallSiteID: in.CallSiteID})
		lo.recordSite(bi, ii, in, ci)
		lo.moveResult(in.Dst, ir.I64)
	case ir.KAtomicAdd:
		a := lo.useI(in.A, 0)
		b := lo.useI(in.B, 1)
		rd, commit := lo.defI(in.Dst)
		lo.e(isa.Instr{Op: isa.OpAtomicAdd, Rd: rd, Rs1: a, Rs2: b, Imm: in.Imm})
		commit()
	case ir.KAtomicCAS:
		a := lo.useI(in.A, 0)
		b := lo.useI(in.B, 1)
		// Third operand through the CAS-only scratch register.
		var c isa.Reg
		hc := lo.fr.homes[in.C]
		if hc.inReg {
			c = hc.reg
		} else {
			c = d.ScratchInt[2]
			lo.e(isa.Instr{Op: isa.OpLd, Rd: c, Rs1: d.FP, Imm: hc.off})
		}
		rd, commit := lo.defI(in.Dst)
		lo.e(isa.Instr{Op: isa.OpAtomicCAS, Rd: rd, Rs1: a, Rs2: b, Rs3: c, Imm: in.Imm})
		commit()
	case ir.KRet:
		if in.A != ir.NoV {
			if lo.f.TypeOf(in.A).IsFloat() {
				v := lo.useF(in.A, 0)
				if v != d.FloatRet {
					lo.e(isa.Instr{Op: isa.OpFMov, Rd: d.FloatRet, Rs1: v})
				}
			} else {
				v := lo.useI(in.A, 0)
				if v != d.IntRet {
					lo.e(isa.Instr{Op: isa.OpMov, Rd: d.IntRet, Rs1: v})
				}
			}
		}
		lo.epilogue()
	case ir.KBr:
		idx := lo.e(isa.Instr{Op: isa.OpBr, Target: in.TargetA})
		lo.branchFixups = append(lo.branchFixups, idx)
	case ir.KCondBr:
		cond := lo.useI(in.A, 0)
		idx := lo.e(isa.Instr{Op: isa.OpBnez, Rs1: cond, Target: in.TargetA})
		lo.branchFixups = append(lo.branchFixups, idx)
		idx = lo.e(isa.Instr{Op: isa.OpBr, Target: in.TargetB})
		lo.branchFixups = append(lo.branchFixups, idx)
	default:
		return fmt.Errorf("compiler: unhandled IR kind %d", int(in.Kind))
	}
	return nil
}

// marshalArgs stages call arguments: stack args first (through scratch 0),
// then register args. Argument registers are never vreg homes or scratch 0,
// so no parallel-move conflicts arise. reservedFP guards the indirect-call
// target register from being clobbered (it is scratch 1, which stack-arg
// staging does not use).
func (lo *lowerer) marshalArgs(args []ir.VReg, types []ir.Type, reservedFP isa.Reg) {
	d := lo.desc
	regs, stackIdx := argLocs(types, d)
	// Stack args.
	for i, a := range args {
		if stackIdx[i] < 0 {
			continue
		}
		off := int64(stackIdx[i]) * 8
		if types[i].IsFloat() {
			v := lo.useF(a, 0)
			lo.e(isa.Instr{Op: isa.OpFSt, Rs1: d.SP, Imm: off, Rs2: v})
		} else {
			v := lo.useI(a, 0)
			lo.e(isa.Instr{Op: isa.OpSt, Rs1: d.SP, Imm: off, Rs2: v})
		}
	}
	// Register args.
	for i, a := range args {
		if regs[i] == isa.NoReg {
			continue
		}
		h := lo.fr.homes[a]
		if types[i].IsFloat() {
			if h.inReg {
				lo.e(isa.Instr{Op: isa.OpFMov, Rd: regs[i], Rs1: h.reg})
			} else {
				lo.e(isa.Instr{Op: isa.OpFLd, Rd: regs[i], Rs1: d.FP, Imm: h.off})
			}
		} else {
			if h.inReg {
				lo.e(isa.Instr{Op: isa.OpMov, Rd: regs[i], Rs1: h.reg})
			} else {
				lo.e(isa.Instr{Op: isa.OpLd, Rd: regs[i], Rs1: d.FP, Imm: h.off})
			}
		}
	}
	_ = reservedFP
}

// moveResult stores the ABI return register into dst's home.
func (lo *lowerer) moveResult(dst ir.VReg, ret ir.Type) {
	if dst == ir.NoV || ret == ir.Void {
		return
	}
	d := lo.desc
	h := lo.fr.homes[dst]
	if !h.used {
		return
	}
	if ret.IsFloat() {
		if h.inReg {
			lo.e(isa.Instr{Op: isa.OpFMov, Rd: h.reg, Rs1: d.FloatRet})
		} else {
			lo.e(isa.Instr{Op: isa.OpFSt, Rs1: d.FP, Imm: h.off, Rs2: d.FloatRet})
		}
	} else {
		if h.inReg {
			lo.e(isa.Instr{Op: isa.OpMov, Rd: h.reg, Rs1: d.IntRet})
		} else {
			lo.e(isa.Instr{Op: isa.OpSt, Rs1: d.FP, Imm: h.off, Rs2: d.IntRet})
		}
	}
}

// recordSite emits the stackmap record for a call-like site: the IR-level
// live set mapped to this ISA's value locations.
func (lo *lowerer) recordSite(bi, ii int, in *ir.Instr, callInstrIdx int) {
	live := lo.lv.liveAcrossCall(bi, ii)
	cs := &stackmap.CallSite{ID: in.CallSiteID}
	for _, v := range live {
		h := lo.fr.homes[v]
		if !h.used {
			continue
		}
		lv := stackmap.LiveValue{VReg: int(v), Type: lo.f.TypeOf(v)}
		if h.inReg {
			lv.Loc = stackmap.Loc{Kind: stackmap.InReg, Reg: h.reg, IsFloat: h.isFloat}
		} else {
			lv.Loc = stackmap.Loc{Kind: stackmap.InFrame, Off: h.off, IsFloat: h.isFloat}
		}
		cs.Live = append(cs.Live, lv)
	}
	lo.sites[in.CallSiteID] = cs
	lo.csIdx[in.CallSiteID] = callInstrIdx
}
