package machine

import (
	"strings"
	"testing"

	"heterodc/internal/compiler"
	"heterodc/internal/isa"
	"heterodc/internal/link"
	"heterodc/internal/mem"
	"heterodc/internal/minic"
	"heterodc/internal/sys"
)

// buildCore compiles src and prepares a core at main's entry on arch, with
// a stack and all data pages present.
func buildCore(t *testing.T, src string, arch isa.Arch) (*Core, *link.Image) {
	t.Helper()
	m, err := minic.CompileToIR("t", minic.Source{Name: "t.c", Code: src})
	if err != nil {
		t.Fatal(err)
	}
	art, err := compiler.Compile(m, compiler.Options{Migration: false})
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link("t", art, link.Options{Aligned: true})
	if err != nil {
		t.Fatal(err)
	}
	d := isa.Describe(arch)
	c := NewCore(d)
	c.Prog = img.Prog(arch)
	c.Mem = mem.NewMemory()
	// Install data segments and a stack.
	for _, seg := range img.Data[arch] {
		end := seg.Addr + uint64(seg.Size)
		for a := mem.PageBase(seg.Addr); a < end; a += mem.PageSize {
			c.Mem.EnsurePage(a)
		}
		if len(seg.Bytes) > 0 {
			c.Mem.WriteBytes(seg.Addr, seg.Bytes)
		}
	}
	lo, hi := mem.ThreadStackWindow(0)
	for a := lo; a < hi; a += mem.PageSize {
		c.Mem.EnsurePage(a)
	}
	c.Mem.EnsurePage(mem.VDSOBase)
	sp := (lo + mem.StackHalf - 64) &^ 15
	if d.RetAddrOnStack {
		sp -= 8
		if err := c.Mem.WriteU64(sp, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.RegsI[d.SP] = int64(sp)
	if err := c.SetPC(img.FuncAddr[arch]["main"]); err != nil {
		t.Fatal(err)
	}
	return c, img
}

// runUntilSyscall steps until a syscall traps, with a step bound.
func runUntilSyscall(t *testing.T, c *Core) (int64, [5]int64) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		switch ev := c.Step(); ev {
		case EvSyscall:
			n, a := c.SyscallArgs()
			return n, a
		case EvNone:
		default:
			t.Fatalf("unexpected event %d: %v", ev, c.Err)
		}
	}
	t.Fatal("no syscall within bound")
	return 0, [5]int64{}
}

func TestExecuteArithmeticToExitBothISAs(t *testing.T) {
	src := `long main(void){ __syscall(1, 6 * 7 + 1); return 0; }`
	for _, arch := range isa.Arches {
		c, _ := buildCore(t, src, arch)
		num, args := runUntilSyscall(t, c)
		if num != sys.SysExit || args[0] != 43 {
			t.Errorf("%s: syscall %d(%d), want exit(43)", arch, num, args[0])
		}
		if c.Instrs == 0 || c.Cycles == 0 {
			t.Errorf("%s: no retirement accounting", arch)
		}
	}
}

func TestFloatPathBothISAs(t *testing.T) {
	src := `long main(void){
		double a = 2.25;
		double b = a * 4.0 - 1.0;
		__syscall(1, (long)(b * 100.0));
		return 0; }`
	for _, arch := range isa.Arches {
		c, _ := buildCore(t, src, arch)
		_, args := runUntilSyscall(t, c)
		if args[0] != 800 {
			t.Errorf("%s: got %d, want 800", arch, args[0])
		}
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	src := `
long zero = 0;
long main(void){ __syscall(1, 5 / zero); return 0; }`
	for _, arch := range isa.Arches {
		c, _ := buildCore(t, src, arch)
		for i := 0; i < 100000; i++ {
			ev := c.Step()
			if ev == EvError {
				if !strings.Contains(c.Err.Error(), "division by zero") {
					t.Fatalf("%s: wrong error %v", arch, c.Err)
				}
				return
			}
			if ev != EvNone {
				t.Fatalf("%s: unexpected event %d", arch, ev)
			}
		}
		t.Fatalf("%s: no trap", arch)
	}
}

func TestFaultOnAbsentPageAndRetry(t *testing.T) {
	src := `
long g = 5;
long main(void){ __syscall(1, g + 1); return 0; }`
	c, img := buildCore(t, src, isa.X86)
	// Drop the data page to force a fault mid-run.
	gaddr := img.GlobalAddr[isa.X86]["g"]
	saved := *c.Mem.Page(gaddr)
	c.Mem.DropPage(gaddr)
	faulted := false
	for i := 0; i < 100000; i++ {
		switch ev := c.Step(); ev {
		case EvFault:
			if c.FaultAddr != gaddr {
				t.Fatalf("fault at %#x, want %#x", c.FaultAddr, gaddr)
			}
			faulted = true
			c.Mem.InstallPage(gaddr, &saved)
		case EvSyscall:
			if !faulted {
				t.Fatal("expected a fault before the syscall")
			}
			_, args := c.SyscallArgs()
			if args[0] != 6 {
				t.Fatalf("after fault retry got %d, want 6", args[0])
			}
			return
		case EvError:
			t.Fatal(c.Err)
		}
	}
	t.Fatal("never reached the syscall")
}

func TestVDSOMagicReads(t *testing.T) {
	src := `long main(void){
		long tid = *(long*)112589990684262400; // placeholder, patched below
		__syscall(1, tid);
		return 0; }`
	_ = src
	// Simpler: read via the prelude-free path using a direct address.
	src2 := `long main(void){
		long *p = (long*)` + uitoa(sys.VDSOTidAddr) + `;
		long *q = (long*)` + uitoa(sys.VDSONodeAddr) + `;
		__syscall(1, *p * 100 + *q);
		return 0; }`
	c, _ := buildCore(t, src2, isa.ARM64)
	c.CurTID = 7
	c.CurNode = 1
	_, args := runUntilSyscall(t, c)
	if args[0] != 701 {
		t.Fatalf("vdso reads gave %d, want 701", args[0])
	}
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestAtomicOpsSequential(t *testing.T) {
	src := `
long word = 10;
long main(void){
	long old1 = __atomic_add(&word, 5);
	long old2 = __atomic_cas(&word, 15, 99);
	long old3 = __atomic_cas(&word, 15, 77); // fails: word is 99
	__syscall(1, old1 * 1000000 + old2 * 1000 + word);
	return 0; }`
	for _, arch := range isa.Arches {
		c, _ := buildCore(t, src, arch)
		_, args := runUntilSyscall(t, c)
		if args[0] != 10*1000000+15*1000+99 {
			t.Errorf("%s: atomics gave %d", arch, args[0])
		}
	}
}

func TestWildJumpReported(t *testing.T) {
	src := `long main(void){
		long fp = 12345;
		return __icall((char*)fp, 0); }`
	c, _ := buildCore(t, src, isa.X86)
	for i := 0; i < 100000; i++ {
		if ev := c.Step(); ev == EvError {
			if !strings.Contains(c.Err.Error(), "indirect call") {
				t.Fatalf("wrong error: %v", c.Err)
			}
			return
		}
	}
	t.Fatal("wild indirect call not trapped")
}

func TestInstrumentationHooks(t *testing.T) {
	// f has a branch, so the tiny-function inliner leaves the calls intact.
	src := `
long f(long x) { if (x > 100) return x; return x + 1; }
long main(void){
	long s = 0;
	for (long i = 0; i < 5; i++) s = f(s);
	__syscall(1, s);
	return 0; }`
	c, _ := buildCore(t, src, isa.X86)
	calls := 0
	c.OnAnyCall = func(gap uint64) { calls++ }
	runUntilSyscall(t, c)
	if calls < 5 {
		t.Errorf("call hook fired %d times, want >= 5", calls)
	}
}

func TestCacheChargesApplied(t *testing.T) {
	src := `
long arr[4096];
long main(void){
	long s = 0;
	for (long i = 0; i < 4096; i++) s += arr[i];
	__syscall(1, s);
	return 0; }`
	c, _ := buildCore(t, src, isa.X86)
	runUntilSyscall(t, c)
	if c.DCache.Misses == 0 {
		t.Error("streaming over 32 KiB produced no D-cache misses")
	}
	if c.ICache.Accesses == 0 {
		t.Error("no instruction fetches recorded")
	}
}

func TestCostFnOverride(t *testing.T) {
	src := `long main(void){
		long s = 0;
		for (long i = 0; i < 1000; i++) s += i;
		__syscall(1, s);
		return 0; }`
	base, _ := buildCore(t, src, isa.X86)
	runUntilSyscall(t, base)
	over, _ := buildCore(t, src, isa.X86)
	over.CostFn = func(op isa.Op) int64 { return 50 * isa.CycleCost(isa.X86, op) }
	runUntilSyscall(t, over)
	if over.Cycles < 10*base.Cycles {
		t.Errorf("cost override ineffective: %d vs %d", over.Cycles, base.Cycles)
	}
}
