// Package machine implements the per-core CPU simulator: it fetches,
// decodes (from pre-decoded streams) and executes the simulated ISA with a
// cycle cost model and L1 instruction/data cache simulation. Traps
// (syscalls, page faults, arithmetic errors) are surfaced as events to the
// kernel, which owns scheduling, memory management and migration.
package machine

import (
	"fmt"
	"math"

	"heterodc/internal/cache"
	"heterodc/internal/isa"
	"heterodc/internal/link"
	"heterodc/internal/mem"
	"heterodc/internal/sys"
)

// Event is what a Step can surface to the kernel.
type Event int

const (
	// EvNone: instruction retired normally.
	EvNone Event = iota
	// EvSyscall: an OpSyscall trapped; arguments are in the ABI registers.
	// The PC has been advanced past the syscall instruction.
	EvSyscall
	// EvFault: a memory access touched a non-present page. FaultAddr and
	// FaultWrite describe it; the PC still points at the faulting
	// instruction, which will re-execute once the page is resident.
	EvFault
	// EvError: the program performed an illegal operation (divide by zero,
	// wild jump, bad indirect call). Err holds details.
	EvError
)

// Core is one simulated CPU core. Registers are sized for the larger
// register file; the active ISA's Desc says how many are architectural.
type Core struct {
	Desc *isa.Desc
	Prog *link.Program
	Mem  *mem.Memory

	RegsI [32]int64
	RegsF [32]float64
	PC    uint64

	// Fn/Idx cache the current function and instruction index for PC.
	Fn  *link.Func
	Idx int

	ICache *cache.Cache
	DCache *cache.Cache

	// Cycles accumulates cost since the kernel last reset it.
	Cycles int64
	// Instrs counts retired instructions (for IPC, load metrics and the
	// Valgrind-style migration-point analysis).
	Instrs uint64

	// CurTID / CurNode are per-CPU values the kernel sets at dispatch; loads
	// from the vDSO magic addresses observe them (the stand-in for reading
	// the thread-pointer register).
	CurTID  int64
	CurNode int64

	// Fault details when Step returns EvFault.
	FaultAddr  uint64
	FaultWrite bool
	// Err when Step returns EvError.
	Err error

	// MigrateCheckEntry, when non-zero, is the entry address of
	// __migrate_check; calls to it fire OnMigratePoint with the number of
	// instructions retired since the previous migration point.
	MigrateCheckEntry uint64
	OnMigratePoint    func(instrsSince uint64)
	lastMigratePoint  uint64
	// OnAnyCall, when set, fires on every OpCall with the instruction count
	// since the previous call (the "Pre" histogram of Figures 3-5).
	OnAnyCall   func(instrsSince uint64)
	lastAnyCall uint64

	// OnMigratePointAt, when set, fires at each migration point with the
	// containing function's name (experiment attribution).
	OnMigratePointAt func(fn string)

	// OnPointKernel is the kernel-owned migration-point hook (the checkpoint
	// policy's tick). It is installed once at kernel construction and must
	// stay independent of the instrumentation hooks above, which experiments
	// overwrite freely via InstrumentCalls.
	OnPointKernel func()

	// CostFn, when set, replaces the native per-op base cycle cost — the
	// hook the DBT-emulation and managed-runtime baselines use to model
	// translated/interpreted execution.
	CostFn func(op isa.Op) int64

	// InstrProfile, when non-nil, accumulates retired instructions per
	// function (diagnostics; expensive).
	InstrProfile map[string]uint64
}

// NewCore builds a core for desc with fresh caches.
func NewCore(desc *isa.Desc) *Core {
	return &Core{
		Desc:   desc,
		ICache: cache.New(cache.DefaultL1(desc.L1MissPenalty)),
		DCache: cache.New(cache.DefaultL1(desc.L1MissPenalty)),
	}
}

// SetPC repositions execution at pc, resolving the containing function.
func (c *Core) SetPC(pc uint64) error {
	fn := c.Prog.FuncAt(pc)
	if fn == nil {
		return fmt.Errorf("machine: jump to unmapped pc %#x", pc)
	}
	idx, err := fn.IndexOf(pc)
	if err != nil {
		return err
	}
	c.Fn, c.Idx, c.PC = fn, idx, pc
	return nil
}

// ResetPointCounters clears the migration-point instrumentation baselines
// (call when a new thread is dispatched on the core).
func (c *Core) ResetPointCounters() {
	c.lastMigratePoint = c.Instrs
	c.lastAnyCall = c.Instrs
}

func (c *Core) fault(addr uint64, write bool) Event {
	c.FaultAddr = addr
	c.FaultWrite = write
	return EvFault
}

func (c *Core) errorf(format string, args ...interface{}) Event {
	c.Err = fmt.Errorf(format, args...)
	return EvError
}

// dataAddr charges the D-cache for an access at addr.
func (c *Core) dataAccess(addr uint64, size int64) {
	c.Cycles += c.DCache.AccessRange(addr, size)
}

// readU64 performs a data read with vDSO magic handling.
func (c *Core) readU64(addr uint64) (uint64, bool, Event) {
	switch addr {
	case sys.VDSOTidAddr:
		return uint64(c.CurTID), true, EvNone
	case sys.VDSONodeAddr:
		return uint64(c.CurNode), true, EvNone
	}
	v, err := c.Mem.ReadU64(addr)
	if err != nil {
		return 0, false, c.fault(addr, false)
	}
	c.dataAccess(addr, 8)
	return v, true, EvNone
}

func (c *Core) writeU64(addr uint64, v uint64) (bool, Event) {
	if err := c.Mem.WriteU64(addr, v); err != nil {
		return false, c.fault(addr, true)
	}
	c.dataAccess(addr, 8)
	return true, EvNone
}

// Step executes one instruction. On EvNone/EvSyscall the PC has advanced;
// on EvFault/EvError it has not.
func (c *Core) Step() Event {
	in := &c.Fn.Code[c.Idx]
	d := c.Desc
	if c.InstrProfile != nil {
		c.InstrProfile[c.Fn.Name]++
	}

	// Instruction fetch: I-cache cost plus base op cost.
	var cost int64
	if c.CostFn != nil {
		cost = c.CostFn(in.Op)
	} else {
		cost = isa.CycleCost(d.Arch, in.Op)
	}
	cost += c.ICache.AccessRange(c.PC, in.Size)

	advance := true
	ri := &c.RegsI
	rf := &c.RegsF

	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		ri[in.Rd] = ri[in.Rs1] + ri[in.Rs2]
	case isa.OpSub:
		ri[in.Rd] = ri[in.Rs1] - ri[in.Rs2]
	case isa.OpMul:
		ri[in.Rd] = ri[in.Rs1] * ri[in.Rs2]
	case isa.OpDiv:
		b := ri[in.Rs2]
		if b == 0 {
			return c.errorf("machine: division by zero at %#x (%s)", c.PC, c.Fn.Name)
		}
		a := ri[in.Rs1]
		if a == math.MinInt64 && b == -1 {
			ri[in.Rd] = math.MinInt64
		} else {
			ri[in.Rd] = a / b
		}
	case isa.OpRem:
		b := ri[in.Rs2]
		if b == 0 {
			return c.errorf("machine: remainder by zero at %#x (%s)", c.PC, c.Fn.Name)
		}
		a := ri[in.Rs1]
		if a == math.MinInt64 && b == -1 {
			ri[in.Rd] = 0
		} else {
			ri[in.Rd] = a % b
		}
	case isa.OpAnd:
		ri[in.Rd] = ri[in.Rs1] & ri[in.Rs2]
	case isa.OpOr:
		ri[in.Rd] = ri[in.Rs1] | ri[in.Rs2]
	case isa.OpXor:
		ri[in.Rd] = ri[in.Rs1] ^ ri[in.Rs2]
	case isa.OpShl:
		ri[in.Rd] = ri[in.Rs1] << (uint64(ri[in.Rs2]) & 63)
	case isa.OpShr:
		ri[in.Rd] = ri[in.Rs1] >> (uint64(ri[in.Rs2]) & 63)
	case isa.OpAddI:
		ri[in.Rd] = ri[in.Rs1] + in.Imm
	case isa.OpMulI:
		ri[in.Rd] = ri[in.Rs1] * in.Imm
	case isa.OpAndI:
		ri[in.Rd] = ri[in.Rs1] & in.Imm
	case isa.OpOrI:
		ri[in.Rd] = ri[in.Rs1] | in.Imm
	case isa.OpXorI:
		ri[in.Rd] = ri[in.Rs1] ^ in.Imm
	case isa.OpShlI:
		ri[in.Rd] = ri[in.Rs1] << (uint64(in.Imm) & 63)
	case isa.OpShrI:
		ri[in.Rd] = ri[in.Rs1] >> (uint64(in.Imm) & 63)
	case isa.OpLdi:
		ri[in.Rd] = in.Imm
	case isa.OpMov:
		ri[in.Rd] = ri[in.Rs1]
	case isa.OpCmpEq:
		ri[in.Rd] = b2i(ri[in.Rs1] == ri[in.Rs2])
	case isa.OpCmpNe:
		ri[in.Rd] = b2i(ri[in.Rs1] != ri[in.Rs2])
	case isa.OpCmpLt:
		ri[in.Rd] = b2i(ri[in.Rs1] < ri[in.Rs2])
	case isa.OpCmpLe:
		ri[in.Rd] = b2i(ri[in.Rs1] <= ri[in.Rs2])
	case isa.OpCmpGt:
		ri[in.Rd] = b2i(ri[in.Rs1] > ri[in.Rs2])
	case isa.OpCmpGe:
		ri[in.Rd] = b2i(ri[in.Rs1] >= ri[in.Rs2])
	case isa.OpFAdd:
		rf[in.Rd] = rf[in.Rs1] + rf[in.Rs2]
	case isa.OpFSub:
		rf[in.Rd] = rf[in.Rs1] - rf[in.Rs2]
	case isa.OpFMul:
		rf[in.Rd] = rf[in.Rs1] * rf[in.Rs2]
	case isa.OpFDiv:
		rf[in.Rd] = rf[in.Rs1] / rf[in.Rs2]
	case isa.OpFNeg:
		rf[in.Rd] = -rf[in.Rs1]
	case isa.OpFSqrt:
		rf[in.Rd] = math.Sqrt(rf[in.Rs1])
	case isa.OpFMov:
		rf[in.Rd] = rf[in.Rs1]
	case isa.OpFLdi:
		rf[in.Rd] = in.FImm
	case isa.OpFCmpEq:
		ri[in.Rd] = b2i(rf[in.Rs1] == rf[in.Rs2])
	case isa.OpFCmpNe:
		ri[in.Rd] = b2i(rf[in.Rs1] != rf[in.Rs2])
	case isa.OpFCmpLt:
		ri[in.Rd] = b2i(rf[in.Rs1] < rf[in.Rs2])
	case isa.OpFCmpLe:
		ri[in.Rd] = b2i(rf[in.Rs1] <= rf[in.Rs2])
	case isa.OpFCmpGt:
		ri[in.Rd] = b2i(rf[in.Rs1] > rf[in.Rs2])
	case isa.OpFCmpGe:
		ri[in.Rd] = b2i(rf[in.Rs1] >= rf[in.Rs2])
	case isa.OpI2F:
		rf[in.Rd] = float64(ri[in.Rs1])
	case isa.OpF2I:
		ri[in.Rd] = f2i(rf[in.Rs1])
	case isa.OpLd:
		addr := uint64(ri[in.Rs1] + in.Imm)
		v, ok, ev := c.readU64(addr)
		if !ok {
			return ev
		}
		ri[in.Rd] = int64(v)
	case isa.OpSt:
		addr := uint64(ri[in.Rs1] + in.Imm)
		if ok, ev := c.writeU64(addr, uint64(ri[in.Rs2])); !ok {
			return ev
		}
	case isa.OpLdB:
		addr := uint64(ri[in.Rs1] + in.Imm)
		v, err := c.Mem.ReadU8(addr)
		if err != nil {
			return c.fault(addr, false)
		}
		c.dataAccess(addr, 1)
		ri[in.Rd] = int64(v)
	case isa.OpStB:
		addr := uint64(ri[in.Rs1] + in.Imm)
		if err := c.Mem.WriteU8(addr, byte(ri[in.Rs2])); err != nil {
			return c.fault(addr, true)
		}
		c.dataAccess(addr, 1)
	case isa.OpFLd:
		addr := uint64(ri[in.Rs1] + in.Imm)
		v, ok, ev := c.readU64(addr)
		if !ok {
			return ev
		}
		rf[in.Rd] = math.Float64frombits(v)
	case isa.OpFSt:
		addr := uint64(ri[in.Rs1] + in.Imm)
		if ok, ev := c.writeU64(addr, math.Float64bits(rf[in.Rs2])); !ok {
			return ev
		}
	case isa.OpLea:
		ri[in.Rd] = in.Imm // linker resolved Sym+off into Imm
	case isa.OpAtomicAdd:
		addr := uint64(ri[in.Rs1] + in.Imm)
		v, ok, ev := c.readU64(addr)
		if !ok {
			return ev
		}
		if ok, ev := c.writeU64(addr, uint64(int64(v)+ri[in.Rs2])); !ok {
			return ev
		}
		ri[in.Rd] = int64(v)
	case isa.OpAtomicCAS:
		addr := uint64(ri[in.Rs1] + in.Imm)
		v, ok, ev := c.readU64(addr)
		if !ok {
			return ev
		}
		// The write-access check must pass even when the compare fails, so
		// ownership (and thus cross-machine atomicity) is exclusive.
		if !c.Mem.Writable(addr) {
			return c.fault(addr, true)
		}
		if int64(v) == ri[in.Rs2] {
			if ok, ev := c.writeU64(addr, uint64(ri[in.Rs3])); !ok {
				return ev
			}
		}
		ri[in.Rd] = int64(v)
	case isa.OpPush:
		sp := uint64(ri[d.SP]) - 8
		if ok, ev := c.writeU64(sp, uint64(ri[in.Rs1])); !ok {
			return ev
		}
		ri[d.SP] = int64(sp)
	case isa.OpPop:
		sp := uint64(ri[d.SP])
		v, ok, ev := c.readU64(sp)
		if !ok {
			return ev
		}
		ri[in.Rd] = int64(v)
		ri[d.SP] = int64(sp + 8)
	case isa.OpBr:
		c.Idx = in.Target
		c.PC = c.Fn.Addr[c.Idx]
		advance = false
	case isa.OpBeqz:
		if ri[in.Rs1] == 0 {
			c.Idx = in.Target
			c.PC = c.Fn.Addr[c.Idx]
			advance = false
		}
	case isa.OpBnez:
		if ri[in.Rs1] != 0 {
			c.Idx = in.Target
			c.PC = c.Fn.Addr[c.Idx]
			advance = false
		}
	case isa.OpCall:
		callee := c.Prog.ByName[in.Sym]
		if callee == nil {
			return c.errorf("machine: call to undefined %q", in.Sym)
		}
		if ev, ok := c.doCall(callee); !ok {
			return ev
		}
		advance = false
	case isa.OpCallR:
		callee := c.Prog.FuncEntry(uint64(ri[in.Rs1]))
		if callee == nil {
			return c.errorf("machine: indirect call to non-entry %#x", uint64(ri[in.Rs1]))
		}
		if ev, ok := c.doCall(callee); !ok {
			return ev
		}
		advance = false
	case isa.OpRet:
		var ret uint64
		if d.RetAddrOnStack {
			sp := uint64(ri[d.SP])
			v, ok, ev := c.readU64(sp)
			if !ok {
				return ev
			}
			ri[d.SP] = int64(sp + 8)
			ret = v
		} else {
			ret = uint64(ri[d.LR])
		}
		if ret == 0 {
			return c.errorf("machine: return from entry shim %s (pc=%#x sp=%#x fp=%#x)",
				c.Fn.Name, c.PC, uint64(ri[d.SP]), uint64(ri[d.FP]))
		}
		if err := c.SetPC(ret); err != nil {
			c.Err = err
			return EvError
		}
		advance = false
	case isa.OpSyscall:
		c.Cycles += cost
		c.Instrs++
		c.advance()
		return EvSyscall
	default:
		return c.errorf("machine: unimplemented op %s", in.Op)
	}

	c.Cycles += cost
	c.Instrs++
	if advance {
		c.advance()
	}
	return EvNone
}

// doCall performs the ISA's return-address discipline and jumps to callee.
// Returns (event, ok=false) if the x86 return-address push faulted.
func (c *Core) doCall(callee *link.Func) (Event, bool) {
	d := c.Desc
	retAddr := c.PC + uint64(c.Fn.Code[c.Idx].Size)
	if d.RetAddrOnStack {
		sp := uint64(c.RegsI[d.SP]) - 8
		if ok, ev := c.writeU64(sp, retAddr); !ok {
			return ev, false
		}
		c.RegsI[d.SP] = int64(sp)
	} else {
		c.RegsI[d.LR] = int64(retAddr)
	}
	// Migration-point / call instrumentation.
	if c.OnAnyCall != nil {
		c.OnAnyCall(c.Instrs - c.lastAnyCall)
		c.lastAnyCall = c.Instrs
	}
	if c.MigrateCheckEntry != 0 && callee.Base == c.MigrateCheckEntry {
		if c.OnMigratePoint != nil {
			c.OnMigratePoint(c.Instrs - c.lastMigratePoint)
		}
		if c.OnMigratePointAt != nil {
			c.OnMigratePointAt(c.Fn.Name)
		}
		if c.OnPointKernel != nil {
			c.OnPointKernel()
		}
		c.lastMigratePoint = c.Instrs
	}
	c.Fn = callee
	c.Idx = 0
	c.PC = callee.Base
	return EvNone, true
}

func (c *Core) advance() {
	c.Idx++
	if c.Idx < len(c.Fn.Code) {
		c.PC = c.Fn.Addr[c.Idx]
		return
	}
	// Fell off the end of a function: functions always end in RET or a
	// branch, so this is unreachable for verified code; trap via SetPC.
	c.PC = c.Fn.Base + c.Fn.Size
}

// SyscallArgs extracts the syscall number and arguments per the ABI.
func (c *Core) SyscallArgs() (num int64, args [5]int64) {
	d := c.Desc
	num = c.RegsI[d.IntArgRegs[0]]
	for i := 0; i < 5 && i+1 < len(d.IntArgRegs); i++ {
		args[i] = c.RegsI[d.IntArgRegs[i+1]]
	}
	return num, args
}

// SetSyscallResult writes the kernel's return value.
func (c *Core) SetSyscallResult(v int64) {
	c.RegsI[c.Desc.IntRet] = v
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// f2i matches the IR interpreter's cross-ISA truncation semantics.
func f2i(f float64) int64 {
	if math.IsNaN(f) {
		return 0
	}
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	if f <= math.MinInt64 {
		return math.MinInt64
	}
	return int64(f)
}
