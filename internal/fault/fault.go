// Package fault provides deterministic, seeded fault plans for the
// simulated datacenter: message loss, duplication and latency jitter on
// the interconnect, per-link degradation windows, and scheduled node
// crash/recovery events. The paper's testbed assumes a perfect Dolphin
// PCIe link and always-alive kernels; at warehouse scale neither holds,
// so the rest of the stack (msg, dsm, kernel, sched) is exercised under
// the chaos this package injects.
//
// Every decision is a pure function of (plan seed, message identity), so
// a run under a plan is exactly reproducible: two runs of the same
// workload with the same seed see the same drops, the same duplicates and
// the same jitter, message for message.
package fault

import "sort"

// Plan describes the chaos to inject into one run.
type Plan struct {
	// Seed selects the deterministic pseudo-random stream.
	Seed int64
	// DropProb is the baseline per-message-leg loss probability.
	DropProb float64
	// DupProb is the probability a delivered message is duplicated.
	DupProb float64
	// JitterSec is the maximum extra one-way latency added to a delivered
	// message (uniformly distributed in [0, JitterSec)).
	JitterSec float64
	// Windows lists per-link degradation windows layered on the baseline.
	Windows []Window
	// Partitions lists network-partition windows: node-set bipartitions that
	// sever whole link classes, on top of the per-leg faults above.
	Partitions []PartitionWindow
	// Crashes lists scheduled node outages.
	Crashes []Crash
	// Slowdowns lists gray-failure CPU degradation windows: the node keeps
	// running and answering probes, just slower.
	Slowdowns []Slowdown
}

// Window degrades one directed link (or all links) for a time span. While
// active, the worse of the window's and the plan's baseline parameters
// applies.
type Window struct {
	// From/To select the directed link; -1 matches any node.
	From, To int
	// Start/End bound the window in simulated seconds: [Start, End).
	Start, End float64
	// DropProb is the loss probability inside the window.
	DropProb float64
	// JitterSec is the jitter bound inside the window.
	JitterSec float64
}

// PartitionWindow cuts the rack for a time span. Two compositions:
//
//   - GroupA splits the rack into two sides; every message leg crossing
//     the cut while the window is active is lost, traffic within a side is
//     untouched.
//   - Legs severs an explicit set of directed node legs instead — the
//     per-link form. A topology-aware plan cuts one fabric link (say a
//     ToR->spine uplink) by listing exactly the legs routed over it
//     (topo.Fabric.Legs), which no node-set bipartition can express: the
//     reverse direction and in-rack traffic keep flowing.
//
// Unlike a Crash, partitioned nodes keep executing — only the severed
// communication dies, which is exactly the condition that manufactures
// split-brain membership views.
type PartitionWindow struct {
	// GroupA lists one side's nodes; every node not listed is on side B.
	// Ignored when Legs is non-empty.
	GroupA []int
	// Legs lists the directed from->to node legs the window severs; when
	// non-empty it replaces the GroupA bipartition. OneWay does not apply
	// (each leg is already directed — list both directions to cut a link
	// pair).
	Legs [][2]int
	// Start/HealAt bound the cut in simulated seconds: [Start, HealAt).
	// HealAt <= Start means the partition never heals.
	Start, HealAt float64
	// OneWay makes the cut asymmetric: only A->B legs are severed, B->A
	// still delivers (a half-open failure, e.g. a dead transmit queue).
	OneWay bool
}

// healsAt reports the window's heal time (ok=false: never).
func (w *PartitionWindow) healsAt() (float64, bool) {
	if w.HealAt <= w.Start {
		return 0, false
	}
	return w.HealAt, true
}

// cuts reports whether the window severs the directed from->to leg at time
// at, given the precomputed side-A membership and severed-leg sets.
func cuts(w *PartitionWindow, inA map[int]bool, legs map[[2]int]bool, at float64, from, to int) bool {
	if at < w.Start {
		return false
	}
	if heal, ok := w.healsAt(); ok && at >= heal {
		return false
	}
	if legs != nil {
		return legs[[2]int{from, to}]
	}
	fa, ta := inA[from], inA[to]
	if fa == ta {
		return false // same side
	}
	if w.OneWay && !fa {
		return false // B->A survives an asymmetric cut
	}
	return true
}

// Slowdown schedules a gray CPU failure: for [Start, End) the node's
// cores retire cycles Factor times slower than their nominal clock. The
// node stays alive, answers probes and makes progress — exactly the
// failure mode a fail-stop detector cannot convict, which is why the
// health layer scores it from the retire rate instead.
type Slowdown struct {
	Node       int
	Start, End float64
	// Factor >= 1 multiplies the wall time every cycle takes. 1 is a no-op.
	Factor float64
}

// Slow returns the effective CPU slowdown factor for node at time at: the
// worst Factor among active windows, or exactly 1 when none is active (so
// the unfaulted path stays bit-identical).
func (in *Injector) Slow(node int, at float64) float64 {
	f := 1.0
	for _, s := range in.plan.Slowdowns {
		if s.Node != node || at < s.Start || at >= s.End {
			continue
		}
		if s.Factor > f {
			f = s.Factor
		}
	}
	return f
}

// Crash schedules a fail-stop node outage. The model is a machine that
// stops executing and falls off the interconnect, then rejoins with its
// memory intact — threads frozen on the node resume at RecoverAt, and DSM
// pages it owns become reachable again. RecoverAt <= At means the node
// never comes back; work depending on it degrades to an error instead of
// hanging forever.
type Crash struct {
	Node      int
	At        float64
	RecoverAt float64
}

// Injector evaluates a Plan. It satisfies the msg.Injector interface and
// is shared between the interconnect (message fates) and the cluster
// (crash schedule).
type Injector struct {
	plan Plan
	// partA[i] is Partitions[i].GroupA as a set, precomputed so per-message
	// cut checks are O(windows).
	partA []map[int]bool
	// partLegs[i] is Partitions[i].Legs as a set (nil when the window is a
	// GroupA bipartition).
	partLegs []map[[2]int]bool
}

// NewInjector builds an injector for plan. The plan is copied and its
// crash schedule sorted by time.
func NewInjector(plan Plan) *Injector {
	p := plan
	p.Windows = append([]Window(nil), plan.Windows...)
	p.Partitions = append([]PartitionWindow(nil), plan.Partitions...)
	p.Crashes = append([]Crash(nil), plan.Crashes...)
	p.Slowdowns = append([]Slowdown(nil), plan.Slowdowns...)
	sort.Slice(p.Crashes, func(i, j int) bool { return p.Crashes[i].At < p.Crashes[j].At })
	in := &Injector{plan: p}
	for _, w := range p.Partitions {
		set := make(map[int]bool, len(w.GroupA))
		for _, n := range w.GroupA {
			set[n] = true
		}
		in.partA = append(in.partA, set)
		var legs map[[2]int]bool
		if len(w.Legs) > 0 {
			legs = make(map[[2]int]bool, len(w.Legs))
			for _, l := range w.Legs {
				legs[l] = true
			}
		}
		in.partLegs = append(in.partLegs, legs)
	}
	return in
}

// LinkCut reports whether an active partition window severs the directed
// from->to leg at time at. It satisfies msg.Partitioner.
func (in *Injector) LinkCut(at float64, from, to int) bool {
	for i := range in.plan.Partitions {
		if cuts(&in.plan.Partitions[i], in.partA[i], in.partLegs[i], at, from, to) {
			return true
		}
	}
	return false
}

// LinkClearAt returns the earliest time >= at at which no partition window
// cuts the from->to leg. ok=false means a never-healing window blocks the
// leg forever.
func (in *Injector) LinkClearAt(at float64, from, to int) (float64, bool) {
	t := at
	// Each pass advances t to some window's heal time; a window can force an
	// advance at most once, so passes are bounded by the window count.
	for pass := 0; pass <= len(in.plan.Partitions); pass++ {
		blocked := false
		for i := range in.plan.Partitions {
			w := &in.plan.Partitions[i]
			if !cuts(w, in.partA[i], in.partLegs[i], t, from, to) {
				continue
			}
			heal, ok := w.healsAt()
			if !ok {
				return 0, false
			}
			if heal > t {
				t = heal
				blocked = true
			}
		}
		if !blocked {
			break
		}
	}
	return t, true
}

// Plan returns the injector's normalised plan.
func (in *Injector) Plan() Plan { return in.plan }

// rand01 derives a uniform [0,1) value from the seed and a decision
// identity via a splitmix64-style finalizer. Distinct (seq, salt, link)
// triples give independent draws; the same triple always gives the same
// draw.
func (in *Injector) rand01(seq, salt, link uint64) float64 {
	x := uint64(in.plan.Seed)*0x9e3779b97f4a7c15 + seq*0xbf58476d1ce4e5b9 +
		salt*0x94d049bb133111eb + link*0xd6e8feb86659fd93
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// linkParams returns the effective drop probability and jitter bound for a
// message on from->to at time now, folding in any active windows.
func (in *Injector) linkParams(now float64, from, to int) (drop, jitter float64) {
	drop, jitter = in.plan.DropProb, in.plan.JitterSec
	for _, w := range in.plan.Windows {
		if (w.From != -1 && w.From != from) || (w.To != -1 && w.To != to) {
			continue
		}
		if now < w.Start || now >= w.End {
			continue
		}
		if w.DropProb > drop {
			drop = w.DropProb
		}
		if w.JitterSec > jitter {
			jitter = w.JitterSec
		}
	}
	return drop, jitter
}

// Fate decides a message leg's fate: lost, duplicated, and extra delivery
// latency. seq must be unique per decision on the directed from->to link
// (the interconnect numbers each link independently); the link identity is
// folded into the stream so equal sequence numbers on different links draw
// independent fates. The result is deterministic in (seed, from, to, seq).
func (in *Injector) Fate(now float64, from, to int, seq uint64) (drop, dup bool, jitter float64) {
	link := uint64(uint32(from))<<32 | uint64(uint32(to))
	dp, js := in.linkParams(now, from, to)
	if dp > 0 && in.rand01(seq, 1, link) < dp {
		return true, false, 0
	}
	if in.plan.DupProb > 0 && in.rand01(seq, 2, link) < in.plan.DupProb {
		dup = true
	}
	if js > 0 {
		jitter = js * in.rand01(seq, 3, link)
	}
	return false, dup, jitter
}

// NodeDown reports whether node is inside a crash outage at time at.
func (in *Injector) NodeDown(node int, at float64) bool {
	for _, c := range in.plan.Crashes {
		if c.Node != node || at < c.At {
			continue
		}
		if c.RecoverAt <= c.At || at < c.RecoverAt {
			return true
		}
	}
	return false
}

// NodeRecoverAt returns when a currently-down node comes back. It returns
// (0, false) when the node is up at the given time or when the outage is
// permanent — callers distinguish the two with NodeDown.
func (in *Injector) NodeRecoverAt(node int, at float64) (float64, bool) {
	for _, c := range in.plan.Crashes {
		if c.Node != node || at < c.At {
			continue
		}
		if c.RecoverAt <= c.At {
			return 0, false
		}
		if at < c.RecoverAt {
			return c.RecoverAt, true
		}
	}
	return 0, false
}
