package fault

import "testing"

func TestFateDeterministic(t *testing.T) {
	a := NewInjector(Plan{Seed: 42, DropProb: 0.3, DupProb: 0.1, JitterSec: 5e-6})
	b := NewInjector(Plan{Seed: 42, DropProb: 0.3, DupProb: 0.1, JitterSec: 5e-6})
	for seq := uint64(0); seq < 1000; seq++ {
		d1, u1, j1 := a.Fate(0.5, 0, 1, seq)
		d2, u2, j2 := b.Fate(0.5, 0, 1, seq)
		if d1 != d2 || u1 != u2 || j1 != j2 {
			t.Fatalf("seq %d: fates differ (%v %v %g) vs (%v %v %g)", seq, d1, u1, j1, d2, u2, j2)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := NewInjector(Plan{Seed: 1, DropProb: 0.5})
	b := NewInjector(Plan{Seed: 2, DropProb: 0.5})
	same := 0
	for seq := uint64(0); seq < 1000; seq++ {
		d1, _, _ := a.Fate(0, 0, 1, seq)
		d2, _, _ := b.Fate(0, 0, 1, seq)
		if d1 == d2 {
			same++
		}
	}
	if same > 650 || same < 350 {
		t.Fatalf("seeds 1 and 2 agree on %d/1000 fates, want ~500", same)
	}
}

func TestDropRateApproximatesProbability(t *testing.T) {
	in := NewInjector(Plan{Seed: 7, DropProb: 0.2})
	drops := 0
	const n = 20000
	for seq := uint64(0); seq < n; seq++ {
		if d, _, _ := in.Fate(0, 0, 1, seq); d {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.17 || rate > 0.23 {
		t.Fatalf("drop rate %.3f, want ~0.2", rate)
	}
}

func TestJitterBounded(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, JitterSec: 1e-5})
	for seq := uint64(0); seq < 5000; seq++ {
		_, _, j := in.Fate(0, 0, 1, seq)
		if j < 0 || j >= 1e-5 {
			t.Fatalf("jitter %g outside [0, 1e-5)", j)
		}
	}
}

func TestWindowDegradesOneLink(t *testing.T) {
	in := NewInjector(Plan{Seed: 5, Windows: []Window{
		{From: 0, To: 1, Start: 1.0, End: 2.0, DropProb: 1.0},
	}})
	// Inside the window on the matching link: always dropped.
	for seq := uint64(0); seq < 100; seq++ {
		if d, _, _ := in.Fate(1.5, 0, 1, seq); !d {
			t.Fatal("window drop probability 1.0 let a message through")
		}
	}
	// Outside the window in time, or on the reverse link: never dropped.
	if d, _, _ := in.Fate(0.5, 0, 1, 1); d {
		t.Fatal("dropped before the window opened")
	}
	if d, _, _ := in.Fate(2.0, 0, 1, 2); d {
		t.Fatal("dropped after the window closed (End is exclusive)")
	}
	if d, _, _ := in.Fate(1.5, 1, 0, 3); d {
		t.Fatal("reverse link affected by a directed window")
	}
}

func TestWildcardWindowMatchesAnyLink(t *testing.T) {
	in := NewInjector(Plan{Seed: 5, Windows: []Window{
		{From: -1, To: -1, Start: 0, End: 1, DropProb: 1.0},
	}})
	for _, link := range [][2]int{{0, 1}, {1, 0}, {2, 3}} {
		if d, _, _ := in.Fate(0.5, link[0], link[1], 9); !d {
			t.Fatalf("wildcard window missed link %v", link)
		}
	}
}

func TestNodeDownSchedule(t *testing.T) {
	in := NewInjector(Plan{Crashes: []Crash{
		{Node: 1, At: 1.0, RecoverAt: 2.0},
		{Node: 1, At: 5.0, RecoverAt: 0}, // permanent
	}})
	cases := []struct {
		at   float64
		down bool
	}{
		{0.5, false}, {1.0, true}, {1.9, true}, {2.0, false}, {3.0, false},
		{5.0, true}, {100.0, true},
	}
	for _, c := range cases {
		if got := in.NodeDown(1, c.at); got != c.down {
			t.Errorf("NodeDown(1, %g) = %v, want %v", c.at, got, c.down)
		}
	}
	if in.NodeDown(0, 1.5) {
		t.Error("node 0 reported down with no scheduled crash")
	}
}

func TestNodeRecoverAt(t *testing.T) {
	in := NewInjector(Plan{Crashes: []Crash{
		{Node: 1, At: 1.0, RecoverAt: 2.0},
		{Node: 2, At: 1.0, RecoverAt: 0},
	}})
	if rec, ok := in.NodeRecoverAt(1, 1.5); !ok || rec != 2.0 {
		t.Errorf("NodeRecoverAt(1, 1.5) = %g %v, want 2.0 true", rec, ok)
	}
	if _, ok := in.NodeRecoverAt(1, 0.5); ok {
		t.Error("recovery reported for a node that is up")
	}
	if _, ok := in.NodeRecoverAt(2, 1.5); ok {
		t.Error("recovery reported for a permanent outage")
	}
}

func TestCrashesSortedBySchedule(t *testing.T) {
	in := NewInjector(Plan{Crashes: []Crash{
		{Node: 0, At: 5.0, RecoverAt: 6.0},
		{Node: 1, At: 1.0, RecoverAt: 2.0},
	}})
	p := in.Plan()
	if p.Crashes[0].At != 1.0 || p.Crashes[1].At != 5.0 {
		t.Fatalf("crashes not sorted: %+v", p.Crashes)
	}
}

func TestPartitionLinkCut(t *testing.T) {
	in := NewInjector(Plan{Partitions: []PartitionWindow{
		{GroupA: []int{0, 1}, Start: 1.0, HealAt: 2.0},
	}})
	cases := []struct {
		at       float64
		from, to int
		want     bool
	}{
		{0.5, 0, 2, false}, // before the window
		{1.0, 0, 2, true},  // A->B severed
		{1.0, 2, 0, true},  // B->A severed (symmetric)
		{1.0, 0, 1, false}, // within side A
		{1.0, 2, 3, false}, // within side B
		{2.0, 0, 2, false}, // healed (half-open interval)
	}
	for i, c := range cases {
		if got := in.LinkCut(c.at, c.from, c.to); got != c.want {
			t.Errorf("case %d: LinkCut(%g, %d, %d) = %v, want %v", i, c.at, c.from, c.to, got, c.want)
		}
	}
}

func TestPartitionOneWayCut(t *testing.T) {
	in := NewInjector(Plan{Partitions: []PartitionWindow{
		{GroupA: []int{0}, Start: 0, HealAt: 1.0, OneWay: true},
	}})
	if !in.LinkCut(0.5, 0, 1) {
		t.Error("A->B leg of a one-way cut not severed")
	}
	if in.LinkCut(0.5, 1, 0) {
		t.Error("B->A leg of a one-way cut severed")
	}
}

func TestPartitionLegsCut(t *testing.T) {
	// A per-link cut: sever exactly the legs a ToR->spine uplink would
	// carry (rack {2,3}'s outbound cross-rack traffic), nothing else. No
	// GroupA bipartition can express this — the reverse direction and
	// in-rack traffic must keep flowing.
	in := NewInjector(Plan{Partitions: []PartitionWindow{
		{Legs: [][2]int{{2, 0}, {2, 1}, {3, 0}, {3, 1}}, Start: 1.0, HealAt: 2.0},
	}})
	cases := []struct {
		at       float64
		from, to int
		want     bool
	}{
		{0.5, 2, 0, false}, // before the window
		{1.0, 2, 0, true},  // outbound cross-rack severed
		{1.0, 3, 1, true},
		{1.0, 0, 2, false}, // inbound direction not listed: survives
		{1.0, 2, 3, false}, // in-rack traffic survives
		{1.0, 0, 1, false}, // far side untouched
		{2.0, 2, 0, false}, // healed
	}
	for i, c := range cases {
		if got := in.LinkCut(c.at, c.from, c.to); got != c.want {
			t.Errorf("case %d: LinkCut(%g, %d, %d) = %v, want %v", i, c.at, c.from, c.to, got, c.want)
		}
	}
	// Legs takes precedence over a (stale) GroupA on the same window.
	both := NewInjector(Plan{Partitions: []PartitionWindow{
		{GroupA: []int{0}, Legs: [][2]int{{1, 2}}, Start: 0, HealAt: 1.0},
	}})
	if both.LinkCut(0.5, 0, 1) {
		t.Error("GroupA bipartition applied despite explicit Legs")
	}
	if !both.LinkCut(0.5, 1, 2) {
		t.Error("explicit leg not severed")
	}
}

func TestPartitionLegsClearAt(t *testing.T) {
	in := NewInjector(Plan{Partitions: []PartitionWindow{
		{Legs: [][2]int{{0, 1}}, Start: 1.0, HealAt: 2.0},
	}})
	if at, ok := in.LinkClearAt(1.5, 0, 1); !ok || at != 2.0 {
		t.Errorf("LinkClearAt(1.5, 0, 1) = (%g, %v), want (2, true)", at, ok)
	}
	// The unlisted reverse leg is never blocked.
	if at, ok := in.LinkClearAt(1.5, 1, 0); !ok || at != 1.5 {
		t.Errorf("LinkClearAt(1.5, 1, 0) = (%g, %v), want (1.5, true)", at, ok)
	}
}

func TestPartitionLinkClearAt(t *testing.T) {
	in := NewInjector(Plan{Partitions: []PartitionWindow{
		{GroupA: []int{0}, Start: 1.0, HealAt: 2.0},
		{GroupA: []int{0}, Start: 1.5, HealAt: 3.0},
	}})
	// Overlapping windows: clearing the first lands inside the second, so
	// the clear time must chain to the later heal.
	if at, ok := in.LinkClearAt(1.2, 0, 1); !ok || at != 3.0 {
		t.Errorf("LinkClearAt(1.2) = (%g, %v), want (3, true)", at, ok)
	}
	// Already clear: returns the query time.
	if at, ok := in.LinkClearAt(0.5, 0, 1); !ok || at != 0.5 {
		t.Errorf("LinkClearAt(0.5) = (%g, %v), want (0.5, true)", at, ok)
	}
	// A never-healing window blocks forever.
	perm := NewInjector(Plan{Partitions: []PartitionWindow{
		{GroupA: []int{0}, Start: 1.0, HealAt: 1.0},
	}})
	if _, ok := perm.LinkClearAt(1.5, 0, 1); ok {
		t.Error("LinkClearAt cleared a permanent cut")
	}
	// The same leg queried outside any window is unaffected.
	if at, ok := perm.LinkClearAt(0.2, 0, 1); !ok || at != 0.2 {
		t.Errorf("LinkClearAt before a permanent cut = (%g, %v), want (0.2, true)", at, ok)
	}
}

func TestPartitionLegsComposedWithOneWay(t *testing.T) {
	// An uplink leg cut (explicit directed legs out of rack {0,1}) overlaps
	// a one-way bipartition (node 0's transmit queue dies). Precedence is
	// "any active window severs": while both are live each leg answers to
	// the union of the cuts, and a leg only clears when the LAST window
	// covering it heals.
	in := NewInjector(Plan{Partitions: []PartitionWindow{
		{Legs: [][2]int{{0, 2}, {1, 2}}, Start: 1.0, HealAt: 3.0},
		{GroupA: []int{0}, OneWay: true, Start: 2.0, HealAt: 4.0},
	}})
	cases := []struct {
		at       float64
		from, to int
		want     bool
	}{
		{1.5, 0, 2, true},  // uplink leg severed
		{1.5, 2, 0, false}, // reverse direction not listed: survives
		{1.5, 0, 1, false}, // one-way window not yet open
		{2.5, 0, 2, true},  // both windows active
		{2.5, 0, 1, true},  // A->B severed by the one-way cut
		{2.5, 1, 0, false}, // B->A survives an asymmetric cut
		{2.5, 2, 0, false}, // inbound to the half-dead node still delivers
		{3.5, 0, 2, true},  // legs healed, one-way window still covers 0->2
		{3.5, 1, 2, false}, // 1's uplink leg healed; one-way never covered it
		{4.0, 0, 2, false}, // everything healed
		{4.0, 0, 1, false},
	}
	for i, c := range cases {
		if got := in.LinkCut(c.at, c.from, c.to); got != c.want {
			t.Errorf("case %d: LinkCut(%g, %d, %d) = %v, want %v", i, c.at, c.from, c.to, got, c.want)
		}
	}
	// Heal ordering: a leg covered by both windows chains to the later
	// heal; a leg covered by only one clears at that window's heal.
	if at, ok := in.LinkClearAt(1.5, 0, 2); !ok || at != 4.0 {
		t.Errorf("LinkClearAt(1.5, 0, 2) = (%g, %v), want (4, true): must chain past both heals", at, ok)
	}
	if at, ok := in.LinkClearAt(1.5, 1, 2); !ok || at != 3.0 {
		t.Errorf("LinkClearAt(1.5, 1, 2) = (%g, %v), want (3, true)", at, ok)
	}
	if at, ok := in.LinkClearAt(2.5, 1, 0); !ok || at != 2.5 {
		t.Errorf("LinkClearAt(2.5, 1, 0) = (%g, %v), want (2.5, true): the surviving direction is never blocked", at, ok)
	}
}

func TestPartitionComposedWithRackPower(t *testing.T) {
	// A rack power event (both rack members crash together) overlapping a
	// partition window. The layers are independent: a crash does not mask
	// a cut, and the two heal on their own schedules — here power comes
	// back at 2.0 while the fabric stays severed until 3.0, the gray
	// period where a node is alive but unreachable.
	in := NewInjector(Plan{
		Crashes: []Crash{
			{Node: 0, At: 1.0, RecoverAt: 2.0},
			{Node: 1, At: 1.0, RecoverAt: 2.0},
		},
		Partitions: []PartitionWindow{
			{GroupA: []int{0, 1}, Start: 1.5, HealAt: 3.0},
		},
	})
	if !in.NodeDown(0, 1.5) || !in.NodeDown(1, 1.5) {
		t.Fatal("rack power event did not take both members down")
	}
	if !in.LinkCut(1.5, 0, 2) || !in.LinkCut(1.5, 2, 1) {
		t.Error("partition window masked by the concurrent crash")
	}
	if in.LinkCut(1.5, 0, 1) {
		t.Error("in-rack leg severed by a bipartition both ends are inside")
	}
	// Power restored, fabric still cut: alive but unreachable.
	if in.NodeDown(0, 2.5) {
		t.Error("node still down after RecoverAt")
	}
	if !in.LinkCut(2.5, 0, 2) {
		t.Error("cut did not outlive the crash recovery")
	}
	// Heal ordering: recovery at 2.0, link clear at 3.0.
	if at, ok := in.NodeRecoverAt(0, 1.8); !ok || at != 2.0 {
		t.Errorf("NodeRecoverAt(0, 1.8) = (%g, %v), want (2, true)", at, ok)
	}
	if at, ok := in.LinkClearAt(1.8, 0, 2); !ok || at != 3.0 {
		t.Errorf("LinkClearAt(1.8, 0, 2) = (%g, %v), want (3, true)", at, ok)
	}
	if in.NodeDown(0, 3.0) || in.LinkCut(3.0, 0, 2) {
		t.Error("not fully healed at 3.0")
	}
}
