package fault

import (
	"fmt"
	"math"
	"sort"
)

// StormSpec parameterises a sustained, seeded chaos process: instead of
// scripting individual one-shot events, callers give mean-time-to-failure
// and mean-time-to-repair targets per failure class and GenerateStorm
// draws a concrete schedule from them. The same spec always yields the
// same Plan, so a storm run is as reproducible as a scripted one.
//
// Every event begins inside [Start, End) and is clamped to heal by End:
// the storm has a definite end, after which the fleet must recover. That
// clamp is what makes the post-heal recovery phase of an experiment
// well-defined (and keeps open-loop runs from hanging on a job frozen
// inside a never-healing outage).
type StormSpec struct {
	// Seed selects the deterministic event stream. Distinct seeds give
	// independent storms; the stream is independent of the Plan seed used
	// for per-message fates.
	Seed int64
	// Nodes is the fleet size; node-scoped draws cover [0, Nodes).
	Nodes int
	// Start/End bound the storm window in simulated seconds.
	Start, End float64

	// NodeMTTF/NodeMTTR drive fail-stop node churn: each node fails with
	// exponential inter-failure times of mean NodeMTTF and repairs with
	// mean NodeMTTR. Zero disables the class.
	NodeMTTF, NodeMTTR float64

	// GrayCPUMTTF/GrayCPUMTTR drive gray CPU windows; each episode draws a
	// slowdown factor uniformly in [2, GrayCPUFactor] (GrayCPUFactor < 2
	// pins the factor at 2).
	GrayCPUMTTF, GrayCPUMTTR float64
	GrayCPUFactor            float64

	// GrayNICMTTF/GrayNICMTTR drive gray NIC windows: while active, every
	// leg into and out of the node sees GrayNICDrop loss and GrayNICJitter
	// extra latency — lossy and slow, but not severed, so SWIM alone
	// cannot convict the node.
	GrayNICMTTF, GrayNICMTTR   float64
	GrayNICDrop, GrayNICJitter float64

	// Racks scopes the correlated failure classes; RackOf maps a node to
	// its rack. Both rack classes are disabled when Racks == 0 or RackOf
	// is nil.
	Racks  int
	RackOf func(node int) int

	// RackMTTF/RackMTTR drive whole-rack power events: every node in the
	// rack crashes at the same instant and recovers at the same instant.
	RackMTTF, RackMTTR float64

	// UplinkMTTF/UplinkMTTR drive ToR/uplink death: the legs returned by
	// UplinkLegs(rack) are severed for the episode, isolating the rack
	// from the rest of the fabric while in-rack traffic keeps flowing.
	UplinkMTTF, UplinkMTTR float64
	UplinkLegs             func(rack int) [][2]int
}

// Validate rejects specs whose draws would be meaningless.
func (s *StormSpec) Validate() error {
	if s.Nodes <= 0 {
		return fmt.Errorf("fault: storm needs Nodes > 0, got %d", s.Nodes)
	}
	if !(s.End > s.Start) {
		return fmt.Errorf("fault: storm window [%g, %g) is empty", s.Start, s.End)
	}
	for _, c := range []struct {
		name       string
		mttf, mttr float64
	}{
		{"node", s.NodeMTTF, s.NodeMTTR},
		{"gray-cpu", s.GrayCPUMTTF, s.GrayCPUMTTR},
		{"gray-nic", s.GrayNICMTTF, s.GrayNICMTTR},
		{"rack", s.RackMTTF, s.RackMTTR},
		{"uplink", s.UplinkMTTF, s.UplinkMTTR},
	} {
		if c.mttf < 0 || c.mttr < 0 {
			return fmt.Errorf("fault: storm %s MTTF/MTTR must be >= 0", c.name)
		}
		if (c.mttf == 0) != (c.mttr == 0) {
			return fmt.Errorf("fault: storm %s MTTF and MTTR must be set together", c.name)
		}
	}
	if (s.RackMTTF > 0 || s.UplinkMTTF > 0) && (s.Racks <= 0 || s.RackOf == nil) {
		return fmt.Errorf("fault: rack-scoped storm classes need Racks and RackOf")
	}
	if s.UplinkMTTF > 0 && s.UplinkLegs == nil {
		return fmt.Errorf("fault: uplink storm class needs UplinkLegs")
	}
	return nil
}

// stormRand is a keyed splitmix64 stream: one stream per (seed, class,
// scope), stepped by draw index. Identical to the Injector's rand01
// construction so the whole package shares one PRNG idiom.
type stormRand struct {
	seed  uint64
	class uint64
	scope uint64
	n     uint64
}

func (r *stormRand) next() float64 {
	r.n++
	x := r.seed*0x9e3779b97f4a7c15 + r.class*0xbf58476d1ce4e5b9 +
		r.scope*0x94d049bb133111eb + r.n*0xd6e8feb86659fd93
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// exp draws an exponential variate with the given mean.
func (r *stormRand) exp(mean float64) float64 {
	u := r.next()
	// 1-u is in (0, 1]; ln of it is finite.
	return -mean * math.Log(1-u)
}

// episodes walks one failure class over one scope: alternating exponential
// up-times (mean mttf) and down-times (mean mttr) across [start, end),
// emitting (at, healAt) pairs clamped to heal by end.
func episodes(r *stormRand, start, end, mttf, mttr float64, emit func(at, healAt float64)) {
	t := start + r.exp(mttf)
	for t < end {
		heal := t + r.exp(mttr)
		if heal > end {
			heal = end
		}
		emit(t, heal)
		t = heal + r.exp(mttf)
	}
}

// GenerateStorm draws a concrete fault Plan from the spec. The returned
// plan carries only the storm's events — compose it with baseline message
// fates by filling in Seed/DropProb/etc on the result before injecting.
func GenerateStorm(spec StormSpec) (Plan, error) {
	if err := spec.Validate(); err != nil {
		return Plan{}, err
	}
	var plan Plan
	seed := uint64(spec.Seed)

	// Per-node fail-stop churn.
	if spec.NodeMTTF > 0 {
		for n := 0; n < spec.Nodes; n++ {
			r := &stormRand{seed: seed, class: 1, scope: uint64(n)}
			episodes(r, spec.Start, spec.End, spec.NodeMTTF, spec.NodeMTTR, func(at, heal float64) {
				plan.Crashes = append(plan.Crashes, Crash{Node: n, At: at, RecoverAt: heal})
			})
		}
	}
	// Per-node gray CPU windows.
	if spec.GrayCPUMTTF > 0 {
		for n := 0; n < spec.Nodes; n++ {
			r := &stormRand{seed: seed, class: 2, scope: uint64(n)}
			episodes(r, spec.Start, spec.End, spec.GrayCPUMTTF, spec.GrayCPUMTTR, func(at, heal float64) {
				f := 2.0
				if spec.GrayCPUFactor > 2 {
					f = 2 + (spec.GrayCPUFactor-2)*r.next()
				}
				plan.Slowdowns = append(plan.Slowdowns, Slowdown{Node: n, Start: at, End: heal, Factor: f})
			})
		}
	}
	// Per-node gray NIC windows: lossy/high-jitter in both directions.
	if spec.GrayNICMTTF > 0 {
		for n := 0; n < spec.Nodes; n++ {
			r := &stormRand{seed: seed, class: 3, scope: uint64(n)}
			episodes(r, spec.Start, spec.End, spec.GrayNICMTTF, spec.GrayNICMTTR, func(at, heal float64) {
				for _, w := range []Window{
					{From: n, To: -1, Start: at, End: heal, DropProb: spec.GrayNICDrop, JitterSec: spec.GrayNICJitter},
					{From: -1, To: n, Start: at, End: heal, DropProb: spec.GrayNICDrop, JitterSec: spec.GrayNICJitter},
				} {
					plan.Windows = append(plan.Windows, w)
				}
			})
		}
	}
	// Correlated rack classes.
	if spec.RackMTTF > 0 || spec.UplinkMTTF > 0 {
		// Invert RackOf once so a rack power event can crash every member.
		members := make([][]int, spec.Racks)
		for n := 0; n < spec.Nodes; n++ {
			rk := spec.RackOf(n)
			if rk < 0 || rk >= spec.Racks {
				return Plan{}, fmt.Errorf("fault: RackOf(%d) = %d out of [0, %d)", n, rk, spec.Racks)
			}
			members[rk] = append(members[rk], n)
		}
		if spec.RackMTTF > 0 {
			for rk := 0; rk < spec.Racks; rk++ {
				r := &stormRand{seed: seed, class: 4, scope: uint64(rk)}
				episodes(r, spec.Start, spec.End, spec.RackMTTF, spec.RackMTTR, func(at, heal float64) {
					for _, n := range members[rk] {
						plan.Crashes = append(plan.Crashes, Crash{Node: n, At: at, RecoverAt: heal})
					}
				})
			}
		}
		if spec.UplinkMTTF > 0 {
			for rk := 0; rk < spec.Racks; rk++ {
				r := &stormRand{seed: seed, class: 5, scope: uint64(rk)}
				legs := spec.UplinkLegs(rk)
				episodes(r, spec.Start, spec.End, spec.UplinkMTTF, spec.UplinkMTTR, func(at, heal float64) {
					plan.Partitions = append(plan.Partitions, PartitionWindow{
						Legs:   append([][2]int(nil), legs...),
						Start:  at,
						HealAt: heal,
					})
				})
			}
		}
	}
	plan.Crashes = mergeCrashes(plan.Crashes)
	return plan, nil
}

// mergeCrashes folds overlapping finite outages on the same node into one
// interval. Node churn can land inside a rack power event; without the
// merge the cluster would see nested down/down/up/up transitions and
// recover the node while the outer outage still holds it down.
func mergeCrashes(crashes []Crash) []Crash {
	sort.Slice(crashes, func(i, j int) bool {
		if crashes[i].Node != crashes[j].Node {
			return crashes[i].Node < crashes[j].Node
		}
		return crashes[i].At < crashes[j].At
	})
	out := crashes[:0]
	for _, c := range crashes {
		if n := len(out); n > 0 && out[n-1].Node == c.Node && c.At <= out[n-1].RecoverAt {
			if c.RecoverAt > out[n-1].RecoverAt {
				out[n-1].RecoverAt = c.RecoverAt
			}
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Node < out[j].Node
	})
	return out
}
