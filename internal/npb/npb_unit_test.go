package npb

import (
	"strings"
	"testing"

	"heterodc/internal/minic"
)

func TestSourceGeneratesForAllBenchClassCombos(t *testing.T) {
	for _, b := range All {
		for _, c := range []Class{ClassS, ClassA, ClassB, ClassC} {
			src, err := Source(b, c, 4)
			if err != nil {
				t.Fatalf("%s.%s: %v", b, c, err)
			}
			// Every workload must parse (codegen exercised by Build tests).
			if _, err := minic.Parse(src.Name, src.Code); err != nil {
				t.Errorf("%s.%s: parse: %v", b, c, err)
			}
			if !strings.Contains(src.Code, "long main(void)") {
				t.Errorf("%s.%s: no main", b, c)
			}
		}
	}
}

func TestSourceRejectsUnknown(t *testing.T) {
	if _, err := Source("nope", ClassA, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Source(CG, Class('Z'), 1); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestSourceClampsThreads(t *testing.T) {
	a, err := Source(EP, ClassS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Code, "NTHREADS = 1") {
		t.Error("threads not clamped up to 1")
	}
	b, err := Source(EP, ClassS, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.Code, "NTHREADS = 16") {
		t.Error("threads not clamped down to 16")
	}
}

func TestMigrationFunc(t *testing.T) {
	if MigrationFunc(IS) != "full_verify" {
		t.Error("IS migration function")
	}
	if MigrationFunc(CG) != "main" {
		t.Error("default migration function")
	}
}

func TestBuildCacheReuses(t *testing.T) {
	a, err := Build(EP, ClassS, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(EP, ClassS, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache did not reuse the image")
	}
	c, err := Build(EP, ClassS, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("distinct thread counts shared an image")
	}
}

func TestClassScalingMonotone(t *testing.T) {
	// Problem sizes must grow with the class for every benchmark that
	// parameterises arrays (spot-check via generated source lengths of the
	// embedded constants).
	for _, b := range []Bench{EP, IS, CG, FT} {
		sa, _ := Source(b, ClassA, 1)
		sc, _ := Source(b, ClassC, 1)
		if sa.Code == sc.Code {
			t.Errorf("%s: classes A and C generate identical programs", b)
		}
	}
}
