package npb

import "fmt"

// bzip2Source generates the bzip2smp-like workload: block-parallel
// compression of a text-like input with run-length encoding, move-to-front
// transform and a zero-run/entropy coding stage, verified by full
// decompression of every block — byte-oriented, branch-heavy code like the
// original (which this reproduction cannot link, so the pipeline is
// re-implemented; the BWT stage is replaced by MTF-on-raw which preserves
// the byte-granular access pattern).
func bzip2Source(ci, threads int) string {
	input := []int64{8 << 10, 48 << 10, 128 << 10, 384 << 10}[ci]
	block := int64(16 << 10)
	nblocks := (input + block - 1) / block
	return fmt.Sprintf(`
long NTHREADS = %d;
long INSIZE = %d;
long BLOCK = %d;
long NBLOCKS = %d;

char input[%d];
char comp[%d];      // per-block compressed output (2x block each)
char decomp[%d];    // decompression check area (block per thread)
long compsize[%d];  // per block
long blockok[%d];
long next_block = 0;

// Deterministic text-like input: words sampled from a table.
char words[64] = {'t','h','e',' ','q','u','i','c','k',' ','b','r','o','w','n',' ',
                  'f','o','x',' ','j','u','m','p','s',' ','o','v','e','r',' ','a',
                  ' ','l','a','z','y',' ','d','o','g','s',' ','w','h','i','l','e',
                  ' ','p','a','c','k','i','n','g',' ','b','o','x','e','s','.',' '};

void gen_input(void) {
	npb_srand(112358132);
	long pos = 0;
	while (pos < INSIZE) {
		long start = npb_rand() %% 48;
		long len = 4 + npb_rand() %% 12;
		for (long i = 0; i < len && pos < INSIZE; i++) {
			input[pos] = words[(start + i) %% 64];
			pos++;
		}
		// Occasional runs to give RLE something to do.
		if (npb_rand() %% 7 == 0) {
			long runlen = 3 + npb_rand() %% 20;
			long ch = 'a' + npb_rand() %% 26;
			for (long i = 0; i < runlen && pos < INSIZE; i++) {
				input[pos] = ch;
				pos++;
			}
		}
	}
}

// rle_encode: classic bzip2 stage-1 RLE: runs of 4+ become 4 bytes plus a
// count byte. Returns output length.
long rle_encode(char *src, long n, char *dst) {
	long o = 0;
	long i = 0;
	while (i < n) {
		long c = src[i];
		long run = 1;
		while (i + run < n && src[i + run] == c && run < 255 + 4) run++;
		if (run >= 4) {
			dst[o] = c; dst[o+1] = c; dst[o+2] = c; dst[o+3] = c;
			dst[o+4] = run - 4;
			o += 5;
		} else {
			for (long r = 0; r < run; r++) { dst[o] = c; o++; }
		}
		i += run;
	}
	return o;
}

long rle_decode(char *src, long n, char *dst) {
	long o = 0;
	long i = 0;
	while (i < n) {
		long c = src[i];
		if (i + 3 < n && src[i+1] == c && src[i+2] == c && src[i+3] == c) {
			long extra = src[i+4];
			for (long r = 0; r < 4 + extra; r++) { dst[o] = c; o++; }
			i += 5;
		} else {
			dst[o] = c; o++; i++;
		}
	}
	return o;
}

// mtf transforms bytes to move-to-front indices in place over dst.
void mtf_encode(char *buf, long n) {
	char table[256];
	for (long i = 0; i < 256; i++) table[i] = i;
	for (long i = 0; i < n; i++) {
		long c = buf[i];
		long j = 0;
		while (table[j] != c) j++;
		buf[i] = j;
		while (j > 0) { table[j] = table[j - 1]; j--; }
		table[0] = c;
	}
}

void mtf_decode(char *buf, long n) {
	char table[256];
	for (long i = 0; i < 256; i++) table[i] = i;
	for (long i = 0; i < n; i++) {
		long j = buf[i];
		long c = table[j];
		buf[i] = c;
		while (j > 0) { table[j] = table[j - 1]; j--; }
		table[0] = c;
	}
}

// entropy_cost estimates the coded size (in bits) from byte frequencies,
// standing in for the Huffman stage.
long entropy_cost(char *buf, long n) {
	long freq[256];
	for (long i = 0; i < 256; i++) freq[i] = 0;
	for (long i = 0; i < n; i++) freq[buf[i]]++;
	long bits = 0;
	for (long s = 0; s < 256; s++) {
		if (freq[s] == 0) continue;
		// code length ~ ceil(log2(n / freq)) via shifts
		long ratio = n / freq[s];
		long len = 1;
		while (ratio > 1) { ratio = ratio / 2; len++; }
		if (len > 20) len = 20;
		bits += freq[s] * len;
	}
	return bits;
}

long bz_worker(long tid) {
	char stage[%d];   // RLE output (block * 2)
	while (1) {
		long b = __atomic_add(&next_block, 1);
		if (b >= NBLOCKS) break;
		long off = b * BLOCK;
		long n = BLOCK;
		if (off + n > INSIZE) n = INSIZE - off;

		long rn = rle_encode(&input[off], n, stage);
		mtf_encode(stage, rn);
		long bits = entropy_cost(stage, rn);
		compsize[b] = bits / 8 + 1;
		// Keep the transformed block for verification.
		for (long i = 0; i < rn; i++) comp[b * BLOCK * 2 + i] = stage[i];

		// Verify: invert MTF + RLE into the per-thread scratch area.
		char *chk = &decomp[tid * BLOCK];
		mtf_decode(&comp[b * BLOCK * 2], rn);
		long dn = rle_decode(&comp[b * BLOCK * 2], rn, chk);
		long ok = 1;
		if (dn != n) ok = 0;
		for (long i = 0; i < n && ok == 1; i++) {
			if (chk[i] != input[off + i]) ok = 0;
		}
		blockok[b] = ok;
	}
	return 0;
}

long main(void) {
	gen_input();
	pomp_run(bz_worker, NTHREADS);
	long total = 0;
	long allok = 1;
	for (long b = 0; b < NBLOCKS; b++) {
		total += compsize[b];
		if (blockok[b] != 1) allok = 0;
	}
	print_kv("BZ insize=", INSIZE);
	print_kv("BZ outsize=", total);
	if (allok == 1 && total > 0 && total < INSIZE) { print_str("BZ VERIFY OK\n"); return 0; }
	print_str("BZ VERIFY FAILED\n");
	return 1;
}
`, threads, input, block, nblocks,
		input, nblocks*block*2, int64(threads)*block, nblocks, nblocks,
		block*2)
}
