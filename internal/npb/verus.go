package npb

import "fmt"

// verusSource generates the Verus-like model checker: exhaustive
// breadth-first exploration of a mutual-exclusion protocol's state space
// with an open-addressing visited set and an explicit frontier queue —
// pointer-chasing, hash-probing, branch-dense integer code like the
// original tool (which is closed-source; the protocol is a ticket-lock
// variant whose state space scales with the class).
func verusSource(ci, threads int) string {
	procs := []int64{2, 3, 3, 4}[ci]
	extraBits := []int64{0, 2, 4, 5}[ci]
	hashSize := []int64{1 << 12, 1 << 15, 1 << 17, 1 << 19}[ci]
	queueSize := hashSize
	maxStates := []int64{4000, 20000, 60000, 150000}[ci]
	return fmt.Sprintf(`
long NPROCS = %d;
long EXTRABITS = %d;
long HSIZE = %d;
long QSIZE = %d;
long MAXSTATES = %d;

// State packing (per process 4 bits of pc, then ticket counters and a
// scratch register widened by EXTRABITS):
//   pc[p]: 0=idle 1=requesting 2=waiting 3=critical 4=exiting
long hset[%d];
long queue[%d];
long qhead = 0;
long qtail = 0;
long explored = 0;
long violations = 0;
long dropped = 0;

long get_pc(long s, long p) { return (s >> (p * 4)) & 15; }
long set_pc(long s, long p, long v) {
	long mask = 15 << (p * 4);
	return (s & ~mask) | (v << (p * 4));
}
long get_next(long s) { return (s >> 32) & 7; }
long set_next(long s, long v) { return (s & ~(7 << 32)) | ((v & 7) << 32); }
long get_serving(long s) { return (s >> 40) & 7; }
long set_serving(long s, long v) { return (s & ~(7 << 40)) | ((v & 7) << 40); }
long get_ticket(long s, long p) { return (s >> (16 + p * 4)) & 15; }
long set_ticket(long s, long p, long v) {
	long mask = 15 << (16 + p * 4);
	return (s & ~mask) | ((v & 15) << (16 + p * 4));
}
long get_extra(long s) { return (s >> 48) & ((1 << EXTRABITS) - 1); }
long set_extra(long s, long v) {
	long mask = ((1 << EXTRABITS) - 1) << 48;
	if (EXTRABITS == 0) return s;
	return (s & ~mask) | ((v & ((1 << EXTRABITS) - 1)) << 48);
}

long hash_state(long s) {
	long h = s * 2654435761;
	h = h ^ (h >> 29);
	h = h * 1099511628211;
	h = h ^ (h >> 32);
	h = h & 9223372036854775807;
	return h %% HSIZE;
}

// visit returns 1 if s is new (and records it).
long visit(long s) {
	long h = hash_state(s);
	long probes = 0;
	while (probes < HSIZE) {
		long cur = hset[h];
		if (cur == s + 1) return 0;   // stored with +1 so 0 means empty
		if (cur == 0) {
			hset[h] = s + 1;
			return 1;
		}
		h = (h + 1) %% HSIZE;
		probes++;
	}
	dropped++;
	return 0;
}

void push_state(long s) {
	if (visit(s) == 1) {
		if (qtail - qhead < QSIZE) {
			queue[qtail %% QSIZE] = s;
			qtail++;
		} else {
			dropped++;
		}
	}
}

// step enumerates successors of s for process p (ticket lock protocol).
void successors(long s, long p) {
	long pc = get_pc(s, p);
	if (pc == 0) {
		// idle -> requesting (may also stay idle: modelled by other procs)
		push_state(set_pc(s, p, 1));
		// Environment nondeterminism on the extra bits.
		if (EXTRABITS > 0) {
			push_state(set_extra(set_pc(s, p, 1), get_extra(s) + 1));
		}
	}
	if (pc == 1) {
		// take a ticket
		long t = get_next(s);
		long s2 = set_ticket(s, p, t);
		s2 = set_next(s2, t + 1);
		push_state(set_pc(s2, p, 2));
	}
	if (pc == 2) {
		// wait for serving == my ticket
		if (get_serving(s) == get_ticket(s, p)) {
			push_state(set_pc(s, p, 3));
		}
	}
	if (pc == 3) {
		// critical -> exiting
		push_state(set_pc(s, p, 4));
	}
	if (pc == 4) {
		// release: serving++, and clear the stale ticket so equivalent
		// states collapse (otherwise the space explodes).
		long s2 = set_serving(s, get_serving(s) + 1);
		s2 = set_ticket(s2, p, 0);
		push_state(set_pc(s2, p, 0));
	}
}

long check_invariant(long s) {
	long crit = 0;
	for (long p = 0; p < NPROCS; p++) {
		if (get_pc(s, p) == 3) crit++;
	}
	if (crit > 1) return 0;
	return 1;
}

long main(void) {
	long init = 0;
	push_state(init);
	while (qhead < qtail && explored < MAXSTATES) {
		long s = queue[qhead %% QSIZE];
		qhead++;
		explored++;
		if (check_invariant(s) == 0) violations++;
		for (long p = 0; p < NPROCS; p++) {
			successors(s, p);
		}
	}
	print_kv("VERUS states=", explored);
	print_kv("VERUS dropped=", dropped);
	if (violations == 0 && explored > 10) { print_str("VERUS VERIFY OK\n"); return 0; }
	print_kv("VERUS violations=", violations);
	print_str("VERUS VERIFY FAILED\n");
	return 1;
}
`, procs, extraBits, hashSize, queueSize, maxStates, hashSize, queueSize)
}
