package npb

import "fmt"

// cgSource generates the CG kernel: conjugate-gradient iterations on a
// randomly populated, diagonally dominant sparse matrix in CSR-like form,
// with the eigenvalue-estimate outer loop of the real benchmark. Memory
// behaviour (indirect indexed loads) and the reduction/barrier structure
// match the original; the matrix generator is a simplified deterministic
// makea (documented substitution).
func cgSource(ci, threads int) string {
	n := []int64{128, 384, 768, 1536}[ci]
	nonzer := int64(8)
	outer := []int64{2, 4, 4, 4}[ci]
	inner := []int64{5, 10, 10, 10}[ci]
	nz := n * nonzer
	return fmt.Sprintf(`
long NTHREADS = %d;
long N = %d;
long NONZER = %d;
long OUTER = %d;
long INNER = %d;

long colidx[%d];
double aval[%d];
double xv[%d];
double zv[%d];
double pv[%d];
double qv[%d];
double rv[%d];
double partials[%d];   // per-thread reduction slots
double rho_g = 0.0;
double alpha_g = 0.0;
double beta_g = 0.0;
double rnorm_g = 0.0;
double zeta_g = 0.0;

void makea(void) {
	npb_srand(271828183);
	for (long i = 0; i < N; i++) {
		for (long j = 0; j < NONZER; j++) {
			long idx = i * NONZER + j;
			if (j == 0) {
				colidx[idx] = i;                 // strong diagonal
				aval[idx] = (double)NONZER + 2.0;
			} else {
				colidx[idx] = npb_rand() %% N;
				aval[idx] = npb_rand01() - 0.5;
			}
		}
		xv[i] = 1.0;
	}
}

// reduce sums the per-thread partial slots (thread 0 only, between
// barriers).
double reduce(void) {
	double s = 0.0;
	for (long t = 0; t < NTHREADS; t++) s += partials[t];
	return s;
}

long cg_worker(long tid) {
	long sense = 0;
	long lo = N * tid / NTHREADS;
	long hi = N * (tid + 1) / NTHREADS;

	for (long it = 0; it < OUTER; it++) {
		// z = 0, r = x, p = r; rho = r.r
		double part = 0.0;
		for (long i = lo; i < hi; i++) {
			zv[i] = 0.0;
			rv[i] = xv[i];
			pv[i] = rv[i];
			part += rv[i] * rv[i];
		}
		partials[tid] = part;
		sense = barrier_wait(sense);
		if (tid == 0) rho_g = reduce();
		sense = barrier_wait(sense);

		for (long cgit = 0; cgit < INNER; cgit++) {
			// q = A p
			part = 0.0;
			for (long i = lo; i < hi; i++) {
				double s = 0.0;
				for (long j = 0; j < NONZER; j++) {
					s += aval[i * NONZER + j] * pv[colidx[i * NONZER + j]];
				}
				qv[i] = s;
				part += pv[i] * s;
			}
			partials[tid] = part;
			sense = barrier_wait(sense);
			if (tid == 0) alpha_g = rho_g / reduce();
			sense = barrier_wait(sense);

			// z += alpha p ; r -= alpha q ; rho' = r.r
			part = 0.0;
			for (long i = lo; i < hi; i++) {
				zv[i] += alpha_g * pv[i];
				rv[i] -= alpha_g * qv[i];
				part += rv[i] * rv[i];
			}
			partials[tid] = part;
			sense = barrier_wait(sense);
			if (tid == 0) {
				double rho2 = reduce();
				beta_g = rho2 / rho_g;
				rho_g = rho2;
			}
			sense = barrier_wait(sense);

			// p = r + beta p
			for (long i = lo; i < hi; i++) {
				pv[i] = rv[i] + beta_g * pv[i];
			}
			sense = barrier_wait(sense);
		}

		// ||r|| and zeta-style estimate; x = z / ||z||
		part = 0.0;
		double znorm = 0.0;
		for (long i = lo; i < hi; i++) {
			part += rv[i] * rv[i];
			znorm += zv[i] * zv[i];
		}
		partials[tid] = part;
		sense = barrier_wait(sense);
		if (tid == 0) rnorm_g = sqrt(reduce());
		sense = barrier_wait(sense);

		partials[tid] = znorm;
		sense = barrier_wait(sense);
		if (tid == 0) {
			double zn = sqrt(reduce());
			zeta_g = 10.0 + 1.0 / zn;
			rho_g = zn;
		}
		sense = barrier_wait(sense);
		for (long i = lo; i < hi; i++) {
			xv[i] = zv[i] / rho_g;
		}
		sense = barrier_wait(sense);
	}
	return 0;
}

long main(void) {
	makea();
	pomp_run(cg_worker, NTHREADS);
	print_checksum("CG zeta=", zeta_g);
	print_checksum("CG rnorm=", rnorm_g);
	// zeta = 10 + 1/||z||; the residual must have shrunk well below the
	// initial unit norm for the solve to be meaningful.
	if (zeta_g > 10.0 && zeta_g < 1000.0 && rnorm_g < 0.1) { print_str("CG VERIFY OK\n"); return 0; }
	print_str("CG VERIFY FAILED\n");
	return 1;
}
`, threads, n, nonzer, outer, inner,
		nz, nz, n, n, n, n, n, threads)
}
