package npb

import "fmt"

// epSource generates the EP (embarrassingly parallel) kernel: batches of
// pseudo-random deviates generated independently per thread, transformed to
// approximately Gaussian pairs and binned into ten annuli, with global sums
// reduced at the end. The real EP uses the Marsaglia polar method; the
// simulated ISAs have no log instruction, so Gaussians come from a
// sum-of-uniforms transform with identical arithmetic character
// (documented substitution).
func epSource(ci, threads int) string {
	pairs := []int64{1 << 12, 1 << 15, 1 << 17, 1 << 19}[ci]
	return fmt.Sprintf(`
long NTHREADS = %d;
long NPAIRS = %d;

long qbins[%d];     // NTHREADS * 10 annulus counters
double tsx[%d];
double tsy[%d];

long ep_worker(long tid) {
	long state = npb_stream_seed(tid);
	long lo = NPAIRS * tid / NTHREADS;
	long hi = NPAIRS * (tid + 1) / NTHREADS;
	double sx = 0.0;
	double sy = 0.0;
	long counts[10];
	for (long i = 0; i < 10; i++) counts[i] = 0;
	double s3 = 1.7320508075688772; // sqrt(3): unit variance for CLT(4)
	for (long i = lo; i < hi; i++) {
		double x = (npb_rand01_from(&state) + npb_rand01_from(&state) +
		            npb_rand01_from(&state) + npb_rand01_from(&state) - 2.0) * s3;
		double y = (npb_rand01_from(&state) + npb_rand01_from(&state) +
		            npb_rand01_from(&state) + npb_rand01_from(&state) - 2.0) * s3;
		double ax = fabs(x);
		double ay = fabs(y);
		double m = fmax(ax, ay);
		long bin = (long)m;
		if (bin > 9) bin = 9;
		counts[bin]++;
		sx += x;
		sy += y;
	}
	for (long i = 0; i < 10; i++) qbins[tid * 10 + i] = counts[i];
	tsx[tid] = sx;
	tsy[tid] = sy;
	return 0;
}

long main(void) {
	pomp_run(ep_worker, NTHREADS);
	double sx = 0.0;
	double sy = 0.0;
	long total = 0;
	for (long t = 0; t < NTHREADS; t++) {
		sx += tsx[t];
		sy += tsy[t];
	}
	print_str("EP counts:");
	for (long i = 0; i < 10; i++) {
		long c = 0;
		for (long t = 0; t < NTHREADS; t++) c += qbins[t * 10 + i];
		total += c;
		print_char(' ');
		print_i64(c);
	}
	println();
	print_kv("EP total=", total);
	print_checksum("EP sx=", sx);
	print_checksum("EP sy=", sy);
	if (total != NPAIRS) { print_str("EP VERIFY FAILED\n"); return 1; }
	print_str("EP VERIFY OK\n");
	return 0;
}
`, threads, pairs, threads*10, threads, threads)
}
