package npb

import "fmt"

// spSource generates the SP application: ADI (alternating direction
// implicit) sweeps over a 3-D grid, factoring each direction into
// independent scalar tridiagonal line solves (Thomas algorithm). The real
// SP solves scalar pentadiagonal systems; the tridiagonal factorisation
// keeps the same line-sweep structure, memory strides and barrier pattern
// at reduced arithmetic (documented substitution).
func spSource(ci, threads int) string {
	n := []int64{8, 14, 18, 24}[ci]
	iters := []int64{2, 4, 5, 6}[ci]
	n3 := n * n * n
	return fmt.Sprintf(`
long NTHREADS = %d;
long N = %d;
long NITER = %d;

double u[%d];
double rhs[%d];
double unew[%d];

long idx3(long i, long j, long k) { return (i * N + j) * N + k; }

void sp_init(void) {
	npb_srand(602214076);
	for (long i = 0; i < N * N * N; i++) {
		u[i] = npb_rand01();
		rhs[i] = 0.0;
		unew[i] = 0.0;
	}
}

// solve_line runs the Thomas algorithm on the n points gathered in d
// (right-hand side), with constant coefficients a (sub), b (diag), c
// (super); the solution overwrites d.
void solve_line(double *d, long n, double a, double b, double c) {
	double cp[64];
	cp[0] = c / b;
	d[0] = d[0] / b;
	for (long i = 1; i < n; i++) {
		double m = b - a * cp[i - 1];
		cp[i] = c / m;
		d[i] = (d[i] - a * d[i - 1]) / m;
	}
	for (long i = n - 2; i >= 0; i--) {
		d[i] = d[i] - cp[i] * d[i + 1];
	}
}

long sp_worker(long tid) {
	long sense = 0;
	double alpha = 0.08;
	double a = 0.0 - alpha;
	double b = 1.0 + 2.0 * alpha;
	double line[64];

	for (long it = 0; it < NITER; it++) {
		// RHS: 7-point stencil relaxation source.
		long lo = N * tid / NTHREADS;
		long hi = N * (tid + 1) / NTHREADS;
		for (long i = lo; i < hi; i++) {
			for (long j = 0; j < N; j++) {
				for (long k = 0; k < N; k++) {
					double c6 = 0.0;
					if (i > 0) c6 += u[idx3(i - 1, j, k)];
					if (i < N - 1) c6 += u[idx3(i + 1, j, k)];
					if (j > 0) c6 += u[idx3(i, j - 1, k)];
					if (j < N - 1) c6 += u[idx3(i, j + 1, k)];
					if (k > 0) c6 += u[idx3(i, j, k - 1)];
					if (k < N - 1) c6 += u[idx3(i, j, k + 1)];
					rhs[idx3(i, j, k)] = u[idx3(i, j, k)] + alpha * (c6 - 6.0 * u[idx3(i, j, k)]);
				}
			}
		}
		sense = barrier_wait(sense);

		// X sweep: lines along i for each (j,k); partition j.
		for (long j = lo; j < hi; j++) {
			for (long k = 0; k < N; k++) {
				for (long i = 0; i < N; i++) line[i] = rhs[idx3(i, j, k)];
				solve_line(line, N, a, b, a);
				for (long i = 0; i < N; i++) unew[idx3(i, j, k)] = line[i];
			}
		}
		sense = barrier_wait(sense);

		// Y sweep: lines along j for each (i,k); partition i.
		for (long i = lo; i < hi; i++) {
			for (long k = 0; k < N; k++) {
				for (long j = 0; j < N; j++) line[j] = unew[idx3(i, j, k)];
				solve_line(line, N, a, b, a);
				for (long j = 0; j < N; j++) rhs[idx3(i, j, k)] = line[j];
			}
		}
		sense = barrier_wait(sense);

		// Z sweep: lines along k; partition i; result back into u.
		for (long i = lo; i < hi; i++) {
			for (long j = 0; j < N; j++) {
				for (long k = 0; k < N; k++) line[k] = rhs[idx3(i, j, k)];
				solve_line(line, N, a, b, a);
				for (long k = 0; k < N; k++) u[idx3(i, j, k)] = line[k];
			}
		}
		sense = barrier_wait(sense);
	}
	return 0;
}

long main(void) {
	sp_init();
	pomp_run(sp_worker, NTHREADS);
	double chk = 0.0;
	for (long i = 0; i < N * N * N; i++) chk += u[i] * (double)(i %% 17 + 1);
	print_checksum("SP cksum=", chk);
	if (chk > 0.0) { print_str("SP VERIFY OK\n"); return 0; }
	print_str("SP VERIFY FAILED\n");
	return 1;
}
`, threads, n, iters, n3, n3, n3)
}
