// Package npb provides the evaluation workloads: mini-C re-implementations
// of the NAS Parallel Benchmarks kernels the paper uses (CG, IS, EP, FT,
// BT, SP), plus the bzip2smp-like compressor and the Verus-like model
// checker that round out its job mix.
//
// Problem classes A/B/C are preserved as a scaling knob but the absolute
// sizes are reduced so that full-system simulation is laptop-scale
// (documented in DESIGN.md). Each benchmark prints a deterministic
// checksum, which the correctness tests compare across ISAs and across
// migration schedules.
package npb

import (
	"fmt"
	"sync"

	"heterodc/internal/core"
	"heterodc/internal/link"
	"heterodc/internal/minic"
)

// Bench names a workload.
type Bench string

// The workloads of the paper's evaluation.
const (
	EP    Bench = "ep"
	IS    Bench = "is"
	CG    Bench = "cg"
	FT    Bench = "ft"
	BT    Bench = "bt"
	SP    Bench = "sp"
	MG    Bench = "mg"
	Bzip2 Bench = "bzip2smp"
	Verus Bench = "verus"
)

// NPBKernels lists the NAS kernels (excluding the two applications).
var NPBKernels = []Bench{EP, IS, CG, FT, BT, SP, MG}

// All lists every workload.
var All = []Bench{EP, IS, CG, FT, BT, SP, MG, Bzip2, Verus}

// Class is an NPB problem class.
type Class byte

// Problem classes: S (tiny smoke test), A, B, C as in the paper.
const (
	ClassS Class = 'S'
	ClassA Class = 'A'
	ClassB Class = 'B'
	ClassC Class = 'C'
)

// Classes lists the evaluation classes (A, B, C).
var Classes = []Class{ClassA, ClassB, ClassC}

func (c Class) String() string { return string(rune(c)) }

// classIndex returns 0..3 for S/A/B/C.
func classIndex(c Class) (int, error) {
	switch c {
	case ClassS:
		return 0, nil
	case ClassA:
		return 1, nil
	case ClassB:
		return 2, nil
	case ClassC:
		return 3, nil
	}
	return 0, fmt.Errorf("npb: unknown class %q", string(rune(c)))
}

// Source generates the mini-C program for bench at class with the given
// thread count baked in.
func Source(b Bench, c Class, threads int) (minic.Source, error) {
	ci, err := classIndex(c)
	if err != nil {
		return minic.Source{}, err
	}
	if threads < 1 {
		threads = 1
	}
	if threads > 16 {
		threads = 16
	}
	var body string
	switch b {
	case EP:
		body = epSource(ci, threads)
	case IS:
		body = isSource(ci, threads)
	case CG:
		body = cgSource(ci, threads)
	case FT:
		body = ftSource(ci, threads)
	case BT:
		body = btSource(ci, threads)
	case SP:
		body = spSource(ci, threads)
	case MG:
		body = mgSource(ci, threads)
	case Bzip2:
		body = bzip2Source(ci, threads)
	case Verus:
		body = verusSource(ci, threads)
	default:
		return minic.Source{}, fmt.Errorf("npb: unknown benchmark %q", b)
	}
	name := fmt.Sprintf("%s.%s.t%d.c", b, c, threads)
	return minic.Source{Name: name, Code: npbCommon + body}, nil
}

// MigrationFunc returns the function the Figure 11 experiment migrates
// (full_verify for IS, as in the paper).
func MigrationFunc(b Bench) string {
	if b == IS {
		return "full_verify"
	}
	return "main"
}

type buildKey struct {
	b       Bench
	c       Class
	threads int
	opts    string
}

var (
	buildMu    sync.Mutex
	buildCache = map[buildKey]*link.Image{}
)

// Build compiles (with caching) the benchmark into a migratable multi-ISA
// image using the default toolchain options.
func Build(b Bench, c Class, threads int) (*link.Image, error) {
	return BuildWith(b, c, threads, core.DefaultBuildOptions(), "default")
}

// BuildWith compiles with explicit toolchain options; optsTag keys the
// cache (pass distinct tags for distinct options).
func BuildWith(b Bench, c Class, threads int, opts core.BuildOptions, optsTag string) (*link.Image, error) {
	key := buildKey{b: b, c: c, threads: threads, opts: optsTag}
	buildMu.Lock()
	defer buildMu.Unlock()
	if img, ok := buildCache[key]; ok {
		return img, nil
	}
	src, err := Source(b, c, threads)
	if err != nil {
		return nil, err
	}
	img, err := core.BuildWith(fmt.Sprintf("%s.%s.t%d", b, c, threads), opts, src)
	if err != nil {
		return nil, err
	}
	buildCache[key] = img
	return img, nil
}

// npbCommon is the shared mini-C support code: the NPB-style pseudo-random
// generator (46-bit LCG), polynomial sine/cosine (the simulated ISAs have
// no trig hardware, as on real machines libm provides it), and reduction
// helpers.
const npbCommon = `
// --- NPB-style 46-bit linear congruential generator ---

long __npb_seed = 314159265;

void npb_srand(long s) { __npb_seed = s & 70368744177663; }

long npb_rand(void) {
	__npb_seed = (__npb_seed * 1220703125 + 11) & 70368744177663;
	return __npb_seed;
}

// Uniform double in [0,1).
double npb_rand01(void) {
	return (double)npb_rand() * (1.0 / 70368744177664.0);
}

// Independent stream for thread t (deterministic leapfrogging).
long npb_stream_seed(long t) {
	long s = 271828183 + t * 1048573;
	return s & 70368744177663;
}

long npb_rand_from(long *state) {
	*state = (*state * 1220703125 + 11) & 70368744177663;
	return *state;
}

double npb_rand01_from(long *state) {
	return (double)npb_rand_from(state) * (1.0 / 70368744177664.0);
}

// --- polynomial trig (range-reduced Taylor, ~1e-10 over one period) ---

double msin(double x) {
	double twopi = 6.283185307179586;
	double pi = 3.141592653589793;
	long k = (long)(x / twopi);
	x = x - (double)k * twopi;
	if (x > pi) x = x - twopi;
	if (x < 0.0 - pi) x = x + twopi;
	// After reduction |x| <= pi; fold into |x| <= pi/2 for accuracy.
	if (x > pi / 2.0) x = pi - x;
	if (x < 0.0 - pi / 2.0) x = 0.0 - pi - x;
	double x2 = x * x;
	return x * (1.0 - x2 / 6.0 * (1.0 - x2 / 20.0 * (1.0 - x2 / 42.0 *
		(1.0 - x2 / 72.0 * (1.0 - x2 / 110.0 * (1.0 - x2 / 156.0))))));
}

double mcos(double x) { return msin(x + 1.5707963267948966); }

// mlog2: integer log2 (n must be a power of two).
long mlog2(long n) {
	long l = 0;
	while (n > 1) { n = n / 2; l++; }
	return l;
}

// Print a double checksum as a scaled integer for exact cross-ISA
// comparison.
void print_checksum(char *label, double v) {
	print_str(label);
	print_i64((long)(v * 1000000.0));
	println();
}
`
