package npb

import "fmt"

// btSource generates the BT application: like SP but with three coupled
// solution components per cell, so each line sweep solves a block
// tridiagonal system with 3x3 blocks (explicit 3x3 inversion and
// matrix-matrix products in the forward elimination). This preserves the
// real BT's defining trait — dense small-block arithmetic inside line
// solves — at reduced problem size (documented substitution).
func btSource(ci, threads int) string {
	n := []int64{6, 10, 14, 18}[ci]
	iters := []int64{2, 3, 4, 5}[ci]
	n3x3 := n * n * n * 3
	return fmt.Sprintf(`
long NTHREADS = %d;
long N = %d;
long NITER = %d;

double u[%d];     // 3 components per cell
double rhs[%d];
double tmp[%d];

long cidx(long i, long j, long k, long m) { return ((i * N + j) * N + k) * 3 + m; }

void bt_init(void) {
	npb_srand(137035999);
	for (long i = 0; i < N * N * N * 3; i++) {
		u[i] = npb_rand01();
		rhs[i] = 0.0;
		tmp[i] = 0.0;
	}
}

// inv3 computes dst = inverse(m) for a row-major 3x3 matrix via the
// adjugate formula.
void inv3(double *m, double *dst) {
	double a = m[0]; double b = m[1]; double c = m[2];
	double d = m[3]; double e = m[4]; double f = m[5];
	double g = m[6]; double h = m[7]; double i = m[8];
	double det = a * (e * i - f * h) - b * (d * i - f * g) + c * (d * h - e * g);
	double inv = 1.0 / det;
	dst[0] = (e * i - f * h) * inv;
	dst[1] = (c * h - b * i) * inv;
	dst[2] = (b * f - c * e) * inv;
	dst[3] = (f * g - d * i) * inv;
	dst[4] = (a * i - c * g) * inv;
	dst[5] = (c * d - a * f) * inv;
	dst[6] = (d * h - e * g) * inv;
	dst[7] = (b * g - a * h) * inv;
	dst[8] = (a * e - b * d) * inv;
}

// mat3mul: dst = x * y (3x3).
void mat3mul(double *x, double *y, double *dst) {
	for (long r = 0; r < 3; r++) {
		for (long c = 0; c < 3; c++) {
			double s = 0.0;
			for (long k = 0; k < 3; k++) s += x[r * 3 + k] * y[k * 3 + c];
			dst[r * 3 + c] = s;
		}
	}
}

// mat3vec: dst = m * v (3x3 by 3).
void mat3vec(double *m, double *v, double *dst) {
	for (long r = 0; r < 3; r++) {
		dst[r] = m[r * 3] * v[0] + m[r * 3 + 1] * v[1] + m[r * 3 + 2] * v[2];
	}
}

// block_line solves a block tridiagonal system with constant blocks
// A (sub), B (diag), C (super) over n cells whose 3-vectors are packed in
// d; the solution overwrites d. cp holds n 3x3 elimination blocks.
void block_line(double *d, long n, double *A, double *B, double *C) {
	double cp[576];   // up to 64 cells * 9
	double binv[9];
	double m9[9];
	double v3[3];
	double bmod[9];

	inv3(B, binv);
	mat3mul(binv, C, &cp[0]);
	mat3vec(binv, &d[0], v3);
	d[0] = v3[0]; d[1] = v3[1]; d[2] = v3[2];

	for (long i = 1; i < n; i++) {
		// bmod = B - A * cp[i-1]
		mat3mul(A, &cp[(i - 1) * 9], m9);
		for (long t = 0; t < 9; t++) bmod[t] = B[t] - m9[t];
		inv3(bmod, binv);
		mat3mul(binv, C, &cp[i * 9]);
		// d[i] = binv * (d[i] - A * d[i-1])
		mat3vec(A, &d[(i - 1) * 3], v3);
		double w0 = d[i * 3] - v3[0];
		double w1 = d[i * 3 + 1] - v3[1];
		double w2 = d[i * 3 + 2] - v3[2];
		double w3[3];
		w3[0] = w0; w3[1] = w1; w3[2] = w2;
		mat3vec(binv, w3, v3);
		d[i * 3] = v3[0]; d[i * 3 + 1] = v3[1]; d[i * 3 + 2] = v3[2];
	}
	for (long i = n - 2; i >= 0; i--) {
		mat3vec(&cp[i * 9], &d[(i + 1) * 3], v3);
		d[i * 3] -= v3[0];
		d[i * 3 + 1] -= v3[1];
		d[i * 3 + 2] -= v3[2];
	}
}

long bt_worker(long tid) {
	long sense = 0;
	double alpha = 0.05;
	double A[9];
	double B[9];
	double C[9];
	for (long t = 0; t < 9; t++) { A[t] = 0.0; B[t] = 0.0; C[t] = 0.0; }
	// Diagonally dominant block stencil with weak component coupling.
	for (long m = 0; m < 3; m++) {
		A[m * 3 + m] = 0.0 - alpha;
		C[m * 3 + m] = 0.0 - alpha;
		B[m * 3 + m] = 1.0 + 2.0 * alpha;
	}
	B[1] = 0.02; B[3] = 0.02; B[5] = 0.01; B[7] = 0.01;

	double line[192]; // up to 64 cells * 3
	long lo = N * tid / NTHREADS;
	long hi = N * (tid + 1) / NTHREADS;

	for (long it = 0; it < NITER; it++) {
		// RHS from a component-mixing stencil.
		for (long i = lo; i < hi; i++) {
			for (long j = 0; j < N; j++) {
				for (long k = 0; k < N; k++) {
					for (long m = 0; m < 3; m++) {
						double c6 = 0.0;
						if (i > 0) c6 += u[cidx(i - 1, j, k, m)];
						if (i < N - 1) c6 += u[cidx(i + 1, j, k, m)];
						if (j > 0) c6 += u[cidx(i, j - 1, k, m)];
						if (j < N - 1) c6 += u[cidx(i, j + 1, k, m)];
						if (k > 0) c6 += u[cidx(i, j, k - 1, m)];
						if (k < N - 1) c6 += u[cidx(i, j, k + 1, m)];
						double mix = u[cidx(i, j, k, (m + 1) %% 3)] * 0.01;
						rhs[cidx(i, j, k, m)] = u[cidx(i, j, k, m)] +
							alpha * (c6 - 6.0 * u[cidx(i, j, k, m)]) + mix;
					}
				}
			}
		}
		sense = barrier_wait(sense);

		// X sweep (partition j).
		for (long j = lo; j < hi; j++) {
			for (long k = 0; k < N; k++) {
				for (long i = 0; i < N; i++) {
					for (long m = 0; m < 3; m++) line[i * 3 + m] = rhs[cidx(i, j, k, m)];
				}
				block_line(line, N, A, B, C);
				for (long i = 0; i < N; i++) {
					for (long m = 0; m < 3; m++) tmp[cidx(i, j, k, m)] = line[i * 3 + m];
				}
			}
		}
		sense = barrier_wait(sense);

		// Y sweep (partition i).
		for (long i = lo; i < hi; i++) {
			for (long k = 0; k < N; k++) {
				for (long j = 0; j < N; j++) {
					for (long m = 0; m < 3; m++) line[j * 3 + m] = tmp[cidx(i, j, k, m)];
				}
				block_line(line, N, A, B, C);
				for (long j = 0; j < N; j++) {
					for (long m = 0; m < 3; m++) rhs[cidx(i, j, k, m)] = line[j * 3 + m];
				}
			}
		}
		sense = barrier_wait(sense);

		// Z sweep (partition i), result into u.
		for (long i = lo; i < hi; i++) {
			for (long j = 0; j < N; j++) {
				for (long k = 0; k < N; k++) {
					for (long m = 0; m < 3; m++) line[k * 3 + m] = rhs[cidx(i, j, k, m)];
				}
				block_line(line, N, A, B, C);
				for (long k = 0; k < N; k++) {
					for (long m = 0; m < 3; m++) u[cidx(i, j, k, m)] = line[k * 3 + m];
				}
			}
		}
		sense = barrier_wait(sense);
	}
	return 0;
}

long main(void) {
	bt_init();
	pomp_run(bt_worker, NTHREADS);
	double chk = 0.0;
	for (long i = 0; i < N * N * N * 3; i++) chk += u[i] * (double)(i %% 13 + 1);
	print_checksum("BT cksum=", chk);
	if (chk > 0.0) { print_str("BT VERIFY OK\n"); return 0; }
	print_str("BT VERIFY FAILED\n");
	return 1;
}
`, threads, n, iters, n3x3, n3x3, n3x3)
}
