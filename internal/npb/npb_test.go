package npb

import (
	"strings"
	"testing"

	"heterodc/internal/core"
	"heterodc/internal/kernel"
)

// runOn runs the image on a fresh testbed and returns its output.
func runOn(t *testing.T, b Bench, c Class, threads, node int) string {
	t.Helper()
	img, err := Build(b, c, threads)
	if err != nil {
		t.Fatalf("%s.%s: build: %v", b, c, err)
	}
	res, err := core.Run(img, node)
	if err != nil {
		t.Fatalf("%s.%s: run: %v", b, c, err)
	}
	out := string(res.Output)
	if !strings.Contains(out, "VERIFY OK") {
		t.Fatalf("%s.%s on node %d: verification failed:\n%s", b, c, node, out)
	}
	return out
}

func TestAllBenchmarksClassS(t *testing.T) {
	for _, b := range All {
		b := b
		t.Run(string(b), func(t *testing.T) {
			x86 := runOn(t, b, ClassS, 2, core.NodeX86)
			arm := runOn(t, b, ClassS, 2, core.NodeARM)
			if x86 != arm {
				t.Errorf("%s: outputs differ across ISAs:\nx86: %s\narm: %s", b, x86, arm)
			}
		})
	}
}

func TestAllBenchmarksClassA(t *testing.T) {
	if testing.Short() {
		t.Skip("class A in -short mode")
	}
	for _, b := range All {
		b := b
		t.Run(string(b), func(t *testing.T) {
			x86 := runOn(t, b, ClassA, 4, core.NodeX86)
			arm := runOn(t, b, ClassA, 4, core.NodeARM)
			if x86 != arm {
				t.Errorf("%s: outputs differ across ISAs:\nx86: %s\narm: %s", b, x86, arm)
			}
		})
	}
}

// TestBenchmarksSurviveMigration migrates the whole container to the other
// node mid-run (and back later) and requires identical output.
func TestBenchmarksSurviveMigration(t *testing.T) {
	for _, b := range All {
		b := b
		t.Run(string(b), func(t *testing.T) {
			img, err := Build(b, ClassS, 2)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			ref, err := core.Run(img, core.NodeX86)
			if err != nil {
				t.Fatalf("ref: %v", err)
			}
			if !strings.Contains(string(ref.Output), "VERIFY OK") {
				t.Fatalf("reference run failed:\n%s", ref.Output)
			}

			cl := core.NewTestbed()
			p, err := cl.Spawn(img, core.NodeX86)
			if err != nil {
				t.Fatalf("spawn: %v", err)
			}
			t1 := ref.Seconds * 0.25
			t2 := ref.Seconds * 0.65
			r1, r2 := false, false
			for {
				if done, _ := p.Exited(); done {
					break
				}
				now := cl.Time()
				if !r1 && now > t1 {
					cl.RequestProcessMigration(p, core.NodeARM)
					r1 = true
				}
				if !r2 && now > t2 {
					cl.RequestProcessMigration(p, core.NodeX86)
					r2 = true
				}
				if !cl.Step() {
					t.Fatalf("cluster drained")
				}
			}
			if err := p.Err(); err != nil {
				t.Fatalf("migrated run failed: %v", err)
			}
			if string(p.Output()) != string(ref.Output) {
				t.Errorf("output diverged after migration:\n got  %q\n want %q", p.Output(), ref.Output)
			}
		})
	}
}

// TestBenchmarkTortureCG bounces a serial CG at every migration point.
func TestBenchmarkTortureCG(t *testing.T) {
	if testing.Short() {
		t.Skip("torture in -short mode")
	}
	img, err := Build(CG, ClassS, 1)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ref, err := core.Run(img, core.NodeX86)
	if err != nil {
		t.Fatalf("ref: %v", err)
	}
	cl := core.NewTestbed()
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	cl.OnMigration = func(ev kernel.MigrationEvent) {
		_ = cl.RequestMigration(p, ev.Tid, 1-ev.To)
	}
	_ = cl.RequestMigration(p, 0, core.NodeARM)
	res, err := core.Wait(cl, p)
	if err != nil {
		t.Fatalf("torture: %v", err)
	}
	if string(res.Output) != string(ref.Output) {
		t.Errorf("torture output diverged:\n got  %q\n want %q", res.Output, ref.Output)
	}
	if res.Migrations < 50 {
		t.Errorf("expected many migrations, got %d", res.Migrations)
	}
}

// TestClassBSpot runs one heavier configuration per family to prove the
// class-scaling knob beyond A (full C-class runs are exercised by
// `hdcbench -scale full`).
func TestClassBSpot(t *testing.T) {
	if testing.Short() {
		t.Skip("class B in -short mode")
	}
	for _, b := range []Bench{CG, IS} {
		x86 := runOn(t, b, ClassB, 4, core.NodeX86)
		arm := runOn(t, b, ClassB, 4, core.NodeARM)
		if x86 != arm {
			t.Errorf("%s B: outputs differ across ISAs", b)
		}
	}
}
