package npb

import "fmt"

// mgSource generates the MG kernel: V-cycles of a 3-D multigrid solver for
// a Poisson-like problem on a power-of-two grid — smoothing, residual
// restriction to a coarser grid, recursive solve, prolongation and
// correction. Grid sizes are reduced from the original (documented
// substitution); the level structure and stencils match.
func mgSource(ci, threads int) string {
	n := []int64{8, 16, 16, 32}[ci]
	iters := []int64{1, 2, 3, 3}[ci]
	// Storage for all levels: sum of (n/2^l)^3 for l = 0.. — bounded by 2*n^3.
	var total int64
	for s := n; s >= 2; s /= 2 {
		total += s * s * s
	}
	return fmt.Sprintf(`
long NTHREADS = %d;
long N = %d;
long NITER = %d;

double ug[%d];   // solution, all levels packed
double rg[%d];   // residual/rhs, all levels packed
double sg[%d];   // scratch
long loff[8];    // level offsets
long lsize[8];   // level edge sizes
long nlevels = 0;

long gidx(long off, long n, long i, long j, long k) {
	return off + (i * n + j) * n + k;
}

void mg_setup(void) {
	long off = 0;
	long s = N;
	while (s >= 2) {
		loff[nlevels] = off;
		lsize[nlevels] = s;
		off += s * s * s;
		nlevels++;
		s = s / 2;
	}
	npb_srand(299792458);
	long n0 = lsize[0];
	for (long i = 0; i < n0 * n0 * n0; i++) {
		ug[i] = 0.0;
		rg[i] = npb_rand01() - 0.5;
	}
}

// smooth runs weighted-Jacobi sweeps on one level over a thread's slab.
// A barrier separates the stencil read phase from the update phase (and the
// sweeps) so the kernel is race-free; the caller's barrier sense is threaded
// through by pointer.
long smooth(long lvl, long lo, long hi, long sweeps, long sense) {
	long n = lsize[lvl];
	long off = loff[lvl];
	for (long s = 0; s < sweeps; s++) {
		for (long i = lo; i < hi; i++) {
			if (i == 0 || i == n - 1) continue;
			for (long j = 1; j < n - 1; j++) {
				for (long k = 1; k < n - 1; k++) {
					double nb = ug[gidx(off, n, i - 1, j, k)] + ug[gidx(off, n, i + 1, j, k)] +
						ug[gidx(off, n, i, j - 1, k)] + ug[gidx(off, n, i, j + 1, k)] +
						ug[gidx(off, n, i, j, k - 1)] + ug[gidx(off, n, i, j, k + 1)];
					sg[gidx(off, n, i, j, k)] = (nb - rg[gidx(off, n, i, j, k)]) / 6.0;
				}
			}
		}
		sense = barrier_wait(sense);
		for (long i = lo; i < hi; i++) {
			if (i == 0 || i == n - 1) continue;
			for (long j = 1; j < n - 1; j++) {
				for (long k = 1; k < n - 1; k++) {
					long x = gidx(off, n, i, j, k);
					ug[x] = 0.4 * ug[x] + 0.6 * sg[x];
				}
			}
		}
		sense = barrier_wait(sense);
	}
	return sense;
}

// restrictr computes the residual on lvl and restricts it to lvl+1's rhs.
void restrictr(long lvl, long lo, long hi) {
	long n = lsize[lvl];
	long off = loff[lvl];
	long nc = lsize[lvl + 1];
	long offc = loff[lvl + 1];
	for (long i = lo; i < hi; i++) {
		if (i >= nc) continue;
		for (long j = 0; j < nc; j++) {
			for (long k = 0; k < nc; k++) {
				long fi = 2 * i;
				long fj = 2 * j;
				long fk = 2 * k;
				double res = 0.0;
				if (fi > 0 && fi < n - 1 && fj > 0 && fj < n - 1 && fk > 0 && fk < n - 1) {
					double nb = ug[gidx(off, n, fi - 1, fj, fk)] + ug[gidx(off, n, fi + 1, fj, fk)] +
						ug[gidx(off, n, fi, fj - 1, fk)] + ug[gidx(off, n, fi, fj + 1, fk)] +
						ug[gidx(off, n, fi, fj, fk - 1)] + ug[gidx(off, n, fi, fj, fk + 1)];
					res = rg[gidx(off, n, fi, fj, fk)] - (nb - 6.0 * ug[gidx(off, n, fi, fj, fk)]);
				}
				rg[gidx(offc, nc, i, j, k)] = res;
				ug[gidx(offc, nc, i, j, k)] = 0.0;
			}
		}
	}
}

// prolong adds the coarse correction back into the fine level.
void prolong(long lvl, long lo, long hi) {
	long n = lsize[lvl];
	long off = loff[lvl];
	long nc = lsize[lvl + 1];
	long offc = loff[lvl + 1];
	for (long i = lo; i < hi; i++) {
		if (i >= n) continue;
		long ci = i / 2;
		if (ci >= nc) ci = nc - 1;
		for (long j = 0; j < n; j++) {
			long cj = j / 2;
			if (cj >= nc) cj = nc - 1;
			for (long k = 0; k < n; k++) {
				long ck = k / 2;
				if (ck >= nc) ck = nc - 1;
				ug[gidx(off, n, i, j, k)] += ug[gidx(offc, nc, ci, cj, ck)];
			}
		}
	}
}

long mg_worker(long tid) {
	long sense = 0;
	for (long it = 0; it < NITER; it++) {
		// Descend the V.
		for (long lvl = 0; lvl < nlevels - 1; lvl++) {
			long n = lsize[lvl];
			long lo = n * tid / NTHREADS;
			long hi = n * (tid + 1) / NTHREADS;
			sense = smooth(lvl, lo, hi, 2, sense);
			restrictr(lvl, lo, hi);
			sense = barrier_wait(sense);
		}
		// Coarsest solve: extra smoothing.
		long lvl = nlevels - 1;
		long n = lsize[lvl];
		long lo = n * tid / NTHREADS;
		long hi = n * (tid + 1) / NTHREADS;
		sense = smooth(lvl, lo, hi, 6, sense);
		// Ascend the V.
		for (long l2 = nlevels - 2; l2 >= 0; l2--) {
			long nf = lsize[l2];
			long flo = nf * tid / NTHREADS;
			long fhi = nf * (tid + 1) / NTHREADS;
			prolong(l2, flo, fhi);
			sense = barrier_wait(sense);
			sense = smooth(l2, flo, fhi, 1, sense);
		}
	}
	return 0;
}

long main(void) {
	mg_setup();
	pomp_run(mg_worker, NTHREADS);
	long n0 = lsize[0];
	double chk = 0.0;
	for (long i = 0; i < n0 * n0 * n0; i++) chk += ug[i] * (double)(i %% 11 + 1);
	print_checksum("MG cksum=", chk);
	print_str("MG VERIFY OK\n");
	return 0;
}
`, threads, n, iters, total, total, total)
}
