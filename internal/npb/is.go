package npb

import "fmt"

// isSource generates the IS (integer sort) kernel: iterated parallel
// counting sort (ranking) of uniformly distributed keys with per-thread
// histograms, partial verification each iteration, and a serial
// full_verify pass at the end — the function the paper migrates in its
// Figure 11 experiment.
func isSource(ci, threads int) string {
	nkeys := []int64{1 << 10, 1 << 14, 1 << 16, 1 << 18}[ci]
	maxKey := []int64{1 << 7, 1 << 10, 1 << 12, 1 << 14}[ci]
	iters := int64(10)
	return fmt.Sprintf(`
long NTHREADS = %d;
long NKEYS = %d;
long MAXKEY = %d;
long NITER = %d;

long keys[%d];
long sorted[%d];
long hist[%d];        // NTHREADS * MAXKEY per-thread histograms
long keyden[%d];      // merged key density
long cumul[%d];       // cumulative counts
long partial_ok = 0;
long iter_now = 0;
long pos[%d];

void gen_keys(void) {
	npb_srand(314159265);
	for (long i = 0; i < NKEYS; i++) {
		// Average of four uniforms, as in the real IS key generation.
		long k = (npb_rand() %% MAXKEY + npb_rand() %% MAXKEY +
		          npb_rand() %% MAXKEY + npb_rand() %% MAXKEY) / 4;
		keys[i] = k;
	}
}

long rank_worker(long tid) {
	long sense = 0;
	for (long it = 1; it <= NITER; it++) {
		if (tid == 0) {
			iter_now = it;
			keys[it] = it;
			keys[it + NITER] = MAXKEY - it;
		}
		sense = barrier_wait(sense);

		// Per-thread histogram over an equal share of keys.
		long base = tid * MAXKEY;
		for (long k = 0; k < MAXKEY; k++) hist[base + k] = 0;
		long lo = NKEYS * tid / NTHREADS;
		long hi = NKEYS * (tid + 1) / NTHREADS;
		for (long i = lo; i < hi; i++) hist[base + keys[i]]++;
		sense = barrier_wait(sense);

		// Merge a slice of the key space and build cumulative counts.
		long klo = MAXKEY * tid / NTHREADS;
		long khi = MAXKEY * (tid + 1) / NTHREADS;
		for (long k = klo; k < khi; k++) {
			long c = 0;
			for (long t = 0; t < NTHREADS; t++) c += hist[t * MAXKEY + k];
			keyden[k] = c;
		}
		sense = barrier_wait(sense);

		if (tid == 0) {
			long run = 0;
			for (long k = 0; k < MAXKEY; k++) {
				run += keyden[k];
				cumul[k] = run;
			}
			// Partial verification: ranks of the planted keys.
			long r1 = cumul[keys[it]] - 1;
			long r2 = cumul[keys[it + NITER]] - 1;
			if (r1 >= 0 && r2 > r1 && r2 < NKEYS) partial_ok++;
		}
		sense = barrier_wait(sense);
	}
	return 0;
}

// full_verify produces the sorted permutation serially and checks order —
// the serial phase the paper migrates between machines.
long full_verify(void) {
	// Rebuild cumulative counts as bucket start positions.
	long run = 0;
	for (long k = 0; k < MAXKEY; k++) {
		pos[k] = run;
		run += keyden[k];
	}
	for (long i = 0; i < NKEYS; i++) {
		long k = keys[i];
		sorted[pos[k]] = k;
		pos[k]++;
	}
	for (long i = 1; i < NKEYS; i++) {
		if (sorted[i - 1] > sorted[i]) return 0;
	}
	return 1;
}

long main(void) {
	gen_keys();
	pomp_run(rank_worker, NTHREADS);
	long ok = full_verify();
	long chk = 0;
	for (long i = 0; i < NKEYS; i += 37) chk = (chk * 31 + sorted[i]) %% 1000000007;
	print_kv("IS partial_ok=", partial_ok);
	print_kv("IS checksum=", chk);
	if (ok == 1 && partial_ok == NITER) { print_str("IS VERIFY OK\n"); return 0; }
	print_str("IS VERIFY FAILED\n");
	return 1;
}
`, threads, nkeys, maxKey, iters,
		nkeys, nkeys, int64(threads)*maxKey, maxKey, maxKey, maxKey)
}
