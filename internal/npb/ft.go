package npb

import "fmt"

// ftSource generates the FT kernel: batches of radix-2 complex FFTs with an
// evolve (pointwise phase multiplication) step between forward and inverse
// transforms, and checksum accumulation — the computational core of the 3-D
// FFT PDE solver, flattened to independent 1-D lines so rows parallelise
// across threads exactly like the original's pencil decomposition
// (documented substitution).
func ftSource(ci, threads int) string {
	nx := []int64{64, 256, 512, 1024}[ci]
	batch := []int64{4, 8, 8, 8}[ci]
	iters := []int64{2, 4, 4, 4}[ci]
	total := nx * batch
	return fmt.Sprintf(`
long NTHREADS = %d;
long NX = %d;
long BATCH = %d;
long NITER = %d;

double re[%d];
double im[%d];
double wre[%d];      // twiddle factors
double wim[%d];
double cksum_re[%d]; // per-thread checksum slots
double cksum_im[%d];
long brev[%d];       // bit-reversal permutation

void ft_init(void) {
	double twopi = 6.283185307179586;
	for (long k = 0; k < NX; k++) {
		double ang = twopi * (double)k / (double)NX;
		wre[k] = mcos(ang);
		wim[k] = msin(ang);
	}
	long bits = mlog2(NX);
	for (long i = 0; i < NX; i++) {
		long r = 0;
		long v = i;
		for (long b = 0; b < bits; b++) {
			r = r * 2 + v %% 2;
			v = v / 2;
		}
		brev[i] = r;
	}
	npb_srand(161803398);
	for (long i = 0; i < NX * BATCH; i++) {
		re[i] = npb_rand01() - 0.5;
		im[i] = npb_rand01() - 0.5;
	}
}

// fft1d transforms one row in place; dir = 1 forward, -1 inverse
// (unscaled; the caller divides by NX after an inverse transform).
void fft1d(double *xr, double *xi, long dir) {
	// Bit-reversal permutation.
	for (long i = 0; i < NX; i++) {
		long j = brev[i];
		if (j > i) {
			double tr = xr[i]; xr[i] = xr[j]; xr[j] = tr;
			double ti = xi[i]; xi[i] = xi[j]; xi[j] = ti;
		}
	}
	for (long len = 2; len <= NX; len = len * 2) {
		long half = len / 2;
		long step = NX / len;
		for (long base = 0; base < NX; base += len) {
			for (long k = 0; k < half; k++) {
				long tw = k * step;
				double twr = wre[tw];
				double twi = wim[tw] * (double)dir;
				long a = base + k;
				long b2 = a + half;
				double pr = xr[b2] * twr - xi[b2] * twi;
				double pi2 = xr[b2] * twi + xi[b2] * twr;
				xr[b2] = xr[a] - pr;
				xi[b2] = xi[a] - pi2;
				xr[a] += pr;
				xi[a] += pi2;
			}
		}
	}
}

long ft_worker(long tid) {
	long sense = 0;
	long rlo = BATCH * tid / NTHREADS;
	long rhi = BATCH * (tid + 1) / NTHREADS;
	double csr = 0.0;
	double csi = 0.0;
	for (long it = 1; it <= NITER; it++) {
		for (long row = rlo; row < rhi; row++) {
			double *xr = &re[row * NX];
			double *xi = &im[row * NX];
			fft1d(xr, xi, 1);
			// Evolve: multiply element k by a phase depending on k and it.
			for (long k = 0; k < NX; k++) {
				long idx = (k * it) %% NX;
				double er = wre[idx];
				double ei = wim[idx];
				double nr = xr[k] * er - xi[k] * ei;
				double ni = xr[k] * ei + xi[k] * er;
				xr[k] = nr;
				xi[k] = ni;
			}
			fft1d(xr, xi, 0 - 1);
			double scale = 1.0 / (double)NX;
			for (long k = 0; k < NX; k++) {
				xr[k] *= scale;
				xi[k] *= scale;
			}
			// Checksum over strided elements, as the real FT does.
			for (long k = 0; k < NX; k += 17) {
				csr += xr[k];
				csi += xi[k];
			}
		}
		sense = barrier_wait(sense);
	}
	cksum_re[tid] = csr;
	cksum_im[tid] = csi;
	return 0;
}

long main(void) {
	ft_init();
	pomp_run(ft_worker, NTHREADS);
	double cr = 0.0;
	double cim = 0.0;
	for (long t = 0; t < NTHREADS; t++) {
		cr += cksum_re[t];
		cim += cksum_im[t];
	}
	print_checksum("FT cksum_re=", cr);
	print_checksum("FT cksum_im=", cim);
	double mag = cr * cr + cim * cim;
	if (mag < 1000000000.0) { print_str("FT VERIFY OK\n"); return 0; }
	print_str("FT VERIFY FAILED\n");
	return 1;
}
`, threads, nx, batch, iters,
		total, total, nx, nx, threads, threads, nx)
}
