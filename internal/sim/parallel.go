package sim

import (
	"runtime"
	"sync"
)

// Options tunes the parallel engine.
type Options struct {
	// EpochSec is the barrier interval: each Step runs every sharing group
	// concurrently up to (first pending action + EpochSec), then
	// resynchronises. 0 selects DefaultEpochSec. Epoch length never changes
	// results — only how often groups are recomputed — because group
	// schedules are interleaving-invariant between barriers.
	EpochSec float64
	// LookaheadSec is the model's minimum cross-node interaction delay (the
	// interconnect's minimum link latency). It lower-bounds the effective
	// epoch: any shorter barrier interval would resynchronise more often
	// than information can propagate between nodes, pure overhead.
	LookaheadSec float64
}

// DefaultEpochSec is the default barrier interval (500 kernel quanta).
const DefaultEpochSec = 1e-3

// Parallel is the conservative parallel engine: a persistent pool of
// worker goroutines (sized to GOMAXPROCS at first fan-out) replays each
// sharing group's restriction of the sequential schedule between epoch
// barriers. Group membership is the model's conservative "might interact
// before the next barrier" relation and every window is clamped to the
// model's soundness horizon, so workers never contend on shared state and
// results are byte-identical to the Sequential engine.
type Parallel struct {
	m     Model
	nodes []int
	epoch float64

	// The worker pool, started lazily at the first multi-group window.
	// Workers capture only (model, work, wg) — never the engine — so the
	// finalizer that closes the channel can actually fire.
	work     chan groupTask
	wg       *sync.WaitGroup
	active   [][]int // per-window scratch
	poolSize int     // 0 until the first fan-out sizes the pool
}

// groupTask is one group's share of a window.
type groupTask struct {
	g   []int
	end float64
}

// NewParallel builds the parallel engine over m.
func NewParallel(m Model, opt Options) *Parallel {
	ep := opt.EpochSec
	if ep <= 0 {
		ep = DefaultEpochSec
	}
	if opt.LookaheadSec > ep {
		ep = opt.LookaheadSec
	}
	return &Parallel{m: m, nodes: allNodes(m.NumNodes()), epoch: ep, wg: &sync.WaitGroup{}}
}

// runGroup replays one group's schedule up to limit on the caller's
// goroutine. The group's control events are applied by its own worker, so
// a crash inside the epoch only ever touches group-local state.
func runGroup(m Model, nodes []int, limit float64) {
	for stepOnce(m, nodes, limit) != stepNone {
	}
}

// Step runs one epoch: partition nodes into sharing groups, run each group
// concurrently up to the epoch end (clamped to the model's horizon), then
// barrier. Returns false when the whole model is drained.
func (e *Parallel) Step() bool {
	t0 := nextActionTime(e.m, e.nodes)
	if t0 >= Inf {
		return false
	}
	e.window(t0, t0+e.epoch)
	return true
}

// window runs one epoch starting at t0 bounded by end and performs the
// barrier work.
func (e *Parallel) window(t0, end float64) {
	m := e.m
	if hz := m.Horizon(t0); hz <= t0 {
		if hz <= NegInf {
			// Structural collapse: some layer needs the global order for the
			// whole window, so run it inline — exactly the sequential loop
			// restricted to nothing.
			runGroup(m, e.nodes, end)
		} else {
			// A point hazard (membership round, timer firing, crash event)
			// is due right now. Consume actions in the exact sequential
			// order until the horizon clears or the window drains; the next
			// window re-partitions and fans back out.
			for stepOnce(m, e.nodes, end) != stepNone {
				t1 := nextActionTime(m, e.nodes)
				if t1 >= end || m.Horizon(t1) > t1 {
					break
				}
			}
		}
	} else {
		if hz < end {
			// Clamp the window to the hazard: no membership round, timer
			// firing or crash event ever executes inside a grouped window
			// (stepOnce applies actions strictly before the limit).
			end = hz
		}
		groups := m.Groups()
		// Only groups with an action before the epoch end need a worker.
		// (Never filter in place: the slice belongs to the model.)
		e.active = e.active[:0]
		for _, g := range groups {
			if nextActionTime(m, g) < end {
				e.active = append(e.active, g)
			}
		}
		if len(e.active) == 1 {
			// Run inline: callbacks that re-enter the engine (checkpoint
			// managers driving Step from an observer) stay on one goroutine.
			runGroup(m, e.active[0], end)
		} else if len(e.active) > 1 {
			e.fanOut(end)
		}
	}
	// Barrier: drag drained nodes up to the fastest clock, exactly the final
	// value the sequential loop's per-step idle drag converges to, then
	// publish the frontier once for the whole epoch.
	maxNow := 0.0
	for _, n := range e.nodes {
		if t := m.Now(n); t > maxNow {
			maxNow = t
		}
	}
	for _, n := range e.nodes {
		if m.ReadyTime(n) >= Inf && m.Now(n) < maxNow {
			m.SkipTo(n, maxNow)
		}
	}
	m.NoteFrontier()
}

// fanOut runs the active groups concurrently: the first inline on the
// scheduling goroutine, the rest on the persistent pool. With one
// effective core there is no pool at all — the groups run back-to-back on
// the scheduling goroutine, which is result-identical (group schedules are
// interleaving-invariant between barriers) and avoids handing work to
// goroutines that would only time-slice against this one.
func (e *Parallel) fanOut(end float64) {
	if e.poolSize == 0 {
		e.startPool()
	}
	if e.poolSize == 1 {
		for _, g := range e.active {
			runGroup(e.m, g, end)
		}
		return
	}
	e.wg.Add(len(e.active) - 1)
	for _, g := range e.active[1:] {
		e.work <- groupTask{g, end}
	}
	runGroup(e.m, e.active[0], end)
	e.wg.Wait()
}

// startPool sizes the pool to the effective parallelism — GOMAXPROCS,
// clamped by the physical core count (extra workers on a smaller machine
// only preempt each other) and the node count — and spawns the workers.
// The workers hold the model and channel, never the engine, so when the
// engine becomes unreachable its finalizer closes the channel and the pool
// exits — engines have no Close and are dropped freely by tests and
// benchmarks.
func (e *Parallel) startPool() {
	n := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); n > c {
		n = c
	}
	if n > len(e.nodes) {
		n = len(e.nodes)
	}
	e.poolSize = n
	if n == 1 {
		return
	}
	e.work = make(chan groupTask, 2*n)
	for i := 0; i < n; i++ {
		go worker(e.m, e.work, e.wg)
	}
	runtime.SetFinalizer(e, func(p *Parallel) { close(p.work) })
}

func worker(m Model, work <-chan groupTask, wg *sync.WaitGroup) {
	for t := range work {
		runGroup(m, t.g, t.end)
		wg.Done()
	}
}

// Run runs epochs clamped to `until`, so every node stops at exactly the
// same local point the sequential engine would. When the frontier is pinned
// below `until` by a lagging idle clock (a sleeper far in the future), only
// the global sequential rule reproduces the reference engine's overrun, so
// the tail falls back to it.
func (e *Parallel) Run(until float64) float64 {
	m := e.m
	for m.Frontier() < until {
		t0 := nextActionTime(m, e.nodes)
		if t0 >= Inf {
			break
		}
		if t0 >= until {
			switch stepOnce(m, e.nodes, Inf) {
			case stepNone:
				return m.Frontier()
			case stepWork:
				m.NoteFrontier()
			}
			continue
		}
		end := t0 + e.epoch
		if end > until {
			end = until
		}
		e.window(t0, end)
	}
	return m.Frontier()
}

// AdvanceTo skips every node's clock to t, applying due control events.
// It runs on the scheduling goroutine (a barrier by construction).
func (e *Parallel) AdvanceTo(t float64) { advanceTo(e.m, t) }
