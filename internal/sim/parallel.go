package sim

import "sync"

// Options tunes the parallel engine.
type Options struct {
	// EpochSec is the barrier interval: each Step runs every sharing group
	// concurrently up to (first pending action + EpochSec), then
	// resynchronises. 0 selects DefaultEpochSec. Epoch length never changes
	// results — only how often groups are recomputed — because group
	// schedules are interleaving-invariant between barriers.
	EpochSec float64
	// LookaheadSec is the model's minimum cross-node interaction delay (the
	// interconnect's minimum link latency). It lower-bounds the effective
	// epoch: any shorter barrier interval would resynchronise more often
	// than information can propagate between nodes, pure overhead.
	LookaheadSec float64
}

// DefaultEpochSec is the default barrier interval (500 kernel quanta).
const DefaultEpochSec = 1e-3

// Parallel is the conservative parallel engine: one worker goroutine per
// sharing group (at most one per node) replays that group's restriction of
// the sequential schedule between epoch barriers. Group membership is the
// model's conservative "might interact before the next barrier" relation,
// so workers never contend on shared state and results are byte-identical
// to the Sequential engine.
type Parallel struct {
	m     Model
	nodes []int
	epoch float64
}

// NewParallel builds the parallel engine over m.
func NewParallel(m Model, opt Options) *Parallel {
	ep := opt.EpochSec
	if ep <= 0 {
		ep = DefaultEpochSec
	}
	if opt.LookaheadSec > ep {
		ep = opt.LookaheadSec
	}
	return &Parallel{m: m, nodes: allNodes(m.NumNodes()), epoch: ep}
}

// runGroup replays one group's schedule up to limit on the caller's
// goroutine. The group's control events are applied by its own worker, so
// a crash inside the epoch only ever touches group-local state.
func runGroup(m Model, nodes []int, limit float64) {
	for stepOnce(m, nodes, limit) != stepNone {
	}
}

// Step runs one epoch: partition nodes into sharing groups, run each group
// concurrently up to the epoch end, then barrier. Returns false when the
// whole model is drained.
func (e *Parallel) Step() bool {
	t0 := nextActionTime(e.m, e.nodes)
	if t0 >= Inf {
		return false
	}
	e.window(t0 + e.epoch)
	return true
}

// window runs one epoch bounded by end and performs the barrier work.
func (e *Parallel) window(end float64) {
	m := e.m
	var groups [][]int
	if m.ParallelOK() {
		groups = m.Groups()
	} else {
		groups = [][]int{e.nodes}
	}
	// Only groups with an action before the epoch end need a worker. (Never
	// filter in place: the slice belongs to the model.)
	active := make([][]int, 0, len(groups))
	for _, g := range groups {
		if nextActionTime(m, g) < end {
			active = append(active, g)
		}
	}
	if len(active) == 1 {
		// Run inline: callbacks that re-enter the engine (checkpoint
		// managers driving Step from an observer) stay on one goroutine.
		runGroup(m, active[0], end)
	} else if len(active) > 1 {
		var wg sync.WaitGroup
		wg.Add(len(active))
		for _, g := range active {
			go func(g []int) {
				defer wg.Done()
				runGroup(m, g, end)
			}(g)
		}
		wg.Wait()
	}
	// Barrier: drag drained nodes up to the fastest clock, exactly the final
	// value the sequential loop's per-step idle drag converges to, then
	// publish the frontier once for the whole epoch.
	maxNow := 0.0
	for _, n := range e.nodes {
		if t := m.Now(n); t > maxNow {
			maxNow = t
		}
	}
	for _, n := range e.nodes {
		if m.ReadyTime(n) >= Inf && m.Now(n) < maxNow {
			m.SkipTo(n, maxNow)
		}
	}
	m.NoteFrontier()
}

// Run runs epochs clamped to `until`, so every node stops at exactly the
// same local point the sequential engine would. When the frontier is pinned
// below `until` by a lagging idle clock (a sleeper far in the future), only
// the global sequential rule reproduces the reference engine's overrun, so
// the tail falls back to it.
func (e *Parallel) Run(until float64) float64 {
	m := e.m
	for m.Frontier() < until {
		t0 := nextActionTime(m, e.nodes)
		if t0 >= Inf {
			break
		}
		if t0 >= until {
			switch stepOnce(m, e.nodes, Inf) {
			case stepNone:
				return m.Frontier()
			case stepWork:
				m.NoteFrontier()
			}
			continue
		}
		end := t0 + e.epoch
		if end > until {
			end = until
		}
		e.window(end)
	}
	return m.Frontier()
}

// AdvanceTo skips every node's clock to t, applying due control events.
// It runs on the scheduling goroutine (a barrier by construction).
func (e *Parallel) AdvanceTo(t float64) { advanceTo(e.m, t) }
