package sim

// Sequential is the reference engine: the exact global min-ready-time loop
// the kernel package originally ran, one node quantum (or control event)
// per Step. It is the determinism oracle the parallel backend is measured
// against.
type Sequential struct {
	m     Model
	nodes []int
}

// NewSequential builds the reference engine over m.
func NewSequential(m Model) *Sequential {
	return &Sequential{m: m, nodes: allNodes(m.NumNodes())}
}

// Step advances the model by one node quantum or control event.
func (e *Sequential) Step() bool {
	switch stepOnce(e.m, e.nodes, Inf) {
	case stepNone:
		return false
	case stepWork:
		e.m.NoteFrontier()
	}
	return true
}

// Run steps until the frontier passes `until` or work drains.
func (e *Sequential) Run(until float64) float64 {
	for e.m.Frontier() < until {
		if !e.Step() {
			break
		}
	}
	return e.m.Frontier()
}

// AdvanceTo skips every node's clock to t, applying due control events.
func (e *Sequential) AdvanceTo(t float64) { advanceTo(e.m, t) }
