package sim

import (
	"math"
	"reflect"
	"testing"
)

// The toy model: each node executes scripted batches of fixed-length quanta,
// recording each quantum's completion time. Control events skip the node's
// clock and leave a negative marker in the log. It is deliberately tiny but
// exercises every Model obligation: ready times, idle drag, events,
// frontier publication and group partitioning.

const toyQuantum = 1e-6

type toyBatch struct {
	at     float64
	quanta int
}

type toyNode struct {
	now     float64
	batch   int
	batches []toyBatch
	log     []float64
}

type toyModel struct {
	nodes   []*toyNode
	groups  [][]int
	horizon float64 // returned from Horizon; Inf = unconstrained

	events [][]float64
	evIdx  []int

	frontiers []float64
}

func newToy(scripts [][]toyBatch) *toyModel {
	m := &toyModel{horizon: Inf}
	for _, s := range scripts {
		// Copy: StepNode consumes quanta in place and scripts are reused.
		m.nodes = append(m.nodes, &toyNode{batches: append([]toyBatch(nil), s...)})
	}
	m.events = make([][]float64, len(m.nodes))
	m.evIdx = make([]int, len(m.nodes))
	m.groups = [][]int{allNodes(len(m.nodes))}
	return m
}

func (m *toyModel) NumNodes() int { return len(m.nodes) }

func (m *toyModel) ReadyTime(i int) float64 {
	nd := m.nodes[i]
	if nd.batch >= len(nd.batches) {
		return Inf
	}
	if at := nd.batches[nd.batch].at; at > nd.now {
		return at
	}
	return nd.now
}

func (m *toyModel) StepNode(i int) {
	nd := m.nodes[i]
	nd.now += toyQuantum
	nd.log = append(nd.log, nd.now)
	nd.batches[nd.batch].quanta--
	if nd.batches[nd.batch].quanta == 0 {
		nd.batch++
	}
}

func (m *toyModel) SkipTo(i int, t float64) {
	if nd := m.nodes[i]; t > nd.now {
		nd.now = t
	}
}

func (m *toyModel) Now(i int) float64 { return m.nodes[i].now }

func (m *toyModel) NextWake(i int) float64 {
	nd := m.nodes[i]
	if nd.batch >= len(nd.batches) {
		return Inf
	}
	return nd.batches[nd.batch].at
}

func (m *toyModel) NextEvent(i int) float64 {
	if m.evIdx[i] >= len(m.events[i]) {
		return Inf
	}
	return m.events[i][m.evIdx[i]]
}

func (m *toyModel) ApplyEvent(i int) {
	t := m.events[i][m.evIdx[i]]
	m.evIdx[i]++
	m.SkipTo(i, t)
	m.nodes[i].log = append(m.nodes[i].log, -t)
}

func (m *toyModel) Frontier() float64 {
	f := Inf
	for _, nd := range m.nodes {
		if nd.now < f {
			f = nd.now
		}
	}
	if f >= Inf {
		return 0
	}
	return f
}

func (m *toyModel) NoteFrontier() { m.frontiers = append(m.frontiers, m.Frontier()) }

func (m *toyModel) Groups() [][]int { return m.groups }

func (m *toyModel) Horizon(start float64) float64 { return m.horizon }

// twoPairScripts is a 4-node script where nodes {0,1} and {2,3} form
// independent pairs with interleaved, unequal work.
func twoPairScripts() [][]toyBatch {
	return [][]toyBatch{
		{{at: 0, quanta: 40}, {at: 100e-6, quanta: 25}},
		{{at: 5e-6, quanta: 30}},
		{{at: 0, quanta: 10}, {at: 60e-6, quanta: 50}},
		{{at: 2e-6, quanta: 70}},
	}
}

func runSeq(scripts [][]toyBatch, events [][]float64) *toyModel {
	m := newToy(scripts)
	if events != nil {
		m.events = events
	}
	e := NewSequential(m)
	for e.Step() {
	}
	return m
}

func runPar(scripts [][]toyBatch, events [][]float64, groups [][]int, opt Options) *toyModel {
	m := newToy(scripts)
	if events != nil {
		m.events = events
	}
	if groups != nil {
		m.groups = groups
	}
	e := NewParallel(m, opt)
	for e.Step() {
	}
	return m
}

func sameState(t *testing.T, label string, a, b *toyModel) {
	t.Helper()
	for i := range a.nodes {
		if a.nodes[i].now != b.nodes[i].now {
			t.Errorf("%s: node %d clock %.9f vs %.9f", label, i, a.nodes[i].now, b.nodes[i].now)
		}
		if !reflect.DeepEqual(a.nodes[i].log, b.nodes[i].log) {
			t.Errorf("%s: node %d logs diverge (%d vs %d entries)",
				label, i, len(a.nodes[i].log), len(b.nodes[i].log))
		}
	}
}

func TestSequentialRunsAllWork(t *testing.T) {
	m := runSeq(twoPairScripts(), nil)
	want := []int{65, 30, 60, 70}
	for i, nd := range m.nodes {
		got := 0
		for _, v := range nd.log {
			if v > 0 {
				got++
			}
		}
		if got != want[i] {
			t.Errorf("node %d ran %d quanta, want %d", i, got, want[i])
		}
	}
	for i := 1; i < len(m.frontiers); i++ {
		if m.frontiers[i] < m.frontiers[i-1] {
			t.Fatalf("frontier regressed: %v", m.frontiers)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	groups := [][]int{{0, 1}, {2, 3}}
	for _, ep := range []float64{0, 20e-6, 7e-6, 1e-3} {
		seq := runSeq(twoPairScripts(), nil)
		par := runPar(twoPairScripts(), nil, groups, Options{EpochSec: ep})
		sameState(t, "epoch", seq, par)
	}
}

func TestParallelSingletonGroups(t *testing.T) {
	groups := [][]int{{0}, {1}, {2}, {3}}
	seq := runSeq(twoPairScripts(), nil)
	par := runPar(twoPairScripts(), nil, groups, Options{EpochSec: 10e-6})
	sameState(t, "singletons", seq, par)
}

func TestParallelDegradesOnNegInfHorizon(t *testing.T) {
	m := newToy(twoPairScripts())
	m.horizon = NegInf
	m.groups = [][]int{{0, 1}, {2, 3}}
	e := NewParallel(m, Options{EpochSec: 10e-6})
	for e.Step() {
	}
	seq := runSeq(twoPairScripts(), nil)
	sameState(t, "degraded", seq, m)
}

// TestParallelClampsToFiniteHorizon pins the two horizon paths: a horizon
// inside the window clamps the grouped run to it, and a horizon at the
// window start consumes actions sequentially — both must stay byte-identical
// to the reference engine.
func TestParallelClampsToFiniteHorizon(t *testing.T) {
	for _, hz := range []float64{0, 4e-6, 11e-6} {
		m := newToy(twoPairScripts())
		m.horizon = hz
		m.groups = [][]int{{0, 1}, {2, 3}}
		e := NewParallel(m, Options{EpochSec: 10e-6})
		for e.Step() {
		}
		seq := runSeq(twoPairScripts(), nil)
		sameState(t, "finite-horizon", seq, m)
	}
}

func TestParallelAppliesEvents(t *testing.T) {
	events := [][]float64{nil, {12e-6, 40e-6}, nil, {3e-6}}
	seq := runSeq(twoPairScripts(), events)
	par := runPar(twoPairScripts(), events, [][]int{{0, 1}, {2, 3}}, Options{EpochSec: 15e-6})
	sameState(t, "events", seq, par)
	marks := 0
	for _, v := range par.nodes[1].log {
		if v < 0 {
			marks++
		}
	}
	if marks != 2 {
		t.Fatalf("node 1 applied %d events, want 2", marks)
	}
}

func TestRunClampsIdentically(t *testing.T) {
	for _, until := range []float64{10e-6, 33e-6, 80e-6, 1.0} {
		sm := newToy(twoPairScripts())
		NewSequential(sm).Run(until)
		pm := newToy(twoPairScripts())
		pm.groups = [][]int{{0, 1}, {2, 3}}
		NewParallel(pm, Options{EpochSec: 9e-6}).Run(until)
		sameState(t, "run-until", sm, pm)
	}
}

func TestAdvanceToAppliesEventsInGap(t *testing.T) {
	scripts := [][]toyBatch{{{at: 0, quanta: 1}}, {{at: 0, quanta: 1}}}
	events := [][]float64{nil, {50e-6}}
	for _, mk := range []func(m Model) Engine{
		func(m Model) Engine { return NewSequential(m) },
		func(m Model) Engine { return NewParallel(m, Options{}) },
	} {
		m := newToy(scripts)
		m.events = events
		e := mk(m)
		for e.Step() {
		}
		e.AdvanceTo(100e-6)
		if m.evIdx[1] != 1 {
			t.Fatal("event inside the idle gap was not applied")
		}
		for i, nd := range m.nodes {
			if nd.now != 100e-6 {
				t.Fatalf("node %d clock %.9f after AdvanceTo", i, nd.now)
			}
		}
	}
}

func TestLookaheadFloorsEpoch(t *testing.T) {
	e := NewParallel(newToy(twoPairScripts()), Options{EpochSec: 1e-9, LookaheadSec: 5e-6})
	if e.epoch != 5e-6 {
		t.Fatalf("epoch %g, want lookahead floor 5e-6", e.epoch)
	}
	if math.IsNaN(e.epoch) {
		t.Fatal("epoch NaN")
	}
}
