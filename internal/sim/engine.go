// Package sim is the cluster's time engine, extracted from internal/kernel:
// it decides which node acts next and when, while the model (the kernel
// cluster) supplies the domain semantics. Two interchangeable backends
// implement the same schedule:
//
//   - Sequential: the reference engine, one global min-ready-time loop —
//     exactly the loop the kernel package used to own.
//   - Parallel: a conservative (Chandy-Misra style) parallel discrete-event
//     engine. Nodes are partitioned into sharing groups — the connected
//     components of the "might interact" relation the model reports — and
//     each group replays its own restriction of the sequential schedule on
//     its own goroutine. Groups advance in bounded epochs with a barrier
//     between them; the barrier is where cross-group facts (spawns, group
//     membership, the time frontier) are re-established.
//
// Because a group's local schedule is exactly the global sequential
// schedule restricted to that group (ready times and tie-breaks are
// group-local), the parallel backend produces byte-identical results; see
// DESIGN.md §11 for the full argument.
package sim

// Inf is the engine's "never" time. It mirrors the kernel's internal
// infinity so ready times round-trip unchanged.
const Inf = 1e30

// NegInf is the "collapse indefinitely" horizon: a model returns it from
// Horizon when a layer needs the global sequential order for the whole
// window (not just until a due instant), letting the engine run the window
// inline without re-polling the horizon after every action.
const NegInf = -1e30

// Model is the simulated system the engine schedules: a fixed set of nodes
// with local clocks, work, and scheduled control events (crash/recovery).
// internal/kernel's Cluster implements it.
type Model interface {
	// NumNodes returns the node count (fixed for the model's lifetime).
	NumNodes() int
	// ReadyTime returns when node can next make progress, or >= Inf.
	ReadyTime(node int) float64
	// StepNode advances node by one quantum of work.
	StepNode(node int)
	// SkipTo drags node's clock forward to t without work (no-op if t is in
	// the past).
	SkipTo(node int, t float64)
	// Now returns node's local clock.
	Now(node int) float64
	// NextWake returns node's earliest pending wake/delivery time, or >= Inf
	// (used to bound idle skips; a subset of what ReadyTime considers).
	NextWake(node int) float64

	// NextEvent returns the time of node's next scheduled control event
	// (crash or recovery), or >= Inf.
	NextEvent(node int) float64
	// ApplyEvent executes node's next scheduled control event.
	ApplyEvent(node int)

	// Frontier returns the global safe-time frontier (min node clock).
	Frontier() float64
	// NoteFrontier publishes the current frontier to observers. The engine
	// calls it only from the scheduling goroutine (sequentially or at a
	// barrier), never from group workers.
	NoteFrontier()

	// Groups partitions the nodes into disjoint sharing groups: two nodes
	// that could interact before the next barrier (messages, DSM peer
	// actions, migrations, checkpoints) must share a group. Each group and
	// the list itself are sorted ascending. Called only at barriers.
	Groups() [][]int
	// Horizon returns the earliest instant at which group-parallel
	// execution stops being sound, given that the next window starts at
	// start. A finite horizon names the next global-order hazard (a
	// membership protocol round, a timer firing, a scheduled crash or
	// recovery feeding global observers): the engine clamps the window to
	// it, so the hazard itself is always consumed in the exact sequential
	// order. A horizon <= start means a hazard is due right now; NegInf
	// means a layer needs the global order for the foreseeable future (a
	// non-shardable tracer, non-quiet membership protocol state, a
	// contended fabric without sharing domains). Horizon >= Inf leaves the
	// window unconstrained. Called only at barriers.
	Horizon(start float64) float64
}

// Engine advances a Model through simulated time.
type Engine interface {
	// Step performs one unit of scheduling — a single node quantum (or
	// control event) on the sequential engine, one bounded epoch on the
	// parallel engine. It returns false when no node can ever progress.
	Step() bool
	// Run steps until the frontier reaches `until` or work drains, and
	// returns the frontier. Both backends leave the model in byte-identical
	// states for the same `until`.
	Run(until float64) float64
	// AdvanceTo skips every node's clock to t, bounded by pending wakes and
	// control events (which it applies). Used by workload drivers to model
	// idle gaps.
	AdvanceTo(t float64)
}

// stepResult classifies one sequential scheduling decision.
type stepResult int

const (
	stepNone  stepResult = iota // nothing can progress before the limit
	stepEvent                   // applied one control event
	stepWork                    // stepped one node quantum
)

// allNodes returns [0, n).
func allNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// nextEvent returns the earliest control event over nodes (lowest node wins
// ties), or (-1, Inf).
func nextEvent(m Model, nodes []int) (int, float64) {
	evN, evT := -1, Inf
	for _, n := range nodes {
		if t := m.NextEvent(n); t < evT {
			evT, evN = t, n
		}
	}
	return evN, evT
}

// nextActionTime returns the earliest ready time or control event over
// nodes, or >= Inf when the set is fully drained.
func nextActionTime(m Model, nodes []int) float64 {
	t := Inf
	for _, n := range nodes {
		if r := m.ReadyTime(n); r < t {
			t = r
		}
		if e := m.NextEvent(n); e < t {
			t = e
		}
	}
	return t
}

// stepOnce makes the single scheduling decision of the reference loop,
// restricted to the given node set and bounded by limit: apply the next due
// control event, or step the lowest-ready-time node (ties to the lowest
// node index) and drag the set's idle nodes up to its clock. Nothing due
// before limit returns stepNone.
func stepOnce(m Model, nodes []int, limit float64) stepResult {
	bestT := Inf
	best := -1
	for _, n := range nodes {
		if t := m.ReadyTime(n); t < bestT {
			bestT = t
			best = n
		}
	}
	// A scheduled crash/recovery due before the next quantum is the next
	// thing that happens — including when every live node is drained but a
	// recovery would thaw frozen work.
	if evN, evT := nextEvent(m, nodes); evN >= 0 && evT <= bestT {
		if evT >= limit {
			return stepNone
		}
		// Simulated time has globally reached evT: no node in the set can act
		// earlier. Drag fully drained nodes up to the event instant BEFORE the
		// handler runs, so clocks (and the frontier a handler may read) are
		// identical on both engines — without this, the sequential loop leaves
		// drained clocks at their last work-step drag while the parallel
		// barrier has already pulled them forward, and a handler that stamps
		// the frontier (a checkpoint policy clock, a restore record) or spawns
		// onto a drained node diverges between engines.
		for _, n := range nodes {
			if m.ReadyTime(n) >= Inf && m.Now(n) < evT {
				m.SkipTo(n, evT)
			}
		}
		m.ApplyEvent(evN)
		return stepEvent
	}
	if best < 0 || bestT >= Inf || bestT >= limit {
		return stepNone
	}
	m.SkipTo(best, bestT)
	m.StepNode(best)
	// Drag fully idle nodes forward so the time frontier advances (their
	// idle power is still integrated over the skipped span).
	bn := m.Now(best)
	for _, n := range nodes {
		if n != best && m.ReadyTime(n) >= Inf && m.Now(n) < bn {
			m.SkipTo(n, bn)
		}
	}
	return stepWork
}

// advanceTo implements Engine.AdvanceTo over a Model: skip every node to t,
// bounded by pending wakes, applying control events inside the gap (or a
// driver idling past a recovery would never thaw the node).
func advanceTo(m Model, t float64) {
	nodes := allNodes(m.NumNodes())
	for {
		bound := t
		for _, n := range nodes {
			if e := m.NextWake(n); e < bound {
				bound = e
			}
		}
		evN, evT := nextEvent(m, nodes)
		evDue := evN >= 0 && evT <= bound
		if evDue && evT < bound {
			bound = evT
		}
		for _, n := range nodes {
			m.SkipTo(n, bound)
		}
		if !evDue {
			break
		}
		m.ApplyEvent(evN)
	}
	m.NoteFrontier()
}
