package traffic

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bruteQuantile is the sort-all reference the recorder is cross-checked
// against: nearest-rank on a full copy.
func bruteQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func TestRecorderMatchesBruteForce(t *testing.T) {
	quants := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(400)
		var rec Recorder
		samples := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			var v float64
			switch rng.Intn(4) {
			case 0:
				v = 0 // zero-latency jobs
			case 1:
				v = float64(rng.Intn(5)) * 1e-3 // heavy duplicates
			default:
				v = rng.ExpFloat64() * 1e-2
			}
			rec.Observe(v)
			samples = append(samples, v)
			// Interleave queries with observations so the cache
			// invalidation path is exercised.
			if i%17 == 0 {
				for _, q := range quants {
					if got, want := rec.Quantile(q), bruteQuantile(samples, q); got != want {
						t.Fatalf("seed %d n %d q %g: recorder %g, brute force %g", seed, i+1, q, got, want)
					}
				}
			}
		}
		for _, q := range quants {
			if got, want := rec.Quantile(q), bruteQuantile(samples, q); got != want {
				t.Fatalf("seed %d q %g: recorder %g, brute force %g", seed, q, got, want)
			}
		}
		var sum, max float64
		for _, v := range samples {
			sum += v
			if v > max {
				max = v
			}
		}
		if got := rec.Max(); got != max {
			t.Fatalf("seed %d: max %g, want %g", seed, got, max)
		}
		if got, want := rec.Mean(), sum/float64(len(samples)); math.Abs(got-want) > 1e-15 {
			t.Fatalf("seed %d: mean %g, want %g", seed, got, want)
		}
	}
}

func TestRecorderEdgeCases(t *testing.T) {
	var empty Recorder
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 || empty.Max() != 0 || empty.Count() != 0 {
		t.Error("empty recorder must report zeros")
	}
	var one Recorder
	one.Observe(3.5)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 3.5 {
			t.Errorf("single-sample quantile(%g) = %g, want 3.5", q, got)
		}
	}
	var zeros Recorder
	for i := 0; i < 10; i++ {
		zeros.Observe(0)
	}
	if zeros.Quantile(0.99) != 0 || zeros.Max() != 0 {
		t.Error("all-zero samples must report zero quantiles")
	}
}

func TestSLOValidation(t *testing.T) {
	cases := []struct {
		slo SLO
		ok  bool
	}{
		{SLO{LatencyTargetSec: 1e-3, BudgetFrac: 0.1}, true},
		{SLO{LatencyTargetSec: 1e-3}, true},
		{SLO{}, false},
		{SLO{LatencyTargetSec: -1, BudgetFrac: 0.1}, false},
		{SLO{LatencyTargetSec: 1e-3, BudgetFrac: 1}, false},
		{SLO{LatencyTargetSec: 1e-3, BudgetFrac: -0.1}, false},
		{SLO{LatencyTargetSec: math.Inf(1)}, false},
	}
	for _, c := range cases {
		err := c.slo.Validate()
		if c.ok && err != nil {
			t.Errorf("%+v: unexpected error %v", c.slo, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%+v: validation passed, want error", c.slo)
		}
	}
}

func TestAccountant(t *testing.T) {
	a, err := NewAccountant(SLO{LatencyTargetSec: 1.0, BudgetFrac: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Healthy() || a.BudgetRemaining() != 1 {
		t.Error("fresh accountant must be healthy with a full budget")
	}
	// 3 good, 1 violating: rate 0.25 == budget, still healthy, budget spent.
	for _, v := range []float64{0.5, 0.9, 1.0, 1.5} {
		a.Observe(v)
	}
	if a.Violations() != 1 {
		t.Fatalf("violations = %d, want 1 (target is exclusive: 1.0 is not a violation)", a.Violations())
	}
	if got := a.ViolationRate(); got != 0.25 {
		t.Fatalf("violation rate = %g, want 0.25", got)
	}
	if !a.Healthy() {
		t.Error("rate at budget must still be healthy")
	}
	if got := a.BudgetRemaining(); math.Abs(got) > 1e-12 {
		t.Errorf("budget remaining = %g, want 0", got)
	}
	a.Observe(2.0)
	if a.Healthy() {
		t.Error("rate above budget must be unhealthy")
	}
	rep := a.Report()
	if rep.Violations != 2 || rep.Healthy || rep.Count != 5 || rep.TargetSec != 1.0 {
		t.Errorf("report %+v inconsistent", rep)
	}
	if rep.P99Sec != 2.0 {
		t.Errorf("report p99 = %g, want 2.0", rep.P99Sec)
	}

	zero, err := NewAccountant(SLO{LatencyTargetSec: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	zero.Observe(0.5)
	if !zero.Healthy() || zero.BudgetRemaining() != 1 {
		t.Error("zero-budget accountant must stay healthy while clean")
	}
	zero.Observe(1.5)
	if zero.Healthy() || zero.BudgetRemaining() != -1 {
		t.Error("zero-budget accountant must go unhealthy on the first violation")
	}
}

// TestRecorderObserveAfterSummary is the sorted-cache regression test: a
// Summary (or any Quantile call) sorts and caches the sample set, and an
// Observe arriving afterwards must invalidate that cache, not serve
// quantiles from the stale order. The storm study's phase scorecards
// interleave exactly this way.
func TestRecorderObserveAfterSummary(t *testing.T) {
	var rec Recorder
	for _, v := range []float64{0.3, 0.1, 0.2} {
		rec.Observe(v)
	}
	s := rec.Summary()
	if s.P50Sec != 0.2 || s.MaxSec != 0.3 {
		t.Fatalf("pre-append summary %+v, want p50=0.2 max=0.3", s)
	}

	// A new minimum and a new maximum, observed after the cache was built.
	rec.Observe(0.05)
	rec.Observe(0.9)

	if got := rec.Quantile(0); got != 0.05 {
		t.Errorf("min after append = %g, want 0.05 (stale sorted cache?)", got)
	}
	if got := rec.Quantile(1); got != 0.9 {
		t.Errorf("max quantile after append = %g, want 0.9 (stale sorted cache?)", got)
	}
	s = rec.Summary()
	if s.Count != 5 || s.MaxSec != 0.9 || s.P50Sec != 0.2 {
		t.Errorf("post-append summary %+v, want count=5 max=0.9 p50=0.2", s)
	}
	if want := (0.3 + 0.1 + 0.2 + 0.05 + 0.9) / 5; math.Abs(s.MeanSec-want) > 1e-15 {
		t.Errorf("post-append mean %g, want %g", s.MeanSec, want)
	}

	// Alternating observe/query must stay exact every time.
	for i := 0; i < 10; i++ {
		v := float64(i) * 1e-3
		rec.Observe(v)
		if got := rec.Quantile(0); got != 0.0 && i > 0 {
			t.Fatalf("step %d: min = %g, want 0", i, got)
		}
		if got := rec.Quantile(1); got != 0.9 {
			t.Fatalf("step %d: max quantile = %g, want 0.9", i, got)
		}
	}
}
