package traffic

import (
	"fmt"
	"math"
	"sort"
)

// Recorder is a streaming per-job latency recorder with an exact
// deterministic quantile tracker: Observe is amortised O(1), quantiles are
// computed from the full sample set on demand (nearest-rank on the
// ascending order, so the answer is always an observed sample) and cached
// until the next observation. Exactness matters here: the sequential and
// parallel engines must produce bit-identical SLO reports, which an
// approximate sketch with engine-dependent merge order could not guarantee.
type Recorder struct {
	samples []float64
	sorted  []float64
	clean   bool
	sum     float64
	max     float64
}

// Observe records one latency sample (seconds).
func (r *Recorder) Observe(v float64) {
	r.samples = append(r.samples, v)
	r.clean = false
	r.sum += v
	if len(r.samples) == 1 || v > r.max {
		r.max = v
	}
}

// Count returns the number of samples observed.
func (r *Recorder) Count() int { return len(r.samples) }

// Mean returns the running mean, 0 when empty.
func (r *Recorder) Mean() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / float64(len(r.samples))
}

// Max returns the largest sample, 0 when empty.
func (r *Recorder) Max() float64 { return r.max }

// Quantile returns the exact q-quantile by the nearest-rank rule: the
// ceil(q*n)-th smallest sample (clamped to the observed range, so q <= 0 is
// the minimum and q >= 1 the maximum). Empty recorders return 0.
func (r *Recorder) Quantile(q float64) float64 {
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	if !r.clean {
		r.sorted = append(r.sorted[:0], r.samples...)
		sort.Float64s(r.sorted)
		r.clean = true
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return r.sorted[idx]
}

// Summary is the recorder's digest: the latency shape the fleet studies
// report per rollout wave.
type Summary struct {
	Count   int     `json:"count"`
	MeanSec float64 `json:"mean_sec"`
	MaxSec  float64 `json:"max_sec"`
	P50Sec  float64 `json:"p50_sec"`
	P95Sec  float64 `json:"p95_sec"`
	P99Sec  float64 `json:"p99_sec"`
}

// Summary digests the recorder.
func (r *Recorder) Summary() Summary {
	return Summary{
		Count:   r.Count(),
		MeanSec: r.Mean(),
		MaxSec:  r.Max(),
		P50Sec:  r.Quantile(0.50),
		P95Sec:  r.Quantile(0.95),
		P99Sec:  r.Quantile(0.99),
	}
}

// SLO is a per-job latency objective with an error budget: at most
// BudgetFrac of jobs may exceed the latency target.
type SLO struct {
	// LatencyTargetSec is the per-job sojourn-time target (queueing +
	// service + migration delay).
	LatencyTargetSec float64 `json:"latency_target_sec"`
	// BudgetFrac is the allowed violating fraction in [0, 1); a violation
	// rate above it makes the accountant unhealthy.
	BudgetFrac float64 `json:"budget_frac"`
}

// Validate rejects nonsensical objectives with actionable errors.
func (s SLO) Validate() error {
	if !(s.LatencyTargetSec > 0) || math.IsInf(s.LatencyTargetSec, 0) {
		return fmt.Errorf("traffic: SLO needs a positive finite latency target (got %g s)", s.LatencyTargetSec)
	}
	if s.BudgetFrac < 0 || s.BudgetFrac >= 1 {
		return fmt.Errorf("traffic: SLO error budget %g out of range [0, 1): it is the allowed violating fraction of jobs", s.BudgetFrac)
	}
	return nil
}

// Accountant tracks latency samples against an SLO.
type Accountant struct {
	slo        SLO
	rec        Recorder
	violations int
}

// NewAccountant builds an accountant for a validated SLO.
func NewAccountant(s SLO) (*Accountant, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Accountant{slo: s}, nil
}

// Observe records one job's latency and charges the budget if it violates.
func (a *Accountant) Observe(latencySec float64) {
	a.rec.Observe(latencySec)
	if latencySec > a.slo.LatencyTargetSec {
		a.violations++
	}
}

// Violations returns the count of jobs over the latency target.
func (a *Accountant) Violations() int { return a.violations }

// ViolationRate returns the violating fraction, 0 when empty.
func (a *Accountant) ViolationRate() float64 {
	if a.rec.Count() == 0 {
		return 0
	}
	return float64(a.violations) / float64(a.rec.Count())
}

// Healthy reports whether the violation rate is within the error budget.
func (a *Accountant) Healthy() bool { return a.ViolationRate() <= a.slo.BudgetFrac }

// BudgetRemaining returns the unspent fraction of the error budget (1 when
// untouched, negative when overspent). A zero budget returns 1 while clean
// and -1 on the first violation.
func (a *Accountant) BudgetRemaining() float64 {
	rate := a.ViolationRate()
	if a.slo.BudgetFrac == 0 {
		if rate > 0 {
			return -1
		}
		return 1
	}
	return 1 - rate/a.slo.BudgetFrac
}

// Report is the accountant's digest, embedded in fleet study rows.
type Report struct {
	Summary
	TargetSec       float64 `json:"target_sec"`
	BudgetFrac      float64 `json:"budget_frac"`
	Violations      int     `json:"violations"`
	ViolationRate   float64 `json:"violation_rate"`
	BudgetRemaining float64 `json:"budget_remaining"`
	Healthy         bool    `json:"healthy"`
}

// Report digests the accountant.
func (a *Accountant) Report() Report {
	return Report{
		Summary:         a.rec.Summary(),
		TargetSec:       a.slo.LatencyTargetSec,
		BudgetFrac:      a.slo.BudgetFrac,
		Violations:      a.violations,
		ViolationRate:   a.ViolationRate(),
		BudgetRemaining: a.BudgetRemaining(),
		Healthy:         a.Healthy(),
	}
}
