package traffic

import (
	"math"
	"math/rand"
	"testing"
)

func specFor(k Kind, rate float64, seed int64) Spec {
	return Spec{Kind: k, Rate: rate, Seed: seed}
}

// Same seed must produce a byte-identical arrival stream; a different seed
// must not.
func TestSourceDeterminism(t *testing.T) {
	const n = 500
	for _, k := range Kinds() {
		a, err := NewSource(specFor(k, 1000, 42))
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		b, err := NewSource(specFor(k, 1000, 42))
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		c, err := NewSource(specFor(k, 1000, 43))
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		sa, sb, sc := a.Arrivals(n), b.Arrivals(n), c.Arrivals(n)
		diff := false
		for i := 0; i < n; i++ {
			if math.Float64bits(sa[i]) != math.Float64bits(sb[i]) {
				t.Fatalf("%s: same seed diverged at arrival %d: %x vs %x",
					k, i, math.Float64bits(sa[i]), math.Float64bits(sb[i]))
			}
			if sa[i] != sc[i] {
				diff = true
			}
		}
		if !diff {
			t.Errorf("%s: seeds 42 and 43 produced identical streams", k)
		}
	}
}

// Arrival instants must be strictly increasing and positive.
func TestSourceMonotone(t *testing.T) {
	for _, k := range Kinds() {
		src, err := NewSource(specFor(k, 500, 7))
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		prev := 0.0
		for i, a := range src.Arrivals(2000) {
			if a <= prev {
				t.Fatalf("%s: arrival %d at %g not after %g", k, i, a, prev)
			}
			prev = a
		}
	}
}

// Property: over 200 seeds, each process's empirical rate matches the
// analytic mean rate Rate within tolerance. Per-seed estimates may wander
// (the bursty process especially), but the across-seed mean must converge.
func TestSourceMeanRate(t *testing.T) {
	const (
		rate  = 1000.0
		n     = 1500
		seeds = 200
	)
	for _, k := range Kinds() {
		var sum float64
		for seed := int64(0); seed < seeds; seed++ {
			src, err := NewSource(specFor(k, rate, seed))
			if err != nil {
				t.Fatalf("%s: %v", k, err)
			}
			arr := src.Arrivals(n)
			est := float64(n) / arr[n-1]
			sum += est
			if est < rate/3 || est > rate*3 {
				t.Errorf("%s seed %d: empirical rate %.1f wildly off %g", k, seed, est, rate)
			}
		}
		mean := sum / seeds
		if rel := math.Abs(mean-rate) / rate; rel > 0.05 {
			t.Errorf("%s: mean empirical rate %.1f deviates %.1f%% from analytic %g",
				k, mean, rel*100, rate)
		}
	}
}

// The bursty process must actually be burstier than Poisson: its
// inter-arrival coefficient of variation is well above 1.
func TestBurstyIsBursty(t *testing.T) {
	cv := func(k Kind) float64 {
		src, err := NewSource(specFor(k, 1000, 11))
		if err != nil {
			t.Fatal(err)
		}
		arr := src.Arrivals(20000)
		var sum, sumsq float64
		prev := 0.0
		for _, a := range arr {
			d := a - prev
			prev = a
			sum += d
			sumsq += d * d
		}
		n := float64(len(arr))
		mean := sum / n
		varr := sumsq/n - mean*mean
		return math.Sqrt(varr) / mean
	}
	p, b := cv(KindPoisson), cv(KindBursty)
	if p < 0.9 || p > 1.1 {
		t.Errorf("poisson CV %.2f not ~1", p)
	}
	if b < 1.5*p {
		t.Errorf("bursty CV %.2f not clearly above poisson CV %.2f", b, p)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"poisson ok", Spec{Kind: KindPoisson, Rate: 100}, true},
		{"diurnal ok", Spec{Kind: KindDiurnal, Rate: 100}, true},
		{"bursty ok", Spec{Kind: KindBursty, Rate: 100}, true},
		{"unknown kind", Spec{Kind: "fractal", Rate: 100}, false},
		{"zero rate", Spec{Kind: KindPoisson}, false},
		{"negative rate", Spec{Kind: KindPoisson, Rate: -5}, false},
		{"amplitude 1", Spec{Kind: KindDiurnal, Rate: 100, Amplitude: 1}, false},
		{"amplitude negative", Spec{Kind: KindDiurnal, Rate: 100, Amplitude: -0.5}, false},
		{"negative period", Spec{Kind: KindDiurnal, Rate: 100, PeriodSec: -1}, false},
		{"burst factor below 1", Spec{Kind: KindBursty, Rate: 100, BurstFactor: 0.5}, false},
		{"negative sojourn", Spec{Kind: KindBursty, Rate: 100, MeanCalmSec: -1}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(string(k))
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %q, %v", k, got, err)
		}
	}
	if got, err := ParseKind(" Poisson "); err != nil || got != KindPoisson {
		t.Errorf("ParseKind with case/space = %q, %v", got, err)
	}
	if _, err := ParseKind("uniform"); err == nil {
		t.Error("ParseKind(uniform) passed, want error")
	}
}

// Spacing must reproduce the source's stream as deltas and leave the
// generator rng untouched.
func TestSpacingAdapter(t *testing.T) {
	src, err := NewSource(specFor(KindPoisson, 1000, 5))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewSource(specFor(KindPoisson, 1000, 5))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Arrivals(100)
	sp := Spacing(src)
	rng := rand.New(rand.NewSource(1))
	before := rng.Int63()
	rng = rand.New(rand.NewSource(1))
	total := 0.0
	for i := 0; i < 100; i++ {
		d := sp(rng, i)
		if d <= 0 {
			t.Fatalf("spacing %d not positive: %g", i, d)
		}
		total += d
		if math.Abs(total-want[i]) > 1e-12*want[i] {
			t.Fatalf("spacing sum %g at %d, want arrival %g", total, i, want[i])
		}
	}
	if rng.Int63() != before {
		t.Error("Spacing consumed the generator rng; the job mix would shift with the arrival process")
	}
}
