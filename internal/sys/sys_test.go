package sys

import (
	"testing"

	"heterodc/internal/mem"
)

func TestMigrationFlagAddrsWithinVDSOPage(t *testing.T) {
	for tid := int64(0); tid < MaxVDSOThreads; tid++ {
		a := MigrationFlagAddr(tid)
		if a < mem.VDSOBase || a+8 > mem.VDSOBase+mem.PageSize {
			t.Fatalf("tid %d flag at %#x escapes the vDSO page", tid, a)
		}
	}
}

func TestFlagAddrsDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for tid := int64(0); tid < MaxVDSOThreads; tid++ {
		a := MigrationFlagAddr(tid)
		if seen[a] {
			t.Fatalf("tid %d flag address collides", tid)
		}
		seen[a] = true
	}
}

func TestMagicAddrsDoNotOverlapFlags(t *testing.T) {
	if VDSOTidAddr >= mem.VDSOBase+VDSOFlagsOff || VDSONodeAddr >= mem.VDSOBase+VDSOFlagsOff {
		t.Fatal("per-CPU words overlap the flag array")
	}
	if VDSOTidAddr == VDSONodeAddr {
		t.Fatal("tid and node words collide")
	}
}

func TestSyscallNumbersUnique(t *testing.T) {
	nums := []int64{
		SysExit, SysWrite, SysSbrk, SysGettime, SysSpawn, SysJoin, SysYield,
		SysMigrate, SysGetnode, SysGettid, SysOpen, SysRead, SysClose,
		SysExitThr, SysNcores, SysRand, SysMigHint,
	}
	seen := map[int64]bool{}
	for _, n := range nums {
		if seen[n] {
			t.Fatalf("syscall number %d reused", n)
		}
		seen[n] = true
	}
}
