// Package sys defines the system-call interface between compiled programs
// and the replicated-kernel OS, plus the layout of the vDSO page shared
// between user and kernel space (the page the scheduler uses to request
// migrations and migration points poll, as in the paper).
package sys

import "heterodc/internal/mem"

// Syscall numbers. The kernel presents the identical interface on every
// ISA, which is what makes the single operating environment possible.
const (
	SysExit    = 1  // exit(code): terminate the whole process
	SysWrite   = 2  // write(fd, buf, len) -> written
	SysSbrk    = 3  // sbrk(delta) -> old break
	SysGettime = 4  // gettime() -> simulated ns since boot
	SysSpawn   = 5  // spawn(fnptr, arg) -> tid (new thread in this process)
	SysJoin    = 6  // join(tid) -> exit value
	SysYield   = 7  // yield()
	SysMigrate = 8  // migrate(node): move this thread to another kernel
	SysGetnode = 9  // getnode() -> kernel/node id
	SysGettid  = 10 // gettid() -> thread id
	SysOpen    = 11 // open(path, flags) -> fd
	SysRead    = 12 // read(fd, buf, len) -> read
	SysClose   = 13 // close(fd) -> 0
	SysExitThr = 14 // exit_thread(value): terminate calling thread
	SysNcores  = 15 // ncores() -> cores on the current node
	SysRand    = 16 // rand() -> deterministic per-process PRNG value
	SysMigHint = 17 // migration hint (profiling aid; no-op in the kernel)
)

// Open flags.
const (
	ORdonly = 0
	OWronly = 1
	OCreate = 2
	OTrunc  = 4
)

// vDSO page layout (one page at mem.VDSOBase, mapped into every process):
//
//	+0   : current thread id (per-CPU value materialised by the core,
//	       analogous to reading the thread-pointer register)
//	+8   : current node id (same mechanism)
//	+64..: per-thread migration request words, indexed by tid:
//	       0 = no request, n+1 = please migrate to node n.
const (
	VDSOTidOff   = 0
	VDSONodeOff  = 8
	VDSOFlagsOff = 64
)

// VDSOTidAddr is the magic address reads of which yield the current tid.
const VDSOTidAddr = mem.VDSOBase + VDSOTidOff

// VDSONodeAddr yields the current node id.
const VDSONodeAddr = mem.VDSOBase + VDSONodeOff

// MigrationFlagAddr returns the address of thread tid's migration word.
func MigrationFlagAddr(tid int64) uint64 {
	return mem.VDSOBase + VDSOFlagsOff + uint64(tid)*8
}

// MaxVDSOThreads is how many per-thread words fit in the vDSO page.
const MaxVDSOThreads = (mem.PageSize - VDSOFlagsOff) / 8
