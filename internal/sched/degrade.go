package sched

// This file is the open-loop driver's graceful-degradation control loop:
// SLO-error-budget-driven admission control (shed the lowest priorities
// while the budget burns, ramp back one level per healthy tick after the
// heal), brownout placement away from degraded nodes, and proactive
// evacuation of running jobs with per-job retry/timeout/capped-backoff
// on the migration itself. Everything here executes inside the driver's
// timer firings, so both time engines reproduce the same decisions
// byte-for-byte (the Horizon seam already bounds timer actions).

// HealthSource is the scheduler's view of a node-health layer (see
// member.Monitor). Tick is called from engine context at the control
// period; Degraded must be pure between ticks.
type HealthSource interface {
	Tick(now float64)
	Degraded(node int) bool
}

// Degrade configures graceful degradation for RunOpenLoop. The zero
// value of each field resolves to the default noted on it.
type Degrade struct {
	// Health scores nodes; nil disables brownout placement and
	// evacuation (admission control still works from the SLO budget).
	Health HealthSource
	// TickEvery is the control-loop period in seconds (default: the
	// runner's RebalanceEvery).
	TickEvery float64
	// Levels is the number of priority levels in the workload; the shed
	// cutoff saturates at Levels-1 so the top level is never shed
	// (default 1: nothing sheddable).
	Levels int
	// ShedBelow: when the SLO error-budget fraction remaining falls below
	// this, the cutoff rises one level per tick (default 0.25).
	ShedBelow float64
	// RecoverAbove: when the budget fraction is at or above this, the
	// cutoff ramps back down one level per tick — the recovery ramp
	// (default 0.5).
	RecoverAbove float64
	// EvacRetries bounds migration attempts per evacuation episode; an
	// episode that exhausts them times out and leaves the job where it is
	// (its checkpoints remain the fallback). Default 3.
	EvacRetries int
	// EvacBackoff is the delay before re-issuing an unacknowledged
	// evacuation migration; it doubles per retry up to EvacBackoffCap.
	// Defaults: TickEvery and 8*EvacBackoff.
	EvacBackoff    float64
	EvacBackoffCap float64
	// TolerateLoss accepts unrestorable job kills as OutcomeLost instead
	// of failing the run (shed+completed+lost == offered stays the
	// accounting identity).
	TolerateLoss bool
}

// withDefaults resolves the zero values against the runner.
func (g Degrade) withDefaults(r *Runner) Degrade {
	if g.TickEvery <= 0 {
		g.TickEvery = r.RebalanceEvery
	}
	if g.Levels <= 0 {
		g.Levels = 1
	}
	if g.ShedBelow == 0 {
		g.ShedBelow = 0.25
	}
	if g.RecoverAbove == 0 {
		g.RecoverAbove = 0.5
	}
	if g.EvacRetries <= 0 {
		g.EvacRetries = 3
	}
	if g.EvacBackoff <= 0 {
		g.EvacBackoff = g.TickEvery
	}
	if g.EvacBackoffCap <= 0 {
		g.EvacBackoffCap = 8 * g.EvacBackoff
	}
	return g
}

// controlTick runs one degradation control round: refresh health scores,
// adjust the admission cutoff from the SLO error budget, and drive
// evacuations off degraded nodes.
func (d *openLoopDriver) controlTick(now float64) {
	if h := d.deg.Health; h != nil {
		h.Tick(now)
	}
	rem := d.acct.BudgetRemaining()
	if rem < d.deg.ShedBelow {
		if d.cutoff < d.deg.Levels-1 {
			d.cutoff++
		}
	} else if rem >= d.deg.RecoverAbove && d.cutoff > 0 {
		d.cutoff--
	}
	if d.deg.Health != nil {
		d.evacuate(now)
	}
}

// evacuate sweeps the active set for jobs on degraded nodes and requests
// migrations off them. A request is only an intent — the thread must
// reach a migration point, the transfer can abort and roll back — so the
// episode is acknowledged by the cluster's migration event (see
// RunOpenLoop's OnMigration hook clearing evacFrom) and re-requested
// with doubled, capped backoff until it lands or EvacRetries attempts
// time the episode out.
func (d *openLoopDriver) evacuate(now float64) {
	h := d.deg.Health
	for _, jr := range d.st.Active {
		if jr.evacFrom < 0 {
			if !h.Degraded(jr.Node) || d.st.Cluster.NodeUnavailable(jr.Node) {
				continue // healthy, or fail-stopped (the detector's job)
			}
			jr.evacFrom = jr.Node
			jr.evacAttempts = 0
			jr.evacBackoff = d.deg.EvacBackoff
			jr.evacNext = now
		}
		if now < jr.evacNext {
			continue
		}
		if jr.evacAttempts >= d.deg.EvacRetries {
			// Timeout: abandon the episode; a later tick may open a new one
			// if the job is still stuck on a degraded node.
			jr.evacFrom = -1
			continue
		}
		dst := d.evacTarget(jr)
		if dst < 0 {
			// Nowhere healthy to go; hold position and retry after backoff.
			jr.evacAttempts++
			jr.evacNext = now + jr.evacBackoff
			jr.evacBackoff = minf(2*jr.evacBackoff, d.deg.EvacBackoffCap)
			continue
		}
		d.st.Cluster.RequestProcessMigration(jr.Proc, dst)
		d.evacReqs++
		jr.Node = dst
		jr.lastMove = now
		jr.evacAttempts++
		jr.evacNext = now + jr.evacBackoff
		jr.evacBackoff = minf(2*jr.evacBackoff, d.deg.EvacBackoffCap)
	}
}

// evacTarget picks the least-loaded healthy destination for an
// evacuating job, or -1 when none exists.
func (d *openLoopDriver) evacTarget(jr *JobRun) int {
	h := d.deg.Health
	w := d.r.Policy.Weights(d.st)
	best, bestScore := -1, 1e30
	for n := range d.st.Cluster.Kernels {
		if n == jr.evacFrom || w[n] <= 0 || d.st.Cluster.NodeUnavailable(n) || h.Degraded(n) {
			continue
		}
		score := (float64(d.st.ThreadsOn(n)) + float64(jr.Job.Threads)) / w[n]
		if score < bestScore {
			best, bestScore = n, score
		}
	}
	return best
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
