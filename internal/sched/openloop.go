package sched

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"heterodc/internal/ckpt"
	"heterodc/internal/kernel"
	"heterodc/internal/npb"
	"heterodc/internal/power"
	"heterodc/internal/traffic"
)

// OpenLoop is an arrival-driven workload: jobs are injected at their
// simulated arrival instants regardless of how many are already in flight
// (the warehouse traffic model), and every job's sojourn time is accounted
// against a latency SLO. Arrival stamps typically come from GenerateJobs
// with a traffic.Spacing hook.
type OpenLoop struct {
	Jobs []Job
	SLO  traffic.SLO
	// Degrade, when non-nil, arms graceful degradation: error-budget-driven
	// admission control, brownout placement away from degraded nodes and
	// proactive evacuation (see Degrade).
	Degrade *Degrade
}

// Job outcomes under graceful degradation.
const (
	// OutcomeCompleted: the job ran to completion (the only outcome
	// without a Degrade config).
	OutcomeCompleted = "completed"
	// OutcomeShed: admission control dropped the arrival to protect the
	// SLO error budget.
	OutcomeShed = "shed"
	// OutcomeLost: the job was killed by a failure and could not be
	// restored (Degrade.TolerateLoss accepted the loss).
	OutcomeLost = "lost"
)

// JobLatency is one job's latency decomposition and fate.
type JobLatency struct {
	ID int `json:"id"`
	// Node is the first placement (-1 for a shed arrival).
	Node       int     `json:"node"`
	Priority   int     `json:"priority"`
	ArrivalSec float64 `json:"arrival_sec"`
	ExitSec    float64 `json:"exit_sec"`
	// SojournSec is exit - arrival: admission queueing + service +
	// migration delay, the quantity the SLO binds. Zero for shed/lost jobs
	// (they are not SLO samples).
	SojournSec float64 `json:"sojourn_sec"`
	// Migrations and MigrationSec count the job's thread migrations and the
	// modelled transformation latency they paid.
	Migrations   int     `json:"migrations"`
	MigrationSec float64 `json:"migration_sec"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
}

// OpenLoopResult extends the closed-loop Result with SLO accounting.
type OpenLoopResult struct {
	Result
	Offered   int
	Completed int
	// Shed counts arrivals dropped by admission control; Lost counts jobs
	// killed by failures and accepted as lost (both zero without Degrade).
	Shed int
	Lost int
	// CheckpointedLost counts lost jobs that had a checkpoint image — a
	// restore should have saved them, so any nonzero value is an invariant
	// breach the storm experiment asserts on.
	CheckpointedLost int
	// EvacRequests counts proactive-evacuation migration requests issued
	// off degraded nodes (including retries).
	EvacRequests int
	// ThroughputJobsPerSec is completions over the horizon (the makespan).
	ThroughputJobsPerSec float64
	// SLO is the latency report: exact p50/p95/p99, violations, budget.
	// Only completed jobs are samples.
	SLO traffic.Report
	// Jobs holds the per-job records in ID order.
	Jobs []JobLatency
	// Ckpt and RestoreLog surface the checkpoint service's counters and
	// per-restore records (zero/nil without a checkpoint policy) — the
	// storm study's split-brain invariants are checked against them.
	Ckpt       ckpt.Stats
	RestoreLog []ckpt.RestoreRecord

	fingerprint string
}

// Fingerprint is a full-bit-precision digest of every engine-reproducible
// observable: per-job placement and timing, migration counts and the SLO
// report. The sequential and parallel engines must produce identical
// fingerprints for the same workload (energy is excluded: the meter
// integrates the same power over different interval boundaries, so its
// totals agree only up to float association).
func (r *OpenLoopResult) Fingerprint() string { return r.fingerprint }

// openLoopDriver is the kernel.TimerSource that injects jobs at their
// arrival instants and runs rebalance ticks, all in engine context so both
// time engines reproduce the same schedule byte-for-byte.
type openLoopDriver struct {
	r       *Runner
	st      *State
	mgr     *ckpt.Manager
	pending []Job
	acct    *traffic.Accountant
	byProc  map[*kernel.Process]*JobLatency
	jobs    []JobLatency
	done    int
	nextReb float64
	err     error

	// Graceful-degradation state (nil deg leaves every path above intact).
	deg      *Degrade
	ctlEvery float64
	nextCtl  float64
	cutoff   int // arrivals with Priority < cutoff are shed
	shed     int
	lost     int
	ckptLost int
	evacReqs int
}

// olInf mirrors the engine's "never" time.
const olInf = 1e30

func (d *openLoopDriver) NextDue() float64 {
	if d.err != nil {
		return olInf
	}
	t := olInf
	if len(d.pending) > 0 {
		t = d.pending[0].Arrival
	}
	if d.r.Policy.Dynamic() && len(d.st.Active) > 0 && d.nextReb < t {
		t = d.nextReb
	}
	if d.deg != nil && (len(d.pending) > 0 || len(d.st.Active) > 0) && d.nextCtl < t {
		t = d.nextCtl
	}
	return t
}

func (d *openLoopDriver) Fire(now float64) {
	if d.err != nil {
		return
	}
	d.retire()
	if d.deg != nil && now >= d.nextCtl {
		d.controlTick(now)
		d.nextCtl = now + d.ctlEvery
	}
	for len(d.pending) > 0 && d.pending[0].Arrival <= now {
		j := d.pending[0]
		d.pending = d.pending[1:]
		if d.deg != nil && j.Priority < d.cutoff {
			d.jobs[j.ID] = JobLatency{
				ID: j.ID, Node: -1, Priority: j.Priority,
				ArrivalSec: j.Arrival, Outcome: OutcomeShed,
			}
			d.shed++
			continue
		}
		if err := d.admit(j, now); err != nil {
			d.err = err
			return
		}
	}
	if d.r.Policy.Dynamic() && len(d.st.Active) > 0 && now >= d.nextReb {
		d.st.Now = now
		rebalance(d.st, d.r.Policy, d.r.Cooldown)
		d.nextReb = now + d.r.RebalanceEvery
	}
}

// admit builds, places and spawns one job at its arrival instant.
func (d *openLoopDriver) admit(j Job, now float64) error {
	img, err := npb.Build(j.Bench, j.Class, j.Threads)
	if err != nil {
		return err
	}
	node := place(d.st, d.r.Policy, j.Threads)
	p, err := d.st.Cluster.Spawn(img, node)
	if err != nil {
		return err
	}
	if d.mgr != nil {
		d.mgr.Track(p, img, d.r.Checkpoint)
	}
	d.st.Active = append(d.st.Active, &JobRun{
		Job: j, Proc: p, Node: node, Started: now, lastMove: now, evacFrom: -1,
	})
	d.jobs[j.ID] = JobLatency{ID: j.ID, Node: node, Priority: j.Priority, ArrivalSec: j.Arrival}
	d.byProc[p] = &d.jobs[j.ID]
	return nil
}

// retire sweeps completed jobs out of the active set and accounts their
// latencies. Timestamps come from the kernel's exit instants, so it is
// harmless that the sweep itself runs at event (or drain) granularity.
func (d *openLoopDriver) retire() {
	var live []*JobRun
	for _, jr := range d.st.Active {
		exited, _ := jr.Proc.Exited()
		if !exited {
			live = append(live, jr)
			continue
		}
		if err := jr.Proc.Err(); err != nil {
			if d.deg != nil && d.deg.TolerateLoss {
				// The job was killed by a failure and no restore replaced it
				// (a restore re-homes jr.Proc before the error ever surfaces
				// here). Account it lost instead of failing the run.
				jl := d.byProc[jr.Proc]
				delete(d.byProc, jr.Proc)
				jl.ExitSec = jr.Proc.ExitTime()
				jl.Outcome = OutcomeLost
				jr.Finished = jl.ExitSec
				d.lost++
				if d.mgr != nil && d.mgr.LatestImage(jr.Proc) != nil {
					d.ckptLost++
				}
				continue
			}
			d.err = fmt.Errorf("sched: open-loop job %d (%s.%s) failed: %w",
				jr.Job.ID, jr.Job.Bench, jr.Job.Class, err)
			live = append(live, jr)
			continue
		}
		jl := d.byProc[jr.Proc]
		delete(d.byProc, jr.Proc)
		jl.ExitSec = jr.Proc.ExitTime()
		jl.SojournSec = jl.ExitSec - jl.ArrivalSec
		jl.Outcome = OutcomeCompleted
		jr.Finished = jl.ExitSec
		d.acct.Observe(jl.SojournSec)
		d.done++
	}
	d.st.Active = live
}

// RunOpenLoop executes an open-loop workload to completion. Admission and
// rebalancing are driven through the cluster's timer-event hookup, so the
// whole run — placements, migrations, exits and the SLO report — is
// byte-identical under the sequential and parallel engines (a timer source
// pins the parallel engine to one inline group; see kernel/timer.go).
func (r *Runner) RunOpenLoop(w OpenLoop) (*OpenLoopResult, error) {
	if len(w.Jobs) == 0 {
		return nil, fmt.Errorf("sched: open-loop workload has no jobs")
	}
	acct, err := traffic.NewAccountant(w.SLO)
	if err != nil {
		return nil, err
	}
	cl := r.Cluster
	meter := power.NewMeter(cl, r.Models)
	st := &State{Cluster: cl}

	pending := append([]Job(nil), w.Jobs...)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].Arrival < pending[j].Arrival })
	for i, j := range pending {
		if j.ID < 0 || j.ID >= len(pending) {
			return nil, fmt.Errorf("sched: open-loop job %d has ID %d outside [0, %d)", i, j.ID, len(pending))
		}
		if j.Arrival < 0 {
			return nil, fmt.Errorf("sched: open-loop job %d arrives at negative time %g", j.ID, j.Arrival)
		}
	}

	d := &openLoopDriver{
		r: r, st: st, pending: pending, acct: acct,
		byProc:  make(map[*kernel.Process]*JobLatency),
		jobs:    make([]JobLatency, len(pending)),
		nextReb: r.RebalanceEvery,
	}
	if w.Degrade != nil {
		deg := w.Degrade.withDefaults(r)
		d.deg = &deg
		d.ctlEvery = deg.TickEvery
		d.nextCtl = deg.TickEvery
		if deg.Health != nil {
			// Brownout: placement and rebalancing steer away from nodes the
			// health layer marks degraded.
			st.Avoid = deg.Health.Degraded
		}
	}
	if r.Checkpoint.EveryPoints > 0 || r.Checkpoint.EverySeconds > 0 {
		d.mgr = ckpt.NewManager(cl)
		d.mgr.OnRestore = func(old, cur *kernel.Process, node int) {
			for _, jr := range st.Active {
				if jr.Proc == old {
					jr.Proc = cur
					jr.Node = node
					jr.lastMove = cl.Time()
				}
			}
			if jl, ok := d.byProc[old]; ok {
				delete(d.byProc, old)
				d.byProc[cur] = jl
			}
		}
	}

	migrations := 0
	cl.OnMigration = func(ev kernel.MigrationEvent) {
		migrations++
		for p, jl := range d.byProc {
			if p.Pid == ev.Pid {
				jl.Migrations++
				jl.MigrationSec += ev.XformSeconds
				break
			}
		}
		// A completed migration acknowledges any in-flight evacuation of
		// the job (the retry loop stops re-requesting it).
		for _, jr := range st.Active {
			if jr.Proc.Pid == ev.Pid && jr.evacFrom >= 0 {
				jr.evacFrom = -1
			}
		}
	}

	cl.SetTimerSource(d)
	defer cl.SetTimerSource(nil)
	for d.err == nil && d.done+d.shed+d.lost < len(pending) {
		if !cl.Step() {
			break
		}
	}
	d.retire()
	if d.err != nil {
		return nil, d.err
	}
	if d.done+d.shed+d.lost != len(pending) {
		return nil, fmt.Errorf("sched: open-loop run drained with %d/%d jobs unaccounted",
			len(pending)-d.done-d.shed-d.lost, len(pending))
	}

	// The horizon is the last exit instant, not cl.Time(): the outer Step
	// loop notices completion at engine granularity (quantum vs epoch), the
	// kernel exits at the same instant under both.
	horizon := 0.0
	for i := range d.jobs {
		if d.jobs[i].ExitSec > horizon {
			horizon = d.jobs[i].ExitSec
		}
	}

	res := &OpenLoopResult{
		Result: Result{
			Policy:     r.Policy.Name(),
			Makespan:   horizon,
			EnergyCPU:  meter.EnergyCPU(),
			Migrations: migrations,
		},
		Offered:          len(pending),
		Completed:        d.done,
		Shed:             d.shed,
		Lost:             d.lost,
		CheckpointedLost: d.ckptLost,
		EvacRequests:     d.evacReqs,
		SLO:              acct.Report(),
		Jobs:             d.jobs,
	}
	for _, e := range res.EnergyCPU {
		res.EnergyTotal += e
	}
	res.EDP = res.EnergyTotal * res.Makespan
	for i := range d.jobs {
		res.JobSeconds += d.jobs[i].SojournSec
	}
	if res.Makespan > 0 {
		res.ThroughputJobsPerSec = float64(res.Completed) / res.Makespan
	}
	if d.mgr != nil {
		ms := d.mgr.Stats()
		res.Checkpoints = ms.ImagesWritten
		res.Restores = ms.Restores
		res.Ckpt = ms
		res.RestoreLog = d.mgr.Restores()
	}
	res.fingerprint = openLoopFingerprint(res)
	return res, nil
}

// openLoopFingerprint digests every engine-reproducible observable at full
// bit precision.
func openLoopFingerprint(res *OpenLoopResult) string {
	var b strings.Builder
	bits := func(v float64) uint64 { return math.Float64bits(v) }
	fmt.Fprintf(&b, "policy=%s;jobs=%d;shed=%d;lost=%d;evac=%d;mig=%d;makespan=%016x;",
		res.Policy, res.Completed, res.Shed, res.Lost, res.EvacRequests, res.Migrations, bits(res.Makespan))
	for i := range res.Jobs {
		j := &res.Jobs[i]
		fmt.Fprintf(&b, "j%d:n%d:p%d:%s:a%016x:e%016x:m%d:x%016x;",
			j.ID, j.Node, j.Priority, j.Outcome, bits(j.ArrivalSec), bits(j.ExitSec), j.Migrations, bits(j.MigrationSec))
	}
	s := res.SLO
	fmt.Fprintf(&b, "p50=%016x;p95=%016x;p99=%016x;mean=%016x;max=%016x;viol=%d;",
		bits(s.P50Sec), bits(s.P95Sec), bits(s.P99Sec), bits(s.MeanSec), bits(s.MaxSec), s.Violations)
	return b.String()
}
