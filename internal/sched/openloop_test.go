package sched

import (
	"math"
	"math/rand"
	"testing"

	"heterodc/internal/npb"
	"heterodc/internal/topo"
	"heterodc/internal/traffic"
)

func openLoopJobs(t *testing.T, n int, rate float64) []Job {
	t.Helper()
	src, err := traffic.NewSource(traffic.Spec{
		Kind: traffic.KindPoisson, Rate: rate, Seed: 7,
	}.WithDefaults())
	if err != nil {
		t.Fatalf("source: %v", err)
	}
	return GenerateJobs(42, n, []npb.Class{npb.ClassS}, traffic.Spacing(src))
}

func runOpenLoop(t *testing.T, engine string) *OpenLoopResult {
	t.Helper()
	p := DynamicBalanced()
	cl, models, err := TestbedFor(p, true, topo.FlatSpec())
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	if engine == "par" {
		cl.UseParallelEngine(0)
	}
	r := NewRunner(cl, p, models)
	r.RebalanceEvery = 2e-3
	r.Cooldown = 4e-3
	res, err := r.RunOpenLoop(OpenLoop{
		Jobs: openLoopJobs(t, 10, 400),
		SLO:  traffic.SLO{LatencyTargetSec: 0.5, BudgetFrac: 0.5},
	})
	if err != nil {
		t.Fatalf("open-loop run (%s): %v", engine, err)
	}
	return res
}

func TestOpenLoopCompletes(t *testing.T) {
	res := runOpenLoop(t, "seq")
	if res.Completed != res.Offered || res.Completed != 10 {
		t.Fatalf("completed %d/%d jobs", res.Completed, res.Offered)
	}
	if res.SLO.Summary.Count != 10 {
		t.Errorf("SLO report counted %d samples, want 10", res.SLO.Summary.Count)
	}
	lastArrival := 0.0
	for _, j := range res.Jobs {
		if j.SojournSec <= 0 {
			t.Errorf("job %d has non-positive sojourn %g", j.ID, j.SojournSec)
		}
		if j.ExitSec < j.ArrivalSec {
			t.Errorf("job %d exits at %g before arriving at %g", j.ID, j.ExitSec, j.ArrivalSec)
		}
		if j.ArrivalSec > lastArrival {
			lastArrival = j.ArrivalSec
		}
	}
	if res.Makespan < lastArrival {
		t.Errorf("makespan %g precedes last arrival %g", res.Makespan, lastArrival)
	}
	if res.ThroughputJobsPerSec <= 0 {
		t.Errorf("non-positive throughput %g", res.ThroughputJobsPerSec)
	}
	if res.SLO.Violations > res.SLO.Summary.Count {
		t.Errorf("violations %d exceed sample count %d", res.SLO.Violations, res.SLO.Summary.Count)
	}
	t.Logf("open-loop: makespan=%.4fs p50=%.4f p99=%.4f viol=%d mig=%d",
		res.Makespan, res.SLO.Summary.P50Sec, res.SLO.Summary.P99Sec, res.SLO.Violations, res.Migrations)
}

// TestOpenLoopEngineIdentical is the heart of the open-loop design: admission
// and rebalancing run as engine control events, so the sequential and
// parallel engines must produce bit-identical per-job timings and SLO
// reports.
func TestOpenLoopEngineIdentical(t *testing.T) {
	seq := runOpenLoop(t, "seq")
	par := runOpenLoop(t, "par")
	if seq.Fingerprint() != par.Fingerprint() {
		t.Fatalf("engine fingerprints diverge:\nseq %s\npar %s", seq.Fingerprint(), par.Fingerprint())
	}
	if seq.SLO.Summary.P99Sec != par.SLO.Summary.P99Sec {
		t.Errorf("p99 diverges: seq %v par %v", seq.SLO.Summary.P99Sec, par.SLO.Summary.P99Sec)
	}
}

func TestOpenLoopValidation(t *testing.T) {
	p := StaticHetBalanced()
	cl, models, err := TestbedFor(p, true, topo.FlatSpec())
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	r := NewRunner(cl, p, models)
	if _, err := r.RunOpenLoop(OpenLoop{SLO: traffic.SLO{LatencyTargetSec: 1, BudgetFrac: 0.1}}); err == nil {
		t.Errorf("empty workload accepted")
	}
	if _, err := r.RunOpenLoop(OpenLoop{
		Jobs: smallJobs(2),
		SLO:  traffic.SLO{LatencyTargetSec: -1, BudgetFrac: 0.1},
	}); err == nil {
		t.Errorf("negative SLO target accepted")
	}
	bad := smallJobs(2)
	bad[1].Arrival = -0.5
	if _, err := r.RunOpenLoop(OpenLoop{
		Jobs: bad,
		SLO:  traffic.SLO{LatencyTargetSec: 1, BudgetFrac: 0.1},
	}); err == nil {
		t.Errorf("negative arrival accepted")
	}
}

// TestArrivalSpacingSeam pins the arrivalSpacing seam the open-loop mode is
// built on: the hook's deltas accumulate into arrival stamps, the stream is
// seed-stable, order is preserved, and a traffic-driven hook leaves the job
// mix untouched.
func TestArrivalSpacingSeam(t *testing.T) {
	spacing := func(r *rand.Rand, i int) float64 { return 0.25 * float64(i+1) }
	jobs := GenerateJobs(9, 6, nil, spacing)
	want := 0.0
	for i, j := range jobs {
		want += 0.25 * float64(i+1)
		if j.Arrival != want {
			t.Errorf("job %d arrival %g, want cumulative %g", i, j.Arrival, want)
		}
		if j.ID != i {
			t.Errorf("job %d has ID %d: generation must preserve order", i, j.ID)
		}
	}

	// Seed stability: same seed, same hook => bit-identical stream.
	src1, _ := traffic.NewSource(traffic.Spec{Kind: traffic.KindBursty, Rate: 200, Seed: 5}.WithDefaults())
	src2, _ := traffic.NewSource(traffic.Spec{Kind: traffic.KindBursty, Rate: 200, Seed: 5}.WithDefaults())
	a := GenerateJobs(11, 40, nil, traffic.Spacing(src1))
	b := GenerateJobs(11, 40, nil, traffic.Spacing(src2))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
		if math.Float64bits(a[i].Arrival) != math.Float64bits(b[i].Arrival) {
			t.Fatalf("job %d arrival bits differ", i)
		}
		if i > 0 && a[i].Arrival < a[i-1].Arrival {
			t.Errorf("arrivals out of order at %d: %g < %g", i, a[i].Arrival, a[i-1].Arrival)
		}
	}

	// The traffic.Spacing hook must not perturb the job mix: the same job
	// seed draws the same bench/class/thread sequence with or without it.
	src3, _ := traffic.NewSource(traffic.Spec{Kind: traffic.KindDiurnal, Rate: 300, Seed: 17}.WithDefaults())
	mixed := GenerateJobs(11, 40, nil, traffic.Spacing(src3))
	plain := GenerateJobs(11, 40, nil, nil)
	for i := range plain {
		if mixed[i].Bench != plain[i].Bench || mixed[i].Class != plain[i].Class ||
			mixed[i].Threads != plain[i].Threads {
			t.Fatalf("job %d mix changed by arrival hook: %+v vs %+v", i, mixed[i], plain[i])
		}
	}
}
