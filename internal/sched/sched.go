// Package sched implements the datacenter-level job scheduling studies of
// the paper's evaluation: static policies that assign jobs to machines at
// arrival and can never move them, and dynamic policies that exploit
// heterogeneous-ISA migration to rebalance running jobs between the x86 and
// ARM machines (balanced and unbalanced variants, as in Section 6).
package sched

import (
	"fmt"
	"math/rand"
	"sort"

	"heterodc/internal/ckpt"
	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/npb"
	"heterodc/internal/power"
	"heterodc/internal/topo"
)

// Job is one schedulable unit: a benchmark instance.
type Job struct {
	ID      int
	Bench   npb.Bench
	Class   npb.Class
	Threads int
	// Arrival is the simulated arrival time in seconds.
	Arrival float64
	// Priority ranks the job for admission control under degradation:
	// 0 is the most sheddable, higher values are protected longer.
	Priority int
}

// JobRun tracks a job through execution.
type JobRun struct {
	Job      Job
	Proc     *kernel.Process
	Node     int
	Started  float64
	Finished float64
	// lastMove rate-limits migrations.
	lastMove float64
	// Proactive-evacuation bookkeeping (see openLoopDriver.evacuate):
	// evacFrom is the degraded node being fled (-1 when no evacuation is
	// in flight), the rest implement per-job retry with capped backoff.
	evacFrom     int
	evacAttempts int
	evacNext     float64
	evacBackoff  float64
}

// State is the scheduler's view of the cluster.
type State struct {
	Cluster *kernel.Cluster
	Active  []*JobRun
	Now     float64
	// Avoid, when set, marks nodes placement should treat as last-resort
	// (the brownout signal): place prefers other nodes and rebalance never
	// migrates toward them. Jobs still land on avoided nodes when nothing
	// else is available.
	Avoid func(node int) bool
}

// ThreadsOn returns the number of job threads currently assigned to node.
func (s *State) ThreadsOn(node int) int {
	n := 0
	for _, r := range s.Active {
		if r.Node == node {
			n += r.Job.Threads
		}
	}
	return n
}

// Policy decides placement and (for dynamic policies) migration.
type Policy interface {
	Name() string
	// Weights returns per-node load weights: placement minimises
	// threads/weight. A weight of 0 disables a node.
	Weights(s *State) []float64
	// Dynamic reports whether the policy migrates running jobs.
	Dynamic() bool
}

// balancedPolicy spreads threads evenly (equal weights).
type balancedPolicy struct {
	name    string
	dynamic bool
}

func (p *balancedPolicy) Name() string { return p.name }
func (p *balancedPolicy) Weights(s *State) []float64 {
	w := make([]float64, len(s.Cluster.Kernels))
	for i := range w {
		w[i] = 1
	}
	return w
}
func (p *balancedPolicy) Dynamic() bool { return p.dynamic }

// unbalancedPolicy keeps the x86 machine (node 0) loaded heavier, the
// energy-saving arrangement the paper builds on DeVuyst et al.'s
// unbalanced-scheduling observation.
type unbalancedPolicy struct {
	name    string
	dynamic bool
	// ratio is node-0 threads per node-1 thread.
	ratio float64
}

func (p *unbalancedPolicy) Name() string { return p.name }
func (p *unbalancedPolicy) Weights(s *State) []float64 {
	w := make([]float64, len(s.Cluster.Kernels))
	for i := range w {
		w[i] = 1
	}
	if len(w) > 0 {
		w[0] = p.ratio
	}
	return w
}
func (p *unbalancedPolicy) Dynamic() bool { return p.dynamic }

// The paper's five policies.

// StaticX86Pair: balance across two identical x86 machines, no migration
// (the baseline the energy savings are measured against).
func StaticX86Pair() Policy { return &balancedPolicy{name: "static x86(2)"} }

// StaticHetBalanced: balance across x86+ARM, no migration.
func StaticHetBalanced() Policy { return &balancedPolicy{name: "static het balanced"} }

// StaticHetUnbalanced: weight x86 heavier, no migration.
func StaticHetUnbalanced() Policy {
	return &unbalancedPolicy{name: "static het unbalanced", ratio: 2.2}
}

// DynamicBalanced: balance thread counts and migrate to repair imbalance.
func DynamicBalanced() Policy {
	return &balancedPolicy{name: "dynamic balanced", dynamic: true}
}

// DynamicUnbalanced: keep x86 heavier and migrate to maintain the skew.
func DynamicUnbalanced() Policy {
	return &unbalancedPolicy{name: "dynamic unbalanced", dynamic: true, ratio: 2.2}
}

// place picks the node minimising threads/weight (ties to lower index).
// Crashed nodes take no new work and avoided (degraded) nodes are a last
// resort; if every node is down the lowest index is returned and the job
// waits there for a recovery.
func place(s *State, p Policy, threads int) int {
	if n, ok := placePass(s, p, threads, true); ok {
		return n
	}
	n, _ := placePass(s, p, threads, false)
	return n
}

// placePass runs one placement sweep; honorAvoid skips brownout nodes.
// ok=false when no node was eligible.
func placePass(s *State, p Policy, threads int, honorAvoid bool) (int, bool) {
	w := p.Weights(s)
	best, bestScore, found := 0, 1e30, false
	for n := range s.Cluster.Kernels {
		if w[n] <= 0 || s.Cluster.NodeUnavailable(n) {
			continue
		}
		if honorAvoid && s.Avoid != nil && s.Avoid(n) {
			continue
		}
		score := (float64(s.ThreadsOn(n)) + float64(threads)) / w[n]
		if score < bestScore {
			best, bestScore, found = n, score, true
		}
	}
	return best, found
}

// rebalance requests one migration if it improves the weighted balance.
func rebalance(s *State, p Policy, cooldown float64) {
	if len(s.Cluster.Kernels) < 2 {
		return
	}
	w := p.Weights(s)
	type load struct {
		node  int
		score float64
	}
	loads := make([]load, 0, len(w))
	for n := range s.Cluster.Kernels {
		if w[n] <= 0 || s.Cluster.NodeUnavailable(n) {
			// An unavailable node — crashed under the oracle, *suspected* when
			// a failure detector is installed — neither gives up jobs (its
			// threads are frozen until recovery) nor receives them; once it is
			// readmitted it re-enters the balance and load flows back.
			continue
		}
		loads = append(loads, load{n, float64(s.ThreadsOn(n)) / w[n]})
	}
	if len(loads) < 2 {
		return
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i].score > loads[j].score })
	from, to := loads[0], loads[len(loads)-1]
	if s.Avoid != nil && s.Avoid(to.node) {
		// Brownout: never migrate toward an avoided node; pick the least
		// loaded candidate outside the avoided set, or stand pat.
		to = from
		for i := len(loads) - 1; i > 0; i-- {
			if !s.Avoid(loads[i].node) {
				to = loads[i]
				break
			}
		}
	}
	if from.score <= to.score {
		return
	}
	// Find the job on `from` whose move best narrows the gap.
	var best *JobRun
	bestGap := from.score - to.score
	for _, r := range s.Active {
		if r.Node != from.node {
			continue
		}
		if s.Now-r.lastMove < cooldown {
			continue
		}
		t := float64(r.Job.Threads)
		newFrom := (float64(s.ThreadsOn(from.node)) - t) / w[from.node]
		newTo := (float64(s.ThreadsOn(to.node)) + t) / w[to.node]
		gap := newFrom - newTo
		if gap < 0 {
			gap = -gap
		}
		if gap < bestGap {
			bestGap = gap
			best = r
		}
	}
	if best != nil {
		s.Cluster.RequestProcessMigration(best.Proc, to.node)
		best.Node = to.node
		best.lastMove = s.Now
	}
}

// Workload is a set of jobs plus an admission mode.
type Workload struct {
	Jobs []Job
	// Concurrency, when > 0, runs the sustained mode: at most this many
	// jobs in flight, the next one starting as soon as one finishes
	// (arrival times are ignored).
	Concurrency int
}

// Result summarises one workload execution.
type Result struct {
	Policy   string
	Makespan float64
	// EnergyCPU per node and total (joules, package power).
	EnergyCPU   []float64
	EnergyTotal float64
	// EDP is energy * makespan.
	EDP float64
	// Migrations counts job container moves.
	Migrations int
	// JobSeconds is the per-job turnaround sum.
	JobSeconds float64
	// Checkpoints and Restores count checkpoint images written and crash
	// recoveries performed when the runner's Checkpoint policy is enabled.
	Checkpoints int
	Restores    int
}

// Runner executes a workload under a policy on a cluster.
type Runner struct {
	Cluster *kernel.Cluster
	Policy  Policy
	Models  []power.Model
	// RebalanceEvery is the dynamic policy's decision interval (seconds).
	RebalanceEvery float64
	// Cooldown is the per-job migration rate limit.
	Cooldown float64
	// Checkpoint, when enabled, checkpoints every job under this policy and
	// restores jobs stranded by a permanent node crash onto a surviving node
	// from their latest image (the scheduler re-places them there).
	Checkpoint kernel.CkptPolicy
}

// NewRunner builds a runner with testbed defaults.
func NewRunner(cl *kernel.Cluster, p Policy, models []power.Model) *Runner {
	return &Runner{
		Cluster: cl, Policy: p, Models: models,
		RebalanceEvery: 5e-3, Cooldown: 20e-3,
	}
}

// Run executes the workload to completion and reports energy and makespan.
func (r *Runner) Run(w Workload) (*Result, error) {
	cl := r.Cluster
	meter := power.NewMeter(cl, r.Models)
	st := &State{Cluster: cl}
	migrations := 0
	cl.OnMigration = func(ev kernel.MigrationEvent) { migrations++ }

	var mgr *ckpt.Manager
	if r.Checkpoint.EveryPoints > 0 || r.Checkpoint.EverySeconds > 0 {
		mgr = ckpt.NewManager(cl)
		mgr.OnRestore = func(old, cur *kernel.Process, node int) {
			// Re-home the scheduler's bookkeeping onto the restored
			// incarnation so the completion loop follows it.
			for _, jr := range st.Active {
				if jr.Proc == old {
					jr.Proc = cur
					jr.Node = node
					jr.lastMove = cl.Time()
				}
			}
		}
	}

	pending := append([]Job(nil), w.Jobs...)
	if w.Concurrency == 0 {
		sort.SliceStable(pending, func(i, j int) bool {
			return pending[i].Arrival < pending[j].Arrival
		})
	}
	var done []*JobRun
	nextRebalance := r.RebalanceEvery

	start := func(j Job) error {
		img, err := npb.Build(j.Bench, j.Class, j.Threads)
		if err != nil {
			return err
		}
		node := place(st, r.Policy, j.Threads)
		p, err := cl.Spawn(img, node)
		if err != nil {
			return err
		}
		if mgr != nil {
			mgr.Track(p, img, r.Checkpoint)
		}
		st.Active = append(st.Active, &JobRun{
			Job: j, Proc: p, Node: node, Started: cl.Time(), lastMove: cl.Time(),
		})
		return nil
	}

	// Seed initial jobs.
	if w.Concurrency > 0 {
		for len(st.Active) < w.Concurrency && len(pending) > 0 {
			if err := start(pending[0]); err != nil {
				return nil, err
			}
			pending = pending[1:]
		}
	}

	for len(pending) > 0 || len(st.Active) > 0 {
		now := cl.Time()
		st.Now = now

		// Admissions.
		if w.Concurrency == 0 {
			for len(pending) > 0 && pending[0].Arrival <= now {
				if err := start(pending[0]); err != nil {
					return nil, err
				}
				pending = pending[1:]
			}
		}

		// Completions: retire finished jobs, then start replacements (in
		// sustained mode) so placement sees the post-retirement load.
		var live []*JobRun
		finished := 0
		for _, jr := range st.Active {
			if exited, _ := jr.Proc.Exited(); exited {
				if err := jr.Proc.Err(); err != nil {
					return nil, fmt.Errorf("sched: job %d (%s.%s) failed: %w",
						jr.Job.ID, jr.Job.Bench, jr.Job.Class, err)
				}
				jr.Finished = now
				done = append(done, jr)
				finished++
				continue
			}
			live = append(live, jr)
		}
		st.Active = live
		if w.Concurrency > 0 {
			for i := 0; i < finished && len(pending) > 0; i++ {
				if err := start(pending[0]); err != nil {
					return nil, err
				}
				pending = pending[1:]
			}
		}

		// Rebalancing.
		if r.Policy.Dynamic() && now >= nextRebalance {
			rebalance(st, r.Policy, r.Cooldown)
			nextRebalance = now + r.RebalanceEvery
		}

		if len(st.Active) == 0 && len(pending) == 0 {
			break
		}
		if len(st.Active) == 0 && w.Concurrency == 0 && len(pending) > 0 && pending[0].Arrival > now {
			// Idle gap until the next arrival: advance the clock so idle
			// power integrates over the gap. AdvanceTo only skips clocks and
			// applies control events — with a membership service attached,
			// those events enqueue probe traffic whose deliveries pin the
			// skip below the arrival, so step the cluster through them and
			// keep advancing rather than spinning.
			cl.AdvanceTo(pending[0].Arrival)
			if cl.Time() < pending[0].Arrival {
				if !cl.Step() {
					return nil, fmt.Errorf("sched: cluster drained during idle gap before job %d", pending[0].ID)
				}
			}
			continue
		}
		if !cl.Step() {
			return nil, fmt.Errorf("sched: cluster drained with %d active jobs", len(st.Active))
		}
	}

	res := &Result{
		Policy:     r.Policy.Name(),
		Makespan:   cl.Time(),
		EnergyCPU:  meter.EnergyCPU(),
		Migrations: migrations,
	}
	for _, e := range res.EnergyCPU {
		res.EnergyTotal += e
	}
	res.EDP = res.EnergyTotal * res.Makespan
	for _, jr := range done {
		res.JobSeconds += jr.Finished - jr.Started
	}
	if mgr != nil {
		ms := mgr.Stats()
		res.Checkpoints = ms.ImagesWritten
		res.Restores = ms.Restores
	}
	return res, nil
}

// GenerateJobs draws n jobs uniformly from the paper's mix (NPB kernels in
// several classes plus bzip2smp and verus), deterministically from seed.
// classes weights the class distribution (repeat entries to skew it); nil
// selects a short/long mix.
func GenerateJobs(seed int64, n int, classes []npb.Class, arrivalSpacing func(r *rand.Rand, i int) float64) []Job {
	rng := rand.New(rand.NewSource(seed))
	benches := []npb.Bench{npb.EP, npb.IS, npb.CG, npb.FT, npb.SP, npb.BT, npb.MG, npb.Bzip2, npb.Verus}
	if len(classes) == 0 {
		classes = []npb.Class{npb.ClassS, npb.ClassA, npb.ClassA, npb.ClassB}
	}
	threadChoices := []int{1, 2, 4}
	var jobs []Job
	t := 0.0
	for i := 0; i < n; i++ {
		if arrivalSpacing != nil {
			t += arrivalSpacing(rng, i)
		}
		jobs = append(jobs, Job{
			ID:      i,
			Bench:   benches[rng.Intn(len(benches))],
			Class:   classes[rng.Intn(len(classes))],
			Threads: threadChoices[rng.Intn(len(threadChoices))],
			Arrival: t,
		})
	}
	return jobs
}

// StampPriorities assigns each job a deterministic priority in
// [0, levels) hashed from (seed, job ID). It deliberately does not draw
// from GenerateJobs's stream: stamping priorities on an existing
// workload leaves its job mix and arrival times untouched.
func StampPriorities(jobs []Job, seed int64, levels int) {
	if levels <= 1 {
		for i := range jobs {
			jobs[i].Priority = 0
		}
		return
	}
	for i := range jobs {
		x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(jobs[i].ID)*0xbf58476d1ce4e5b9
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		jobs[i].Priority = int(x % uint64(levels))
	}
}

// TestbedFor builds the right cluster for a policy: N identical x86
// machines for a "static x86(N)" homogeneous baseline, otherwise the
// heterogeneous x86+ARM testbed. projected applies the paper's McPAT FinFET
// projection to the ARM machine's power model. spec selects the
// interconnect fabric the machines are joined by — topo.FlatSpec() is the
// legacy single pipe, a fat-tree spec routes all traffic through a
// rack/spine topology.
func TestbedFor(p Policy, projected bool, spec topo.Spec) (*kernel.Cluster, []power.Model, error) {
	var n int
	if _, err := fmt.Sscanf(p.Name(), "static x86(%d)", &n); err == nil && n > 0 {
		arches := make([]isa.Arch, n)
		models := make([]power.Model, n)
		for i := range arches {
			arches[i] = isa.X86
			models[i] = power.XeonE5()
		}
		cl, _, err := kernel.NewClusterTopo(arches, kernel.DefaultInterconnect(), spec)
		if err != nil {
			return nil, nil, err
		}
		return cl, models, nil
	}
	cl := kernel.NewTestbed()
	if _, err := kernel.ApplyTopology(cl, spec); err != nil {
		return nil, nil, err
	}
	return cl, power.DefaultModels(cl, projected), nil
}

// RackArches returns the canonical n-node heterogeneous rack shape: the
// first ceil(n/2) machines are x86 servers, the rest ARM microservers —
// the 4-node rack-scale experiment's [x86, x86, arm, arm] generalised.
func RackArches(n int) []isa.Arch {
	arches := make([]isa.Arch, n)
	for i := range arches {
		if i < (n+1)/2 {
			arches[i] = isa.X86
		} else {
			arches[i] = isa.ARM64
		}
	}
	return arches
}

// NewBalanced builds a named balanced policy for arbitrary cluster shapes
// (the rack-scale extension uses it on four machines).
func NewBalanced(name string, dynamic bool) Policy {
	return &balancedPolicy{name: name, dynamic: dynamic}
}

// archWeightPolicy weights nodes by architecture: every x86 node gets
// X86Weight, every other node weight 1.
type archWeightPolicy struct {
	name      string
	dynamic   bool
	x86Weight float64
}

func (p *archWeightPolicy) Name() string { return p.name }
func (p *archWeightPolicy) Weights(s *State) []float64 {
	w := make([]float64, len(s.Cluster.Kernels))
	for i, k := range s.Cluster.Kernels {
		if k.Arch == isa.X86 {
			w[i] = p.x86Weight
		} else {
			w[i] = 1
		}
	}
	return w
}
func (p *archWeightPolicy) Dynamic() bool { return p.dynamic }

// NewArchWeighted builds a policy that keeps x86 machines loaded
// x86Weight-times heavier than the others, on any cluster shape.
func NewArchWeighted(name string, dynamic bool, x86Weight float64) Policy {
	return &archWeightPolicy{name: name, dynamic: dynamic, x86Weight: x86Weight}
}
