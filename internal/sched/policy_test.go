package sched

import (
	"math/rand"
	"testing"

	"heterodc/internal/core"
	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/npb"
)

func testState(arches ...isa.Arch) *State {
	cl := kernel.NewCluster(arches, kernel.DefaultInterconnect())
	return &State{Cluster: cl}
}

// addRun registers a synthetic running job backed by a real (trivial)
// process so migration requests have a target.
func addRun(s *State, node, threads int) *JobRun {
	img, err := core.Build("noop", core.Src("noop.c", `long main(void){ return 0; }`))
	if err != nil {
		panic(err)
	}
	p, err := s.Cluster.Spawn(img, node)
	if err != nil {
		panic(err)
	}
	r := &JobRun{Job: Job{Threads: threads}, Node: node, Proc: p}
	s.Active = append(s.Active, r)
	return r
}

func TestPlaceBalanced(t *testing.T) {
	s := testState(isa.X86, isa.ARM64)
	p := StaticHetBalanced()
	if n := place(s, p, 2); n != 0 {
		t.Fatalf("first placement on node %d, want 0 (tie to lower index)", n)
	}
	addRun(s, 0, 2)
	if n := place(s, p, 2); n != 1 {
		t.Fatalf("second placement on node %d, want 1", n)
	}
	addRun(s, 1, 2)
	addRun(s, 1, 4)
	if n := place(s, p, 1); n != 0 {
		t.Fatalf("placement on node %d, want the lighter node 0", n)
	}
}

func TestPlaceUnbalancedPrefersX86(t *testing.T) {
	s := testState(isa.X86, isa.ARM64)
	p := StaticHetUnbalanced() // x86 weight 2.2
	// With equal thread counts, x86's weight keeps attracting jobs.
	addRun(s, 0, 2)
	if n := place(s, p, 2); n != 0 {
		t.Fatalf("unbalanced placed on %d, want x86 (0)", n)
	}
	addRun(s, 0, 2)
	addRun(s, 0, 2)
	// 6 threads on x86 (weighted 6/2.2=2.7) vs 0 on ARM: next goes to ARM.
	if n := place(s, p, 2); n != 1 {
		t.Fatalf("overloaded x86 still attracts jobs")
	}
}

func TestRebalanceMovesFromOverloaded(t *testing.T) {
	s := testState(isa.X86, isa.ARM64)
	s.Now = 10
	p := DynamicBalanced()
	heavy := addRun(s, 0, 4)
	addRun(s, 0, 2)
	// Node 1 empty: the 4-thread job narrows the gap best iff moving it
	// leaves 2 vs 4... candidates: move 4 -> |2-4|=2 ; move 2 -> |4-2|=2.
	// Either is acceptable; the chosen job must end on node 1.
	rebalance(s, p, 1)
	moved := 0
	for _, r := range s.Active {
		if r.Node == 1 {
			moved++
		}
	}
	if moved != 1 {
		t.Fatalf("rebalance moved %d jobs, want 1", moved)
	}
	_ = heavy
}

func TestRebalanceRespectsCooldown(t *testing.T) {
	s := testState(isa.X86, isa.ARM64)
	s.Now = 1.0
	p := DynamicBalanced()
	a := addRun(s, 0, 4)
	b := addRun(s, 0, 2)
	a.lastMove, b.lastMove = 0.999, 0.999 // both just moved
	rebalance(s, p, 0.1)
	if a.Node != 0 || b.Node != 0 {
		t.Fatal("job moved during cooldown")
	}
	s.Now = 1.2
	rebalance(s, p, 0.1)
	moved := 0
	if a.Node == 1 {
		moved++
	}
	if b.Node == 1 {
		moved++
	}
	if moved != 1 {
		t.Fatalf("%d jobs moved after cooldown, want exactly 1", moved)
	}
}

func TestRebalanceNoopWhenBalanced(t *testing.T) {
	s := testState(isa.X86, isa.ARM64)
	s.Now = 10
	p := DynamicBalanced()
	a := addRun(s, 0, 2)
	b := addRun(s, 1, 2)
	rebalance(s, p, 0)
	if a.Node != 0 || b.Node != 1 {
		t.Fatal("balanced cluster was rebalanced")
	}
}

func TestArchWeightedPolicyWeights(t *testing.T) {
	s := testState(isa.X86, isa.ARM64, isa.ARM64, isa.X86)
	p := NewArchWeighted("rack", true, 3)
	w := p.Weights(s)
	want := []float64{3, 1, 1, 3}
	for i := range w {
		if w[i] != want[i] {
			t.Fatalf("weights %v, want %v", w, want)
		}
	}
	if !p.Dynamic() {
		t.Fatal("dynamic flag lost")
	}
}

func TestGenerateJobsDeterministic(t *testing.T) {
	a := GenerateJobs(99, 10, []npb.Class{npb.ClassS, npb.ClassA}, nil)
	b := GenerateJobs(99, 10, []npb.Class{npb.ClassS, npb.ClassA}, nil)
	if len(a) != 10 || len(b) != 10 {
		t.Fatal("job counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs across identical seeds", i)
		}
	}
	c := GenerateJobs(100, 10, []npb.Class{npb.ClassS}, nil)
	same := true
	for i := range a {
		if a[i].Bench != c[i].Bench || a[i].Threads != c[i].Threads {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical mixes (suspicious)")
	}
}

func TestGenerateJobsArrivalSpacing(t *testing.T) {
	jobs := GenerateJobs(5, 4, []npb.Class{npb.ClassS},
		func(_ *rand.Rand, i int) float64 { return 0.5 })
	for i, j := range jobs {
		want := 0.5 * float64(i+1)
		if j.Arrival != want {
			t.Fatalf("job %d arrival %v, want %v", i, j.Arrival, want)
		}
	}
}

func TestThreadsOn(t *testing.T) {
	s := testState(isa.X86, isa.ARM64)
	addRun(s, 0, 3)
	addRun(s, 1, 2)
	addRun(s, 0, 1)
	if s.ThreadsOn(0) != 4 || s.ThreadsOn(1) != 2 {
		t.Fatalf("threads: %d/%d", s.ThreadsOn(0), s.ThreadsOn(1))
	}
}
