package sched

import (
	"math/rand"
	"testing"

	"heterodc/internal/fault"
	"heterodc/internal/kernel"
	"heterodc/internal/member"
	"heterodc/internal/npb"
	"heterodc/internal/topo"
)

func smallJobs(n int) []Job {
	return GenerateJobs(42, n, []npb.Class{npb.ClassS}, nil)
}

func TestPoliciesCompleteSustained(t *testing.T) {
	jobs := []Job{
		{ID: 0, Bench: npb.EP, Class: npb.ClassS, Threads: 2},
		{ID: 1, Bench: npb.IS, Class: npb.ClassS, Threads: 2},
		{ID: 2, Bench: npb.CG, Class: npb.ClassS, Threads: 1},
		{ID: 3, Bench: npb.FT, Class: npb.ClassS, Threads: 2},
		{ID: 4, Bench: npb.Verus, Class: npb.ClassS, Threads: 1},
		{ID: 5, Bench: npb.SP, Class: npb.ClassS, Threads: 2},
	}
	for _, p := range []Policy{
		StaticX86Pair(), StaticHetBalanced(), StaticHetUnbalanced(),
		DynamicBalanced(), DynamicUnbalanced(),
	} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			cl, models, err := TestbedFor(p, true, topo.FlatSpec())
			if err != nil {
				t.Fatalf("testbed: %v", err)
			}
			r := NewRunner(cl, p, models)
			res, err := r.Run(Workload{Jobs: jobs, Concurrency: 3})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Makespan <= 0 {
				t.Errorf("zero makespan")
			}
			if res.EnergyTotal <= 0 {
				t.Errorf("zero energy")
			}
			t.Logf("%s: makespan=%.3fs energy=%.2fJ migrations=%d",
				p.Name(), res.Makespan, res.EnergyTotal, res.Migrations)
		})
	}
}

func TestDynamicPolicyMigrates(t *testing.T) {
	jobs := smallJobs(8)
	for i := range jobs {
		jobs[i].Class = npb.ClassS
		jobs[i].Arrival = 0
	}
	p := DynamicBalanced()
	cl, models, err := TestbedFor(p, true, topo.FlatSpec())
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	r := NewRunner(cl, p, models)
	r.RebalanceEvery = 1e-3
	r.Cooldown = 2e-3
	res, err := r.Run(Workload{Jobs: jobs, Concurrency: 6})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("dynamic: migrations=%d makespan=%.3f", res.Migrations, res.Makespan)
}

func TestPeriodicArrivalsIdleGaps(t *testing.T) {
	spacing := func(r *rand.Rand, i int) float64 {
		if i%3 == 0 {
			return 0.05 + 0.05*r.Float64()
		}
		return 0
	}
	jobs := GenerateJobs(7, 6, []npb.Class{npb.ClassS}, spacing)
	for i := range jobs {
		jobs[i].Class = npb.ClassS
		jobs[i].Threads = 1
	}
	p := StaticHetBalanced()
	cl, models, err := TestbedFor(p, true, topo.FlatSpec())
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	r := NewRunner(cl, p, models)
	res, err := r.Run(Workload{Jobs: jobs})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Makespan < jobs[len(jobs)-1].Arrival {
		t.Errorf("makespan %.3f before last arrival %.3f", res.Makespan, jobs[len(jobs)-1].Arrival)
	}
}

func TestPlacementSkipsCrashedNode(t *testing.T) {
	p := DynamicBalanced()
	cl, models, err := TestbedFor(p, true, topo.FlatSpec())
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	cl.InjectFaults(fault.Plan{Crashes: []fault.Crash{{Node: 1, At: 0, RecoverAt: 0}}})
	cl.CrashNode(1)
	st := &State{Cluster: cl}
	for i := 0; i < 4; i++ {
		if n := place(st, p, 2); n != 0 {
			t.Fatalf("placement %d chose crashed node %d", i, n)
		}
		st.Active = append(st.Active, &JobRun{Job: Job{Threads: 2}, Node: 0})
	}
	_ = models
}

func TestRebalanceIgnoresCrashedNode(t *testing.T) {
	p := DynamicBalanced()
	cl, _, err := TestbedFor(p, true, topo.FlatSpec())
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	img, err := npb.Build(npb.EP, npb.ClassS, 1)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := cl.Spawn(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl.CrashNode(1)
	// Node 0 is overloaded relative to (empty, crashed) node 1; with node 1
	// down there is no live target, so no migration is requested.
	st := &State{Cluster: cl, Active: []*JobRun{
		{Job: Job{Threads: 4}, Proc: proc, Node: 0},
		{Job: Job{Threads: 4}, Proc: proc, Node: 0},
	}, Now: 1.0}
	rebalance(st, p, 0)
	for _, jr := range st.Active {
		if jr.Node != 0 {
			t.Fatal("rebalance moved a job onto a crashed node")
		}
	}
	// After recovery the node is a target again.
	cl.RecoverNode(1)
	rebalance(st, p, 0)
	moved := false
	for _, jr := range st.Active {
		if jr.Node == 1 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("rebalance ignored the recovered node")
	}
}

// TestRunnerCheckpointRecovery: with the checkpoint policy enabled, a
// permanent node-1 crash must not fail the workload — jobs stranded on the
// dead node are restored from their latest image on node 0 and the run
// completes, reporting the recovery in the result.
func TestRunnerCheckpointRecovery(t *testing.T) {
	jobs := []Job{
		{ID: 0, Bench: npb.EP, Class: npb.ClassS, Threads: 1},
		{ID: 1, Bench: npb.IS, Class: npb.ClassS, Threads: 1},
		{ID: 2, Bench: npb.CG, Class: npb.ClassS, Threads: 1},
		{ID: 3, Bench: npb.IS, Class: npb.ClassS, Threads: 1},
	}
	p := StaticHetBalanced() // half the jobs start on node 1
	cl, models, err := TestbedFor(p, true, topo.FlatSpec())
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	// Node 1 dies for good mid-run, after at least one checkpoint interval.
	cl.InjectFaults(fault.Plan{Seed: 5, Crashes: []fault.Crash{{Node: 1, At: 1e-3, RecoverAt: 0}}})
	r := NewRunner(cl, p, models)
	r.Checkpoint = kernel.CkptPolicy{EverySeconds: 2e-4}
	res, err := r.Run(Workload{Jobs: jobs, Concurrency: 4})
	if err != nil {
		t.Fatalf("run with permanent crash: %v", err)
	}
	if res.Restores < 1 {
		t.Errorf("no job was restored from checkpoint (restores=%d)", res.Restores)
	}
	if res.Checkpoints < len(jobs) {
		t.Errorf("implausibly few checkpoints: %d", res.Checkpoints)
	}
}

// TestRunnerIdleGapsNoFalseSuspicions: with a SWIM membership service
// attached, workload idle gaps far longer than the suspicion timeout must
// not read as silence — the runner steps the cluster through the gap (the
// detector keeps probing on schedule), so a healthy fleet finishes with
// zero suspicions.
func TestRunnerIdleGapsNoFalseSuspicions(t *testing.T) {
	spacing := func(r *rand.Rand, i int) float64 {
		if i%2 == 1 {
			return 0.05 + 0.05*r.Float64() // gap >> SuspectTimeout (3ms)
		}
		return 0
	}
	jobs := GenerateJobs(9, 4, []npb.Class{npb.ClassS}, spacing)
	for i := range jobs {
		jobs[i].Class = npb.ClassS
		jobs[i].Threads = 1
	}
	p := StaticHetBalanced()
	cl, models, err := TestbedFor(p, true, topo.FlatSpec())
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	svc, err := member.Attach(cl, member.Config{HeartbeatPeriod: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(cl, p, models)
	res, err := r.Run(Workload{Jobs: jobs})
	if err != nil {
		t.Fatalf("run with membership attached: %v", err)
	}
	if res.Makespan < jobs[len(jobs)-1].Arrival {
		t.Errorf("makespan %.3f before last arrival %.3f", res.Makespan, jobs[len(jobs)-1].Arrival)
	}
	st := svc.Stats()
	if st.Suspicions != 0 || st.Deaths != 0 {
		t.Errorf("idle gaps produced false detector verdicts: %+v", st)
	}
	if st.Probes == 0 {
		t.Error("detector never probed across the workload")
	}
	for n := 0; n < cl.NumNodes(); n++ {
		for m := 0; m < cl.NumNodes(); m++ {
			if svc.View(n, m) != member.Alive {
				t.Errorf("view[%d][%d] = %v after a healthy run", n, m, svc.View(n, m))
			}
		}
	}
}

func TestRunnerSurvivesMidRunCrash(t *testing.T) {
	jobs := smallJobs(4)
	for i := range jobs {
		jobs[i].Class = npb.ClassS
		jobs[i].Arrival = 0
	}
	p := DynamicBalanced()
	cl, models, err := TestbedFor(p, true, topo.FlatSpec())
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	// Node 1 drops out almost immediately and comes back much later.
	cl.InjectFaults(fault.Plan{Seed: 3, Crashes: []fault.Crash{{Node: 1, At: 2e-3, RecoverAt: 30e-3}}})
	r := NewRunner(cl, p, models)
	res, err := r.Run(Workload{Jobs: jobs, Concurrency: 4})
	if err != nil {
		t.Fatalf("run with mid-run crash: %v", err)
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
}
