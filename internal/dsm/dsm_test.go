package dsm

import (
	"testing"
	"testing/quick"
)

func TestColdFaultGrantsExclusive(t *testing.T) {
	s := NewSpace(2)
	act, err := s.Fault(0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if !act.Cold || act.Grant != Exclusive || act.TransferFrom != -1 {
		t.Fatalf("cold fault action %+v", act)
	}
	if s.StateOf(0, 100) != Exclusive || s.Owner(100) != 0 {
		t.Fatal("directory not updated")
	}
}

func TestReadShareDowngradesOwner(t *testing.T) {
	s := NewSpace(2)
	mustFault(t, s, 0, 100, true) // cold, exclusive at 0
	act, err := s.Fault(1, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if act.TransferFrom != 0 || act.Grant != Shared {
		t.Fatalf("read fault action %+v", act)
	}
	if len(act.Protect) != 1 || act.Protect[0] != 0 {
		t.Fatalf("owner not downgraded: %+v", act)
	}
	if s.StateOf(0, 100) != Shared || s.StateOf(1, 100) != Shared {
		t.Fatal("states after share")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	s := NewSpace(2)
	mustFault(t, s, 0, 100, true)
	mustFault(t, s, 1, 100, false) // both shared
	act, err := s.Fault(1, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 upgrades in place; node 0's copy drops.
	if act.TransferFrom != -1 || act.Grant != Exclusive {
		t.Fatalf("upgrade action %+v", act)
	}
	if len(act.Drop) != 1 || act.Drop[0] != 0 {
		t.Fatalf("sharer not dropped: %+v", act)
	}
	if s.StateOf(0, 100) != Invalid || s.StateOf(1, 100) != Exclusive || s.Owner(100) != 1 {
		t.Fatal("directory after upgrade")
	}
}

func TestWriteTransferFromRemoteOwner(t *testing.T) {
	s := NewSpace(2)
	mustFault(t, s, 0, 100, true)
	act, err := s.Fault(1, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if act.TransferFrom != 0 || act.Grant != Exclusive {
		t.Fatalf("write-transfer action %+v", act)
	}
	if len(act.Drop) != 1 || act.Drop[0] != 0 {
		t.Fatalf("old owner kept a copy: %+v", act)
	}
}

func TestBogusFaultsRejected(t *testing.T) {
	s := NewSpace(2)
	mustFault(t, s, 0, 100, true)
	// Read fault while already present is a kernel bug.
	if _, err := s.Fault(0, 100, false); err == nil {
		t.Error("read fault on present page accepted")
	}
	if _, err := s.Fault(0, 100, true); err == nil {
		t.Error("write fault on exclusive page accepted")
	}
}

func TestSeed(t *testing.T) {
	s := NewSpace(2)
	s.Seed(1, 55)
	if s.Owner(55) != 1 || s.StateOf(1, 55) != Exclusive {
		t.Fatal("seed did not set ownership")
	}
	st := s.Stats(1)
	if st.ColdFaults != 0 {
		t.Fatal("seed counted as a fault")
	}
}

func TestStats(t *testing.T) {
	s := NewSpace(2)
	mustFault(t, s, 0, 1, true)
	mustFault(t, s, 1, 1, false)
	mustFault(t, s, 1, 1, true)
	s0, s1 := s.Stats(0), s.Stats(1)
	if s0.ColdFaults != 1 || s0.WriteFaults != 1 {
		t.Errorf("node0 stats %+v", s0)
	}
	if s1.ReadFaults != 1 || s1.WriteFaults != 1 || s1.PageIn != 1 || s1.Upgrades != 1 {
		t.Errorf("node1 stats %+v", s1)
	}
	if s0.Invalidates != 1 {
		t.Errorf("node0 invalidates %d", s0.Invalidates)
	}
}

func TestResidentPages(t *testing.T) {
	s := NewSpace(2)
	mustFault(t, s, 0, 1, true)
	mustFault(t, s, 0, 2, true)
	mustFault(t, s, 1, 1, false)
	sh, ex := s.ResidentPages(0)
	if sh != 1 || ex != 1 {
		t.Fatalf("node0 resident %d/%d", sh, ex)
	}
}

func TestForceOwn(t *testing.T) {
	s := NewSpace(2)
	mustFault(t, s, 0, 7, true)
	prev, moved := s.ForceOwn(1, 7)
	if prev != 0 || !moved {
		t.Fatalf("ForceOwn: %d %v", prev, moved)
	}
	if s.Owner(7) != 1 || s.StateOf(0, 7) != Invalid {
		t.Fatal("ownership not transferred")
	}
	if _, moved := s.ForceOwn(1, 7); moved {
		t.Fatal("self-transfer reported as move")
	}
	if _, moved := s.ForceOwn(1, 999); moved {
		t.Fatal("untouched page reported as move")
	}
}

func TestOwnedPages(t *testing.T) {
	s := NewSpace(2)
	mustFault(t, s, 0, 1, true)
	mustFault(t, s, 1, 2, true)
	got := s.OwnedPages()
	if len(got) != 2 {
		t.Fatalf("owned pages %v", got)
	}
}

// Property: single-writer invariant — after any sequence of legal faults,
// at most one node holds Exclusive, and if anyone does, nobody else holds
// any copy of that page.
func TestPropertySingleWriter(t *testing.T) {
	err := quick.Check(func(ops []uint8) bool {
		s := NewSpace(2)
		for _, op := range ops {
			node := int(op) & 1
			page := uint64((op >> 1) & 3)
			write := op&8 != 0
			// Only issue legal faults (as the kernel would: it faults only
			// on access violations).
			st := s.StateOf(node, page)
			if st == Exclusive || (st == Shared && !write) {
				continue
			}
			if _, err := s.Fault(node, page, write); err != nil {
				return false
			}
			// Check the invariant.
			for pg := uint64(0); pg < 4; pg++ {
				excl := 0
				copies := 0
				for n := 0; n < 2; n++ {
					switch s.StateOf(n, pg) {
					case Exclusive:
						excl++
						copies++
					case Shared:
						copies++
					}
				}
				if excl > 1 || (excl == 1 && copies != 1) {
					return false
				}
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func mustFault(t *testing.T, s *Space, node int, page uint64, write bool) Action {
	t.Helper()
	act, err := s.Fault(node, page, write)
	if err != nil {
		t.Fatalf("fault(%d,%d,%v): %v", node, page, write, err)
	}
	return act
}

func TestSweepNodeDropsCopiesAndReassignsOwner(t *testing.T) {
	s := NewSpace(3)
	// Page 10: shared by all three (owner 1 after 1's cold fault + reads).
	mustFault(t, s, 1, 10, true)
	mustFault(t, s, 0, 10, false)
	mustFault(t, s, 2, 10, false)
	// Page 20: exclusive at node 1 only — its content dies with it.
	mustFault(t, s, 1, 20, true)
	// Page 30: exclusive at node 2, untouched by node 1.
	mustFault(t, s, 2, 30, true)

	dropped, lost := s.SweepNode(1)
	if len(dropped) != 2 || dropped[0] != 10 || dropped[1] != 20 {
		t.Fatalf("dropped = %v, want [10 20] in ascending order", dropped)
	}
	if len(lost) != 1 || lost[0] != 20 {
		t.Fatalf("lost = %v, want [20]", lost)
	}
	if s.StateOf(1, 10) != Invalid || s.StateOf(1, 20) != Invalid {
		t.Error("dead node still holds copies after the sweep")
	}
	// Page 10's ownership moved to the lowest surviving holder.
	if s.Owner(10) != 0 {
		t.Errorf("page 10 owner = %d, want 0", s.Owner(10))
	}
	// Page 20 had no surviving copy: no owner at all.
	if s.Owner(20) != -1 {
		t.Errorf("page 20 owner = %d, want -1", s.Owner(20))
	}
	// Page 30 was never node 1's: untouched.
	if s.Owner(30) != 2 || s.StateOf(2, 30) != Exclusive {
		t.Error("sweep disturbed a page the dead node never held")
	}
	if s.Stats(1).Invalidates != 2 {
		t.Errorf("Invalidates at swept node = %d, want 2", s.Stats(1).Invalidates)
	}
	if s.HasResident(1) {
		t.Error("swept node still reports resident pages")
	}

	// Survivors keep working: a read of page 10 transfers from the new owner,
	// and the lost page refills cold.
	act, err := s.Fault(1, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if act.TransferFrom != 0 {
		t.Errorf("post-sweep read transfers from %d, want reassigned owner 0", act.TransferFrom)
	}
	act, err = s.Fault(0, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if !act.Cold || act.Grant != Exclusive {
		t.Errorf("touch of lost page not a cold zero-fill: %+v", act)
	}
}

func TestSweepNodeIdempotentAndEmpty(t *testing.T) {
	s := NewSpace(2)
	if d, l := s.SweepNode(1); d != nil || l != nil {
		t.Fatalf("sweep of empty directory returned %v %v", d, l)
	}
	mustFault(t, s, 1, 5, true)
	s.SweepNode(1)
	if d, l := s.SweepNode(1); d != nil || l != nil {
		t.Fatalf("second sweep not a no-op: %v %v", d, l)
	}
}
