// Package dsm implements the heterogeneous distributed shared memory
// service (hDSM): page-granularity MSI-style coherence between the kernels
// of a replicated-kernel OS. Because the multi-ISA toolchain lays out all
// process state in a common format, pages migrate between machines without
// any content transformation — the identity mapping the paper advocates.
//
// The protocol state is held in a single directory per address space (the
// origin kernel's directory in the real system); transfer and invalidation
// *timing* is charged through the interconnect by the kernel. Faults are
// resolved deterministically at fault time; the faulting thread sleeps
// until the modelled delivery time.
package dsm

import (
	"fmt"
	"sort"
)

// State is a node's coherence state for one page.
type State int

const (
	// Invalid: node has no copy.
	Invalid State = iota
	// Shared: node has a read-only copy.
	Shared
	// Exclusive: node has the only, writable copy.
	Exclusive
)

// NodeStats counts DSM activity per node.
type NodeStats struct {
	ReadFaults  uint64
	WriteFaults uint64
	ColdFaults  uint64 // first-touch, no transfer
	PageIn      uint64 // pages copied to this node
	Invalidates uint64 // copies dropped at this node
	Upgrades    uint64 // shared->exclusive without data transfer
}

// Action tells the kernel what a fault requires.
type Action struct {
	// TransferFrom is the node to copy the page from, or -1 (zero-fill /
	// upgrade in place).
	TransferFrom int
	// Drop lists nodes that must drop their copy entirely.
	Drop []int
	// Protect lists nodes that must write-protect their copy (downgrade to
	// Shared).
	Protect []int
	// Grant is the state the faulting node ends with.
	Grant State
	// Cold marks a first-touch fault (no remote traffic).
	Cold bool
}

// Space is the coherence directory for one address space across NumNodes
// kernels.
type Space struct {
	NumNodes int
	pages    map[uint64]*pageInfo
	stats    []NodeStats
	// resident[node] counts pages with a non-Invalid state at node,
	// maintained on every transition so sharing-set queries are O(1).
	resident []int
}

type pageInfo struct {
	// state[node] is each node's coherence state.
	state []State
	// owner is the node holding Exclusive, or the designated responder when
	// the page is Shared.
	owner int
}

// NewSpace builds a directory for n nodes.
func NewSpace(n int) *Space {
	return &Space{
		NumNodes: n,
		pages:    make(map[uint64]*pageInfo),
		stats:    make([]NodeStats, n),
		resident: make([]int, n),
	}
}

// Stats returns node's counters.
func (s *Space) Stats(node int) NodeStats { return s.stats[node] }

// StateOf returns node's coherence state for the page containing addr.
func (s *Space) StateOf(node int, page uint64) State {
	pi := s.pages[page]
	if pi == nil {
		return Invalid
	}
	return pi.state[node]
}

// Owner returns the page's current owner node, or -1 if untouched.
func (s *Space) Owner(page uint64) int {
	pi := s.pages[page]
	if pi == nil {
		return -1
	}
	return pi.owner
}

// Seed marks a page as initially Exclusive at node without counting a fault
// (used by the loader when installing the image).
func (s *Space) Seed(node int, page uint64) {
	pi := s.ensure(page)
	s.setState(pi, node, Exclusive)
	pi.owner = node
}

// setState transitions one node's state for a page, maintaining the
// per-node resident counters.
func (s *Space) setState(pi *pageInfo, node int, st State) {
	old := pi.state[node]
	if (old == Invalid) != (st == Invalid) {
		if st == Invalid {
			s.resident[node]--
		} else {
			s.resident[node]++
		}
	}
	pi.state[node] = st
}

// HasResident reports whether node holds any page of this space (O(1)).
// The sharing-set computation uses it: a node with resident pages can be a
// DSM transfer or invalidation endpoint for the owning process.
func (s *Space) HasResident(node int) bool { return s.resident[node] > 0 }

func (s *Space) ensure(page uint64) *pageInfo {
	pi := s.pages[page]
	if pi == nil {
		pi = &pageInfo{state: make([]State, s.NumNodes), owner: -1}
		s.pages[page] = pi
	}
	return pi
}

// Fault records a fault by node on page and returns the required action.
// The directory is updated immediately (the kernel applies protection
// changes at fault time and charges transfer latency separately).
func (s *Space) Fault(node int, page uint64, write bool) (Action, error) {
	pi := s.ensure(page)
	st := pi.state[node]
	act := Action{TransferFrom: -1}

	if write {
		s.stats[node].WriteFaults++
	} else {
		s.stats[node].ReadFaults++
	}

	switch {
	case pi.owner == -1:
		// First touch anywhere: zero-fill, exclusive.
		act.Cold = true
		act.Grant = Exclusive
		s.stats[node].ColdFaults++
		s.setState(pi, node, Exclusive)
		pi.owner = node

	case !write:
		if st != Invalid {
			return act, fmt.Errorf("dsm: read fault on present page %#x (state %d)", page, st)
		}
		// Copy from the owner; both end Shared.
		act.TransferFrom = pi.owner
		act.Protect = append(act.Protect, pi.owner)
		act.Grant = Shared
		s.setState(pi, pi.owner, Shared)
		s.setState(pi, node, Shared)
		s.stats[node].PageIn++

	default: // write
		switch st {
		case Shared:
			// Upgrade in place; drop every other copy.
			for n := 0; n < s.NumNodes; n++ {
				if n != node && pi.state[n] != Invalid {
					act.Drop = append(act.Drop, n)
					s.setState(pi, n, Invalid)
					s.stats[n].Invalidates++
				}
			}
			act.Grant = Exclusive
			s.stats[node].Upgrades++
			s.setState(pi, node, Exclusive)
			pi.owner = node
		case Invalid:
			// Transfer from the owner; drop all other copies.
			act.TransferFrom = pi.owner
			for n := 0; n < s.NumNodes; n++ {
				if n != node && pi.state[n] != Invalid {
					act.Drop = append(act.Drop, n)
					s.setState(pi, n, Invalid)
					s.stats[n].Invalidates++
				}
			}
			act.Grant = Exclusive
			s.setState(pi, node, Exclusive)
			pi.owner = node
			s.stats[node].PageIn++
		default:
			return act, fmt.Errorf("dsm: write fault on exclusive page %#x", page)
		}
	}
	return act, nil
}

// ResidentPages returns how many pages node holds in each state.
func (s *Space) ResidentPages(node int) (shared, exclusive int) {
	for _, pi := range s.pages {
		switch pi.state[node] {
		case Shared:
			shared++
		case Exclusive:
			exclusive++
		}
	}
	return shared, exclusive
}

// OwnedPages returns the page indices any node currently holds (owner set),
// in unspecified order.
func (s *Space) OwnedPages() []uint64 {
	out := make([]uint64, 0, len(s.pages))
	for pg, pi := range s.pages {
		if pi.owner >= 0 {
			out = append(out, pg)
		}
	}
	return out
}

// SweepNode reclaims every directory reference to a node declared
// permanently dead: its copies are dropped (counted as Invalidates, like any
// other coherence drop) and ownership of pages it was responsible for is
// reassigned to the lowest surviving holder. Pages the dead node held as the
// only copy are reported in lost — their content is gone; the caller decides
// whether that strands the owning process. Both result slices are in
// ascending page order, so the sweep is deterministic over the map.
//
// Without the sweep, pageInfo.owner keeps pointing at the dead node: every
// later read fault would be told to transfer from a machine that will never
// respond, even when live nodes still hold the page Shared.
func (s *Space) SweepNode(node int) (dropped, lost []uint64) {
	pages := make([]uint64, 0, len(s.pages))
	for pg := range s.pages {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, pg := range pages {
		pi := s.pages[pg]
		if pi.state[node] != Invalid {
			s.setState(pi, node, Invalid)
			s.stats[node].Invalidates++
			dropped = append(dropped, pg)
		}
		if pi.owner != node {
			continue
		}
		next := -1
		for n := 0; n < s.NumNodes; n++ {
			if n != node && pi.state[n] != Invalid {
				next = n
				break
			}
		}
		pi.owner = next
		if next < 0 {
			// The dead node held the only copy; the next touch anywhere is a
			// cold zero-fill fault.
			lost = append(lost, pg)
		}
	}
	return dropped, lost
}

// ForceOwn transfers page ownership to node (Exclusive there, Invalid
// everywhere else), returning the previous owner (which holds the content)
// and whether a transfer is needed. Used by the eager whole-state
// (serialization-style) migration baseline.
func (s *Space) ForceOwn(node int, page uint64) (prevOwner int, moved bool) {
	pi := s.pages[page]
	if pi == nil || pi.owner < 0 {
		return -1, false
	}
	prev := pi.owner
	for n := range pi.state {
		s.setState(pi, n, Invalid)
	}
	s.setState(pi, node, Exclusive)
	pi.owner = node
	return prev, prev != node
}
