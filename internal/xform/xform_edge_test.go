package xform_test

import (
	"strings"
	"testing"

	"heterodc/internal/isa"
	"heterodc/internal/xform"
)

// Table-driven edge cases for xform.Transform, driven end-to-end: each
// program runs single-node and under every-point migration from both
// starting ISAs, and all three executions must agree byte-for-byte. The
// cases target the transformer's corners — frames with no live state,
// float64 values crossing frame boundaries in both directions, and frame
// chains near the depth the two-halves scheme can hold.
func TestTransformEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			// A frame suspended with nothing live in it: the call site in
			// the middle of the chain keeps no locals, no allocas, and no
			// values across the call.
			name: "empty-frame-in-chain",
			src: `
long leaf(long n) { return n * 3 + 1; }
long hollow(long n) { return leaf(n); }
long main(void) {
  long i = 0;
  for (i = 0; i < 12; i += 1) {
    print_i64_ln(hollow(i));
  }
  return 0;
}
`,
		},
		{
			// Float64 live values spanning a frame boundary: doubles are
			// passed down and returned back up a four-deep chain, so every
			// transformation sees FP values as arguments, saved registers
			// and return paths at once.
			name: "float64-across-frame-boundaries",
			src: `
double f4(double a, double b, double c, double d) {
  return a * 1.5 + b * 0.25 - c + d * 2.0;
}
double f3(double a, double b, double c) { return f4(a, b, c, a - b); }
double f2(double a, double b) { return f3(a, b, a * b); }
double f1(double a) { return f2(a, a + 0.5); }
long main(void) {
  double x = 1.0;
  long i = 0;
  for (i = 0; i < 10; i += 1) {
    x = f1(x) * 0.125 + 3.0;
    print_i64_ln((long)(x * 4096.0));
  }
  return 0;
}
`,
		},
		{
			// Many float64 arguments in one call: more FP values than any
			// ABI passes in registers, forcing stack-passed doubles whose
			// slots differ between the two ISAs.
			name: "float64-stack-args",
			src: `
double wide(double a, double b, double c, double d,
            double e, double f, double g, double h,
            double i, double j) {
  return a + b * 2.0 + c * 3.0 + d * 4.0 + e * 5.0
       + f * 6.0 + g * 7.0 + h * 8.0 + i * 9.0 + j * 10.0;
}
long main(void) {
  long k = 0;
  double s = 0.0;
  for (k = 0; k < 6; k += 1) {
    double base = (double)k;
    s = s + wide(base, base + 0.5, base + 1.0, base + 1.5, base + 2.0,
                 base + 2.5, base + 3.0, base + 3.5, base + 4.0, base + 4.5);
    print_i64_ln((long)(s * 16.0));
  }
  return 0;
}
`,
		},
		{
			// Max-depth FP chain: recursion 48 frames deep with a live
			// double in every frame, near the deepest chain the generator
			// produces and well past what fits in FP registers alone.
			name: "max-depth-fp-chain",
			src: `
double dive(double x, long d) {
  if (d < 1) { return x; }
  double local = x * 0.5 + (double)d;
  return dive(local, d - 1) + local * 0.0625;
}
long main(void) {
  print_i64_ln((long)(dive(1.0, 48) * 256.0));
  print_i64_ln((long)(dive(2.5, 48)));
  return 0;
}
`,
		},
		{
			// Deep integer chain with a frame that is all allocas: byte
			// buffers and arrays travel across every boundary without any
			// of their contents being mistaken for pointers.
			name: "deep-chain-with-alloca-frames",
			src: `
long fill(long seed, long d) {
  char buf[16];
  long arr[4];
  long i = 0;
  for (i = 0; i < 16; i += 1) { buf[i] = (seed * 7 + i * 13 + d) % 251; }
  for (i = 0; i < 4; i += 1) { arr[i] = seed * 1000003 + i; }
  long sub = 0;
  if (d > 0) { sub = fill(seed + 1, d - 1); }
  long ck = 0;
  for (i = 0; i < 16; i += 1) { ck = ck * 131 + buf[i]; }
  for (i = 0; i < 4; i += 1) { ck = ck * 131 + arr[i]; }
  return ck + sub;
}
long main(void) {
  print_i64_ln(fill(3, 30));
  return 0;
}
`,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			checkTransparent(t, tc.src)
		})
	}
}

// TestTransformZeroFrameStacks drives Transform directly with synthetic
// frame chains that hold no application frames; every variant must be
// rejected with a diagnostic rather than producing a resume state.
func TestTransformZeroFrameStacks(t *testing.T) {
	img := buildImage(t)
	sl, sh, dl, dh := stackBounds()
	mc := img.Prog(isa.X86).ByName["__migrate_check"]
	cases := []struct {
		name    string
		chain   func(fm *fakeMem, fp uint64) // writes the frame records
		wantErr string
	}{
		{
			name: "immediate-sentinel",
			chain: func(fm *fakeMem, fp uint64) {
				_ = fm.WriteU64(fp, 0)
				_ = fm.WriteU64(fp+8, 0)
			},
			wantErr: "no application frames",
		},
		{
			name: "self-loop",
			chain: func(fm *fakeMem, fp uint64) {
				_ = fm.WriteU64(fp, fp)
				_ = fm.WriteU64(fp+8, 0x123)
			},
			wantErr: "",
		},
		{
			name: "sentinel-fp-nonzero-ret",
			chain: func(fm *fakeMem, fp uint64) {
				_ = fm.WriteU64(fp, 0)
				_ = fm.WriteU64(fp+8, 0x9999)
			},
			wantErr: "",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fm := newFakeMem()
			fp := sl + 0x1000
			tc.chain(fm, fp)
			in := &xform.Input{
				SrcProg: img.Prog(isa.X86), DstProg: img.Prog(isa.ARM64),
				Mem: fm, PC: mc.Base,
				SrcStackLo: sl, SrcStackHi: sh, DstStackLo: dl, DstStackHi: dh,
			}
			in.Regs.I[isa.Describe(isa.X86).FP] = int64(fp)
			_, err := xform.Transform(in)
			if err == nil {
				t.Fatal("zero-frame chain accepted")
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
