package xform_test

import (
	"strings"
	"testing"

	"heterodc/internal/compiler"
	"heterodc/internal/isa"
	"heterodc/internal/link"
	"heterodc/internal/mem"
	"heterodc/internal/minic"
	"heterodc/internal/xform"
)

// fakeMem is an always-present memory for constructing synthetic stacks.
type fakeMem struct{ m *mem.Memory }

func newFakeMem() *fakeMem { return &fakeMem{m: mem.NewMemory()} }

func (f *fakeMem) ReadU64(addr uint64) (uint64, error) {
	f.m.EnsurePage(addr)
	f.m.EnsurePage(addr + 7)
	return f.m.ReadU64(addr)
}

func (f *fakeMem) WriteU64(addr uint64, v uint64) error {
	f.m.EnsurePage(addr)
	f.m.EnsurePage(addr + 7)
	return f.m.WriteU64(addr, v)
}

func buildImage(t *testing.T) *link.Image {
	t.Helper()
	m, err := minic.CompileToIR("t", minic.Source{Name: "t.c", Code: `
long work(long n) {
	long buf[2];
	buf[0] = n;
	migrate(1);
	return buf[0] + n;
}
long main(void){ return work(5); }
`})
	if err != nil {
		t.Fatal(err)
	}
	art, err := compiler.Compile(m, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link("t", art, link.Options{Aligned: true})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func stackBounds() (srcLo, srcHi, dstLo, dstHi uint64) {
	lo, _ := mem.ThreadStackWindow(0)
	return lo, lo + mem.StackHalf, lo + mem.StackHalf, lo + 2*mem.StackHalf
}

func TestTransformRejectsUnmappedPC(t *testing.T) {
	img := buildImage(t)
	sl, sh, dl, dh := stackBounds()
	in := &xform.Input{
		SrcProg: img.Prog(isa.X86), DstProg: img.Prog(isa.ARM64),
		Mem: newFakeMem(), PC: 0x12,
		SrcStackLo: sl, SrcStackHi: sh, DstStackLo: dl, DstStackHi: dh,
	}
	_, err := xform.Transform(in)
	if err == nil || !strings.Contains(err.Error(), "not in any function") {
		t.Fatalf("expected unmapped-pc error, got %v", err)
	}
}

func TestTransformRejectsCorruptFrameChain(t *testing.T) {
	img := buildImage(t)
	sl, sh, dl, dh := stackBounds()
	fm := newFakeMem()
	// Fake a self-referential frame chain inside __migrate_check: the FP
	// points at a record whose caller FP loops back to itself with a bogus
	// non-zero return address that maps to no call site.
	fp := sl + 0x1000
	_ = fm.WriteU64(fp, fp)      // caller FP = self
	_ = fm.WriteU64(fp+8, 0x123) // wild return address
	mc := img.Prog(isa.X86).ByName["__migrate_check"]

	in := &xform.Input{
		SrcProg: img.Prog(isa.X86), DstProg: img.Prog(isa.ARM64),
		Mem: fm, PC: mc.Base,
		SrcStackLo: sl, SrcStackHi: sh, DstStackLo: dl, DstStackHi: dh,
	}
	in.Regs.I[isa.Describe(isa.X86).FP] = int64(fp)
	if _, err := xform.Transform(in); err == nil {
		t.Fatal("corrupt chain accepted")
	}
}

func TestTransformRejectsImmediateSentinel(t *testing.T) {
	// A frame chain that terminates before any application frame is a
	// defect (nothing to resume).
	img := buildImage(t)
	sl, sh, dl, dh := stackBounds()
	fm := newFakeMem()
	fp := sl + 0x1000
	_ = fm.WriteU64(fp, 0)
	_ = fm.WriteU64(fp+8, 0) // sentinel right away
	mc := img.Prog(isa.X86).ByName["__migrate_check"]
	in := &xform.Input{
		SrcProg: img.Prog(isa.X86), DstProg: img.Prog(isa.ARM64),
		Mem: fm, PC: mc.Base,
		SrcStackLo: sl, SrcStackHi: sh, DstStackLo: dl, DstStackHi: dh,
	}
	in.Regs.I[isa.Describe(isa.X86).FP] = int64(fp)
	_, err := xform.Transform(in)
	if err == nil || !strings.Contains(err.Error(), "no application frames") {
		t.Fatalf("expected no-frames error, got %v", err)
	}
}

// TestStatsReflectWork builds a real suspended state by running the full
// kernel migration path (covered elsewhere); here we validate that the
// latency model's inputs scale with the frame count by comparing two
// different call depths through the public kernel API.
func TestLatencyModelMonotonic(t *testing.T) {
	shallow := xform.Stats{Frames: 2, LiveValues: 2}
	deep := xform.Stats{Frames: 8, LiveValues: 30, AllocaBytes: 1024, RegWalks: 4}
	// The kernel's latency model is in kernel.XformLatency; its ordering is
	// asserted there. Here just sanity-check the Stats fields carry.
	if deep.Frames <= shallow.Frames {
		t.Fatal("bogus")
	}
}
