package xform_test

import (
	"bytes"
	"os"
	"testing"

	"heterodc/internal/core"
	"heterodc/internal/kernel"
)

// End-to-end regression tests for stack-transformation bugs found by the
// differential fuzzer (internal/fuzz). Each test runs a miniC program on a
// single node and again while bouncing every thread between ISAs at every
// migration point; the two runs must be byte-identical.

func runOnce(t *testing.T, src string, node int, bounce bool) (output []byte, exit int64) {
	t.Helper()
	img, err := core.Build("regress", core.Src("regress.c", src))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	p, err := cl.Spawn(img, node)
	if err != nil {
		t.Fatal(err)
	}
	if bounce {
		cl.OnMigration = func(ev kernel.MigrationEvent) {
			_ = cl.RequestMigration(p, ev.Tid, 1-ev.To)
		}
		_ = cl.RequestMigration(p, 0, 1-node)
	}
	for {
		if done, code := p.Exited(); done {
			if err := p.Err(); err != nil {
				t.Fatalf("process killed: %v", err)
			}
			return p.Output(), code
		}
		if cl.Time() > 30 {
			t.Fatalf("run exceeded 30 simulated seconds (bounce=%v)", bounce)
		}
		if !cl.Step() {
			t.Fatalf("cluster drained before exit (bounce=%v)", bounce)
		}
	}
}

// checkTransparent asserts single-node and every-point-migration runs agree.
func checkTransparent(t *testing.T, src string) {
	t.Helper()
	refOut, refExit := runOnce(t, src, core.NodeX86, false)
	for _, start := range []int{core.NodeX86, core.NodeARM} {
		out, exit := runOnce(t, src, start, true)
		if !bytes.Equal(out, refOut) || exit != refExit {
			t.Errorf("bounce from node %d diverged:\nref  exit=%d %q\ngot  exit=%d %q",
				start, refExit, refOut, exit, out)
		}
	}
}

// TestAllocaByteFixupRegression replays the reduced repro from fuzz seed 129.
// The transformer used to apply heuristic pointer fixup to every 8-byte word
// of every alloca while copying frame contents between stack halves; a char
// buffer inside print_i64 whose stale upper bytes happened to form a live
// stack address had its digit byte rebased along with them, flipping one
// printed character ('0' -> 'P') under every-point migration. Content fixup
// is now restricted to allocas the compiler marks pointer-bearing.
func TestAllocaByteFixupRegression(t *testing.T) {
	data, err := os.ReadFile("testdata/fuzz_seed129_min.c")
	if err != nil {
		t.Fatal(err)
	}
	checkTransparent(t, string(data))
}

// TestPointerAllocaFixupApplies guards the opposite direction: an
// address-taken pointer local lives in an alloca that genuinely holds a
// stack address, and that content must still be rebased on migration. The
// store to x after the migration point is only visible through p if p's
// slot was fixed up to the destination half.
func TestPointerAllocaFixupApplies(t *testing.T) {
	checkTransparent(t, `
long poke(long **qq, long v) {
  **qq = v;
  return **qq;
}
long main(void) {
  long x = 7;
  long *p = &x;
  long **q = &p;
  long i = 0;
  for (i = 0; i < 8; i += 1) {
    x = x + poke(q, i + 40);
    print_i64_ln(*p);
  }
  print_i64_ln(x);
  return 0;
}
`)
}
