// heterodc fuzz program
// seed: 129
// features: arrays malloc pointers

long g1 = 91;
long g2 = -27;
long g3 = 54;
long garr4[5] = {-51, -50, -13, 81};

long sdiv(long a, long b) {
  if (b == 0) { return 0; }
  return a / b;
}

long smod(long a, long b) {
  if (b == 0) { return 0; }
  return a % b;
}

long idx(long i, long n) {
  long r = i % n;
  if (r < 0) { r = r + n; }
  return r;
}

long fn5(long a6, long a7) {
  long v8 = sdiv(a6, a7);
}

long fn10(long a11) {
  long v12 = garr4[0];
}

long main() {
  long v15 = (-(-31));
  long v16 = (((g2 * v15) < (-(-8655))) ? ((garr4[idx((v15 < 865462), 5)] >= ((-4101) - (-60))) ? g2 : g1) : (g1 - g3));
  long v17 = ((-v15) + (g3 ^ (-9844)));
  long arr18[10];
  for (long arr18_i = 0; arr18_i < 10; arr18_i = arr18_i + 1) { arr18[arr18_i] = ((arr18_i * 3) + 26); }
  long v21 = (fn10(g3) == (g1 >> (g1 & 15)));
  if ((((-8) <= v21) != arr18[0])) {
    for (long i22 = 0; i22 < 1; i22 = i22 + 1) {
      print_i64_ln((-45));
      (g1 ^= garr4[0]);
    }
    {
      long k23 = 0;
      do {
        (g3 &= ((47 << (g1 & 15)) << (arr18[idx(((-1) != v17), 10)] & 15)));
        (arr18[idx(v17, 10)] = smod(((sdiv(g3, g2) == ((-9032) >> (210120 & 15))) ? v15 : g1), (v21 >> (v16 & 15))));
        k23 = k23 + 1;
      } while (k23 < 1);
    }
  }
  print_i64_ln(sdiv(fn5(8, (-1361)), smod((-805), 50)));
  long * p24 = (&garr4[0]);
  (g1 = (((v21 << (437818228736 & 15)) < (v17 ^ 8)) ? (v17 << (v16 & 15)) : fn5(v16, v17)));
  long *h25 = (long *)malloc(40);
  for (long h25_i = 0; h25_i < 5; h25_i = h25_i + 1) { h25[h25_i] = ((h25_i * 9) ^ 54); }
  if (((!v16) < (~g3))) {
    long v26 = (v17 == 227696);
  } else {
    long v27 = (-(648842051584 | g1));
    print_i64_ln(((g3 == v27) + (-57)));
  }
  {
    long k28 = 0;
    do {
      if (((g3 == g2) == arr18[idx((~(-9)), 10)])) {
        (v15 *= ((smod(v21, v15) < 319840845824) ? (-g1) : fn10(g2)));
      } else {
        (v21 ^= (!(((~5) > g1) ? g3 : g1)));
      }
      k28 = k28 + 1;
    } while (k28 < 1);
  }
  for (long i29 = 0; i29 < 1; i29 = i29 + 1) {
    long v30 = ((-9212) * (v16 - 7));
    print_i64_ln((((9 >= v30) != sdiv(7093, v21)) ? (g2 >= 6627) : smod(v16, g3)));
  }
  long v31 = fn10(fn10(v17));
  print_i64_ln(g1);
  print_i64_ln(g2);
  print_i64_ln(g3);
  long ck32 = 0;
  for (long ci33 = 0; ci33 < 1; ci33 = ci33 + 1) {
    (ck32 = ((ck32 * 131) + garr4[0]));
  }
  print_i64_ln(ck32);
  long ck34 = 0;
  for (long ci35 = 0; ci35 < 1; ci35 = ci35 + 1) {
    (ck34 = ((ck34 * 131) + arr18[0]));
  }
  print_i64_ln(ck34);
  long ck36 = 0;
  for (long ci37 = 0; ci37 < 1; ci37 = ci37 + 1) {
    (ck36 = ((ck36 * 131) + p24[0]));
  }
  print_i64_ln(ck36);
  long ck38 = 0;
  for (long ci39 = 0; ci39 < 1; ci39 = ci39 + 1) {
    (ck38 = ((ck38 * 131) + h25[0]));
  }
  print_i64_ln(ck38);
  print_i64_ln(v15);
  print_i64_ln(v16);
  print_i64_ln(v17);
  return 0;
}

