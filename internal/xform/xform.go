// Package xform implements the paper's stack-transformation runtime: at a
// migration point it rewrites a thread's user-space stack, frame by frame in
// a single pass, from the source ISA's ABI to the destination ISA's ABI,
// using compiler-generated stackmaps and unwind metadata.
//
// The two-halves scheme is implemented exactly as described: the thread's
// stack window is split in half, the rewritten stack is built in the other
// half, and the register state (PC, SP, FP) is mapped so execution resumes
// on the destination architecture at the migration point's return address.
package xform

import (
	"fmt"
	"math"

	"heterodc/internal/ir"
	"heterodc/internal/isa"
	"heterodc/internal/link"
	"heterodc/internal/stackmap"
)

// MemIO abstracts memory for the transformer. The kernel supplies an
// implementation that resolves DSM faults synchronously (pulling remote
// pages and accounting their latency).
type MemIO interface {
	ReadU64(addr uint64) (uint64, error)
	WriteU64(addr uint64, v uint64) error
}

// RegState is an architecture-neutral register file snapshot.
type RegState struct {
	I [32]int64
	F [32]float64
}

// Input describes the suspended source-side thread at the migration point
// (inside __migrate_check, immediately after the migration syscall trapped).
type Input struct {
	SrcProg *link.Program
	DstProg *link.Program
	Mem     MemIO

	// Regs is the live source register file.
	Regs RegState
	// PC is the current source program counter (inside __migrate_check).
	PC uint64

	// SrcStackLo/Hi bound the currently active stack half; DstStackLo/Hi
	// bound the half the rewritten stack is built in.
	SrcStackLo, SrcStackHi uint64
	DstStackLo, DstStackHi uint64
}

// Output is the destination-side resume state.
type Output struct {
	Regs RegState
	PC   uint64

	Stats Stats
}

// Stats quantifies the work done, for the latency model behind Figure 10.
type Stats struct {
	Frames      int
	LiveValues  int
	AllocaBytes int64
	PtrFixups   int
	RegWalks    int // register values placed via the callee-save-chain walk
}

// srcFrame is one unwound source frame.
type srcFrame struct {
	fn   *stackmap.FuncInfo // source-ISA metadata
	site *stackmap.CallSite // source call site the frame is suspended at
	fp   uint64             // source frame pointer
	// regs is the register snapshot as this frame observes it (all deeper
	// frames' callee-saved saves applied).
	regs RegState
}

// dstFrame is one frame placed in the destination half.
type dstFrame struct {
	fn *stackmap.FuncInfo
	fp uint64
	sp uint64
}

// region maps one source alloca slot to its destination address, for
// stack-internal pointer fixup.
type region struct {
	srcLo, srcHi uint64
	dstLo        uint64
}

// Transform rewrites the stack and maps the register state. It returns the
// destination resume state or an error if metadata is missing or
// inconsistent (a fatal toolchain defect).
func Transform(in *Input) (*Output, error) {
	srcDesc := isa.Describe(in.SrcProg.Arch)
	dstDesc := isa.Describe(in.DstProg.Arch)
	out := &Output{}

	// ---- Pass 1: unwind the source stack. ----
	frames, err := unwind(in, srcDesc)
	if err != nil {
		return nil, err
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("xform: no application frames to transform")
	}
	out.Stats.Frames = len(frames)
	if Debug {
		for i, f := range frames {
			fmt.Printf("xform: frame[%d] %s site=%d fp=%#x\n", i, f.fn.Name, f.site.ID, f.fp)
		}
	}

	// ---- Pass 2: lay out destination frames (outermost first). ----
	dsts := make([]dstFrame, len(frames))
	sp := (in.DstStackHi - 64) &^ 15
	for k := len(frames) - 1; k >= 0; k-- {
		name := frames[k].fn.Name
		dfn, ok := in.DstProg.SMap.Funcs[name]
		if !ok {
			return nil, fmt.Errorf("xform: destination has no metadata for %s", name)
		}
		fp := sp - 16
		dsts[k] = dstFrame{fn: dfn, fp: fp, sp: fp - uint64(dfn.FrameSize)}
		sp = dsts[k].sp
		if sp <= in.DstStackLo {
			return nil, fmt.Errorf("xform: destination stack overflow (%d frames)", len(frames))
		}
	}

	// Alloca region table for pointer fixup (addresses of address-taken
	// locals move between ABIs; pointers into them must be rebased).
	var regions []region
	for k, f := range frames {
		for i := range f.fn.AllocaOffsets {
			srcLo := f.fp + uint64(f.fn.AllocaOffsets[i])
			dstLo := dsts[k].fp + uint64(dsts[k].fn.AllocaOffsets[i])
			regions = append(regions, region{
				srcLo: srcLo,
				srcHi: srcLo + uint64(f.fn.AllocaSizes[i]),
				dstLo: dstLo,
			})
		}
	}
	fixup := func(v uint64) (uint64, bool) {
		if v < in.SrcStackLo || v >= in.SrcStackHi {
			return v, false
		}
		for _, r := range regions {
			if v >= r.srcLo && v < r.srcHi {
				return r.dstLo + (v - r.srcLo), true
			}
		}
		// Value looks like a stack address but maps to no live alloca: treat
		// it as an integer that happens to collide (the paper's runtime has
		// the same ambiguity); leave unchanged.
		return v, false
	}

	// ---- Pass 3: write frame records and copy state. ----
	// Frame-chain records: [FP] = caller FP, [FP+8] = return address into
	// the caller's destination code.
	for k := range frames {
		var callerFP, retAddr uint64
		if k == len(frames)-1 {
			callerFP, retAddr = 0, 0 // entry shim: unwinder sentinel
		} else {
			callerFP = dsts[k+1].fp
			callerSite, ok := dsts[k+1].fn.CallSites[frames[k+1].site.ID]
			if !ok {
				return nil, fmt.Errorf("xform: %s: destination missing call site %d",
					frames[k+1].fn.Name, frames[k+1].site.ID)
			}
			retAddr = callerSite.RetPC
		}
		if err := in.Mem.WriteU64(dsts[k].fp, callerFP); err != nil {
			return nil, err
		}
		if err := in.Mem.WriteU64(dsts[k].fp+8, retAddr); err != nil {
			return nil, err
		}
		if Debug {
			fmt.Printf("xform: dst[%d] %s fp=%#x sp=%#x callerFP=%#x ret=%#x\n",
				k, dsts[k].fn.Name, dsts[k].fp, dsts[k].sp, callerFP, retAddr)
		}
	}

	// Copy alloca contents. Word-granular pointer fixup applies only to
	// slots the compiler marked pointer-bearing: in a plain data slot (a
	// char buffer, an int array) a word that merely looks like a stack
	// address must be copied verbatim, or the rebase rewrites application
	// bytes. The region table above still covers every slot, because typed
	// live pointers may point into non-pointer-bearing slots.
	for k, f := range frames {
		for i := range f.fn.AllocaOffsets {
			src := f.fp + uint64(f.fn.AllocaOffsets[i])
			dst := dsts[k].fp + uint64(dsts[k].fn.AllocaOffsets[i])
			size := f.fn.AllocaSizes[i]
			mayHoldPtr := i < len(f.fn.AllocaPtr) && f.fn.AllocaPtr[i]
			out.Stats.AllocaBytes += size
			for o := int64(0); o < size; o += 8 {
				w, err := in.Mem.ReadU64(src + uint64(o))
				if err != nil {
					return nil, err
				}
				if mayHoldPtr {
					if nw, fixed := fixup(w); fixed {
						w = nw
						out.Stats.PtrFixups++
					}
				}
				if err := in.Mem.WriteU64(dst+uint64(o), w); err != nil {
					return nil, err
				}
			}
		}
	}

	// Live values: read from source locations, write to destination
	// locations. Register-resident destinations go either directly into the
	// destination register file (innermost frame, or registers untouched by
	// inner frames) or into the save slot of the nearest inner frame that
	// saves the register — the paper's walk down the call chain.
	dstRegs := &out.Regs
	placeReg := func(k int, reg isa.Reg, isFloat bool, vi int64, vf float64) error {
		for j := k - 1; j >= 0; j-- {
			if off, ok := dsts[j].fn.SaveOffset(reg, isFloat); ok {
				out.Stats.RegWalks++
				bits := uint64(vi)
				if isFloat {
					bits = f64bits(vf)
				}
				return in.Mem.WriteU64(dsts[j].fp+uint64(off), bits)
			}
		}
		if isFloat {
			dstRegs.F[reg] = vf
		} else {
			dstRegs.I[reg] = vi
		}
		return nil
	}

	for k, f := range frames {
		dsite, ok := dsts[k].fn.CallSites[f.site.ID]
		if !ok {
			return nil, fmt.Errorf("xform: %s: destination missing call site %d", f.fn.Name, f.site.ID)
		}
		dstLoc := make(map[int]stackmap.Loc, len(dsite.Live))
		for _, lv := range dsite.Live {
			dstLoc[lv.VReg] = lv.Loc
		}
		for _, lv := range f.site.Live {
			dl, ok := dstLoc[lv.VReg]
			if !ok {
				// Live on source but not destination: the IR-level live set
				// is shared, so this is a metadata defect.
				return nil, fmt.Errorf("xform: %s site %d: v%d live on %s but not %s",
					f.fn.Name, f.site.ID, lv.VReg, in.SrcProg.Arch, in.DstProg.Arch)
			}
			out.Stats.LiveValues++

			// Fetch the source value.
			var vi int64
			var vf float64
			if lv.Loc.Kind == stackmap.InReg {
				if lv.Loc.IsFloat {
					vf = f.regs.F[lv.Loc.Reg]
				} else {
					vi = f.regs.I[lv.Loc.Reg]
				}
			} else {
				w, err := in.Mem.ReadU64(f.fp + uint64(lv.Loc.Off))
				if err != nil {
					return nil, err
				}
				if lv.Loc.IsFloat {
					vf = f64frombits(w)
				} else {
					vi = int64(w)
				}
			}
			// Pointer fixup for stack-internal pointers.
			if lv.Type == ir.Ptr && !lv.Loc.IsFloat {
				if nv, fixed := fixup(uint64(vi)); fixed {
					vi = int64(nv)
					out.Stats.PtrFixups++
				}
			}
			// Place at the destination.
			if dl.Kind == stackmap.InReg {
				if err := placeReg(k, dl.Reg, dl.IsFloat, vi, vf); err != nil {
					return nil, err
				}
			} else {
				bits := uint64(vi)
				if dl.IsFloat {
					bits = f64bits(vf)
				}
				if err := in.Mem.WriteU64(dsts[k].fp+uint64(dl.Off), bits); err != nil {
					return nil, err
				}
			}
		}
	}

	// ---- Resume state: map PC, SP, FP (the paper's r^AB function). ----
	site0, ok := dsts[0].fn.CallSites[frames[0].site.ID]
	if !ok {
		return nil, fmt.Errorf("xform: innermost destination site missing")
	}
	if Debug {
		fmt.Printf("xform: resume pc=%#x sp=%#x fp=%#x\n", site0.RetPC, dsts[0].sp, dsts[0].fp)
	}
	dstRegs.I[dstDesc.SP] = int64(dsts[0].sp)
	dstRegs.I[dstDesc.FP] = int64(dsts[0].fp)
	if dstDesc.LR != isa.NoReg {
		dstRegs.I[dstDesc.LR] = int64(site0.RetPC)
	}
	out.PC = site0.RetPC
	_ = srcDesc
	return out, nil
}

// unwind walks the source stack from inside __migrate_check outward,
// recovering per-frame register snapshots via the callee-save metadata.
func unwind(in *Input, srcDesc *isa.Desc) ([]srcFrame, error) {
	cur := in.PC
	curFn := in.SrcProg.SMap.FuncAt(cur)
	if curFn == nil {
		return nil, fmt.Errorf("xform: pc %#x not in any function", cur)
	}
	curFP := uint64(in.Regs.I[srcDesc.FP])
	regs := in.Regs

	var frames []srcFrame
	for depth := 0; ; depth++ {
		if depth > 1024 {
			return nil, fmt.Errorf("xform: unwind depth exceeded (corrupt frame chain?)")
		}
		// Recover the caller's view of callee-saved registers.
		for _, s := range curFn.Saves {
			w, err := in.Mem.ReadU64(curFP + uint64(s.Off))
			if err != nil {
				return nil, err
			}
			if s.IsFloat {
				regs.F[s.Reg] = f64frombits(w)
			} else {
				regs.I[s.Reg] = int64(w)
			}
		}
		retAddr, err := in.Mem.ReadU64(curFP + 8)
		if err != nil {
			return nil, err
		}
		callerFP, err := in.Mem.ReadU64(curFP)
		if err != nil {
			return nil, err
		}
		if retAddr == 0 {
			// curFn is the entry shim; it was appended on the previous
			// iteration (or the chain is broken).
			return frames, nil
		}
		callerFn, site, err := in.SrcProg.SMap.SiteFor(retAddr)
		if err != nil {
			return nil, err
		}
		// Entry shims are included as frames; their own caller record is the
		// zero sentinel, so the next iteration exits via retAddr == 0.
		frames = append(frames, srcFrame{fn: callerFn, site: site, fp: callerFP, regs: regs})
		curFn, curFP = callerFn, callerFP
	}
}

func f64bits(f float64) uint64 { return math.Float64bits(f) }

func f64frombits(b uint64) float64 { return math.Float64frombits(b) }

// Debug enables verbose transformation tracing (tests only).
var Debug = false
