package isa

import "fmt"

// Op is a machine operation. Both simulated ISAs execute the same semantic
// operation vocabulary; they differ in encoding length, cycle cost, register
// files and ABI. This mirrors the paper's setting, where both real ISAs are
// 64-bit general-purpose machines and the migration difficulty comes from
// ABI and layout divergence rather than from semantics.
type Op uint8

const (
	// OpNop does nothing.
	OpNop Op = iota

	// Integer ALU. Rd = Rs1 <op> Rs2.
	OpAdd
	OpSub
	OpMul
	OpDiv // signed; division by zero traps
	OpRem // signed remainder; division by zero traps
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // arithmetic shift right

	// OpAddI: Rd = Rs1 + Imm (also used for SP adjustment and address math).
	OpAddI
	// OpMulI: Rd = Rs1 * Imm.
	OpMulI
	// OpAndI, OpOrI, OpXorI, OpShlI, OpShrI: immediate logical forms.
	OpAndI
	OpOrI
	OpXorI
	OpShlI
	OpShrI

	// OpLdi: Rd = Imm (materialise 64-bit constant).
	OpLdi
	// OpMov: Rd = Rs1.
	OpMov

	// Integer comparisons. Rd = (Rs1 cc Rs2) ? 1 : 0 (signed).
	OpCmpEq
	OpCmpNe
	OpCmpLt
	OpCmpLe
	OpCmpGt
	OpCmpGe

	// Float ALU (operands in the float register file). Fd = Fs1 <op> Fs2.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	// OpFNeg: Fd = -Fs1.
	OpFNeg
	// OpFSqrt: Fd = sqrt(Fs1).
	OpFSqrt
	// OpFMov: Fd = Fs1.
	OpFMov
	// OpFLdi: Fd = float64 constant carried in FImm.
	OpFLdi

	// Float comparisons: integer Rd = (Fs1 cc Fs2) ? 1 : 0.
	OpFCmpEq
	OpFCmpNe
	OpFCmpLt
	OpFCmpLe
	OpFCmpGt
	OpFCmpGe

	// Conversions.
	OpI2F // Fd = float64(Rs1)
	OpF2I // Rd = int64(Fs1), truncating

	// Memory. Effective address = Rs1 + Imm.
	OpLd  // Rd = *(int64*)(ea)
	OpSt  // *(int64*)(ea) = Rs2
	OpLdB // Rd = zero-extended *(uint8*)(ea)
	OpStB // *(uint8*)(ea) = low byte of Rs2
	OpFLd // Fd = *(float64*)(ea)
	OpFSt // *(float64*)(ea) = Fs2

	// OpLea: Rd = address of symbol Sym plus Imm. The linker guarantees Sym
	// resolves to the same virtual address on every ISA.
	OpLea

	// Control flow.
	OpBr   // unconditional branch to Target (intra-function)
	OpBeqz // branch to Target if Rs1 == 0
	OpBnez // branch to Target if Rs1 != 0
	OpCall // call symbol Sym; return-address discipline is per-ISA
	OpRet  // return
	// OpCallR: indirect call through integer register Rs1.
	OpCallR

	// OpSyscall traps into the kernel. The syscall number and arguments are
	// in the ISA's argument registers; the result comes back in the return
	// register.
	OpSyscall

	// Atomics (sequentially consistent in the simulator).
	OpAtomicAdd // Rd = old value of *(int64*)(Rs1+Imm); memory += Rs2
	OpAtomicCAS // Rd = old; if old == Rs2 then memory = Rs3cas (in Imm? see note)

	// Stack-discipline pseudo-ops with real per-ISA behaviour.
	OpPush // push Rs1 (x86 flavour; arm backend does not emit it)
	OpPop  // pop into Rd
)

// opName maps ops to mnemonics for disassembly.
var opName = map[Op]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl",
	OpShr: "shr", OpAddI: "addi", OpMulI: "muli", OpAndI: "andi",
	OpOrI: "ori", OpXorI: "xori", OpShlI: "shli", OpShrI: "shri",
	OpLdi: "ldi", OpMov: "mov",
	OpCmpEq: "cmpeq", OpCmpNe: "cmpne", OpCmpLt: "cmplt", OpCmpLe: "cmple",
	OpCmpGt: "cmpgt", OpCmpGe: "cmpge",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFNeg: "fneg", OpFSqrt: "fsqrt", OpFMov: "fmov", OpFLdi: "fldi",
	OpFCmpEq: "fcmpeq", OpFCmpNe: "fcmpne", OpFCmpLt: "fcmplt",
	OpFCmpLe: "fcmple", OpFCmpGt: "fcmpgt", OpFCmpGe: "fcmpge",
	OpI2F: "i2f", OpF2I: "f2i",
	OpLd: "ld", OpSt: "st", OpLdB: "ldb", OpStB: "stb",
	OpFLd: "fld", OpFSt: "fst", OpLea: "lea",
	OpBr: "br", OpBeqz: "beqz", OpBnez: "bnez",
	OpCall: "call", OpRet: "ret", OpCallR: "callr", OpSyscall: "syscall",
	OpAtomicAdd: "atomadd", OpAtomicCAS: "atomcas",
	OpPush: "push", OpPop: "pop",
}

// String returns the mnemonic for the op.
func (o Op) String() string {
	if s, ok := opName[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one machine instruction. Instructions are held decoded (Go
// structs); the Size field models the encoded length so that code layout and
// the instruction-cache simulation see realistic per-ISA footprints.
type Instr struct {
	Op  Op
	Rd  Reg // destination (int or float file depending on Op)
	Rs1 Reg
	Rs2 Reg
	Rs3 Reg // third source: OpAtomicCAS new-value register

	Imm  int64   // immediate / memory displacement
	FImm float64 // float immediate for OpFLdi

	// Sym is the symbol operand of OpCall / OpLea.
	Sym string

	// Target is the intra-function branch target, an instruction index within
	// the function body (resolved by the assembler before layout).
	Target int

	// CallSiteID identifies the IR call site for OpCall instructions so the
	// runtime can map return addresses across ISAs. Zero means "not a mapped
	// call site" (e.g. calls emitted by the prologue machinery).
	CallSiteID int

	// Size is the encoded length in bytes on the owning ISA.
	Size int64
}

// String renders the instruction for disassembly listings.
func (in *Instr) String() string {
	switch in.Op {
	case OpCall:
		return fmt.Sprintf("%-8s %s // cs=%d", in.Op, in.Sym, in.CallSiteID)
	case OpLea:
		return fmt.Sprintf("%-8s r%d, %s+%d", in.Op, in.Rd, in.Sym, in.Imm)
	case OpBr:
		return fmt.Sprintf("%-8s @%d", in.Op, in.Target)
	case OpBeqz, OpBnez:
		return fmt.Sprintf("%-8s r%d, @%d", in.Op, in.Rs1, in.Target)
	case OpLdi:
		return fmt.Sprintf("%-8s r%d, #%d", in.Op, in.Rd, in.Imm)
	case OpFLdi:
		return fmt.Sprintf("%-8s f%d, #%g", in.Op, in.Rd, in.FImm)
	case OpLd, OpLdB, OpFLd:
		return fmt.Sprintf("%-8s r%d, [r%d%+d]", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpSt, OpStB, OpFSt:
		return fmt.Sprintf("%-8s [r%d%+d], r%d", in.Op, in.Rs1, in.Imm, in.Rs2)
	case OpAddI, OpMulI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI:
		return fmt.Sprintf("%-8s r%d, r%d, #%d", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpRet, OpNop, OpSyscall:
		return in.Op.String()
	default:
		return fmt.Sprintf("%-8s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

// EncodedSize returns the modelled encoding length in bytes of in on arch a.
// ARM64 uses fixed 4-byte encodings (large constants take a 2-3 instruction
// movz/movk sequence, modelled as 8 or 12 bytes). x86 uses a variable-length
// heuristic patterned after real x86-64 encodings: REX prefixes, ModRM,
// displacement and immediate widths.
func EncodedSize(a Arch, in *Instr) int64 {
	if a == ARM64 {
		switch in.Op {
		case OpLdi:
			// movz + up to 3 movk
			v := uint64(in.Imm)
			switch {
			case v>>16 == 0 || ^v>>16 == 0:
				return 4
			case v>>32 == 0 || ^v>>32 == 0:
				return 8
			case v>>48 == 0 || ^v>>48 == 0:
				return 12
			default:
				return 16
			}
		case OpFLdi, OpLea:
			return 8 // adrp+add / literal load pair
		case OpAtomicCAS:
			return 12 // ldaxr/cmp/stlxr sequence collapsed
		case OpAtomicAdd:
			return 8
		default:
			return 4
		}
	}
	// x86 heuristic.
	immBytes := func(v int64) int64 {
		switch {
		case v == 0:
			return 1
		case v >= -128 && v <= 127:
			return 1
		case v >= -(1<<31) && v < 1<<31:
			return 4
		default:
			return 8
		}
	}
	switch in.Op {
	case OpNop:
		return 1
	case OpRet:
		return 1
	case OpPush, OpPop:
		if in.Rd >= 8 || in.Rs1 >= 8 {
			return 2
		}
		return 1
	case OpLdi:
		return 2 + immBytes(in.Imm) // REX + opcode + imm (mov r64, imm)
	case OpFLdi:
		return 8 // movsd xmm, [rip+disp]
	case OpMov, OpFMov:
		return 3
	case OpAdd, OpSub, OpAnd, OpOr, OpXor:
		return 3
	case OpMul:
		return 4 // imul r64, r64
	case OpDiv, OpRem:
		return 6 // cqo + idiv + moves folded
	case OpShl, OpShr:
		return 4 // shift by cl, includes mov to cl
	case OpAddI, OpAndI, OpOrI, OpXorI, OpMulI:
		return 3 + immBytes(in.Imm)
	case OpShlI, OpShrI:
		return 4
	case OpCmpEq, OpCmpNe, OpCmpLt, OpCmpLe, OpCmpGt, OpCmpGe:
		return 7 // cmp + setcc + movzx
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFSqrt:
		return 4
	case OpFNeg:
		return 4
	case OpFCmpEq, OpFCmpNe, OpFCmpLt, OpFCmpLe, OpFCmpGt, OpFCmpGe:
		return 8 // ucomisd + setcc + movzx
	case OpI2F, OpF2I:
		return 5
	case OpLd, OpSt:
		return 3 + immBytes(in.Imm)
	case OpLdB, OpStB:
		return 3 + immBytes(in.Imm)
	case OpFLd, OpFSt:
		return 4 + immBytes(in.Imm)
	case OpLea:
		return 7 // lea r64, [rip+disp32]
	case OpBr:
		return 2 // jmp rel8/rel32, optimistically short
	case OpBeqz, OpBnez:
		return 5 // test + jcc
	case OpCall:
		return 5
	case OpCallR:
		return 3
	case OpSyscall:
		return 2
	case OpAtomicAdd:
		return 5 // lock xadd
	case OpAtomicCAS:
		return 5 // lock cmpxchg
	}
	return 4
}

// CycleCost returns the modelled base cycle cost of executing in on arch a,
// excluding cache-miss and DSM penalties. The tables encode the paper-era
// microarchitectural contrast: the Xeon has stronger multiply/divide and FP
// units; the X-Gene 1 pays more for complex ops but branches cheaply.
func CycleCost(a Arch, op Op) int64 {
	if a == X86 {
		switch op {
		case OpMul, OpMulI:
			return 3
		case OpDiv, OpRem:
			return 22
		case OpFAdd, OpFSub:
			return 3
		case OpFMul:
			return 4
		case OpFDiv:
			return 14
		case OpFSqrt:
			return 16
		case OpI2F, OpF2I:
			return 4
		case OpLd, OpLdB, OpFLd:
			return 4
		case OpSt, OpStB, OpFSt:
			return 1
		case OpCall, OpRet:
			return 2
		case OpBr, OpBeqz, OpBnez:
			return 1
		case OpSyscall:
			return 120
		case OpAtomicAdd, OpAtomicCAS:
			return 20
		case OpPush, OpPop:
			return 1
		case OpFCmpEq, OpFCmpNe, OpFCmpLt, OpFCmpLe, OpFCmpGt, OpFCmpGe:
			return 3
		default:
			return 1
		}
	}
	// ARM64 (X-Gene 1 flavour): in-order-ish costs.
	switch op {
	case OpMul, OpMulI:
		return 5
	case OpDiv, OpRem:
		return 38
	case OpFAdd, OpFSub:
		return 5
	case OpFMul:
		return 6
	case OpFDiv:
		return 29
	case OpFSqrt:
		return 33
	case OpI2F, OpF2I:
		return 6
	case OpLd, OpLdB, OpFLd:
		return 5
	case OpSt, OpStB, OpFSt:
		return 2
	case OpCall, OpRet:
		return 2
	case OpBr, OpBeqz, OpBnez:
		return 1
	case OpSyscall:
		return 180
	case OpAtomicAdd, OpAtomicCAS:
		return 28
	case OpFCmpEq, OpFCmpNe, OpFCmpLt, OpFCmpLe, OpFCmpGt, OpFCmpGe:
		return 5
	default:
		return 1
	}
}
