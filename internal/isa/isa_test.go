package isa

import (
	"testing"
	"testing/quick"
)

func TestDescribeBothArches(t *testing.T) {
	for _, a := range Arches {
		d := Describe(a)
		if d.Arch != a {
			t.Errorf("%s: desc arch mismatch", a)
		}
		if d.ClockHz <= 0 || d.Cores <= 0 {
			t.Errorf("%s: bad clock/cores", a)
		}
		if d.SP == NoReg || d.FP == NoReg {
			t.Errorf("%s: SP/FP unset", a)
		}
	}
}

func TestOther(t *testing.T) {
	if X86.Other() != ARM64 || ARM64.Other() != X86 {
		t.Fatal("Other() broken")
	}
}

func TestReturnAddressDiscipline(t *testing.T) {
	if !Describe(X86).RetAddrOnStack {
		t.Error("x86 must push return addresses")
	}
	if Describe(ARM64).RetAddrOnStack {
		t.Error("arm64 must use a link register")
	}
	if Describe(ARM64).LR == NoReg {
		t.Error("arm64 must have a link register")
	}
	if Describe(X86).LR != NoReg {
		t.Error("x86 must not have a link register")
	}
}

// contains reports whether r is in set.
func contains(set []Reg, r Reg) bool {
	for _, x := range set {
		if x == r {
			return true
		}
	}
	return false
}

func TestScratchDisjointFromAllocatable(t *testing.T) {
	for _, a := range Arches {
		d := Describe(a)
		for _, s := range d.ScratchInt {
			if s == NoReg {
				continue
			}
			if contains(d.AllocatableInt, s) {
				t.Errorf("%s: int scratch %d is allocatable", a, s)
			}
			if contains(d.CalleeSavedInt, s) {
				t.Errorf("%s: int scratch %d is callee-saved", a, s)
			}
		}
		for _, s := range d.ScratchFloat {
			if contains(d.AllocatableFloat, s) {
				t.Errorf("%s: float scratch %d is allocatable", a, s)
			}
		}
	}
}

func TestArgRegsAreCallerSaved(t *testing.T) {
	// Vreg homes live exclusively in callee-saved registers; argument
	// marshalling must never clobber one.
	for _, a := range Arches {
		d := Describe(a)
		for _, r := range d.IntArgRegs {
			if contains(d.CalleeSavedInt, r) {
				t.Errorf("%s: int arg reg %d is callee-saved", a, r)
			}
		}
		for _, r := range d.FloatArgRegs {
			if contains(d.CalleeSavedFloat, r) {
				t.Errorf("%s: float arg reg %d is callee-saved", a, r)
			}
		}
	}
}

func TestCalleeSavedAllocatableMatch(t *testing.T) {
	// The allocator pools must equal the callee-saved sets.
	for _, a := range Arches {
		d := Describe(a)
		for _, r := range d.AllocatableInt {
			if !contains(d.CalleeSavedInt, r) {
				t.Errorf("%s: allocatable int reg %d not callee-saved", a, r)
			}
		}
		for _, r := range d.AllocatableFloat {
			if !contains(d.CalleeSavedFloat, r) {
				t.Errorf("%s: allocatable float reg %d not callee-saved", a, r)
			}
		}
	}
}

func TestIsCalleeSaved(t *testing.T) {
	x := Describe(X86)
	if !x.IsCalleeSaved(RBX) || !x.IsCalleeSaved(RBP) {
		t.Error("x86: rbx/rbp must be callee-saved")
	}
	if x.IsCalleeSaved(RAX) || x.IsCalleeSaved(RDI) {
		t.Error("x86: rax/rdi must not be callee-saved")
	}
	a := Describe(ARM64)
	if !a.IsCalleeSaved(X19) || !a.IsCalleeSaved(X29) || !a.IsCalleeSaved(X30) {
		t.Error("arm64: x19/x29/x30 must be callee-saved")
	}
	if a.IsCalleeSaved(X0) {
		t.Error("arm64: x0 must not be callee-saved")
	}
}

func TestRegNames(t *testing.T) {
	x := Describe(X86)
	if x.IntRegName(RSP) != "rsp" || x.IntRegName(R15) != "r15" {
		t.Error("x86 reg names")
	}
	a := Describe(ARM64)
	if a.IntRegName(SPReg) != "sp" || a.IntRegName(X30) != "x30/lr" {
		t.Error("arm64 reg names")
	}
	if x.FloatRegName(3) != "xmm3" || a.FloatRegName(3) != "v3" {
		t.Error("float reg names")
	}
}

func TestEncodedSizesPositiveAndBounded(t *testing.T) {
	ops := []Op{
		OpNop, OpAdd, OpMul, OpDiv, OpLdi, OpMov, OpCmpLt, OpFAdd, OpFDiv,
		OpFLdi, OpI2F, OpLd, OpSt, OpLdB, OpStB, OpFLd, OpFSt, OpLea, OpBr,
		OpBeqz, OpCall, OpRet, OpSyscall, OpAtomicAdd, OpAtomicCAS, OpPush,
		OpPop, OpAddI, OpShlI, OpCallR, OpFSqrt,
	}
	for _, a := range Arches {
		for _, op := range ops {
			in := &Instr{Op: op, Imm: 42}
			s := EncodedSize(a, in)
			if s <= 0 || s > 16 {
				t.Errorf("%s %s: size %d out of range", a, op, s)
			}
			if a == ARM64 && op != OpLdi && op != OpFLdi && op != OpLea &&
				op != OpAtomicAdd && op != OpAtomicCAS && s != 4 {
				t.Errorf("arm64 %s: expected fixed 4-byte encoding, got %d", op, s)
			}
		}
	}
}

func TestEncodedSizeLdiScalesWithImmediate(t *testing.T) {
	small := EncodedSize(ARM64, &Instr{Op: OpLdi, Imm: 7})
	big := EncodedSize(ARM64, &Instr{Op: OpLdi, Imm: 1 << 60})
	if small >= big {
		t.Errorf("arm64 ldi: small imm %d >= big imm %d", small, big)
	}
	smallX := EncodedSize(X86, &Instr{Op: OpLdi, Imm: 7})
	bigX := EncodedSize(X86, &Instr{Op: OpLdi, Imm: 1 << 60})
	if smallX >= bigX {
		t.Errorf("x86 ldi: small imm %d >= big imm %d", smallX, bigX)
	}
}

func TestCycleCostsPositive(t *testing.T) {
	err := quick.Check(func(opRaw uint8) bool {
		op := Op(opRaw % uint8(OpPop+1))
		return CycleCost(X86, op) > 0 && CycleCost(ARM64, op) > 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCycleCostContrast(t *testing.T) {
	// The Xeon flavour must beat the X-Gene flavour on heavy ops (the
	// single-thread performance gap the paper's scheduling exploits).
	for _, op := range []Op{OpDiv, OpFDiv, OpFMul, OpFSqrt, OpLd} {
		if CycleCost(X86, op) >= CycleCost(ARM64, op) {
			t.Errorf("%s: x86 cost %d >= arm cost %d", op, CycleCost(X86, op), CycleCost(ARM64, op))
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpRet}, "ret"},
		{Instr{Op: OpLdi, Rd: 3, Imm: 42}, "ldi      r3, #42"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
