// Package isa defines the two simulated 64-bit instruction set
// architectures used throughout the reproduction: a CISC-flavoured x86-like
// ISA and a RISC-flavoured ARM64-like ISA.
//
// The two ISAs share an operation vocabulary (both are executed by the same
// machine simulator) but differ in everything the paper's migration problem
// cares about: register-file shape, calling convention, callee-saved sets,
// return-address discipline (stack push vs link register), stack alignment,
// instruction encoding length, and per-opcode cycle cost.
package isa

import "fmt"

// Arch identifies one of the simulated architectures.
type Arch int

const (
	// X86 is the CISC-flavoured simulated architecture (variable-length
	// encoding, return address pushed on the stack).
	X86 Arch = iota
	// ARM64 is the RISC-flavoured simulated architecture (fixed 4-byte
	// encoding, link register).
	ARM64
)

// NumArch is the number of simulated architectures.
const NumArch = 2

// Arches lists every simulated architecture.
var Arches = [NumArch]Arch{X86, ARM64}

// String returns the conventional lowercase name of the architecture.
func (a Arch) String() string {
	switch a {
	case X86:
		return "x86-64"
	case ARM64:
		return "arm64"
	}
	return fmt.Sprintf("arch(%d)", int(a))
}

// Other returns the opposite architecture; useful in two-machine tests.
func (a Arch) Other() Arch {
	if a == X86 {
		return ARM64
	}
	return X86
}

// Reg is an architectural register number. Integer and floating-point
// registers live in separate files; Reg values index into one of the two
// files depending on the instruction's operand class.
type Reg uint8

// NoReg marks an unused register operand.
const NoReg Reg = 0xFF

// RegClass distinguishes the integer and floating-point register files.
type RegClass int

const (
	// ClassInt is the general-purpose integer register file.
	ClassInt RegClass = iota
	// ClassFloat is the floating-point register file.
	ClassFloat
)

// Desc describes the architectural contract of one simulated ISA: register
// file sizes, ABI register assignments, alignment rules and encoding model.
type Desc struct {
	Arch Arch
	Name string

	// NumIntRegs and NumFloatRegs are the architectural register file sizes
	// (including special registers such as SP/FP/LR).
	NumIntRegs   int
	NumFloatRegs int

	// SP, FP are the stack- and frame-pointer registers. LR is the link
	// register, or NoReg if the ISA pushes return addresses on the stack.
	SP, FP, LR Reg

	// IntArgRegs and FloatArgRegs are the argument-passing registers in
	// order. IntRet and FloatRet hold return values.
	IntArgRegs   []Reg
	FloatArgRegs []Reg
	IntRet       Reg
	FloatRet     Reg

	// CalleeSavedInt and CalleeSavedFloat must be preserved across calls.
	CalleeSavedInt   []Reg
	CalleeSavedFloat []Reg

	// CallerSavedInt and CallerSavedFloat may be clobbered by calls.
	CallerSavedInt   []Reg
	CallerSavedFloat []Reg

	// AllocatableInt and AllocatableFloat are the registers available to the
	// register allocator (excludes SP, FP, LR and the scratch registers).
	AllocatableInt   []Reg
	AllocatableFloat []Reg

	// ScratchInt and ScratchFloat are reserved for the code generator's own
	// short-lived needs (address materialisation, spill reloads). The third
	// integer scratch is only used outside call marshalling (atomics).
	ScratchInt   [3]Reg
	ScratchFloat [2]Reg

	// StackAlign is the required SP alignment in bytes at call boundaries.
	StackAlign int64

	// RetAddrOnStack reports whether CALL pushes the return address onto the
	// stack (x86 style) as opposed to writing the link register (ARM style).
	RetAddrOnStack bool

	// ClockHz is the simulated core frequency.
	ClockHz float64

	// Cores is the number of cores on the reference server for this ISA.
	Cores int

	// L1MissPenalty is the additional cycle cost of an L1 miss.
	L1MissPenalty int64
}

var (
	x86Desc   *Desc
	arm64Desc *Desc
)

// Named x86 registers. RAX..R15 as 0..15.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

// Named arm64 registers: X0..X30 as 0..30, SP as 31.
const (
	X0 Reg = iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16
	X17
	X18
	X19
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	X29 // frame pointer
	X30 // link register
	SPReg
)

func init() {
	x86Desc = &Desc{
		Arch:         X86,
		Name:         "x86-64",
		NumIntRegs:   16,
		NumFloatRegs: 16,
		SP:           RSP,
		FP:           RBP,
		LR:           NoReg,
		IntArgRegs:   []Reg{RDI, RSI, RDX, RCX, R8, R9},
		FloatArgRegs: []Reg{0, 1, 2, 3, 4, 5, 6, 7}, // XMM0-7
		IntRet:       RAX,
		FloatRet:     0, // XMM0
		CalleeSavedInt: []Reg{
			RBX, R12, R13, R14, R15, // RBP handled as frame pointer
		},
		// Real SysV leaves all XMM caller-saved; the simulated ISA preserves
		// XMM8-11 so float-heavy code is not pathologically memory-bound
		// (documented deviation; the 4-vs-8 asymmetry with arm64 remains).
		CalleeSavedFloat: []Reg{8, 9, 10, 11},
		CallerSavedInt:   []Reg{RAX, RCX, RDX, RSI, RDI, R8, R9, R10},
		CallerSavedFloat: []Reg{0, 1, 2, 3, 4, 5, 6, 7, 12, 13},
		// Vreg homes come from the callee-saved sets only; Allocatable lists
		// them for completeness.
		AllocatableInt:   []Reg{RBX, R12, R13, R14, R15},
		AllocatableFloat: []Reg{8, 9, 10, 11},
		ScratchInt:       [3]Reg{R11, R10, R9},
		ScratchFloat:     [2]Reg{15, 14},
		StackAlign:       8,
		RetAddrOnStack:   true,
		ClockHz:          3.5e9,
		Cores:            6,
		L1MissPenalty:    12,
	}

	arm64Desc = &Desc{
		Arch:         ARM64,
		Name:         "arm64",
		NumIntRegs:   32, // X0-X30 plus SP
		NumFloatRegs: 32,
		SP:           SPReg,
		FP:           X29,
		LR:           X30,
		IntArgRegs:   []Reg{X0, X1, X2, X3, X4, X5, X6, X7},
		FloatArgRegs: []Reg{0, 1, 2, 3, 4, 5, 6, 7}, // V0-V7
		IntRet:       X0,
		FloatRet:     0,
		CalleeSavedInt: []Reg{
			X19, X20, X21, X22, X23, X24, X25, X26, X27, X28,
		},
		CalleeSavedFloat: []Reg{8, 9, 10, 11, 12, 13, 14, 15}, // V8-V15
		CallerSavedInt: []Reg{
			X0, X1, X2, X3, X4, X5, X6, X7, X8, X9, X10, X11, X12, X13, X14, X15,
		},
		CallerSavedFloat: []Reg{0, 1, 2, 3, 4, 5, 6, 7},
		AllocatableInt: []Reg{
			X19, X20, X21, X22, X23, X24, X25, X26, X27, X28,
		},
		AllocatableFloat: []Reg{8, 9, 10, 11, 12, 13, 14, 15},
		ScratchInt:       [3]Reg{X16, X17, X18},
		ScratchFloat:     [2]Reg{31, 30},
		StackAlign:       16,
		RetAddrOnStack:   false,
		ClockHz:          2.4e9,
		Cores:            8,
		L1MissPenalty:    25,
	}
}

// Describe returns the architectural description of a.
func Describe(a Arch) *Desc {
	switch a {
	case X86:
		return x86Desc
	case ARM64:
		return arm64Desc
	}
	panic(fmt.Sprintf("isa: unknown arch %d", int(a)))
}

// IntRegName returns a human-readable name for an integer register.
func (d *Desc) IntRegName(r Reg) string {
	if d.Arch == X86 {
		names := [...]string{
			"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
			"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
		}
		if int(r) < len(names) {
			return names[r]
		}
	} else {
		if r == SPReg {
			return "sp"
		}
		if r == X29 {
			return "x29/fp"
		}
		if r == X30 {
			return "x30/lr"
		}
		if int(r) < 31 {
			return fmt.Sprintf("x%d", int(r))
		}
	}
	return fmt.Sprintf("r?%d", int(r))
}

// FloatRegName returns a human-readable name for a floating-point register.
func (d *Desc) FloatRegName(r Reg) string {
	if d.Arch == X86 {
		return fmt.Sprintf("xmm%d", int(r))
	}
	return fmt.Sprintf("v%d", int(r))
}

// IsCalleeSaved reports whether integer register r must be preserved by a
// callee on this architecture. The frame pointer and link register are
// treated as callee-saved because prologues save and restore them.
func (d *Desc) IsCalleeSaved(r Reg) bool {
	if r == d.FP || (d.LR != NoReg && r == d.LR) {
		return true
	}
	for _, cs := range d.CalleeSavedInt {
		if cs == r {
			return true
		}
	}
	return false
}

// IsCalleeSavedFloat reports whether float register r is callee-saved.
func (d *Desc) IsCalleeSavedFloat(r Reg) bool {
	for _, cs := range d.CalleeSavedFloat {
		if cs == r {
			return true
		}
	}
	return false
}
