// Package dbt models the KVM/QEMU dynamic-binary-translation baseline of
// the paper's Figure 1: running an application compiled for one ISA on a
// machine of the other ISA through emulation.
//
// Mechanically, an emulated machine executes the guest ISA's code stream
// (semantics are exact) on a core with the HOST's clock frequency, core
// count and cache-miss penalties, while every guest instruction is charged
// a translated-code expansion factor per operation class. The factors are
// calibrated to the asymmetry the paper measures: emulating ARM guests on
// the strong x86 host costs roughly an order of magnitude; emulating x86
// guests on the weak ARM host costs two to four orders of magnitude
// (complex CISC decode plus helper-heavy translated code plus soft-float
// FP), matching Figure 1's 10x-10000x range.
package dbt

import (
	"fmt"

	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/link"
	"heterodc/internal/msg"
)

// Profile is one translation cost model: cycle multipliers per operation
// class, applied on top of the HOST's native per-op costs.
type Profile struct {
	Name string
	// IntFactor multiplies simple ALU / move ops.
	IntFactor float64
	// MemFactor multiplies loads/stores (softmmu address translation).
	MemFactor float64
	// FPFactor multiplies floating-point ops.
	FPFactor float64
	// BranchFactor multiplies control transfers (TB chaining / lookup).
	BranchFactor float64
	// SyscallFactor multiplies the trap cost (full VM exit).
	SyscallFactor float64
}

// ARMonX86 models QEMU-style emulation of an ARM guest on the x86 host:
// painful but within an order of magnitude or two.
func ARMonX86() Profile {
	return Profile{
		Name:      "arm-on-x86",
		IntFactor: 9, MemFactor: 14, FPFactor: 22, BranchFactor: 18,
		SyscallFactor: 40,
	}
}

// X86onARM models emulation of an x86 guest on the weak ARM host: CISC
// decode, flag emulation and soft-float blow up per-instruction costs by
// two to four orders of magnitude, as the paper's Figure 1 (bottom) shows.
func X86onARM() Profile {
	return Profile{
		Name:      "x86-on-arm",
		IntFactor: 45, MemFactor: 90, FPFactor: 900, BranchFactor: 120,
		SyscallFactor: 300,
	}
}

// ProfileFor returns the emulation profile for running guest code on host.
func ProfileFor(guest, host isa.Arch) (Profile, error) {
	switch {
	case guest == isa.ARM64 && host == isa.X86:
		return ARMonX86(), nil
	case guest == isa.X86 && host == isa.ARM64:
		return X86onARM(), nil
	}
	return Profile{}, fmt.Errorf("dbt: no profile for %s guest on %s host", guest, host)
}

// CostFn builds the per-op cycle cost function: host-native cost of the
// equivalent operation times the class factor.
func CostFn(host isa.Arch, p Profile) func(op isa.Op) int64 {
	return func(op isa.Op) int64 {
		base := float64(isa.CycleCost(host, op))
		var f float64
		switch op {
		case isa.OpLd, isa.OpSt, isa.OpLdB, isa.OpStB, isa.OpFLd, isa.OpFSt,
			isa.OpPush, isa.OpPop, isa.OpAtomicAdd, isa.OpAtomicCAS:
			f = p.MemFactor
		case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv, isa.OpFNeg,
			isa.OpFSqrt, isa.OpFMov, isa.OpFLdi, isa.OpI2F, isa.OpF2I,
			isa.OpFCmpEq, isa.OpFCmpNe, isa.OpFCmpLt, isa.OpFCmpLe,
			isa.OpFCmpGt, isa.OpFCmpGe:
			f = p.FPFactor
		case isa.OpBr, isa.OpBeqz, isa.OpBnez, isa.OpCall, isa.OpCallR, isa.OpRet:
			f = p.BranchFactor
		case isa.OpSyscall:
			f = p.SyscallFactor
		default:
			f = p.IntFactor
		}
		c := int64(base * f)
		if c < 1 {
			c = 1
		}
		return c
	}
}

// EmulatedDesc builds the hybrid machine description: guest ISA semantics
// and ABI with the host's clock, core count and memory-system penalties.
func EmulatedDesc(guest, host isa.Arch) *isa.Desc {
	g := *isa.Describe(guest)
	h := isa.Describe(host)
	g.ClockHz = h.ClockHz
	g.Cores = h.Cores
	g.L1MissPenalty = h.L1MissPenalty
	return &g
}

// NewEmulationCluster builds a single-machine cluster that runs guest-ISA
// binaries under emulation on a host-ISA machine.
func NewEmulationCluster(guest, host isa.Arch) (*kernel.Cluster, error) {
	p, err := ProfileFor(guest, host)
	if err != nil {
		return nil, err
	}
	spec := kernel.MachineSpec{
		Arch:   guest,
		Desc:   EmulatedDesc(guest, host),
		CostFn: CostFn(host, p),
	}
	return kernel.NewClusterSpec([]kernel.MachineSpec{spec}, msg.DolphinPXH810()), nil
}

// RunEmulated runs img's guest-arch code under emulation on host and
// returns the simulated wall time.
func RunEmulated(img *link.Image, guest, host isa.Arch) (seconds float64, out []byte, err error) {
	cl, err := NewEmulationCluster(guest, host)
	if err != nil {
		return 0, nil, err
	}
	p, err := cl.Spawn(img, 0)
	if err != nil {
		return 0, nil, err
	}
	if _, err := cl.RunProcess(p); err != nil {
		return 0, nil, err
	}
	return cl.Time(), p.Output(), nil
}
