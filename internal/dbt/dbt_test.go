package dbt

import (
	"testing"

	"heterodc/internal/isa"
)

func TestProfileForDirections(t *testing.T) {
	p, err := ProfileFor(isa.ARM64, isa.X86)
	if err != nil || p.Name != "arm-on-x86" {
		t.Fatalf("%v %v", p, err)
	}
	q, err := ProfileFor(isa.X86, isa.ARM64)
	if err != nil || q.Name != "x86-on-arm" {
		t.Fatalf("%v %v", q, err)
	}
	if _, err := ProfileFor(isa.X86, isa.X86); err == nil {
		t.Error("same-ISA emulation profile must not exist")
	}
}

func TestAsymmetry(t *testing.T) {
	a2x := ARMonX86()
	x2a := X86onARM()
	// The paper's Figure 1: x86-on-ARM is dramatically worse.
	if x2a.IntFactor <= a2x.IntFactor || x2a.FPFactor <= 10*a2x.FPFactor {
		t.Errorf("asymmetry too weak: %+v vs %+v", a2x, x2a)
	}
}

func TestCostFnClassification(t *testing.T) {
	p := X86onARM()
	fn := CostFn(isa.ARM64, p)
	// Every cost positive.
	for _, op := range []isa.Op{isa.OpAdd, isa.OpLd, isa.OpFMul, isa.OpBr, isa.OpSyscall, isa.OpNop} {
		if fn(op) < 1 {
			t.Errorf("%s: non-positive emulated cost", op)
		}
	}
	// FP must dominate integer; memory must exceed ALU.
	if fn(isa.OpFMul) <= fn(isa.OpAdd) {
		t.Error("FP emulation not costlier than integer")
	}
	if fn(isa.OpLd) <= fn(isa.OpAdd) {
		t.Error("softmmu memory not costlier than ALU")
	}
	// Emulated cost must exceed native host cost everywhere.
	for _, op := range []isa.Op{isa.OpAdd, isa.OpLd, isa.OpFDiv, isa.OpCall} {
		if fn(op) <= isa.CycleCost(isa.ARM64, op) {
			t.Errorf("%s: emulated cost not above native", op)
		}
	}
}

func TestEmulatedDescHybrid(t *testing.T) {
	d := EmulatedDesc(isa.X86, isa.ARM64)
	host := isa.Describe(isa.ARM64)
	guest := isa.Describe(isa.X86)
	if d.ClockHz != host.ClockHz || d.Cores != host.Cores || d.L1MissPenalty != host.L1MissPenalty {
		t.Error("host timing not applied")
	}
	if d.Arch != isa.X86 || d.SP != guest.SP || d.RetAddrOnStack != guest.RetAddrOnStack {
		t.Error("guest semantics not preserved")
	}
	// The global descriptor must not have been mutated.
	if isa.Describe(isa.X86).ClockHz == host.ClockHz {
		t.Error("EmulatedDesc mutated the shared descriptor")
	}
}

func TestNewEmulationClusterRejectsSameISA(t *testing.T) {
	if _, err := NewEmulationCluster(isa.X86, isa.X86); err == nil {
		t.Error("same-ISA cluster accepted")
	}
}
