package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"heterodc/internal/compiler"
	"heterodc/internal/ir"
	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/link"
)

// progGen builds a random but well-formed IR program: a chain of small
// functions with arithmetic, loads/stores to a global array, local allocas,
// comparisons and bounded loops, ending in a checksum printed via the write
// syscall. Division and remainder are guarded so no run traps.
type progGen struct {
	rng *rand.Rand
}

func (g *progGen) i64(max int64) int64 { return g.rng.Int63n(max) }

// buildFunc creates one function of depth d that may call next (the
// previously created function).
func (g *progGen) buildFunc(m *ir.Module, name, next string, depth int) *ir.Func {
	b := ir.NewFunc(name, ir.I64,
		ir.Param{Name: "a", Type: ir.I64},
		ir.Param{Name: "b", Type: ir.I64},
	)
	acc := b.Mov(b.Param(0))
	tmp := b.Mov(b.Param(1))

	// A local array with a pointer through it (exercises alloca copying
	// and pointer fixup during migration).
	buf := b.Alloca(4 * 8)
	b.Store(buf, 0, acc)
	b.Store(buf, 8, tmp)

	nOps := 3 + g.rng.Intn(8)
	for i := 0; i < nOps; i++ {
		switch g.rng.Intn(7) {
		case 0:
			b.MovTo(acc, b.Bin(ir.Add, acc, tmp))
		case 1:
			b.MovTo(acc, b.Bin(ir.Sub, acc, b.Const(g.i64(1000))))
		case 2:
			b.MovTo(acc, b.Bin(ir.Mul, acc, b.Const(1+g.i64(7))))
		case 3:
			// Guarded division: divisor |x|+1.
			d := b.BinImm(ir.Or, b.Const(1+g.i64(99)), 1)
			b.MovTo(acc, b.Bin(ir.Div, acc, d))
		case 4:
			b.MovTo(tmp, b.Bin(ir.Xor, tmp, acc))
		case 5:
			b.MovTo(acc, b.BinImm(ir.Shr, acc, 1+g.i64(8)))
		case 6:
			// Global array access at a bounded index.
			idx := b.BinImm(ir.And, tmp, 15)
			off := b.BinImm(ir.Mul, idx, 8)
			base := b.GlobalAddr("garr", 0)
			addr := b.PtrAdd(base, off)
			old := b.Load(ir.I64, addr, 0)
			b.Store(addr, 0, b.Bin(ir.Add, old, acc))
			b.MovTo(tmp, old)
		}
	}

	// A bounded loop accumulating into the alloca.
	iters := b.Const(2 + g.i64(6))
	i := b.Const(0)
	head := b.NewBlock("head")
	b.SetBlock(head - 1)
	b.Br(head)
	b.SetBlock(head)
	cond := b.Cmp(ir.Lt, i, iters)
	headEnd := b.Block()
	body := b.NewBlock("body")
	v0 := b.Load(ir.I64, buf, 0)
	b.Store(buf, 0, b.Bin(ir.Add, v0, acc))
	b.MovTo(i, b.BinImm(ir.Add, i, 1))
	b.Br(head)
	exit := b.NewBlock("exit")
	b.SetBlock(headEnd)
	b.CondBr(cond, body, exit)
	b.SetBlock(exit)

	final := b.Load(ir.I64, buf, 0)
	if next != "" {
		// Call deeper with mangled args; combine.
		r := b.Call(ir.I64, next, b.Bin(ir.Xor, final, tmp), b.BinImm(ir.And, acc, 0xffff))
		final = b.Bin(ir.Add, final, r)
	}
	b.Ret(final)
	return b.Done()
}

// buildProgram builds a whole module; main prints the result via SysWrite.
func (g *progGen) buildProgram() (*ir.Module, error) {
	m := ir.NewModule("prop")
	if err := m.AddGlobal(&ir.Global{Name: "garr", Size: 16 * 8}); err != nil {
		return nil, err
	}
	if err := m.AddGlobal(&ir.Global{Name: "outbuf", Size: 8}); err != nil {
		return nil, err
	}
	depth := 2 + g.rng.Intn(3)
	prev := ""
	for d := depth; d >= 1; d-- {
		name := fmt.Sprintf("f%d", d)
		f := g.buildFunc(m, name, prev, d)
		if err := m.AddFunc(f); err != nil {
			return nil, err
		}
		prev = name
	}
	b := ir.NewFunc("main", ir.I64)
	r := b.Call(ir.I64, prev, b.Const(g.i64(1_000_000)), b.Const(g.i64(1_000_000)))
	// Store the result in a global and write its bytes to stdout so outputs
	// are comparable bit-exactly.
	out := b.GlobalAddr("outbuf", 0)
	b.Store(out, 0, r)
	fd := b.Const(1)
	n := b.Const(8)
	b.Syscall(2 /* SysWrite */, fd, out, n)
	b.Ret(b.Const(0))
	if err := m.AddFunc(b.Done()); err != nil {
		return nil, err
	}
	return m, nil
}

func TestPropertyRandomProgramsAgree(t *testing.T) {
	check := func(seed int64) bool {
		g := &progGen{rng: rand.New(rand.NewSource(seed))}
		m, err := g.buildProgram()
		if err != nil {
			t.Logf("seed %d: gen: %v", seed, err)
			return false
		}

		// Interpreter reference BEFORE compilation mutates the module.
		ip := ir.NewInterp(m)
		if _, err := ip.Run("main"); err != nil {
			t.Logf("seed %d: interp: %v", seed, err)
			return false
		}
		want := string(ip.Output())

		art, err := compiler.Compile(m, compiler.DefaultOptions())
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		img, err := link.Link("prop", art, link.Options{Aligned: true})
		if err != nil {
			t.Logf("seed %d: link: %v", seed, err)
			return false
		}

		// Native on both ISAs.
		for _, arch := range isa.Arches {
			cl := NewSingle(arch)
			p, err := cl.Spawn(img, 0)
			if err != nil {
				t.Logf("seed %d: spawn: %v", seed, err)
				return false
			}
			if _, err := cl.RunProcess(p); err != nil {
				t.Logf("seed %d: %s run: %v", seed, arch, err)
				return false
			}
			if got := string(p.Output()); got != want {
				t.Logf("seed %d: %s output %x != interp %x", seed, arch, got, want)
				return false
			}
		}

		// Migration torture: bounce at every migration point.
		cl := NewTestbed()
		p, err := cl.Spawn(img, NodeX86)
		if err != nil {
			t.Logf("seed %d: spawn: %v", seed, err)
			return false
		}
		cl.OnMigration = func(ev kernel.MigrationEvent) {
			_ = cl.RequestMigration(p, ev.Tid, 1-ev.To)
		}
		_ = cl.RequestMigration(p, 0, NodeARM)
		if _, err := cl.RunProcess(p); err != nil {
			t.Logf("seed %d: torture run: %v", seed, err)
			return false
		}
		if got := string(p.Output()); got != want {
			t.Logf("seed %d: torture output %x != interp %x", seed, got, want)
			return false
		}
		return true
	}
	n := 48
	if testing.Short() {
		n = 10
	}
	if err := quick.Check(func(seed uint32) bool {
		return check(int64(seed))
	}, &quick.Config{MaxCount: n}); err != nil {
		t.Fatalf("property failed: %v", err)
	}
}
