package core

import (
	"fmt"
	"strings"
	"testing"

	"heterodc/internal/kernel"
)

// tortureSrc exercises pointers into the stack, heap data, globals, floats
// in callee-saved registers, recursion and byte arrays — everything the
// stack transformation must preserve.
const tortureSrc = `
long gcounter = 0;
double gsum = 0.0;

long helper(long *p, long depth) {
	long local[4];
	local[0] = *p + depth;
	local[1] = local[0] * 3;
	if (depth > 0) {
		long r = helper(&local[1], depth - 1);
		return r + local[0];
	}
	return local[1];
}

double fwork(long n) {
	double acc = 1.0;
	for (long i = 1; i <= n; i++) {
		acc += sqrt((double)i) / (double)n;
		gsum += acc * 0.001;
	}
	return acc;
}

long main(void) {
	long seed = 7;
	long *heap = (long*)malloc(64 * 8);
	for (long i = 0; i < 64; i++) heap[i] = i * i + 1;
	char name[16];
	name[0] = 'o'; name[1] = 'k'; name[2] = 0;

	long total = 0;
	for (long round = 0; round < 6; round++) {
		total += helper(&seed, 5);
		double f = fwork(300);
		total += (long)(f * 100.0);
		total += heap[round * 7 % 64];
		gcounter += round;
		seed = (seed * 31 + round) % 1000;
	}
	print_str(name);
	print_char(' ');
	print_i64_ln(total);
	print_i64_ln(gcounter);
	print_i64_ln((long)(gsum * 10.0));
	free((char*)heap);
	return 0;
}
`

func TestMigrationTortureEveryPoint(t *testing.T) {
	img, err := Build("torture", Src("torture.c", tortureSrc))
	if err != nil {
		t.Fatalf("build: %v", err)
	}

	// Reference run: no migration.
	ref, err := Run(img, NodeX86)
	if err != nil {
		t.Fatalf("ref: %v", err)
	}
	refOut := string(ref.Output)
	if !strings.HasPrefix(refOut, "ok ") {
		t.Fatalf("unexpected reference output %q", refOut)
	}
	ref2, err := Run(img, NodeARM)
	if err != nil {
		t.Fatalf("ref arm: %v", err)
	}
	if string(ref2.Output) != refOut {
		t.Fatalf("native outputs differ across ISAs:\n x86: %q\n arm: %q", refOut, ref2.Output)
	}

	// Torture run: bounce at every migration point.
	for _, start := range []int{NodeX86, NodeARM} {
		cl := NewTestbed()
		p, err := cl.Spawn(img, start)
		if err != nil {
			t.Fatalf("spawn: %v", err)
		}
		cl.OnMigration = func(ev kernel.MigrationEvent) {
			// Request the next bounce immediately.
			_ = cl.RequestMigration(p, ev.Tid, 1-ev.To)
		}
		if err := cl.RequestMigration(p, 0, 1-start); err != nil {
			t.Fatalf("request: %v", err)
		}
		res, err := Wait(cl, p)
		if err != nil {
			t.Fatalf("torture(start=%d): %v", start, err)
		}
		if string(res.Output) != refOut {
			t.Errorf("torture(start=%d) output diverged:\n got  %q\n want %q", start, res.Output, refOut)
		}
		if res.Migrations < 20 {
			t.Errorf("torture(start=%d): only %d migrations", start, res.Migrations)
		}
	}
}

const pompSrc = `
long nthreads = 4;
long partial[64];
double fpartial[64];

long worker(long tid) {
	long sense = 0;
	long sum = 0;
	double facc = 0.0;
	for (long round = 0; round < 3; round++) {
		for (long i = tid; i < 4000; i += nthreads) {
			sum += i % 97;
			facc += sqrt((double)(i + 1));
		}
		sense = barrier_wait(sense);
	}
	partial[tid] = sum;
	fpartial[tid] = facc;
	return sum;
}

long main(void) {
	long total = pomp_run(worker, nthreads);
	long check = 0;
	double fcheck = 0.0;
	for (long i = 0; i < nthreads; i++) {
		check += partial[i];
		fcheck += fpartial[i];
	}
	print_i64_ln(total);
	print_i64_ln(check);
	print_i64_ln((long)fcheck);
	return 0;
}
`

func TestMultithreadedPompBothISAs(t *testing.T) {
	img, err := Build("pomp", Src("pomp.c", pompSrc))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var outs []string
	for _, node := range []int{NodeX86, NodeARM} {
		res, err := Run(img, node)
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
		outs = append(outs, string(res.Output))
	}
	if outs[0] != outs[1] {
		t.Fatalf("multithreaded outputs differ:\n x86 %q\n arm %q", outs[0], outs[1])
	}
	lines := strings.Split(strings.TrimSpace(outs[0]), "\n")
	if len(lines) != 3 || lines[0] != lines[1] {
		t.Fatalf("inconsistent totals: %q", outs[0])
	}
}

func TestMultithreadedMigration(t *testing.T) {
	img, err := Build("pomp2", Src("pomp.c", pompSrc))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ref, err := Run(img, NodeX86)
	if err != nil {
		t.Fatalf("ref: %v", err)
	}

	// Migrate the whole container (all threads) to ARM shortly after start,
	// then back; results must be identical.
	cl := NewTestbed()
	p, err := cl.Spawn(img, NodeX86)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	moved := 0
	cl.OnMigration = func(ev kernel.MigrationEvent) { moved++ }
	done := make(chan struct{})
	_ = done
	// Drive the cluster manually, raising migration flags at two instants.
	t1 := ref.Seconds * 0.2
	t2 := ref.Seconds * 0.6
	requested1, requested2 := false, false
	for {
		exited, _ := p.Exited()
		if exited {
			break
		}
		now := cl.Time()
		if !requested1 && now > t1 {
			cl.RequestProcessMigration(p, NodeARM)
			requested1 = true
		}
		if !requested2 && now > t2 {
			cl.RequestProcessMigration(p, NodeX86)
			requested2 = true
		}
		if !cl.Step() {
			t.Fatalf("cluster drained early")
		}
	}
	if err := p.Err(); err != nil {
		t.Fatalf("process failed: %v", err)
	}
	if string(p.Output()) != string(ref.Output) {
		t.Errorf("migrated multithreaded output diverged:\n got  %q\n want %q", p.Output(), ref.Output)
	}
	if moved == 0 {
		t.Errorf("no threads migrated")
	}
}

func TestManySequentialMigrations(t *testing.T) {
	src := `
long main(void) {
	long sum = 0;
	for (long i = 0; i < 40; i++) {
		migrate(i % 2);
		sum += getnode() + i;
	}
	print_i64_ln(sum);
	return 0;
}
`
	img, err := Build("seq", Src("seq.c", src))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := Run(img, NodeX86)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// sum = sum of (node_i + i) where node alternates 0,1,0,1... after each
	// migrate(i%2): node == i%2.
	want := int64(0)
	for i := int64(0); i < 40; i++ {
		want += i%2 + i
	}
	if got := strings.TrimSpace(string(res.Output)); got != fmt.Sprint(want) {
		t.Errorf("got %s, want %d", got, want)
	}
	if res.Migrations < 20 {
		t.Errorf("expected ~40 migrations, got %d", res.Migrations)
	}
}

// TestAtomicsAcrossMigrationAndDSM: two threads on different machines
// hammer one shared word through the DSM's exclusive-ownership protocol
// while one of them migrates mid-stream; no increment may be lost.
func TestAtomicsAcrossMigrationAndDSM(t *testing.T) {
	src := `
long shared = 0;
long hops = 0;
long worker(long tid) {
	if (tid == 1) migrate(1); // worker starts remote
	for (long i = 0; i < 400; i++) {
		__atomic_add(&shared, 1);
		if (tid == 1 && i == 200) {
			migrate(0); // hop home mid-stream
			hops++;
		}
	}
	return 0;
}
long main(void) {
	long t1 = spawn(worker, 1);
	worker(0);
	join(t1);
	print_i64_ln(shared);
	print_i64_ln(hops);
	return 0;
}
`
	img, err := Build("atomic-mig", Src("am.c", src))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := Run(img, NodeX86)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := string(res.Output); got != "800\n1\n" {
		t.Errorf("got %q, want 800 increments and 1 hop", got)
	}
	if res.Migrations < 2 {
		t.Errorf("migrations %d, want >= 2", res.Migrations)
	}
}
