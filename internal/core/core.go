// Package core is the public facade of the heterodc library: it ties the
// mini-C frontend, the multi-ISA compiler and linker, and the
// replicated-kernel cluster simulator together behind a small API.
//
// Typical use:
//
//	img, err := core.Build("app", core.Src("app.c", source))
//	cl := core.NewTestbed()
//	p, err := cl.Spawn(img, core.NodeX86)
//	res, err := core.Wait(cl, p)
//
// Migration is requested with cl.RequestProcessMigration(p, core.NodeARM)
// (or per-thread via cl.RequestMigration); the thread moves at its next
// migration point, exactly as in the paper.
package core

import (
	"fmt"

	"heterodc/internal/compiler"
	"heterodc/internal/isa"
	"heterodc/internal/kernel"
	"heterodc/internal/link"
	"heterodc/internal/minic"
)

// Node indices of the reference testbed (see kernel.NewTestbed).
const (
	// NodeX86 is the Xeon-flavoured server.
	NodeX86 = 0
	// NodeARM is the X-Gene-flavoured server.
	NodeARM = 1
)

// Src builds a named mini-C source.
func Src(name, code string) minic.Source { return minic.Source{Name: name, Code: code} }

// BuildOptions configures Build.
type BuildOptions struct {
	// Compiler controls migration-point insertion.
	Compiler compiler.Options
	// Linker controls symbol alignment.
	Linker link.Options
}

// DefaultBuildOptions produce a migratable, aligned multi-ISA binary.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{
		Compiler: compiler.DefaultOptions(),
		Linker:   link.Options{Aligned: true},
	}
}

// Build compiles mini-C sources into an aligned, migratable multi-ISA image.
func Build(name string, sources ...minic.Source) (*link.Image, error) {
	return BuildWith(name, DefaultBuildOptions(), sources...)
}

// BuildWith compiles with explicit options (e.g. no migration points, or an
// unaligned baseline image).
func BuildWith(name string, opts BuildOptions, sources ...minic.Source) (*link.Image, error) {
	mod, err := minic.CompileToIR(name, sources...)
	if err != nil {
		return nil, fmt.Errorf("core: frontend: %w", err)
	}
	art, err := compiler.Compile(mod, opts.Compiler)
	if err != nil {
		return nil, fmt.Errorf("core: backend: %w", err)
	}
	img, err := link.Link(name, art, opts.Linker)
	if err != nil {
		return nil, fmt.Errorf("core: link: %w", err)
	}
	return img, nil
}

// NewTestbed builds the paper's two-server evaluation cluster.
func NewTestbed() *kernel.Cluster { return kernel.NewTestbed() }

// NewSingle builds a one-machine cluster of the given architecture (for
// native-baseline runs).
func NewSingle(arch isa.Arch) *kernel.Cluster {
	return kernel.NewCluster([]isa.Arch{arch}, kernel.DefaultInterconnect())
}

// Result summarises a finished process.
type Result struct {
	ExitCode int64
	Output   []byte
	// Seconds is the simulated wall time at exit.
	Seconds float64
	// Migrations counts completed thread migrations.
	Migrations int
}

// Wait runs the cluster until p exits and returns its result.
func Wait(cl *kernel.Cluster, p *kernel.Process) (*Result, error) {
	code, err := cl.RunProcess(p)
	if err != nil {
		return nil, err
	}
	res := &Result{ExitCode: code, Output: p.Output(), Seconds: cl.Time()}
	for tid := int64(0); ; tid++ {
		t := p.Thread(tid)
		if t == nil {
			break
		}
		res.Migrations += t.Migrations
	}
	return res, nil
}

// Run is the one-shot helper: build a fresh testbed, run img on node, wait.
func Run(img *link.Image, node int) (*Result, error) {
	cl := NewTestbed()
	p, err := cl.Spawn(img, node)
	if err != nil {
		return nil, err
	}
	return Wait(cl, p)
}
