package core

import (
	"strings"
	"testing"

	"heterodc/internal/isa"
)

const helloSrc = `
long main(void) {
	print_str("hello, heterogeneous world\n");
	print_i64_ln(6 * 7);
	print_f64(3.14159);
	println();
	return 0;
}
`

func TestHelloNativeBothISAs(t *testing.T) {
	img, err := Build("hello", Src("hello.c", helloSrc))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	want := "hello, heterogeneous world\n42\n3.141590\n"
	for node, arch := range []isa.Arch{isa.X86, isa.ARM64} {
		res, err := Run(img, node)
		if err != nil {
			t.Fatalf("%s: run: %v", arch, err)
		}
		if res.ExitCode != 0 {
			t.Errorf("%s: exit code %d", arch, res.ExitCode)
		}
		if got := string(res.Output); got != want {
			t.Errorf("%s: output %q, want %q", arch, got, want)
		}
	}
}

const fibSrc = `
long fib(long n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}

long main(void) {
	print_i64_ln(fib(20));
	return 0;
}
`

func TestRecursionBothISAs(t *testing.T) {
	img, err := Build("fib", Src("fib.c", fibSrc))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for node, arch := range []isa.Arch{isa.X86, isa.ARM64} {
		res, err := Run(img, node)
		if err != nil {
			t.Fatalf("%s: run: %v", arch, err)
		}
		if got := strings.TrimSpace(string(res.Output)); got != "6765" {
			t.Errorf("%s: fib(20) = %q, want 6765", arch, got)
		}
	}
}

const migrateSrc = `
long work(long n) {
	long sum = 0;
	double acc = 0.0;
	for (long i = 1; i <= n; i++) {
		sum += i * i % 1000;
		acc += sqrt((double)i);
	}
	return sum + (long)acc;
}

long main(void) {
	long before = getnode();
	long a = work(20000);
	migrate(1 - before);
	long after = getnode();
	long b = work(20000);
	print_kv("before=", before);
	print_kv("after=", after);
	print_i64_ln(a + b);
	return 0;
}
`

func TestExplicitMigration(t *testing.T) {
	img, err := Build("mig", Src("mig.c", migrateSrc))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// Run natively without crossing nodes first to get the reference value.
	cl := NewTestbed()
	p, err := cl.Spawn(img, NodeX86)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	res, err := Wait(cl, p)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	out := string(res.Output)
	if !strings.Contains(out, "before=0\n") || !strings.Contains(out, "after=1\n") {
		t.Fatalf("migration did not move nodes: output %q", out)
	}
	if res.Migrations == 0 {
		t.Fatalf("no migrations recorded")
	}

	// The computed value must match the ARM-only and x86-only runs.
	ref := func(node int) string {
		r, err := Run(img, node)
		if err != nil {
			t.Fatalf("ref run: %v", err)
		}
		lines := strings.Split(strings.TrimSpace(string(r.Output)), "\n")
		return lines[len(lines)-1]
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	got := lines[len(lines)-1]
	// Reference runs also migrate (migrate(1-before) moves them); spawn on
	// ARM so that run starts there and moves to x86: value must agree.
	wantX := ref(NodeX86)
	wantA := ref(NodeARM)
	if got != wantX || got != wantA {
		t.Errorf("migrated value %s; x86-start %s, arm-start %s", got, wantX, wantA)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("bad", Src("bad.c", `long main(void){ return x; }`)); err == nil {
		t.Error("frontend error not propagated")
	}
	if _, err := Build("nomain", Src("n.c", `long helper(void){ return 1; }`)); err == nil {
		t.Error("missing main not reported")
	}
}

func TestSpawnBadNode(t *testing.T) {
	img, err := Build("ok", Src("ok.c", `long main(void){ return 0; }`))
	if err != nil {
		t.Fatal(err)
	}
	cl := NewTestbed()
	if _, err := cl.Spawn(img, 7); err == nil {
		t.Error("spawn on nonexistent node accepted")
	}
}

func TestResultFields(t *testing.T) {
	img, err := Build("r", Src("r.c", `long main(void){ print_str("x"); return 3; }`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(img, NodeARM)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 3 || string(res.Output) != "x" || res.Seconds <= 0 || res.Migrations != 0 {
		t.Errorf("result %+v", res)
	}
}
