package core

import (
	"strings"
	"testing"

	"heterodc/internal/kernel"
)

// TestManyArgsStackPassing exercises arguments beyond the register count
// (6 int on x86, 8 on arm64) so some are stack-passed on one ISA and
// register-passed on the other — a layout difference the common address
// space does NOT hide and the per-ISA ABIs must each get right.
func TestManyArgsStackPassing(t *testing.T) {
	src := `
long sum10(long a, long b, long c, long d, long e,
           long f, long g, long h, long i, long j) {
	return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h + 9*i + 10*j;
}
double mix9(double a, long b, double c, long d, double e,
            long f, double g, long h, double i) {
	return a + (double)b * 2.0 + c + (double)d + e + (double)f + g + (double)h + i;
}
long main(void) {
	print_i64_ln(sum10(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));
	print_f64(mix9(0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5));
	println();
	return 0;
}
`
	img, err := Build("args", Src("args.c", src))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	want := "385\n23.500000\n"
	for _, node := range []int{NodeX86, NodeARM} {
		res, err := Run(img, node)
		if err != nil {
			t.Fatalf("node %d: %v", node, err)
		}
		if string(res.Output) != want {
			t.Errorf("node %d: %q, want %q", node, res.Output, want)
		}
	}
}

// TestManyArgsAcrossMigration migrates inside a deep call chain whose
// frames hold stack-passed arguments.
func TestManyArgsAcrossMigration(t *testing.T) {
	src := `
long deep(long a, long b, long c, long d, long e,
          long f, long g, long h, long i, long depth) {
	if (depth == 0) {
		migrate(1 - getnode());
		return a + b + c + d + e + f + g + h + i;
	}
	return deep(a+1, b, c, d, e, f, g, h, i, depth - 1) + depth;
}
long main(void) {
	print_i64_ln(deep(1, 2, 3, 4, 5, 6, 7, 8, 9, 6));
	print_i64_ln(getnode());
	return 0;
}
`
	img, err := Build("deepargs", Src("deepargs.c", src))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// Expected: after 6 recursions a=7, sum=7+2+..+9=51; plus sum(1..6)=21 -> 72.
	res, err := Run(img, NodeX86)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := string(res.Output); got != "72\n1\n" {
		t.Errorf("got %q, want %q", got, "72\n1\n")
	}
	if res.Migrations != 1 {
		t.Errorf("migrations %d", res.Migrations)
	}
}

// TestManyLiveFloatsAcrossMigration keeps more float values live than the
// x86 flavour's callee-saved float file holds (4), so on one side some live
// in registers and on the other in frame slots — both stackmap location
// flavours cross the migration.
func TestManyLiveFloatsAcrossMigration(t *testing.T) {
	src := `
double spin(double a, double b, double c, double d, double e, double f) {
	for (long i = 0; i < 50; i++) {
		a += 0.5; b *= 1.001; c += a * 0.01; d -= 0.25; e += b * 0.001; f += c;
	}
	// a..f all live here, across this call:
	migrate(1 - getnode());
	return a + b + c + d + e + f;
}
long main(void) {
	double r = spin(1.0, 2.0, 3.0, 4.0, 5.0, 6.0);
	print_f64(r);
	println();
	print_i64_ln(getnode());
	return 0;
}
`
	img, err := Build("floats", Src("floats.c", src))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// Reference: same program without crossing (migrate to self).
	refSrc := strings.Replace(src, "migrate(1 - getnode());", "migrate(getnode());", 1)
	refImg, err := Build("floats-ref", Src("floats-ref.c", refSrc))
	if err != nil {
		t.Fatalf("build ref: %v", err)
	}
	ref, err := Run(refImg, NodeX86)
	if err != nil {
		t.Fatalf("ref: %v", err)
	}
	refVal := strings.Split(string(ref.Output), "\n")[0]

	for _, start := range []int{NodeX86, NodeARM} {
		cl := NewTestbed()
		p, err := cl.Spawn(img, start)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Wait(cl, p)
		if err != nil {
			t.Fatalf("start %d: %v", start, err)
		}
		lines := strings.Split(string(res.Output), "\n")
		if lines[0] != refVal {
			t.Errorf("start %d: float result %s != reference %s", start, lines[0], refVal)
		}
	}
}

// TestLiveValuesInRegistersOfOuterFrames forces the callee-save-chain walk:
// outer frames hold register-resident live values while inner frames also
// use (and save) those registers.
func TestLiveValuesInRegistersOfOuterFrames(t *testing.T) {
	src := `
long level3(long x) {
	long a = x * 3;
	long b = x + 7;
	migrate(1 - getnode());
	return a * b;
}
long level2(long x) {
	long a = x * 2;   // live across the call below, likely in a callee-saved reg
	long b = x - 1;
	long r = level3(x + 1);
	return r + a * b;
}
long level1(long x) {
	long a = x + 100; // ditto, one frame further out
	long r = level2(x * 2);
	return r + a;
}
long main(void) {
	print_i64_ln(level1(5));
	return 0;
}
`
	img, err := Build("regs", Src("regs.c", src))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// level1(5): a=105, level2(10): a=20,b=9, level3(11): a=33,b=18 ->
	// 33*18=594; 594+180=774; 774+105=879.
	for _, start := range []int{NodeX86, NodeARM} {
		res, err := Run(img, start)
		if err != nil {
			t.Fatalf("start %d: %v", start, err)
		}
		if got := strings.TrimSpace(string(res.Output)); got != "879" {
			t.Errorf("start %d: got %s, want 879", start, got)
		}
		if res.Migrations == 0 {
			t.Errorf("start %d: no migration happened", start)
		}
	}
}

// TestBounceInsideDeepRecursion migrates at every point inside deep
// recursion so many frames are rewritten repeatedly.
func TestBounceInsideDeepRecursion(t *testing.T) {
	src := `
long collatz(long n, long depth) {
	if (n == 1 || depth > 300) return depth;
	if (n % 2 == 0) return collatz(n / 2, depth + 1);
	return collatz(3 * n + 1, depth + 1);
}
long main(void) {
	long total = 0;
	for (long i = 1; i <= 30; i++) total += collatz(i, 0);
	print_i64_ln(total);
	return 0;
}
`
	img, err := Build("collatz", Src("collatz.c", src))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ref, err := Run(img, NodeX86)
	if err != nil {
		t.Fatalf("ref: %v", err)
	}
	cl := NewTestbed()
	p, err := cl.Spawn(img, NodeARM)
	if err != nil {
		t.Fatal(err)
	}
	cl.OnMigration = func(ev kernel.MigrationEvent) {
		_ = cl.RequestMigration(p, ev.Tid, 1-ev.To)
	}
	_ = cl.RequestMigration(p, 0, NodeX86)
	res, err := Wait(cl, p)
	if err != nil {
		t.Fatalf("bounce: %v", err)
	}
	if string(res.Output) != string(ref.Output) {
		t.Errorf("bounced output %q != ref %q", res.Output, ref.Output)
	}
	if res.Migrations < 100 {
		t.Errorf("only %d migrations", res.Migrations)
	}
}

// TestUnalignedBinaryCannotMigrate: the Table 1 baseline runs natively but
// the kernel refuses to migrate it (no common layout, no valid mapping).
func TestUnalignedBinaryCannotMigrate(t *testing.T) {
	src := `long main(void){ migrate(1); return getnode(); }`
	opts := DefaultBuildOptions()
	opts.Linker.Aligned = false
	img, err := BuildWith("unal", opts, Src("unal.c", src))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	_, err = Run(img, NodeX86)
	if err == nil || !strings.Contains(err.Error(), "unaligned") {
		t.Fatalf("expected unaligned-migration error, got %v", err)
	}
}

// TestProcessIsolation: two containers on the same machines have disjoint
// address spaces — same virtual addresses, separate state (the namespace
// property of OS containers).
func TestProcessIsolation(t *testing.T) {
	src := `
long counter = 0;
long main(void) {
	for (long i = 0; i < 1000; i++) counter++;
	migrate(1);
	for (long i = 0; i < 1000; i++) counter++;
	print_i64_ln(counter);
	return 0;
}`
	img, err := Build("iso", Src("iso.c", src))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	cl := NewTestbed()
	p1, err := cl.Spawn(img, NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cl.Spawn(img, NodeARM)
	if err != nil {
		t.Fatal(err)
	}
	for {
		d1, _ := p1.Exited()
		d2, _ := p2.Exited()
		if d1 && d2 {
			break
		}
		if !cl.Step() {
			t.Fatal("drained")
		}
	}
	if err := p1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := p2.Err(); err != nil {
		t.Fatal(err)
	}
	if string(p1.Output()) != "2000\n" || string(p2.Output()) != "2000\n" {
		t.Errorf("isolation broken: p1=%q p2=%q", p1.Output(), p2.Output())
	}
}

// TestStackLinkedListAcrossMigration builds a linked list whose nodes live
// in stack frames (pointers stored *inside* alloca memory pointing at other
// allocas); the transformation's region-based fixup must rebase every link.
func TestStackLinkedListAcrossMigration(t *testing.T) {
	src := `
// Each recursion level adds a stack node {value, next} to the front of the
// list, then the deepest level migrates and walks the whole chain.
long walk(long *head) {
	long sum = 0;
	long *p = head;
	while ((long)p != 0) {
		sum += p[0];
		p = (long*)p[1];
	}
	return sum;
}
long build(long depth, long *head) {
	long node[2];
	node[0] = depth * depth;
	node[1] = (long)head;
	if (depth == 0) {
		migrate(1 - getnode());
		return walk(node);
	}
	return build(depth - 1, node);
}
long main(void) {
	print_i64_ln(build(6, (long*)0));
	print_i64_ln(getnode());
	return 0;
}
`
	img, err := Build("list", Src("list.c", src))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// Expected: sum of squares 0..6 = 91.
	for _, start := range []int{NodeX86, NodeARM} {
		res, err := Run(img, start)
		if err != nil {
			t.Fatalf("start %d: %v", start, err)
		}
		lines := strings.Split(strings.TrimSpace(string(res.Output)), "\n")
		if lines[0] != "91" {
			t.Errorf("start %d: walked sum %s, want 91", start, lines[0])
		}
		if res.Migrations == 0 {
			t.Errorf("start %d: no migration", start)
		}
	}
}

// TestHeapAndGlobalPointersSurviveMigration: pointers to globals and heap
// need no fixup (identity mapping under the common layout); values must be
// bit-identical after crossing.
func TestHeapAndGlobalPointersSurviveMigration(t *testing.T) {
	src := `
long gval = 77;
long main(void) {
	long *gp = &gval;
	long *hp = (long*)malloc(16);
	hp[0] = 123;
	hp[1] = (long)gp;      // pointer stored in heap
	migrate(1 - getnode());
	long *gp2 = (long*)hp[1];
	print_i64_ln(*gp + hp[0] + *gp2);
	return 0;
}
`
	img, err := Build("heapptr", Src("hp.c", src))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, err := Run(img, NodeX86)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := strings.TrimSpace(string(res.Output)); got != "277" {
		t.Errorf("got %s, want 277", got)
	}
}
