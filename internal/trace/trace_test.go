package trace

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Median != 3 || s.Max != 5 || s.Mean != 3 {
		t.Fatalf("summary %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles %v %v", s.Q1, s.Q3)
	}
}

func TestSummarizeInterpolation(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Median != 2.5 {
		t.Fatalf("median %v, want 2.5", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary")
	}
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Q1 != 7 || s.Q3 != 7 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestDecadeHistogram(t *testing.T) {
	var h DecadeHistogram
	for _, v := range []float64{0.5, 1, 9, 10, 99, 100, 1e6} {
		h.Add(v)
	}
	if h.Total != 7 {
		t.Fatal("total")
	}
	if h.Counts[0] != 3 { // 0.5, 1, 9
		t.Errorf("decade 0: %d", h.Counts[0])
	}
	if h.Counts[1] != 2 || h.Counts[2] != 1 || h.Counts[6] != 1 {
		t.Errorf("counts %v", h.Counts)
	}
	if h.Row(3) != "3\t2\t1" {
		t.Errorf("row %q", h.Row(3))
	}
	if h.String() == "" {
		t.Error("empty render")
	}
}

func TestDecadeHistogramClampsHuge(t *testing.T) {
	var h DecadeHistogram
	h.Add(1e30)
	if h.Counts[len(h.Counts)-1] != 1 {
		t.Fatal("huge value not clamped to last bucket")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Errorf("geomean %v", g)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, 0}) != 0 {
		t.Error("degenerate geomean")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{2, 4, 6}) != 4 || Mean(nil) != 0 {
		t.Error("mean")
	}
}

// Property: the five-number summary brackets correctly for any input.
func TestPropertySummaryOrdering(t *testing.T) {
	err := quick.Check(func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
