package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Event is one recorded fault/recovery occurrence: a retransmission, a
// node crash, a migration rollback.
type Event struct {
	Time   float64
	Kind   string
	Detail string
}

// EventLog is a bounded recorder satisfying msg.EventSink and msg.NodeSink.
// The kernel and interconnect feed it fault, retry and recovery events;
// chaos experiments read it back to explain a run. Each ring is bounded:
// beyond the capacity the oldest events are overwritten (and counted as
// dropped) rather than growing without bound under a noisy fault plan —
// keeping the most recent window, which is what a post-mortem wants.
//
// Storage is sharded. RecordNode appends to a per-node ring (events a
// node's own schedule produces: retransmissions, fence rejections,
// migration aborts); Record appends to a global ring (events produced
// outside any single node's schedule: membership transitions, timer
// actions, crash plans). A sharing group under the parallel engine replays
// exactly the sequential schedule restricted to its nodes, so every
// per-node stream is engine-invariant, and the canonical merge on read —
// by time, global ring first among equals, then node order, preserving
// each ring's own sequence — yields the same transcript under both
// engines. That is what lets a tracer ride inside grouped parallel windows
// instead of pinning the engine to one inline group. The mutex exists for
// memory safety when group workers grow the shard table concurrently;
// ordering never depends on who wins it.
type EventLog struct {
	mu sync.Mutex
	// max is each ring's capacity; <= 0 means unbounded.
	max    int
	global ring
	nodes  []*ring
}

// ring is one bounded event buffer, oldest-first once unrolled.
type ring struct {
	buf     []Event
	start   int // index of the oldest retained event
	dropped int
}

func (r *ring) record(max int, e Event) {
	if max <= 0 || len(r.buf) < max {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % max
	r.dropped++
}

// events returns the retained events, oldest first.
func (r *ring) events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.start:]...)
	out = append(out, r.buf[:r.start]...)
	return out
}

// NewEventLog builds a log whose rings each retain at most max events
// (<= 0: unbounded).
func NewEventLog(max int) *EventLog { return &EventLog{max: max} }

// Cap returns the configured per-ring capacity (<= 0: unbounded).
func (l *EventLog) Cap() int { return l.max }

// Record appends one event to the global ring, overwriting the oldest past
// the capacity.
func (l *EventLog) Record(t float64, kind, detail string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.global.record(l.max, Event{Time: t, Kind: kind, Detail: detail})
}

// RecordNode appends one event to node's ring (the msg.NodeSink fast
// path). A negative node routes to the global ring.
func (l *EventLog) RecordNode(node int, t float64, kind, detail string) {
	if node < 0 {
		l.Record(t, kind, detail)
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for node >= len(l.nodes) {
		l.nodes = append(l.nodes, &ring{})
	}
	l.nodes[node].record(l.max, Event{Time: t, Kind: kind, Detail: detail})
}

// Events returns the retained events in the canonical merged order: by
// time, global ring first among equals, then node order, preserving each
// ring's own sequence.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	type tagged struct {
		ev    Event
		shard int // -1 global, else the node index
	}
	all := make([]tagged, 0, l.lenLocked())
	for _, e := range l.global.events() {
		all = append(all, tagged{e, -1})
	}
	for n, r := range l.nodes {
		for _, e := range r.events() {
			all = append(all, tagged{e, n})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].ev.Time != all[j].ev.Time {
			return all[i].ev.Time < all[j].ev.Time
		}
		return all[i].shard < all[j].shard
	})
	out := make([]Event, len(all))
	for i, t := range all {
		out[i] = t.ev
	}
	return out
}

// Dropped returns how many events were overwritten at the capacity, summed
// over every ring. Per-node streams are engine-invariant, so each ring's
// drop count — and therefore the sum — is too.
func (l *EventLog) Dropped() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.global.dropped
	for _, r := range l.nodes {
		d += r.dropped
	}
	return d
}

func (l *EventLog) lenLocked() int {
	n := len(l.global.buf)
	for _, r := range l.nodes {
		n += len(r.buf)
	}
	return n
}

// Len returns the number of retained events across every ring.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lenLocked()
}

// Count returns how many retained events have the given kind.
func (l *EventLog) Count(kind string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.global.buf {
		if e.Kind == kind {
			n++
		}
	}
	for _, r := range l.nodes {
		for _, e := range r.buf {
			if e.Kind == kind {
				n++
			}
		}
	}
	return n
}

// String renders the log one event per line in the canonical merged order.
func (l *EventLog) String() string {
	var sb strings.Builder
	events := l.Events()
	dropped := l.Dropped()
	for _, e := range events {
		fmt.Fprintf(&sb, "%12.6fs  %-16s %s\n", e.Time, e.Kind, e.Detail)
	}
	if dropped > 0 {
		fmt.Fprintf(&sb, "  ... %d older events dropped at the %d-event-per-ring cap\n", dropped, l.max)
	}
	return sb.String()
}
