package trace

import (
	"fmt"
	"strings"
	"sync"
)

// Event is one recorded fault/recovery occurrence: a retransmission, a
// node crash, a migration rollback.
type Event struct {
	Time   float64
	Kind   string
	Detail string
}

// EventLog is a bounded recorder satisfying msg.EventSink. The kernel and
// interconnect feed it fault, retry and recovery events; chaos experiments
// read it back to explain a run. It is a ring buffer: beyond the capacity
// the oldest events are overwritten (and counted as dropped) rather than
// growing without bound under a noisy fault plan — keeping the most recent
// window, which is what a post-mortem wants.
//
// All methods are safe for concurrent use; a cluster tracer pins the
// parallel engine to a single sequential group anyway (the transcript is a
// total order), but subsystem logs may be shared across goroutines.
type EventLog struct {
	mu sync.Mutex
	// max is the ring capacity; <= 0 means unbounded.
	max     int
	buf     []Event
	start   int // index of the oldest retained event
	dropped int
}

// NewEventLog builds a log retaining at most max events (<= 0: unbounded).
func NewEventLog(max int) *EventLog { return &EventLog{max: max} }

// Cap returns the configured capacity (<= 0: unbounded).
func (l *EventLog) Cap() int { return l.max }

// Record appends one event, overwriting the oldest past the capacity.
func (l *EventLog) Record(t float64, kind, detail string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Event{Time: t, Kind: kind, Detail: detail}
	if l.max <= 0 || len(l.buf) < l.max {
		l.buf = append(l.buf, e)
		return
	}
	l.buf[l.start] = e
	l.start = (l.start + 1) % l.max
	l.dropped++
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.start:]...)
	out = append(out, l.buf[:l.start]...)
	return out
}

// Dropped returns how many events were overwritten at the capacity.
func (l *EventLog) Dropped() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Count returns how many retained events have the given kind.
func (l *EventLog) Count(kind string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.buf {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// String renders the log one event per line, oldest first.
func (l *EventLog) String() string {
	var sb strings.Builder
	events := l.Events()
	dropped := l.Dropped()
	for _, e := range events {
		fmt.Fprintf(&sb, "%12.6fs  %-16s %s\n", e.Time, e.Kind, e.Detail)
	}
	if dropped > 0 {
		fmt.Fprintf(&sb, "  ... %d older events dropped at the %d-event cap\n", dropped, l.max)
	}
	return sb.String()
}
