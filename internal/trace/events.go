package trace

import (
	"fmt"
	"strings"
)

// Event is one recorded fault/recovery occurrence: a retransmission, a
// node crash, a migration rollback.
type Event struct {
	Time   float64
	Kind   string
	Detail string
}

// EventLog is a bounded recorder satisfying msg.EventSink. The kernel and
// interconnect feed it fault, retry and recovery events; chaos experiments
// read it back to explain a run. Beyond Max events the log drops new
// entries (counting them) rather than growing without bound under a noisy
// fault plan.
type EventLog struct {
	// Max bounds the retained events; <= 0 means unbounded.
	Max     int
	Events  []Event
	Dropped int
}

// NewEventLog builds a log retaining at most max events.
func NewEventLog(max int) *EventLog { return &EventLog{Max: max} }

// Record appends one event, honouring the bound.
func (l *EventLog) Record(t float64, kind, detail string) {
	if l.Max > 0 && len(l.Events) >= l.Max {
		l.Dropped++
		return
	}
	l.Events = append(l.Events, Event{Time: t, Kind: kind, Detail: detail})
}

// Count returns how many retained events have the given kind.
func (l *EventLog) Count(kind string) int {
	n := 0
	for _, e := range l.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// String renders the log one event per line.
func (l *EventLog) String() string {
	var sb strings.Builder
	for _, e := range l.Events {
		fmt.Fprintf(&sb, "%12.6fs  %-16s %s\n", e.Time, e.Kind, e.Detail)
	}
	if l.Dropped > 0 {
		fmt.Fprintf(&sb, "  ... and %d more events dropped at the %d-event cap\n", l.Dropped, l.Max)
	}
	return sb.String()
}
