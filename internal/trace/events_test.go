package trace

import (
	"strings"
	"testing"
)

func TestEventLogRecordAndCount(t *testing.T) {
	l := NewEventLog(10)
	l.Record(0.5, "retx", "0->1 retry 1")
	l.Record(0.6, "crash", "node 1 down")
	l.Record(0.7, "retx", "0->1 retry 2")
	if got := l.Count("retx"); got != 2 {
		t.Fatalf("Count(retx) = %d, want 2", got)
	}
	if got := l.Count("crash"); got != 1 {
		t.Fatalf("Count(crash) = %d, want 1", got)
	}
	if l.Events[1].Time != 0.6 || l.Events[1].Detail != "node 1 down" {
		t.Fatalf("event mangled: %+v", l.Events[1])
	}
}

func TestEventLogBounded(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 10; i++ {
		l.Record(float64(i), "retx", "x")
	}
	if len(l.Events) != 3 {
		t.Fatalf("retained %d events, want 3", len(l.Events))
	}
	if l.Dropped != 7 {
		t.Fatalf("Dropped = %d, want 7", l.Dropped)
	}
	if !strings.Contains(l.String(), "7 more events dropped") {
		t.Fatalf("String() omits the drop note:\n%s", l.String())
	}
}

func TestEventLogUnbounded(t *testing.T) {
	l := NewEventLog(0)
	for i := 0; i < 100; i++ {
		l.Record(float64(i), "retx", "x")
	}
	if len(l.Events) != 100 || l.Dropped != 0 {
		t.Fatalf("unbounded log retained %d, dropped %d", len(l.Events), l.Dropped)
	}
}
