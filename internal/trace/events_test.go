package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestEventLogRecordAndCount(t *testing.T) {
	l := NewEventLog(10)
	l.Record(0.5, "retx", "0->1 retry 1")
	l.Record(0.6, "crash", "node 1 down")
	l.Record(0.7, "retx", "0->1 retry 2")
	if got := l.Count("retx"); got != 2 {
		t.Fatalf("Count(retx) = %d, want 2", got)
	}
	if got := l.Count("crash"); got != 1 {
		t.Fatalf("Count(crash) = %d, want 1", got)
	}
	ev := l.Events()
	if ev[1].Time != 0.6 || ev[1].Detail != "node 1 down" {
		t.Fatalf("event mangled: %+v", ev[1])
	}
}

func TestEventLogRingKeepsNewest(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 10; i++ {
		l.Record(float64(i), "retx", "x")
	}
	ev := l.Events()
	if len(ev) != 3 || l.Len() != 3 {
		t.Fatalf("retained %d events, want 3", len(ev))
	}
	// A ring keeps the most recent window, oldest first.
	if ev[0].Time != 7 || ev[1].Time != 8 || ev[2].Time != 9 {
		t.Fatalf("ring kept %v %v %v, want times 7 8 9", ev[0], ev[1], ev[2])
	}
	if l.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", l.Dropped())
	}
	if !strings.Contains(l.String(), "7 older events dropped") {
		t.Fatalf("String() omits the drop note:\n%s", l.String())
	}
}

func TestEventLogUnbounded(t *testing.T) {
	l := NewEventLog(0)
	for i := 0; i < 100; i++ {
		l.Record(float64(i), "retx", "x")
	}
	if l.Len() != 100 || l.Dropped() != 0 {
		t.Fatalf("unbounded log retained %d, dropped %d", l.Len(), l.Dropped())
	}
}

func TestEventLogConcurrentRecord(t *testing.T) {
	l := NewEventLog(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Record(float64(i), "retx", "x")
			}
		}()
	}
	wg.Wait()
	if l.Len() != 64 {
		t.Fatalf("retained %d events, want 64", l.Len())
	}
	if l.Dropped() != 8*100-64 {
		t.Fatalf("Dropped = %d, want %d", l.Dropped(), 8*100-64)
	}
}
