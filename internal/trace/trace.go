// Package trace provides the small statistics helpers the experiment
// harness uses: quantile summaries (for Figure 10's box plots) and
// decade histograms (for Figures 3-5's instructions-between-migration-
// points distributions).
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary is a five-number summary of a sample set.
type Summary struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
}

// Summarize computes the five-number summary (nearest-rank quantiles).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		idx := p * float64(len(s)-1)
		lo := int(math.Floor(idx))
		hi := int(math.Ceil(idx))
		if lo == hi {
			return s[lo]
		}
		frac := idx - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	var sum float64
	for _, x := range s {
		sum += x
	}
	return Summary{
		N: len(s), Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75),
		Max: s[len(s)-1], Mean: sum / float64(len(s)),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g mean=%.3g",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// DecadeHistogram buckets positive values by order of magnitude:
// bucket i counts values in [10^i, 10^(i+1)).
type DecadeHistogram struct {
	Counts [12]int
	Total  int
}

// Add records one value.
func (h *DecadeHistogram) Add(v float64) {
	h.Total++
	if v < 1 {
		h.Counts[0]++
		return
	}
	d := int(math.Log10(v))
	if d >= len(h.Counts) {
		d = len(h.Counts) - 1
	}
	h.Counts[d]++
}

// String renders the histogram as one row per decade.
func (h *DecadeHistogram) String() string {
	var sb strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  10^%-2d : %d\n", i, c)
	}
	return sb.String()
}

// Row renders counts for decades [0, n) as tab-separated values.
func (h *DecadeHistogram) Row(n int) string {
	parts := make([]string, n)
	for i := 0; i < n && i < len(h.Counts); i++ {
		parts[i] = fmt.Sprint(h.Counts[i])
	}
	return strings.Join(parts, "\t")
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
