package minic

// Prelude is the runtime library compiled into every program — the role
// musl-libc plays in the paper's toolchain. It is written in mini-C itself
// on top of the __syscall/__atomic_*/__icall builtins, so it is subject to
// the same multi-ISA compilation, symbol alignment and (where safe)
// migration-point machinery as application code.
const Prelude = `
// --- system call wrappers ---

void exit(long code) { __syscall(1, code); }
long write(long fd, char *buf, long n) { return __syscall(2, fd, buf, n); }
long read(long fd, char *buf, long n) { return __syscall(12, fd, buf, n); }
long open(char *path, long flags) { return __syscall(11, path, flags); }
long close(long fd) { return __syscall(13, fd); }
long gettime_ns(void) { return __syscall(4); }
long spawn(long fn, long arg) { return __syscall(5, fn, arg); }
long join(long tid) { return __syscall(6, tid); }
void yield(void) { __syscall(7); }
void migrate(long node) { __syscall(8, node); }
long getnode(void) { return __syscall(9); }
long gettid(void) { return __syscall(10); }
long ncores(void) { return __syscall(15); }
long xrand(void) { return __syscall(16); }

// --- string and memory helpers ---

long strlen(char *s) {
    long n = 0;
    while (s[n] != 0) n++;
    return n;
}

long strcmp(char *a, char *b) {
    long i = 0;
    while (a[i] != 0 && a[i] == b[i]) i++;
    return a[i] - b[i];
}

void memset8(char *p, long val, long n) {
    for (long i = 0; i < n; i++) p[i] = val;
}

void memcpy8(char *dst, char *src, long n) {
    for (long i = 0; i < n; i++) dst[i] = src[i];
}

// --- console output ---

void print_char(long c) {
    char buf[8];
    buf[0] = c;
    write(1, buf, 1);
}

void print_str(char *s) { write(1, s, strlen(s)); }

void print_i64(long v) {
    char buf[32];
    long pos = 31;
    long neg = 0;
    if (v == 0) { print_char('0'); return; }
    if (v < 0) neg = 1;
    // Digits are extracted with remainders folded to non-negative, which
    // survives the INT64_MIN edge (where -v overflows).
    while (v != 0) {
        long r = v % 10;
        if (r < 0) r = -r;
        buf[pos] = '0' + r;
        pos--;
        v = v / 10;
    }
    if (neg) {
        buf[pos] = '-';
        pos--;
    }
    write(1, &buf[pos + 1], 31 - pos);
}

void print_f64(double v) {
    if (v != v) { print_str("nan"); return; }
    if (v < 0.0) { print_char('-'); v = -v; }
    long ip = (long)v;
    double frac = v - (double)ip;
    long fp6 = (long)(frac * 1000000.0 + 0.5);
    if (fp6 >= 1000000) { ip = ip + 1; fp6 = fp6 - 1000000; }
    print_i64(ip);
    print_char('.');
    long d = 100000;
    while (d > 0) {
        print_char('0' + (fp6 / d) % 10);
        d = d / 10;
    }
}

void println(void) { print_char(10); }

void print_i64_ln(long v) { print_i64(v); println(); }

void print_kv(char *k, long v) { print_str(k); print_i64(v); println(); }

// --- locking ---

void lock(long *l) {
    while (__atomic_cas(l, 0, 1) != 0) yield();
}

void unlock(long *l) { *l = 0; }

// --- heap allocator (first-fit free list with block splitting) ---

long __free_list = 0;
long __malloc_lock = 0;

char *malloc(long n) {
    if (n < 8) n = 8;
    n = (n + 7) & (0 - 8);
    lock(&__malloc_lock);
    long prev = 0;
    long blk = __free_list;
    while (blk != 0) {
        long bsz = *(long*)blk;
        long bnext = *(long*)(blk + 8);
        if (bsz >= n) {
            if (bsz >= n + 48) {
                long tail = blk + 16 + n;
                *(long*)tail = bsz - n - 16;
                *(long*)(tail + 8) = bnext;
                bnext = tail;
                *(long*)blk = n;
            }
            if (prev == 0) __free_list = bnext;
            else *(long*)(prev + 8) = bnext;
            unlock(&__malloc_lock);
            return (char*)(blk + 16);
        }
        prev = blk;
        blk = bnext;
    }
    unlock(&__malloc_lock);
    long base = __syscall(3, n + 16);
    *(long*)base = n;
    return (char*)(base + 16);
}

void free(char *p) {
    if ((long)p == 0) return;
    long blk = (long)p - 16;
    lock(&__malloc_lock);
    *(long*)(blk + 8) = __free_list;
    __free_list = blk;
    unlock(&__malloc_lock);
}

// --- fork/join parallel runtime (the POMP library of the paper) ---

long __bar_n = 1;
long __bar_remaining = 1;
long __bar_sense = 0;

void barrier_init(long n) {
    __bar_n = n;
    __bar_remaining = n;
    __bar_sense = 0;
}

// Sense-reversing centralized barrier. Each thread passes its current sense
// and uses the returned value for the next round (start from 0).
long barrier_wait(long sense) {
    long my = 1 - sense;
    long left = __atomic_add(&__bar_remaining, 0 - 1);
    if (left == 1) {
        __bar_remaining = __bar_n;
        __bar_sense = my;
    } else {
        while (__bar_sense != my) yield();
    }
    return my;
}

long __pomp_fn = 0;

long __pomp_worker(long tid) {
    return __icall((char*)__pomp_fn, tid);
}

// pomp_run(fn, n): run fn(tid) on n threads (tid 0..n-1, tid 0 on the
// calling thread), with a barrier sized for all of them; joins before
// returning. Returns the sum of worker return values.
long pomp_run(long fn, long n) {
    long tids[64];
    if (n < 1) n = 1;
    if (n > 63) n = 63;
    __pomp_fn = fn;
    barrier_init(n);
    for (long i = 1; i < n; i++) {
        tids[i] = spawn(__pomp_worker, i);
    }
    long total = __icall((char*)fn, 0);
    for (long i = 1; i < n; i++) {
        total += join(tids[i]);
    }
    return total;
}

// --- math helpers ---

double fabs(double x) { if (x < 0.0) return -x; return x; }

double fmax(double a, double b) { if (a > b) return a; return b; }

double fmin(double a, double b) { if (a < b) return a; return b; }

double pow_i(double x, long n) {
    double r = 1.0;
    long neg = 0;
    if (n < 0) { neg = 1; n = -n; }
    while (n > 0) {
        if (n % 2 == 1) r = r * x;
        x = x * x;
        n = n / 2;
    }
    if (neg) return 1.0 / r;
    return r;
}

long imax(long a, long b) { if (a > b) return a; return b; }
long imin(long a, long b) { if (a < b) return a; return b; }
`
