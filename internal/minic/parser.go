package minic

import "fmt"

// --- Types -----------------------------------------------------------------

type tyKind int

const (
	tyLong tyKind = iota
	tyDouble
	tyChar
	tyVoid
	tyPtr
)

// Ty is a mini-C type.
type Ty struct {
	Kind tyKind
	Elem *Ty // pointee for tyPtr
}

var (
	typeLong   = &Ty{Kind: tyLong}
	typeDouble = &Ty{Kind: tyDouble}
	typeChar   = &Ty{Kind: tyChar}
	typeVoid   = &Ty{Kind: tyVoid}
)

func ptrTo(t *Ty) *Ty { return &Ty{Kind: tyPtr, Elem: t} }

func (t *Ty) String() string {
	switch t.Kind {
	case tyLong:
		return "long"
	case tyDouble:
		return "double"
	case tyChar:
		return "char"
	case tyVoid:
		return "void"
	case tyPtr:
		return t.Elem.String() + "*"
	}
	return "?"
}

// size returns the byte size of a value of type t.
func (t *Ty) size() int64 {
	if t.Kind == tyChar {
		return 1
	}
	return 8
}

func (t *Ty) isNum() bool   { return t.Kind == tyLong || t.Kind == tyDouble || t.Kind == tyChar }
func (t *Ty) isInt() bool   { return t.Kind == tyLong || t.Kind == tyChar }
func (t *Ty) isFloat() bool { return t.Kind == tyDouble }

// --- AST ---------------------------------------------------------------------

type exprKind int

const (
	eInt exprKind = iota
	eFloat
	eStr
	eIdent
	eUnary   // Op in - ! ~ * &
	ePreIncr // Op in ++ --
	ePostIncr
	eBinary // arithmetic/logical/comparison
	eAssign // Op in = += -= *= /= %= &= |= ^= <<= >>=
	eCond   // L ? R : C3
	eCall   // Name(Args) or builtin
	eIndex  // L[R]
	eCast   // (CastTy)L
	eSizeof
)

// Expr is an expression node.
type Expr struct {
	Kind   exprKind
	Op     string
	L, R   *Expr
	C3     *Expr
	Ival   int64
	Fval   float64
	Sval   string
	Name   string
	Args   []*Expr
	CastTy *Ty

	line, col int
}

type stmtKind int

const (
	sExpr stmtKind = iota
	sDecl
	sIf
	sWhile
	sDoWhile
	sFor
	sReturn
	sBreak
	sContinue
	sBlock
	sEmpty
)

// Stmt is a statement node.
type Stmt struct {
	Kind stmtKind

	Expr *Expr   // sExpr, sReturn (may be nil)
	Decl []*Decl // sDecl

	Cond       *Expr
	Then, Else *Stmt   // sIf
	Body       *Stmt   // loops
	Init       *Stmt   // sFor
	Post       *Expr   // sFor
	List       []*Stmt // sBlock

	line, col int
}

// Decl is one variable declarator.
type Decl struct {
	Name     string
	Ty       *Ty
	ArrayLen int64 // -1 when not an array
	Init     *Expr
	InitList []*Expr // array initialiser

	line, col int
}

// Param is a function parameter.
type Param struct {
	Name string
	Ty   *Ty
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Ty
	Params []Param
	Body   *Stmt

	line, col int
}

// Program is one parsed translation unit.
type Program struct {
	Globals []*Decl
	Funcs   []*FuncDecl
}

// --- Parser -------------------------------------------------------------------

type parser struct {
	file string
	toks []token
	pos  int
}

// Parse parses mini-C source.
func Parse(file, src string) (*Program, error) {
	toks, err := lex(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	return p.program()
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	t := p.cur()
	return &Error{File: p.file, Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tPunct && t.text == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.cur()
	return t.kind == tKeyword && t.text == s
}

func (p *parser) accept(s string) bool {
	if p.isPunct(s) || p.isKeyword(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if p.accept(s) {
		return nil
	}
	return p.errf("expected %q, got %q", s, p.cur().text)
}

// typeStart reports whether the current token begins a type.
func (p *parser) typeStart() bool {
	return p.isKeyword("long") || p.isKeyword("double") || p.isKeyword("char") ||
		p.isKeyword("void") || p.isKeyword("static") || p.isKeyword("const")
}

// parseType parses a base type plus pointer stars.
func (p *parser) parseType() (*Ty, error) {
	for p.accept("static") || p.accept("const") {
	}
	var base *Ty
	switch {
	case p.accept("long"):
		base = typeLong
	case p.accept("double"):
		base = typeDouble
	case p.accept("char"):
		base = typeChar
	case p.accept("void"):
		base = typeVoid
	default:
		return nil, p.errf("expected type, got %q", p.cur().text)
	}
	for p.accept("*") {
		base = ptrTo(base)
	}
	return base, nil
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for p.cur().kind != tEOF {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		nameTok := p.cur()
		if nameTok.kind != tIdent {
			return nil, p.errf("expected name after type")
		}
		p.pos++
		if p.isPunct("(") {
			fd, err := p.funcRest(ty, nameTok)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fd)
			continue
		}
		decls, err := p.declRest(ty, nameTok)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, decls...)
	}
	return prog, nil
}

// declRest parses declarators after "type name" up to the semicolon.
func (p *parser) declRest(ty *Ty, nameTok token) ([]*Decl, error) {
	var out []*Decl
	d, err := p.declarator(ty, nameTok)
	if err != nil {
		return nil, err
	}
	out = append(out, d)
	for p.accept(",") {
		t := ty
		for p.accept("*") {
			t = ptrTo(t)
		}
		nt := p.cur()
		if nt.kind != tIdent {
			return nil, p.errf("expected name in declaration")
		}
		p.pos++
		d, err := p.declarator(t, nt)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) declarator(ty *Ty, nameTok token) (*Decl, error) {
	d := &Decl{Name: nameTok.text, Ty: ty, ArrayLen: -1, line: nameTok.line, col: nameTok.col}
	if p.accept("[") {
		t := p.cur()
		if t.kind != tInt {
			return nil, p.errf("array length must be an integer literal")
		}
		p.pos++
		d.ArrayLen = t.ival
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		if p.accept("{") {
			for !p.isPunct("}") {
				e, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				d.InitList = append(d.InitList, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect("}"); err != nil {
				return nil, err
			}
		} else {
			e, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
	}
	return d, nil
}

func (p *parser) funcRest(ret *Ty, nameTok token) (*FuncDecl, error) {
	fd := &FuncDecl{Name: nameTok.text, Ret: ret, line: nameTok.line, col: nameTok.col}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if p.accept("void") && p.isPunct(")") {
		// (void) parameter list
	} else {
		for !p.isPunct(")") {
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			nt := p.cur()
			if nt.kind != tIdent {
				return nil, p.errf("expected parameter name")
			}
			p.pos++
			fd.Params = append(fd.Params, Param{Name: nt.text, Ty: ty})
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *parser) block() (*Stmt, error) {
	t := p.cur()
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	blk := &Stmt{Kind: sBlock, line: t.line, col: t.col}
	for !p.isPunct("}") {
		if p.cur().kind == tEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		blk.List = append(blk.List, s)
	}
	p.pos++ // }
	return blk, nil
}

func (p *parser) stmt() (*Stmt, error) {
	t := p.cur()
	switch {
	case p.isPunct("{"):
		return p.block()
	case p.isPunct(";"):
		p.pos++
		return &Stmt{Kind: sEmpty, line: t.line, col: t.col}, nil
	case p.typeStart():
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		nt := p.cur()
		if nt.kind != tIdent {
			return nil, p.errf("expected name in declaration")
		}
		p.pos++
		decls, err := p.declRest(ty, nt)
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: sDecl, Decl: decls, line: t.line, col: t.col}, nil
	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s := &Stmt{Kind: sIf, Cond: cond, Then: then, line: t.line, col: t.col}
		if p.accept("else") {
			els, err := p.stmt()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
		return s, nil
	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: sWhile, Cond: cond, Body: body, line: t.line, col: t.col}, nil
	case p.accept("do"):
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect("while"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: sDoWhile, Cond: cond, Body: body, line: t.line, col: t.col}, nil
	case p.accept("for"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		s := &Stmt{Kind: sFor, line: t.line, col: t.col}
		if !p.isPunct(";") {
			if p.typeStart() {
				ty, err := p.parseType()
				if err != nil {
					return nil, err
				}
				nt := p.cur()
				if nt.kind != tIdent {
					return nil, p.errf("expected name in for-init declaration")
				}
				p.pos++
				decls, err := p.declRest(ty, nt) // consumes ';'
				if err != nil {
					return nil, err
				}
				s.Init = &Stmt{Kind: sDecl, Decl: decls}
			} else {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				s.Init = &Stmt{Kind: sExpr, Expr: e}
				if err := p.expect(";"); err != nil {
					return nil, err
				}
			}
		} else {
			p.pos++
		}
		if !p.isPunct(";") {
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Cond = cond
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if !p.isPunct(")") {
			post, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Post = post
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s.Body = body
		return s, nil
	case p.accept("return"):
		s := &Stmt{Kind: sReturn, line: t.line, col: t.col}
		if !p.isPunct(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Expr = e
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return s, nil
	case p.accept("break"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: sBreak, line: t.line, col: t.col}, nil
	case p.accept("continue"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: sContinue, line: t.line, col: t.col}, nil
	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: sExpr, Expr: e, line: t.line, col: t.col}, nil
	}
}

// --- Expressions (precedence climbing) ---

func (p *parser) expr() (*Expr, error) { return p.assignExpr() }

func (p *parser) assignExpr() (*Expr, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="} {
		if p.isPunct(op) {
			t := p.next()
			rhs, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: eAssign, Op: op, L: lhs, R: rhs, line: t.line, col: t.col}, nil
		}
	}
	return lhs, nil
}

func (p *parser) condExpr() (*Expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.isPunct("?") {
		t := p.next()
		a, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		b, err := p.condExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: eCond, L: c, R: a, C3: b, line: t.line, col: t.col}, nil
	}
	return c, nil
}

// binary precedence levels, lowest first.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binExpr(level int) (*Expr, error) {
	if level >= len(binLevels) {
		return p.unaryExpr()
	}
	lhs, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range binLevels[level] {
			if p.isPunct(op) {
				t := p.next()
				rhs, err := p.binExpr(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = &Expr{Kind: eBinary, Op: op, L: lhs, R: rhs, line: t.line, col: t.col}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

func (p *parser) unaryExpr() (*Expr, error) {
	t := p.cur()
	for _, op := range []string{"-", "!", "~", "*", "&"} {
		if p.isPunct(op) {
			p.pos++
			e, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: eUnary, Op: op, L: e, line: t.line, col: t.col}, nil
		}
	}
	if p.isPunct("++") || p.isPunct("--") {
		op := p.next().text
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ePreIncr, Op: op, L: e, line: t.line, col: t.col}, nil
	}
	// Cast: "(" type ")" unary
	if p.isPunct("(") && p.pos+1 < len(p.toks) {
		nt := p.toks[p.pos+1]
		if nt.kind == tKeyword && (nt.text == "long" || nt.text == "double" || nt.text == "char" || nt.text == "void") {
			p.pos++ // (
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			e, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: eCast, CastTy: ty, L: e, line: t.line, col: t.col}, nil
		}
	}
	if p.accept("sizeof") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &Expr{Kind: eSizeof, CastTy: ty, line: t.line, col: t.col}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (*Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("["):
			t := p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Expr{Kind: eIndex, L: e, R: idx, line: t.line, col: t.col}
		case p.isPunct("++"), p.isPunct("--"):
			t := p.next()
			e = &Expr{Kind: ePostIncr, Op: t.text, L: e, line: t.line, col: t.col}
		default:
			return e, nil
		}
	}
}

func (p *parser) primaryExpr() (*Expr, error) {
	t := p.cur()
	switch t.kind {
	case tInt, tChar:
		p.pos++
		return &Expr{Kind: eInt, Ival: t.ival, line: t.line, col: t.col}, nil
	case tFloat:
		p.pos++
		return &Expr{Kind: eFloat, Fval: t.fval, line: t.line, col: t.col}, nil
	case tString:
		p.pos++
		return &Expr{Kind: eStr, Sval: t.sval, line: t.line, col: t.col}, nil
	case tIdent:
		p.pos++
		if p.isPunct("(") {
			p.pos++
			call := &Expr{Kind: eCall, Name: t.text, line: t.line, col: t.col}
			for !p.isPunct(")") {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Expr{Kind: eIdent, Name: t.text, line: t.line, col: t.col}, nil
	}
	if p.accept("(") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}
