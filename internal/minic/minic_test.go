package minic

import (
	"strings"
	"testing"

	"heterodc/internal/ir"
)

// run compiles src to IR and executes it on the reference interpreter,
// returning its stdout.
func run(t *testing.T, src string) string {
	t.Helper()
	m, err := CompileToIR("test", Source{Name: "test.c", Code: src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	ip := ir.NewInterp(m)
	if _, err := ip.Run("main"); err != nil {
		t.Fatalf("run: %v", err)
	}
	return string(ip.Output())
}

// expectOut asserts the program prints want.
func expectOut(t *testing.T, src, want string) {
	t.Helper()
	if got := run(t, src); got != want {
		t.Errorf("output %q, want %q", got, want)
	}
}

// expectErr asserts compilation fails mentioning frag.
func expectErr(t *testing.T, src, frag string) {
	t.Helper()
	_, err := CompileToIR("test", Source{Name: "test.c", Code: src})
	if err == nil {
		t.Fatalf("expected error containing %q, compiled fine", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Errorf("error %q does not mention %q", err, frag)
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	expectOut(t, `long main(void){ print_i64_ln(2 + 3 * 4 - 10 / 2); return 0; }`, "9\n")
	expectOut(t, `long main(void){ print_i64_ln((2 + 3) * 4); return 0; }`, "20\n")
	expectOut(t, `long main(void){ print_i64_ln(17 % 5); return 0; }`, "2\n")
	expectOut(t, `long main(void){ print_i64_ln(1 << 10 | 3); return 0; }`, "1027\n")
	expectOut(t, `long main(void){ print_i64_ln(255 & 15 ^ 1); return 0; }`, "14\n")
	expectOut(t, `long main(void){ print_i64_ln(-7 / 2); return 0; }`, "-3\n")
}

func TestUnaryOperators(t *testing.T) {
	expectOut(t, `long main(void){ print_i64_ln(-(-5)); return 0; }`, "5\n")
	expectOut(t, `long main(void){ print_i64_ln(!0 + !7); return 0; }`, "1\n")
	expectOut(t, `long main(void){ print_i64_ln(~0); return 0; }`, "-1\n")
}

func TestComparisons(t *testing.T) {
	expectOut(t, `long main(void){
		print_i64(1 < 2); print_i64(2 <= 2); print_i64(3 > 4);
		print_i64(4 >= 4); print_i64(5 == 5); print_i64(5 != 5);
		println(); return 0; }`, "110110\n")
}

func TestShortCircuitSideEffects(t *testing.T) {
	expectOut(t, `
long calls = 0;
long bump(void) { calls++; return 1; }
long main(void) {
	long a = 0 && bump();
	long b = 1 || bump();
	print_i64(a); print_i64(b); print_i64_ln(calls);
	return 0;
}`, "010\n")
	expectOut(t, `
long calls = 0;
long bump(void) { calls++; return 0; }
long main(void) {
	long a = 1 && bump();
	long b = 0 || bump();
	print_i64(a); print_i64(b); print_i64_ln(calls);
	return 0;
}`, "002\n")
}

func TestTernary(t *testing.T) {
	expectOut(t, `long main(void){ print_i64_ln(3 > 2 ? 10 : 20); return 0; }`, "10\n")
	expectOut(t, `long main(void){ long x = 0; print_i64_ln(x ? 1 : x == 0 ? 2 : 3); return 0; }`, "2\n")
	expectOut(t, `long main(void){ print_f64(1 ? 2.5 : 0.0); println(); return 0; }`, "2.500000\n")
}

func TestLoops(t *testing.T) {
	expectOut(t, `long main(void){
		long s = 0;
		for (long i = 0; i < 10; i++) s += i;
		print_i64_ln(s); return 0; }`, "45\n")
	expectOut(t, `long main(void){
		long s = 0; long i = 0;
		while (i < 5) { s += i * i; i++; }
		print_i64_ln(s); return 0; }`, "30\n")
	expectOut(t, `long main(void){
		long n = 0;
		do { n++; } while (n < 3);
		print_i64_ln(n); return 0; }`, "3\n")
}

func TestBreakContinue(t *testing.T) {
	expectOut(t, `long main(void){
		long s = 0;
		for (long i = 0; i < 100; i++) {
			if (i % 2 == 0) continue;
			if (i > 10) break;
			s += i;
		}
		print_i64_ln(s); return 0; }`, "25\n")
	expectOut(t, `long main(void){
		long s = 0;
		for (long i = 0; i < 3; i++) {
			for (long j = 0; j < 10; j++) {
				if (j == 2) break;
				s += 1;
			}
		}
		print_i64_ln(s); return 0; }`, "6\n")
}

func TestIncrDecr(t *testing.T) {
	expectOut(t, `long main(void){
		long x = 5;
		print_i64(x++); print_i64(x); print_i64(++x); print_i64(x--); print_i64(--x);
		println(); return 0; }`, "56775\n")
}

func TestCompoundAssignment(t *testing.T) {
	expectOut(t, `long main(void){
		long x = 10;
		x += 5; x -= 3; x *= 2; x /= 4; x %= 4; x <<= 3; x |= 1; x ^= 2; x &= 31;
		print_i64_ln(x); return 0; }`, "19\n")
	expectOut(t, `long main(void){
		double d = 1.0; d += 0.5; d *= 4.0; d /= 2.0; d -= 1.0;
		print_f64(d); println(); return 0; }`, "2.000000\n")
}

func TestArraysAndPointers(t *testing.T) {
	expectOut(t, `long main(void){
		long a[5];
		for (long i = 0; i < 5; i++) a[i] = i * i;
		long *p = &a[1];
		print_i64(a[3]); print_i64(*p); print_i64(p[2]); print_i64(*(p + 3));
		println(); return 0; }`, "91916\n")
}

func TestPointerArithmetic(t *testing.T) {
	expectOut(t, `long main(void){
		long a[4] = {10, 20, 30, 40};
		long *p = a;
		long *q = p + 3;
		print_i64(q - p); print_i64(*(q - 1)); print_i64(p < q);
		println(); return 0; }`, "3301\n")
}

func TestAddressOfScalar(t *testing.T) {
	expectOut(t, `
void bump(long *p) { *p += 7; }
long main(void){
	long x = 1;
	bump(&x);
	bump(&x);
	print_i64_ln(x); return 0; }`, "15\n")
}

func TestCharArraysAndStrings(t *testing.T) {
	expectOut(t, `long main(void){
		char buf[8];
		buf[0] = 'h'; buf[1] = 'i'; buf[2] = 0;
		print_str(buf); print_char('!'); println();
		print_i64_ln(strlen("hello"));
		return 0; }`, "hi!\n5\n")
	expectOut(t, `long main(void){
		char *s = "abc";
		print_i64(s[0]); print_i64(s[2]); println(); return 0; }`, "9799\n")
}

func TestStrcmp(t *testing.T) {
	expectOut(t, `long main(void){
		print_i64(strcmp("abc", "abc") == 0);
		print_i64(strcmp("abc", "abd") < 0);
		print_i64(strcmp("b", "a") > 0);
		println(); return 0; }`, "111\n")
}

func TestGlobalsWithInitializers(t *testing.T) {
	expectOut(t, `
long g = 6 * 7;
double d = 1.5 + 1.0;
long table[4] = {1, 2, 3, 4};
char name[8] = {'o', 'k', 0};
long main(void){
	print_i64(g); print_f64(d); print_i64(table[2]); print_str(name);
	println(); return 0; }`, "422.5000003ok\n")
}

func TestGlobalModification(t *testing.T) {
	expectOut(t, `
long counter = 0;
void inc(void) { counter += 2; }
long main(void){ inc(); inc(); inc(); print_i64_ln(counter); return 0; }`, "6\n")
}

func TestDoubleArithmeticAndCasts(t *testing.T) {
	expectOut(t, `long main(void){
		double x = 7.0 / 2.0;
		long t = (long)x;
		double b = (double)t / 2.0;
		print_f64(x); print_char(' '); print_i64(t); print_char(' '); print_f64(b);
		println(); return 0; }`, "3.500000 3 1.500000\n")
	// Implicit int->double promotion in mixed expressions.
	expectOut(t, `long main(void){ print_f64(1 + 0.5); println(); return 0; }`, "1.500000\n")
}

func TestSqrtBuiltin(t *testing.T) {
	expectOut(t, `long main(void){ print_f64(sqrt(2.0) * sqrt(2.0)); println(); return 0; }`,
		"2.000000\n")
	expectOut(t, `long main(void){ print_i64_ln((long)sqrt(144)); return 0; }`, "12\n")
}

func TestRecursion(t *testing.T) {
	expectOut(t, `
long fact(long n) { if (n <= 1) return 1; return n * fact(n - 1); }
long main(void){ print_i64_ln(fact(10)); return 0; }`, "3628800\n")
}

func TestMutualRecursion(t *testing.T) {
	expectOut(t, `
long isEven(long n) { if (n == 0) return 1; return isOdd(n - 1); }
long isOdd(long n) { if (n == 0) return 0; return isEven(n - 1); }
long main(void){ print_i64(isEven(10)); print_i64(isOdd(7)); println(); return 0; }`,
		"11\n")
}

func TestSizeof(t *testing.T) {
	expectOut(t, `long main(void){
		print_i64(sizeof(long)); print_i64(sizeof(double));
		print_i64(sizeof(char)); print_i64(sizeof(long*));
		println(); return 0; }`, "8818\n")
}

func TestMallocFree(t *testing.T) {
	expectOut(t, `long main(void){
		long *a = (long*)malloc(10 * 8);
		for (long i = 0; i < 10; i++) a[i] = i * 3;
		long s = 0;
		for (long i = 0; i < 10; i++) s += a[i];
		free((char*)a);
		// Reuse from the free list.
		long *b = (long*)malloc(8 * 8);
		b[0] = 100;
		print_i64(s); print_i64(b[0]); println();
		return 0; }`, "135100\n")
}

func TestPrintNumbersEdges(t *testing.T) {
	expectOut(t, `long main(void){
		print_i64_ln(0);
		print_i64_ln(-1);
		print_i64_ln(9223372036854775807);
		print_f64(-0.125); println();
		return 0; }`, "0\n-1\n9223372036854775807\n-0.125000\n")
}

func TestCommentsAndWhitespace(t *testing.T) {
	expectOut(t, `
// line comment
/* block
   comment */
long main(void) { /* inline */ print_i64_ln(1); // trailing
	return 0; }`, "1\n")
}

func TestMultipleDeclarators(t *testing.T) {
	expectOut(t, `long main(void){
		long a = 1, b = 2, c = a + b;
		print_i64_ln(c); return 0; }`, "3\n")
}

func TestScoping(t *testing.T) {
	expectOut(t, `long main(void){
		long x = 1;
		{ long x = 2; print_i64(x); }
		print_i64(x);
		for (long x = 9; x < 10; x++) print_i64(x);
		println(); return 0; }`, "219\n")
}

func TestHexAndCharLiterals(t *testing.T) {
	expectOut(t, `long main(void){
		print_i64(0xff); print_char(' '); print_i64('A'); print_char(' '); print_i64('\n');
		println(); return 0; }`, "255 65 10\n")
}

// --- error cases ---

func TestErrorUndefinedVariable(t *testing.T) {
	expectErr(t, `long main(void){ return nope; }`, "undefined identifier")
}

func TestErrorUndefinedFunction(t *testing.T) {
	expectErr(t, `long main(void){ missing(); return 0; }`, "undefined function")
}

func TestErrorNoMain(t *testing.T) {
	expectErr(t, `long helper(void){ return 1; }`, "no main")
}

func TestErrorRedeclaration(t *testing.T) {
	expectErr(t, `long main(void){ long x = 1; long x = 2; return x; }`, "redeclaration")
}

func TestErrorBreakOutsideLoop(t *testing.T) {
	expectErr(t, `long main(void){ break; return 0; }`, "break outside loop")
}

func TestErrorAssignToArray(t *testing.T) {
	expectErr(t, `long main(void){ long a[3]; a = 0; return 0; }`, "cannot assign to array")
}

func TestErrorDerefNonPointer(t *testing.T) {
	expectErr(t, `long main(void){ double d = 1.0; return *d; }`, "dereference of non-pointer")
}

func TestErrorArgCount(t *testing.T) {
	expectErr(t, `
long f(long a, long b) { return a + b; }
long main(void){ return f(1); }`, "takes 2 args")
}

func TestErrorParse(t *testing.T) {
	expectErr(t, `long main(void){ long x = ; return 0; }`, "unexpected token")
	expectErr(t, `long main(void){ return 0 }`, `expected ";"`)
	expectErr(t, `long main(void){ return 0; `, "unterminated block")
}

func TestErrorLexer(t *testing.T) {
	expectErr(t, "long main(void){ return `; }", "unexpected character")
	expectErr(t, `long main(void){ char *s = "abc; return 0; }`, "unterminated string")
}

func TestErrorNonConstGlobalInit(t *testing.T) {
	expectErr(t, `
long f(void) { return 1; }
long g = f();
long main(void){ return 0; }`, "not a constant")
}

func TestSpacedKeywordsConstStatic(t *testing.T) {
	expectOut(t, `
static const long k = 9;
long main(void){ const long x = k + 1; print_i64_ln(x); return 0; }`, "10\n")
}
