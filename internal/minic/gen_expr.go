package minic

import (
	"fmt"

	"heterodc/internal/ir"
)

// expr evaluates e as an rvalue.
func (fg *funcGen) expr(e *Expr) (value, error) {
	b := fg.b
	switch e.Kind {
	case eInt:
		return value{v: b.Const(e.Ival), ty: typeLong}, nil
	case eFloat:
		return value{v: b.FConst(e.Fval), ty: typeDouble}, nil
	case eStr:
		name := fmt.Sprintf(".str.%d", fg.g.strN)
		fg.g.strN++
		data := append([]byte(e.Sval), 0)
		if err := fg.g.mod.AddGlobal(&ir.Global{
			Name: name, Size: int64(len(data)), Init: data, ReadOnly: true,
		}); err != nil {
			return value{}, err
		}
		return value{v: b.GlobalAddr(name, 0), ty: ptrTo(typeChar)}, nil
	case eIdent:
		vi := fg.lookup(e.Name)
		if vi == nil {
			// A function name used as a value: a function pointer.
			if _, ok := fg.g.funcs[e.Name]; ok {
				return value{v: b.GlobalAddr(e.Name, 0), ty: ptrTo(typeVoid)}, nil
			}
			return value{}, errAt(e.line, e.col, "undefined identifier %q", e.Name)
		}
		if vi.isArray {
			// Array decays to a pointer to its first element.
			return value{v: fg.baseAddr(vi), ty: ptrTo(vi.ty)}, nil
		}
		lv := fg.varLvalue(vi)
		return fg.load(lv), nil
	case eUnary:
		return fg.unary(e)
	case ePreIncr, ePostIncr:
		return fg.incrDecr(e)
	case eBinary:
		return fg.binary(e)
	case eAssign:
		return fg.assign(e)
	case eCond:
		return fg.conditional(e)
	case eCall:
		return fg.call(e)
	case eIndex:
		lv, err := fg.lvalueOf(e)
		if err != nil {
			return value{}, err
		}
		return fg.load(lv), nil
	case eCast:
		v, err := fg.expr(e.L)
		if err != nil {
			return value{}, err
		}
		return fg.convert(v, e.CastTy, e.line, e.col)
	case eSizeof:
		return value{v: b.Const(e.CastTy.size()), ty: typeLong}, nil
	}
	return value{}, errAt(e.line, e.col, "unhandled expression kind %d", int(e.Kind))
}

// exprVoid evaluates e for side effects.
func (fg *funcGen) exprVoid(e *Expr) (value, error) {
	// Void calls must not demand a value.
	if e.Kind == eCall {
		return fg.callImpl(e, true)
	}
	return fg.expr(e)
}

// condValue evaluates e as a 0/1 integer condition.
func (fg *funcGen) condValue(e *Expr) (ir.VReg, error) {
	v, err := fg.expr(e)
	if err != nil {
		return ir.NoV, err
	}
	if v.ty.isFloat() {
		return fg.b.FCmp(ir.Ne, v.v, fg.b.FConst(0)), nil
	}
	return v.v, nil
}

// baseAddr returns the base address of an array or alloca'd variable.
func (fg *funcGen) baseAddr(vi *varInfo) ir.VReg {
	switch vi.kind {
	case stAlloca:
		return fg.b.AllocaAddr(vi.slot)
	case stGlobal:
		return fg.b.GlobalAddr(vi.global, 0)
	}
	panic("minic: baseAddr on register variable")
}

// varLvalue builds the lvalue for a scalar variable.
func (fg *funcGen) varLvalue(vi *varInfo) lvalue {
	if vi.kind == stVReg {
		return lvalue{isVReg: true, vreg: vi.vreg, ty: vi.ty}
	}
	return lvalue{addr: fg.baseAddr(vi), ty: vi.ty}
}

// lvalueOf resolves an assignable expression.
func (fg *funcGen) lvalueOf(e *Expr) (lvalue, error) {
	switch e.Kind {
	case eIdent:
		vi := fg.lookup(e.Name)
		if vi == nil {
			return lvalue{}, errAt(e.line, e.col, "undefined identifier %q", e.Name)
		}
		if vi.isArray {
			return lvalue{}, errAt(e.line, e.col, "cannot assign to array %q", e.Name)
		}
		return fg.varLvalue(vi), nil
	case eUnary:
		if e.Op != "*" {
			break
		}
		p, err := fg.expr(e.L)
		if err != nil {
			return lvalue{}, err
		}
		if p.ty.Kind != tyPtr {
			return lvalue{}, errAt(e.line, e.col, "dereference of non-pointer (%s)", p.ty)
		}
		return lvalue{addr: p.v, ty: p.ty.Elem}, nil
	case eIndex:
		base, err := fg.expr(e.L)
		if err != nil {
			return lvalue{}, err
		}
		if base.ty.Kind != tyPtr {
			return lvalue{}, errAt(e.line, e.col, "indexing non-pointer (%s)", base.ty)
		}
		idx, err := fg.expr(e.R)
		if err != nil {
			return lvalue{}, err
		}
		idx, err = fg.convert(idx, typeLong, e.line, e.col)
		if err != nil {
			return lvalue{}, err
		}
		elem := base.ty.Elem
		var addr ir.VReg
		if elem.size() == 1 {
			addr = fg.b.PtrAdd(base.v, idx.v)
		} else {
			off := fg.b.BinImm(ir.Mul, idx.v, elem.size())
			addr = fg.b.PtrAdd(base.v, off)
		}
		return lvalue{addr: addr, ty: elem}, nil
	}
	return lvalue{}, errAt(e.line, e.col, "expression is not assignable")
}

// load reads an lvalue.
func (fg *funcGen) load(lv lvalue) value {
	b := fg.b
	if lv.isVReg {
		return value{v: b.Mov(lv.vreg), ty: lv.ty}
	}
	switch {
	case lv.ty.Kind == tyChar:
		return value{v: b.LoadB(lv.addr, 0), ty: typeLong}
	case lv.ty.isFloat():
		return value{v: b.Load(ir.F64, lv.addr, 0), ty: lv.ty}
	case lv.ty.Kind == tyPtr:
		return value{v: b.Load(ir.Ptr, lv.addr, 0), ty: lv.ty}
	default:
		return value{v: b.Load(ir.I64, lv.addr, 0), ty: lv.ty}
	}
}

// store writes v (already converted to lv.ty) into lv.
func (fg *funcGen) store(lv lvalue, v value) {
	b := fg.b
	if lv.isVReg {
		b.MovTo(lv.vreg, v.v)
		return
	}
	if lv.ty.Kind == tyChar {
		b.StoreB(lv.addr, 0, v.v)
		return
	}
	b.Store(lv.addr, 0, v.v)
}

// convert coerces v to target using C's implicit conversion rules.
func (fg *funcGen) convert(v value, target *Ty, line, col int) (value, error) {
	b := fg.b
	if target.Kind == tyVoid {
		return v, nil
	}
	src, dst := v.ty, target
	switch {
	case src.isFloat() && dst.isFloat():
		return value{v: v.v, ty: dst}, nil
	case src.isFloat() && (dst.isInt() || dst.Kind == tyPtr):
		return value{v: b.F2I(v.v), ty: dst}, nil
	case (src.isInt() || src.Kind == tyPtr) && dst.isFloat():
		return value{v: b.I2F(v.v), ty: dst}, nil
	default:
		// int/char/pointer interchange: representation is identical. The
		// vreg's IR type matters for stackmap pointer fixup: re-register a
		// pointer-typed copy when converting int -> pointer.
		if dst.Kind == tyPtr && fg.b.F.TypeOf(v.v) != ir.Ptr {
			d := fg.b.F.NewVReg(ir.Ptr)
			b.MovTo(d, v.v)
			return value{v: d, ty: dst}, nil
		}
		return value{v: v.v, ty: dst}, nil
	}
}

// usualArith applies C's usual arithmetic conversions to a pair.
func (fg *funcGen) usualArith(l, r value, line, col int) (value, value, *Ty, error) {
	if l.ty.isFloat() || r.ty.isFloat() {
		lc, err := fg.convert(l, typeDouble, line, col)
		if err != nil {
			return l, r, nil, err
		}
		rc, err := fg.convert(r, typeDouble, line, col)
		if err != nil {
			return l, r, nil, err
		}
		return lc, rc, typeDouble, nil
	}
	return l, r, typeLong, nil
}

func (fg *funcGen) unary(e *Expr) (value, error) {
	b := fg.b
	switch e.Op {
	case "-":
		v, err := fg.expr(e.L)
		if err != nil {
			return value{}, err
		}
		if v.ty.isFloat() {
			return value{v: b.FNeg(v.v), ty: typeDouble}, nil
		}
		return value{v: b.Bin(ir.Sub, b.Const(0), v.v), ty: typeLong}, nil
	case "!":
		c, err := fg.condValue(e.L)
		if err != nil {
			return value{}, err
		}
		return value{v: b.Cmp(ir.Eq, c, b.Const(0)), ty: typeLong}, nil
	case "~":
		v, err := fg.expr(e.L)
		if err != nil {
			return value{}, err
		}
		if v.ty.isFloat() {
			return value{}, errAt(e.line, e.col, "~ on double")
		}
		return value{v: b.BinImm(ir.Xor, v.v, -1), ty: typeLong}, nil
	case "*":
		lv, err := fg.lvalueOf(e)
		if err != nil {
			return value{}, err
		}
		return fg.load(lv), nil
	case "&":
		switch e.L.Kind {
		case eIdent:
			vi := fg.lookup(e.L.Name)
			if vi == nil {
				return value{}, errAt(e.line, e.col, "undefined identifier %q", e.L.Name)
			}
			if vi.isArray {
				return value{v: fg.baseAddr(vi), ty: ptrTo(vi.ty)}, nil
			}
			if vi.kind == stVReg {
				return value{}, errAt(e.line, e.col, "internal: address-taken variable %q not demoted", e.L.Name)
			}
			return value{v: fg.baseAddr(vi), ty: ptrTo(vi.ty)}, nil
		case eIndex, eUnary:
			lv, err := fg.lvalueOf(e.L)
			if err != nil {
				return value{}, err
			}
			if lv.isVReg {
				return value{}, errAt(e.line, e.col, "cannot take address of register variable")
			}
			return value{v: lv.addr, ty: ptrTo(lv.ty)}, nil
		}
		return value{}, errAt(e.line, e.col, "cannot take address of this expression")
	}
	return value{}, errAt(e.line, e.col, "unhandled unary %q", e.Op)
}

func (fg *funcGen) incrDecr(e *Expr) (value, error) {
	b := fg.b
	lv, err := fg.lvalueOf(e.L)
	if err != nil {
		return value{}, err
	}
	old := fg.load(lv)
	var step int64 = 1
	if lv.ty.Kind == tyPtr {
		step = lv.ty.Elem.size()
	}
	var nv value
	if lv.ty.isFloat() {
		one := b.FConst(1)
		op := ir.FAdd
		if e.Op == "--" {
			op = ir.FSub
		}
		nv = value{v: b.FBin(op, old.v, one), ty: lv.ty}
	} else {
		d := step
		if e.Op == "--" {
			d = -step
		}
		res := b.BinImm(ir.Add, old.v, d)
		nv = value{v: res, ty: lv.ty}
	}
	cv, err := fg.convert(nv, lv.ty, e.line, e.col)
	if err != nil {
		return value{}, err
	}
	fg.store(lv, cv)
	if e.Kind == ePostIncr {
		return old, nil
	}
	return cv, nil
}

var irBinOps = map[string]ir.BinOp{
	"+": ir.Add, "-": ir.Sub, "*": ir.Mul, "/": ir.Div, "%": ir.Rem,
	"&": ir.And, "|": ir.Or, "^": ir.Xor, "<<": ir.Shl, ">>": ir.Shr,
}

var irFBinOps = map[string]ir.FBinOp{
	"+": ir.FAdd, "-": ir.FSub, "*": ir.FMul, "/": ir.FDiv,
}

var irCmpOps = map[string]ir.CmpOp{
	"==": ir.Eq, "!=": ir.Ne, "<": ir.Lt, "<=": ir.Le, ">": ir.Gt, ">=": ir.Ge,
}

func (fg *funcGen) binary(e *Expr) (value, error) {
	b := fg.b
	// Short-circuit logicals.
	if e.Op == "&&" || e.Op == "||" {
		res := b.F.NewVReg(ir.I64)
		lc, err := fg.condValue(e.L)
		if err != nil {
			return value{}, err
		}
		lBlk := b.Block()
		rhsBlk := b.NewBlock("sc.rhs")
		rc, err := fg.condValue(e.R)
		if err != nil {
			return value{}, err
		}
		// Normalise to 0/1.
		b.MovTo(res, b.Cmp(ir.Ne, rc, b.Const(0)))
		rhsEnd := b.Block()
		shortBlk := b.NewBlock("sc.short")
		if e.Op == "&&" {
			b.ConstTo(res, 0)
		} else {
			b.ConstTo(res, 1)
		}
		shortEnd := b.Block()
		join := b.NewBlock("sc.end")
		b.SetBlock(lBlk)
		if e.Op == "&&" {
			b.CondBr(lc, rhsBlk, shortBlk)
		} else {
			b.CondBr(lc, shortBlk, rhsBlk)
		}
		b.SetBlock(rhsEnd)
		b.Br(join)
		b.SetBlock(shortEnd)
		b.Br(join)
		b.SetBlock(join)
		return value{v: res, ty: typeLong}, nil
	}

	l, err := fg.expr(e.L)
	if err != nil {
		return value{}, err
	}
	r, err := fg.expr(e.R)
	if err != nil {
		return value{}, err
	}

	// Pointer arithmetic.
	if l.ty.Kind == tyPtr || r.ty.Kind == tyPtr {
		switch e.Op {
		case "+", "-":
			if l.ty.Kind == tyPtr && r.ty.Kind == tyPtr {
				if e.Op != "-" {
					return value{}, errAt(e.line, e.col, "pointer + pointer")
				}
				diff := b.Bin(ir.Sub, l.v, r.v)
				sz := l.ty.Elem.size()
				if sz > 1 {
					diff = b.BinImm(ir.Div, diff, sz)
				}
				return value{v: diff, ty: typeLong}, nil
			}
			p, i := l, r
			if r.ty.Kind == tyPtr {
				if e.Op == "-" {
					return value{}, errAt(e.line, e.col, "int - pointer")
				}
				p, i = r, l
			}
			ic, err := fg.convert(i, typeLong, e.line, e.col)
			if err != nil {
				return value{}, err
			}
			off := ic.v
			if sz := p.ty.Elem.size(); sz > 1 {
				off = b.BinImm(ir.Mul, off, sz)
			}
			if e.Op == "-" {
				off = b.Bin(ir.Sub, b.Const(0), off)
			}
			return value{v: b.PtrAdd(p.v, off), ty: p.ty}, nil
		case "==", "!=", "<", "<=", ">", ">=":
			return value{v: b.Cmp(irCmpOps[e.Op], l.v, r.v), ty: typeLong}, nil
		default:
			return value{}, errAt(e.line, e.col, "invalid pointer operation %q", e.Op)
		}
	}

	lc, rc, ty, err := fg.usualArith(l, r, e.line, e.col)
	if err != nil {
		return value{}, err
	}
	if cmp, ok := irCmpOps[e.Op]; ok {
		if ty.isFloat() {
			return value{v: b.FCmp(cmp, lc.v, rc.v), ty: typeLong}, nil
		}
		return value{v: b.Cmp(cmp, lc.v, rc.v), ty: typeLong}, nil
	}
	if ty.isFloat() {
		op, ok := irFBinOps[e.Op]
		if !ok {
			return value{}, errAt(e.line, e.col, "operator %q on double", e.Op)
		}
		return value{v: b.FBin(op, lc.v, rc.v), ty: typeDouble}, nil
	}
	op, ok := irBinOps[e.Op]
	if !ok {
		return value{}, errAt(e.line, e.col, "unhandled operator %q", e.Op)
	}
	return value{v: b.Bin(op, lc.v, rc.v), ty: typeLong}, nil
}

func (fg *funcGen) assign(e *Expr) (value, error) {
	lv, err := fg.lvalueOf(e.L)
	if err != nil {
		return value{}, err
	}
	var rhs value
	if e.Op == "=" {
		rhs, err = fg.expr(e.R)
		if err != nil {
			return value{}, err
		}
	} else {
		// Compound assignment: synthesise lhs <op> rhs on the loaded value.
		op := e.Op[:len(e.Op)-1]
		cur := fg.load(lv)
		r, err := fg.expr(e.R)
		if err != nil {
			return value{}, err
		}
		rhs, err = fg.applyBin(op, cur, r, e.line, e.col)
		if err != nil {
			return value{}, err
		}
	}
	cv, err := fg.convert(rhs, lv.ty, e.line, e.col)
	if err != nil {
		return value{}, err
	}
	fg.store(lv, cv)
	return cv, nil
}

// applyBin applies a binary operator to two evaluated values (used by
// compound assignment).
func (fg *funcGen) applyBin(op string, l, r value, line, col int) (value, error) {
	b := fg.b
	if l.ty.Kind == tyPtr && (op == "+" || op == "-") {
		ic, err := fg.convert(r, typeLong, line, col)
		if err != nil {
			return value{}, err
		}
		off := ic.v
		if sz := l.ty.Elem.size(); sz > 1 {
			off = b.BinImm(ir.Mul, off, sz)
		}
		if op == "-" {
			off = b.Bin(ir.Sub, b.Const(0), off)
		}
		return value{v: b.PtrAdd(l.v, off), ty: l.ty}, nil
	}
	lc, rc, ty, err := fg.usualArith(l, r, line, col)
	if err != nil {
		return value{}, err
	}
	if ty.isFloat() {
		fop, ok := irFBinOps[op]
		if !ok {
			return value{}, errAt(line, col, "operator %q= on double", op)
		}
		return value{v: b.FBin(fop, lc.v, rc.v), ty: typeDouble}, nil
	}
	iop, ok := irBinOps[op]
	if !ok {
		return value{}, errAt(line, col, "unhandled operator %q=", op)
	}
	return value{v: b.Bin(iop, lc.v, rc.v), ty: typeLong}, nil
}

func (fg *funcGen) conditional(e *Expr) (value, error) {
	b := fg.b
	cond, err := fg.condValue(e.L)
	if err != nil {
		return value{}, err
	}
	condBlk := b.Block()

	aBlk := b.NewBlock("cond.a")
	av, err := fg.expr(e.R)
	if err != nil {
		return value{}, err
	}
	aEnd := b.Block()

	bBlk := b.NewBlock("cond.b")
	bv, err := fg.expr(e.C3)
	if err != nil {
		return value{}, err
	}
	bEnd := b.Block()

	// Unify types.
	ty := typeLong
	switch {
	case av.ty.isFloat() || bv.ty.isFloat():
		ty = typeDouble
	case av.ty.Kind == tyPtr:
		ty = av.ty
	case bv.ty.Kind == tyPtr:
		ty = bv.ty
	}
	res := b.F.NewVReg(irType(ty))

	b.SetBlock(aEnd)
	ac, err := fg.convert(av, ty, e.line, e.col)
	if err != nil {
		return value{}, err
	}
	b.MovTo(res, ac.v)
	aEnd2 := b.Block()

	b.SetBlock(bEnd)
	bc, err := fg.convert(bv, ty, e.line, e.col)
	if err != nil {
		return value{}, err
	}
	b.MovTo(res, bc.v)
	bEnd2 := b.Block()

	join := b.NewBlock("cond.end")
	b.SetBlock(condBlk)
	b.CondBr(cond, aBlk, bBlk)
	b.SetBlock(aEnd2)
	b.Br(join)
	b.SetBlock(bEnd2)
	b.Br(join)
	b.SetBlock(join)
	return value{v: res, ty: ty}, nil
}

func (fg *funcGen) call(e *Expr) (value, error) {
	return fg.callImpl(e, false)
}

func (fg *funcGen) callImpl(e *Expr, voidOK bool) (value, error) {
	b := fg.b
	// Builtins.
	switch e.Name {
	case "__syscall":
		if len(e.Args) < 1 || e.Args[0].Kind != eInt {
			return value{}, errAt(e.line, e.col, "__syscall needs a literal syscall number")
		}
		var args []ir.VReg
		for _, a := range e.Args[1:] {
			v, err := fg.expr(a)
			if err != nil {
				return value{}, err
			}
			if v.ty.isFloat() {
				return value{}, errAt(e.line, e.col, "__syscall arguments must be integral")
			}
			args = append(args, v.v)
		}
		return value{v: b.Syscall(e.Args[0].Ival, args...), ty: typeLong}, nil
	case "__atomic_add", "__atomic_cas":
		p, err := fg.expr(e.Args[0])
		if err != nil {
			return value{}, err
		}
		if p.ty.Kind != tyPtr {
			return value{}, errAt(e.line, e.col, "%s needs a pointer", e.Name)
		}
		if e.Name == "__atomic_add" {
			if len(e.Args) != 2 {
				return value{}, errAt(e.line, e.col, "__atomic_add(p, delta)")
			}
			d, err := fg.expr(e.Args[1])
			if err != nil {
				return value{}, err
			}
			return value{v: b.AtomicAdd(p.v, 0, d.v), ty: typeLong}, nil
		}
		if len(e.Args) != 3 {
			return value{}, errAt(e.line, e.col, "__atomic_cas(p, old, new)")
		}
		o, err := fg.expr(e.Args[1])
		if err != nil {
			return value{}, err
		}
		n, err := fg.expr(e.Args[2])
		if err != nil {
			return value{}, err
		}
		return value{v: b.AtomicCAS(p.v, 0, o.v, n.v), ty: typeLong}, nil
	case "__icall":
		if len(e.Args) != 2 {
			return value{}, errAt(e.line, e.col, "__icall(fn, arg)")
		}
		fp, err := fg.expr(e.Args[0])
		if err != nil {
			return value{}, err
		}
		a, err := fg.expr(e.Args[1])
		if err != nil {
			return value{}, err
		}
		ac, err := fg.convert(a, typeLong, e.line, e.col)
		if err != nil {
			return value{}, err
		}
		return value{v: b.CallInd(ir.I64, fp.v, ac.v), ty: typeLong}, nil
	case "sqrt":
		if len(e.Args) != 1 {
			return value{}, errAt(e.line, e.col, "sqrt(x)")
		}
		x, err := fg.expr(e.Args[0])
		if err != nil {
			return value{}, err
		}
		xc, err := fg.convert(x, typeDouble, e.line, e.col)
		if err != nil {
			return value{}, err
		}
		return value{v: b.FSqrt(xc.v), ty: typeDouble}, nil
	}

	fd, ok := fg.g.funcs[e.Name]
	if !ok {
		return value{}, errAt(e.line, e.col, "call to undefined function %q", e.Name)
	}
	if len(e.Args) != len(fd.Params) {
		return value{}, errAt(e.line, e.col, "%s takes %d args, got %d", e.Name, len(fd.Params), len(e.Args))
	}
	var args []ir.VReg
	for i, a := range e.Args {
		v, err := fg.expr(a)
		if err != nil {
			return value{}, err
		}
		cv, err := fg.convert(v, fd.Params[i].Ty, a.line, a.col)
		if err != nil {
			return value{}, err
		}
		args = append(args, cv.v)
	}
	ret := b.Call(irType(fd.Ret), e.Name, args...)
	if fd.Ret.Kind == tyVoid {
		if !voidOK {
			return value{}, errAt(e.line, e.col, "void value of %s used", e.Name)
		}
		return value{v: ir.NoV, ty: typeVoid}, nil
	}
	return value{v: ret, ty: fd.Ret}, nil
}
