// Package minic implements the mini-C frontend: a lexer, parser, type
// checker and IR code generator for the C subset the workloads are written
// in. It plays the role of clang in the paper's toolchain; programs are
// compiled once to IR, and the per-ISA backends take it from there.
//
// The language: `long` (64-bit signed), `double`, `char` (byte), pointers
// and fixed-size arrays thereof; functions; globals with initialisers;
// control flow (if/else, while, do-while, for, break, continue, return);
// the usual C operators including &&/||, ?:, ++/--, compound assignment;
// address-of and dereference; string and character literals; and a handful
// of builtins (__syscall, __atomic_add, __atomic_cas, __icall, sqrt) from
// which the runtime library (see prelude.go) builds the libc-like API.
package minic

import (
	"fmt"
	"strings"
)

// tokKind classifies tokens.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat
	tString
	tChar
	tPunct
	tKeyword
)

type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	sval string // decoded string literal
	line int
	col  int
}

var keywords = map[string]bool{
	"long": true, "double": true, "char": true, "void": true,
	"if": true, "else": true, "while": true, "do": true, "for": true,
	"return": true, "break": true, "continue": true, "sizeof": true,
	"static": true, "const": true,
}

// Error is a frontend diagnostic with position information.
type Error struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

type lexer struct {
	file string
	src  string
	pos  int
	line int
	col  int
	toks []token
}

func lex(file, src string) ([]token, error) {
	lx := &lexer{file: file, src: src, line: 1, col: 1}
	if err := lx.run(); err != nil {
		return nil, err
	}
	return lx.toks, nil
}

func (lx *lexer) errf(format string, args ...interface{}) error {
	return &Error{File: lx.file, Line: lx.line, Col: lx.col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peek2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) emit(t token) {
	lx.toks = append(lx.toks, t)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// multi-char punctuation, longest first.
var puncts = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ",", ";", "?", ":",
}

func (lx *lexer) run() error {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		line, col := lx.line, lx.col
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			lx.advance()
			lx.advance()
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		case isDigit(c) || (c == '.' && isDigit(lx.peek2())):
			if err := lx.number(line, col); err != nil {
				return err
			}
		case isAlpha(c):
			start := lx.pos
			for lx.pos < len(lx.src) && (isAlpha(lx.peek()) || isDigit(lx.peek())) {
				lx.advance()
			}
			word := lx.src[start:lx.pos]
			k := tIdent
			if keywords[word] {
				k = tKeyword
			}
			lx.emit(token{kind: k, text: word, line: line, col: col})
		case c == '"':
			if err := lx.stringLit(line, col); err != nil {
				return err
			}
		case c == '\'':
			if err := lx.charLit(line, col); err != nil {
				return err
			}
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(lx.src[lx.pos:], p) {
					for range p {
						lx.advance()
					}
					lx.emit(token{kind: tPunct, text: p, line: line, col: col})
					matched = true
					break
				}
			}
			if !matched {
				return lx.errf("unexpected character %q", c)
			}
		}
	}
	lx.emit(token{kind: tEOF, line: lx.line, col: lx.col})
	return nil
}

func (lx *lexer) number(line, col int) error {
	start := lx.pos
	isFloat := false
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		for isDigit(lx.peek()) || (lx.peek() >= 'a' && lx.peek() <= 'f') || (lx.peek() >= 'A' && lx.peek() <= 'F') {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		var v uint64
		if _, err := fmt.Sscanf(text, "%v", &v); err != nil {
			if _, err2 := fmt.Sscanf(text[2:], "%x", &v); err2 != nil {
				return lx.errf("bad hex literal %q", text)
			}
		}
		lx.emit(token{kind: tInt, text: text, ival: int64(v), line: line, col: col})
		return nil
	}
	for isDigit(lx.peek()) {
		lx.advance()
	}
	if lx.peek() == '.' {
		isFloat = true
		lx.advance()
		for isDigit(lx.peek()) {
			lx.advance()
		}
	}
	if lx.peek() == 'e' || lx.peek() == 'E' {
		isFloat = true
		lx.advance()
		if lx.peek() == '+' || lx.peek() == '-' {
			lx.advance()
		}
		for isDigit(lx.peek()) {
			lx.advance()
		}
	}
	text := lx.src[start:lx.pos]
	if isFloat {
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return lx.errf("bad float literal %q", text)
		}
		lx.emit(token{kind: tFloat, text: text, fval: f, line: line, col: col})
	} else {
		var v int64
		if _, err := fmt.Sscanf(text, "%d", &v); err != nil {
			return lx.errf("bad int literal %q", text)
		}
		lx.emit(token{kind: tInt, text: text, ival: v, line: line, col: col})
	}
	return nil
}

func (lx *lexer) escape() (byte, error) {
	c := lx.advance()
	if c != '\\' {
		return c, nil
	}
	e := lx.advance()
	switch e {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, lx.errf("unknown escape \\%c", e)
}

func (lx *lexer) stringLit(line, col int) error {
	lx.advance() // opening quote
	var sb []byte
	for {
		if lx.pos >= len(lx.src) {
			return lx.errf("unterminated string literal")
		}
		if lx.peek() == '"' {
			lx.advance()
			break
		}
		b, err := lx.escape()
		if err != nil {
			return err
		}
		sb = append(sb, b)
	}
	lx.emit(token{kind: tString, sval: string(sb), line: line, col: col})
	return nil
}

func (lx *lexer) charLit(line, col int) error {
	lx.advance() // opening quote
	if lx.pos >= len(lx.src) {
		return lx.errf("unterminated char literal")
	}
	b, err := lx.escape()
	if err != nil {
		return err
	}
	if lx.pos >= len(lx.src) || lx.advance() != '\'' {
		return lx.errf("unterminated char literal")
	}
	lx.emit(token{kind: tChar, ival: int64(b), line: line, col: col})
	return nil
}
