package minic

import "testing"

func TestDoWhileWithContinue(t *testing.T) {
	expectOut(t, `long main(void){
		long i = 0;
		long s = 0;
		do {
			i++;
			if (i % 2 == 0) continue;
			s += i;
		} while (i < 7);
		print_i64_ln(s); return 0; }`, "16\n") // 1+3+5+7
}

func TestNestedTernaryAndLogic(t *testing.T) {
	expectOut(t, `long main(void){
		for (long n = 0; n < 6; n++) {
			long c = n < 2 ? 'a' : n < 4 ? 'b' : 'c';
			print_char(c);
		}
		println(); return 0; }`, "aabbcc\n")
	expectOut(t, `long main(void){
		long x = 5;
		print_i64((x > 0 && x < 10) || x == 42);
		println(); return 0; }`, "1\n")
}

func TestLogicalResultIsNormalised(t *testing.T) {
	// && / || must yield exactly 0 or 1 even for non-boolean operands.
	expectOut(t, `long main(void){
		print_i64(7 && 9);
		print_i64(0 || 12);
		print_i64(!(5));
		println(); return 0; }`, "110\n")
}

func TestCharPointerWalk(t *testing.T) {
	expectOut(t, `long main(void){
		char *s = "walk";
		long n = 0;
		while (*s != 0) { n++; s++; }
		print_i64_ln(n); return 0; }`, "4\n")
}

func TestPointerIntoMiddleOfArray(t *testing.T) {
	expectOut(t, `
void fill(long *p, long n, long base) {
	for (long i = 0; i < n; i++) p[i] = base + i;
}
long main(void){
	long a[10];
	fill(&a[2], 5, 100);
	print_i64(a[2]); print_i64(a[6]);
	println(); return 0; }`, "100104\n")
}

func TestNegativeModuloAndDivision(t *testing.T) {
	// C truncates toward zero.
	expectOut(t, `long main(void){
		print_i64(-7 % 3); print_char(' ');
		print_i64(7 % -3); print_char(' ');
		print_i64(-7 / 3);
		println(); return 0; }`, "-1 1 -2\n")
}

func TestShiftBoundaries(t *testing.T) {
	expectOut(t, `long main(void){
		print_i64(1 << 62 >> 62); print_char(' ');
		print_i64(-8 >> 1);
		println(); return 0; }`, "1 -4\n")
}

func TestDoubleGlobalsArrayInit(t *testing.T) {
	expectOut(t, `
double w[3] = {0.25, 0.5, 0.25};
long main(void){
	double s = 0.0;
	for (long i = 0; i < 3; i++) s += w[i];
	print_f64(s); println(); return 0; }`, "1.000000\n")
}

func TestGlobalCharArrayAsBuffer(t *testing.T) {
	expectOut(t, `
char buf[32];
long main(void){
	for (long i = 0; i < 5; i++) buf[i] = 'A' + i;
	buf[5] = 0;
	print_str(buf); println(); return 0; }`, "ABCDE\n")
}

func TestWhileWithComplexCondition(t *testing.T) {
	expectOut(t, `long main(void){
		long a = 0; long b = 10;
		while (a < b && b > 5) { a++; b--; }
		print_i64(a); print_i64(b); println(); return 0; }`, "55\n")
}

func TestFunctionPointerViaSpawnStyle(t *testing.T) {
	// Function names as values + __icall, the mechanism the POMP runtime
	// and spawn use.
	expectOut(t, `
long twice(long x) { return 2 * x; }
long thrice(long x) { return 3 * x; }
long apply(long fn, long x) { return __icall((char*)fn, x); }
long main(void){
	print_i64(apply(twice, 10));
	print_i64(apply(thrice, 10));
	println(); return 0; }`, "2030\n")
}

func TestDeepExpressionNesting(t *testing.T) {
	expectOut(t, `long main(void){
		long x = ((((1 + 2) * (3 + 4)) - ((5 - 6) * (7 + 8))) / 2) % 100;
		print_i64_ln(x); return 0; }`, "18\n")
}

func TestAssignmentAsExpressionValue(t *testing.T) {
	expectOut(t, `long main(void){
		long a;
		long b = (a = 5) + 1;
		print_i64(a); print_i64(b); println(); return 0; }`, "56\n")
}

func TestEmptyStatementAndBlocks(t *testing.T) {
	expectOut(t, `long main(void){
		;
		{ }
		for (long i = 0; i < 3; i++) ;
		print_i64_ln(1); return 0; }`, "1\n")
}

func TestVoidFunctionCallStatement(t *testing.T) {
	expectOut(t, `
long g = 0;
void poke(void) { g = 9; }
long main(void){ poke(); print_i64_ln(g); return 0; }`, "9\n")
}

func TestErrorVoidValueUsed(t *testing.T) {
	expectErr(t, `
void nothing(void) { }
long main(void){ return nothing(); }`, "void value")
}

func TestErrorContinueOutsideLoop(t *testing.T) {
	expectErr(t, `long main(void){ continue; return 0; }`, "continue outside loop")
}

func TestErrorArrayLengthNotLiteral(t *testing.T) {
	expectErr(t, `long main(void){ long n = 4; long a[n]; return 0; }`, "integer literal")
}

func TestErrorTooManyInitialisers(t *testing.T) {
	expectErr(t, `
long a[2] = {1, 2, 3};
long main(void){ return 0; }`, "too many initialisers")
}

func TestErrorPointerPlusPointer(t *testing.T) {
	expectErr(t, `long main(void){
		long a[2];
		long *p = a;
		long *q = a;
		return (long)(p + q); }`, "pointer + pointer")
}

func TestStringEscapes(t *testing.T) {
	expectOut(t, `long main(void){
		print_str("tab:\there\nquote:\"q\"\n");
		return 0; }`, "tab:\there\nquote:\"q\"\n")
}

func TestPreludeMemHelpers(t *testing.T) {
	expectOut(t, `long main(void){
		char a[16];
		char b[16];
		memset8(a, 'x', 8);
		a[8] = 0;
		memcpy8(b, a, 9);
		print_str(b); println();
		return 0; }`, "xxxxxxxx\n")
}

func TestPowIHelper(t *testing.T) {
	expectOut(t, `long main(void){
		print_f64(pow_i(2.0, 10));
		print_char(' ');
		print_f64(pow_i(2.0, -2));
		println(); return 0; }`, "1024.000000 0.250000\n")
}

func TestFabsFmaxFmin(t *testing.T) {
	expectOut(t, `long main(void){
		print_f64(fabs(-2.5)); print_char(' ');
		print_f64(fmax(1.0, 2.0)); print_char(' ');
		print_f64(fmin(1.0, 2.0));
		println(); return 0; }`, "2.500000 2.000000 1.000000\n")
}
