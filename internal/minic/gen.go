package minic

import (
	"encoding/binary"
	"fmt"
	"math"

	"heterodc/internal/ir"
)

// Source is one mini-C input file.
type Source struct {
	Name string
	Code string
}

// CompileToIR parses and lowers the given sources (plus the runtime
// prelude) into a fresh IR module. The module is ready for the compiler
// backend pipeline (migration-point insertion happens there).
func CompileToIR(modName string, sources ...Source) (*ir.Module, error) {
	all := append([]Source{{Name: "<prelude>", Code: Prelude}}, sources...)
	var prog Program
	for _, src := range all {
		p, err := Parse(src.Name, src.Code)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, p.Globals...)
		prog.Funcs = append(prog.Funcs, p.Funcs...)
	}
	g := &genCtx{
		mod:     ir.NewModule(modName),
		prog:    &prog,
		funcs:   make(map[string]*FuncDecl),
		globals: make(map[string]*Decl),
	}
	return g.run()
}

type genCtx struct {
	mod     *ir.Module
	prog    *Program
	funcs   map[string]*FuncDecl
	globals map[string]*Decl
	strN    int
}

func errAt(line, col int, format string, args ...interface{}) error {
	return &Error{File: "minic", Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (g *genCtx) run() (*ir.Module, error) {
	// Register signatures first so calls resolve in any order.
	for _, fd := range g.prog.Funcs {
		if _, dup := g.funcs[fd.Name]; dup {
			return nil, errAt(fd.line, fd.col, "duplicate function %s", fd.Name)
		}
		g.funcs[fd.Name] = fd
	}
	// Globals.
	for _, d := range g.prog.Globals {
		if err := g.emitGlobal(d); err != nil {
			return nil, err
		}
		g.globals[d.Name] = d
	}
	// Functions.
	for _, fd := range g.prog.Funcs {
		f, err := g.genFunc(fd)
		if err != nil {
			return nil, err
		}
		if err := g.mod.AddFunc(f); err != nil {
			return nil, errAt(fd.line, fd.col, "%v", err)
		}
	}
	if mf := g.mod.Func("main"); mf == nil {
		return nil, fmt.Errorf("minic: no main function")
	}
	return g.mod, nil
}

// constEval folds a constant expression for global initialisers.
func (g *genCtx) constEval(e *Expr) (int64, float64, bool /*isFloat*/, error) {
	switch e.Kind {
	case eInt:
		return e.Ival, 0, false, nil
	case eFloat:
		return 0, e.Fval, true, nil
	case eUnary:
		iv, fv, isF, err := g.constEval(e.L)
		if err != nil {
			return 0, 0, false, err
		}
		switch e.Op {
		case "-":
			return -iv, -fv, isF, nil
		case "~":
			return ^iv, 0, false, nil
		}
	case eBinary:
		li, lf, lF, err := g.constEval(e.L)
		if err != nil {
			return 0, 0, false, err
		}
		ri, rf, rF, err := g.constEval(e.R)
		if err != nil {
			return 0, 0, false, err
		}
		if lF || rF {
			if !lF {
				lf = float64(li)
			}
			if !rF {
				rf = float64(ri)
			}
			switch e.Op {
			case "+":
				return 0, lf + rf, true, nil
			case "-":
				return 0, lf - rf, true, nil
			case "*":
				return 0, lf * rf, true, nil
			case "/":
				return 0, lf / rf, true, nil
			}
		} else {
			switch e.Op {
			case "+":
				return li + ri, 0, false, nil
			case "-":
				return li - ri, 0, false, nil
			case "*":
				return li * ri, 0, false, nil
			case "/":
				if ri != 0 {
					return li / ri, 0, false, nil
				}
			case "%":
				if ri != 0 {
					return li % ri, 0, false, nil
				}
			case "<<":
				return li << uint(ri&63), 0, false, nil
			case ">>":
				return li >> uint(ri&63), 0, false, nil
			}
		}
	case eSizeof:
		return e.CastTy.size(), 0, false, nil
	case eCast:
		iv, fv, isF, err := g.constEval(e.L)
		if err != nil {
			return 0, 0, false, err
		}
		if e.CastTy.isFloat() {
			if !isF {
				fv = float64(iv)
			}
			return 0, fv, true, nil
		}
		if isF {
			iv = int64(fv)
		}
		return iv, 0, false, nil
	}
	return 0, 0, false, errAt(e.line, e.col, "initialiser is not a constant expression")
}

func (g *genCtx) emitGlobal(d *Decl) error {
	elem := d.Ty
	var size int64
	if d.ArrayLen >= 0 {
		size = elem.size() * d.ArrayLen
	} else {
		size = elem.size()
		if size == 1 {
			size = 8 // scalar chars stored in a word
		}
	}
	glob := &ir.Global{Name: d.Name, Size: size, Align: 8}
	put := func(off int64, iv int64, fv float64, isF bool, ty *Ty) {
		for int64(len(glob.Init)) < off+8 {
			glob.Init = append(glob.Init, 0)
		}
		switch {
		case ty.isFloat():
			if !isF {
				fv = float64(iv)
			}
			binary.LittleEndian.PutUint64(glob.Init[off:], math.Float64bits(fv))
		case ty.Kind == tyChar && d.ArrayLen >= 0:
			if isF {
				iv = int64(fv)
			}
			glob.Init[off] = byte(iv)
		default:
			if isF {
				iv = int64(fv)
			}
			binary.LittleEndian.PutUint64(glob.Init[off:], uint64(iv))
		}
	}
	switch {
	case d.Init != nil:
		if d.Init.Kind == eStr && d.Ty.Kind == tyPtr && d.Ty.Elem.Kind == tyChar {
			return errAt(d.line, d.col, "global string-pointer initialisers are unsupported; use a char array")
		}
		iv, fv, isF, err := g.constEval(d.Init)
		if err != nil {
			return err
		}
		put(0, iv, fv, isF, d.Ty)
	case len(d.InitList) > 0:
		if d.ArrayLen < 0 {
			return errAt(d.line, d.col, "initialiser list on non-array")
		}
		if int64(len(d.InitList)) > d.ArrayLen {
			return errAt(d.line, d.col, "too many initialisers")
		}
		step := elem.size()
		for i, e := range d.InitList {
			iv, fv, isF, err := g.constEval(e)
			if err != nil {
				return err
			}
			put(int64(i)*step, iv, fv, isF, elem)
		}
	}
	if int64(len(glob.Init)) > size {
		glob.Init = glob.Init[:size]
	}
	return g.mod.AddGlobal(glob)
}

// --- Function generation -----------------------------------------------------

type storageKind int

const (
	stVReg storageKind = iota
	stAlloca
	stGlobal
)

type varInfo struct {
	ty       *Ty
	isArray  bool
	arrayLen int64
	kind     storageKind
	vreg     ir.VReg
	slot     int
	global   string
}

type funcGen struct {
	g  *genCtx
	b  *ir.Builder
	fd *FuncDecl

	scopes    []map[string]*varInfo
	addrTaken map[string]bool

	// breakJumps / contJumps record blocks that must branch to the loop's
	// exit / continuation point, one list per nested loop.
	breakJumps [][]int
	contJumps  [][]int
}

// enterLoop pushes fresh jump lists; exitLoop patches them to their targets.
func (fg *funcGen) enterLoop() {
	fg.breakJumps = append(fg.breakJumps, nil)
	fg.contJumps = append(fg.contJumps, nil)
}

func (fg *funcGen) exitLoop(breakTarget, contTarget int) {
	cur := fg.b.Block()
	n := len(fg.breakJumps) - 1
	for _, blk := range fg.breakJumps[n] {
		fg.b.SetBlock(blk)
		fg.b.Br(breakTarget)
	}
	for _, blk := range fg.contJumps[n] {
		fg.b.SetBlock(blk)
		fg.b.Br(contTarget)
	}
	fg.breakJumps = fg.breakJumps[:n]
	fg.contJumps = fg.contJumps[:n]
	fg.b.SetBlock(cur)
}

// value is an rvalue with its mini-C type.
type value struct {
	v  ir.VReg
	ty *Ty
}

// lvalue is an assignable location.
type lvalue struct {
	isVReg bool
	vreg   ir.VReg // when isVReg
	addr   ir.VReg // byte address otherwise
	ty     *Ty
}

func (g *genCtx) genFunc(fd *FuncDecl) (*ir.Func, error) {
	var params []ir.Param
	for _, p := range fd.Params {
		params = append(params, ir.Param{Name: p.Name, Type: irType(p.Ty)})
	}
	fg := &funcGen{
		g:         g,
		b:         ir.NewFunc(fd.Name, irType(fd.Ret), params...),
		fd:        fd,
		addrTaken: map[string]bool{},
	}
	fg.scanAddrTaken(fd.Body)
	fg.push()
	// Bind parameters; address-taken ones are demoted to allocas.
	for i, p := range fd.Params {
		vi := &varInfo{ty: p.Ty, arrayLen: -1}
		if fg.addrTaken[p.Name] {
			slot := fg.b.F.NewAlloca(8)
			if p.Ty.Kind == tyPtr {
				fg.b.F.MarkAllocaPtr(slot)
			}
			addr := fg.b.AllocaAddr(slot)
			fg.b.Store(addr, 0, fg.b.Param(i))
			vi.kind = stAlloca
			vi.slot = slot
		} else {
			vi.kind = stVReg
			vi.vreg = fg.b.Param(i)
		}
		fg.scopes[0][p.Name] = vi
	}
	if err := fg.stmt(fd.Body); err != nil {
		return nil, err
	}
	// Implicit return.
	if fd.Ret.Kind == tyVoid {
		fg.b.Ret(ir.NoV)
	} else if fd.Ret.isFloat() {
		fg.b.Ret(fg.b.FConst(0))
	} else {
		fg.b.Ret(fg.b.Const(0))
	}
	return fg.b.Done(), nil
}

func irType(t *Ty) ir.Type {
	switch t.Kind {
	case tyDouble:
		return ir.F64
	case tyPtr:
		return ir.Ptr
	case tyVoid:
		return ir.Void
	default:
		return ir.I64
	}
}

// scanAddrTaken marks identifiers whose address is taken anywhere in the
// function, forcing them into stack slots.
func (fg *funcGen) scanAddrTaken(s *Stmt) {
	var walkE func(e *Expr)
	walkE = func(e *Expr) {
		if e == nil {
			return
		}
		if e.Kind == eUnary && e.Op == "&" && e.L != nil && e.L.Kind == eIdent {
			fg.addrTaken[e.L.Name] = true
		}
		walkE(e.L)
		walkE(e.R)
		walkE(e.C3)
		for _, a := range e.Args {
			walkE(a)
		}
	}
	var walkS func(s *Stmt)
	walkS = func(s *Stmt) {
		if s == nil {
			return
		}
		walkE(s.Expr)
		walkE(s.Cond)
		walkE(s.Post)
		for _, d := range s.Decl {
			walkE(d.Init)
			for _, e := range d.InitList {
				walkE(e)
			}
		}
		walkS(s.Init)
		walkS(s.Then)
		walkS(s.Else)
		walkS(s.Body)
		for _, c := range s.List {
			walkS(c)
		}
	}
	walkS(s)
}

func (fg *funcGen) push() { fg.scopes = append(fg.scopes, map[string]*varInfo{}) }
func (fg *funcGen) pop()  { fg.scopes = fg.scopes[:len(fg.scopes)-1] }

func (fg *funcGen) lookup(name string) *varInfo {
	for i := len(fg.scopes) - 1; i >= 0; i-- {
		if vi, ok := fg.scopes[i][name]; ok {
			return vi
		}
	}
	if d, ok := fg.g.globals[name]; ok {
		return &varInfo{ty: d.Ty, isArray: d.ArrayLen >= 0, arrayLen: d.ArrayLen, kind: stGlobal, global: d.Name}
	}
	return nil
}

// --- Statements ---

func (fg *funcGen) stmt(s *Stmt) error {
	b := fg.b
	switch s.Kind {
	case sEmpty:
		return nil
	case sBlock:
		fg.push()
		defer fg.pop()
		for _, c := range s.List {
			if err := fg.stmt(c); err != nil {
				return err
			}
		}
		return nil
	case sDecl:
		for _, d := range s.Decl {
			if err := fg.localDecl(d); err != nil {
				return err
			}
		}
		return nil
	case sExpr:
		_, err := fg.exprVoid(s.Expr)
		return err
	case sReturn:
		if s.Expr == nil {
			if fg.fd.Ret.Kind != tyVoid {
				return errAt(s.line, s.col, "missing return value")
			}
			b.Ret(ir.NoV)
		} else {
			v, err := fg.expr(s.Expr)
			if err != nil {
				return err
			}
			v, err = fg.convert(v, fg.fd.Ret, s.line, s.col)
			if err != nil {
				return err
			}
			b.Ret(v.v)
		}
		// Continue emission in a fresh dead block so subsequent statements
		// (unreachable code) still verify.
		b.NewBlock("postret")
		return nil
	case sIf:
		cond, err := fg.condValue(s.Cond)
		if err != nil {
			return err
		}
		condBlk := b.Block()
		thenBlk := b.NewBlock("then")
		if err := fg.stmt(s.Then); err != nil {
			return err
		}
		thenEnd := b.Block()
		var elseBlk, elseEnd int
		if s.Else != nil {
			elseBlk = b.NewBlock("else")
			if err := fg.stmt(s.Else); err != nil {
				return err
			}
			elseEnd = b.Block()
		}
		join := b.NewBlock("endif")
		b.SetBlock(condBlk)
		if s.Else != nil {
			b.CondBr(cond, thenBlk, elseBlk)
			b.SetBlock(elseEnd)
			fg.linkTo(join)
		} else {
			b.CondBr(cond, thenBlk, join)
		}
		b.SetBlock(thenEnd)
		fg.linkTo(join)
		b.SetBlock(join)
		return nil
	case sWhile:
		prev := b.Block()
		head := b.NewBlock("while.head")
		b.SetBlock(prev)
		fg.linkTo(head)
		b.SetBlock(head)
		cond, err := fg.condValue(s.Cond)
		if err != nil {
			return err
		}
		headEnd := b.Block()
		body := b.NewBlock("while.body")
		fg.enterLoop()
		bodyErr := fg.stmt(s.Body)
		bodyEnd := b.Block()
		exit := b.NewBlock("while.end")
		fg.exitLoop(exit, head)
		if bodyErr != nil {
			return bodyErr
		}
		b.SetBlock(headEnd)
		b.CondBr(cond, body, exit)
		b.SetBlock(bodyEnd)
		fg.linkTo(head)
		b.SetBlock(exit)
		return nil
	case sDoWhile:
		prev := b.Block()
		body := b.NewBlock("do.body")
		b.SetBlock(prev)
		fg.linkTo(body)
		b.SetBlock(body)
		fg.enterLoop()
		bodyErr := fg.stmt(s.Body)
		bodyEnd := b.Block()
		condBlk := b.NewBlock("do.cond")
		cond, err := fg.condValue(s.Cond)
		if err != nil {
			return err
		}
		condEnd := b.Block()
		exit := b.NewBlock("do.end")
		fg.exitLoop(exit, condBlk)
		if bodyErr != nil {
			return bodyErr
		}
		b.SetBlock(bodyEnd)
		fg.linkTo(condBlk)
		b.SetBlock(condEnd)
		b.CondBr(cond, body, exit)
		b.SetBlock(exit)
		return nil
	case sFor:
		fg.push()
		defer fg.pop()
		if s.Init != nil {
			if err := fg.stmt(s.Init); err != nil {
				return err
			}
		}
		prev := b.Block()
		head := b.NewBlock("for.head")
		b.SetBlock(prev)
		fg.linkTo(head)
		b.SetBlock(head)
		var cond ir.VReg
		if s.Cond != nil {
			c, err := fg.condValue(s.Cond)
			if err != nil {
				return err
			}
			cond = c
		} else {
			cond = b.Const(1)
		}
		headEnd := b.Block()
		body := b.NewBlock("for.body")
		fg.enterLoop()
		bodyErr := fg.stmt(s.Body)
		bodyEnd := b.Block()
		postBlk := b.NewBlock("for.post")
		if bodyErr == nil && s.Post != nil {
			if _, err := fg.exprVoid(s.Post); err != nil {
				return err
			}
		}
		postEnd := b.Block()
		exit := b.NewBlock("for.end")
		fg.exitLoop(exit, postBlk)
		if bodyErr != nil {
			return bodyErr
		}
		b.SetBlock(headEnd)
		b.CondBr(cond, body, exit)
		b.SetBlock(bodyEnd)
		fg.linkTo(postBlk)
		b.SetBlock(postEnd)
		fg.linkTo(head)
		b.SetBlock(exit)
		return nil
	case sBreak:
		if len(fg.breakJumps) == 0 {
			return errAt(s.line, s.col, "break outside loop")
		}
		n := len(fg.breakJumps) - 1
		fg.breakJumps[n] = append(fg.breakJumps[n], b.Block())
		b.NewBlock("postbreak")
		return nil
	case sContinue:
		if len(fg.contJumps) == 0 {
			return errAt(s.line, s.col, "continue outside loop")
		}
		n := len(fg.contJumps) - 1
		fg.contJumps[n] = append(fg.contJumps[n], b.Block())
		b.NewBlock("postcont")
		return nil
	}
	return errAt(s.line, s.col, "unhandled statement kind %d", int(s.Kind))
}

// linkTo emits a fall-through branch from the current block to target if the
// current block lacks a terminator.
func (fg *funcGen) linkTo(target int) {
	blk := fg.b.F.Blocks[fg.b.Block()]
	if n := len(blk.Instrs); n > 0 && blk.Instrs[n-1].IsTerminator() {
		return
	}
	fg.b.Br(target)
}

func (fg *funcGen) localDecl(d *Decl) error {
	b := fg.b
	scope := fg.scopes[len(fg.scopes)-1]
	if _, dup := scope[d.Name]; dup {
		return errAt(d.line, d.col, "redeclaration of %s", d.Name)
	}
	vi := &varInfo{ty: d.Ty, arrayLen: d.ArrayLen}
	if d.ArrayLen >= 0 {
		vi.isArray = true
		vi.kind = stAlloca
		vi.slot = b.F.NewAlloca(d.Ty.size() * d.ArrayLen)
		if d.Ty.Kind == tyPtr {
			b.F.MarkAllocaPtr(vi.slot)
		}
		scope[d.Name] = vi
		if d.Init != nil {
			return errAt(d.line, d.col, "scalar initialiser on array")
		}
		step := d.Ty.size()
		for i, e := range d.InitList {
			v, err := fg.expr(e)
			if err != nil {
				return err
			}
			v, err = fg.convert(v, d.Ty, d.line, d.col)
			if err != nil {
				return err
			}
			addr := b.AllocaAddr(vi.slot)
			if step == 1 {
				b.StoreB(addr, int64(i), v.v)
			} else {
				b.Store(addr, int64(i)*step, v.v)
			}
		}
		return nil
	}
	if fg.addrTaken[d.Name] {
		vi.kind = stAlloca
		vi.slot = b.F.NewAlloca(8)
		if d.Ty.Kind == tyPtr {
			b.F.MarkAllocaPtr(vi.slot)
		}
	} else {
		vi.kind = stVReg
		vi.vreg = b.F.NewVReg(irType(d.Ty))
	}
	scope[d.Name] = vi
	// Initialise (default zero).
	var init value
	if d.Init != nil {
		v, err := fg.expr(d.Init)
		if err != nil {
			return err
		}
		v, err = fg.convert(v, d.Ty, d.line, d.col)
		if err != nil {
			return err
		}
		init = v
	} else {
		if d.Ty.isFloat() {
			init = value{v: b.FConst(0), ty: d.Ty}
		} else {
			init = value{v: b.Const(0), ty: d.Ty}
		}
	}
	if vi.kind == stVReg {
		b.MovTo(vi.vreg, init.v)
	} else {
		addr := b.AllocaAddr(vi.slot)
		b.Store(addr, 0, init.v)
	}
	return nil
}
