// External test package: drives the meter through real cluster runs.
package power_test

import (
	"math"
	"testing"

	"heterodc/internal/core"
	"heterodc/internal/power"
)

func TestModelMath(t *testing.T) {
	m := power.Model{IdleWatts: 10, CoreActiveWatts: 5, BoardWatts: 20, PSUEfficiency: 0.8}
	if got := m.CPUWatts(0); got != 10 {
		t.Errorf("idle cpu %v", got)
	}
	if got := m.CPUWatts(2); got != 20 {
		t.Errorf("busy cpu %v", got)
	}
	if got := m.SystemWatts(0); math.Abs(got-(10/0.8+20)) > 1e-9 {
		t.Errorf("system %v", got)
	}
	m.Projection = 0.1
	if got := m.CPUWatts(2); math.Abs(got-2) > 1e-9 {
		t.Errorf("projected %v", got)
	}
}

func TestProjectionFactor(t *testing.T) {
	full := power.XGene1()
	proj := power.XGene1Projected()
	if r := proj.CPUWatts(4) / full.CPUWatts(4); math.Abs(r-0.1) > 1e-9 {
		t.Errorf("projection ratio %v, want 0.1", r)
	}
}

func TestDefaultModelsPerArch(t *testing.T) {
	cl := core.NewTestbed()
	ms := power.DefaultModels(cl, true)
	if len(ms) != 2 {
		t.Fatal("model count")
	}
	if ms[0].Projection != 0 || ms[1].Projection != 0.1 {
		t.Errorf("projection flags: %+v", ms)
	}
	msNo := power.DefaultModels(cl, false)
	if msNo[1].Projection != 0 {
		t.Error("unprojected ARM model has projection")
	}
}

func TestMeterIntegratesBusyAndIdleEnergy(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", `
long main(void){
	double acc = 0.0;
	for (long i = 0; i < 200000; i++) acc += sqrt((double)i);
	return (long)(acc * 0.0);
}`))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	meter := power.NewMeter(cl, power.DefaultModels(cl, false))
	meter.Record = true
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RunProcess(p); err != nil {
		t.Fatal(err)
	}
	dur := cl.Time()
	e := meter.EnergyCPU()
	// x86 ran the work; its energy must exceed pure idle. ARM idled: energy
	// within a whisker of idle * time.
	x86Idle := power.XeonE5().IdleWatts * dur
	if e[0] <= x86Idle {
		t.Errorf("x86 energy %.4f <= idle-only %.4f", e[0], x86Idle)
	}
	armIdle := power.XGene1().IdleWatts * dur
	if math.Abs(e[1]-armIdle) > armIdle*0.05 {
		t.Errorf("arm energy %.4f, want ~%.4f (idle)", e[1], armIdle)
	}
	if meter.TotalCPU() <= 0 || meter.TotalCPU() != e[0]+e[1] {
		t.Error("TotalCPU inconsistent")
	}
	sys := meter.EnergySystem()
	if sys[0] <= e[0] || sys[1] <= e[1] {
		t.Error("system energy must exceed package energy")
	}
}

func TestMeterTraceSamplesMonotonic(t *testing.T) {
	img, err := core.Build("t", core.Src("t.c", `
long main(void){
	double acc = 0.0;
	for (long i = 0; i < 400000; i++) acc += sqrt((double)i);
	return (long)(acc * 0.0);
}`))
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewTestbed()
	meter := power.NewMeter(cl, power.DefaultModels(cl, false))
	meter.Record = true
	meter.SampleInterval = 1e-4 // denser than 100 Hz for a short run
	meter.Record = true
	p, err := cl.Spawn(img, core.NodeX86)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RunProcess(p); err != nil {
		t.Fatal(err)
	}
	// Re-arm the interval before first sample is taken is not supported;
	// just check what was recorded.
	if len(meter.Trace) == 0 {
		t.Skip("run too short for samples at this interval")
	}
	last := -1.0
	for _, s := range meter.Trace {
		if s.T <= last {
			t.Fatal("trace timestamps not increasing")
		}
		last = s.T
		for i := range s.LoadPct {
			if s.LoadPct[i] < 0 || s.LoadPct[i] > 100 {
				t.Fatalf("load %v out of range", s.LoadPct[i])
			}
		}
		for i := range s.CPUWatts {
			if s.CPUWatts[i] <= 0 {
				t.Fatal("non-positive power sample")
			}
		}
	}
}
