// Package power models the evaluation's power instrumentation: per-machine
// CPU power (the RAPL / I2C regulator readings) and at-the-wall system
// power (the shunt-resistor DAQ), sampled at 100 Hz of simulated time, with
// energy integration and the McPAT-style FinFET projection the paper
// applies to the first-generation ARM board.
package power

import (
	"heterodc/internal/isa"
	"heterodc/internal/kernel"
)

// Model is one machine's power model: idle package power plus dynamic power
// per busy core-second, and the board/PSU overhead seen at the wall.
type Model struct {
	// IdleWatts is the package power with all cores idle.
	IdleWatts float64
	// CoreActiveWatts is the additional power of one fully busy core.
	CoreActiveWatts float64
	// BoardWatts is constant board overhead included in external readings.
	BoardWatts float64
	// PSUEfficiency scales internal draw up to wall power.
	PSUEfficiency float64
	// Projection scales the whole CPU model (the paper's McPAT projection
	// multiplies the measured X-Gene 1 power by 1/10 for future FinFET
	// parts); 0 means 1.
	Projection float64
}

func (m Model) proj() float64 {
	if m.Projection == 0 {
		return 1
	}
	return m.Projection
}

// CPUWatts returns package power at the given busy-core count equivalent.
func (m Model) CPUWatts(busyCores float64) float64 {
	return (m.IdleWatts + m.CoreActiveWatts*busyCores) * m.proj()
}

// SystemWatts returns at-the-wall power.
func (m Model) SystemWatts(busyCores float64) float64 {
	return m.CPUWatts(busyCores)/m.PSUEfficiency + m.BoardWatts
}

// XeonE5 models the x86 server's Xeon E5-1650 v2 (6 cores, 3.5 GHz):
// package idles around 14 W and adds ~8 W per saturated core.
func XeonE5() Model {
	return Model{IdleWatts: 14, CoreActiveWatts: 8.2, BoardWatts: 38, PSUEfficiency: 0.88}
}

// XGene1 models the APM X-Gene 1 development board (8 cores, 2.4 GHz): a
// first-generation part with poor energy proportionality — high idle draw
// relative to its dynamic range, as the paper observes.
func XGene1() Model {
	return Model{IdleWatts: 22, CoreActiveWatts: 3.4, BoardWatts: 18, PSUEfficiency: 0.85}
}

// XGene1Projected applies the paper's McPAT FinFET projection (1/10th the
// power at the same clock).
func XGene1Projected() Model {
	m := XGene1()
	m.Projection = 0.1
	return m
}

// DefaultModels returns per-node models for the standard testbed, applying
// the FinFET projection to ARM nodes when projected is set (as the paper
// does for its scheduling studies).
func DefaultModels(cl *kernel.Cluster, projected bool) []Model {
	models := make([]Model, len(cl.Kernels))
	for i, k := range cl.Kernels {
		if k.Arch == isa.X86 {
			models[i] = XeonE5()
		} else if projected {
			models[i] = XGene1Projected()
		} else {
			models[i] = XGene1()
		}
	}
	return models
}

// Sample is one 100 Hz observation.
type Sample struct {
	T float64
	// Per node:
	CPUWatts []float64
	SysWatts []float64
	LoadPct  []float64
}

// Meter attaches to a cluster, integrates energy continuously and records a
// 100 Hz trace (the DAQ).
type Meter struct {
	cl     *kernel.Cluster
	models []Model

	// SampleInterval defaults to 10 ms (100 Hz).
	SampleInterval float64
	// Record enables trace capture (energy is always integrated).
	Record bool

	Trace []Sample

	lastT     float64
	lastBusy  []float64
	energyCPU []float64
	energySys []float64

	nextSample float64
	winBusy    []float64
	winStart   float64

	prevAdvance func(float64)
}

// NewMeter builds and attaches a meter. It chains any existing OnAdvance
// hook.
func NewMeter(cl *kernel.Cluster, models []Model) *Meter {
	m := &Meter{
		cl:             cl,
		models:         models,
		SampleInterval: 0.01,
		lastBusy:       make([]float64, len(cl.Kernels)),
		energyCPU:      make([]float64, len(cl.Kernels)),
		energySys:      make([]float64, len(cl.Kernels)),
		winBusy:        make([]float64, len(cl.Kernels)),
		prevAdvance:    cl.OnAdvance,
	}
	cl.OnAdvance = m.advance
	return m
}

func busyOf(k *kernel.Kernel) float64 { return k.BusySeconds + k.ServiceSeconds }

func (m *Meter) advance(t float64) {
	if m.prevAdvance != nil {
		m.prevAdvance(t)
	}
	dt := t - m.lastT
	if dt <= 0 {
		return
	}
	for i, k := range m.cl.Kernels {
		busy := busyOf(k)
		dBusy := busy - m.lastBusy[i]
		if dBusy < 0 {
			dBusy = 0
		}
		if dBusy > dt*float64(k.Cores()) {
			dBusy = dt * float64(k.Cores())
		}
		md := m.models[i]
		// Integrate: idle power over dt plus dynamic power over busy time.
		m.energyCPU[i] += (md.IdleWatts*dt + md.CoreActiveWatts*dBusy) * md.proj()
		m.energySys[i] += (md.IdleWatts*dt+md.CoreActiveWatts*dBusy)*md.proj()/md.PSUEfficiency + md.BoardWatts*dt
		m.winBusy[i] += dBusy
		m.lastBusy[i] = busy
	}
	m.lastT = t

	if m.Record {
		if m.nextSample == 0 {
			m.nextSample = m.SampleInterval
		}
		for m.nextSample <= t {
			s := Sample{
				T:        m.nextSample,
				CPUWatts: make([]float64, len(m.models)),
				SysWatts: make([]float64, len(m.models)),
				LoadPct:  make([]float64, len(m.models)),
			}
			win := m.nextSample - m.winStart
			if win <= 0 {
				win = m.SampleInterval
			}
			for i, k := range m.cl.Kernels {
				util := m.winBusy[i] / win
				if max := float64(k.Cores()); util > max {
					util = max
				}
				s.CPUWatts[i] = m.models[i].CPUWatts(util)
				s.SysWatts[i] = m.models[i].SystemWatts(util)
				s.LoadPct[i] = 100 * util / float64(k.Cores())
				m.winBusy[i] = 0
			}
			m.Trace = append(m.Trace, s)
			m.winStart = m.nextSample
			m.nextSample += m.SampleInterval
		}
	}
}

// EnergyCPU returns integrated package energy per node in joules.
func (m *Meter) EnergyCPU() []float64 { return append([]float64(nil), m.energyCPU...) }

// EnergySystem returns integrated wall energy per node in joules.
func (m *Meter) EnergySystem() []float64 { return append([]float64(nil), m.energySys...) }

// TotalCPU returns the summed package energy in joules.
func (m *Meter) TotalCPU() float64 {
	var s float64
	for _, e := range m.energyCPU {
		s += e
	}
	return s
}
